/**
 * @file
 * Bounded MPMC ticket ring: the contention-free admission queue of the
 * serving runtime. The fast path is a Vyukov-style ring of slots, each
 * carrying its own sequence number; producers and consumers claim
 * positions with one CAS on their own ticket counter and then touch
 * only their claimed slot -- no mutex, no shared critical section, no
 * cache line ping-pong beyond the two ticket counters.
 *
 * Blocking semantics (closed-loop clients, worker pop) are retained by
 * a condvar slow path that engages only when the fast path fails:
 * waiters register in an atomic counter, and the fast-path side posts
 * a notify only when that counter is non-zero -- so in steady state
 * (queue neither empty nor full) no thread ever takes the wait mutex.
 * A seq_cst fence on each side of the register/check pair closes the
 * classic store/load race (both sides fence between their store and
 * their load, so at least one of them observes the other).
 *
 * Close protocol: close() sets a CLOSED bit in the high bit of the
 * enqueue ticket word itself (fetch_or), so "did this push beat the
 * close?" is decided by the modification order of ONE atomic: a
 * producer's claim CAS carries a bit-free expected value and therefore
 * cannot succeed once the bit is set. That makes the old mutex
 * queue's guarantee hold lock-free: every push that reported success
 * claimed a ticket before the close, every such ticket is counted in
 * the enqueue word a consumer reads, and pop() returns false only
 * once the ring is closed AND the dequeue ticket has caught up --
 * i.e. the ring is observed EMPTY, with a claimed-but-not-yet-
 * published slot spun out rather than declared drained.
 *
 * Capacity is enforced by an explicit ticket-distance gate
 * (enqueue - dequeue >= capacity => full) layered over a slot array of
 * max(2, next_pow2(capacity)) cells. The gate reads a possibly stale
 * dequeue ticket; since that ticket only grows, staleness can only
 * make the gate conservative (shed when nearly full), never admit
 * past capacity -- and the pow2 slot array means a claim never lands
 * on an unconsumed slot even at capacity 1.
 */

#ifndef WSEARCH_SERVE_TICKET_RING_HH
#define WSEARCH_SERVE_TICKET_RING_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "util/logging.hh"

namespace wsearch {

/** Lock-free bounded MPMC FIFO with condvar-blocking slow paths. */
template <typename T>
class TicketRing
{
  public:
    explicit TicketRing(size_t capacity)
        : capacity_(capacity), slotCount_(slotCountFor(capacity)),
          mask_(slotCount_ - 1),
          cells_(std::make_unique<Cell[]>(slotCount_))
    {
        wsearch_assert(capacity >= 1);
        for (uint64_t i = 0; i < slotCount_; ++i)
            cells_[i].seq.store(i, std::memory_order_relaxed);
    }

    TicketRing(const TicketRing &) = delete;
    TicketRing &operator=(const TicketRing &) = delete;

    /**
     * Blocking push: waits while full. @return false (and leaves @p v
     * untouched) when the ring was closed.
     */
    bool
    push(T &&v)
    {
        for (;;) {
            if (closed())
                return false;
            if (tryEnqueue(v)) {
                wakePoppers();
                return true;
            }
            std::unique_lock<std::mutex> lk(waitMu_);
            pushWaiters_.fetch_add(1, std::memory_order_relaxed);
            std::atomic_thread_fence(std::memory_order_seq_cst);
            notFull_.wait(lk, [this] {
                return closed() || sizeApprox() < capacity_;
            });
            pushWaiters_.fetch_sub(1, std::memory_order_relaxed);
        }
    }

    /**
     * Non-blocking push for open-loop admission control: @return false
     * (shed; @p v untouched) when full or closed.
     */
    bool
    tryPush(T &&v)
    {
        if (!tryEnqueue(v))
            return false;
        wakePoppers();
        return true;
    }

    /**
     * Blocking pop: waits for an item. @return false only when the
     * ring is closed AND fully drained (consumer shutdown signal).
     */
    bool
    pop(T &out)
    {
        Backoff stall;
        for (;;) {
            if (tryDequeue(out)) {
                wakePushers();
                return true;
            }
            // One load decides both "closed?" and "how many tickets
            // were ever claimed": no claim can follow the CLOSED bit
            // in enqPos_'s modification order, so a dequeue ticket
            // that caught up to this count means drained -- for good.
            const uint64_t raw =
                enqPos_.load(std::memory_order_acquire);
            if (raw & kClosedBit) {
                if (deqPos_.load(std::memory_order_acquire) >=
                    (raw & kTicketMask))
                    return false;
                // A producer claimed a ticket before the close but
                // has not published its slot yet; back off until it
                // publishes (it may be preempted, so yields alone can
                // starve it on an oversubscribed machine).
                stall.pause();
                continue;
            }
            if (sizeApprox() > 0) {
                // The head slot is claimed but not yet published (or
                // another consumer beat us to a just-published item).
                // The condvar predicate is already true, so wait()
                // would return immediately -- sleeping there turns
                // every blocked consumer into a waitMu_-churning
                // spin. Back off outside the lock instead.
                stall.pause();
                continue;
            }
            stall.reset();
            std::unique_lock<std::mutex> lk(waitMu_);
            popWaiters_.fetch_add(1, std::memory_order_relaxed);
            std::atomic_thread_fence(std::memory_order_seq_cst);
            notEmpty_.wait(lk, [this] {
                return closed() || sizeApprox() > 0;
            });
            popWaiters_.fetch_sub(1, std::memory_order_relaxed);
        }
    }

    /** Begin shutdown: refuse new items, wake every blocked thread. */
    void
    close()
    {
        {
            // Under waitMu_ so a concurrent waiter cannot check the
            // predicate, miss the bit, and sleep through the notify.
            std::lock_guard<std::mutex> lk(waitMu_);
            enqPos_.fetch_or(kClosedBit, std::memory_order_seq_cst);
        }
        notFull_.notify_all();
        notEmpty_.notify_all();
    }

    /** Instantaneous ticket distance (enqueued - dequeued). */
    size_t
    depth() const
    {
        return sizeApprox();
    }

    bool
    closed() const
    {
        return (enqPos_.load(std::memory_order_acquire) &
                kClosedBit) != 0;
    }

    size_t capacity() const { return capacity_; }

  private:
    /**
     * Escalating wait for a claimed-but-unpublished slot: the stall
     * ends as soon as the owning producer runs again, so start with
     * yields (cheap, keeps latency tight when the producer is merely
     * between its CAS and its publish store), then fall back to short
     * exponential sleeps capped at 128us in case the producer is
     * preempted and yields alone would burn a full core per consumer.
     */
    struct Backoff
    {
        void
        pause()
        {
            if (round_ < 16) {
                std::this_thread::yield();
            } else {
                const uint32_t exp =
                    round_ - 16 < 7 ? round_ - 16 : 7;
                std::this_thread::sleep_for(
                    std::chrono::microseconds(1u << exp));
            }
            ++round_;
        }

        void reset() { round_ = 0; }

      private:
        uint32_t round_ = 0;
    };

    /** High bit of the enqueue ticket word; the 63 ticket bits never
     *  get near it. */
    static constexpr uint64_t kClosedBit = 1ull << 63;
    static constexpr uint64_t kTicketMask = kClosedBit - 1;

    /** One ring slot. seq encodes the slot's lap state: == pos means
     *  free for the producer claiming ticket pos; == pos + 1 means
     *  published for the consumer claiming ticket pos; == pos +
     *  slotCount_ means consumed, free for the next lap. */
    struct Cell
    {
        std::atomic<uint64_t> seq{0};
        T val{};
    };

    static uint64_t
    slotCountFor(size_t capacity)
    {
        uint64_t n = 2;
        while (n < capacity)
            n *= 2;
        return n;
    }

    size_t
    sizeApprox() const
    {
        const uint64_t deq = deqPos_.load(std::memory_order_acquire);
        const uint64_t enq = enqPos_.load(std::memory_order_acquire) &
            kTicketMask;
        return enq > deq ? static_cast<size_t>(enq - deq) : 0;
    }

    /** Fast path: claim an enqueue ticket and publish. @return false
     *  when at capacity or closed; @p v is moved only on success. */
    bool
    tryEnqueue(T &v)
    {
        uint64_t raw = enqPos_.load(std::memory_order_relaxed);
        for (;;) {
            if (raw & kClosedBit)
                return false;
            const uint64_t pos = raw;
            // Explicit capacity gate: the dequeue ticket only grows,
            // so a stale dequeue read only makes this conservative.
            // A stale *enqueue* ticket, though, can read below the
            // fresh dequeue ticket (other producers + consumers ran
            // between the two loads); that means pos is obsolete, not
            // that the ring is full -- reload and retry.
            const uint64_t deq =
                deqPos_.load(std::memory_order_acquire);
            if (deq > pos) {
                raw = enqPos_.load(std::memory_order_relaxed);
                continue;
            }
            if (pos - deq >= capacity_)
                return false;
            Cell &cell = cells_[pos & mask_];
            const uint64_t seq =
                cell.seq.load(std::memory_order_acquire);
            const int64_t dif =
                static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
            if (dif == 0) {
                // The expected value carries no CLOSED bit, so this
                // claim cannot succeed after close() -- the decisive
                // push-vs-close ordering.
                if (enqPos_.compare_exchange_weak(
                        raw, pos + 1, std::memory_order_relaxed)) {
                    cell.val = std::move(v);
                    cell.seq.store(pos + 1,
                                   std::memory_order_release);
                    return true;
                }
                // CAS updated raw; retry with the fresh word.
            } else if (dif < 0) {
                // Slot still holds the previous lap's item: full.
                return false;
            } else {
                raw = enqPos_.load(std::memory_order_relaxed);
            }
        }
    }

    /** Fast path: claim a dequeue ticket and consume. @return false
     *  when empty (or the head slot is claimed but not yet
     *  published). */
    bool
    tryDequeue(T &out)
    {
        uint64_t pos = deqPos_.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = cells_[pos & mask_];
            const uint64_t seq =
                cell.seq.load(std::memory_order_acquire);
            const int64_t dif = static_cast<int64_t>(seq) -
                static_cast<int64_t>(pos + 1);
            if (dif == 0) {
                if (deqPos_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed)) {
                    out = std::move(cell.val);
                    cell.val = T{};
                    cell.seq.store(pos + slotCount_,
                                   std::memory_order_release);
                    return true;
                }
            } else if (dif < 0) {
                return false;
            } else {
                pos = deqPos_.load(std::memory_order_relaxed);
            }
        }
    }

    /** Post-publish notify, skipped entirely when nobody waits. The
     *  fence pairs with the waiter's registration fence. */
    void
    wakePoppers()
    {
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (popWaiters_.load(std::memory_order_relaxed) == 0)
            return;
        {
            // Empty critical section: serializes with a waiter that
            // registered but has not yet released waitMu_ in wait().
            std::lock_guard<std::mutex> lk(waitMu_);
        }
        notEmpty_.notify_one();
    }

    void
    wakePushers()
    {
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (pushWaiters_.load(std::memory_order_relaxed) == 0)
            return;
        {
            std::lock_guard<std::mutex> lk(waitMu_);
        }
        notFull_.notify_one();
    }

    const size_t capacity_;
    const uint64_t slotCount_; ///< pow2 >= max(2, capacity_)
    const uint64_t mask_;
    std::unique_ptr<Cell[]> cells_;

    /** Enqueue ticket count in the low 63 bits, CLOSED in bit 63. */
    alignas(64) std::atomic<uint64_t> enqPos_{0};
    alignas(64) std::atomic<uint64_t> deqPos_{0};

    // Slow-path blocking layer; untouched while the ring is neither
    // empty nor full.
    alignas(64) std::atomic<uint32_t> pushWaiters_{0};
    std::atomic<uint32_t> popWaiters_{0};
    std::mutex waitMu_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
};

} // namespace wsearch

#endif // WSEARCH_SERVE_TICKET_RING_HH
