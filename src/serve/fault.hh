/**
 * @file
 * Deterministic fault injection for the sharded serving stack.
 *
 * A FaultPlan describes, per (shard, replica), what can go wrong and
 * how often: added service delays, stuck-worker hangs (a delay far
 * beyond any deadline), instant execution failures, silently dropped
 * completions, corrupted/truncated leaf responses, and crashed
 * replicas (refuse everything between crashAtNs and recoverAtNs).
 * The plan is consumed through the FaultInjector interface at exactly
 * two boundaries:
 *
 *  - admission (LeafWorkerPool::submit*): a crashed replica refuses
 *    the request instantly, the way a dead TCP endpoint does;
 *  - execution (the worker loop, after it pops a request): delays and
 *    hangs are slept on the pool's Clock (virtual under SimClock),
 *    failures/drops/corruption are applied around the real engine
 *    call.
 *
 * Determinism: every probabilistic decision is a stateless hash of
 * (seed, shard, replica, query id) -- no draw order, no shared RNG
 * state -- so a given plan makes identical decisions for a given
 * query stream regardless of thread interleaving. Crash windows are
 * functions of the clock, which tests pin with SimClock.
 *
 * Configure specs before traffic starts; the decision path is const
 * and thread-safe.
 */

#ifndef WSEARCH_SERVE_FAULT_HH
#define WSEARCH_SERVE_FAULT_HH

#include <cstdint>
#include <unordered_map>

namespace wsearch {

/** What the injector decided for one execution. */
struct FaultDecision
{
    /** Added service latency (slept on the pool's Clock before the
     *  engine runs; hangs are just very large delays). */
    uint64_t delayNs = 0;
    /** Replica answers with an explicit failure (no execution). */
    bool fail = false;
    /** Executes normally, but the completion callback is suppressed
     *  -- the caller sees silence, as with a lost response packet. */
    bool dropReply = false;
    /** Reply payload is truncated/perturbed after execution. */
    bool corrupt = false;
};

/** Decision source consumed by LeafWorkerPool (and thus the cluster). */
class FaultInjector
{
  public:
    virtual ~FaultInjector() = default;

    /**
     * Admission-time check (connection establishment): false means
     * the replica is crashed and refuses @p query_id instantly.
     */
    virtual bool admit(uint32_t shard, uint32_t replica,
                       uint64_t query_id, uint64_t now_ns) const = 0;

    /** Execution-time decision, consulted by a worker after pop. */
    virtual FaultDecision onExecute(uint32_t shard, uint32_t replica,
                                    uint64_t query_id,
                                    uint64_t now_ns) const = 0;

    /**
     * Should merge number @p merge_seq on @p shard crash mid-build?
     * Consulted by MergeWorker before running a merge; true abandons
     * it partway (the live index discards the partial output).
     * Default-benign so existing injectors are unaffected.
     */
    virtual bool
    crashMerge(uint32_t shard, uint64_t merge_seq,
               uint64_t now_ns) const
    {
        (void)shard;
        (void)merge_seq;
        (void)now_ns;
        return false;
    }

    /**
     * Should the handoff of snapshot @p version to (shard, replica)
     * arrive corrupted? Consulted by the rollout path; true makes the
     * replica receive a torn copy, which adoption-time validation
     * must reject. Default-benign.
     */
    virtual bool
    corruptHandoff(uint32_t shard, uint32_t replica, uint64_t version,
                   uint64_t now_ns) const
    {
        (void)shard;
        (void)replica;
        (void)version;
        (void)now_ns;
        return false;
    }
};

/** Per-replica fault probabilities and windows (all default benign). */
struct FaultSpec
{
    /** Probability of an added service delay, uniform in
     *  [delayMinNs, delayMaxNs]. */
    double delayProb = 0.0;
    uint64_t delayMinNs = 0;
    uint64_t delayMaxNs = 0;

    /** Probability of a stuck worker: a delay of hangNs, sized far
     *  beyond any deadline (bounded so RealClock teardown cannot
     *  block forever; SimClock tests may raise it arbitrarily). */
    double hangProb = 0.0;
    uint64_t hangNs = 250'000'000; // 250 ms

    /** Probability the execution fails outright (connection reset). */
    double failProb = 0.0;

    /** Probability the completion is silently dropped. */
    double dropProb = 0.0;

    /** Probability the reply payload is corrupted/truncated. */
    double corruptProb = 0.0;

    /** Probability a background merge crashes mid-build (live index;
     *  drawn per merge sequence number, shard-wide). */
    double mergeCrashProb = 0.0;

    /** Probability a snapshot handoff reaches the replica torn (drawn
     *  per (shard, replica, snapshot version)). */
    double handoffCorruptProb = 0.0;

    /** Crash window: the replica refuses all requests (admission and
     *  execution) while crashAtNs <= now < recoverAtNs. 0 crashAtNs =
     *  never crashes; 0 recoverAtNs = never recovers. */
    uint64_t crashAtNs = 0;
    uint64_t recoverAtNs = 0;

    bool
    crashed(uint64_t now_ns) const
    {
        return crashAtNs != 0 && now_ns >= crashAtNs &&
            (recoverAtNs == 0 || now_ns < recoverAtNs);
    }
};

/**
 * Seeded, per-replica fault plan. Replica-specific specs override the
 * default spec.
 */
class FaultPlan : public FaultInjector
{
  public:
    explicit FaultPlan(uint64_t seed = 0x5eedfa17ull) : seed_(seed) {}

    /** Spec applied to replicas without an override (mutable for
     *  setup; do not modify once traffic runs). */
    FaultSpec &defaultSpec() { return default_; }

    /** Override the spec for one (shard, replica). */
    FaultSpec &
    replicaSpec(uint32_t shard, uint32_t replica)
    {
        return overrides_[key(shard, replica)];
    }

    bool admit(uint32_t shard, uint32_t replica, uint64_t query_id,
               uint64_t now_ns) const override;

    FaultDecision onExecute(uint32_t shard, uint32_t replica,
                            uint64_t query_id,
                            uint64_t now_ns) const override;

    /** Shard-wide (replica 0's spec); drawn on the merge sequence. */
    bool crashMerge(uint32_t shard, uint64_t merge_seq,
                    uint64_t now_ns) const override;

    /** Per-replica; drawn on the snapshot version. */
    bool corruptHandoff(uint32_t shard, uint32_t replica,
                        uint64_t version,
                        uint64_t now_ns) const override;

    uint64_t seed() const { return seed_; }

  private:
    static uint64_t
    key(uint32_t shard, uint32_t replica)
    {
        return (static_cast<uint64_t>(shard) << 32) | replica;
    }

    const FaultSpec &specFor(uint32_t shard, uint32_t replica) const;

    uint64_t seed_;
    FaultSpec default_;
    std::unordered_map<uint64_t, FaultSpec> overrides_;
};

} // namespace wsearch

#endif // WSEARCH_SERVE_FAULT_HH
