/**
 * @file
 * Log-bucketed latency histogram (HdrHistogram-style): each power-of-two
 * range is split into 64 linear sub-buckets, so any recorded value is
 * off by at most 1/64 (~1.6%) relative error while the whole structure
 * is a flat array of counters. This is the tail-latency instrument of
 * the serving runtime: workers record per-request sojourn and service
 * times into thread-private histograms which are merged at snapshot
 * time, keeping the hot path free of shared atomics.
 */

#ifndef WSEARCH_SERVE_LATENCY_HISTOGRAM_HH
#define WSEARCH_SERVE_LATENCY_HISTOGRAM_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace wsearch {

/** Fixed-memory histogram of uint64 values with ~1.6% quantile error. */
class LatencyHistogram
{
  public:
    /** Sub-bucket resolution: 2^6 = 64 linear buckets per octave. */
    static constexpr uint32_t kSubBits = 6;
    static constexpr uint32_t kSubBuckets = 1u << kSubBits;
    /** Values below kSubBuckets map 1:1; each octave above adds 64. */
    static constexpr size_t kNumBuckets =
        static_cast<size_t>(64 - kSubBits + 1) << kSubBits;

    LatencyHistogram() : buckets_(kNumBuckets, 0) {}

    /** Record one value (nanoseconds by convention). */
    void
    record(uint64_t v)
    {
        ++buckets_[bucketIndex(v)];
        ++count_;
        sum_ += v;
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    /** Add all of @p other's samples into this histogram. */
    void
    merge(const LatencyHistogram &other)
    {
        for (size_t i = 0; i < kNumBuckets; ++i)
            buckets_[i] += other.buckets_[i];
        count_ += other.count_;
        sum_ += other.sum_;
        if (other.count_) {
            if (other.min_ < min_)
                min_ = other.min_;
            if (other.max_ > max_)
                max_ = other.max_;
        }
    }

    /**
     * Value at quantile @p q in [0, 1]: the upper bound of the first
     * bucket whose cumulative count reaches ceil(q * count), clamped
     * to the exact observed maximum. Returns 0 on an empty histogram.
     */
    uint64_t
    quantile(double q) const
    {
        if (count_ == 0)
            return 0;
        wsearch_assert(q >= 0.0 && q <= 1.0);
        uint64_t target = static_cast<uint64_t>(
            std::ceil(q * static_cast<double>(count_)));
        if (target < 1)
            target = 1;
        uint64_t cum = 0;
        for (size_t i = 0; i < kNumBuckets; ++i) {
            cum += buckets_[i];
            if (cum >= target) {
                const uint64_t ub = bucketUpperBound(i);
                return ub < max_ ? ub : max_;
            }
        }
        return max_;
    }

    uint64_t count() const { return count_; }
    uint64_t min() const { return count_ ? min_ : 0; }
    uint64_t max() const { return max_; }

    double
    mean() const
    {
        return count_
            ? static_cast<double>(sum_) / static_cast<double>(count_)
            : 0.0;
    }

    void
    clear()
    {
        buckets_.assign(kNumBuckets, 0);
        count_ = 0;
        sum_ = 0;
        min_ = ~0ull;
        max_ = 0;
    }

    /** Bucket index of @p v (exposed for tests). */
    static size_t
    bucketIndex(uint64_t v)
    {
        if (v < kSubBuckets)
            return static_cast<size_t>(v);
        const int msb = 63 - __builtin_clzll(v);
        const int shift = msb - static_cast<int>(kSubBits);
        return (static_cast<size_t>(shift + 1) << kSubBits) +
            ((v >> shift) & (kSubBuckets - 1));
    }

    /** Largest value mapping to bucket @p i (exposed for tests). */
    static uint64_t
    bucketUpperBound(size_t i)
    {
        if (i < kSubBuckets)
            return static_cast<uint64_t>(i);
        const uint64_t shift = (i >> kSubBits) - 1;
        const uint64_t sub = i & (kSubBuckets - 1);
        const uint64_t lower = (kSubBuckets + sub) << shift;
        return lower + ((1ull << shift) - 1);
    }

  private:
    std::vector<uint64_t> buckets_;
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = ~0ull;
    uint64_t max_ = 0;
};

} // namespace wsearch

#endif // WSEARCH_SERVE_LATENCY_HISTOGRAM_HH
