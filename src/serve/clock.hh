/**
 * @file
 * Monotonic wall-clock helpers for the serving runtime. All latency
 * accounting in src/serve uses nanoseconds on std::chrono::steady_clock
 * so measurements are immune to system clock adjustments.
 */

#ifndef WSEARCH_SERVE_CLOCK_HH
#define WSEARCH_SERVE_CLOCK_HH

#include <chrono>
#include <cstdint>
#include <thread>

namespace wsearch {

/** Current steady-clock time in nanoseconds since an arbitrary epoch. */
inline uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Sleep until steady-clock nanosecond @p deadline_ns. Returns
 * immediately when the deadline is already past; arrival schedules that
 * use absolute deadlines therefore keep their long-run offered rate
 * even when individual sleeps oversleep (late arrivals burst out).
 */
inline void
sleepUntilNs(uint64_t deadline_ns)
{
    const uint64_t now = nowNs();
    if (deadline_ns <= now)
        return;
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(deadline_ns - now));
}

} // namespace wsearch

#endif // WSEARCH_SERVE_CLOCK_HH
