/**
 * @file
 * Time for the serving runtime, behind an interface so tests can
 * substitute a manually-advanced virtual clock.
 *
 * All latency accounting in src/serve uses nanoseconds on
 * std::chrono::steady_clock so measurements are immune to system
 * clock adjustments. Production code paths default to RealClock
 * (steady_clock); tests that need to *force* rare schedules -- a
 * hedge firing before a straggling primary, a deadline expiring
 * mid-gather -- construct a SimClock, hand it to the worker pool /
 * cluster / executor configs, and advance virtual time explicitly.
 * Every timing decision in the stack (deadline expiry, hedge delay,
 * retry backoff, injected fault delays) then becomes a pure function
 * of virtual time, which only moves when the test says so.
 *
 * The interface is header-only on purpose: src/search's executor
 * polls Clock::now() for mid-query deadlines without creating a link
 * dependency from wsearch_search onto wsearch_serve.
 */

#ifndef WSEARCH_SERVE_CLOCK_HH
#define WSEARCH_SERVE_CLOCK_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

namespace wsearch {

/** Current steady-clock time in nanoseconds since an arbitrary epoch. */
inline uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Sleep until steady-clock nanosecond @p deadline_ns. Returns
 * immediately when the deadline is already past; arrival schedules that
 * use absolute deadlines therefore keep their long-run offered rate
 * even when individual sleeps oversleep (late arrivals burst out).
 */
inline void
sleepUntilNs(uint64_t deadline_ns)
{
    const uint64_t now = nowNs();
    if (deadline_ns <= now)
        return;
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(deadline_ns - now));
}

/**
 * Time source + timed-wait primitive. Deadlines are absolute
 * nanoseconds in this clock's epoch; 0 always means "no deadline"
 * (SimClock therefore starts its epoch above 0).
 */
class Clock
{
  public:
    virtual ~Clock() = default;

    /** Current time (ns since this clock's epoch). */
    virtual uint64_t now() const = 0;

    /** Block until now() >= @p deadline_ns (no-op when already past). */
    virtual void sleepUntil(uint64_t deadline_ns) = 0;

    /**
     * Wait on @p cv (caller holds @p lk) until @p pred holds or this
     * clock reaches @p deadline_ns (0 = wait for pred only). Returns
     * pred()'s final value. The cv must be notified whenever pred's
     * inputs change, exactly as with std::condition_variable's
     * predicate waits.
     */
    virtual bool waitUntil(std::condition_variable &cv,
                           std::unique_lock<std::mutex> &lk,
                           uint64_t deadline_ns,
                           const std::function<bool()> &pred) = 0;
};

/** Steady-clock time point for an absolute nowNs()-epoch value. */
inline std::chrono::steady_clock::time_point
steadyTimePoint(uint64_t ns)
{
    return std::chrono::steady_clock::time_point(
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::nanoseconds(ns)));
}

/** Production clock: std::chrono::steady_clock. */
class RealClock : public Clock
{
  public:
    uint64_t now() const override { return nowNs(); }

    void
    sleepUntil(uint64_t deadline_ns) override
    {
        sleepUntilNs(deadline_ns);
    }

    bool
    waitUntil(std::condition_variable &cv,
              std::unique_lock<std::mutex> &lk, uint64_t deadline_ns,
              const std::function<bool()> &pred) override
    {
        if (deadline_ns == 0) {
            cv.wait(lk, pred);
            return true;
        }
        return cv.wait_until(lk, steadyTimePoint(deadline_ns), pred);
    }
};

/** The process-wide default clock (what a null config clock means). */
inline Clock &
realClock()
{
    static RealClock clock;
    return clock;
}

/**
 * Manually-advanced virtual clock for deterministic schedule tests.
 * now() only moves via advanceTo()/advanceBy(); threads blocked in
 * sleepUntil() wake when virtual time reaches their deadline (or on
 * release()). waitUntil() evaluates its deadline against virtual time
 * but still wakes on cv notifications, so completions propagate
 * immediately while timeouts fire only when the test advances time.
 *
 * Teardown contract: a worker parked in sleepUntil() blocks its
 * pool's shutdown()/join until the test either advances past its
 * deadline or calls release(), which unblocks all current and future
 * sleeps (the destructor releases too).
 */
class SimClock : public Clock
{
  public:
    explicit SimClock(uint64_t start_ns = 1'000'000)
        : now_(start_ns)
    {
    }

    ~SimClock() override { release(); }

    uint64_t
    now() const override
    {
        return now_.load(std::memory_order_acquire);
    }

    void
    sleepUntil(uint64_t deadline_ns) override
    {
        std::unique_lock<std::mutex> lk(mu_);
        ++sleepers_;
        cv_.notify_all(); // wake awaitSleepers()
        cv_.wait(lk, [&] {
            return released_ ||
                now_.load(std::memory_order_relaxed) >= deadline_ns;
        });
        --sleepers_;
        cv_.notify_all();
    }

    bool
    waitUntil(std::condition_variable &cv,
              std::unique_lock<std::mutex> &lk, uint64_t deadline_ns,
              const std::function<bool()> &pred) override
    {
        // Poll at a short real-time period: virtual-time advances are
        // observed within one period, cv notifications immediately.
        // Determinism is unaffected -- whether the wait exits, and
        // with what outcome, depends only on pred and virtual time.
        for (;;) {
            if (pred())
                return true;
            if (deadline_ns != 0 && now() >= deadline_ns)
                return pred();
            cv.wait_for(lk, std::chrono::microseconds(100));
        }
    }

    /** Advance virtual time to @p ns (never moves backwards). */
    void
    advanceTo(uint64_t ns)
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            uint64_t cur = now_.load(std::memory_order_relaxed);
            if (ns > cur)
                now_.store(ns, std::memory_order_release);
        }
        cv_.notify_all();
    }

    void advanceBy(uint64_t delta_ns) { advanceTo(now() + delta_ns); }

    /** Unblock all current and future sleepUntil() calls (teardown). */
    void
    release()
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            released_ = true;
        }
        cv_.notify_all();
    }

    /** Threads currently parked in sleepUntil(). */
    size_t
    sleepers() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return sleepers_;
    }

    /**
     * Block (in real time, bounded by @p timeout) until @p n threads
     * are parked in sleepUntil() -- the schedule-test handshake that
     * replaces sleeps: "the primary is now stuck, fire the hedge".
     * @return false on timeout.
     */
    bool
    awaitSleepers(size_t n, std::chrono::nanoseconds timeout =
                                std::chrono::seconds(10))
    {
        std::unique_lock<std::mutex> lk(mu_);
        return cv_.wait_for(lk, timeout,
                            [&] { return sleepers_ >= n; });
    }

  private:
    std::atomic<uint64_t> now_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    size_t sleepers_ = 0;
    bool released_ = false;
};

} // namespace wsearch

#endif // WSEARCH_SERVE_CLOCK_HH
