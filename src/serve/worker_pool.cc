#include "serve/worker_pool.hh"

#include <algorithm>

namespace wsearch {

namespace {

LeafServer::Config
leafConfigFor(const LeafWorkerPool::Config &cfg)
{
    LeafServer::Config lc = cfg.leaf;
    lc.numThreads = cfg.numWorkers;
    lc.clock = cfg.clock;
    return lc;
}

/**
 * Resolve Config::cacheStripes (0 = auto) to a power of two, then
 * clamp so a non-zero capacity funds every stripe with at least one
 * entry: capacity splits evenly across stripes, and a segment that
 * rounded down to zero entries would shed its whole hash class to
 * miss even though the configured total capacity is positive.
 */
size_t
stripeCountFor(const LeafWorkerPool::Config &cfg)
{
    size_t want = cfg.cacheStripes;
    if (want == 0)
        want = std::min<size_t>(
            16, std::max<uint32_t>(1, cfg.numWorkers));
    size_t n = 1;
    while (n < want)
        n *= 2;
    if (cfg.cacheCapacity > 0)
        while (n > cfg.cacheCapacity)
            n /= 2;
    return n;
}

/**
 * Model a corrupted/truncated leaf response: the tail is lost and
 * what remains arrives out of order. The root's merge must cope (it
 * re-sorts and dedups), so a corrupt reply degrades result quality
 * without ever producing an invalid page.
 */
void
corruptReply(std::vector<ScoredDoc> &docs)
{
    docs.resize(docs.size() / 2);
    std::reverse(docs.begin(), docs.end());
}

} // namespace

LeafWorkerPool::LeafWorkerPool(const IndexShard &shard,
                               const Config &cfg)
    : cfg_(cfg), leaf_(shard, leafConfigFor(cfg)),
      queue_(cfg.queueCapacity),
      cache_(cfg.cacheCapacity, stripeCountFor(cfg))
{
    wsearch_assert(cfg.numWorkers >= 1);
    slots_.reserve(cfg.numWorkers);
    for (uint32_t w = 0; w < cfg.numWorkers; ++w)
        slots_.push_back(std::make_unique<WorkerSlot>());
    threads_.reserve(cfg.numWorkers);
    for (uint32_t w = 0; w < cfg.numWorkers; ++w)
        threads_.emplace_back([this, w] { workerMain(w); });
}

LeafWorkerPool::LeafWorkerPool(
    std::shared_ptr<const IndexSnapshot> snapshot, const Config &cfg)
    : cfg_(cfg), leaf_(std::move(snapshot), leafConfigFor(cfg)),
      queue_(cfg.queueCapacity),
      cache_(cfg.cacheCapacity, stripeCountFor(cfg))
{
    wsearch_assert(cfg.numWorkers >= 1);
    slots_.reserve(cfg.numWorkers);
    for (uint32_t w = 0; w < cfg.numWorkers; ++w)
        slots_.push_back(std::make_unique<WorkerSlot>());
    threads_.reserve(cfg.numWorkers);
    for (uint32_t w = 0; w < cfg.numWorkers; ++w)
        threads_.emplace_back([this, w] { workerMain(w); });
}

LeafWorkerPool::~LeafWorkerPool()
{
    shutdown();
}

LeafWorkerPool::SubmitSlab &
LeafWorkerPool::submitSlab()
{
    // Each submitting thread sticks to one slab for its lifetime (the
    // index is global across pools: a thread that talks to several
    // replicas lands on the same slab index in each, which is fine --
    // the point is that DIFFERENT threads land on different lines).
    static std::atomic<uint32_t> next{0};
    thread_local const uint32_t idx =
        next.fetch_add(1, std::memory_order_relaxed) %
        kSubmitSlabs;
    return submitSlabs_[idx];
}

void
LeafWorkerPool::finish(ServeRequest &req,
                       std::vector<ScoredDoc> &&results,
                       ServeOutcome outcome, uint64_t index_version)
{
    if (req.done) {
        // The callback consumes the results; give the promise (rarely
        // both are set) a copy first.
        if (req.reply)
            req.reply->set_value(results);
        req.done(std::move(results), outcome, index_version);
    } else if (req.reply) {
        req.reply->set_value(std::move(results));
    }
    req.reply.reset();
    req.done = nullptr;
}

LeafWorkerPool::Admit
LeafWorkerPool::submit(const SearchRequest &request, bool block,
                       Reply reply)
{
    ServeRequest req;
    req.request = request;
    req.reply = std::move(reply);
    return enqueue(std::move(req), block);
}

LeafWorkerPool::Admit
LeafWorkerPool::submitAsync(const SearchRequest &request, bool block,
                            ServeCompletion done)
{
    ServeRequest req;
    req.request = request;
    req.done = std::move(done);
    return enqueue(std::move(req), block);
}

LeafWorkerPool::Admit
LeafWorkerPool::enqueue(ServeRequest &&req, bool block)
{
    SubmitSlab &slab = submitSlab();
    Clock &clk = clock();

    // A crashed replica refuses instantly -- before the cache tier,
    // the way a dead endpoint never opens the connection.
    if (cfg_.faults &&
        !cfg_.faults->admit(cfg_.shardId, cfg_.replicaId,
                            req.request.query.id, clk.now())) {
        slab.refused.fetch_add(1, std::memory_order_relaxed);
        finish(req, {}, ServeOutcome::Refused, 0);
        return Admit::Refused;
    }

    const bool wants_results = req.reply || req.done;
    if (cfg_.cacheCapacity > 0) {
        std::vector<ScoredDoc> hit_results;
        if (cache_.lookup(req.request.query.id,
                          wants_results ? &hit_results : nullptr,
                          &clk)) {
            slab.cacheHits.fetch_add(1, std::memory_order_relaxed);
            finish(req, std::move(hit_results), ServeOutcome::Ok,
                   leaf_.currentVersion());
            return Admit::CacheHit;
        }
    }

    req.enqueueNs = clk.now();

    // Count the acceptance before the enqueue so drain()'s
    // "completed >= accepted" predicate can never observe a completed
    // request that was not yet counted as accepted.
    slab.accepted.fetch_add(1, std::memory_order_release);
    const bool ok = block ? queue_.push(std::move(req))
                          : queue_.tryPush(std::move(req));
    if (!ok) {
        slab.accepted.fetch_sub(1, std::memory_order_release);
        slab.shed.fetch_add(1, std::memory_order_relaxed);
        // The rollback can lower the accepted total a concurrent
        // drain() already read; re-evaluate its predicate.
        notifyDrainWaiters();
        // req is untouched on a failed push; tell the waiter.
        finish(req, {}, ServeOutcome::Shed, 0);
        return Admit::Shed;
    }
    return Admit::Accepted;
}

void
LeafWorkerPool::notifyDrainWaiters()
{
    // Fence pairs with drain()'s registration fence: either this load
    // sees the waiter (and we notify through the mutex), or the
    // waiter's predicate sees our counter update (and never sleeps on
    // it). Steady-state traffic with no drain() in flight pays one
    // fence + one relaxed load here -- no lock, no notify.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (drainWaiters_.load(std::memory_order_relaxed) == 0)
        return;
    {
        // Empty critical section pairs with drain()'s wait so the
        // notify cannot slip between its predicate check and sleep.
        std::lock_guard<std::mutex> lk(drainMu_);
    }
    drainCv_.notify_all();
}

void
LeafWorkerPool::completeRequest(WorkerSlot &slot)
{
    slot.completed.fetch_add(1, std::memory_order_release);
    notifyDrainWaiters();
}

void
LeafWorkerPool::dropRequest(WorkerSlot &slot, ServeRequest &req,
                            ServeOutcome outcome,
                            std::atomic<uint64_t> &counter)
{
    counter.fetch_add(1, std::memory_order_relaxed);
    finish(req, {}, outcome, 0);
    req.request.cancel.reset();
    completeRequest(slot);
}

void
LeafWorkerPool::workerMain(uint32_t worker_id)
{
    WorkerSlot &slot = *slots_[worker_id];
    Clock &clk = clock();
    // Interference schedule: worker-local since the rework (every
    // worker pauses on every Nth of ITS OWN executions rather than
    // the pool pausing on every Nth global execution -- same pause
    // rate, no shared tick counter on the hot path).
    uint64_t interference_tick = 0;
    ServeRequest req;
    while (queue_.pop(req)) {
        uint64_t start = clk.now();

        // Drop rather than execute work nobody is waiting for: a
        // hedge whose twin already answered, or a request that sat in
        // the queue past its deadline.
        const bool dropped_cancel = req.request.cancel &&
            req.request.cancel->load(std::memory_order_acquire);
        const bool dropped_expired = !dropped_cancel &&
            req.request.deadlineNs != 0 &&
            start > req.request.deadlineNs;
        if (dropped_cancel) {
            dropRequest(slot, req, ServeOutcome::Cancelled,
                        slot.cancelled);
            continue;
        }
        if (dropped_expired) {
            dropRequest(slot, req, ServeOutcome::Expired,
                        slot.expired);
            continue;
        }

        FaultDecision fd;
        if (cfg_.faults)
            fd = cfg_.faults->onExecute(cfg_.shardId, cfg_.replicaId,
                                        req.request.query.id, start);
        if (fd.delayNs != 0) {
            // Injected slowness (or a stuck worker, which is just a
            // very large delay). The sleep may outlive the deadline
            // or the hedge twin: re-check before executing, exactly
            // like the pop-time checks above.
            clk.sleepUntil(start + fd.delayNs);
            const uint64_t now = clk.now();
            if (req.request.cancel &&
                req.request.cancel->load(std::memory_order_acquire)) {
                dropRequest(slot, req, ServeOutcome::Cancelled,
                            slot.cancelled);
                continue;
            }
            if (req.request.deadlineNs != 0 &&
                now > req.request.deadlineNs) {
                dropRequest(slot, req, ServeOutcome::Expired,
                            slot.expired);
                continue;
            }
            start = now; // service time excludes the injected delay
        }
        if (fd.fail) {
            dropRequest(slot, req, ServeOutcome::Failed,
                        slot.faultFailed);
            continue;
        }

        if (cfg_.interferenceEveryN != 0 &&
            cfg_.interferencePauseNs != 0 &&
            interference_tick++ % cfg_.interferenceEveryN ==
                cfg_.interferenceEveryN - 1) {
            clk.sleepUntil(start + cfg_.interferencePauseNs);
        }

        SearchResponse resp = leaf_.serve(worker_id, req.request);
        const uint64_t end = clk.now();

        if (fd.corrupt) {
            slot.faultCorrupted.fetch_add(
                1, std::memory_order_relaxed);
            corruptReply(resp.docs);
            resp.degraded = true; // never cache a corrupted page
        }

        // Never cache a degraded page: the next asker deserves the
        // full answer, not whatever a deadline-clipped run salvaged.
        if (cfg_.cacheCapacity > 0 && !resp.degraded)
            cache_.insert(req.request.query.id, resp.docs);
        {
            std::lock_guard<std::mutex> lk(slot.mu);
            ++slot.counters.served;
            slot.counters.busyNs += end - start;
            slot.serviceNs.record(end - start);
            slot.sojournNs.record(end - req.enqueueNs);
        }
        if (fd.dropReply) {
            // The reply is lost in flight: the caller sees silence.
            // (The promise channel -- closed-loop tests -- is still
            // fulfilled; silence only makes sense for async callers
            // that own a deadline.)
            slot.faultDropped.fetch_add(1,
                                        std::memory_order_relaxed);
            req.done = nullptr;
        }
        // The executor reports !ok only when it observed the cancel
        // flag or an already-passed deadline before starting.
        const ServeOutcome outcome = resp.ok ? ServeOutcome::Ok
            : (req.request.cancel &&
               req.request.cancel->load(std::memory_order_acquire))
            ? ServeOutcome::Cancelled
            : ServeOutcome::Expired;
        finish(req, std::move(resp.docs), outcome,
               resp.indexVersion);
        req.request.cancel.reset();

        completeRequest(slot);
    }
}

uint64_t
LeafWorkerPool::acceptedApprox() const
{
    uint64_t n = 0;
    for (const SubmitSlab &slab : submitSlabs_)
        n += slab.accepted.load(std::memory_order_acquire);
    return n;
}

uint64_t
LeafWorkerPool::completedApprox() const
{
    uint64_t n = 0;
    for (const auto &slot : slots_)
        n += slot->completed.load(std::memory_order_acquire);
    return n;
}

void
LeafWorkerPool::drain()
{
    std::unique_lock<std::mutex> lk(drainMu_);
    drainWaiters_.fetch_add(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    drainCv_.wait(lk, [this] {
        // completed first: both totals only grow, so a stale-low
        // completed read is the safe side. completed(t1) >=
        // accepted(t2) with t1 <= t2 means every request accepted by
        // t2 had already completed -- a true quiescent point. The
        // reverse order can pair a fresh completed total with a stale
        // accepted total and declare the pool drained while a request
        // accepted before the reads is still in flight.
        const uint64_t done = completedApprox();
        return done >= acceptedApprox();
    });
    drainWaiters_.fetch_sub(1, std::memory_order_relaxed);
}

void
LeafWorkerPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lk(drainMu_);
        if (joined_)
            return;
        joined_ = true;
    }
    queue_.close();
    for (std::thread &t : threads_)
        t.join();
}

ServeSnapshot
LeafWorkerPool::snapshot() const
{
    ServeSnapshot s;
    for (const SubmitSlab &slab : submitSlabs_) {
        s.accepted += slab.accepted.load(std::memory_order_acquire);
        s.shed += slab.shed.load(std::memory_order_relaxed);
        s.cacheHits +=
            slab.cacheHits.load(std::memory_order_relaxed);
        s.refused += slab.refused.load(std::memory_order_relaxed);
    }
    // Derived, not stored: the admission identity
    // submitted == accepted + shed + cacheHits + refused therefore
    // holds at any instant by construction.
    s.submitted = s.accepted + s.shed + s.cacheHits + s.refused;
    for (const auto &slot : slots_) {
        s.expired += slot->expired.load(std::memory_order_relaxed);
        s.cancelled +=
            slot->cancelled.load(std::memory_order_relaxed);
        s.faultFailed +=
            slot->faultFailed.load(std::memory_order_relaxed);
        s.faultDropped +=
            slot->faultDropped.load(std::memory_order_relaxed);
        s.faultCorrupted +=
            slot->faultCorrupted.load(std::memory_order_relaxed);
        s.completed +=
            slot->completed.load(std::memory_order_acquire);
    }
    if (leaf_.live()) {
        s.snapshotsAdopted = leaf_.snapshotsAdopted();
        s.handoffsRejected = leaf_.handoffsRejected();
        s.indexVersionLow = s.indexVersionHigh =
            leaf_.currentVersion();
    }
    s.workers.reserve(slots_.size());
    for (const auto &slot : slots_) {
        std::lock_guard<std::mutex> lk(slot->mu);
        s.workers.push_back(slot->counters);
        s.serviceNs.merge(slot->serviceNs);
        s.sojournNs.merge(slot->sojournNs);
    }
    const StripedQueryCache::Totals cache_totals = cache_.totals();
    s.cacheLookups = cache_totals.lookups;
    s.cacheEvictions = cache_totals.evictions;
    s.cacheHitNs = cache_.hitHistogram();
    return s;
}

} // namespace wsearch
