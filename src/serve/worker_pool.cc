#include "serve/worker_pool.hh"

#include <algorithm>

namespace wsearch {

namespace {

LeafServer::Config
leafConfigFor(const LeafWorkerPool::Config &cfg)
{
    LeafServer::Config lc = cfg.leaf;
    lc.numThreads = cfg.numWorkers;
    lc.clock = cfg.clock;
    return lc;
}

/**
 * Model a corrupted/truncated leaf response: the tail is lost and
 * what remains arrives out of order. The root's merge must cope (it
 * re-sorts and dedups), so a corrupt reply degrades result quality
 * without ever producing an invalid page.
 */
void
corruptReply(std::vector<ScoredDoc> &docs)
{
    docs.resize(docs.size() / 2);
    std::reverse(docs.begin(), docs.end());
}

} // namespace

LeafWorkerPool::LeafWorkerPool(const IndexShard &shard,
                               const Config &cfg)
    : cfg_(cfg), leaf_(shard, leafConfigFor(cfg)),
      queue_(cfg.queueCapacity), cache_(cfg.cacheCapacity)
{
    wsearch_assert(cfg.numWorkers >= 1);
    slots_.reserve(cfg.numWorkers);
    for (uint32_t w = 0; w < cfg.numWorkers; ++w)
        slots_.push_back(std::make_unique<WorkerSlot>());
    threads_.reserve(cfg.numWorkers);
    for (uint32_t w = 0; w < cfg.numWorkers; ++w)
        threads_.emplace_back([this, w] { workerMain(w); });
}

LeafWorkerPool::LeafWorkerPool(
    std::shared_ptr<const IndexSnapshot> snapshot, const Config &cfg)
    : cfg_(cfg), leaf_(std::move(snapshot), leafConfigFor(cfg)),
      queue_(cfg.queueCapacity), cache_(cfg.cacheCapacity)
{
    wsearch_assert(cfg.numWorkers >= 1);
    slots_.reserve(cfg.numWorkers);
    for (uint32_t w = 0; w < cfg.numWorkers; ++w)
        slots_.push_back(std::make_unique<WorkerSlot>());
    threads_.reserve(cfg.numWorkers);
    for (uint32_t w = 0; w < cfg.numWorkers; ++w)
        threads_.emplace_back([this, w] { workerMain(w); });
}

LeafWorkerPool::~LeafWorkerPool()
{
    shutdown();
}

void
LeafWorkerPool::finish(ServeRequest &req,
                       std::vector<ScoredDoc> &&results,
                       ServeOutcome outcome, uint64_t index_version)
{
    if (req.done) {
        // The callback consumes the results; give the promise (rarely
        // both are set) a copy first.
        if (req.reply)
            req.reply->set_value(results);
        req.done(std::move(results), outcome, index_version);
    } else if (req.reply) {
        req.reply->set_value(std::move(results));
    }
    req.reply.reset();
    req.done = nullptr;
}

LeafWorkerPool::Admit
LeafWorkerPool::submit(const SearchRequest &request, bool block,
                       Reply reply)
{
    ServeRequest req;
    req.request = request;
    req.reply = std::move(reply);
    return enqueue(std::move(req), block);
}

LeafWorkerPool::Admit
LeafWorkerPool::submitAsync(const SearchRequest &request, bool block,
                            ServeCompletion done)
{
    ServeRequest req;
    req.request = request;
    req.done = std::move(done);
    return enqueue(std::move(req), block);
}

LeafWorkerPool::Admit
LeafWorkerPool::enqueue(ServeRequest &&req, bool block)
{
    submitted_.fetch_add(1, std::memory_order_relaxed);
    Clock &clk = clock();

    // A crashed replica refuses instantly -- before the cache tier,
    // the way a dead endpoint never opens the connection.
    if (cfg_.faults &&
        !cfg_.faults->admit(cfg_.shardId, cfg_.replicaId,
                            req.request.query.id, clk.now())) {
        refused_.fetch_add(1, std::memory_order_relaxed);
        finish(req, {}, ServeOutcome::Refused, 0);
        return Admit::Refused;
    }

    const bool wants_results = req.reply || req.done;
    if (cfg_.cacheCapacity > 0) {
        const uint64_t t0 = clk.now();
        std::vector<ScoredDoc> hit_results;
        bool hit;
        {
            std::lock_guard<std::mutex> lk(cacheMu_);
            hit = cache_.lookup(req.request.query.id,
                                wants_results ? &hit_results : nullptr);
            if (hit)
                cacheHitNs_.record(clk.now() - t0);
        }
        if (hit) {
            cacheHits_.fetch_add(1, std::memory_order_relaxed);
            finish(req, std::move(hit_results), ServeOutcome::Ok,
                   leaf_.currentVersion());
            return Admit::CacheHit;
        }
    }

    req.enqueueNs = clk.now();

    // Count the acceptance before the enqueue so drain()'s
    // "completed == accepted" predicate can never observe a completed
    // request that was not yet counted as accepted.
    accepted_.fetch_add(1, std::memory_order_relaxed);
    const bool ok = block ? queue_.push(std::move(req))
                          : queue_.tryPush(std::move(req));
    if (!ok) {
        accepted_.fetch_sub(1, std::memory_order_relaxed);
        shed_.fetch_add(1, std::memory_order_relaxed);
        // req is untouched on a failed push; tell the waiter.
        finish(req, {}, ServeOutcome::Shed, 0);
        return Admit::Shed;
    }
    return Admit::Accepted;
}

void
LeafWorkerPool::dropRequest(ServeRequest &req, ServeOutcome outcome,
                            std::atomic<uint64_t> &counter)
{
    counter.fetch_add(1, std::memory_order_relaxed);
    finish(req, {}, outcome, 0);
    req.request.cancel.reset();
    completed_.fetch_add(1, std::memory_order_release);
    {
        // Empty critical section pairs with drain()'s wait so the
        // notify cannot slip between its predicate check and sleep.
        std::lock_guard<std::mutex> lk(drainMu_);
    }
    drainCv_.notify_all();
}

void
LeafWorkerPool::workerMain(uint32_t worker_id)
{
    WorkerSlot &slot = *slots_[worker_id];
    Clock &clk = clock();
    ServeRequest req;
    while (queue_.pop(req)) {
        uint64_t start = clk.now();

        // Drop rather than execute work nobody is waiting for: a
        // hedge whose twin already answered, or a request that sat in
        // the queue past its deadline.
        const bool dropped_cancel = req.request.cancel &&
            req.request.cancel->load(std::memory_order_acquire);
        const bool dropped_expired = !dropped_cancel &&
            req.request.deadlineNs != 0 &&
            start > req.request.deadlineNs;
        if (dropped_cancel) {
            dropRequest(req, ServeOutcome::Cancelled, cancelled_);
            continue;
        }
        if (dropped_expired) {
            dropRequest(req, ServeOutcome::Expired, expired_);
            continue;
        }

        FaultDecision fd;
        if (cfg_.faults)
            fd = cfg_.faults->onExecute(cfg_.shardId, cfg_.replicaId,
                                        req.request.query.id, start);
        if (fd.delayNs != 0) {
            // Injected slowness (or a stuck worker, which is just a
            // very large delay). The sleep may outlive the deadline
            // or the hedge twin: re-check before executing, exactly
            // like the pop-time checks above.
            clk.sleepUntil(start + fd.delayNs);
            const uint64_t now = clk.now();
            if (req.request.cancel &&
                req.request.cancel->load(std::memory_order_acquire)) {
                dropRequest(req, ServeOutcome::Cancelled, cancelled_);
                continue;
            }
            if (req.request.deadlineNs != 0 &&
                now > req.request.deadlineNs) {
                dropRequest(req, ServeOutcome::Expired, expired_);
                continue;
            }
            start = now; // service time excludes the injected delay
        }
        if (fd.fail) {
            dropRequest(req, ServeOutcome::Failed, faultFailed_);
            continue;
        }

        if (cfg_.interferenceEveryN != 0 &&
            cfg_.interferencePauseNs != 0 &&
            interferenceTick_.fetch_add(1, std::memory_order_relaxed) %
                    cfg_.interferenceEveryN ==
                cfg_.interferenceEveryN - 1) {
            clk.sleepUntil(start + cfg_.interferencePauseNs);
        }

        SearchResponse resp = leaf_.serve(worker_id, req.request);
        const uint64_t end = clk.now();

        if (fd.corrupt) {
            faultCorrupted_.fetch_add(1, std::memory_order_relaxed);
            corruptReply(resp.docs);
            resp.degraded = true; // never cache a corrupted page
        }

        // Never cache a degraded page: the next asker deserves the
        // full answer, not whatever a deadline-clipped run salvaged.
        if (cfg_.cacheCapacity > 0 && !resp.degraded) {
            std::lock_guard<std::mutex> lk(cacheMu_);
            cache_.insert(req.request.query.id, resp.docs);
        }
        {
            std::lock_guard<std::mutex> lk(slot.mu);
            ++slot.counters.served;
            slot.counters.busyNs += end - start;
            slot.serviceNs.record(end - start);
            slot.sojournNs.record(end - req.enqueueNs);
        }
        if (fd.dropReply) {
            // The reply is lost in flight: the caller sees silence.
            // (The promise channel -- closed-loop tests -- is still
            // fulfilled; silence only makes sense for async callers
            // that own a deadline.)
            faultDropped_.fetch_add(1, std::memory_order_relaxed);
            req.done = nullptr;
        }
        // The executor reports !ok only when it observed the cancel
        // flag or an already-passed deadline before starting.
        const ServeOutcome outcome = resp.ok ? ServeOutcome::Ok
            : (req.request.cancel &&
               req.request.cancel->load(std::memory_order_acquire))
            ? ServeOutcome::Cancelled
            : ServeOutcome::Expired;
        finish(req, std::move(resp.docs), outcome,
               resp.indexVersion);
        req.request.cancel.reset();

        completed_.fetch_add(1, std::memory_order_release);
        {
            // Empty critical section pairs with drain()'s wait so the
            // notify cannot slip between its predicate check and sleep.
            std::lock_guard<std::mutex> lk(drainMu_);
        }
        drainCv_.notify_all();
    }
}

void
LeafWorkerPool::drain()
{
    std::unique_lock<std::mutex> lk(drainMu_);
    drainCv_.wait(lk, [this] {
        return completed_.load(std::memory_order_acquire) >=
            accepted_.load(std::memory_order_acquire);
    });
}

void
LeafWorkerPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lk(drainMu_);
        if (joined_)
            return;
        joined_ = true;
    }
    queue_.close();
    for (std::thread &t : threads_)
        t.join();
}

ServeSnapshot
LeafWorkerPool::snapshot() const
{
    ServeSnapshot s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.accepted = accepted_.load(std::memory_order_relaxed);
    s.shed = shed_.load(std::memory_order_relaxed);
    s.cacheHits = cacheHits_.load(std::memory_order_relaxed);
    s.refused = refused_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_acquire);
    s.expired = expired_.load(std::memory_order_relaxed);
    s.cancelled = cancelled_.load(std::memory_order_relaxed);
    s.faultFailed = faultFailed_.load(std::memory_order_relaxed);
    s.faultDropped = faultDropped_.load(std::memory_order_relaxed);
    s.faultCorrupted =
        faultCorrupted_.load(std::memory_order_relaxed);
    if (leaf_.live()) {
        s.snapshotsAdopted = leaf_.snapshotsAdopted();
        s.handoffsRejected = leaf_.handoffsRejected();
        s.indexVersionLow = s.indexVersionHigh =
            leaf_.currentVersion();
    }
    s.workers.reserve(slots_.size());
    for (const auto &slot : slots_) {
        std::lock_guard<std::mutex> lk(slot->mu);
        s.workers.push_back(slot->counters);
        s.serviceNs.merge(slot->serviceNs);
        s.sojournNs.merge(slot->sojournNs);
    }
    {
        std::lock_guard<std::mutex> lk(cacheMu_);
        s.cacheLookups = cache_.lookups();
        s.cacheEvictions = cache_.evictions();
        s.cacheHitNs = cacheHitNs_;
    }
    return s;
}

} // namespace wsearch
