#include "serve/worker_pool.hh"

#include "serve/clock.hh"

namespace wsearch {

namespace {

LeafServer::Config
leafConfigFor(const LeafWorkerPool::Config &cfg)
{
    LeafServer::Config lc = cfg.leaf;
    lc.numThreads = cfg.numWorkers;
    return lc;
}

} // namespace

LeafWorkerPool::LeafWorkerPool(const IndexShard &shard,
                               const Config &cfg)
    : cfg_(cfg), leaf_(shard, leafConfigFor(cfg)),
      queue_(cfg.queueCapacity), cache_(cfg.cacheCapacity)
{
    wsearch_assert(cfg.numWorkers >= 1);
    slots_.reserve(cfg.numWorkers);
    for (uint32_t w = 0; w < cfg.numWorkers; ++w)
        slots_.push_back(std::make_unique<WorkerSlot>());
    threads_.reserve(cfg.numWorkers);
    for (uint32_t w = 0; w < cfg.numWorkers; ++w)
        threads_.emplace_back([this, w] { workerMain(w); });
}

LeafWorkerPool::~LeafWorkerPool()
{
    shutdown();
}

LeafWorkerPool::Admit
LeafWorkerPool::submit(const Query &query, bool block, Reply reply)
{
    submitted_.fetch_add(1, std::memory_order_relaxed);

    if (cfg_.cacheCapacity > 0) {
        const uint64_t t0 = nowNs();
        std::vector<ScoredDoc> hit_results;
        bool hit;
        {
            std::lock_guard<std::mutex> lk(cacheMu_);
            hit = cache_.lookup(query.id,
                                reply ? &hit_results : nullptr);
            if (hit)
                cacheHitNs_.record(nowNs() - t0);
        }
        if (hit) {
            cacheHits_.fetch_add(1, std::memory_order_relaxed);
            if (reply)
                reply->set_value(std::move(hit_results));
            return Admit::CacheHit;
        }
    }

    ServeRequest req;
    req.query = query;
    req.enqueueNs = nowNs();
    req.reply = std::move(reply);

    // Count the acceptance before the enqueue so drain()'s
    // "completed == accepted" predicate can never observe a completed
    // request that was not yet counted as accepted.
    accepted_.fetch_add(1, std::memory_order_relaxed);
    const bool ok = block ? queue_.push(std::move(req))
                          : queue_.tryPush(std::move(req));
    if (!ok) {
        accepted_.fetch_sub(1, std::memory_order_relaxed);
        shed_.fetch_add(1, std::memory_order_relaxed);
        // req is untouched on a failed push; tell the waiter.
        if (req.reply)
            req.reply->set_value({});
        return Admit::Shed;
    }
    return Admit::Accepted;
}

void
LeafWorkerPool::workerMain(uint32_t worker_id)
{
    WorkerSlot &slot = *slots_[worker_id];
    ServeRequest req;
    while (queue_.pop(req)) {
        const uint64_t start = nowNs();
        std::vector<ScoredDoc> results =
            leaf_.serve(worker_id, req.query);
        const uint64_t end = nowNs();

        if (cfg_.cacheCapacity > 0) {
            std::lock_guard<std::mutex> lk(cacheMu_);
            cache_.insert(req.query.id, results);
        }
        {
            std::lock_guard<std::mutex> lk(slot.mu);
            ++slot.counters.served;
            slot.counters.busyNs += end - start;
            slot.serviceNs.record(end - start);
            slot.sojournNs.record(end - req.enqueueNs);
        }
        if (req.reply)
            req.reply->set_value(std::move(results));
        req.reply.reset();

        completed_.fetch_add(1, std::memory_order_release);
        {
            // Empty critical section pairs with drain()'s wait so the
            // notify cannot slip between its predicate check and sleep.
            std::lock_guard<std::mutex> lk(drainMu_);
        }
        drainCv_.notify_all();
    }
}

void
LeafWorkerPool::drain()
{
    std::unique_lock<std::mutex> lk(drainMu_);
    drainCv_.wait(lk, [this] {
        return completed_.load(std::memory_order_acquire) >=
            accepted_.load(std::memory_order_acquire);
    });
}

void
LeafWorkerPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lk(drainMu_);
        if (joined_)
            return;
        joined_ = true;
    }
    queue_.close();
    for (std::thread &t : threads_)
        t.join();
}

ServeSnapshot
LeafWorkerPool::snapshot() const
{
    ServeSnapshot s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.accepted = accepted_.load(std::memory_order_relaxed);
    s.shed = shed_.load(std::memory_order_relaxed);
    s.cacheHits = cacheHits_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_acquire);
    s.workers.reserve(slots_.size());
    for (const auto &slot : slots_) {
        std::lock_guard<std::mutex> lk(slot->mu);
        s.workers.push_back(slot->counters);
        s.serviceNs.merge(slot->serviceNs);
        s.sojournNs.merge(slot->sojournNs);
    }
    {
        std::lock_guard<std::mutex> lk(cacheMu_);
        s.cacheLookups = cache_.lookups();
        s.cacheEvictions = cache_.evictions();
        s.cacheHitNs = cacheHitNs_;
    }
    return s;
}

} // namespace wsearch
