/**
 * @file
 * Observability snapshot for the serving runtime: admission counters,
 * per-worker throughput, and merged latency histograms (sojourn =
 * queue wait + service; service = executor time only). Snapshots are
 * taken with per-worker locks so they are safe at any time, including
 * while traffic is in flight, which is what makes periodic stats
 * reporting possible.
 */

#ifndef WSEARCH_SERVE_SERVE_STATS_HH
#define WSEARCH_SERVE_SERVE_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/latency_histogram.hh"

namespace wsearch {

/** Per-worker throughput counters. */
struct WorkerCounters
{
    uint64_t served = 0; ///< requests completed by this worker
    uint64_t busyNs = 0; ///< time spent executing (not waiting)
};

/** Point-in-time view of a LeafWorkerPool. */
struct ServeSnapshot
{
    // Admission.
    uint64_t submitted = 0; ///< submit() calls
    uint64_t accepted = 0;  ///< enqueued for a worker
    uint64_t shed = 0;      ///< refused (queue full or closed)
    uint64_t cacheHits = 0; ///< answered by the query-cache tier
    uint64_t refused = 0;   ///< refused by the fault injector (crash)

    // Completion. completed counts every accepted request a worker
    // took off the queue, including the ones it dropped un-executed:
    // expired (sat in queue past the request deadline), cancelled
    // (hedge twin already answered), and injected failures
    // (faultFailed). Executed work is the difference.
    uint64_t completed = 0; ///< accepted requests finished (any way)
    uint64_t expired = 0;   ///< dropped: deadline already passed
    uint64_t cancelled = 0; ///< dropped: cancellation flag was set

    // Fault-injection outcomes (zeros without an injector).
    uint64_t faultFailed = 0;    ///< injected execution failures
    uint64_t faultDropped = 0;   ///< executed, completion suppressed
    uint64_t faultCorrupted = 0; ///< executed, payload corrupted

    // Query-cache tier (zeros when the cache is disabled).
    uint64_t cacheLookups = 0;
    uint64_t cacheEvictions = 0;

    // Live-index rollout (zeros for frozen-shard pools).
    uint64_t snapshotsAdopted = 0;  ///< successful snapshot swaps
    uint64_t handoffsRejected = 0;  ///< torn/stale handoffs refused
    /** Range of index versions being served across merged pools
     *  (min/max of the per-pool current version, ignoring frozen
     *  pools, which report 0). Equal low/high means the whole fleet
     *  serves one version. */
    uint64_t indexVersionLow = 0;
    uint64_t indexVersionHigh = 0;

    /** End-to-end latency of worker-executed requests (ns). */
    LatencyHistogram sojournNs;
    /** Executor-only service time (ns). */
    LatencyHistogram serviceNs;
    /** Latency of cache-hit responses (ns; tiny by design). */
    LatencyHistogram cacheHitNs;

    std::vector<WorkerCounters> workers;

    /** Requests a worker actually ran to completion. */
    uint64_t
    executed() const
    {
        return completed - expired - cancelled - faultFailed;
    }

    /** Every submit is accounted exactly once, and completions cover
     *  their drop reasons. Must hold at any instant, under faults. */
    bool
    consistent() const
    {
        return submitted == accepted + shed + cacheHits + refused &&
            completed >= expired + cancelled + faultFailed &&
            faultDropped + faultCorrupted <= completed &&
            indexVersionLow <= indexVersionHigh;
    }

    /** Accumulate @p other's counters/histograms (fleet-wide view). */
    void merge(const ServeSnapshot &other);
};

/**
 * Print a full report for @p snap: a summary table (admission, tail
 * latencies) and a per-worker table, via util/table so the output can
 * be pasted into EXPERIMENTS.md. @p duration_sec scales throughput
 * rows; pass 0 to omit rates.
 */
void printServeReport(const ServeSnapshot &snap, double duration_sec);

/** Format @p ns as microseconds with two decimals, e.g. "123.45". */
std::string fmtUsec(uint64_t ns);

} // namespace wsearch

#endif // WSEARCH_SERVE_SERVE_STATS_HH
