/**
 * @file
 * Concurrent leaf serving runtime (paper §IV's throughput-bound,
 * latency-constrained leaf). A LeafWorkerPool owns:
 *
 *  - a bounded MPMC request queue (admission control: blocking push
 *    for closed-loop clients, shed-on-full for open-loop overload);
 *  - N std::thread workers, each serving queries on its own logical
 *    thread id of a shared LeafServer -- i.e. a per-thread
 *    QueryExecutor with tid-tagged scratch over one shared IndexShard,
 *    exactly the paper's SMT co-location model;
 *  - the query-result cache tier (ServingTree's front tier, here
 *    mutex-guarded) sitting in front of the queue, so popular queries
 *    never occupy a worker;
 *  - per-worker latency histograms and throughput counters, merged
 *    into a ServeSnapshot that is safe to take mid-traffic.
 *
 * The pool runs untraced (NullTouchSink): this subsystem measures
 * wall-clock tail latency of the real engine, not simulated memory
 * behavior.
 */

#ifndef WSEARCH_SERVE_WORKER_POOL_HH
#define WSEARCH_SERVE_WORKER_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "search/cache_server.hh"
#include "search/leaf.hh"
#include "search/query.hh"
#include "serve/bounded_queue.hh"
#include "serve/serve_stats.hh"

namespace wsearch {

/** One queued unit of work. */
struct ServeRequest
{
    Query query;
    uint64_t enqueueNs = 0; ///< stamped by submit()
    /** Optional completion channel (closed-loop clients, tests). */
    std::shared_ptr<std::promise<std::vector<ScoredDoc>>> reply;
};

/** Thread pool executing queries from a bounded queue. */
class LeafWorkerPool
{
  public:
    using Reply = std::shared_ptr<std::promise<std::vector<ScoredDoc>>>;

    struct Config
    {
        uint32_t numWorkers = 2;
        size_t queueCapacity = 1024;
        /** Query-result cache entries in front of the queue (0 off). */
        size_t cacheCapacity = 0;
        /** Leaf configuration; numThreads is overridden to
         *  numWorkers so each worker owns executor tid == worker id. */
        LeafServer::Config leaf;
    };

    /** Admission verdict for one submit(). */
    enum class Admit
    {
        Accepted, ///< enqueued; a worker will execute it
        CacheHit, ///< answered inline from the cache tier
        Shed,     ///< refused: queue full (non-blocking) or shut down
    };

    /** Workers start immediately. @p shard must outlive the pool. */
    LeafWorkerPool(const IndexShard &shard, const Config &cfg);

    /** Shuts down and joins (drops any still-queued requests). */
    ~LeafWorkerPool();

    LeafWorkerPool(const LeafWorkerPool &) = delete;
    LeafWorkerPool &operator=(const LeafWorkerPool &) = delete;

    /**
     * Submit one query.
     * @param block true: wait for queue space (closed-loop); false:
     *              shed immediately when the queue is full (open-loop)
     * @param reply optional; fulfilled with the results on CacheHit /
     *              completion, or with {} when shed
     */
    Admit submit(const Query &query, bool block,
                 Reply reply = nullptr);

    /** Wait until every accepted request has completed. */
    void drain();

    /**
     * Stop accepting work, finish already-queued requests, join all
     * workers. Idempotent; called by the destructor.
     */
    void shutdown();

    /** Instantaneous queue depth (for load-generator sampling). */
    size_t queueDepth() const { return queue_.depth(); }

    /** Merged counters + histograms; callable while traffic runs. */
    ServeSnapshot snapshot() const;

    const LeafServer &leaf() const { return leaf_; }
    const Config &config() const { return cfg_; }

  private:
    /** Mutex-guarded per-worker stats; workers touch only their own
     *  slot, so the lock is uncontended except during snapshots. */
    struct WorkerSlot
    {
        mutable std::mutex mu;
        WorkerCounters counters;
        LatencyHistogram serviceNs;
        LatencyHistogram sojournNs;
    };

    void workerMain(uint32_t worker_id);

    Config cfg_;
    LeafServer leaf_;
    BoundedQueue<ServeRequest> queue_;
    std::vector<std::unique_ptr<WorkerSlot>> slots_;
    std::vector<std::thread> threads_;

    // Cache tier (front of the queue).
    mutable std::mutex cacheMu_;
    QueryCacheServer cache_;
    LatencyHistogram cacheHitNs_; ///< guarded by cacheMu_

    // Admission/completion counters.
    std::atomic<uint64_t> submitted_{0};
    std::atomic<uint64_t> accepted_{0};
    std::atomic<uint64_t> shed_{0};
    std::atomic<uint64_t> cacheHits_{0};
    std::atomic<uint64_t> completed_{0};

    // drain() support.
    mutable std::mutex drainMu_;
    std::condition_variable drainCv_;

    bool joined_ = false;
};

} // namespace wsearch

#endif // WSEARCH_SERVE_WORKER_POOL_HH
