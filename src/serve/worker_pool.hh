/**
 * @file
 * Concurrent leaf serving runtime (paper §IV's throughput-bound,
 * latency-constrained leaf). A LeafWorkerPool owns:
 *
 *  - a bounded MPMC request queue (admission control: blocking push
 *    for closed-loop clients, shed-on-full for open-loop overload) --
 *    a lock-free Vyukov ticket ring since the contention-free rework;
 *  - N std::thread workers, each serving queries on its own logical
 *    thread id of a shared LeafServer -- i.e. a per-thread
 *    QueryExecutor with tid-tagged scratch over one shared IndexShard,
 *    exactly the paper's SMT co-location model;
 *  - the query-result cache tier (ServingTree's front tier, here
 *    lock-striped into hash-partitioned segments) sitting in front of
 *    the queue, so popular queries never occupy a worker;
 *  - per-worker latency histograms and throughput counters on
 *    per-worker stats slabs (no shared hot atomics on the completion
 *    path), merged into a ServeSnapshot that is safe to take
 *    mid-traffic.
 *
 * The pool runs untraced (NullTouchSink): this subsystem measures
 * wall-clock tail latency of the real engine, not simulated memory
 * behavior.
 */

#ifndef WSEARCH_SERVE_WORKER_POOL_HH
#define WSEARCH_SERVE_WORKER_POOL_HH

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "search/leaf.hh"
#include "search/query.hh"
#include "serve/bounded_queue.hh"
#include "serve/clock.hh"
#include "serve/fault.hh"
#include "serve/serve_stats.hh"
#include "serve/striped_cache.hh"

namespace wsearch {

/**
 * How one submitted request resolved. Scatter-gather callers use the
 * distinction to pick a recovery action: Shed/Refused/Failed are
 * *replica* problems (retry elsewhere, count against its health);
 * Expired/Cancelled are *query* outcomes (deadline pressure or a
 * hedge twin winning) that say nothing about replica health.
 */
enum class ServeOutcome : uint8_t
{
    Ok,        ///< executed (or cache hit); results are valid
    Shed,      ///< refused at admission: queue full or shut down
    Refused,   ///< refused at admission: replica crashed
    Expired,   ///< dropped: deadline passed before execution
    Cancelled, ///< dropped: cancel flag set before execution
    Failed,    ///< execution failed at the replica
};

/**
 * Completion callback: results are valid only for ServeOutcome::Ok.
 * May fire on the submitting thread (cache hit, shed, refused) or on
 * a worker thread, so implementations must be thread-safe and must
 * not call back into the pool. @p index_version is the IndexSnapshot
 * version the answer was computed against (0: frozen shard, or no
 * execution happened).
 */
using ServeCompletion = std::function<void(
    std::vector<ScoredDoc> &&results, ServeOutcome outcome,
    uint64_t index_version)>;

/** One queued unit of work. */
struct ServeRequest
{
    /**
     * The query plus its serving policy. A worker that pops a request
     * whose deadline already passed (or whose cancel flag is set --
     * e.g. its hedge twin answered) drops it instead of executing:
     * nobody is waiting, so the cycles are better spent on requests
     * that can still make their deadlines. A request that starts in
     * time still honors deadline/cancel *mid-query* inside the
     * executor (degraded response).
     */
    SearchRequest request;
    uint64_t enqueueNs = 0; ///< stamped by submit()
    /** Optional completion channel (closed-loop clients, tests). */
    std::shared_ptr<std::promise<std::vector<ScoredDoc>>> reply;
    /** Optional async completion channel (scatter-gather clients). */
    ServeCompletion done;
};

/** Thread pool executing queries from a bounded queue. */
class LeafWorkerPool
{
  public:
    using Reply = std::shared_ptr<std::promise<std::vector<ScoredDoc>>>;

    struct Config
    {
        uint32_t numWorkers = 2;
        size_t queueCapacity = 1024;
        /**
         * Query-result cache entries in front of the queue (0 off).
         * Since the tier is lock-striped, capacity is PARTITIONED
         * across stripes (capacity / stripes per segment), not pooled
         * in one global LRU: a hot segment evicts at its own share
         * while cold segments sit underfull, so heavily skewed query
         * mixes can see a lower hit rate than a single LRU of the
         * same total capacity would give.
         */
        size_t cacheCapacity = 0;
        /**
         * Lock stripes for the cache tier. 0 = auto: the smallest
         * power of two >= numWorkers, clamped to 16 -- enough that
         * concurrent admissions on distinct queries take distinct
         * locks. Any explicit value is rounded up to a power of two.
         * Either way the count is then clamped down so a non-zero
         * cacheCapacity funds every stripe with >= 1 entry (a segment
         * split down to zero entries would shed its whole hash class
         * to miss).
         */
        size_t cacheStripes = 0;
        /**
         * Background-interference model ("The Tail at Scale"): every
         * interferenceEveryN-th execution on this pool stalls for
         * interferencePauseNs before serving -- a sleep, not busy
         * work, the way an antagonist co-runner or a GC pause stalls
         * a real replica. Either field 0 disables. This is what gives
         * a hedged cluster stragglers that a backup replica can beat.
         */
        uint32_t interferenceEveryN = 0;
        uint64_t interferencePauseNs = 0;
        /** Leaf configuration; numThreads is overridden to
         *  numWorkers so each worker owns executor tid == worker id,
         *  and the leaf clock is overridden to this pool's clock. */
        LeafServer::Config leaf;
        /**
         * This pool's identity within a cluster, passed to the fault
         * injector so plans can target one replica of one shard.
         */
        uint32_t shardId = 0;
        uint32_t replicaId = 0;
        /** Time source for every timestamp, deadline check, and
         *  injected delay (null = the real steady clock). */
        Clock *clock = nullptr;
        /** Fault injector consulted at admission and execution (null
         *  = no faults; must outlive the pool). */
        const FaultInjector *faults = nullptr;
    };

    /** Admission verdict for one submit(). */
    enum class Admit
    {
        Accepted, ///< enqueued; a worker will execute it
        CacheHit, ///< answered inline from the cache tier
        Shed,     ///< refused: queue full (non-blocking) or shut down
        Refused,  ///< refused: the fault injector crashed this replica
    };

    /** Workers start immediately. @p shard must outlive the pool. */
    LeafWorkerPool(const IndexShard &shard, const Config &cfg);

    /**
     * Live-leaf replica serving @p snapshot (see LeafServer's live
     * mode). The served version advances via
     * leafMutable().adoptSnapshot() -- the cluster's rollout path.
     */
    LeafWorkerPool(std::shared_ptr<const IndexSnapshot> snapshot,
                   const Config &cfg);

    /** Shuts down and joins (drops any still-queued requests). */
    ~LeafWorkerPool();

    LeafWorkerPool(const LeafWorkerPool &) = delete;
    LeafWorkerPool &operator=(const LeafWorkerPool &) = delete;

    /**
     * Submit one request (query + deadline/cancel/algo policy).
     * @param block true: wait for queue space (closed-loop); false:
     *              shed immediately when the queue is full (open-loop)
     * @param reply optional; fulfilled with the results on CacheHit /
     *              completion, or with {} when shed
     */
    Admit submit(const SearchRequest &request, bool block,
                 Reply reply = nullptr);

    /**
     * Asynchronous submit for scatter-gather callers: @p done fires
     * exactly once per call (possibly synchronously, see
     * ServeCompletion) -- except when the fault injector drops the
     * completion, which models a lost response: the caller sees
     * silence and must rely on its own deadline. Deadline and cancel
     * ride in @p request (0/null = unused).
     */
    Admit submitAsync(const SearchRequest &request, bool block,
                      ServeCompletion done);

    /** Wait until every accepted request has completed. */
    void drain();

    /**
     * Stop accepting work, finish already-queued requests, join all
     * workers. Idempotent; called by the destructor.
     */
    void shutdown();

    /** Instantaneous queue depth (for load-generator sampling). */
    size_t queueDepth() const { return queue_.depth(); }

    /** Resolved cache-tier stripe count after the capacity clamp
     *  (tests / observability). */
    size_t cacheStripeCount() const { return cache_.stripeCount(); }

    /** Merged counters + histograms; callable while traffic runs. */
    ServeSnapshot snapshot() const;

    const LeafServer &leaf() const { return leaf_; }
    /** Mutable leaf access for snapshot adoption (live replicas). */
    LeafServer &leafMutable() { return leaf_; }
    const Config &config() const { return cfg_; }

  private:
    /**
     * Per-worker stats slab. The completion counters are the worker's
     * own cache line (alignas below): it is the only writer, so the
     * hot completion path is an uncontended relaxed/release increment
     * -- no shared atomic, no lock. Snapshots read the atomics from
     * any thread; the histograms stay behind the slot mutex, which
     * only a snapshot ever contends.
     */
    struct alignas(64) WorkerSlot
    {
        std::atomic<uint64_t> completed{0};
        std::atomic<uint64_t> expired{0};   ///< deadline passed
        std::atomic<uint64_t> cancelled{0}; ///< cancel flag set
        std::atomic<uint64_t> faultFailed{0};    ///< injected failures
        std::atomic<uint64_t> faultDropped{0};   ///< completions lost
        std::atomic<uint64_t> faultCorrupted{0}; ///< corrupted
        mutable std::mutex mu;
        WorkerCounters counters;
        LatencyHistogram serviceNs;
        LatencyHistogram sojournNs;
    };

    /**
     * Submission-side counter slab: admission outcomes are counted on
     * one of kSubmitSlabs cache-line-sized slabs picked per submitting
     * thread, so concurrent clients don't serialize on one counter
     * line. submitted is not stored at all -- ServeSnapshot derives
     * it as accepted + shed + cacheHits + refused at read time, which
     * keeps consistent()'s admission identity exact at ANY instant
     * (a separate counter could be observed out of step mid-flight).
     */
    struct alignas(64) SubmitSlab
    {
        std::atomic<uint64_t> accepted{0};
        std::atomic<uint64_t> shed{0};
        std::atomic<uint64_t> cacheHits{0};
        std::atomic<uint64_t> refused{0};
    };
    static constexpr size_t kSubmitSlabs = 16;

    Admit enqueue(ServeRequest &&req, bool block);
    void workerMain(uint32_t worker_id);
    static void finish(ServeRequest &req,
                       std::vector<ScoredDoc> &&results,
                       ServeOutcome outcome, uint64_t index_version);

    Clock &
    clock() const
    {
        return cfg_.clock ? *cfg_.clock : realClock();
    }

    /** The submitting thread's slab (stable per thread). */
    SubmitSlab &submitSlab();

    /** Count a popped-but-dropped request and wake drain()ers. */
    void dropRequest(WorkerSlot &slot, ServeRequest &req,
                     ServeOutcome outcome,
                     std::atomic<uint64_t> &counter);

    /** Mark one completion on @p slot and wake drain()ers (if any). */
    void completeRequest(WorkerSlot &slot);

    /** Sum of accepted over the submit slabs (drain predicate). */
    uint64_t acceptedApprox() const;
    /** Sum of completed over the worker slots (drain predicate). */
    uint64_t completedApprox() const;

    /** Wake drain() waiters; skipped when nobody waits. */
    void notifyDrainWaiters();

    Config cfg_;
    LeafServer leaf_;
    BoundedQueue<ServeRequest> queue_;
    std::vector<std::unique_ptr<WorkerSlot>> slots_;
    std::vector<std::thread> threads_;

    // Cache tier (front of the queue), lock-striped by query id.
    StripedQueryCache cache_;

    // Admission counters, striped per submitting thread.
    std::array<SubmitSlab, kSubmitSlabs> submitSlabs_;

    // drain() support. Waiters register so the completion hot path
    // can skip the mutex+notify entirely when nobody is draining.
    std::atomic<uint32_t> drainWaiters_{0};
    mutable std::mutex drainMu_;
    std::condition_variable drainCv_;

    bool joined_ = false;
};

} // namespace wsearch

#endif // WSEARCH_SERVE_WORKER_POOL_HH
