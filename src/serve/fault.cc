#include "serve/fault.hh"

#include "util/rng.hh"

namespace wsearch {

namespace {

/**
 * Stateless uniform double in [0, 1) for one (plan, replica, query,
 * fault-kind) tuple. Each fault kind mixes a distinct salt so the
 * draws are independent of one another and of any evaluation order.
 */
double
draw(uint64_t seed, uint32_t shard, uint32_t replica,
     uint64_t query_id, uint64_t salt)
{
    uint64_t h = seed;
    h = mix64(h ^ (0x9e3779b97f4a7c15ull +
                   (static_cast<uint64_t>(shard) << 32 | replica)));
    h = mix64(h ^ query_id);
    h = mix64(h ^ salt);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr uint64_t kSaltDelay = 0xde1a;
constexpr uint64_t kSaltDelayMag = 0xde1b;
constexpr uint64_t kSaltHang = 0xa4a6;
constexpr uint64_t kSaltFail = 0xfa11;
constexpr uint64_t kSaltDrop = 0xd209;
constexpr uint64_t kSaltCorrupt = 0xc099;
constexpr uint64_t kSaltMergeCrash = 0x3e49;
constexpr uint64_t kSaltHandoff = 0x4a0d;

} // namespace

const FaultSpec &
FaultPlan::specFor(uint32_t shard, uint32_t replica) const
{
    const auto it = overrides_.find(key(shard, replica));
    return it != overrides_.end() ? it->second : default_;
}

bool
FaultPlan::admit(uint32_t shard, uint32_t replica, uint64_t query_id,
                 uint64_t now_ns) const
{
    (void)query_id;
    return !specFor(shard, replica).crashed(now_ns);
}

FaultDecision
FaultPlan::onExecute(uint32_t shard, uint32_t replica,
                     uint64_t query_id, uint64_t now_ns) const
{
    const FaultSpec &spec = specFor(shard, replica);
    FaultDecision d;
    // A request already queued when the replica crashed still fails:
    // a dead process executes nothing.
    if (spec.crashed(now_ns)) {
        d.fail = true;
        return d;
    }
    if (spec.failProb > 0.0 &&
        draw(seed_, shard, replica, query_id, kSaltFail) <
            spec.failProb) {
        d.fail = true;
        return d;
    }
    if (spec.hangProb > 0.0 &&
        draw(seed_, shard, replica, query_id, kSaltHang) <
            spec.hangProb) {
        d.delayNs = spec.hangNs;
    } else if (spec.delayProb > 0.0 &&
               draw(seed_, shard, replica, query_id, kSaltDelay) <
                   spec.delayProb) {
        const uint64_t span = spec.delayMaxNs > spec.delayMinNs
            ? spec.delayMaxNs - spec.delayMinNs
            : 0;
        d.delayNs = spec.delayMinNs +
            (span ? static_cast<uint64_t>(
                        draw(seed_, shard, replica, query_id,
                             kSaltDelayMag) *
                        static_cast<double>(span + 1))
                  : 0);
    }
    if (spec.dropProb > 0.0 &&
        draw(seed_, shard, replica, query_id, kSaltDrop) <
            spec.dropProb)
        d.dropReply = true;
    if (spec.corruptProb > 0.0 &&
        draw(seed_, shard, replica, query_id, kSaltCorrupt) <
            spec.corruptProb)
        d.corrupt = true;
    return d;
}

bool
FaultPlan::crashMerge(uint32_t shard, uint64_t merge_seq,
                      uint64_t now_ns) const
{
    (void)now_ns;
    const FaultSpec &spec = specFor(shard, 0);
    return spec.mergeCrashProb > 0.0 &&
        draw(seed_, shard, 0, merge_seq, kSaltMergeCrash) <
        spec.mergeCrashProb;
}

bool
FaultPlan::corruptHandoff(uint32_t shard, uint32_t replica,
                          uint64_t version, uint64_t now_ns) const
{
    (void)now_ns;
    const FaultSpec &spec = specFor(shard, replica);
    return spec.handoffCorruptProb > 0.0 &&
        draw(seed_, shard, replica, version, kSaltHandoff) <
        spec.handoffCorruptProb;
}

} // namespace wsearch
