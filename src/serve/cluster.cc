#include "serve/cluster.hh"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>

#include "search/live/live_index.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/table.hh"

namespace wsearch {

/**
 * Shared gather state for one in-flight query. Completions (possibly
 * firing after handle() returned, e.g. a straggler finishing past the
 * deadline) only ever touch this block, which the shared_ptr keeps
 * alive until the last attempt resolves.
 */
struct ClusterServer::Gather
{
    explicit Gather(uint32_t num_shards)
        : got(num_shards, 0), versions(num_shards, 0),
          dead(num_shards, 0),
          partials(num_shards), latNs(num_shards, 0),
          winnerIsHedge(num_shards, 0), outstanding(num_shards, 0),
          attempts(num_shards, 0), retriesUsed(num_shards, 0),
          nextRetryNs(num_shards, 0)
    {
    }

    std::mutex mu;
    std::condition_variable cv;
    std::vector<uint8_t> got;  ///< shard answered (first answer wins)
    std::vector<uint64_t> versions; ///< index version of each answer
    std::vector<uint8_t> dead; ///< provably unavailable this query
    std::vector<std::vector<ScoredDoc>> partials;
    std::vector<uint64_t> latNs;
    std::vector<uint8_t> winnerIsHedge; ///< answer came from a hedge
    std::vector<uint32_t> outstanding;  ///< attempts not yet resolved
    std::vector<uint32_t> attempts;     ///< attempts issued so far
    std::vector<uint32_t> retriesUsed;
    std::vector<uint64_t> nextRetryNs; ///< retry due then (0 = none)
    uint32_t answered = 0;
    bool hedgePending = false; ///< hedge phase has not fired yet
    /**
     * Bumped on every state change so the gather loop can tell a
     * wakeup with news from a timeout: its wait predicate is
     * "events moved or settled", which closes the race where a
     * failure lands right after the loop computed its next wake time.
     */
    uint64_t events = 0;

    /** Nothing more can change this query's page: every shard
     *  answered, died, or has no attempt in flight, no retry
     *  scheduled, and no hedge still to come. Caller holds mu. */
    bool
    settled() const
    {
        for (size_t s = 0; s < got.size(); ++s) {
            if (got[s] || dead[s])
                continue;
            if (outstanding[s] != 0 || nextRetryNs[s] != 0 ||
                hedgePending)
                return false;
        }
        return true;
    }
};

void
ClusterServer::buildShards(
    uint32_t num_shards,
    const std::vector<const IndexShard *> &shards,
    const std::vector<LiveIndex *> &indexes)
{
    shards_.reserve(num_shards);
    for (uint32_t s = 0; s < num_shards; ++s) {
        auto state = std::make_unique<ShardState>();
        LeafWorkerPool::Config pc = cfg_.pool;
        if (!shards.empty() && cfg_.partitionDocIds) {
            pc.leaf.docIdStride = num_shards;
            pc.leaf.docIdOffset = s;
        }
        if (shards.empty()) {
            // Live segments carry global doc ids; identity mapping.
            pc.leaf.docIdStride = 1;
            pc.leaf.docIdOffset = 0;
        }
        pc.shardId = s;
        if (cfg_.clock)
            pc.clock = cfg_.clock;
        if (cfg_.faults)
            pc.faults = cfg_.faults;
        state->health.resize(cfg_.replicasPerShard);
        state->replicas.reserve(cfg_.replicasPerShard);
        for (uint32_t r = 0; r < cfg_.replicasPerShard; ++r) {
            pc.replicaId = r;
            if (shards.empty())
                state->replicas.push_back(
                    std::make_unique<LeafWorkerPool>(
                        indexes[s]->snapshot(), pc));
            else
                state->replicas.push_back(
                    std::make_unique<LeafWorkerPool>(*shards[s],
                                                     pc));
        }
        shards_.push_back(std::move(state));
    }
}

ClusterServer::ClusterServer(
    const std::vector<const IndexShard *> &shards,
    const ClusterConfig &cfg)
    : cfg_(cfg)
{
    wsearch_assert(!shards.empty());
    wsearch_assert(cfg.replicasPerShard >= 1);
    buildShards(static_cast<uint32_t>(shards.size()), shards, {});
}

ClusterServer::ClusterServer(const std::vector<LiveIndex *> &indexes,
                             const ClusterConfig &cfg)
    : cfg_(cfg), live_(indexes)
{
    wsearch_assert(!indexes.empty());
    wsearch_assert(cfg.replicasPerShard >= 1);
    buildShards(static_cast<uint32_t>(indexes.size()), {}, indexes);
}

ClusterServer::~ClusterServer()
{
    shutdown();
}

uint32_t
ClusterServer::replicaFor(uint64_t query_id, uint32_t shard,
                          uint32_t attempt) const
{
    // Hash-spread primaries across replicas; each further attempt
    // moves to the next replica so a hedge or retry lands on a
    // different pool (when R >= 2) than the attempt it follows.
    const uint64_t h =
        mix64(query_id ^ (0x9e3779b97f4a7c15ull * (shard + 1)));
    return static_cast<uint32_t>((h + attempt) %
                                 cfg_.replicasPerShard);
}

bool
ClusterServer::pickReplica(uint64_t query_id, uint32_t shard,
                           uint32_t attempt, uint64_t now_ns,
                           uint32_t *replica) const
{
    const uint32_t R = cfg_.replicasPerShard;
    const uint32_t preferred = replicaFor(query_id, shard, attempt);
    const ShardState &st = *shards_[shard];
    std::lock_guard<std::mutex> lk(st.mu);
    for (uint32_t i = 0; i < R; ++i) {
        const uint32_t r = (preferred + i) % R;
        // An ejected replica whose probation has lapsed is admitted
        // again: this attempt is its probe. Success resets its
        // health; another failure re-ejects it immediately. A
        // draining replica (mid-rollout) is skipped outright.
        if (st.health[r].ejectedUntilNs <= now_ns &&
            !st.health[r].draining) {
            *replica = r;
            return true;
        }
    }
    return false;
}

void
ClusterServer::noteAttemptResult(uint32_t shard, uint32_t replica,
                                 bool failed, uint64_t now_ns)
{
    ShardState &st = *shards_[shard];
    std::lock_guard<std::mutex> lk(st.mu);
    ReplicaHealth &h = st.health[replica];
    if (!failed) {
        h.consecutiveFailures = 0;
        h.ejectedUntilNs = 0;
        return;
    }
    ++st.failures;
    ++h.consecutiveFailures;
    if (cfg_.ejectAfterFailures != 0 &&
        h.consecutiveFailures >= cfg_.ejectAfterFailures)
        h.ejectedUntilNs = now_ns + cfg_.probationNs;
}

void
ClusterServer::markUnavailable(const std::shared_ptr<Gather> &gather,
                               uint32_t shard)
{
    std::lock_guard<std::mutex> lk(gather->mu);
    if (!gather->got[shard])
        gather->dead[shard] = 1;
    ++gather->events;
    gather->cv.notify_all();
}

bool
ClusterServer::issue(const SearchRequest &base, uint32_t shard,
                     bool is_hedge, uint64_t t0, uint64_t deadline_ns,
                     const std::shared_ptr<Gather> &gather,
                     const std::shared_ptr<std::atomic<bool>> &cancel)
{
    uint32_t attempt;
    {
        std::lock_guard<std::mutex> lk(gather->mu);
        attempt = gather->attempts[shard]++;
    }
    uint32_t replica = 0;
    if (!pickReplica(base.query.id, shard, attempt, clock().now(),
                     &replica))
        return false;
    {
        std::lock_guard<std::mutex> lk(gather->mu);
        ++gather->outstanding[shard];
    }
    if (is_hedge) {
        std::lock_guard<std::mutex> lk(shards_[shard]->mu);
        ++shards_[shard]->hedges;
    }
    auto done = [this, gather, shard, replica, is_hedge, t0,
                 cancel](std::vector<ScoredDoc> &&results,
                         ServeOutcome outcome,
                         uint64_t index_version) {
        const uint64_t now = clock().now();
        // Shed/Refused/Failed are replica problems; Expired/Cancelled
        // (deadline pressure, a hedge twin winning) say nothing about
        // the replica. Health first (ShardState::mu), gather state
        // second -- the two locks are never held together.
        const bool failed = outcome == ServeOutcome::Shed ||
            outcome == ServeOutcome::Refused ||
            outcome == ServeOutcome::Failed;
        if (outcome == ServeOutcome::Ok || failed)
            noteAttemptResult(shard, replica, failed, now);
        std::lock_guard<std::mutex> lk(gather->mu);
        --gather->outstanding[shard];
        ++gather->events;
        if (outcome == ServeOutcome::Ok && !gather->got[shard]) {
            gather->got[shard] = 1;
            gather->versions[shard] = index_version;
            gather->partials[shard] = std::move(results);
            gather->latNs[shard] = now - t0;
            gather->winnerIsHedge[shard] = is_hedge ? 1 : 0;
            ++gather->answered;
            // First answer wins; stop the twin before it executes.
            cancel->store(true, std::memory_order_release);
        } else if (failed && !gather->got[shard]) {
            if (gather->retriesUsed[shard] <
                cfg_.maxRetriesPerShard) {
                // Schedule a backoff retry; the gather loop issues it
                // (a completion must not call back into a pool).
                const uint32_t used = gather->retriesUsed[shard]++;
                gather->nextRetryNs[shard] = now +
                    (cfg_.retryBackoffNs << std::min(used, 10u));
            } else if (gather->outstanding[shard] == 0 &&
                       gather->nextRetryNs[shard] == 0) {
                // Retries exhausted and nothing left in flight: the
                // shard is provably down for this query. Fail fast
                // rather than burn the rest of the deadline.
                gather->dead[shard] = 1;
            }
        }
        gather->cv.notify_all();
    };
    LeafWorkerPool &pool = *shards_[shard]->replicas[replica];
    // Per-attempt leaf request: the caller's query and algo hint, the
    // effective deadline, and this shard's hedge-shared cancel flag.
    SearchRequest leaf_req = base;
    leaf_req.deadlineNs = deadline_ns;
    leaf_req.cancel = cancel;
    // Non-blocking admission: a full replica queue sheds, which the
    // completion reports as a failed attempt -- blocking here would
    // stall the scatter loop behind one hot shard.
    pool.submitAsync(leaf_req, /*block=*/false, std::move(done));
    return true;
}

ClusterResult
ClusterServer::handle(const SearchRequest &req)
{
    Clock &clk = clock();
    const Query &query = req.query;
    const uint32_t num_shards = numShards();
    auto gather = std::make_shared<Gather>(num_shards);
    const uint64_t t0 = clk.now();
    // A caller-supplied absolute deadline wins over the cluster-wide
    // per-query budget.
    const uint64_t deadline = req.deadlineNs != 0
        ? req.deadlineNs
        : (cfg_.deadlineNs ? t0 + cfg_.deadlineNs : 0);

    gather->hedgePending =
        cfg_.hedgeDelayNs != 0 && cfg_.maxHedgesPerQuery > 0;
    const uint64_t hedge_at = deadline
        ? std::min(t0 + cfg_.hedgeDelayNs, deadline)
        : t0 + cfg_.hedgeDelayNs;

    std::vector<std::shared_ptr<std::atomic<bool>>> cancels;
    cancels.reserve(num_shards);
    for (uint32_t s = 0; s < num_shards; ++s)
        cancels.push_back(std::make_shared<std::atomic<bool>>(false));

    for (uint32_t s = 0; s < num_shards; ++s)
        if (!issue(req, s, /*is_hedge=*/false, t0, deadline, gather,
                   cancels[s]))
            markUnavailable(gather, s);

    uint32_t hedges = 0;
    uint32_t retries = 0;

    // Gather event loop: sleep until the next actionable instant (a
    // due retry, the hedge fire, the deadline) or a completion event,
    // act, repeat -- until nothing more can change the page.
    std::unique_lock<std::mutex> lk(gather->mu);
    uint64_t seen = gather->events;
    while (!gather->settled()) {
        const uint64_t now = clk.now();
        if (deadline && now >= deadline)
            break;

        std::vector<uint32_t> due;
        for (uint32_t s = 0; s < num_shards; ++s) {
            if (!gather->got[s] && !gather->dead[s] &&
                gather->nextRetryNs[s] != 0 &&
                gather->nextRetryNs[s] <= now) {
                gather->nextRetryNs[s] = 0;
                due.push_back(s);
            }
        }
        if (!due.empty()) {
            // Submitting can complete synchronously (shed/refused),
            // which takes gather->mu: issue outside the lock.
            lk.unlock();
            for (const uint32_t s : due) {
                {
                    std::lock_guard<std::mutex> slk(shards_[s]->mu);
                    ++shards_[s]->retries;
                }
                ++retries;
                if (!issue(req, s, /*is_hedge=*/false, t0, deadline,
                           gather, cancels[s]))
                    markUnavailable(gather, s);
            }
            lk.lock();
            seen = gather->events;
            continue;
        }

        if (gather->hedgePending && now >= hedge_at) {
            // Hedge phase (fires once): back up whichever shards are
            // still silent, bounded by maxHedgesPerQuery.
            gather->hedgePending = false;
            std::vector<uint32_t> stragglers;
            for (uint32_t s = 0; s < num_shards &&
                 stragglers.size() < cfg_.maxHedgesPerQuery;
                 ++s) {
                if (!gather->got[s] && !gather->dead[s])
                    stragglers.push_back(s);
            }
            lk.unlock();
            for (const uint32_t s : stragglers) {
                if (issue(req, s, /*is_hedge=*/true, t0, deadline,
                          gather, cancels[s]))
                    ++hedges;
                else
                    markUnavailable(gather, s);
            }
            lk.lock();
            seen = gather->events;
            continue;
        }

        uint64_t wake = deadline;
        if (gather->hedgePending)
            wake = wake ? std::min(wake, hedge_at) : hedge_at;
        for (uint32_t s = 0; s < num_shards; ++s)
            if (!gather->got[s] && gather->nextRetryNs[s] != 0)
                wake = wake
                    ? std::min(wake, gather->nextRetryNs[s])
                    : gather->nextRetryNs[s];
        clk.waitUntil(gather->cv, lk, wake, [&] {
            return gather->events != seen || gather->settled();
        });
        seen = gather->events;
    }

    ClusterResult res;
    std::vector<ShardOutcome> outcomes(num_shards,
                                       ShardOutcome::Missed);
    for (uint32_t s = 0; s < num_shards; ++s) {
        outcomes[s] = gather->got[s] ? ShardOutcome::Answered
            : gather->dead[s]        ? ShardOutcome::Unavailable
                                     : ShardOutcome::Missed;
    }
    res.page = RootServer::mergeWithCoverage(gather->partials,
                                             outcomes, query.topK);
    if (!live_.empty())
        res.page.shardVersions = gather->versions;
    res.hedges = hedges;
    res.retries = retries;
    // Copy what the stats need: stragglers may still mutate the
    // gather block after the lock is released.
    const std::vector<uint64_t> lat = gather->latNs;
    const std::vector<uint8_t> winner_is_hedge = gather->winnerIsHedge;
    lk.unlock();
    res.latencyNs = clk.now() - t0;

    uint32_t wins = 0;
    for (uint32_t s = 0; s < num_shards; ++s) {
        ShardState &st = *shards_[s];
        std::lock_guard<std::mutex> slk(st.mu);
        switch (outcomes[s]) {
        case ShardOutcome::Answered:
            ++st.answered;
            st.latencyNs.record(lat[s]);
            if (winner_is_hedge[s]) {
                ++st.hedgeWins;
                ++wins;
            }
            break;
        case ShardOutcome::Unavailable:
            ++st.missed;
            ++st.unavailable;
            break;
        case ShardOutcome::Missed:
            ++st.missed;
            break;
        }
    }
    {
        std::lock_guard<std::mutex> stats_lk(statsMu_);
        ++queries_;
        if (res.page.degraded())
            ++degraded_;
        hedgesIssued_ += hedges;
        hedgeWins_ += wins;
        retriesIssued_ += retries;
        shardAnswers_ += res.page.shardsAnswered;
        shardMisses_ += num_shards - res.page.shardsAnswered;
        shardsUnavailable_ += res.page.shardsUnavailable;
        queryNs_.record(res.latencyNs);
        for (uint32_t s = 0; s < num_shards; ++s)
            if (outcomes[s] == ShardOutcome::Answered)
                shardNs_.record(lat[s]);
    }
    return res;
}

RolloutResult
ClusterServer::rolloutShard(uint32_t shard,
                            std::shared_ptr<const IndexSnapshot> snap)
{
    wsearch_assert(shard < shards_.size());
    wsearch_assert(snap != nullptr);
    ShardState &st = *shards_[shard];
    RolloutResult res;
    res.version = snap->version;
    // One rollout of a shard at a time; concurrent callers queue.
    std::lock_guard<std::mutex> rlk(st.rolloutMu);
    const uint32_t R = static_cast<uint32_t>(st.replicas.size());
    for (uint32_t r = 0; r < R; ++r) {
        {
            std::lock_guard<std::mutex> lk(st.mu);
            st.health[r].draining = true;
        }
        LeafWorkerPool &pool = *st.replicas[r];
        // Let in-flight work finish on the old version before the
        // swap; new traffic already avoids this replica. With the
        // ticket-ring queue, drained means the RING is observed
        // empty (every accepted ticket consumed and completed), not
        // that a queue mutex was quiesced -- a submit that raced the
        // draining flag can still land a ticket after one drain()
        // returns, so re-drain until the ring reads empty.
        do {
            pool.drain();
        } while (pool.queueDepth() != 0);
        // The injector models a torn handoff: the replica receives a
        // snapshot whose contents do not match its checksum. The leaf
        // must refuse it (and keep serving its old version), after
        // which the rollout resends the pristine copy.
        const bool corrupt = cfg_.faults &&
            cfg_.faults->corruptHandoff(shard, r, snap->version,
                                        clock().now());
        bool adopted = false;
        if (corrupt) {
            adopted = pool.leafMutable().adoptSnapshot(
                snap->corruptedCopy());
            wsearch_assert(!adopted); // a torn handoff must not land
        }
        if (!adopted)
            adopted = pool.leafMutable().adoptSnapshot(snap);
        if (corrupt)
            ++res.handoffsRejected;
        if (adopted)
            ++res.replicasUpdated;
        {
            std::lock_guard<std::mutex> lk(st.mu);
            st.health[r].draining = false;
        }
    }
    {
        std::lock_guard<std::mutex> lk(st.mu);
        ++st.rollouts;
    }
    return res;
}

RolloutResult
ClusterServer::rolloutAll()
{
    wsearch_assert(!live_.empty());
    RolloutResult res;
    const uint32_t S = static_cast<uint32_t>(live_.size());
    for (uint32_t s = 0; s < S; ++s)
        res.merge(rolloutShard(s, live_[s]->snapshot()));
    return res;
}

void
ClusterServer::drainAll()
{
    for (const auto &shard : shards_)
        for (const auto &pool : shard->replicas)
            pool->drain();
}

void
ClusterServer::shutdown()
{
    for (const auto &shard : shards_)
        for (const auto &pool : shard->replicas)
            pool->shutdown();
}

ClusterSnapshot
ClusterServer::snapshot() const
{
    ClusterSnapshot snap;
    {
        std::lock_guard<std::mutex> lk(statsMu_);
        snap.queries = queries_;
        snap.degraded = degraded_;
        snap.hedgesIssued = hedgesIssued_;
        snap.hedgeWins = hedgeWins_;
        snap.retriesIssued = retriesIssued_;
        snap.shardAnswers = shardAnswers_;
        snap.shardMisses = shardMisses_;
        snap.shardsUnavailable = shardsUnavailable_;
        snap.queryNs = queryNs_;
        snap.shardNs = shardNs_;
    }
    const uint64_t now = clock().now();
    snap.shards.reserve(shards_.size());
    for (const auto &shard : shards_) {
        ShardSnapshot ss;
        {
            std::lock_guard<std::mutex> lk(shard->mu);
            ss.answered = shard->answered;
            ss.missed = shard->missed;
            ss.unavailable = shard->unavailable;
            ss.hedges = shard->hedges;
            ss.hedgeWins = shard->hedgeWins;
            ss.retries = shard->retries;
            ss.failures = shard->failures;
            ss.rollouts = shard->rollouts;
            for (const ReplicaHealth &h : shard->health) {
                if (h.ejectedUntilNs > now)
                    ++ss.replicasEjected;
                if (h.draining)
                    ++ss.replicasDraining;
            }
            ss.latencyNs = shard->latencyNs;
        }
        for (const auto &pool : shard->replicas)
            ss.pool.merge(pool->snapshot());
        snap.shards.push_back(std::move(ss));
    }
    return snap;
}

void
printClusterReport(const ClusterSnapshot &snap, double duration_sec)
{
    Table summary({"Metric", "Value"});
    summary.addRow({"queries", Table::fmtInt(snap.queries)});
    summary.addRow({"degraded", Table::fmtInt(snap.degraded)});
    summary.addRow({"coverage",
                    Table::fmtPct(snap.meanCoverage(), 2)});
    summary.addRow({"hedges issued",
                    Table::fmtInt(snap.hedgesIssued)});
    summary.addRow({"hedge wins", Table::fmtInt(snap.hedgeWins)});
    if (snap.retriesIssued || snap.shardsUnavailable) {
        summary.addRow({"retries issued",
                        Table::fmtInt(snap.retriesIssued)});
        summary.addRow({"shards unavailable",
                        Table::fmtInt(snap.shardsUnavailable)});
    }
    summary.addRow({"leaf executed",
                    Table::fmtInt(snap.leafExecuted())});
    uint64_t rollouts = 0;
    for (const ShardSnapshot &ss : snap.shards)
        rollouts += ss.rollouts;
    if (rollouts) {
        uint64_t lo = 0;
        uint64_t hi = 0;
        uint64_t rejected = 0;
        for (const ShardSnapshot &ss : snap.shards) {
            rejected += ss.pool.handoffsRejected;
            if (ss.pool.indexVersionHigh > hi)
                hi = ss.pool.indexVersionHigh;
            if (ss.pool.indexVersionLow != 0 &&
                (lo == 0 || ss.pool.indexVersionLow < lo))
                lo = ss.pool.indexVersionLow;
        }
        summary.addRow({"rollouts", Table::fmtInt(rollouts)});
        summary.addRow({"handoffs rejected", Table::fmtInt(rejected)});
        summary.addRow({"index version low", Table::fmtInt(lo)});
        summary.addRow({"index version high", Table::fmtInt(hi)});
    }
    if (duration_sec > 0) {
        summary.addRow(
            {"achieved QPS",
             Table::fmt(static_cast<double>(snap.queries) /
                            duration_sec,
                        1)});
    }
    const LatencyHistogram &q = snap.queryNs;
    summary.addRow({"query p50 (us)", fmtUsec(q.quantile(0.50))});
    summary.addRow({"query p95 (us)", fmtUsec(q.quantile(0.95))});
    summary.addRow({"query p99 (us)", fmtUsec(q.quantile(0.99))});
    summary.addRow({"query p99.9 (us)", fmtUsec(q.quantile(0.999))});
    summary.addRow({"shard p50 (us)",
                    fmtUsec(snap.shardNs.quantile(0.50))});
    summary.addRow({"shard p99 (us)",
                    fmtUsec(snap.shardNs.quantile(0.99))});
    summary.print();

    Table shards({"Shard", "Answered", "Missed", "Unavail", "Hedges",
                  "Wins", "Retries", "p50 (us)", "p99 (us)",
                  "Executed", "Expired", "Cancelled", "Shed"});
    for (size_t s = 0; s < snap.shards.size(); ++s) {
        const ShardSnapshot &ss = snap.shards[s];
        shards.addRow({Table::fmtInt(s), Table::fmtInt(ss.answered),
                       Table::fmtInt(ss.missed),
                       Table::fmtInt(ss.unavailable),
                       Table::fmtInt(ss.hedges),
                       Table::fmtInt(ss.hedgeWins),
                       Table::fmtInt(ss.retries),
                       fmtUsec(ss.latencyNs.quantile(0.50)),
                       fmtUsec(ss.latencyNs.quantile(0.99)),
                       Table::fmtInt(ss.pool.executed()),
                       Table::fmtInt(ss.pool.expired),
                       Table::fmtInt(ss.pool.cancelled),
                       Table::fmtInt(ss.pool.shed)});
    }
    std::printf("\n");
    shards.print();
}

} // namespace wsearch
