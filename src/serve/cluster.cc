#include "serve/cluster.hh"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>

#include "serve/clock.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/table.hh"

namespace wsearch {

namespace {

/** Steady-clock time point for an absolute nowNs()-epoch value. */
std::chrono::steady_clock::time_point
toTimePoint(uint64_t ns)
{
    return std::chrono::steady_clock::time_point(
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::nanoseconds(ns)));
}

} // namespace

/**
 * Shared gather state for one in-flight query. Completions (possibly
 * firing after handle() returned, e.g. a straggler finishing past the
 * deadline) only ever touch this block, which the shared_ptr keeps
 * alive until the last attempt resolves.
 */
struct ClusterServer::Gather
{
    explicit Gather(uint32_t num_shards)
        : got(num_shards, 0), partials(num_shards),
          latNs(num_shards, 0), winner(num_shards, 0),
          outstanding(num_shards, 0)
    {
    }

    std::mutex mu;
    std::condition_variable cv;
    std::vector<uint8_t> got; ///< shard answered (first attempt wins)
    std::vector<std::vector<ScoredDoc>> partials;
    std::vector<uint64_t> latNs;
    std::vector<uint32_t> winner;      ///< attempt that answered
    std::vector<uint32_t> outstanding; ///< attempts not yet resolved
    uint32_t answered = 0;
};

ClusterServer::ClusterServer(
    const std::vector<const IndexShard *> &shards,
    const ClusterConfig &cfg)
    : cfg_(cfg)
{
    wsearch_assert(!shards.empty());
    wsearch_assert(cfg.replicasPerShard >= 1);
    const uint32_t num_shards = static_cast<uint32_t>(shards.size());
    shards_.reserve(num_shards);
    for (uint32_t s = 0; s < num_shards; ++s) {
        auto state = std::make_unique<ShardState>();
        LeafWorkerPool::Config pc = cfg.pool;
        if (cfg.partitionDocIds) {
            pc.leaf.docIdStride = num_shards;
            pc.leaf.docIdOffset = s;
        }
        state->replicas.reserve(cfg.replicasPerShard);
        for (uint32_t r = 0; r < cfg.replicasPerShard; ++r)
            state->replicas.push_back(
                std::make_unique<LeafWorkerPool>(*shards[s], pc));
        shards_.push_back(std::move(state));
    }
}

ClusterServer::~ClusterServer()
{
    shutdown();
}

uint32_t
ClusterServer::replicaFor(uint64_t query_id, uint32_t shard,
                          uint32_t attempt) const
{
    // Hash-spread primaries across replicas; each further attempt
    // moves to the next replica so a hedge lands on a different pool
    // (when R >= 2) than the straggling primary.
    const uint64_t h =
        mix64(query_id ^ (0x9e3779b97f4a7c15ull * (shard + 1)));
    return static_cast<uint32_t>((h + attempt) %
                                 cfg_.replicasPerShard);
}

void
ClusterServer::issue(const SearchRequest &base, uint32_t shard,
                     uint32_t attempt, uint64_t t0,
                     uint64_t deadline_ns,
                     const std::shared_ptr<Gather> &gather,
                     const std::shared_ptr<std::atomic<bool>> &cancel)
{
    {
        std::lock_guard<std::mutex> lk(gather->mu);
        ++gather->outstanding[shard];
    }
    if (attempt > 0) {
        std::lock_guard<std::mutex> lk(shards_[shard]->mu);
        ++shards_[shard]->hedges;
    }
    auto done = [gather, shard, attempt, t0,
                 cancel](std::vector<ScoredDoc> &&results, bool ok) {
        std::lock_guard<std::mutex> lk(gather->mu);
        --gather->outstanding[shard];
        if (ok && !gather->got[shard]) {
            gather->got[shard] = 1;
            gather->partials[shard] = std::move(results);
            gather->latNs[shard] = nowNs() - t0;
            gather->winner[shard] = attempt;
            ++gather->answered;
            // First answer wins; stop the twin before it executes.
            cancel->store(true, std::memory_order_release);
        }
        gather->cv.notify_all();
    };
    LeafWorkerPool &pool = *shards_[shard]->replicas[replicaFor(
        base.query.id, shard, attempt)];
    // Per-attempt leaf request: the caller's query and algo hint, the
    // effective deadline, and this shard's hedge-shared cancel flag.
    SearchRequest leaf_req = base;
    leaf_req.deadlineNs = deadline_ns;
    leaf_req.cancel = cancel;
    // Non-blocking admission: a full replica queue sheds, which the
    // completion reports as a failed attempt (ok = false) -- blocking
    // here would stall the scatter loop behind one hot shard.
    pool.submitAsync(leaf_req, /*block=*/false, std::move(done));
}

ClusterResult
ClusterServer::handle(const SearchRequest &req)
{
    const Query &query = req.query;
    const uint32_t num_shards = numShards();
    auto gather = std::make_shared<Gather>(num_shards);
    const uint64_t t0 = nowNs();
    // A caller-supplied absolute deadline wins over the cluster-wide
    // per-query budget.
    const uint64_t deadline = req.deadlineNs != 0
        ? req.deadlineNs
        : (cfg_.deadlineNs ? t0 + cfg_.deadlineNs : 0);

    std::vector<std::shared_ptr<std::atomic<bool>>> cancels;
    cancels.reserve(num_shards);
    for (uint32_t s = 0; s < num_shards; ++s)
        cancels.push_back(std::make_shared<std::atomic<bool>>(false));

    for (uint32_t s = 0; s < num_shards; ++s)
        issue(req, s, 0, t0, deadline, gather, cancels[s]);

    uint32_t hedges = 0;
    std::unique_lock<std::mutex> lk(gather->mu);

    // Hedge phase: wait out the hedge delay, then back up whichever
    // shards are still silent (the stragglers), bounded by
    // maxHedgesPerQuery.
    if (cfg_.hedgeDelayNs != 0 && cfg_.maxHedgesPerQuery > 0) {
        const uint64_t hedge_at = deadline
            ? std::min(t0 + cfg_.hedgeDelayNs, deadline)
            : t0 + cfg_.hedgeDelayNs;
        gather->cv.wait_until(lk, toTimePoint(hedge_at), [&] {
            return gather->answered == num_shards;
        });
        if (gather->answered < num_shards &&
            (deadline == 0 || nowNs() < deadline)) {
            std::vector<uint32_t> stragglers;
            for (uint32_t s = 0; s < num_shards &&
                 stragglers.size() < cfg_.maxHedgesPerQuery;
                 ++s) {
                if (!gather->got[s])
                    stragglers.push_back(s);
            }
            // Submitting can complete synchronously (shed/cache hit),
            // which takes gather->mu: issue outside the lock.
            lk.unlock();
            for (const uint32_t s : stragglers)
                issue(req, s, 1, t0, deadline, gather, cancels[s]);
            hedges = static_cast<uint32_t>(stragglers.size());
            lk.lock();
        }
    }

    // Gather phase: all shards answered, every remaining attempt
    // failed (shed -- nothing more will arrive), or deadline.
    const auto settled = [&] {
        if (gather->answered == num_shards)
            return true;
        for (uint32_t s = 0; s < num_shards; ++s)
            if (!gather->got[s] && gather->outstanding[s] != 0)
                return false;
        return true;
    };
    if (deadline)
        gather->cv.wait_until(lk, toTimePoint(deadline), settled);
    else
        gather->cv.wait(lk, settled);

    ClusterResult res;
    res.page = RootServer::mergeWithCoverage(gather->partials,
                                             gather->got, query.topK);
    res.hedges = hedges;
    // Copy what the stats need: stragglers may still mutate the
    // gather block after the lock is released.
    const std::vector<uint8_t> got = gather->got;
    const std::vector<uint64_t> lat = gather->latNs;
    const std::vector<uint32_t> winner = gather->winner;
    lk.unlock();
    res.latencyNs = nowNs() - t0;

    uint32_t wins = 0;
    for (uint32_t s = 0; s < num_shards; ++s) {
        ShardState &st = *shards_[s];
        std::lock_guard<std::mutex> slk(st.mu);
        if (got[s]) {
            ++st.answered;
            st.latencyNs.record(lat[s]);
            if (winner[s] > 0) {
                ++st.hedgeWins;
                ++wins;
            }
        } else {
            ++st.missed;
        }
    }
    {
        std::lock_guard<std::mutex> clk(statsMu_);
        ++queries_;
        if (res.page.degraded())
            ++degraded_;
        hedgesIssued_ += hedges;
        hedgeWins_ += wins;
        shardAnswers_ += res.page.shardsAnswered;
        shardMisses_ += num_shards - res.page.shardsAnswered;
        queryNs_.record(res.latencyNs);
        for (uint32_t s = 0; s < num_shards; ++s)
            if (got[s])
                shardNs_.record(lat[s]);
    }
    return res;
}

ClusterResult
ClusterServer::handle(const Query &query)
{
    SearchRequest req;
    req.query = query;
    return handle(req);
}

void
ClusterServer::drainAll()
{
    for (const auto &shard : shards_)
        for (const auto &pool : shard->replicas)
            pool->drain();
}

void
ClusterServer::shutdown()
{
    for (const auto &shard : shards_)
        for (const auto &pool : shard->replicas)
            pool->shutdown();
}

ClusterSnapshot
ClusterServer::snapshot() const
{
    ClusterSnapshot snap;
    {
        std::lock_guard<std::mutex> lk(statsMu_);
        snap.queries = queries_;
        snap.degraded = degraded_;
        snap.hedgesIssued = hedgesIssued_;
        snap.hedgeWins = hedgeWins_;
        snap.shardAnswers = shardAnswers_;
        snap.shardMisses = shardMisses_;
        snap.queryNs = queryNs_;
        snap.shardNs = shardNs_;
    }
    snap.shards.reserve(shards_.size());
    for (const auto &shard : shards_) {
        ShardSnapshot ss;
        {
            std::lock_guard<std::mutex> lk(shard->mu);
            ss.answered = shard->answered;
            ss.missed = shard->missed;
            ss.hedges = shard->hedges;
            ss.hedgeWins = shard->hedgeWins;
            ss.latencyNs = shard->latencyNs;
        }
        for (const auto &pool : shard->replicas)
            ss.pool.merge(pool->snapshot());
        snap.shards.push_back(std::move(ss));
    }
    return snap;
}

void
printClusterReport(const ClusterSnapshot &snap, double duration_sec)
{
    Table summary({"Metric", "Value"});
    summary.addRow({"queries", Table::fmtInt(snap.queries)});
    summary.addRow({"degraded", Table::fmtInt(snap.degraded)});
    summary.addRow({"coverage",
                    Table::fmtPct(snap.meanCoverage(), 2)});
    summary.addRow({"hedges issued",
                    Table::fmtInt(snap.hedgesIssued)});
    summary.addRow({"hedge wins", Table::fmtInt(snap.hedgeWins)});
    summary.addRow({"leaf executed",
                    Table::fmtInt(snap.leafExecuted())});
    if (duration_sec > 0) {
        summary.addRow(
            {"achieved QPS",
             Table::fmt(static_cast<double>(snap.queries) /
                            duration_sec,
                        1)});
    }
    const LatencyHistogram &q = snap.queryNs;
    summary.addRow({"query p50 (us)", fmtUsec(q.quantile(0.50))});
    summary.addRow({"query p95 (us)", fmtUsec(q.quantile(0.95))});
    summary.addRow({"query p99 (us)", fmtUsec(q.quantile(0.99))});
    summary.addRow({"query p99.9 (us)", fmtUsec(q.quantile(0.999))});
    summary.addRow({"shard p50 (us)",
                    fmtUsec(snap.shardNs.quantile(0.50))});
    summary.addRow({"shard p99 (us)",
                    fmtUsec(snap.shardNs.quantile(0.99))});
    summary.print();

    Table shards({"Shard", "Answered", "Missed", "Hedges", "Wins",
                  "p50 (us)", "p99 (us)", "Executed", "Expired",
                  "Cancelled", "Shed"});
    for (size_t s = 0; s < snap.shards.size(); ++s) {
        const ShardSnapshot &ss = snap.shards[s];
        shards.addRow({Table::fmtInt(s), Table::fmtInt(ss.answered),
                       Table::fmtInt(ss.missed),
                       Table::fmtInt(ss.hedges),
                       Table::fmtInt(ss.hedgeWins),
                       fmtUsec(ss.latencyNs.quantile(0.50)),
                       fmtUsec(ss.latencyNs.quantile(0.99)),
                       Table::fmtInt(ss.pool.executed()),
                       Table::fmtInt(ss.pool.expired),
                       Table::fmtInt(ss.pool.cancelled),
                       Table::fmtInt(ss.pool.shed)});
    }
    std::printf("\n");
    shards.print();
}

} // namespace wsearch
