#include "serve/loadgen.hh"

#include <atomic>
#include <cmath>
#include <thread>

#include "serve/clock.hh"
#include "util/rng.hh"

namespace wsearch {

namespace {

/** Samples pool queue depth every @p period_ms until stopped. */
class DepthSampler
{
  public:
    DepthSampler(const LeafWorkerPool &pool, uint32_t period_ms)
        : pool_(pool), periodMs_(period_ms ? period_ms : 1),
          thread_([this] { run(); })
    {
    }

    ~DepthSampler()
    {
        if (thread_.joinable())
            stop();
    }

    void
    stop()
    {
        done_.store(true);
        thread_.join();
    }

    uint64_t maxDepth() const { return maxDepth_; }

    double
    meanDepth() const
    {
        return samples_ ? static_cast<double>(sumDepth_) /
                static_cast<double>(samples_)
                        : 0.0;
    }

  private:
    void
    run()
    {
        while (!done_.load()) {
            const uint64_t d = pool_.queueDepth();
            if (d > maxDepth_)
                maxDepth_ = d;
            sumDepth_ += d;
            ++samples_;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(periodMs_));
        }
    }

    const LeafWorkerPool &pool_;
    const uint32_t periodMs_;
    std::atomic<bool> done_{false};
    // Written only by the sampler thread; read after stop().
    uint64_t maxDepth_ = 0;
    uint64_t sumDepth_ = 0;
    uint64_t samples_ = 0;
    std::thread thread_;
};

LoadReport
buildReport(const LeafWorkerPool &pool, uint64_t start_ns,
            uint64_t end_ns, const DepthSampler &sampler)
{
    LoadReport r;
    r.snap = pool.snapshot();
    r.durationSec = static_cast<double>(end_ns - start_ns) / 1e9;
    if (r.durationSec > 0) {
        r.offeredQps =
            static_cast<double>(r.snap.submitted) / r.durationSec;
        r.achievedQps =
            static_cast<double>(r.snap.completed + r.snap.cacheHits) /
            r.durationSec;
    }
    r.shedFraction = r.snap.submitted
        ? static_cast<double>(r.snap.shed) /
            static_cast<double>(r.snap.submitted)
        : 0.0;
    r.maxQueueDepth = sampler.maxDepth();
    r.meanQueueDepth = sampler.meanDepth();
    return r;
}

} // namespace

LoadReport
runOpenLoop(LeafWorkerPool &pool, const LoadGenConfig &cfg)
{
    wsearch_assert(cfg.offeredQps > 0);
    QueryGenerator gen(cfg.queries, cfg.seed);
    Rng arrivals(mix64(cfg.seed ^ 0x0a11ull));
    const double mean_gap_ns = 1e9 / cfg.offeredQps;

    DepthSampler sampler(pool, cfg.depthSampleMs);
    const uint64_t start = nowNs();
    uint64_t next_arrival = start;
    for (uint64_t i = 0; i < cfg.numQueries; ++i) {
        // Exponential inter-arrival; 1 - U in (0, 1] avoids log(0).
        const double u = 1.0 - arrivals.nextDouble();
        next_arrival += static_cast<uint64_t>(
            -std::log(u) * mean_gap_ns);
        sleepUntilNs(next_arrival);
        SearchRequest req;
        req.query = gen.next();
        pool.submit(req, /*block=*/false);
    }
    pool.drain();
    const uint64_t end = nowNs();
    sampler.stop();
    return buildReport(pool, start, end, sampler);
}

LoadReport
runClosedLoop(LeafWorkerPool &pool, const LoadGenConfig &cfg)
{
    wsearch_assert(cfg.clients >= 1);
    std::atomic<uint64_t> issued{0};

    DepthSampler sampler(pool, cfg.depthSampleMs);
    const uint64_t start = nowNs();
    std::vector<std::thread> clients;
    clients.reserve(cfg.clients);
    for (uint32_t c = 0; c < cfg.clients; ++c) {
        clients.emplace_back([&pool, &cfg, &issued, c] {
            QueryGenerator gen(cfg.queries,
                               cfg.seed + 7919ull * (c + 1));
            while (issued.fetch_add(1) < cfg.numQueries) {
                auto reply = std::make_shared<
                    std::promise<std::vector<ScoredDoc>>>();
                auto fut = reply->get_future();
                SearchRequest req;
                req.query = gen.next();
                pool.submit(req, /*block=*/true, std::move(reply));
                // Fulfilled on completion, cache hit, or shed.
                fut.get();
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    pool.drain();
    const uint64_t end = nowNs();
    sampler.stop();
    return buildReport(pool, start, end, sampler);
}

ClusterLoadReport
runClusterClosedLoop(ClusterServer &cluster, const LoadGenConfig &cfg)
{
    wsearch_assert(cfg.clients >= 1);
    std::atomic<uint64_t> issued{0};

    const uint64_t start = nowNs();
    std::vector<std::thread> clients;
    clients.reserve(cfg.clients);
    for (uint32_t c = 0; c < cfg.clients; ++c) {
        clients.emplace_back([&cluster, &cfg, &issued, c] {
            QueryGenerator gen(cfg.queries,
                               cfg.seed + 7919ull * (c + 1));
            while (issued.fetch_add(1) < cfg.numQueries) {
                SearchRequest req;
                req.query = gen.next();
                cluster.handle(req);
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    // Late stragglers (cancelled hedges, expired leftovers) still sit
    // in queues; drain so per-pool accounting is settled.
    cluster.drainAll();
    const uint64_t end = nowNs();

    ClusterLoadReport r;
    r.snap = cluster.snapshot();
    r.durationSec = static_cast<double>(end - start) / 1e9;
    if (r.durationSec > 0)
        r.achievedQps =
            static_cast<double>(r.snap.queries) / r.durationSec;
    return r;
}

} // namespace wsearch
