/**
 * @file
 * Load generators for the serving runtime, the two canonical shapes
 * from datacenter tail-latency methodology:
 *
 *  - open loop: Poisson arrivals at a target offered QPS, submitted
 *    without waiting for completions (shed on overload). Arrival
 *    deadlines are absolute, so scheduling jitter bursts late
 *    arrivals instead of silently lowering the offered rate. This is
 *    the generator that exposes the throughput-latency knee.
 *
 *  - closed loop: C concurrent clients, each waiting for its reply
 *    before issuing the next query. Throughput self-limits to system
 *    capacity; used to calibrate the saturation point.
 *
 * Both sample the queue depth periodically from a sampler thread and
 * return a LoadReport built from the pool's snapshot, so run a fresh
 * pool per measurement point.
 */

#ifndef WSEARCH_SERVE_LOADGEN_HH
#define WSEARCH_SERVE_LOADGEN_HH

#include <cstdint>

#include "search/query.hh"
#include "serve/cluster.hh"
#include "serve/serve_stats.hh"
#include "serve/worker_pool.hh"

namespace wsearch {

/** Parameters shared by both generator shapes. */
struct LoadGenConfig
{
    /** Open loop: target offered rate (queries per second). */
    double offeredQps = 5000.0;
    /** Closed loop: number of concurrent clients. */
    uint32_t clients = 4;
    /** Total queries to issue (per run, across all clients). */
    uint64_t numQueries = 10000;
    /** Traffic shape (must match the shard's vocabulary). */
    QueryGenerator::Config queries;
    uint64_t seed = 0x10adull;
    /** Queue-depth sampling period (ms). */
    uint32_t depthSampleMs = 2;
};

/** Outcome of one load-generation run. */
struct LoadReport
{
    double durationSec = 0.0;
    double offeredQps = 0.0;  ///< submitted / duration
    double achievedQps = 0.0; ///< (completed + cacheHits) / duration
    double shedFraction = 0.0;

    /** Pool snapshot taken after drain. */
    ServeSnapshot snap;

    uint64_t maxQueueDepth = 0;
    double meanQueueDepth = 0.0;
};

/**
 * Poisson open-loop run against @p pool (use a freshly constructed
 * pool: the report is built from its cumulative snapshot).
 */
LoadReport runOpenLoop(LeafWorkerPool &pool, const LoadGenConfig &cfg);

/** Closed-loop run with cfg.clients concurrent clients. */
LoadReport runClosedLoop(LeafWorkerPool &pool,
                         const LoadGenConfig &cfg);

/** Outcome of one scatter-gather load run. */
struct ClusterLoadReport
{
    double durationSec = 0.0;
    double achievedQps = 0.0;

    /** Cluster snapshot taken after all clients finished. */
    ClusterSnapshot snap;

    /** Backup executions per primary leaf execution: the hedge
     *  load-amplification factor (0 = no extra leaf work). */
    double
    extraLeafLoad() const
    {
        const uint64_t primaries = snap.queries *
            (snap.shards.empty() ? 1 : snap.shards.size());
        const uint64_t executed = snap.leafExecuted();
        return primaries && executed > primaries
            ? static_cast<double>(executed - primaries) /
                static_cast<double>(primaries)
            : 0.0;
    }
};

/**
 * Closed-loop scatter-gather run: cfg.clients front-end threads each
 * issuing ClusterServer::handle back-to-back until cfg.numQueries
 * have been issued cluster-wide. Use a fresh cluster per measurement
 * point (the report is built from its cumulative snapshot).
 */
ClusterLoadReport runClusterClosedLoop(ClusterServer &cluster,
                                       const LoadGenConfig &cfg);

} // namespace wsearch

#endif // WSEARCH_SERVE_LOADGEN_HH
