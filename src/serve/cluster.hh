/**
 * @file
 * Sharded scatter-gather serving cluster (paper Figure 1 at fleet
 * shape): S disjoint index shards, each served by R replica
 * LeafWorkerPools, under a root that
 *
 *  - scatters every query to all S shards concurrently (one replica
 *    per shard, picked by query hash),
 *  - propagates a per-query absolute deadline into each leaf request
 *    (a leaf drops work whose deadline already passed instead of
 *    executing it),
 *  - hedges stragglers: after a configurable delay, shards that have
 *    not answered get one backup request on another replica; the
 *    first answer wins and a shared cancel flag keeps the loser from
 *    executing (bounded extra load, "The Tail at Scale" style),
 *  - retries *failed* attempts (shed, refused by a crashed replica,
 *    or an injected execution failure) on another replica with
 *    doubling backoff, bounded by maxRetriesPerShard -- failures are
 *    distinct from silence: a failure is a signal to go elsewhere
 *    immediately, not to wait out the hedge delay,
 *  - tracks per-replica health: consecutive failures eject a replica
 *    for probationNs, after which one probe query re-admits it (and a
 *    failed probe re-ejects it on the spot),
 *  - gathers until the deadline and merges whatever answered into a
 *    degraded-but-valid page tagged with shard coverage
 *    (MergedPage, e.g. 7/8 shards answered). A shard whose every
 *    replica is down fails fast: it is marked Unavailable the moment
 *    its last attempt resolves, so the query does not burn its
 *    deadline waiting for a shard that provably cannot answer.
 *
 * Observability: per-query latency, coverage, hedge/retry counts,
 * unavailable-shard counts, and per-shard answer-latency histograms,
 * plus the underlying pools' ServeSnapshots, all safe to take
 * mid-traffic.
 *
 * Determinism hooks: a ClusterConfig::clock (fanned out to every
 * pool and leaf) virtualizes all timing, and a
 * ClusterConfig::faults plan injects crashes/delays/failures at the
 * replicas -- see serve/clock.hh and serve/fault.hh.
 */

#ifndef WSEARCH_SERVE_CLUSTER_HH
#define WSEARCH_SERVE_CLUSTER_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "search/index.hh"
#include "search/query.hh"
#include "search/root.hh"
#include "serve/clock.hh"
#include "serve/fault.hh"
#include "serve/serve_stats.hh"
#include "serve/worker_pool.hh"

namespace wsearch {

class LiveIndex;

/** Cluster shape and per-query policy. */
struct ClusterConfig
{
    /** Replica pools per shard (>= 2 for hedging to have a target). */
    uint32_t replicasPerShard = 1;
    /** Per-replica pool config; leaf docIdStride/docIdOffset are
     *  overwritten per shard when partitionDocIds is set, and
     *  shardId/replicaId are always overwritten with the replica's
     *  cluster coordinates. */
    LeafWorkerPool::Config pool;
    /** Per-query budget (ns; 0 = wait for every shard, no deadline). */
    uint64_t deadlineNs = 50'000'000;
    /** Hedge stragglers this long after scatter (ns; 0 = off). */
    uint64_t hedgeDelayNs = 0;
    /** Backup requests per query (caps hedge load amplification). */
    uint32_t maxHedgesPerQuery = 1;
    /** Retries per shard per query after *failed* attempts (shed /
     *  refused / injected failure; 0 = no retries). */
    uint32_t maxRetriesPerShard = 1;
    /** Base backoff before a retry; doubles per retry (ns). */
    uint64_t retryBackoffNs = 100'000;
    /** Eject a replica after this many consecutive failed attempts
     *  (0 = never eject). */
    uint32_t ejectAfterFailures = 3;
    /** How long an ejected replica sits out before one probe query
     *  re-admits it (ns). */
    uint64_t probationNs = 50'000'000;
    /** Set each shard's leaf doc-id mapping to (stride = S,
     *  offset = shard) so results carry global doc ids. */
    bool partitionDocIds = true;
    /** Time source for gather waits, backoff, and ejection windows;
     *  fanned out to every pool and leaf (null = real clock). */
    Clock *clock = nullptr;
    /** Fault injector fanned out to every replica pool (null = none;
     *  must outlive the cluster). */
    const FaultInjector *faults = nullptr;
};

/** Outcome of one scatter-gather query. */
struct ClusterResult
{
    MergedPage page;       ///< merged top-k + coverage tag
    uint32_t hedges = 0;   ///< backup requests issued for this query
    uint32_t retries = 0;  ///< retry attempts issued for this query
    uint64_t latencyNs = 0;
};

/** Outcome of one rolling snapshot rollout (per shard or fleet). */
struct RolloutResult
{
    uint32_t replicasUpdated = 0; ///< now serving the new version
    uint32_t handoffsRejected = 0; ///< torn deliveries refused+resent
    uint64_t version = 0; ///< highest version delivered

    void
    merge(const RolloutResult &o)
    {
        replicasUpdated += o.replicasUpdated;
        handoffsRejected += o.handoffsRejected;
        if (o.version > version)
            version = o.version;
    }
};

/** Per-shard slice of a ClusterSnapshot. */
struct ShardSnapshot
{
    uint64_t answered = 0; ///< queries this shard answered in time
    uint64_t missed = 0;   ///< queries with no answer (incl. unavail)
    uint64_t unavailable = 0; ///< misses where it was provably down
    uint64_t hedges = 0;    ///< backup requests issued to it
    uint64_t hedgeWins = 0; ///< answers that came from the backup
    uint64_t retries = 0;   ///< retry attempts issued to it
    uint64_t failures = 0;  ///< attempts that failed (shed/refused/..)
    uint32_t replicasEjected = 0; ///< replicas ejected right now
    uint32_t replicasDraining = 0; ///< replicas mid-rollout right now
    uint64_t rollouts = 0;  ///< completed snapshot rollouts
    LatencyHistogram latencyNs; ///< scatter-to-answer latency
    ServeSnapshot pool;         ///< merged over the shard's replicas
};

/** Point-in-time view of a ClusterServer. */
struct ClusterSnapshot
{
    uint64_t queries = 0;
    uint64_t degraded = 0; ///< queries answered by < all shards
    uint64_t hedgesIssued = 0;
    uint64_t hedgeWins = 0;
    uint64_t retriesIssued = 0;
    uint64_t shardAnswers = 0; ///< sum of per-query answered counts
    uint64_t shardMisses = 0;
    /** Sum of per-query unavailable-shard counts (subset of
     *  shardMisses: the misses that were proven dead, not late). */
    uint64_t shardsUnavailable = 0;

    LatencyHistogram queryNs; ///< end-to-end scatter-gather latency
    LatencyHistogram shardNs; ///< per-shard answer latency, all shards

    std::vector<ShardSnapshot> shards;

    /** Mean fraction of shards answering per query (1.0 = full). */
    double
    meanCoverage() const
    {
        const uint64_t total = shardAnswers + shardMisses;
        return total ? static_cast<double>(shardAnswers) /
                static_cast<double>(total)
                     : 0.0;
    }

    /** Leaf executions across all pools (hedge-load accounting). */
    uint64_t
    leafExecuted() const
    {
        uint64_t n = 0;
        for (const ShardSnapshot &s : shards)
            n += s.pool.executed();
        return n;
    }
};

/** Print summary + per-shard tables for @p snap (EXPERIMENTS.md
 *  paste-able). @p duration_sec scales rates; 0 omits them. */
void printClusterReport(const ClusterSnapshot &snap,
                        double duration_sec);

/** The scatter-gather serving cluster. */
class ClusterServer
{
  public:
    /**
     * @param shards non-owning, disjoint partitions (shard s serving
     *               global docs s, s + S, ... when partitionDocIds);
     *               must outlive the cluster
     */
    ClusterServer(const std::vector<const IndexShard *> &shards,
                  const ClusterConfig &cfg);

    /**
     * Live cluster: shard s is served from @p indexes[s]'s current
     * snapshot by every replica; new versions reach replicas via
     * rolloutShard()/rolloutAll(). Live indexes carry global doc ids
     * already, so partitionDocIds is ignored (identity mapping).
     * @p indexes are non-owning and must outlive the cluster.
     */
    ClusterServer(const std::vector<LiveIndex *> &indexes,
                  const ClusterConfig &cfg);

    /** Shuts down every pool and joins. */
    ~ClusterServer();

    ClusterServer(const ClusterServer &) = delete;
    ClusterServer &operator=(const ClusterServer &) = delete;

    /**
     * Scatter @p req to all shards, gather until the deadline, and
     * merge. Thread-safe; blocks the calling thread for at most the
     * deadline (plus merge time). A degraded page is returned when
     * shards miss -- never an error. req.deadlineNs, when set,
     * overrides the cluster-wide ClusterConfig::deadlineNs; the algo
     * hint is forwarded to every leaf. req.cancel is not forwarded
     * (each shard gets its own hedge-shared flag).
     */
    ClusterResult handle(const SearchRequest &req);

    /**
     * Rolling rollout of @p snap to every replica of @p shard, one
     * replica at a time so the other replicas keep serving: mark the
     * replica draining (the scatter path stops picking it), drain its
     * in-flight work, hand the snapshot over (checksum-validated by
     * the leaf; a corrupted delivery -- injectable via
     * FaultInjector::corruptHandoff -- is rejected, counted, and
     * resent clean), then re-admit. Serialized per shard. With R == 1
     * the lone replica is briefly unpickable; queries during that
     * window see the shard unavailable rather than a torn index.
     */
    RolloutResult rolloutShard(uint32_t shard,
                               std::shared_ptr<const IndexSnapshot>
                                   snap);

    /** rolloutShard(s, live-index s's current snapshot) for every
     *  shard (live clusters only). */
    RolloutResult rolloutAll();

    /** The live index feeding @p shard (null on frozen clusters). */
    LiveIndex *
    liveIndex(uint32_t shard) const
    {
        return shard < live_.size() ? live_[shard] : nullptr;
    }

    /** Wait until every accepted leaf request has completed. */
    void drainAll();

    /** Stop accepting work, finish queues, join all pools. */
    void shutdown();

    /** Merged cluster + per-shard + pool stats, safe mid-traffic. */
    ClusterSnapshot snapshot() const;

    uint32_t
    numShards() const
    {
        return static_cast<uint32_t>(shards_.size());
    }

    const ClusterConfig &config() const { return cfg_; }

    const LeafWorkerPool &
    replicaPool(uint32_t shard, uint32_t replica) const
    {
        return *shards_[shard]->replicas[replica];
    }

    /** The replica a fault-free primary attempt of (@p query_id,
     *  @p shard) lands on -- lets tests aim faults at the exact
     *  replica a query will use. */
    uint32_t
    plannedReplica(uint64_t query_id, uint32_t shard) const
    {
        return replicaFor(query_id, shard, 0);
    }

  private:
    struct Gather;

    /** Ejection state of one replica (guarded by ShardState::mu). */
    struct ReplicaHealth
    {
        uint32_t consecutiveFailures = 0;
        uint64_t ejectedUntilNs = 0; ///< 0 = admitted
        bool draining = false; ///< mid-rollout: not pickable
    };

    /** Per-shard replica set + stats (stats guarded by mu). */
    struct ShardState
    {
        std::vector<std::unique_ptr<LeafWorkerPool>> replicas;
        mutable std::mutex mu;
        std::vector<ReplicaHealth> health;
        uint64_t answered = 0;
        uint64_t missed = 0;
        uint64_t unavailable = 0;
        uint64_t hedges = 0;
        uint64_t hedgeWins = 0;
        uint64_t retries = 0;
        uint64_t failures = 0;
        uint64_t rollouts = 0; ///< completed snapshot rollouts
        LatencyHistogram latencyNs;
        /** Serializes rollouts of this shard (never held with mu). */
        std::mutex rolloutMu;
    };

    Clock &
    clock() const
    {
        return cfg_.clock ? *cfg_.clock : realClock();
    }

    /** Hash-preferred replica for attempt @p attempt of
     *  (query, shard), health-blind. */
    uint32_t replicaFor(uint64_t query_id, uint32_t shard,
                        uint32_t attempt) const;

    /** Health-aware replica choice: the hash-preferred replica, or
     *  the next non-ejected one. @return false when every replica of
     *  the shard is ejected (shard is unavailable right now). */
    bool pickReplica(uint64_t query_id, uint32_t shard,
                     uint32_t attempt, uint64_t now_ns,
                     uint32_t *replica) const;

    /** Update @p replica's health after an attempt resolves. */
    void noteAttemptResult(uint32_t shard, uint32_t replica,
                           bool failed, uint64_t now_ns);

    /** Issue one attempt; @return false when no replica is
     *  admittable (caller must settle the shard as unavailable). */
    bool issue(const SearchRequest &base, uint32_t shard,
               bool is_hedge, uint64_t t0, uint64_t deadline_ns,
               const std::shared_ptr<Gather> &gather,
               const std::shared_ptr<std::atomic<bool>> &cancel);

    /** Mark @p shard provably dead for this query and wake the
     *  gatherer. Caller must not hold gather->mu. */
    static void markUnavailable(const std::shared_ptr<Gather> &gather,
                                uint32_t shard);

    /** Shared pool construction for both ctors. */
    void buildShards(uint32_t num_shards,
                     const std::vector<const IndexShard *> &shards,
                     const std::vector<LiveIndex *> &indexes);

    ClusterConfig cfg_;
    std::vector<std::unique_ptr<ShardState>> shards_;
    /** Per-shard live index (empty on frozen clusters). */
    std::vector<LiveIndex *> live_;

    /** Cluster-level stats, guarded by statsMu_. */
    mutable std::mutex statsMu_;
    uint64_t queries_ = 0;
    uint64_t degraded_ = 0;
    uint64_t hedgesIssued_ = 0;
    uint64_t hedgeWins_ = 0;
    uint64_t retriesIssued_ = 0;
    uint64_t shardAnswers_ = 0;
    uint64_t shardMisses_ = 0;
    uint64_t shardsUnavailable_ = 0;
    LatencyHistogram queryNs_;
    LatencyHistogram shardNs_;
};

} // namespace wsearch

#endif // WSEARCH_SERVE_CLUSTER_HH
