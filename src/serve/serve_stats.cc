#include "serve/serve_stats.hh"

#include <cstdio>

#include "util/table.hh"

namespace wsearch {

std::string
fmtUsec(uint64_t ns)
{
    return Table::fmt(static_cast<double>(ns) / 1e3, 2);
}

void
ServeSnapshot::merge(const ServeSnapshot &other)
{
    submitted += other.submitted;
    accepted += other.accepted;
    shed += other.shed;
    cacheHits += other.cacheHits;
    refused += other.refused;
    completed += other.completed;
    expired += other.expired;
    cancelled += other.cancelled;
    faultFailed += other.faultFailed;
    faultDropped += other.faultDropped;
    faultCorrupted += other.faultCorrupted;
    cacheLookups += other.cacheLookups;
    cacheEvictions += other.cacheEvictions;
    snapshotsAdopted += other.snapshotsAdopted;
    handoffsRejected += other.handoffsRejected;
    // Version range: min over non-zero lows (0 marks a frozen pool
    // that serves no versioned snapshot), max over highs.
    if (other.indexVersionHigh > indexVersionHigh)
        indexVersionHigh = other.indexVersionHigh;
    if (other.indexVersionLow != 0 &&
        (indexVersionLow == 0 || other.indexVersionLow < indexVersionLow))
        indexVersionLow = other.indexVersionLow;
    sojournNs.merge(other.sojournNs);
    serviceNs.merge(other.serviceNs);
    cacheHitNs.merge(other.cacheHitNs);
    workers.insert(workers.end(), other.workers.begin(),
                   other.workers.end());
}

void
printServeReport(const ServeSnapshot &snap, double duration_sec)
{
    Table summary({"Metric", "Value"});
    summary.addRow({"submitted", Table::fmtInt(snap.submitted)});
    summary.addRow({"accepted", Table::fmtInt(snap.accepted)});
    summary.addRow({"shed", Table::fmtInt(snap.shed)});
    summary.addRow({"cache hits", Table::fmtInt(snap.cacheHits)});
    summary.addRow({"completed", Table::fmtInt(snap.completed)});
    if (snap.expired || snap.cancelled || snap.faultFailed) {
        summary.addRow({"expired", Table::fmtInt(snap.expired)});
        summary.addRow({"cancelled", Table::fmtInt(snap.cancelled)});
        summary.addRow({"executed", Table::fmtInt(snap.executed())});
    }
    if (snap.refused || snap.faultFailed || snap.faultDropped ||
        snap.faultCorrupted) {
        summary.addRow({"refused", Table::fmtInt(snap.refused)});
        summary.addRow({"fault failed",
                        Table::fmtInt(snap.faultFailed)});
        summary.addRow({"fault dropped",
                        Table::fmtInt(snap.faultDropped)});
        summary.addRow({"fault corrupted",
                        Table::fmtInt(snap.faultCorrupted)});
    }
    if (snap.cacheLookups) {
        summary.addRow({"cache lookups",
                        Table::fmtInt(snap.cacheLookups)});
        summary.addRow({"cache evictions",
                        Table::fmtInt(snap.cacheEvictions)});
    }
    if (snap.indexVersionHigh) {
        summary.addRow({"index version low",
                        Table::fmtInt(snap.indexVersionLow)});
        summary.addRow({"index version high",
                        Table::fmtInt(snap.indexVersionHigh)});
        summary.addRow({"snapshots adopted",
                        Table::fmtInt(snap.snapshotsAdopted)});
        summary.addRow({"handoffs rejected",
                        Table::fmtInt(snap.handoffsRejected)});
    }
    if (duration_sec > 0) {
        const double qps =
            static_cast<double>(snap.completed + snap.cacheHits) /
            duration_sec;
        summary.addRow({"achieved QPS", Table::fmt(qps, 1)});
    }
    const LatencyHistogram &s = snap.sojournNs;
    summary.addRow({"sojourn p50 (us)", fmtUsec(s.quantile(0.50))});
    summary.addRow({"sojourn p95 (us)", fmtUsec(s.quantile(0.95))});
    summary.addRow({"sojourn p99 (us)", fmtUsec(s.quantile(0.99))});
    summary.addRow({"sojourn p99.9 (us)", fmtUsec(s.quantile(0.999))});
    summary.addRow({"sojourn max (us)", fmtUsec(s.max())});
    summary.addRow({"service mean (us)",
                    Table::fmt(snap.serviceNs.mean() / 1e3, 2)});
    summary.print();

    Table workers({"Worker", "Served", "Busy (ms)", "Mean svc (us)"});
    for (size_t w = 0; w < snap.workers.size(); ++w) {
        const WorkerCounters &c = snap.workers[w];
        const double mean_us = c.served
            ? static_cast<double>(c.busyNs) /
                (1e3 * static_cast<double>(c.served))
            : 0.0;
        workers.addRow({Table::fmtInt(w), Table::fmtInt(c.served),
                        Table::fmt(static_cast<double>(c.busyNs) / 1e6,
                                   1),
                        Table::fmt(mean_us, 2)});
    }
    std::printf("\n");
    workers.print();
}

} // namespace wsearch
