/**
 * @file
 * Bounded multi-producer/multi-consumer request queue: the admission
 * point of the serving runtime. Producers either block until space
 * frees up (closed-loop clients) or fail immediately (open-loop
 * overload shedding); consumers block until work arrives. close()
 * initiates shutdown: already-queued items still drain, further pushes
 * are refused, and blocked poppers return once the queue is empty.
 */

#ifndef WSEARCH_SERVE_BOUNDED_QUEUE_HH
#define WSEARCH_SERVE_BOUNDED_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "util/logging.hh"

namespace wsearch {

/** Mutex/condvar bounded MPMC FIFO. */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(size_t capacity) : capacity_(capacity)
    {
        wsearch_assert(capacity >= 1);
    }

    /**
     * Blocking push: waits while full. @return false (and leaves @p v
     * untouched) when the queue was closed.
     */
    bool
    push(T &&v)
    {
        std::unique_lock<std::mutex> lk(mu_);
        notFull_.wait(lk, [this] {
            return closed_ || q_.size() < capacity_;
        });
        if (closed_)
            return false;
        q_.push_back(std::move(v));
        lk.unlock();
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Non-blocking push for open-loop admission control: @return false
     * (shed; @p v untouched) when full or closed.
     */
    bool
    tryPush(T &&v)
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (closed_ || q_.size() >= capacity_)
                return false;
            q_.push_back(std::move(v));
        }
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Blocking pop: waits for an item. @return false only when the
     * queue is closed AND fully drained (consumer shutdown signal).
     */
    bool
    pop(T &out)
    {
        std::unique_lock<std::mutex> lk(mu_);
        notEmpty_.wait(lk, [this] { return closed_ || !q_.empty(); });
        if (q_.empty())
            return false;
        out = std::move(q_.front());
        q_.pop_front();
        lk.unlock();
        notFull_.notify_one();
        return true;
    }

    /** Begin shutdown: refuse new items, wake every blocked thread. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            closed_ = true;
        }
        notFull_.notify_all();
        notEmpty_.notify_all();
    }

    size_t
    depth() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return q_.size();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return closed_;
    }

    size_t capacity() const { return capacity_; }

  private:
    const size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
    std::deque<T> q_;
    bool closed_ = false;
};

} // namespace wsearch

#endif // WSEARCH_SERVE_BOUNDED_QUEUE_HH
