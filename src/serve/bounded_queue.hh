/**
 * @file
 * Bounded multi-producer/multi-consumer request queue: the admission
 * point of the serving runtime. Producers either block until space
 * frees up (closed-loop clients) or fail immediately (open-loop
 * overload shedding); consumers block until work arrives. close()
 * initiates shutdown: already-queued items still drain, further pushes
 * are refused, and blocked poppers return once the queue is empty.
 *
 * Since the contention-free data-plane rework the implementation is
 * the lock-free Vyukov ticket ring in serve/ticket_ring.hh; the
 * historical mutex/condvar BoundedQueue name survives as an alias so
 * call sites and the queue contract tests are unchanged.
 */

#ifndef WSEARCH_SERVE_BOUNDED_QUEUE_HH
#define WSEARCH_SERVE_BOUNDED_QUEUE_HH

#include "serve/ticket_ring.hh"

namespace wsearch {

/** Bounded MPMC FIFO (lock-free fast path, blocking slow path). */
template <typename T>
using BoundedQueue = TicketRing<T>;

} // namespace wsearch

#endif // WSEARCH_SERVE_BOUNDED_QUEUE_HH
