/**
 * @file
 * Lock-striped query-result cache tier: the contention-free front of
 * the serving hot path. The single QueryCacheServer + one cacheMu_
 * pair that used to serialize every admission is sharded into a
 * power-of-two array of independent segments, each its own LRU
 * QueryCacheServer behind its own mutex with its own hit-latency
 * histogram. A query id is hashed (splitmix64 mix) to exactly one
 * segment, so concurrent lookups of different queries take different
 * locks and never touch each other's LRU list; totals for
 * ServeSnapshot are summed over segments at snapshot time.
 *
 * Capacity is distributed evenly (capacity / N per segment, the first
 * capacity % N segments take one extra). A total capacity below the
 * stripe count leaves some segments with zero entries; those inherit
 * QueryCacheServer's zero-capacity guard -- insert() is a no-op
 * before any mutation and every lookup is a counted miss -- so a
 * zero-capacity tier sheds to miss identically across ALL segments
 * instead of behaving differently on the segment an entry would have
 * hashed to.
 */

#ifndef WSEARCH_SERVE_STRIPED_CACHE_HH
#define WSEARCH_SERVE_STRIPED_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "search/cache_server.hh"
#include "serve/clock.hh"
#include "serve/latency_histogram.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace wsearch {

/** Hash-partitioned array of mutex-guarded LRU cache segments. */
class StripedQueryCache
{
  public:
    /** Summed per-segment counters (ServeSnapshot's cache fields). */
    struct Totals
    {
        uint64_t lookups = 0;
        uint64_t hits = 0;
        uint64_t evictions = 0;
        uint64_t size = 0;
    };

    /** @p stripes must be a power of two >= 1. */
    StripedQueryCache(size_t capacity, size_t stripes)
        : capacity_(capacity), mask_(stripes - 1)
    {
        wsearch_assert(stripes >= 1 &&
                       (stripes & (stripes - 1)) == 0);
        stripes_.reserve(stripes);
        const size_t base = capacity / stripes;
        const size_t extra = capacity % stripes;
        for (size_t i = 0; i < stripes; ++i)
            stripes_.push_back(std::make_unique<Stripe>(
                base + (i < extra ? 1 : 0)));
    }

    /** Which segment @p query_id lives in (for equivalence tests). */
    static size_t
    stripeFor(uint64_t query_id, size_t stripes)
    {
        uint64_t state = query_id;
        return static_cast<size_t>(splitmix64(state)) & (stripes - 1);
    }

    /**
     * Segment-local lookup; counts the lookup (and the hit, refreshing
     * that segment's LRU) exactly like the single-segment tier did.
     * On a hit, the lock-to-answer latency measured on @p clk is
     * recorded into the segment's hit-latency histogram (null clock:
     * a 0-ns sample, so the hit count still lands).
     */
    bool
    lookup(uint64_t query_id, std::vector<ScoredDoc> *out,
           Clock *clk = nullptr)
    {
        const uint64_t t0 = clk ? clk->now() : 0;
        Stripe &s = stripe(query_id);
        std::lock_guard<std::mutex> lk(s.mu);
        if (!s.cache.lookup(query_id, out))
            return false;
        s.hitNs.record(clk ? clk->now() - t0 : 0);
        return true;
    }

    /** Install results for a missed query (segment-local). */
    void
    insert(uint64_t query_id, std::vector<ScoredDoc> results)
    {
        Stripe &s = stripe(query_id);
        std::lock_guard<std::mutex> lk(s.mu);
        s.cache.insert(query_id, std::move(results));
    }

    /** Summed counters across every segment. */
    Totals
    totals() const
    {
        Totals t;
        for (const auto &s : stripes_) {
            std::lock_guard<std::mutex> lk(s->mu);
            t.lookups += s->cache.lookups();
            t.hits += s->cache.hits();
            t.evictions += s->cache.evictions();
            t.size += s->cache.size();
        }
        return t;
    }

    /** One segment's counters (tests / per-segment observability). */
    Totals
    stripeTotals(size_t i) const
    {
        const Stripe &s = *stripes_[i];
        std::lock_guard<std::mutex> lk(s.mu);
        return Totals{s.cache.lookups(), s.cache.hits(),
                      s.cache.evictions(), s.cache.size()};
    }

    /** Merged hit-latency histogram across segments. */
    LatencyHistogram
    hitHistogram() const
    {
        LatencyHistogram h;
        for (const auto &s : stripes_) {
            std::lock_guard<std::mutex> lk(s->mu);
            h.merge(s->hitNs);
        }
        return h;
    }

    size_t stripeCount() const { return stripes_.size(); }
    size_t capacity() const { return capacity_; }
    size_t
    stripeCapacity(size_t i) const
    {
        return stripes_[i]->cache.capacity();
    }

  private:
    /** Own cache line per segment: neighboring segments' locks and
     *  LRU heads must not false-share. */
    struct alignas(64) Stripe
    {
        explicit Stripe(size_t cap) : cache(cap) {}
        mutable std::mutex mu;
        QueryCacheServer cache;
        LatencyHistogram hitNs;
    };

    Stripe &
    stripe(uint64_t query_id)
    {
        return *stripes_[stripeFor(query_id, mask_ + 1)];
    }

    const size_t capacity_;
    const size_t mask_;
    std::vector<std::unique_ptr<Stripe>> stripes_;
};

} // namespace wsearch

#endif // WSEARCH_SERVE_STRIPED_CACHE_HH
