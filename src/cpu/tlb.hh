/**
 * @file
 * Two-level TLB model for the huge-page study (paper Figure 2c).
 * Reuses the set-associative cache over page numbers; a second-level
 * TLB miss costs a page walk whose latency feeds the core model's
 * back-end (data) or front-end (instruction) stalls.
 */

#ifndef WSEARCH_CPU_TLB_HH
#define WSEARCH_CPU_TLB_HH

#include <cstdint>

#include "memsim/cache.hh"

namespace wsearch {

/** TLB configuration. Defaults model a Haswell-class MMU with 4 KiB
 *  pages; hugePages() switches both level sizes to the huge-page
 *  configuration. */
struct TlbConfig
{
    uint64_t pageBytes = 4 * KiB;
    uint32_t l1Entries = 64;
    uint32_t l1Ways = 4;
    uint32_t l2Entries = 1024;
    uint32_t l2Ways = 8;
    double walkNs = 42.0; ///< full page-walk latency

    /** Haswell-style 2 MiB huge-page configuration. */
    static TlbConfig
    huge2M()
    {
        TlbConfig t;
        t.pageBytes = 2 * MiB;
        t.l1Entries = 32;
        t.l1Ways = 4;
        t.l2Entries = 1024;
        t.l2Ways = 8;
        return t;
    }

    /** POWER8-style 64 KiB base pages. */
    static TlbConfig
    base64K()
    {
        TlbConfig t;
        t.pageBytes = 64 * KiB;
        t.l1Entries = 64;
        t.l1Ways = 4;
        t.l2Entries = 1024;
        t.l2Ways = 8;
        t.walkNs = 24.0;
        return t;
    }

    /** POWER8-style 16 MiB huge pages. */
    static TlbConfig
    huge16M()
    {
        TlbConfig t = base64K();
        t.pageBytes = 16 * MiB;
        t.l1Entries = 32;
        return t;
    }
};

/** Where a translation was found. */
enum class TlbLevel : uint8_t {
    L1 = 1,
    L2 = 2,
    Walk = 3,
};

/** Two-level TLB. */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &cfg)
        : cfg_(cfg),
          l1_(CacheConfig{static_cast<uint64_t>(cfg.l1Entries) *
                              cfg.pageBytes,
                          static_cast<uint32_t>(cfg.pageBytes),
                          cfg.l1Ways}),
          l2_(CacheConfig{static_cast<uint64_t>(cfg.l2Entries) *
                              cfg.pageBytes,
                          static_cast<uint32_t>(cfg.pageBytes),
                          cfg.l2Ways})
    {
    }

    /** Translate; allocates on the walk path like a real MMU. */
    TlbLevel
    access(uint64_t vaddr)
    {
        ++accesses_;
        if (l1_.access(vaddr, false))
            return TlbLevel::L1;
        if (l2_.access(vaddr, false))
            return TlbLevel::L2;
        ++walks_;
        return TlbLevel::Walk;
    }

    uint64_t accesses() const { return accesses_; }
    uint64_t walks() const { return walks_; }
    double walkNs() const { return cfg_.walkNs; }

    void
    resetStats()
    {
        accesses_ = 0;
        walks_ = 0;
    }

  private:
    TlbConfig cfg_;
    SetAssocCache l1_;
    SetAssocCache l2_;
    uint64_t accesses_ = 0;
    uint64_t walks_ = 0;
};

} // namespace wsearch

#endif // WSEARCH_CPU_TLB_HH
