/**
 * @file
 * SMT throughput model (paper Figure 2b). Cache contention between
 * hardware threads is emergent from the functional simulation (threads
 * share L1/L2); this model converts the contention-adjusted
 * single-thread issue utilization into multi-thread core IPC using a
 * utilization-overlap formula with an issue-contention efficiency
 * factor per thread count.
 */

#ifndef WSEARCH_CPU_SMT_HH
#define WSEARCH_CPU_SMT_HH

#include <cmath>
#include <cstdint>

namespace wsearch {

/** Issue-contention efficiency per SMT level (1.0 = no contention). */
struct SmtParams
{
    double eta2 = 0.86;
    double eta4 = 0.76;
    double eta8 = 0.66;

    double
    eta(uint32_t threads) const
    {
        if (threads <= 1)
            return 1.0;
        if (threads == 2)
            return eta2;
        if (threads <= 4)
            return eta4;
        return eta8;
    }
};

/**
 * Core IPC with @p threads hardware threads.
 *
 * @param per_thread_ipc single-thread IPC measured *with* the cache
 *                       contention of the target SMT level (i.e. from
 *                       a simulation where the threads share L1/L2)
 * @param width          issue width
 */
inline double
smtCoreIpc(double per_thread_ipc, uint32_t width, uint32_t threads,
           const SmtParams &p = SmtParams{})
{
    const double u = per_thread_ipc / width;
    const double busy = 1.0 - std::pow(1.0 - u,
                                       static_cast<double>(threads));
    return width * busy * p.eta(threads);
}

} // namespace wsearch

#endif // WSEARCH_CPU_SMT_HH
