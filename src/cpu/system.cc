#include "cpu/system.hh"

#include <algorithm>

namespace wsearch {

SystemSimulator::SystemSimulator(const SystemConfig &cfg)
    : cfg_(cfg), hier_(cfg.hierarchy), core_(cfg.core)
{
    for (uint32_t c = 0; c < cfg.hierarchy.numCores; ++c) {
        predictors_.emplace_back(cfg.predictorEntries);
        if (cfg.modelTlb) {
            dtlbs_.emplace_back(cfg.dtlb);
            itlbs_.emplace_back(cfg.dtlb);
        }
    }
}

void
SystemSimulator::resetStats()
{
    hier_.resetStats();
    core_.reset();
    branches_ = 0;
    mispredicts_ = 0;
    itlbWalks_ = 0;
    dtlbWalks_ = 0;
    dtlbAccesses_ = 0;
    for (auto &t : dtlbs_)
        t.resetStats();
    for (auto &t : itlbs_)
        t.resetStats();
}

void
SystemSimulator::step(const TraceRecord &r, bool tlb)
{
    const uint32_t c = hier_.coreOf(r.tid);
    core_.onInstruction();

    if (tlb && itlbs_[c].access(r.pc) == TlbLevel::Walk) {
        ++itlbWalks_;
        core_.onItlbWalk();
    }
    const HitLevel il = hier_.accessInstr(r.tid, r.pc);
    core_.onInstrFetch(il);

    if (r.isBranch()) {
        ++branches_;
        if (!predictors_[c].predictAndUpdate(r.pc, r.isTaken())) {
            ++mispredicts_;
            core_.onBranchMispredict();
        }
    }
    if (r.hasData()) {
        if (tlb) {
            ++dtlbAccesses_;
            if (dtlbs_[c].access(r.addr) == TlbLevel::Walk) {
                ++dtlbWalks_;
                core_.onTlbWalk();
            }
        }
        const HitLevel dl = hier_.accessData(
            r.tid, r.pc, r.addr, r.isStore(), r.kind);
        core_.onDataAccess(dl);
    }
}

void
SystemSimulator::pump(TraceSource &src, uint64_t count)
{
    constexpr size_t kBatch = 8192;
    TraceRecord buf[kBatch];
    uint64_t done = 0;
    const bool tlb = cfg_.modelTlb;
    while (done < count) {
        const size_t want = static_cast<size_t>(
            std::min<uint64_t>(kBatch, count - done));
        const size_t got = src.fill(buf, want);
        if (got == 0)
            break;
        for (size_t i = 0; i < got; ++i)
            step(buf[i], tlb);
        done += got;
    }
}

uint64_t
SystemSimulator::pumpRange(const BufferedTrace &trace, uint64_t begin,
                           uint64_t count)
{
    const bool tlb = cfg_.modelTlb;
    uint64_t done = 0;
    while (done < count) {
        const BufferedTrace::Span s =
            trace.spanAt(begin + done, count - done);
        if (s.count == 0)
            break;
        for (size_t i = 0; i < s.count; ++i)
            step(s.data[i], tlb);
        done += s.count;
    }
    return done;
}

SystemResult
SystemSimulator::harvestCounters() const
{
    SystemResult res;
    res.instructions = core_.instructions();
    res.l1i = hier_.l1iStats();
    res.l1d = hier_.l1dStats();
    res.l2 = hier_.l2Stats();
    res.l3 = hier_.l3Stats();
    res.l4 = hier_.l4Stats();
    res.l3Evictions = hier_.l3Evictions();
    res.writebacks = hier_.writebacks();
    res.backInvalidations = hier_.backInvalidations();
    const CoherenceStats coh = hier_.cohStats();
    res.cohUpgrades = coh.upgrades;
    res.cohInvalidations = coh.invalidations;
    res.cohDirtyWritebacks = coh.dirtyWritebacks;
    res.branches = branches_;
    res.mispredicts = mispredicts_;
    res.dtlbAccesses = dtlbAccesses_;
    res.dtlbWalks = dtlbWalks_;
    res.itlbWalks = itlbWalks_;
    res.topdown = core_.topDown();
    return res;
}

void
SystemSimulator::finalizeDerived(SystemResult &res) const
{
    // Per-thread IPC: the slot accounting aggregates all threads, so
    // divide the implied cycles evenly (threads are symmetric).
    const uint32_t threads =
        cfg_.hierarchy.numCores * cfg_.hierarchy.smtWays;
    const double cycles_per_thread =
        res.topdown.total() / cfg_.core.width / threads;
    const double instr_per_thread =
        static_cast<double>(res.instructions) / threads;
    res.ipcPerThread = cycles_per_thread > 0
        ? instr_per_thread / cycles_per_thread : 0.0;

    // Average memory access time seen at the L3 (paper §III-D),
    // over data accesses as in the paper's CAT measurements.
    const double h_l3 = res.l3DataHitRate();
    double miss_path = cfg_.core.memNs;
    if (cfg_.hierarchy.l4) {
        const double h_l4 = res.l4.hitRateTotal();
        miss_path = h_l4 * cfg_.core.l4HitNs +
            (1.0 - h_l4) * (cfg_.core.memNs + cfg_.core.l4MissExtraNs);
    }
    res.amatL3Ns = h_l3 * cfg_.core.l3HitNs + (1.0 - h_l3) * miss_path;
}

SystemResult
SystemSimulator::run(TraceSource &src, uint64_t warmup, uint64_t measure)
{
    pump(src, warmup);
    resetStats();
    pump(src, measure);
    SystemResult res = harvestCounters();
    finalizeDerived(res);
    return res;
}

SystemResult
SystemSimulator::run(const BufferedTrace &trace, uint64_t warmup,
                     uint64_t measure)
{
    const uint64_t warmed = pumpRange(trace, 0, warmup);
    resetStats();
    pumpRange(trace, warmed, measure);
    SystemResult res = harvestCounters();
    finalizeDerived(res);
    return res;
}

SystemResult
SystemSimulator::runSampled(const BufferedTrace &trace, uint64_t total,
                            const SampledIntervals &s)
{
    if (!s.enabled())
        return run(trace, 0, total);
    total = std::min(total, trace.size());
    SystemResult acc;
    for (uint64_t period = 0; period < total;
         period += s.periodRecords) {
        const uint64_t window_end =
            std::min(total, period + s.periodRecords);
        const uint64_t warm =
            std::min(s.warmupRecords, window_end - period);
        pumpRange(trace, period, warm);
        const uint64_t measure_begin = period + warm;
        if (measure_begin >= window_end)
            continue;
        resetStats();
        pumpRange(trace, measure_begin,
                  std::min(s.measureRecords,
                           window_end - measure_begin));
        SystemResult window = harvestCounters();
        window.sampledWindows = 1;
        acc += window;
    }
    finalizeDerived(acc);
    return acc;
}

SystemResult
SystemSimulator::runPlanned(const BufferedTrace &trace,
                            const SamplingPlan &plan)
{
    if (!plan.enabled())
        return run(trace, 0, trace.size());
    SystemResult acc;
    std::vector<double> metric;
    metric.reserve(plan.windows.size());
    uint64_t pos = 0; // replay cursor: state is carried across gaps
    for (const SampleWindow &w : plan.windows) {
        const uint64_t warm_begin = std::max(
            pos, w.begin > plan.warmupRecords
                ? w.begin - plan.warmupRecords : 0);
        if (warm_begin < w.begin)
            pumpRange(trace, warm_begin, w.begin - warm_begin);
        resetStats();
        const uint64_t done = pumpRange(trace, w.begin, w.records);
        const SystemResult win = harvestCounters();
        metric.push_back(static_cast<double>(win.l3.totalMisses()));
        // Weight-merge strictly via operator+=: the representative
        // stands for `weight` windows of its cluster.
        SystemResult scaled;
        for (uint64_t r = 0; r < w.weight; ++r)
            scaled += win;
        scaled.sampledWindows = 1;
        scaled.representedWindows = w.weight;
        acc += scaled;
        pos = w.begin + done;
    }
    acc.l3MissVar = planVariance(
        plan, metric, static_cast<double>(acc.l3.totalMisses()));
    finalizeDerived(acc);
    return acc;
}

} // namespace wsearch
