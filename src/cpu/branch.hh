/**
 * @file
 * Branch direction predictors: bimodal, gshare, and a tournament
 * combination (Alpha 21264-style). Production search's branch MPKI is
 * dominated by data-dependent branches whose outcomes are effectively
 * coin flips; the predictors recover everything else (loops, biased
 * conditionals), so the calibrated misprediction rate is emergent.
 */

#ifndef WSEARCH_CPU_BRANCH_HH
#define WSEARCH_CPU_BRANCH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/logging.hh"
#include "util/units.hh"

namespace wsearch {

/** Direction predictor interface. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predict the direction of the branch at @p pc. */
    virtual bool predict(uint64_t pc) const = 0;

    /** Train with the resolved direction. */
    virtual void update(uint64_t pc, bool taken) = 0;

    virtual std::string name() const = 0;

    /** Predict, train, and return whether the prediction was correct. */
    bool
    predictAndUpdate(uint64_t pc, bool taken)
    {
        const bool predicted = predict(pc);
        update(pc, taken);
        return predicted == taken;
    }
};

/** Table of saturating 2-bit counters indexed by hashed PC. */
class BimodalPredictor : public BranchPredictor
{
  public:
    explicit BimodalPredictor(uint32_t entries = 16384)
        : table_(entries, 2) // init weakly-taken (static predict-taken)
    {
        wsearch_assert(isPow2(entries));
    }

    bool
    predict(uint64_t pc) const override
    {
        return table_[index(pc)] >= 2;
    }

    void
    update(uint64_t pc, bool taken) override
    {
        uint8_t &c = table_[index(pc)];
        if (taken && c < 3)
            ++c;
        else if (!taken && c > 0)
            --c;
    }

    std::string name() const override { return "bimodal"; }

  private:
    size_t
    index(uint64_t pc) const
    {
        return (pc >> 2) & (table_.size() - 1);
    }

    mutable std::vector<uint8_t> table_;
};

/** Global-history predictor: counters indexed by GHR xor PC. */
class GSharePredictor : public BranchPredictor
{
  public:
    explicit GSharePredictor(uint32_t entries = 16384,
                             uint32_t history_bits = 12)
        : table_(entries, 2), // init weakly-taken
          histMask_((1ull << history_bits) - 1)
    {
        wsearch_assert(isPow2(entries));
    }

    bool
    predict(uint64_t pc) const override
    {
        return table_[index(pc)] >= 2;
    }

    void
    update(uint64_t pc, bool taken) override
    {
        uint8_t &c = table_[index(pc)];
        if (taken && c < 3)
            ++c;
        else if (!taken && c > 0)
            --c;
        ghr_ = ((ghr_ << 1) | (taken ? 1 : 0)) & histMask_;
    }

    std::string name() const override { return "gshare"; }

  private:
    size_t
    index(uint64_t pc) const
    {
        return ((pc >> 2) ^ ghr_) & (table_.size() - 1);
    }

    std::vector<uint8_t> table_;
    uint64_t histMask_;
    uint64_t ghr_ = 0;
};

/** Chooser-based tournament of bimodal and gshare. */
class TournamentPredictor : public BranchPredictor
{
  public:
    explicit TournamentPredictor(uint32_t entries = 16384)
        : bimodal_(entries), gshare_(entries),
          // Prefer the bimodal until the global-history component
          // proves itself: cold gshare entries are noise.
          chooser_(entries, 1)
    {
        wsearch_assert(isPow2(entries));
    }

    bool
    predict(uint64_t pc) const override
    {
        const bool use_gshare =
            chooser_[(pc >> 2) & (chooser_.size() - 1)] >= 2;
        return use_gshare ? gshare_.predict(pc) : bimodal_.predict(pc);
    }

    void
    update(uint64_t pc, bool taken) override
    {
        const bool b_correct = bimodal_.predict(pc) == taken;
        const bool g_correct = gshare_.predict(pc) == taken;
        uint8_t &c = chooser_[(pc >> 2) & (chooser_.size() - 1)];
        if (g_correct && !b_correct && c < 3)
            ++c;
        else if (b_correct && !g_correct && c > 0)
            --c;
        bimodal_.update(pc, taken);
        gshare_.update(pc, taken);
    }

    std::string name() const override { return "tournament"; }

  private:
    BimodalPredictor bimodal_;
    GSharePredictor gshare_;
    std::vector<uint8_t> chooser_;
};

} // namespace wsearch

#endif // WSEARCH_CPU_BRANCH_HH
