/**
 * @file
 * Full-system trace simulation: cache hierarchy + branch predictors +
 * TLBs + Top-Down core model in one loop. This is the engine behind
 * Table I, Figures 2, 3, and 8: one pass produces MPKIs, branch
 * behaviour, TLB walks, the Top-Down breakdown, IPC, and AMAT.
 */

#ifndef WSEARCH_CPU_SYSTEM_HH
#define WSEARCH_CPU_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cpu/branch.hh"
#include "cpu/core_model.hh"
#include "cpu/tlb.hh"
#include "memsim/hierarchy.hh"
#include "memsim/simulator.hh"
#include "memsim/sweep.hh"
#include "trace/buffered_trace.hh"
#include "trace/record.hh"

namespace wsearch {

/** Configuration of a full system simulation. */
struct SystemConfig
{
    HierarchySpec hierarchy;
    CoreModelParams core;
    bool modelTlb = false;
    TlbConfig dtlb;  ///< data-side TLB (also used for instruction side)
    /** Direction-predictor capacity; production cores have far more
     *  predictor state than an academic 16K bimodal, which matters
     *  against search's ~4 MiB code footprint. */
    uint32_t predictorEntries = 128 * 1024;
};

/** Everything one system run produces. */
struct SystemResult
{
    uint64_t instructions = 0;
    CacheLevelStats l1i, l1d, l2, l3, l4;
    uint64_t l3Evictions = 0;
    uint64_t writebacks = 0;
    uint64_t backInvalidations = 0;
    // Coherence traffic (all zero when CoherenceProtocol::None).
    uint64_t cohUpgrades = 0;
    uint64_t cohInvalidations = 0;
    uint64_t cohDirtyWritebacks = 0;

    uint64_t branches = 0;
    uint64_t mispredicts = 0;

    uint64_t dtlbAccesses = 0;
    uint64_t dtlbWalks = 0;
    uint64_t itlbWalks = 0;

    TopDown topdown;
    double ipcPerThread = 0;  ///< per-hardware-thread IPC
    double amatL3Ns = 0;      ///< hL3*tL3 + (1-hL3)*t_miss-path
    /** Sampled measurement windows merged in (0 = exact run). */
    uint64_t sampledWindows = 0;
    /** Windows the estimate stands for (sum of plan weights; 0 = exact). */
    uint64_t representedWindows = 0;
    /** Variance of the weighted LLC-total-miss estimate (0 = exact). */
    double l3MissVar = 0;

    /** 95% confidence half-width on the l3 total-miss estimate. */
    double
    l3MissHalfWidth95() const
    {
        return 1.96 * std::sqrt(l3MissVar);
    }

    /** Lower/upper 95% band on the l3 total-miss estimate. */
    double
    l3MissBandLo() const
    {
        const double lo = static_cast<double>(l3.totalMisses()) -
            l3MissHalfWidth95();
        return lo > 0 ? lo : 0;
    }

    double
    l3MissBandHi() const
    {
        return static_cast<double>(l3.totalMisses()) +
            l3MissHalfWidth95();
    }

    /** Band half-width relative to the estimate (0 when exact). */
    double
    bandRelHalfWidth() const
    {
        const uint64_t m = l3.totalMisses();
        return m ? l3MissHalfWidth95() / static_cast<double>(m) : 0.0;
    }

    /**
     * Merge another result's raw counters (sampled-window
     * accumulation). Derived values (IPC, AMAT) are NOT merged; the
     * simulator recomputes them after the last window.
     */
    SystemResult &
    operator+=(const SystemResult &o)
    {
        instructions += o.instructions;
        l1i += o.l1i;
        l1d += o.l1d;
        l2 += o.l2;
        l3 += o.l3;
        l4 += o.l4;
        l3Evictions += o.l3Evictions;
        writebacks += o.writebacks;
        backInvalidations += o.backInvalidations;
        cohUpgrades += o.cohUpgrades;
        cohInvalidations += o.cohInvalidations;
        cohDirtyWritebacks += o.cohDirtyWritebacks;
        branches += o.branches;
        mispredicts += o.mispredicts;
        dtlbAccesses += o.dtlbAccesses;
        dtlbWalks += o.dtlbWalks;
        itlbWalks += o.itlbWalks;
        topdown += o.topdown;
        sampledWindows += o.sampledWindows;
        representedWindows += o.representedWindows;
        l3MissVar += o.l3MissVar;
        return *this;
    }

    double
    branchMpki() const
    {
        return instructions
            ? 1000.0 * static_cast<double>(mispredicts) /
                  static_cast<double>(instructions)
            : 0.0;
    }

    double
    l3LoadMpki() const
    {
        return l3.mpkiData(instructions);
    }

    double
    l2InstrMpki() const
    {
        return l2.mpki(AccessKind::Code, instructions);
    }

    /**
     * L3 hit rate over data accesses only -- what CAT-style
     * load-counter measurements (paper Figure 8a) observe, and the
     * input to the AMAT/Eq.1 models.
     */
    double
    l3DataHitRate() const
    {
        const uint64_t code_acc = l3.accessesOf(AccessKind::Code);
        const uint64_t code_miss = l3.missesOf(AccessKind::Code);
        const uint64_t acc = l3.totalAccesses() - code_acc;
        const uint64_t miss = l3.totalMisses() - code_miss;
        if (acc == 0)
            return 1.0;
        return 1.0 - static_cast<double>(miss) /
                     static_cast<double>(acc);
    }
};

/** The combined simulator. */
class SystemSimulator
{
  public:
    explicit SystemSimulator(const SystemConfig &cfg);

    /**
     * Simulate @p warmup then @p measure records from @p src.
     * Statistics cover the measurement phase only.
     */
    SystemResult run(TraceSource &src, uint64_t warmup,
                     uint64_t measure);

    /**
     * Chunked-replay variant over a materialized trace: bit-identical
     * counters to run(TraceSource&) on a fresh source producing the
     * same records, with no generation cost or staging copies.
     */
    SystemResult run(const BufferedTrace &trace, uint64_t warmup,
                     uint64_t measure);

    /**
     * Sampled-interval replay of the first @p total buffer records
     * (see SampledIntervals): per-window counters are merged and the
     * result's sampledWindows is nonzero. Derived metrics are
     * recomputed over the merged counters.
     */
    SystemResult runSampled(const BufferedTrace &trace, uint64_t total,
                            const SampledIntervals &sampling);

    /**
     * Planned representative-window replay (see runTracePlanned):
     * windows visited in position order on this one system, predictor
     * and cache state carried across gaps, per-window counters
     * weight-merged via operator+=. The result carries the confidence
     * band (l3MissVar) and window accounting; derived metrics are
     * recomputed over the merged counters. A plan selecting every
     * window with weight 1 reproduces the exact contiguous replay
     * bit-identically.
     */
    SystemResult runPlanned(const BufferedTrace &trace,
                            const SamplingPlan &plan);

    CacheHierarchy &hierarchy() { return hier_; }

  private:
    void step(const TraceRecord &r, bool tlb);
    void pump(TraceSource &src, uint64_t count);
    uint64_t pumpRange(const BufferedTrace &trace, uint64_t begin,
                       uint64_t count);
    void resetStats();
    /** Read the current counters off every component. */
    SystemResult harvestCounters() const;
    /** Compute IPC / AMAT over @p res's (possibly merged) counters. */
    void finalizeDerived(SystemResult &res) const;

    SystemConfig cfg_;
    CacheHierarchy hier_;
    std::vector<TournamentPredictor> predictors_; ///< one per core
    std::vector<Tlb> dtlbs_;
    std::vector<Tlb> itlbs_;
    CoreModel core_; ///< aggregated slot accounting across threads
    uint64_t branches_ = 0;
    uint64_t mispredicts_ = 0;
    uint64_t itlbWalks_ = 0;
    uint64_t dtlbWalks_ = 0;
    uint64_t dtlbAccesses_ = 0;
};

} // namespace wsearch

#endif // WSEARCH_CPU_SYSTEM_HH
