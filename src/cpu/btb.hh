/**
 * @file
 * Branch target buffer: a set-associative cache of branch targets.
 * A taken branch whose target is absent (or stale) costs a front-end
 * redirect bubble even when the direction was predicted correctly.
 * Available as an optional front-end component of the system
 * simulator; the calibrated Figure 3 runs keep it off because its
 * effect is folded into the front-end exposure factors.
 */

#ifndef WSEARCH_CPU_BTB_HH
#define WSEARCH_CPU_BTB_HH

#include <cstdint>
#include <vector>

#include "util/logging.hh"
#include "util/units.hh"

namespace wsearch {

/** Branch target buffer. */
class Btb
{
  public:
    /**
     * @param entries total entries (power of two)
     * @param ways    associativity
     */
    explicit Btb(uint32_t entries = 4096, uint32_t ways = 4)
        : ways_(ways), sets_(entries / ways)
    {
        wsearch_assert(isPow2(entries));
        wsearch_assert(ways >= 1 && entries % ways == 0);
        tags_.assign(entries, kInvalid);
        targets_.assign(entries, 0);
        stamps_.assign(entries, 0);
    }

    /**
     * Look up the predicted target of the branch at @p pc.
     * @return true with @p target filled on a hit.
     */
    bool
    predict(uint64_t pc, uint64_t *target) const
    {
        const size_t base = setBase(pc);
        for (uint32_t w = 0; w < ways_; ++w) {
            if (tags_[base + w] == pc) {
                *target = targets_[base + w];
                return true;
            }
        }
        return false;
    }

    /** Install/refresh the resolved target of a taken branch. */
    void
    update(uint64_t pc, uint64_t target)
    {
        const size_t base = setBase(pc);
        ++tick_;
        uint32_t victim = 0;
        uint64_t oldest = ~0ull;
        for (uint32_t w = 0; w < ways_; ++w) {
            if (tags_[base + w] == pc) {
                targets_[base + w] = target;
                stamps_[base + w] = tick_;
                return;
            }
            if (tags_[base + w] == kInvalid) {
                victim = w;
                oldest = 0;
                break;
            }
            if (stamps_[base + w] < oldest) {
                oldest = stamps_[base + w];
                victim = w;
            }
        }
        tags_[base + victim] = pc;
        targets_[base + victim] = target;
        stamps_[base + victim] = tick_;
    }

    /**
     * Full front-end step for a resolved branch: predict, train, and
     * report whether the taken-path target was correctly provided.
     * Not-taken branches never need the BTB.
     */
    bool
    lookupAndUpdate(uint64_t pc, bool taken, uint64_t target)
    {
        if (!taken)
            return true;
        uint64_t predicted = 0;
        const bool hit = predict(pc, &predicted) && predicted == target;
        update(pc, target);
        return hit;
    }

    uint32_t ways() const { return ways_; }
    uint32_t sets() const { return sets_; }

  private:
    static constexpr uint64_t kInvalid = ~0ull;

    size_t
    setBase(uint64_t pc) const
    {
        return (static_cast<size_t>(pc >> 2) & (sets_ - 1)) * ways_;
    }

    uint32_t ways_;
    uint32_t sets_;
    uint64_t tick_ = 0;
    std::vector<uint64_t> tags_;
    std::vector<uint64_t> targets_;
    std::vector<uint64_t> stamps_;
};

} // namespace wsearch

#endif // WSEARCH_CPU_BTB_HH
