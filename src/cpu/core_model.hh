/**
 * @file
 * Slot-based core performance model with Top-Down accounting
 * (Yasin [60], as used in paper §II-F). An n-wide core has n issue
 * slots per cycle; every slot is attributed to Retiring, Bad
 * Speculation, Front-End (latency / bandwidth), or Back-End (memory /
 * core). The model charges miss events from the functional cache,
 * branch, and TLB simulations with calibrated exposure factors; IPC
 * and the Figure 3 breakdown fall out of the same accounting.
 *
 * The paper's key empirical finding -- IPC is linear in L3 AMAT
 * because search has low memory-level parallelism (§III-D, Eq. 1) --
 * is emergent here: post-L2 data latency has a high exposure factor,
 * so back-end memory slots scale linearly with AMAT.
 */

#ifndef WSEARCH_CPU_CORE_MODEL_HH
#define WSEARCH_CPU_CORE_MODEL_HH

#include <cstdint>

#include "memsim/hierarchy.hh"
#include "trace/profile.hh"

namespace wsearch {

/** Latency and exposure parameters of the core model. */
struct CoreModelParams
{
    uint32_t width = 4;       ///< issue slots per cycle
    double freqGhz = 2.5;

    // Load-to-use latencies beyond the L1 (ns).
    double l2HitNs = 4.8;     ///< ~12 cycles
    double l3HitNs = 23.0;    ///< measured t_L3 in the paper's model
    double l4HitNs = 40.0;    ///< paper's optimized eDRAM L4
    double memNs = 123.0;     ///< measured round-trip t_MEM
    double l4MissExtraNs = 0.0; ///< serialization penalty (pessimistic)

    double bpPenaltyCycles = 13.0; ///< mispredict flush + refill

    /** Fraction of instruction-fetch miss latency exposed. */
    double feExposure = 0.095;

    // Workload-dependent exposures (copied from WorkloadProfile).
    CpuTweaks tweaks;

    double tlbWalkNs = 42.0;
    /** Page walks serialize address translation; far less of their
     *  latency is hidden than for ordinary loads. */
    double tlbWalkExposure = 0.45;

    /** Cycles for a given latency in ns. */
    double
    cycles(double ns) const
    {
        return ns * freqGhz;
    }
};

/** Slot totals per Top-Down category. */
struct TopDown
{
    double retiring = 0;
    double badSpeculation = 0;
    double frontendLatency = 0;
    double frontendBandwidth = 0;
    double backendMemory = 0;
    double backendCore = 0;

    double
    total() const
    {
        return retiring + badSpeculation + frontendLatency +
            frontendBandwidth + backendMemory + backendCore;
    }

    /** Merge another breakdown's slots (sampled-window accumulation). */
    TopDown &
    operator+=(const TopDown &o)
    {
        retiring += o.retiring;
        badSpeculation += o.badSpeculation;
        frontendLatency += o.frontendLatency;
        frontendBandwidth += o.frontendBandwidth;
        backendMemory += o.backendMemory;
        backendCore += o.backendCore;
        return *this;
    }

    double retiringFrac() const { return retiring / total(); }
    double badSpecFrac() const { return badSpeculation / total(); }
    double feLatFrac() const { return frontendLatency / total(); }
    double feBwFrac() const { return frontendBandwidth / total(); }
    double beMemFrac() const { return backendMemory / total(); }
    double beCoreFrac() const { return backendCore / total(); }
};

/**
 * Per-thread accounting engine. Feed one event call per instruction;
 * read off the Top-Down breakdown and IPC.
 */
class CoreModel
{
  public:
    explicit CoreModel(const CoreModelParams &p) : p_(p) {}

    /** Every instruction retires exactly once. */
    void
    onInstruction()
    {
        ++instructions_;
        td_.retiring += 1.0;
        td_.frontendBandwidth += p_.tweaks.feBwSlotsPerInstr;
        td_.backendCore += p_.tweaks.beCoreSlotsPerInstr;
    }

    /** Charge a branch misprediction. */
    void
    onBranchMispredict()
    {
        ++mispredicts_;
        td_.badSpeculation += p_.width * p_.bpPenaltyCycles;
    }

    /** Charge an instruction fetch that missed the L1-I. */
    void
    onInstrFetch(HitLevel level)
    {
        if (level == HitLevel::L1)
            return;
        td_.frontendLatency +=
            p_.width * p_.cycles(levelNs(level)) * p_.feExposure;
    }

    /** Charge a data access that missed the L1-D. */
    void
    onDataAccess(HitLevel level)
    {
        if (level == HitLevel::L1)
            return;
        if (level == HitLevel::L2) {
            td_.backendMemory += p_.width * p_.cycles(p_.l2HitNs) *
                p_.tweaks.l2Exposure;
            return;
        }
        td_.backendMemory += p_.width * p_.cycles(levelNs(level)) *
            p_.tweaks.postL2Exposure;
    }

    /** Charge a TLB page walk (data side). */
    void
    onTlbWalk()
    {
        td_.backendMemory += p_.width * p_.cycles(p_.tlbWalkNs) *
            p_.tlbWalkExposure;
    }

    /** Charge an instruction-side TLB page walk. */
    void
    onItlbWalk()
    {
        td_.frontendLatency += p_.width * p_.cycles(p_.tlbWalkNs) *
            p_.tlbWalkExposure;
    }

    const TopDown &topDown() const { return td_; }
    uint64_t instructions() const { return instructions_; }
    uint64_t mispredicts() const { return mispredicts_; }

    /** Cycles implied by the slot accounting. */
    double
    cycles() const
    {
        return td_.total() / p_.width;
    }

    /** Instructions per cycle. */
    double
    ipc() const
    {
        const double c = cycles();
        return c > 0 ? static_cast<double>(instructions_) / c : 0.0;
    }

    void
    reset()
    {
        td_ = TopDown{};
        instructions_ = 0;
        mispredicts_ = 0;
    }

  private:
    double
    levelNs(HitLevel level) const
    {
        switch (level) {
          case HitLevel::L1: return 0.0;
          case HitLevel::L2: return p_.l2HitNs;
          case HitLevel::L3: return p_.l3HitNs;
          case HitLevel::L4: return p_.l4HitNs;
          case HitLevel::Memory: return p_.memNs + p_.l4MissExtraNs;
        }
        return 0.0;
    }

    CoreModelParams p_;
    TopDown td_;
    uint64_t instructions_ = 0;
    uint64_t mispredicts_ = 0;
};

} // namespace wsearch

#endif // WSEARCH_CPU_CORE_MODEL_HH
