/**
 * @file
 * Reuse-time histogram: log2-bucketed distribution of the number of
 * intervening references between touches of the same block, sampled
 * by hashing (track every Nth block) so it stays cheap at trace
 * rates. Reuse time upper-bounds LRU stack distance, so the
 * cumulative histogram is a quick locality fingerprint of a segment
 * (it is how the heap/shard contrast of paper §III-B shows up at a
 * glance).
 */

#ifndef WSEARCH_STATS_REUSE_HH
#define WSEARCH_STATS_REUSE_HH

#include <array>
#include <cstdint>
#include <unordered_map>

#include "util/rng.hh"

namespace wsearch {

/** Sampled reuse-time histogram over 64-byte blocks. */
class ReuseTimeHistogram
{
  public:
    static constexpr uint32_t kBuckets = 33;

    /**
     * @param sample_shift track blocks whose hash has this many
     *        leading zero bits (0 = every block)
     */
    explicit ReuseTimeHistogram(uint32_t sample_shift = 0)
        : sampleShift_(sample_shift)
    {
    }

    /** Observe a reference to @p addr. */
    void
    touch(uint64_t addr)
    {
        ++clock_;
        const uint64_t block = addr >> 6;
        if (sampleShift_ && (mix64(block) >> (64 - sampleShift_)) != 0)
            return;
        auto [it, fresh] = last_.try_emplace(block, clock_);
        if (!fresh) {
            const uint64_t gap = clock_ - it->second;
            ++buckets_[bucketOf(gap)];
            ++reuses_;
            it->second = clock_;
        } else {
            ++coldTouches_;
        }
    }

    /** Count in log2 bucket @p b (gap in [2^b, 2^(b+1))). */
    uint64_t bucket(uint32_t b) const { return buckets_[b]; }
    uint64_t reuses() const { return reuses_; }
    uint64_t coldTouches() const { return coldTouches_; }
    uint64_t references() const { return clock_; }

    /** Fraction of (sampled) reuses with gap <= 2^b. */
    double
    cumulativeAt(uint32_t b) const
    {
        if (reuses_ == 0)
            return 0.0;
        uint64_t n = 0;
        for (uint32_t i = 0; i <= b && i < kBuckets; ++i)
            n += buckets_[i];
        return static_cast<double>(n) / static_cast<double>(reuses_);
    }

    /** Median reuse gap (bucket midpoint), or 0 with no reuses. */
    uint64_t
    medianGap() const
    {
        if (reuses_ == 0)
            return 0;
        uint64_t seen = 0;
        for (uint32_t b = 0; b < kBuckets; ++b) {
            seen += buckets_[b];
            if (2 * seen >= reuses_)
                return 1ull << b;
        }
        return 1ull << (kBuckets - 1);
    }

  private:
    static uint32_t
    bucketOf(uint64_t gap)
    {
        uint32_t b = 0;
        while (gap > 1 && b + 1 < kBuckets) {
            gap >>= 1;
            ++b;
        }
        return b;
    }

    uint32_t sampleShift_;
    uint64_t clock_ = 0;
    uint64_t reuses_ = 0;
    uint64_t coldTouches_ = 0;
    std::array<uint64_t, kBuckets> buckets_{};
    std::unordered_map<uint64_t, uint64_t> last_;
};

} // namespace wsearch

#endif // WSEARCH_STATS_REUSE_HH
