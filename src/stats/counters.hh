/**
 * @file
 * Hit/miss counters broken down by AccessKind, plus MPKI and hit-rate
 * derivations. One CacheLevelStats object aggregates all caches at a
 * hierarchy level (e.g. the sum of all private L2s), matching how the
 * paper reports per-level MPKI.
 */

#ifndef WSEARCH_STATS_COUNTERS_HH
#define WSEARCH_STATS_COUNTERS_HH

#include <cstdint>

#include "stats/access_kind.hh"

namespace wsearch {

/** Accumulated accesses and misses for one cache level, per kind. */
struct CacheLevelStats
{
    uint64_t accesses[kNumAccessKinds] = {};
    uint64_t misses[kNumAccessKinds] = {};
    uint64_t prefetchIssued = 0;
    uint64_t prefetchUseful = 0;

    void
    record(AccessKind kind, bool miss)
    {
        const auto k = static_cast<uint32_t>(kind);
        ++accesses[k];
        if (miss)
            ++misses[k];
    }

    uint64_t
    totalAccesses() const
    {
        uint64_t t = 0;
        for (auto a : accesses)
            t += a;
        return t;
    }

    uint64_t
    totalMisses() const
    {
        uint64_t t = 0;
        for (auto m : misses)
            t += m;
        return t;
    }

    uint64_t
    missesOf(AccessKind kind) const
    {
        return misses[static_cast<uint32_t>(kind)];
    }

    uint64_t
    accessesOf(AccessKind kind) const
    {
        return accesses[static_cast<uint32_t>(kind)];
    }

    /** Misses per kilo-instruction for one kind. */
    double
    mpki(AccessKind kind, uint64_t instructions) const
    {
        if (instructions == 0)
            return 0.0;
        return 1000.0 * static_cast<double>(missesOf(kind)) /
               static_cast<double>(instructions);
    }

    /** Combined MPKI across all kinds. */
    double
    mpkiTotal(uint64_t instructions) const
    {
        if (instructions == 0)
            return 0.0;
        return 1000.0 * static_cast<double>(totalMisses()) /
               static_cast<double>(instructions);
    }

    /** Combined data (non-code) MPKI. */
    double
    mpkiData(uint64_t instructions) const
    {
        if (instructions == 0)
            return 0.0;
        const uint64_t data_misses = totalMisses() -
            missesOf(AccessKind::Code);
        return 1000.0 * static_cast<double>(data_misses) /
               static_cast<double>(instructions);
    }

    /** Hit rate for one kind (1.0 when no accesses). */
    double
    hitRate(AccessKind kind) const
    {
        const uint64_t a = accessesOf(kind);
        if (a == 0)
            return 1.0;
        return 1.0 - static_cast<double>(missesOf(kind)) /
                     static_cast<double>(a);
    }

    /** Overall hit rate (1.0 when no accesses). */
    double
    hitRateTotal() const
    {
        const uint64_t a = totalAccesses();
        if (a == 0)
            return 1.0;
        return 1.0 - static_cast<double>(totalMisses()) /
                     static_cast<double>(a);
    }

    void
    reset()
    {
        for (auto &a : accesses)
            a = 0;
        for (auto &m : misses)
            m = 0;
        prefetchIssued = 0;
        prefetchUseful = 0;
    }

    CacheLevelStats &
    operator+=(const CacheLevelStats &other)
    {
        for (uint32_t k = 0; k < kNumAccessKinds; ++k) {
            accesses[k] += other.accesses[k];
            misses[k] += other.misses[k];
        }
        prefetchIssued += other.prefetchIssued;
        prefetchUseful += other.prefetchUseful;
        return *this;
    }
};

/** Online mean/variance/min/max accumulator (Welford). */
class RunningStat
{
  public:
    void
    add(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        if (x < min_ || n_ == 1)
            min_ = x;
        if (x > max_ || n_ == 1)
            max_ = x;
    }

    uint64_t count() const { return n_; }
    double mean() const { return mean_; }
    double min() const { return min_; }
    double max() const { return max_; }

    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace wsearch

#endif // WSEARCH_STATS_COUNTERS_HH
