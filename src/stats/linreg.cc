#include "stats/linreg.hh"

#include "util/logging.hh"

namespace wsearch {

LinearFit
fitLinear(const std::vector<double> &xs, const std::vector<double> &ys)
{
    wsearch_assert(xs.size() == ys.size());
    wsearch_assert(xs.size() >= 2);
    const double n = static_cast<double>(xs.size());
    double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
    for (size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
        syy += ys[i] * ys[i];
    }
    const double denom = n * sxx - sx * sx;
    LinearFit fit;
    if (denom == 0.0) {
        fit.slope = 0.0;
        fit.intercept = sy / n;
        fit.r2 = 0.0;
        return fit;
    }
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;

    const double mean_y = sy / n;
    double ss_res = 0, ss_tot = 0;
    for (size_t i = 0; i < xs.size(); ++i) {
        const double pred = fit.eval(xs[i]);
        ss_res += (ys[i] - pred) * (ys[i] - pred);
        ss_tot += (ys[i] - mean_y) * (ys[i] - mean_y);
    }
    fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
    return fit;
}

} // namespace wsearch
