/**
 * @file
 * Access-kind taxonomy used throughout the simulator. The paper's
 * analysis classifies every memory reference as code (instruction
 * fetch), heap data, index-shard data, or stack data; all cache
 * statistics are broken down along this axis.
 */

#ifndef WSEARCH_STATS_ACCESS_KIND_HH
#define WSEARCH_STATS_ACCESS_KIND_HH

#include <cstdint>

namespace wsearch {

/** Classification of a memory reference (paper §III). */
enum class AccessKind : uint8_t {
    Code = 0,   ///< instruction fetch
    Heap = 1,   ///< heap data (accumulators, dictionaries, metadata)
    Shard = 2,  ///< index-shard data (posting lists)
    Stack = 3,  ///< per-thread stack data
};

constexpr uint32_t kNumAccessKinds = 4;

/** Short printable name of an access kind. */
constexpr const char *
accessKindName(AccessKind k)
{
    switch (k) {
      case AccessKind::Code: return "code";
      case AccessKind::Heap: return "heap";
      case AccessKind::Shard: return "shard";
      case AccessKind::Stack: return "stack";
    }
    return "?";
}

} // namespace wsearch

#endif // WSEARCH_STATS_ACCESS_KIND_HH
