#include "stats/working_set.hh"

#include "util/logging.hh"
#include "util/units.hh"

namespace wsearch {

WorkingSetTracker::WorkingSetTracker(uint64_t base, uint64_t span_bytes,
                                     uint32_t block_bytes)
    : base_(base), span_(span_bytes), blockShift_(log2i(block_bytes))
{
    wsearch_assert(isPow2(block_bytes));
    wsearch_assert(span_bytes > 0);
    const uint64_t blocks = ceilDiv(span_bytes, block_bytes);
    bits_.assign(ceilDiv(blocks, 64), 0);
}

void
WorkingSetTracker::reset()
{
    std::fill(bits_.begin(), bits_.end(), 0);
    distinct_ = 0;
}

} // namespace wsearch
