/**
 * @file
 * Ordinary least-squares linear regression. The paper fits
 * IPC = a * AMAT_L3 + b (Eq. 1) from measured points; we reproduce that
 * fit from simulated points in bench_fig8 and the performance model.
 */

#ifndef WSEARCH_STATS_LINREG_HH
#define WSEARCH_STATS_LINREG_HH

#include <cstddef>
#include <vector>

namespace wsearch {

/** Result of a least-squares fit y = slope * x + intercept. */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    double r2 = 0.0;       ///< coefficient of determination

    double
    eval(double x) const
    {
        return slope * x + intercept;
    }
};

/** Fit y = a x + b over paired samples; requires >= 2 points. */
LinearFit fitLinear(const std::vector<double> &xs,
                    const std::vector<double> &ys);

} // namespace wsearch

#endif // WSEARCH_STATS_LINREG_HH
