/**
 * @file
 * Working-set trackers: count distinct cache blocks touched inside an
 * address region (paper Figures 4 and 5). A dense bitmap covers regions
 * up to tens of GiB cheaply; touches outside the region are ignored.
 */

#ifndef WSEARCH_STATS_WORKING_SET_HH
#define WSEARCH_STATS_WORKING_SET_HH

#include <cstdint>
#include <vector>

namespace wsearch {

/** Dense distinct-block tracker over [base, base + span). */
class WorkingSetTracker
{
  public:
    /**
     * @param base       region base address (block aligned)
     * @param spanBytes  region size in bytes
     * @param blockBytes granularity (power of two), typically 64
     */
    WorkingSetTracker(uint64_t base, uint64_t span_bytes,
                      uint32_t block_bytes);

    /** Record a touch; out-of-region addresses are ignored. */
    void
    touch(uint64_t addr)
    {
        if (addr < base_ || addr >= base_ + span_)
            return;
        const uint64_t block = (addr - base_) >> blockShift_;
        const uint64_t word = block >> 6;
        const uint64_t bit = 1ull << (block & 63);
        if (!(bits_[word] & bit)) {
            bits_[word] |= bit;
            ++distinct_;
        }
    }

    /** Number of distinct blocks touched so far. */
    uint64_t distinctBlocks() const { return distinct_; }

    /** Bytes covered by the distinct blocks. */
    uint64_t
    workingSetBytes() const
    {
        return distinct_ << blockShift_;
    }

    void reset();

  private:
    uint64_t base_;
    uint64_t span_;
    uint32_t blockShift_;
    uint64_t distinct_ = 0;
    std::vector<uint64_t> bits_;
};

} // namespace wsearch

#endif // WSEARCH_STATS_WORKING_SET_HH
