/**
 * @file
 * Set-associative cache model with LRU/random replacement, optional
 * way-partitioning (Intel CAT-style), and victim extraction on
 * eviction. Functional only (hit/miss + contents); latency is applied
 * by the analytical models, mirroring the paper's methodology
 * (§III-A: "Our simulator provides miss rates and MPKI data, but not
 * timing information").
 *
 * The hot path (access) is header-inline: the bench sweeps push
 * hundreds of millions of references through it on a single core.
 */

#ifndef WSEARCH_MEMSIM_CACHE_HH
#define WSEARCH_MEMSIM_CACHE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/logging.hh"
#include "util/rng.hh"
#include "util/units.hh"

namespace wsearch {

/** Replacement policy of a set-associative cache. */
enum class ReplPolicy : uint8_t {
    LRU,
    Random,
    /** Static re-reference interval prediction (2-bit RRPV): scan-
     *  resistant, relevant to search's streaming shard (cf. the
     *  paper's PACMan citation [59]). */
    SRRIP,
    /** Dynamic RRIP: set-dueling between SRRIP and BRRIP insertion
     *  (Jaleel et al., ISCA'10). Deterministic here — leader sets by
     *  set index, the BRRIP 1/32 long-insertion by counter — so
     *  sweeps stay bit-reproducible. */
    DRRIP,
};

/** Static configuration of one cache. */
struct CacheConfig
{
    uint64_t sizeBytes = 32 * KiB;
    uint32_t blockBytes = 64;
    uint32_t ways = 8;           ///< associativity (>= 1)
    ReplPolicy repl = ReplPolicy::LRU;
    /**
     * CAT-style way partition: when nonzero, only the first
     * partitionWays ways may be allocated, shrinking effective capacity
     * while keeping the set count (and thus raising conflict pressure),
     * exactly like Intel CAT (paper §IV-B note on increased conflicts).
     */
    uint32_t partitionWays = 0;
};

/** Sentinel "no block" value for eviction out-parameters. */
constexpr uint64_t kNoBlock = ~0ull;

/**
 * Set-associative cache. Tags store the full block address. Supports
 * non-power-of-two set counts (e.g. the 45 MiB 20-way Haswell L3) via
 * modulo indexing.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheConfig &cfg)
        : cfg_(cfg), blockShift_(log2i(cfg.blockBytes)),
          effWays_(cfg.partitionWays ? cfg.partitionWays : cfg.ways),
          rng_(0xcac4e)
    {
        wsearch_assert(isPow2(cfg.blockBytes));
        wsearch_assert(cfg.ways >= 1);
        wsearch_assert(effWays_ <= cfg.ways);
        numSets_ = static_cast<uint32_t>(std::max<uint64_t>(
            1, cfg.sizeBytes / (static_cast<uint64_t>(cfg.blockBytes) *
                                cfg.ways)));
        setMask_ = isPow2(numSets_) ? numSets_ - 1 : 0;
        const size_t lines =
            static_cast<size_t>(numSets_) * cfg.ways;
        tags_.assign(lines, kNoBlock);
        stamps_.assign(lines, 0);
        flags_.assign(lines, 0);
        if (cfg.repl == ReplPolicy::SRRIP ||
            cfg.repl == ReplPolicy::DRRIP)
            rrpv_.assign(lines, kRrpvMax);
    }

    /**
     * Demand access: lookup and allocate on miss.
     *
     * @param addr     byte address
     * @param is_store marks the line dirty on hit/fill
     * @param evicted  set to the evicted block's byte address, or
     *                 kNoBlock; pass nullptr to ignore
     * @param evicted_dirty set when the evicted block was dirty
     * @return true on hit
     */
    bool
    access(uint64_t addr, bool is_store, uint64_t *evicted = nullptr,
           bool *evicted_dirty = nullptr)
    {
        const uint64_t block = addr >> blockShift_;
        const size_t base = setBase(block);
        ++tick_;
        for (uint32_t w = 0; w < effWays_; ++w) {
            if (tags_[base + w] == block) {
                stamps_[base + w] = tick_;
                if (!rrpv_.empty())
                    rrpv_[base + w] = 0; // near re-reference on hit
                if (is_store)
                    flags_[base + w] |= kDirty;
                flags_[base + w] &= ~kPrefetched;
                if (evicted)
                    *evicted = kNoBlock;
                return true;
            }
        }
        fill(base, block, is_store, false, evicted, evicted_dirty);
        return false;
    }

    /**
     * Lookup that refreshes recency on hit but does NOT allocate on
     * miss (victim-cache read path).
     */
    bool
    touch(uint64_t addr)
    {
        const uint64_t block = addr >> blockShift_;
        const size_t base = setBase(block);
        ++tick_;
        for (uint32_t w = 0; w < effWays_; ++w) {
            if (tags_[base + w] == block) {
                stamps_[base + w] = tick_;
                if (!rrpv_.empty())
                    rrpv_[base + w] = 0;
                return true;
            }
        }
        return false;
    }

    /** Lookup without any state change. */
    bool
    probe(uint64_t addr) const
    {
        const uint64_t block = addr >> blockShift_;
        const size_t base = setBase(block);
        for (uint32_t w = 0; w < effWays_; ++w)
            if (tags_[base + w] == block)
                return true;
        return false;
    }

    /**
     * Non-demand insert (prefetch or victim fill). No-op when already
     * present. @p prefetched tags the line for useful-prefetch stats.
     */
    void
    insert(uint64_t addr, bool dirty, bool prefetched,
           uint64_t *evicted = nullptr, bool *evicted_dirty = nullptr)
    {
        const uint64_t block = addr >> blockShift_;
        const size_t base = setBase(block);
        ++tick_;
        for (uint32_t w = 0; w < effWays_; ++w) {
            if (tags_[base + w] == block) {
                if (dirty)
                    flags_[base + w] |= kDirty;
                if (evicted)
                    *evicted = kNoBlock;
                return;
            }
        }
        fill(base, block, dirty, prefetched, evicted, evicted_dirty);
    }

    /**
     * Demand access that reports whether the hit line was a previously
     * unused prefetch (for prefetch-usefulness accounting).
     */
    bool
    accessTrackPf(uint64_t addr, bool is_store, bool *was_prefetched,
                  uint64_t *evicted = nullptr,
                  bool *evicted_dirty = nullptr)
    {
        const uint64_t block = addr >> blockShift_;
        const size_t base = setBase(block);
        ++tick_;
        for (uint32_t w = 0; w < effWays_; ++w) {
            if (tags_[base + w] == block) {
                stamps_[base + w] = tick_;
                *was_prefetched = (flags_[base + w] & kPrefetched) != 0;
                flags_[base + w] &= ~kPrefetched;
                if (is_store)
                    flags_[base + w] |= kDirty;
                if (evicted)
                    *evicted = kNoBlock;
                return true;
            }
        }
        *was_prefetched = false;
        fill(base, block, is_store, false, evicted, evicted_dirty);
        return false;
    }

    /** Remove a block if present; @return true when it was present. */
    bool
    invalidate(uint64_t addr)
    {
        const uint64_t block = addr >> blockShift_;
        const size_t base = setBase(block);
        for (uint32_t w = 0; w < effWays_; ++w) {
            if (tags_[base + w] == block) {
                tags_[base + w] = kNoBlock;
                flags_[base + w] = 0;
                return true;
            }
        }
        return false;
    }

    uint32_t numSets() const { return numSets_; }
    uint32_t ways() const { return cfg_.ways; }
    ReplPolicy repl() const { return cfg_.repl; }
    /** DRRIP policy-selector value (tests: set-dueling direction). */
    uint32_t drripPsel() const { return psel_; }
    uint32_t effectiveWays() const { return effWays_; }
    uint32_t blockBytes() const { return cfg_.blockBytes; }

    /** Actual modeled capacity (sets x effective ways x block). */
    uint64_t
    effectiveBytes() const
    {
        return static_cast<uint64_t>(numSets_) * effWays_ *
            cfg_.blockBytes;
    }

    /** Number of valid lines currently resident (O(lines); tests). */
    uint64_t
    population() const
    {
        uint64_t n = 0;
        for (size_t s = 0; s < numSets_; ++s)
            for (uint32_t w = 0; w < effWays_; ++w)
                if (tags_[s * cfg_.ways + w] != kNoBlock)
                    ++n;
        return n;
    }

  private:
    static constexpr uint8_t kDirty = 1;
    static constexpr uint8_t kPrefetched = 2;
    static constexpr uint8_t kRrpvMax = 3;       ///< 2-bit RRPV
    static constexpr uint32_t kDuelPeriod = 64;  ///< sets per leader pair
    static constexpr uint32_t kPselMax = 1023;   ///< 10-bit PSEL

    size_t
    setBase(uint64_t block) const
    {
        const uint32_t set = setMask_
            ? static_cast<uint32_t>(block & setMask_)
            : static_cast<uint32_t>(block % numSets_);
        return static_cast<size_t>(set) * cfg_.ways;
    }

    void
    fill(size_t base, uint64_t block, bool dirty, bool prefetched,
         uint64_t *evicted, bool *evicted_dirty)
    {
        uint32_t victim = 0;
        if (cfg_.repl == ReplPolicy::SRRIP ||
            cfg_.repl == ReplPolicy::DRRIP) {
            victim = srripVictim(base);
        } else if (cfg_.repl == ReplPolicy::Random && effWays_ > 1) {
            victim = static_cast<uint32_t>(rng_.nextRange(effWays_));
            // Prefer an invalid way when one exists.
            for (uint32_t w = 0; w < effWays_; ++w) {
                if (tags_[base + w] == kNoBlock) {
                    victim = w;
                    break;
                }
            }
        } else {
            uint64_t best = ~0ull;
            for (uint32_t w = 0; w < effWays_; ++w) {
                if (tags_[base + w] == kNoBlock) {
                    victim = w;
                    best = 0;
                    break;
                }
                if (stamps_[base + w] < best) {
                    best = stamps_[base + w];
                    victim = w;
                }
            }
        }
        const uint64_t old_tag = tags_[base + victim];
        if (evicted) {
            *evicted = old_tag == kNoBlock
                ? kNoBlock : old_tag << blockShift_;
        }
        if (evicted_dirty) {
            *evicted_dirty = old_tag != kNoBlock &&
                (flags_[base + victim] & kDirty);
        }
        tags_[base + victim] = block;
        stamps_[base + victim] = tick_;
        flags_[base + victim] =
            (dirty ? kDirty : 0) | (prefetched ? kPrefetched : 0);
        if (!rrpv_.empty()) {
            rrpv_[base + victim] = cfg_.repl == ReplPolicy::DRRIP
                ? drripInsertRrpv(static_cast<uint32_t>(
                      base / cfg_.ways))
                : kRrpvMax - 1; // SRRIP: always "long" insertion
        }
    }

    /**
     * DRRIP set dueling. Leader sets are picked by set index (one
     * SRRIP and one BRRIP leader per kDuelPeriod sets); a fill into a
     * leader set votes its policy's miss into the 10-bit PSEL, and
     * follower sets insert with whichever policy is currently ahead.
     * BRRIP inserts at distant RRPV except a deterministic 1-in-32
     * long insertion (counter, not RNG, for reproducibility).
     */
    uint8_t
    drripInsertRrpv(uint32_t set)
    {
        const uint32_t lane = set % kDuelPeriod;
        bool brrip;
        if (lane == 0) { // SRRIP leader: this fill is an SRRIP miss
            if (psel_ < kPselMax)
                ++psel_;
            brrip = false;
        } else if (lane == kDuelPeriod / 2) { // BRRIP leader
            if (psel_ > 0)
                --psel_;
            brrip = true;
        } else {
            // High PSEL = SRRIP leaders missing more = follow BRRIP.
            brrip = psel_ >= (kPselMax + 1) / 2;
        }
        if (!brrip)
            return kRrpvMax - 1;
        return ++brripTick_ % 32 == 0 ? kRrpvMax - 1 : kRrpvMax;
    }

    /** SRRIP victim selection: first RRPV==max, aging as needed. */
    uint32_t
    srripVictim(size_t base)
    {
        for (uint32_t w = 0; w < effWays_; ++w)
            if (tags_[base + w] == kNoBlock)
                return w;
        while (true) {
            for (uint32_t w = 0; w < effWays_; ++w)
                if (rrpv_[base + w] >= kRrpvMax)
                    return w;
            for (uint32_t w = 0; w < effWays_; ++w)
                ++rrpv_[base + w];
        }
    }

    CacheConfig cfg_;
    uint32_t blockShift_;
    uint32_t effWays_;
    uint32_t numSets_ = 0;
    uint64_t setMask_ = 0;
    uint64_t tick_ = 0;
    uint32_t psel_ = (kPselMax + 1) / 2; ///< DRRIP duel, neutral start
    uint64_t brripTick_ = 0;             ///< BRRIP 1/32 long-insert
    Rng rng_;
    std::vector<uint64_t> tags_;
    std::vector<uint64_t> stamps_;
    std::vector<uint8_t> flags_;
    std::vector<uint8_t> rrpv_; ///< allocated only for SRRIP/DRRIP
};

} // namespace wsearch

#endif // WSEARCH_MEMSIM_CACHE_HH
