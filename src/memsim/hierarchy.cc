#include "memsim/hierarchy.hh"

namespace wsearch {

CacheHierarchy::CacheHierarchy(const HierarchyConfig &cfg) : cfg_(cfg)
{
    wsearch_assert(cfg.numCores >= 1);
    wsearch_assert(cfg.smtWays >= 1);
    wsearch_assert(cfg.l2InstrPartitionWays < cfg.l2.ways);
    for (uint32_t c = 0; c < cfg.numCores; ++c) {
        l1i_c_.push_back(std::make_unique<SetAssocCache>(cfg.l1i));
        l1d_c_.push_back(std::make_unique<SetAssocCache>(cfg.l1d));
        if (cfg.l2InstrPartitionWays) {
            // Way-partitioned split L2: instructions get the first
            // l2InstrPartitionWays ways, data the remainder.
            CacheConfig data_part = cfg.l2;
            data_part.partitionWays =
                cfg.l2.ways - cfg.l2InstrPartitionWays;
            CacheConfig instr_part = cfg.l2;
            instr_part.partitionWays = cfg.l2InstrPartitionWays;
            l2_c_.push_back(
                std::make_unique<SetAssocCache>(data_part));
            l2i_c_.push_back(
                std::make_unique<SetAssocCache>(instr_part));
        } else {
            l2_c_.push_back(std::make_unique<SetAssocCache>(cfg.l2));
        }
        stride_.emplace_back(256);
        stream_.emplace_back(cfg.prefetch.streamDegree);
    }
    if (cfg.hasL3)
        l3_c_ = std::make_unique<SetAssocCache>(cfg.l3);
    if (cfg.l4) {
        wsearch_assert(cfg.hasL3); // the L4 backs the L3 in this design
        if (cfg.l4->fullyAssociative) {
            l4fa_ = std::make_unique<FullyAssocLruCache>(
                cfg.l4->sizeBytes, cfg.l4->blockBytes);
        } else {
            CacheConfig dm;
            dm.sizeBytes = cfg.l4->sizeBytes;
            dm.blockBytes = cfg.l4->blockBytes;
            dm.ways = 1; // direct-mapped, Alloy-style
            l4sa_ = std::make_unique<SetAssocCache>(dm);
        }
    }
}

void
CacheHierarchy::resetStats()
{
    l1i_.reset();
    l1d_.reset();
    l2_.reset();
    l3_.reset();
    l4_.reset();
    l3Evictions_ = 0;
    writebacks_ = 0;
    backInvalidations_ = 0;
}

bool
CacheHierarchy::l4Probe(uint64_t addr) const
{
    if (l4sa_)
        return l4sa_->probe(addr);
    if (l4fa_)
        return l4fa_->probe(addr);
    return false;
}

void
CacheHierarchy::l4Insert(uint64_t addr)
{
    if (l4sa_)
        l4sa_->insert(addr, false, false);
    else if (l4fa_)
        l4fa_->insert(addr);
}

bool
CacheHierarchy::l4Access(uint64_t addr)
{
    if (l4sa_)
        return l4sa_->access(addr, false);
    if (l4fa_)
        return l4fa_->access(addr);
    return false;
}

bool
CacheHierarchy::l4Touch(uint64_t addr)
{
    if (l4sa_)
        return l4sa_->touch(addr);
    if (l4fa_)
        return l4fa_->touch(addr);
    return false;
}

void
CacheHierarchy::handleL3Eviction(uint64_t evicted, bool dirty)
{
    ++l3Evictions_;
    if (dirty)
        ++writebacks_;
    // The paper's L4 is a victim cache for L3 evictions (clean and
    // dirty): the only fill path in VictimOfL3 mode.
    if (cfg_.l4 && cfg_.l4->fill == L4Config::Fill::VictimOfL3)
        l4Insert(evicted);
    if (cfg_.inclusiveL3) {
        // Inclusion: the block may no longer live in any private cache.
        for (uint32_t c = 0; c < cfg_.numCores; ++c) {
            bool inv = false;
            inv |= l1i_c_[c]->invalidate(evicted);
            inv |= l1d_c_[c]->invalidate(evicted);
            inv |= l2_c_[c]->invalidate(evicted);
            if (inv)
                ++backInvalidations_;
        }
    }
}

HitLevel
CacheHierarchy::accessSharedLevels(uint64_t addr, bool is_store,
                                   AccessKind kind)
{
    if (!cfg_.hasL3) {
        // No shared levels: misses go straight to memory.
        return HitLevel::Memory;
    }
    uint64_t evicted = kNoBlock;
    bool evicted_dirty = false;
    const bool l3_hit =
        l3_c_->access(addr, is_store, &evicted, &evicted_dirty);
    l3_.record(kind, !l3_hit);
    if (evicted != kNoBlock)
        handleL3Eviction(evicted, evicted_dirty);
    if (l3_hit)
        return HitLevel::L3;

    if (!cfg_.l4)
        return HitLevel::Memory;

    if (cfg_.l4->fill == L4Config::Fill::VictimOfL3) {
        // Memory-side victim cache: a hit serves the data and the line
        // stays resident (it caches memory, not the L3); a miss does
        // NOT allocate -- fills come only from L3 evictions.
        const bool l4_hit = l4Touch(addr);
        l4_.record(kind, !l4_hit);
        return l4_hit ? HitLevel::L4 : HitLevel::Memory;
    }
    // Conventional fill-on-miss L4.
    const bool l4_hit = l4Access(addr);
    l4_.record(kind, !l4_hit);
    return l4_hit ? HitLevel::L4 : HitLevel::Memory;
}

HitLevel
CacheHierarchy::missPathInstr(uint32_t core, uint64_t pc)
{
    SetAssocCache &l2 = l2i_c_.empty() ? *l2_c_[core]
                                       : *l2i_c_[core];
    uint64_t evicted = kNoBlock;
    bool evicted_dirty = false;
    bool was_pf = false;
    const bool l2_hit =
        l2.accessTrackPf(pc, false, &was_pf, &evicted, &evicted_dirty);
    l2_.record(AccessKind::Code, !l2_hit);
    if (was_pf)
        ++l2_.prefetchUseful;
    if (evicted != kNoBlock && evicted_dirty) {
        ++writebacks_;
        if (cfg_.hasL3)
            l3_c_->insert(evicted, true, false);
    }
    if (l2_hit)
        return HitLevel::L2;

    if (cfg_.prefetch.l2Stream) {
        uint64_t blocks[8];
        const uint64_t block = pc / cfg_.l2.blockBytes;
        const uint32_t n = stream_[core].observeMiss(block, blocks);
        for (uint32_t i = 0; i < n; ++i) {
            l2.insert(blocks[i] * cfg_.l2.blockBytes, false, true);
            ++l2_.prefetchIssued;
        }
    }
    return accessSharedLevels(pc, false, AccessKind::Code);
}

HitLevel
CacheHierarchy::accessInstr(uint32_t tid, uint64_t pc)
{
    const uint32_t core = coreOf(tid);
    SetAssocCache &l1i = *l1i_c_[core];
    const bool hit = l1i.access(pc, false);
    l1i_.record(AccessKind::Code, !hit);
    if (hit)
        return HitLevel::L1;
    const HitLevel level = missPathInstr(core, pc);
    return level;
}

HitLevel
CacheHierarchy::missPathData(uint32_t core, uint64_t addr, bool is_store,
                             AccessKind kind)
{
    SetAssocCache &l2 = *l2_c_[core];
    uint64_t evicted = kNoBlock;
    bool evicted_dirty = false;
    bool was_pf = false;
    const bool l2_hit = l2.accessTrackPf(addr, is_store, &was_pf,
                                         &evicted, &evicted_dirty);
    l2_.record(kind, !l2_hit);
    if (was_pf)
        ++l2_.prefetchUseful;
    if (evicted != kNoBlock && evicted_dirty) {
        ++writebacks_;
        if (cfg_.hasL3)
            l3_c_->insert(evicted, true, false);
    }
    if (l2_hit)
        return HitLevel::L2;

    if (cfg_.prefetch.l2Adjacent) {
        // Buddy (adjacent-line) prefetch into the L2.
        const uint64_t buddy =
            (addr ^ cfg_.l2.blockBytes) & ~(uint64_t(
                cfg_.l2.blockBytes) - 1);
        if (!l2.probe(buddy)) {
            l2.insert(buddy, false, true);
            ++l2_.prefetchIssued;
        }
    }
    if (cfg_.prefetch.l2Stream) {
        uint64_t blocks[8];
        const uint64_t block = addr / cfg_.l2.blockBytes;
        const uint32_t n = stream_[core].observeMiss(block, blocks);
        for (uint32_t i = 0; i < n; ++i) {
            l2.insert(blocks[i] * cfg_.l2.blockBytes, false, true);
            ++l2_.prefetchIssued;
        }
    }
    return accessSharedLevels(addr, is_store, kind);
}

HitLevel
CacheHierarchy::accessData(uint32_t tid, uint64_t pc, uint64_t addr,
                           bool is_store, AccessKind kind)
{
    const uint32_t core = coreOf(tid);
    SetAssocCache &l1d = *l1d_c_[core];
    bool was_pf = false;
    const bool hit = l1d.accessTrackPf(addr, is_store, &was_pf);
    l1d_.record(kind, !hit);
    if (was_pf)
        ++l1d_.prefetchUseful;

    // L1 prefetchers train on every demand access.
    if (cfg_.prefetch.l1Stride) {
        const uint64_t predicted = stride_[core].train(pc, addr);
        if (predicted && !l1d.probe(predicted)) {
            l1d.insert(predicted, false, true);
            ++l1d_.prefetchIssued;
        }
    }
    if (cfg_.prefetch.l1NextLine && !hit) {
        const uint64_t next = addr + cfg_.l1d.blockBytes;
        if (!l1d.probe(next)) {
            l1d.insert(next, false, true);
            ++l1d_.prefetchIssued;
        }
    }
    if (hit)
        return HitLevel::L1;
    return missPathData(core, addr, is_store, kind);
}

} // namespace wsearch
