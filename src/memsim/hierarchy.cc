#include "memsim/hierarchy.hh"

namespace wsearch {

CacheHierarchy::CacheHierarchy(const HierarchyConfig &cfg)
    : CacheHierarchy(HierarchySpec::fromLegacy(cfg))
{
}

CacheHierarchy::CacheHierarchy(const HierarchySpec &spec) : spec_(spec)
{
    wsearch_assert(spec.numCores >= 1);
    wsearch_assert(spec.smtWays >= 1);
    wsearch_assert(spec.l2InstrPartitionWays < spec.l2.cache.ways);
    if (spec.l1i.inclusion != InclusionMode::NINE ||
        spec.l1d.inclusion != InclusionMode::NINE ||
        spec.l2.inclusion != InclusionMode::NINE)
        wsearch_fatal("inclusion control lives at the LLC; private "
                      "levels must be NINE");
    if (spec.l1i.fullyAssociative || spec.l1d.fullyAssociative ||
        spec.l2.fullyAssociative)
        wsearch_fatal("private levels are set-associative; "
                      "fullyAssociative is an LLC/L4 option");
    if (spec.l1i.slices != 1 || spec.l1d.slices != 1 ||
        spec.l2.slices != 1)
        wsearch_fatal("only the LLC can be sliced");

    for (uint32_t c = 0; c < spec.numCores; ++c) {
        l1i_c_.push_back(
            std::make_unique<SetAssocCache>(spec.l1i.cache));
        l1d_c_.push_back(
            std::make_unique<SetAssocCache>(spec.l1d.cache));
        if (spec.l2InstrPartitionWays) {
            // Way-partitioned split L2: instructions get the first
            // l2InstrPartitionWays ways, data the remainder.
            CacheConfig data_part = spec.l2.cache;
            data_part.partitionWays =
                spec.l2.cache.ways - spec.l2InstrPartitionWays;
            CacheConfig instr_part = spec.l2.cache;
            instr_part.partitionWays = spec.l2InstrPartitionWays;
            l2_c_.push_back(
                std::make_unique<SetAssocCache>(data_part));
            l2i_c_.push_back(
                std::make_unique<SetAssocCache>(instr_part));
        } else {
            l2_c_.push_back(
                std::make_unique<SetAssocCache>(spec.l2.cache));
        }
        stride_.emplace_back(256);
        stream_.emplace_back(spec.prefetch.streamDegree);
    }

    if (spec.hasLlc) {
        wsearch_assert(spec.llc.slices >= 1);
        if (spec.llc.inclusion == InclusionMode::Exclusive &&
            spec.llc.fullyAssociative)
            wsearch_fatal("exclusive LLC needs the set-associative "
                          "array (dirty-victim tracking)");
        const uint64_t slice_bytes =
            spec.llc.cache.sizeBytes / spec.llc.slices;
        for (uint32_t s = 0; s < spec.llc.slices; ++s)
            llc_c_.emplace_back(spec.llc, slice_bytes);
    }
    if (spec.l4) {
        wsearch_assert(spec.hasLlc); // the L4 backs the LLC
        if (spec.l4->inclusion != InclusionMode::NINE)
            wsearch_fatal("the memory-side L4 is NINE by "
                          "construction");
        l4_c_ = std::make_unique<CacheUnit>(*spec.l4,
                                            spec.l4->cache.sizeBytes);
    }
    if (spec.coherence != CoherenceProtocol::None &&
        spec.numCores > 1) {
        wsearch_assert(spec.numCores <= 64); // sharer bitmask width
        coh_ = std::make_unique<CoherenceDirectory>(
            spec.coherence, spec.l1d.cache.blockBytes);
    }
}

void
CacheHierarchy::resetStats()
{
    l1i_.reset();
    l1d_.reset();
    l2_.reset();
    l3_.reset();
    l4_.reset();
    l3Evictions_ = 0;
    writebacks_ = 0;
    backInvalidations_ = 0;
    if (coh_)
        coh_->resetStats();
}

void
CacheHierarchy::handleLlcEviction(uint64_t evicted, bool dirty)
{
    ++l3Evictions_;
    if (dirty)
        ++writebacks_;
    // The paper's L4 is a victim cache for LLC evictions (clean and
    // dirty): the only fill path in victimFill mode.
    if (l4_c_ && spec_.l4->victimFill)
        l4_c_->insert(evicted, false, false);
    if (spec_.llc.inclusion == InclusionMode::Inclusive) {
        // Inclusion: the block may no longer live in any private cache.
        for (uint32_t c = 0; c < spec_.numCores; ++c) {
            bool inv = false;
            inv |= l1i_c_[c]->invalidate(evicted);
            inv |= l1d_c_[c]->invalidate(evicted);
            inv |= l2_c_[c]->invalidate(evicted);
            if (inv)
                ++backInvalidations_;
        }
    }
}

void
CacheHierarchy::fillLlcFromL2Eviction(uint64_t evicted, bool dirty)
{
    if (spec_.hasLlc &&
        spec_.llc.inclusion == InclusionMode::Exclusive) {
        // An exclusive LLC holds exactly the private-cache victims:
        // every L2 eviction (clean or dirty) fills it, and the fill's
        // own victim leaves the chip via handleLlcEviction.
        if (dirty)
            ++writebacks_;
        CacheUnit &llc = llc_c_[llcSlice(evicted)];
        uint64_t ev = kNoBlock;
        bool ev_dirty = false;
        llc.insert(evicted, dirty, false, &ev, &ev_dirty);
        if (ev != kNoBlock)
            handleLlcEviction(ev, ev_dirty);
        return;
    }
    // NINE / inclusive: only dirty victims propagate down (the legacy
    // model, preserved bit-for-bit -- including not tracking the
    // writeback insert's own victim).
    if (dirty) {
        ++writebacks_;
        if (spec_.hasLlc)
            llc_c_[llcSlice(evicted)].insert(evicted, true, false);
    }
}

HitLevel
CacheHierarchy::accessSharedLevels(uint64_t addr, bool is_store,
                                   AccessKind kind)
{
    if (!spec_.hasLlc) {
        // No shared levels: misses go straight to memory.
        return HitLevel::Memory;
    }
    CacheUnit &llc = llc_c_[llcSlice(addr)];
    bool llc_hit;
    if (spec_.llc.inclusion == InclusionMode::Exclusive) {
        // Exclusive LLC: a hit migrates the line up into the private
        // caches (the caller's fill path), so it leaves the LLC; a
        // miss does not allocate -- fills come only from L2
        // evictions. The migrated line re-enters clean (dirty state
        // is re-established only by further stores), a documented
        // simplification.
        llc_hit = llc.invalidate(addr);
        l3_.record(kind, !llc_hit);
    } else {
        uint64_t evicted = kNoBlock;
        bool evicted_dirty = false;
        llc_hit = llc.access(addr, is_store, &evicted, &evicted_dirty);
        l3_.record(kind, !llc_hit);
        if (evicted != kNoBlock)
            handleLlcEviction(evicted, evicted_dirty);
    }
    if (llc_hit)
        return HitLevel::L3;

    if (!l4_c_)
        return HitLevel::Memory;

    if (spec_.l4->victimFill) {
        // Memory-side victim cache: a hit serves the data and the line
        // stays resident (it caches memory, not the LLC); a miss does
        // NOT allocate -- fills come only from LLC evictions.
        const bool l4_hit = l4_c_->touch(addr);
        l4_.record(kind, !l4_hit);
        return l4_hit ? HitLevel::L4 : HitLevel::Memory;
    }
    // Conventional fill-on-miss L4.
    const bool l4_hit = l4_c_->access(addr, false);
    l4_.record(kind, !l4_hit);
    return l4_hit ? HitLevel::L4 : HitLevel::Memory;
}

HitLevel
CacheHierarchy::missPathInstr(uint32_t core, uint64_t pc)
{
    SetAssocCache &l2 = l2i_c_.empty() ? *l2_c_[core]
                                       : *l2i_c_[core];
    uint64_t evicted = kNoBlock;
    bool evicted_dirty = false;
    bool was_pf = false;
    const bool l2_hit =
        l2.accessTrackPf(pc, false, &was_pf, &evicted, &evicted_dirty);
    l2_.record(AccessKind::Code, !l2_hit);
    if (was_pf)
        ++l2_.prefetchUseful;
    if (evicted != kNoBlock)
        fillLlcFromL2Eviction(evicted, evicted_dirty);
    if (l2_hit)
        return HitLevel::L2;

    if (spec_.prefetch.l2Stream) {
        uint64_t blocks[8];
        const uint64_t block = pc / spec_.l2.cache.blockBytes;
        const uint32_t n = stream_[core].observeMiss(block, blocks);
        for (uint32_t i = 0; i < n; ++i) {
            l2.insert(blocks[i] * spec_.l2.cache.blockBytes, false,
                      true);
            ++l2_.prefetchIssued;
        }
    }
    return accessSharedLevels(pc, false, AccessKind::Code);
}

HitLevel
CacheHierarchy::accessInstr(uint32_t tid, uint64_t pc)
{
    const uint32_t core = coreOf(tid);
    SetAssocCache &l1i = *l1i_c_[core];
    const bool hit = l1i.access(pc, false);
    l1i_.record(AccessKind::Code, !hit);
    if (hit)
        return HitLevel::L1;
    const HitLevel level = missPathInstr(core, pc);
    return level;
}

void
CacheHierarchy::applyCoherence(uint32_t core, uint64_t addr,
                               bool is_store)
{
    const uint64_t mask = coh_->onAccess(core, addr, is_store);
    if (!mask)
        return;
    // Keep the cache contents consistent with the directory: remote
    // private data copies disappear on a store.
    for (uint32_t c = 0; c < spec_.numCores; ++c) {
        if (!(mask >> c & 1))
            continue;
        l1d_c_[c]->invalidate(addr);
        l2_c_[c]->invalidate(addr);
    }
}

HitLevel
CacheHierarchy::missPathData(uint32_t core, uint64_t addr,
                             bool is_store, AccessKind kind)
{
    SetAssocCache &l2 = *l2_c_[core];
    uint64_t evicted = kNoBlock;
    bool evicted_dirty = false;
    bool was_pf = false;
    const bool l2_hit = l2.accessTrackPf(addr, is_store, &was_pf,
                                         &evicted, &evicted_dirty);
    l2_.record(kind, !l2_hit);
    if (was_pf)
        ++l2_.prefetchUseful;
    if (evicted != kNoBlock)
        fillLlcFromL2Eviction(evicted, evicted_dirty);
    if (l2_hit)
        return HitLevel::L2;

    if (spec_.prefetch.l2Adjacent) {
        // Buddy (adjacent-line) prefetch into the L2.
        const uint64_t buddy =
            (addr ^ spec_.l2.cache.blockBytes) & ~(uint64_t(
                spec_.l2.cache.blockBytes) - 1);
        if (!l2.probe(buddy)) {
            l2.insert(buddy, false, true);
            ++l2_.prefetchIssued;
        }
    }
    if (spec_.prefetch.l2Stream) {
        uint64_t blocks[8];
        const uint64_t block = addr / spec_.l2.cache.blockBytes;
        const uint32_t n = stream_[core].observeMiss(block, blocks);
        for (uint32_t i = 0; i < n; ++i) {
            l2.insert(blocks[i] * spec_.l2.cache.blockBytes, false,
                      true);
            ++l2_.prefetchIssued;
        }
    }
    return accessSharedLevels(addr, is_store, kind);
}

HitLevel
CacheHierarchy::accessData(uint32_t tid, uint64_t pc, uint64_t addr,
                           bool is_store, AccessKind kind)
{
    const uint32_t core = coreOf(tid);
    if (coh_)
        applyCoherence(core, addr, is_store);
    SetAssocCache &l1d = *l1d_c_[core];
    bool was_pf = false;
    const bool hit = l1d.accessTrackPf(addr, is_store, &was_pf);
    l1d_.record(kind, !hit);
    if (was_pf)
        ++l1d_.prefetchUseful;

    // L1 prefetchers train on every demand access.
    if (spec_.prefetch.l1Stride) {
        const uint64_t predicted = stride_[core].train(pc, addr);
        if (predicted && !l1d.probe(predicted)) {
            l1d.insert(predicted, false, true);
            ++l1d_.prefetchIssued;
        }
    }
    if (spec_.prefetch.l1NextLine && !hit) {
        const uint64_t next = addr + spec_.l1d.cache.blockBytes;
        if (!l1d.probe(next)) {
            l1d.insert(next, false, true);
            ++l1d_.prefetchIssued;
        }
    }
    if (hit)
        return HitLevel::L1;
    return missPathData(core, addr, is_store, kind);
}

} // namespace wsearch
