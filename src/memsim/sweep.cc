#include "memsim/sweep.hh"

#include <algorithm>
#include <atomic>
#include <thread>

#include "util/env.hh"

namespace wsearch {

uint32_t
simThreads()
{
    const uint64_t v = envU64("WSEARCH_SIM_THREADS", 0);
    if (v > 0)
        return static_cast<uint32_t>(std::min<uint64_t>(v, 1024));
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void
runParallelJobs(size_t njobs, uint32_t threads,
                const std::function<void(size_t)> &job)
{
    if (threads == 0)
        threads = simThreads();
    threads = static_cast<uint32_t>(
        std::min<size_t>(threads, njobs));
    if (threads <= 1) {
        for (size_t i = 0; i < njobs; ++i)
            job(i);
        return;
    }
    std::atomic<size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (uint32_t t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (;;) {
                const size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= njobs)
                    return;
                job(i);
            }
        });
    }
    for (std::thread &t : pool)
        t.join();
}

SimResult
runTraceSampled(const BufferedTrace &trace, CacheHierarchy &hier,
                uint64_t total, const SampledIntervals &s)
{
    if (!s.enabled())
        return runTrace(trace, hier, 0, total);
    total = std::min(total, trace.size());
    SimResult acc;
    for (uint64_t period = 0; period < total;
         period += s.periodRecords) {
        const uint64_t window_end =
            std::min(total, period + s.periodRecords);
        const uint64_t warm = std::min(
            s.warmupRecords, window_end - period);
        pumpRange(trace, hier, period, warm);
        const uint64_t measure_begin = period + warm;
        if (measure_begin >= window_end)
            continue;
        hier.resetStats();
        const uint64_t done = pumpRange(
            trace, hier, measure_begin,
            std::min(s.measureRecords, window_end - measure_begin));
        SimResult window;
        window.instructions = done;
        window.l1i = hier.l1iStats();
        window.l1d = hier.l1dStats();
        window.l2 = hier.l2Stats();
        window.l3 = hier.l3Stats();
        window.l4 = hier.l4Stats();
        window.l3Evictions = hier.l3Evictions();
        window.writebacks = hier.writebacks();
        window.backInvalidations = hier.backInvalidations();
        const CoherenceStats coh = hier.cohStats();
        window.cohUpgrades = coh.upgrades;
        window.cohInvalidations = coh.invalidations;
        window.cohDirtyWritebacks = coh.dirtyWritebacks;
        window.sampledWindows = 1;
        acc += window;
    }
    return acc;
}

std::vector<SimResult>
sweepHierarchies(const BufferedTrace &trace,
                 const std::vector<HierarchySpec> &specs,
                 uint64_t warmup, uint64_t measure,
                 const SweepOptions &opt)
{
    std::vector<SimResult> results(specs.size());
    runParallelJobs(specs.size(), opt.threads, [&](size_t i) {
        CacheHierarchy hier(specs[i]);
        results[i] = opt.sampling.enabled()
            ? runTraceSampled(trace, hier, warmup + measure,
                              opt.sampling)
            : runTrace(trace, hier, warmup, measure);
    });
    return results;
}

std::vector<SimResult>
sweepHierarchies(const BufferedTrace &trace,
                 const std::vector<HierarchyConfig> &configs,
                 uint64_t warmup, uint64_t measure,
                 const SweepOptions &opt)
{
    std::vector<HierarchySpec> specs;
    specs.reserve(configs.size());
    for (const HierarchyConfig &c : configs)
        specs.push_back(HierarchySpec::fromLegacy(c));
    return sweepHierarchies(trace, specs, warmup, measure, opt);
}

} // namespace wsearch
