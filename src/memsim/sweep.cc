#include "memsim/sweep.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <numeric>
#include <thread>

#include "util/env.hh"

namespace wsearch {

namespace {

/** Read the hierarchy's counters into a one-window SimResult. */
SimResult
harvestWindow(const CacheHierarchy &hier, uint64_t instructions)
{
    SimResult window;
    window.instructions = instructions;
    window.l1i = hier.l1iStats();
    window.l1d = hier.l1dStats();
    window.l2 = hier.l2Stats();
    window.l3 = hier.l3Stats();
    window.l4 = hier.l4Stats();
    window.l3Evictions = hier.l3Evictions();
    window.writebacks = hier.writebacks();
    window.backInvalidations = hier.backInvalidations();
    const CoherenceStats coh = hier.cohStats();
    window.cohUpgrades = coh.upgrades;
    window.cohInvalidations = coh.invalidations;
    window.cohDirtyWritebacks = coh.dirtyWritebacks;
    return window;
}

} // namespace

const char *
samplingPolicyName(SamplingPolicy p)
{
    switch (p) {
      case SamplingPolicy::kUniform:
        return "uniform";
      case SamplingPolicy::kClustered:
        return "clustered";
      case SamplingPolicy::kOff:
        break;
    }
    return "off";
}

uint64_t
sampleSeed(uint64_t s)
{
    if (s)
        return s;
    // Fixed built-in default keeps CI runs reproducible without any
    // environment setup; WSEARCH_SAMPLE_SEED re-rolls the clustering.
    return envU64("WSEARCH_SAMPLE_SEED", 0x5eedc0de12345678ull);
}

RepresentativeSampling
defaultRepresentativeSampling(uint64_t total_records, uint32_t windows,
                              uint32_t sample_windows)
{
    windows = static_cast<uint32_t>(
        envU64("WSEARCH_SAMPLE_WINDOWS", windows));
    sample_windows = static_cast<uint32_t>(
        envU64("WSEARCH_SAMPLE_CLUSTERS", sample_windows));
    RepresentativeSampling rep;
    if (total_records == 0 || windows == 0 || sample_windows == 0)
        return rep;
    rep.windowRecords =
        std::max<uint64_t>(1, total_records / windows);
    // Warmup per sampled window. Architectural state is carried across
    // skipped gaps, but the cache still re-warms from whatever the gap
    // would have loaded; a full window of uncounted warmup before each
    // measured window keeps that cold-state bias inside the reported
    // band (the bench_fig6bc gate checks exactly this).
    rep.warmupRecords =
        envU64("WSEARCH_SAMPLE_WARMUP", rep.windowRecords);
    rep.sampleWindows = sample_windows;
    return rep;
}

uint64_t
SamplingPlan::simulatedRecords() const
{
    uint64_t pos = 0;
    uint64_t sim = 0;
    for (const SampleWindow &w : windows) {
        const uint64_t warm_begin = std::max(
            pos, w.begin > warmupRecords ? w.begin - warmupRecords : 0);
        sim += (w.begin - std::min(warm_begin, w.begin)) + w.records;
        pos = w.begin + w.records;
    }
    return sim;
}

double
SamplingPlan::simulatedFraction() const
{
    const uint64_t denom = totalWindows * windowRecords;
    if (denom == 0)
        return 1.0;
    return static_cast<double>(simulatedRecords()) /
        static_cast<double>(denom);
}

SamplingPlan
buildUniformPlan(uint64_t total_records,
                 const RepresentativeSampling &rep)
{
    SamplingPlan plan;
    plan.policy = SamplingPolicy::kUniform;
    plan.windowRecords = rep.windowRecords;
    plan.warmupRecords = rep.warmupRecords;
    plan.bandRelFloor = rep.bandRelFloor;
    if (!rep.enabled() || total_records == 0)
        return plan;
    const uint64_t total_windows =
        (total_records + rep.windowRecords - 1) / rep.windowRecords;
    plan.totalWindows = total_windows;
    const uint64_t k =
        std::min<uint64_t>(rep.sampleWindows, total_windows);
    plan.windows.reserve(k);
    for (uint64_t i = 0; i < k; ++i) {
        const uint64_t idx = i * total_windows / k;
        const uint64_t next =
            i + 1 < k ? (i + 1) * total_windows / k : total_windows;
        SampleWindow w;
        w.begin = idx * rep.windowRecords;
        w.records = std::min(rep.windowRecords, total_records - w.begin);
        w.weight = next - idx; // gaps partition [0, total_windows)
        plan.windows.push_back(w);
    }
    return plan;
}

SamplingPlan
buildClusteredPlan(const BufferedTrace &trace, uint64_t total_records,
                   const RepresentativeSampling &rep)
{
    SamplingPlan plan;
    plan.policy = SamplingPolicy::kClustered;
    plan.windowRecords = rep.windowRecords;
    plan.warmupRecords = rep.warmupRecords;
    plan.bandRelFloor = rep.bandRelFloor;
    if (!rep.enabled())
        return plan;
    total_records = std::min(total_records, trace.size());
    const std::vector<WindowSignature> sigs =
        extractWindowSignatures(trace, total_records, rep.windowRecords);
    const size_t n = sigs.size();
    plan.totalWindows = n;
    if (n == 0)
        return plan;

    const std::vector<SignatureVec> feats = standardizedFeatures(sigs);

    // Degenerate k >= N case: every window selected with weight 1 (an
    // explicit short-circuit -- k-means can merge coincident feature
    // vectors, and the exact-reconstruction guarantee must not depend
    // on feature distinctness).
    if (rep.sampleWindows >= n) {
        plan.windows.reserve(n);
        plan.clusterSqDist.assign(n, 0.0);
        plan.centroids.reserve(n);
        for (size_t i = 0; i < n; ++i) {
            SampleWindow w;
            w.begin = sigs[i].begin;
            w.records = sigs[i].records;
            w.weight = 1;
            plan.windows.push_back(w);
            plan.centroids.push_back(feats[i]);
        }
        return plan;
    }

    const KMeansResult cl =
        kMeansCluster(feats, rep.sampleWindows, sampleSeed(rep.seed));
    const size_t k = cl.centroids.size();

    // Per cluster: population, dispersion, and the member closest to
    // the centroid (lowest index on ties) as its representative.
    std::vector<uint64_t> count(k, 0);
    std::vector<double> sqdist(k, 0.0);
    std::vector<size_t> repIdx(k, 0);
    std::vector<double> repDist(
        k, std::numeric_limits<double>::max());
    for (size_t i = 0; i < n; ++i) {
        const uint32_t c = cl.assignment[i];
        const double d = sigDistSq(feats[i], cl.centroids[c]);
        ++count[c];
        sqdist[c] += d;
        if (d < repDist[c]) {
            repDist[c] = d;
            repIdx[c] = i;
        }
    }

    struct Entry
    {
        SampleWindow w;
        double sq;
        SignatureVec cen;
    };
    std::vector<Entry> entries;
    entries.reserve(k);
    for (size_t c = 0; c < k; ++c) {
        if (count[c] == 0)
            continue;
        Entry e;
        e.w.begin = sigs[repIdx[c]].begin;
        e.w.records = sigs[repIdx[c]].records;
        e.w.weight = count[c];
        e.sq = sqdist[c];
        e.cen = cl.centroids[c];
        entries.push_back(e);
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.w.begin < b.w.begin;
              });
    plan.windows.reserve(entries.size());
    plan.clusterSqDist.reserve(entries.size());
    plan.centroids.reserve(entries.size());
    for (const Entry &e : entries) {
        plan.windows.push_back(e.w);
        plan.clusterSqDist.push_back(e.sq);
        plan.centroids.push_back(e.cen);
    }
    return plan;
}

double
planVariance(const SamplingPlan &plan,
             const std::vector<double> &rep_metric,
             double estimate_total)
{
    if (!plan.enabled() || rep_metric.size() != plan.windows.size())
        return 0.0;
    const size_t k = plan.windows.size();
    double var = 0.0;

    if (plan.policy == SamplingPolicy::kClustered &&
        plan.centroids.size() == k) {
        // Within-cluster signature dispersion projected through the
        // steepest locally observed metric gradient between cluster
        // centroids: g_c = max_{c'} |m_c - m_c'| / ||mu_c - mu_c'||,
        // Var = sum_c g_c^2 * sum_{i in c} ||x_i - mu_c||^2.
        for (size_t c = 0; c < k; ++c) {
            double g = 0.0;
            for (size_t c2 = 0; c2 < k; ++c2) {
                if (c2 == c)
                    continue;
                const double dist = std::sqrt(
                    sigDistSq(plan.centroids[c], plan.centroids[c2]));
                if (dist > 1e-9)
                    g = std::max(
                        g, std::fabs(rep_metric[c] - rep_metric[c2]) /
                            dist);
            }
            var += g * g * plan.clusterSqDist[c];
        }
    } else if (k > 1 && plan.totalWindows > k) {
        // Uniform plans: simple-random-sample between-window variance
        // of the N*mean estimator with finite population correction.
        const double nn = static_cast<double>(k);
        const double N = static_cast<double>(plan.totalWindows);
        double mean = 0.0;
        for (const double m : rep_metric)
            mean += m;
        mean /= nn;
        double s2 = 0.0;
        for (const double m : rep_metric)
            s2 += (m - mean) * (m - mean);
        s2 /= (nn - 1.0);
        var = N * N * (s2 / nn) * (1.0 - nn / N);
    }

    // Relative floor: the analytic models see signature-predicted
    // dispersion but not warmup bias from skipped state.
    const double floor_hw = plan.bandRelFloor * estimate_total;
    const double floor_var = (floor_hw / 1.96) * (floor_hw / 1.96);
    return std::max(var, floor_var);
}

uint32_t
simThreads()
{
    const uint64_t v = envU64("WSEARCH_SIM_THREADS", 0);
    if (v > 0)
        return static_cast<uint32_t>(std::min<uint64_t>(v, 1024));
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void
runParallelJobs(size_t njobs, uint32_t threads,
                const std::function<void(size_t)> &job)
{
    if (threads == 0)
        threads = simThreads();
    threads = static_cast<uint32_t>(
        std::min<size_t>(threads, njobs));
    if (threads <= 1) {
        for (size_t i = 0; i < njobs; ++i)
            job(i);
        return;
    }
    std::atomic<size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (uint32_t t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (;;) {
                const size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= njobs)
                    return;
                job(i);
            }
        });
    }
    for (std::thread &t : pool)
        t.join();
}

SimResult
runTraceSampled(const BufferedTrace &trace, CacheHierarchy &hier,
                uint64_t total, const SampledIntervals &s)
{
    if (!s.enabled())
        return runTrace(trace, hier, 0, total);
    total = std::min(total, trace.size());
    SimResult acc;
    for (uint64_t period = 0; period < total;
         period += s.periodRecords) {
        const uint64_t window_end =
            std::min(total, period + s.periodRecords);
        const uint64_t warm = std::min(
            s.warmupRecords, window_end - period);
        pumpRange(trace, hier, period, warm);
        const uint64_t measure_begin = period + warm;
        if (measure_begin >= window_end)
            continue;
        hier.resetStats();
        const uint64_t done = pumpRange(
            trace, hier, measure_begin,
            std::min(s.measureRecords, window_end - measure_begin));
        SimResult window;
        window.instructions = done;
        window.l1i = hier.l1iStats();
        window.l1d = hier.l1dStats();
        window.l2 = hier.l2Stats();
        window.l3 = hier.l3Stats();
        window.l4 = hier.l4Stats();
        window.l3Evictions = hier.l3Evictions();
        window.writebacks = hier.writebacks();
        window.backInvalidations = hier.backInvalidations();
        const CoherenceStats coh = hier.cohStats();
        window.cohUpgrades = coh.upgrades;
        window.cohInvalidations = coh.invalidations;
        window.cohDirtyWritebacks = coh.dirtyWritebacks;
        window.sampledWindows = 1;
        acc += window;
    }
    return acc;
}

SimResult
runTracePlanned(const BufferedTrace &trace, CacheHierarchy &hier,
                const SamplingPlan &plan)
{
    if (!plan.enabled())
        return runTrace(trace, hier, 0, trace.size());
    SimResult acc;
    std::vector<double> metric;
    metric.reserve(plan.windows.size());
    uint64_t pos = 0; // replay cursor: state is carried across gaps
    for (const SampleWindow &w : plan.windows) {
        const uint64_t warm_begin = std::max(
            pos, w.begin > plan.warmupRecords
                ? w.begin - plan.warmupRecords : 0);
        if (warm_begin < w.begin)
            pumpRange(trace, hier, warm_begin, w.begin - warm_begin);
        hier.resetStats();
        const uint64_t done = pumpRange(trace, hier, w.begin, w.records);
        const SimResult win = harvestWindow(hier, done);
        metric.push_back(static_cast<double>(win.l3.totalMisses()));
        // Weight-merge strictly via operator+=: the representative
        // stands for `weight` windows of its cluster.
        SimResult scaled;
        for (uint64_t r = 0; r < w.weight; ++r)
            scaled += win;
        scaled.sampledWindows = 1;
        scaled.representedWindows = w.weight;
        acc += scaled;
        pos = w.begin + done;
    }
    acc.l3MissVar = planVariance(
        plan, metric, static_cast<double>(acc.l3.totalMisses()));
    return acc;
}

SamplingPlan
buildSweepPlan(const BufferedTrace &trace, uint64_t total,
               const SweepOptions &opt)
{
    total = std::min(total, trace.size());
    if (opt.policy == SamplingPolicy::kClustered && opt.rep.enabled())
        return buildClusteredPlan(trace, total, opt.rep);
    if (opt.policy == SamplingPolicy::kUniform && opt.rep.enabled())
        return buildUniformPlan(total, opt.rep);
    return SamplingPlan{};
}

std::vector<SimResult>
sweepHierarchies(const BufferedTrace &trace,
                 const std::vector<HierarchySpec> &specs,
                 uint64_t warmup, uint64_t measure,
                 const SweepOptions &opt)
{
    std::vector<SimResult> results(specs.size());
    // Plans depend only on the trace, never on the configuration:
    // build once, share read-only across all workers.
    const SamplingPlan plan =
        buildSweepPlan(trace, warmup + measure, opt);
    runParallelJobs(specs.size(), opt.threads, [&](size_t i) {
        CacheHierarchy hier(specs[i]);
        if (plan.enabled())
            results[i] = runTracePlanned(trace, hier, plan);
        else if (opt.sampling.enabled())
            results[i] = runTraceSampled(trace, hier, warmup + measure,
                                         opt.sampling);
        else
            results[i] = runTrace(trace, hier, warmup, measure);
    });
    return results;
}

std::vector<SimResult>
sweepHierarchies(const BufferedTrace &trace,
                 const std::vector<HierarchyConfig> &configs,
                 uint64_t warmup, uint64_t measure,
                 const SweepOptions &opt)
{
    std::vector<HierarchySpec> specs;
    specs.reserve(configs.size());
    for (const HierarchyConfig &c : configs)
        specs.push_back(HierarchySpec::fromLegacy(c));
    return sweepHierarchies(trace, specs, warmup, measure, opt);
}

} // namespace wsearch
