/**
 * @file
 * Parallel sweep engine. Every paper figure is a sweep: one trace
 * replayed through dozens of hierarchy configurations. The
 * configurations are embarrassingly independent, so the engine
 * materializes the trace once into a shared immutable BufferedTrace
 * and fans worker threads out over a work queue of configuration
 * jobs, each replaying the shared buffer through its own private
 * CacheHierarchy -- no sharing and no locks on the hot path, and
 * bit-identical SimResults to the serial runTrace.
 *
 * The worker count comes from WSEARCH_SIM_THREADS (default: hardware
 * concurrency). An opt-in sampled-interval mode (periodic
 * warmup+measure windows, counters merged across windows) trades
 * exactness for speed on quick-look / CI sweeps; sampled results
 * carry a nonzero SimResult::sampledWindows and must be reported as
 * estimates.
 */

#ifndef WSEARCH_MEMSIM_SWEEP_HH
#define WSEARCH_MEMSIM_SWEEP_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "memsim/simulator.hh"
#include "trace/buffered_trace.hh"

namespace wsearch {

/**
 * Sweep worker count: WSEARCH_SIM_THREADS when set, else hardware
 * concurrency (at least 1).
 */
uint32_t simThreads();

/**
 * Periodic sampling plan: each period simulates @p warmupRecords
 * (counters discarded) followed by @p measureRecords (counters
 * merged), then skips to the next period boundary. Cache state is
 * carried across the skip, which is the usual sampled-simulation
 * bias: the warmup window re-warms recency state but cannot recover
 * the skipped footprint, so results are estimates.
 */
struct SampledIntervals
{
    uint64_t periodRecords = 0;  ///< window stride; 0 disables sampling
    uint64_t warmupRecords = 0;  ///< per-window warmup
    uint64_t measureRecords = 0; ///< per-window measurement

    bool
    enabled() const
    {
        return periodRecords > 0 &&
            measureRecords > 0 &&
            warmupRecords + measureRecords <= periodRecords;
    }

    /** Fraction of the trace actually simulated. */
    double
    simulatedFraction() const
    {
        if (!enabled())
            return 1.0;
        return static_cast<double>(warmupRecords + measureRecords) /
            static_cast<double>(periodRecords);
    }
};

/** Knobs of one sweep invocation. */
struct SweepOptions
{
    uint32_t threads = 0;      ///< 0: simThreads()
    SampledIntervals sampling; ///< disabled by default
};

/**
 * Run @p job(i) for every i in [0, @p njobs) on @p threads worker
 * threads pulling from a shared atomic work queue. threads == 0 means
 * simThreads(); the serial path (1 effective thread) runs inline.
 * Jobs must not throw and must touch only their own state.
 */
void runParallelJobs(size_t njobs, uint32_t threads,
                     const std::function<void(size_t)> &job);

/**
 * Sampled-interval replay of [0, @p total) of @p trace (see
 * SampledIntervals). Counters are merged across measurement windows;
 * the result's sampledWindows records how many were merged.
 */
SimResult runTraceSampled(const BufferedTrace &trace,
                          CacheHierarchy &hier, uint64_t total,
                          const SampledIntervals &sampling);

/**
 * The sweep: replay @p trace through a private CacheHierarchy per
 * configuration, @p warmup records of warmup then @p measure records
 * of measurement each, in parallel. Result i belongs to config i and
 * is bit-identical to serial runTrace at any thread count (unless
 * sampling is enabled, which replaces the warmup/measure split with
 * windows over the first warmup+measure records).
 */
std::vector<SimResult>
sweepHierarchies(const BufferedTrace &trace,
                 const std::vector<HierarchySpec> &specs,
                 uint64_t warmup, uint64_t measure,
                 const SweepOptions &opt = {});

/** Legacy-config overload: maps each config via fromLegacy. */
std::vector<SimResult>
sweepHierarchies(const BufferedTrace &trace,
                 const std::vector<HierarchyConfig> &configs,
                 uint64_t warmup, uint64_t measure,
                 const SweepOptions &opt = {});

} // namespace wsearch

#endif // WSEARCH_MEMSIM_SWEEP_HH
