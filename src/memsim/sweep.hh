/**
 * @file
 * Parallel sweep engine. Every paper figure is a sweep: one trace
 * replayed through dozens of hierarchy configurations. The
 * configurations are embarrassingly independent, so the engine
 * materializes the trace once into a shared immutable BufferedTrace
 * and fans worker threads out over a work queue of configuration
 * jobs, each replaying the shared buffer through its own private
 * CacheHierarchy -- no sharing and no locks on the hot path, and
 * bit-identical SimResults to the serial runTrace.
 *
 * The worker count comes from WSEARCH_SIM_THREADS (default: hardware
 * concurrency). An opt-in sampled-interval mode (periodic
 * warmup+measure windows, counters merged across windows) trades
 * exactness for speed on quick-look / CI sweeps; sampled results
 * carry a nonzero SimResult::sampledWindows and must be reported as
 * estimates.
 */

#ifndef WSEARCH_MEMSIM_SWEEP_HH
#define WSEARCH_MEMSIM_SWEEP_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "memsim/simulator.hh"
#include "trace/buffered_trace.hh"
#include "trace/signature.hh"

namespace wsearch {

/**
 * Sweep worker count: WSEARCH_SIM_THREADS when set, else hardware
 * concurrency (at least 1).
 */
uint32_t simThreads();

/**
 * Periodic sampling plan: each period simulates @p warmupRecords
 * (counters discarded) followed by @p measureRecords (counters
 * merged), then skips to the next period boundary. Cache state is
 * carried across the skip, which is the usual sampled-simulation
 * bias: the warmup window re-warms recency state but cannot recover
 * the skipped footprint, so results are estimates.
 */
struct SampledIntervals
{
    uint64_t periodRecords = 0;  ///< window stride; 0 disables sampling
    uint64_t warmupRecords = 0;  ///< per-window warmup
    uint64_t measureRecords = 0; ///< per-window measurement

    bool
    enabled() const
    {
        return periodRecords > 0 &&
            measureRecords > 0 &&
            warmupRecords + measureRecords <= periodRecords;
    }

    /** Fraction of the trace actually simulated. */
    double
    simulatedFraction() const
    {
        if (!enabled())
            return 1.0;
        return static_cast<double>(warmupRecords + measureRecords) /
            static_cast<double>(periodRecords);
    }
};

/**
 * How a sweep trades replay completeness for speed:
 *   kOff        exact contiguous warmup+measure replay
 *   kUniform    evenly spaced representative windows, equal weights
 *   kClustered  k-means-clustered representative windows (one
 *               representative per cluster, weighted by cluster size)
 * Both sampled policies attach a confidence band to the estimate (see
 * SimResult::l3MissBandLo/Hi); kOff results are exact and band-free.
 * The legacy periodic SampledIntervals mode remains reachable with
 * policy == kOff plus sampling.enabled() (the --smoke quick-look).
 */
enum class SamplingPolicy : uint8_t {
    kOff = 0,
    kUniform = 1,
    kClustered = 2,
};

/** Printable policy name. */
const char *samplingPolicyName(SamplingPolicy p);

/**
 * Knobs of representative-interval sampling (kUniform / kClustered).
 * The trace is divided into fixed-size windows; @p sampleWindows of
 * them are simulated (each after @p warmupRecords of state re-warm
 * from the preceding records) and weight-merged to estimate the
 * full-replay counters. In kClustered mode sampleWindows is the
 * cluster count k and window selection comes from k-means over cheap
 * access signatures (trace/signature.hh); in kUniform mode the
 * windows are evenly spaced. Equal knobs mean equal simulated-record
 * budget across the two policies, which is what makes their accuracy
 * comparable.
 */
struct RepresentativeSampling
{
    uint64_t windowRecords = 0; ///< records per window; 0 disables
    uint64_t warmupRecords = 0; ///< re-warm before each selected window
    uint32_t sampleWindows = 0; ///< windows simulated (clusters in kClustered)
    /** Clustering seed; 0 resolves WSEARCH_SAMPLE_SEED (else a fixed
     *  built-in), so CI runs are reproducible by default and
     *  re-rollable by env. */
    uint64_t seed = 0;
    /**
     * Relative floor on the confidence-band half-width. The analytic
     * band captures signature-predicted dispersion but not the warmup
     * bias of skipped state; the floor keeps the band honest when
     * clusters are internally homogeneous.
     */
    double bandRelFloor = 0.03;

    bool
    enabled() const
    {
        return windowRecords > 0 && sampleWindows > 0;
    }
};

/**
 * Sampling knobs for WSEARCH_FAST-aware drivers: ~@p windows windows
 * over @p total_records with half-window warmups, WSEARCH_SAMPLE_*
 * env overrides applied (see README).
 */
RepresentativeSampling
defaultRepresentativeSampling(uint64_t total_records,
                              uint32_t windows = 96,
                              uint32_t sample_windows = 12);

/** Resolve a sampling seed: @p s, else WSEARCH_SAMPLE_SEED, else fixed. */
uint64_t sampleSeed(uint64_t s);

/** One selected representative window of a SamplingPlan. */
struct SampleWindow
{
    uint64_t begin = 0;   ///< absolute first record
    uint64_t records = 0; ///< window length
    uint64_t weight = 1;  ///< windows this representative stands for
};

/**
 * A materialized window-selection plan: which windows to simulate, in
 * position order, with what weights, plus the per-cluster dispersion
 * data the confidence band is derived from. Plans depend only on the
 * trace (never on the cache configuration), so one plan is shared by
 * every configuration of a sweep.
 */
struct SamplingPlan
{
    SamplingPolicy policy = SamplingPolicy::kOff;
    uint64_t windowRecords = 0;
    uint64_t warmupRecords = 0;
    uint64_t totalWindows = 0; ///< windows represented (== sum of weights)
    double bandRelFloor = 0.03;
    std::vector<SampleWindow> windows; ///< sorted by begin
    /**
     * Per selected window: sum of squared distances of its cluster's
     * members to the cluster centroid (standardized feature space).
     * Empty for kUniform plans (band falls back to the between-window
     * sample variance).
     */
    std::vector<double> clusterSqDist;
    /** Per selected window: its cluster centroid (standardized). */
    std::vector<SignatureVec> centroids;

    bool enabled() const { return !windows.empty(); }

    /** Records replayed under the plan (warmups + measured windows). */
    uint64_t simulatedRecords() const;

    /** Fraction of the represented records actually simulated. */
    double simulatedFraction() const;
};

/**
 * Evenly spaced selection: sampleWindows windows at equal strides,
 * weights covering the gaps (weights sum to the total window count).
 * Deterministic, no RNG.
 */
SamplingPlan buildUniformPlan(uint64_t total_records,
                              const RepresentativeSampling &rep);

/**
 * Clustered selection: extract per-window signatures from @p trace,
 * k-means them (seeded, deterministic), and pick the member closest
 * to each centroid as the cluster's representative, weighted by
 * cluster size. With sampleWindows >= the window count every window
 * is selected with weight 1 and the planned replay degenerates to the
 * exact contiguous replay (bit-identical counters).
 */
SamplingPlan buildClusteredPlan(const BufferedTrace &trace,
                                uint64_t total_records,
                                const RepresentativeSampling &rep);

/**
 * Variance of the plan's weighted-total estimate for a metric whose
 * per-window values at the representatives were @p rep_metric.
 * Clustered plans project within-cluster signature dispersion through
 * the locally observed metric gradient between cluster centroids;
 * uniform plans use the between-window sample variance with finite
 * population correction. @p estimate_total applies the plan's
 * relative band floor. See DESIGN.md "Representative sampling".
 */
double planVariance(const SamplingPlan &plan,
                    const std::vector<double> &rep_metric,
                    double estimate_total);

/** Knobs of one sweep invocation. */
struct SweepOptions
{
    uint32_t threads = 0;      ///< 0: simThreads()
    /** Representative-window policy; kOff falls back to @p sampling
     *  (legacy periodic windows) when that is enabled, else exact. */
    SamplingPolicy policy = SamplingPolicy::kOff;
    RepresentativeSampling rep; ///< kUniform/kClustered knobs
    SampledIntervals sampling;  ///< legacy periodic mode (--smoke)
};

/**
 * Build the plan a sweep with @p opt over the first @p total records
 * of @p trace would use: a clustered or uniform plan when the policy
 * asks for one and rep is enabled, else a disabled (empty) plan.
 */
SamplingPlan buildSweepPlan(const BufferedTrace &trace, uint64_t total,
                            const SweepOptions &opt);

/**
 * Run @p job(i) for every i in [0, @p njobs) on @p threads worker
 * threads pulling from a shared atomic work queue. threads == 0 means
 * simThreads(); the serial path (1 effective thread) runs inline.
 * Jobs must not throw and must touch only their own state.
 */
void runParallelJobs(size_t njobs, uint32_t threads,
                     const std::function<void(size_t)> &job);

/**
 * Sampled-interval replay of [0, @p total) of @p trace (see
 * SampledIntervals). Counters are merged across measurement windows;
 * the result's sampledWindows records how many were merged.
 */
SimResult runTraceSampled(const BufferedTrace &trace,
                          CacheHierarchy &hier, uint64_t total,
                          const SampledIntervals &sampling);

/**
 * Planned representative-window replay: windows are visited in
 * position order on ONE hierarchy (state carried across the skipped
 * gaps; up to plan.warmupRecords re-warmed before each window with
 * stats off), each window's counters are harvested and weight-merged
 * via SimResult::operator+=, and the result carries the confidence
 * band (l3MissVar), sampledWindows == windows simulated, and
 * representedWindows == total windows represented. A plan selecting
 * every window with weight 1 reproduces the exact contiguous replay
 * bit-identically.
 */
SimResult runTracePlanned(const BufferedTrace &trace,
                          CacheHierarchy &hier,
                          const SamplingPlan &plan);

/**
 * The sweep: replay @p trace through a private CacheHierarchy per
 * configuration, @p warmup records of warmup then @p measure records
 * of measurement each, in parallel. Result i belongs to config i and
 * is bit-identical to serial runTrace at any thread count (unless
 * sampling is enabled, which replaces the warmup/measure split with
 * windows over the first warmup+measure records).
 */
std::vector<SimResult>
sweepHierarchies(const BufferedTrace &trace,
                 const std::vector<HierarchySpec> &specs,
                 uint64_t warmup, uint64_t measure,
                 const SweepOptions &opt = {});

/** Legacy-config overload: maps each config via fromLegacy. */
std::vector<SimResult>
sweepHierarchies(const BufferedTrace &trace,
                 const std::vector<HierarchyConfig> &configs,
                 uint64_t warmup, uint64_t measure,
                 const SweepOptions &opt = {});

} // namespace wsearch

#endif // WSEARCH_MEMSIM_SWEEP_HH
