#include "memsim/spec.hh"

#include "memsim/hierarchy.hh"

namespace wsearch {

CacheLevelSpec
cache_gen_l1(uint64_t size_bytes, uint32_t block_bytes, uint32_t ways,
             ReplPolicy repl)
{
    CacheLevelSpec s;
    s.cache = CacheConfig{size_bytes, block_bytes, ways, repl};
    return s;
}

CacheLevelSpec
cache_gen_l2(uint64_t size_bytes, uint32_t block_bytes, uint32_t ways,
             ReplPolicy repl)
{
    CacheLevelSpec s;
    s.cache = CacheConfig{size_bytes, block_bytes, ways, repl};
    return s;
}

CacheLevelSpec
cache_gen_llc(uint64_t size_bytes, uint32_t block_bytes, uint32_t ways,
              ReplPolicy repl, InclusionMode inclusion, uint32_t slices,
              uint32_t partition_ways)
{
    CacheLevelSpec s;
    s.cache =
        CacheConfig{size_bytes, block_bytes, ways, repl, partition_ways};
    s.inclusion = inclusion;
    s.slices = slices ? slices : 1;
    return s;
}

CacheLevelSpec
cache_gen_llc_inc(uint64_t size_bytes, uint32_t block_bytes,
                  uint32_t ways, ReplPolicy repl, uint32_t slices)
{
    return cache_gen_llc(size_bytes, block_bytes, ways, repl,
                         InclusionMode::Inclusive, slices);
}

CacheLevelSpec
cache_gen_llc_exc(uint64_t size_bytes, uint32_t block_bytes,
                  uint32_t ways, ReplPolicy repl, uint32_t slices)
{
    return cache_gen_llc(size_bytes, block_bytes, ways, repl,
                         InclusionMode::Exclusive, slices);
}

CacheLevelSpec
cache_gen_victim(uint64_t size_bytes, uint32_t block_bytes,
                 bool fully_assoc, bool victim_fill)
{
    CacheLevelSpec s;
    // Direct-mapped (Alloy-style) unless fully associative; the FA
    // backend ignores ways.
    s.cache = CacheConfig{size_bytes, block_bytes, 1};
    s.fullyAssociative = fully_assoc;
    s.victimFill = victim_fill;
    return s;
}

HierarchySpec
HierarchySpec::fromLegacy(const HierarchyConfig &cfg)
{
    HierarchySpec s;
    s.numCores = cfg.numCores;
    s.smtWays = cfg.smtWays;
    s.l1i.cache = cfg.l1i;
    s.l1d.cache = cfg.l1d;
    s.l2.cache = cfg.l2;
    s.l2InstrPartitionWays = cfg.l2InstrPartitionWays;
    s.llc.cache = cfg.l3;
    s.llc.inclusion = cfg.inclusiveL3 ? InclusionMode::Inclusive
                                      : InclusionMode::NINE;
    s.hasLlc = cfg.hasL3;
    s.l4 = cfg.l4;
    s.prefetch = cfg.prefetch;
    return s;
}

} // namespace wsearch
