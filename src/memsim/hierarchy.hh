/**
 * @file
 * Multi-core cache hierarchy assembled from composable CacheLevelSpec
 * levels (spec.hh): per-core private L1-I/L1-D/L2, a shared LLC
 * (inclusive, exclusive, or NINE; optionally slice-hashed), and an
 * optional memory-side L4 modeled after the paper's proposal (§IV-C):
 * a direct-mapped eDRAM cache filled by LLC evictions (with
 * fully-associative and fill-on-miss variants for the sensitivity
 * studies).
 *
 * SMT is modeled by mapping multiple hardware threads onto the same
 * private caches (contention is emergent). Coherence defaults to None
 * — the paper validates this as acceptable because production search
 * has negligible read-write sharing (§III-A) — but an MSI/MESI
 * directory (coherence.hh) can be enabled to account the upgrade/
 * invalidation/writeback traffic that claim hides.
 *
 * The legacy monolithic HierarchyConfig is retained as a thin
 * compatibility surface: constructing from it routes through
 * HierarchySpec::fromLegacy and reproduces the pre-spec counter
 * stream bit-identically (compat oracle test).
 */

#ifndef WSEARCH_MEMSIM_HIERARCHY_HH
#define WSEARCH_MEMSIM_HIERARCHY_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "memsim/cache.hh"
#include "memsim/cache_unit.hh"
#include "memsim/coherence.hh"
#include "memsim/prefetch.hh"
#include "memsim/spec.hh"
#include "stats/counters.hh"

namespace wsearch {

/**
 * Legacy monolithic configuration, kept so existing call sites and
 * tests compile unchanged. New code should build a HierarchySpec with
 * the cache_gen_* factories instead; this maps onto that API via
 * HierarchySpec::fromLegacy. The old L4Config special case is gone —
 * the L4 is just a fourth CacheLevelSpec (cache_gen_victim).
 */
struct HierarchyConfig
{
    uint32_t numCores = 1;
    uint32_t smtWays = 1; ///< hardware threads sharing one core's L1/L2

    CacheConfig l1i{32 * KiB, 64, 8};
    CacheConfig l1d{32 * KiB, 64, 8};
    CacheConfig l2{256 * KiB, 64, 8};
    /** Ways reserved for instructions in a split L2 (0 = unified). */
    uint32_t l2InstrPartitionWays = 0;
    CacheConfig l3{40 * MiB, 64, 20};
    bool hasL3 = true;
    bool inclusiveL3 = false; ///< back-invalidate L1/L2 on L3 eviction
    std::optional<CacheLevelSpec> l4;
    PrefetchConfig prefetch;
};

/** Where an access was serviced. */
enum class HitLevel : uint8_t {
    L1 = 1,
    L2 = 2,
    L3 = 3,
    L4 = 4,
    Memory = 5,
};

/**
 * The hierarchy. All stats are aggregated per level across cores
 * (matching how the paper reports level MPKI). Level naming in the
 * stats API stays L1/L2/L3/L4 (the LLC reports as "L3") so existing
 * bench output keys are stable.
 */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const HierarchySpec &spec);
    /** Legacy-config compatibility: routes through fromLegacy. */
    explicit CacheHierarchy(const HierarchyConfig &cfg);

    /** Instruction fetch by hardware thread @p tid. */
    HitLevel accessInstr(uint32_t tid, uint64_t pc);

    /** Data access by hardware thread @p tid (pc trains prefetchers). */
    HitLevel accessData(uint32_t tid, uint64_t pc, uint64_t addr,
                        bool is_store, AccessKind kind);

    const HierarchySpec &spec() const { return spec_; }
    uint32_t numCores() const { return spec_.numCores; }

    /** Map a hardware thread to its core. */
    uint32_t
    coreOf(uint32_t tid) const
    {
        return (tid / spec_.smtWays) % spec_.numCores;
    }

    // Aggregated per-level statistics.
    const CacheLevelStats &l1iStats() const { return l1i_; }
    const CacheLevelStats &l1dStats() const { return l1d_; }
    const CacheLevelStats &l2Stats() const { return l2_; }
    const CacheLevelStats &l3Stats() const { return l3_; }
    const CacheLevelStats &l4Stats() const { return l4_; }

    /** Combined L1 (I+D) stats. */
    CacheLevelStats
    l1Stats() const
    {
        CacheLevelStats s = l1i_;
        s += l1d_;
        return s;
    }

    uint64_t l3Evictions() const { return l3Evictions_; }
    uint64_t writebacks() const { return writebacks_; }
    uint64_t backInvalidations() const { return backInvalidations_; }

    /** Coherence traffic (zero when the protocol is None). */
    CoherenceStats
    cohStats() const
    {
        return coh_ ? coh_->stats() : CoherenceStats{};
    }

    /** Clear statistics (keeps cache contents; used after warmup). */
    void resetStats();

    /** Direct cache handles for tests. */
    SetAssocCache &l1iCache(uint32_t core) { return *l1i_c_[core]; }
    SetAssocCache &l1dCache(uint32_t core) { return *l1d_c_[core]; }
    SetAssocCache &l2Cache(uint32_t core) { return *l2_c_[core]; }
    /** Slice 0 of the LLC (set-associative configs only). */
    SetAssocCache &l3Cache() { return *llc_c_[0].setAssoc(); }
    CacheUnit &llcSliceUnit(uint32_t s) { return llc_c_[s]; }
    uint32_t llcSlices() const
    {
        return static_cast<uint32_t>(llc_c_.size());
    }
    bool hasL4() const { return l4_c_ != nullptr; }
    CoherenceDirectory *coherence() { return coh_.get(); }

  private:
    HitLevel missPathData(uint32_t core, uint64_t addr, bool is_store,
                          AccessKind kind);
    HitLevel missPathInstr(uint32_t core, uint64_t pc);
    /** LLC lookup + fill; returns the servicing level (L3/L4/Memory). */
    HitLevel accessSharedLevels(uint64_t addr, bool is_store,
                                AccessKind kind);
    /** Route an L2 victim down into the LLC per the inclusion mode. */
    void fillLlcFromL2Eviction(uint64_t evicted, bool dirty);
    void handleLlcEviction(uint64_t evicted, bool dirty);
    void applyCoherence(uint32_t core, uint64_t addr, bool is_store);

    /** LLC slice for @p addr. Single-slice configs bypass the hash so
     *  legacy counters stay bit-identical. */
    uint32_t
    llcSlice(uint64_t addr) const
    {
        if (llc_c_.size() <= 1)
            return 0;
        const uint64_t block = addr / spec_.llc.cache.blockBytes;
        const uint64_t h = (block * 0x9E3779B97F4A7C15ull) >> 33;
        return static_cast<uint32_t>(h % llc_c_.size());
    }

    HierarchySpec spec_;

    std::vector<std::unique_ptr<SetAssocCache>> l1i_c_;
    std::vector<std::unique_ptr<SetAssocCache>> l1d_c_;
    std::vector<std::unique_ptr<SetAssocCache>> l2_c_;
    std::vector<std::unique_ptr<SetAssocCache>> l2i_c_; ///< split mode
    std::vector<CacheUnit> llc_c_; ///< one per slice
    std::unique_ptr<CacheUnit> l4_c_;
    std::unique_ptr<CoherenceDirectory> coh_;

    std::vector<StridePrefetcher> stride_;
    std::vector<StreamPrefetcher> stream_;

    CacheLevelStats l1i_, l1d_, l2_, l3_, l4_;
    uint64_t l3Evictions_ = 0;
    uint64_t writebacks_ = 0;
    uint64_t backInvalidations_ = 0;
};

} // namespace wsearch

#endif // WSEARCH_MEMSIM_HIERARCHY_HH
