/**
 * @file
 * Multi-core cache hierarchy: per-core private L1-I/L1-D/L2, a shared
 * L3 (inclusive or non-inclusive), and an optional L4 modeled after the
 * paper's proposal (§IV-C): a direct-mapped, memory-side eDRAM cache
 * that acts as a victim cache for L3 evictions (with fully-associative
 * and fill-on-miss variants for the sensitivity studies).
 *
 * SMT is modeled by mapping multiple hardware threads onto the same
 * private caches (contention is emergent). Coherence is not modeled —
 * the paper validates this as acceptable because production search has
 * negligible read-write sharing (§III-A).
 */

#ifndef WSEARCH_MEMSIM_HIERARCHY_HH
#define WSEARCH_MEMSIM_HIERARCHY_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "memsim/cache.hh"
#include "memsim/fully_assoc.hh"
#include "memsim/prefetch.hh"
#include "stats/counters.hh"

namespace wsearch {

/** Configuration of the optional L4 cache. */
struct L4Config
{
    uint64_t sizeBytes = 1 * GiB;
    uint32_t blockBytes = 64;    ///< same as L3 (victim-cache design)
    bool fullyAssociative = false;

    /** How the L4 is filled. */
    enum class Fill : uint8_t {
        VictimOfL3, ///< paper design: filled by L3 evictions only
        OnMiss,     ///< conventional: allocated on every L4 miss
    };
    Fill fill = Fill::VictimOfL3;
};

/** Configuration of a full hierarchy. */
struct HierarchyConfig
{
    uint32_t numCores = 1;
    uint32_t smtWays = 1; ///< hardware threads sharing one core's L1/L2

    CacheConfig l1i{32 * KiB, 64, 8};
    CacheConfig l1d{32 * KiB, 64, 8};
    CacheConfig l2{256 * KiB, 64, 8};
    /**
     * Split the unified L2 by reserving this many ways for
     * instructions (CAT-style I/D partitioning, paper §V). 0 keeps
     * the L2 unified.
     */
    uint32_t l2InstrPartitionWays = 0;
    CacheConfig l3{40 * MiB, 64, 20};
    bool hasL3 = true;
    bool inclusiveL3 = false; ///< back-invalidate L1/L2 on L3 eviction
    std::optional<L4Config> l4;
    PrefetchConfig prefetch;
};

/** Where an access was serviced. */
enum class HitLevel : uint8_t {
    L1 = 1,
    L2 = 2,
    L3 = 3,
    L4 = 4,
    Memory = 5,
};

/**
 * The hierarchy. All stats are aggregated per level across cores
 * (matching how the paper reports level MPKI).
 */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const HierarchyConfig &cfg);

    /** Instruction fetch by hardware thread @p tid. */
    HitLevel accessInstr(uint32_t tid, uint64_t pc);

    /** Data access by hardware thread @p tid (pc trains prefetchers). */
    HitLevel accessData(uint32_t tid, uint64_t pc, uint64_t addr,
                        bool is_store, AccessKind kind);

    const HierarchyConfig &config() const { return cfg_; }
    uint32_t numCores() const { return cfg_.numCores; }

    /** Map a hardware thread to its core. */
    uint32_t
    coreOf(uint32_t tid) const
    {
        return (tid / cfg_.smtWays) % cfg_.numCores;
    }

    // Aggregated per-level statistics.
    const CacheLevelStats &l1iStats() const { return l1i_; }
    const CacheLevelStats &l1dStats() const { return l1d_; }
    const CacheLevelStats &l2Stats() const { return l2_; }
    const CacheLevelStats &l3Stats() const { return l3_; }
    const CacheLevelStats &l4Stats() const { return l4_; }

    /** Combined L1 (I+D) stats. */
    CacheLevelStats
    l1Stats() const
    {
        CacheLevelStats s = l1i_;
        s += l1d_;
        return s;
    }

    uint64_t l3Evictions() const { return l3Evictions_; }
    uint64_t writebacks() const { return writebacks_; }
    uint64_t backInvalidations() const { return backInvalidations_; }

    /** Clear statistics (keeps cache contents; used after warmup). */
    void resetStats();

    /** Direct cache handles for tests. */
    SetAssocCache &l1iCache(uint32_t core) { return *l1i_c_[core]; }
    SetAssocCache &l1dCache(uint32_t core) { return *l1d_c_[core]; }
    SetAssocCache &l2Cache(uint32_t core) { return *l2_c_[core]; }
    SetAssocCache &l3Cache() { return *l3_c_; }
    bool hasL4() const { return l4sa_ != nullptr || l4fa_ != nullptr; }

  private:
    HitLevel missPathData(uint32_t core, uint64_t addr, bool is_store,
                          AccessKind kind);
    HitLevel missPathInstr(uint32_t core, uint64_t pc);
    /** L3 lookup + fill; returns the servicing level (L3/L4/Memory). */
    HitLevel accessSharedLevels(uint64_t addr, bool is_store,
                                AccessKind kind);
    void handleL3Eviction(uint64_t evicted, bool dirty);
    bool l4Probe(uint64_t addr) const;
    void l4Insert(uint64_t addr);
    bool l4Access(uint64_t addr);
    bool l4Touch(uint64_t addr);

    HierarchyConfig cfg_;

    std::vector<std::unique_ptr<SetAssocCache>> l1i_c_;
    std::vector<std::unique_ptr<SetAssocCache>> l1d_c_;
    std::vector<std::unique_ptr<SetAssocCache>> l2_c_;
    std::vector<std::unique_ptr<SetAssocCache>> l2i_c_; ///< split mode
    std::unique_ptr<SetAssocCache> l3_c_;
    std::unique_ptr<SetAssocCache> l4sa_;      ///< direct-mapped L4
    std::unique_ptr<FullyAssocLruCache> l4fa_; ///< associative variant

    std::vector<StridePrefetcher> stride_;
    std::vector<StreamPrefetcher> stream_;

    CacheLevelStats l1i_, l1d_, l2_, l3_, l4_;
    uint64_t l3Evictions_ = 0;
    uint64_t writebacks_ = 0;
    uint64_t backInvalidations_ = 0;
};

} // namespace wsearch

#endif // WSEARCH_MEMSIM_HIERARCHY_HH
