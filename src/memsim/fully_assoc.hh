/**
 * @file
 * Fully-associative LRU cache backed by a hash map and an intrusive
 * doubly-linked list. Used for (a) the paper's full-associativity
 * sensitivity study (Figure 7a) at capacities where a linear way scan
 * would be impractical, and (b) the fully-associative L4 ablation
 * (Figure 14, "Associative" bars).
 */

#ifndef WSEARCH_MEMSIM_FULLY_ASSOC_HH
#define WSEARCH_MEMSIM_FULLY_ASSOC_HH

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/logging.hh"
#include "util/units.hh"

namespace wsearch {

/** Fully-associative cache with exact LRU replacement. */
class FullyAssocLruCache
{
  public:
    FullyAssocLruCache(uint64_t size_bytes, uint32_t block_bytes)
        : blockShift_(log2i(block_bytes)),
          capacity_(std::max<uint64_t>(1, size_bytes / block_bytes))
    {
        wsearch_assert(isPow2(block_bytes));
        nodes_.reserve(std::min<uint64_t>(capacity_, 1u << 20));
        map_.reserve(std::min<uint64_t>(capacity_, 1u << 20));
    }

    /**
     * Demand access; allocates on miss.
     * @param evicted byte address of the evicted block or kNoBlockFa
     * @return true on hit
     */
    bool
    access(uint64_t addr, uint64_t *evicted = nullptr)
    {
        const uint64_t block = addr >> blockShift_;
        if (evicted)
            *evicted = kNoBlockFa;
        auto it = map_.find(block);
        if (it != map_.end()) {
            moveToFront(it->second);
            return true;
        }
        insertBlock(block, evicted);
        return false;
    }

    /**
     * Lookup that refreshes LRU on hit but does not allocate on miss
     * (victim-cache read path).
     */
    bool
    touch(uint64_t addr)
    {
        auto it = map_.find(addr >> blockShift_);
        if (it == map_.end())
            return false;
        moveToFront(it->second);
        return true;
    }

    /** Lookup without state change. */
    bool
    probe(uint64_t addr) const
    {
        return map_.count(addr >> blockShift_) != 0;
    }

    /** Non-demand insert; no-op when present. */
    void
    insert(uint64_t addr, uint64_t *evicted = nullptr)
    {
        const uint64_t block = addr >> blockShift_;
        if (evicted)
            *evicted = kNoBlockFa;
        auto it = map_.find(block);
        if (it != map_.end()) {
            moveToFront(it->second);
            return;
        }
        insertBlock(block, evicted);
    }

    /** Remove a block if present. */
    bool
    invalidate(uint64_t addr)
    {
        const uint64_t block = addr >> blockShift_;
        auto it = map_.find(block);
        if (it == map_.end())
            return false;
        unlink(it->second);
        freeList_.push_back(it->second);
        map_.erase(it);
        return true;
    }

    uint64_t capacityBlocks() const { return capacity_; }
    uint64_t population() const { return map_.size(); }
    uint32_t blockBytes() const { return 1u << blockShift_; }

    static constexpr uint64_t kNoBlockFa = ~0ull;

  private:
    struct Node
    {
        uint64_t block;
        uint32_t prev;
        uint32_t next;
    };
    static constexpr uint32_t kNull = ~0u;

    void
    unlink(uint32_t n)
    {
        Node &node = nodes_[n];
        if (node.prev != kNull)
            nodes_[node.prev].next = node.next;
        else
            head_ = node.next;
        if (node.next != kNull)
            nodes_[node.next].prev = node.prev;
        else
            tail_ = node.prev;
    }

    void
    linkFront(uint32_t n)
    {
        nodes_[n].prev = kNull;
        nodes_[n].next = head_;
        if (head_ != kNull)
            nodes_[head_].prev = n;
        head_ = n;
        if (tail_ == kNull)
            tail_ = n;
    }

    void
    moveToFront(uint32_t n)
    {
        if (head_ == n)
            return;
        unlink(n);
        linkFront(n);
    }

    void
    insertBlock(uint64_t block, uint64_t *evicted)
    {
        uint32_t n;
        if (map_.size() >= capacity_) {
            // Evict LRU (tail).
            n = tail_;
            const uint64_t old_block = nodes_[n].block;
            unlink(n);
            map_.erase(old_block);
            if (evicted)
                *evicted = old_block << blockShift_;
        } else if (!freeList_.empty()) {
            n = freeList_.back();
            freeList_.pop_back();
        } else {
            n = static_cast<uint32_t>(nodes_.size());
            nodes_.push_back(Node{});
        }
        nodes_[n].block = block;
        linkFront(n);
        map_[block] = n;
    }

    uint32_t blockShift_;
    uint64_t capacity_;
    uint32_t head_ = kNull;
    uint32_t tail_ = kNull;
    std::vector<Node> nodes_;
    std::vector<uint32_t> freeList_;
    std::unordered_map<uint64_t, uint32_t> map_;
};

} // namespace wsearch

#endif // WSEARCH_MEMSIM_FULLY_ASSOC_HH
