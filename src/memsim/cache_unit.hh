/**
 * @file
 * CacheUnit: one physical cache array built from a CacheLevelSpec —
 * either a SetAssocCache or, for fullyAssociative specs, the O(1)
 * hash-map FullyAssocLruCache (a ways==sets SetAssocCache would scan
 * linearly and is impractical at the GiB capacities the paper's L4
 * study needs). The two backends expose one surface here so the
 * hierarchy, the generators, and the tests stop special-casing the
 * fully-associative path.
 *
 * Unsupported combinations are rejected at construction instead of
 * silently ignored (the old code dropped a configured ReplPolicy on
 * the floor when fullyAssociative was set): the fully-associative
 * backend implements exact LRU only and cannot way-partition.
 */

#ifndef WSEARCH_MEMSIM_CACHE_UNIT_HH
#define WSEARCH_MEMSIM_CACHE_UNIT_HH

#include <memory>

#include "memsim/fully_assoc.hh"
#include "memsim/spec.hh"

namespace wsearch {

/** One cache array (a level, or one slice of a sliced level). */
class CacheUnit
{
  public:
    /**
     * Build from @p spec with an explicit byte capacity (callers pass
     * spec.cache.sizeBytes / spec.slices for sliced levels).
     */
    CacheUnit(const CacheLevelSpec &spec, uint64_t size_bytes)
    {
        if (spec.fullyAssociative) {
            if (spec.cache.repl != ReplPolicy::LRU)
                wsearch_fatal("fully-associative caches implement "
                              "exact LRU only; configure LRU or use a "
                              "set-associative spec");
            if (spec.cache.partitionWays != 0)
                wsearch_fatal("fully-associative caches cannot be "
                              "way-partitioned");
            fa_ = std::make_unique<FullyAssocLruCache>(
                size_bytes, spec.cache.blockBytes);
        } else {
            CacheConfig c = spec.cache;
            c.sizeBytes = size_bytes;
            sa_ = std::make_unique<SetAssocCache>(c);
        }
    }

    /** Demand access; allocates on miss. @return true on hit. */
    bool
    access(uint64_t addr, bool is_store, uint64_t *evicted = nullptr,
           bool *evicted_dirty = nullptr)
    {
        if (sa_)
            return sa_->access(addr, is_store, evicted, evicted_dirty);
        // The FA backend tracks no dirty bits (its uses — the paper's
        // memory-side L4 — never write back further down).
        if (evicted_dirty)
            *evicted_dirty = false;
        return fa_->access(addr, evicted);
    }

    /** Refresh recency on hit, no allocation (victim-cache reads). */
    bool
    touch(uint64_t addr)
    {
        return sa_ ? sa_->touch(addr) : fa_->touch(addr);
    }

    /** Lookup without state change. */
    bool
    probe(uint64_t addr) const
    {
        return sa_ ? sa_->probe(addr) : fa_->probe(addr);
    }

    /** Non-demand insert (victim fill / prefetch). */
    void
    insert(uint64_t addr, bool dirty, bool prefetched,
           uint64_t *evicted = nullptr, bool *evicted_dirty = nullptr)
    {
        if (sa_) {
            sa_->insert(addr, dirty, prefetched, evicted,
                        evicted_dirty);
            return;
        }
        if (evicted_dirty)
            *evicted_dirty = false;
        fa_->insert(addr, evicted);
    }

    /** Remove a block if present; @return true when it was. */
    bool
    invalidate(uint64_t addr)
    {
        return sa_ ? sa_->invalidate(addr) : fa_->invalidate(addr);
    }

    bool fullyAssociative() const { return fa_ != nullptr; }

    /** Set-associative backend handle (tests); null when FA. */
    SetAssocCache *setAssoc() { return sa_.get(); }
    FullyAssocLruCache *fullyAssoc() { return fa_.get(); }

  private:
    std::unique_ptr<SetAssocCache> sa_;
    std::unique_ptr<FullyAssocLruCache> fa_;
};

} // namespace wsearch

#endif // WSEARCH_MEMSIM_CACHE_UNIT_HH
