#include "memsim/simulator.hh"

#include <algorithm>

namespace wsearch {

namespace {

constexpr size_t kBatch = 8192;

/** Process @p count records; returns how many were actually consumed. */
uint64_t
pump(TraceSource &src, CacheHierarchy &hier, uint64_t count)
{
    TraceRecord buf[kBatch];
    uint64_t done = 0;
    while (done < count) {
        const size_t want = static_cast<size_t>(
            std::min<uint64_t>(kBatch, count - done));
        const size_t got = src.fill(buf, want);
        if (got == 0)
            break;
        for (size_t i = 0; i < got; ++i) {
            const TraceRecord &r = buf[i];
            hier.accessInstr(r.tid, r.pc);
            if (r.hasData()) {
                hier.accessData(r.tid, r.pc, r.addr, r.isStore(),
                                r.kind);
            }
        }
        done += got;
    }
    return done;
}

/** Read the hierarchy's current counters into a SimResult. */
SimResult
harvest(const CacheHierarchy &hier, uint64_t instructions)
{
    SimResult res;
    res.instructions = instructions;
    res.l1i = hier.l1iStats();
    res.l1d = hier.l1dStats();
    res.l2 = hier.l2Stats();
    res.l3 = hier.l3Stats();
    res.l4 = hier.l4Stats();
    res.l3Evictions = hier.l3Evictions();
    res.writebacks = hier.writebacks();
    res.backInvalidations = hier.backInvalidations();
    const CoherenceStats coh = hier.cohStats();
    res.cohUpgrades = coh.upgrades;
    res.cohInvalidations = coh.invalidations;
    res.cohDirtyWritebacks = coh.dirtyWritebacks;
    return res;
}

} // namespace

SimResult
runTrace(TraceSource &src, CacheHierarchy &hier, uint64_t warmup,
         uint64_t measure)
{
    pump(src, hier, warmup);
    hier.resetStats();
    return harvest(hier, pump(src, hier, measure));
}

void
pumpSpan(CacheHierarchy &hier, const TraceRecord *rec, size_t n)
{
    for (size_t i = 0; i < n; ++i) {
        const TraceRecord &r = rec[i];
        hier.accessInstr(r.tid, r.pc);
        if (r.hasData()) {
            hier.accessData(r.tid, r.pc, r.addr, r.isStore(), r.kind);
        }
    }
}

uint64_t
pumpRange(const BufferedTrace &trace, CacheHierarchy &hier,
          uint64_t begin, uint64_t count)
{
    uint64_t done = 0;
    while (done < count) {
        const BufferedTrace::Span s =
            trace.spanAt(begin + done, count - done);
        if (s.count == 0)
            break;
        pumpSpan(hier, s.data, s.count);
        done += s.count;
    }
    return done;
}

SimResult
runTrace(const BufferedTrace &trace, CacheHierarchy &hier,
         uint64_t warmup, uint64_t measure)
{
    const uint64_t warmed = pumpRange(trace, hier, 0, warmup);
    hier.resetStats();
    return harvest(hier, pumpRange(trace, hier, warmed, measure));
}

} // namespace wsearch
