/**
 * @file
 * Trace-driven functional simulation driver: pushes records from a
 * TraceSource through a CacheHierarchy with a warmup phase, then
 * measures. Used directly by the pure miss-rate experiments (Figures
 * 6, 7, 13); the CPU-level experiments use cpu/system.hh which layers
 * branch prediction, TLBs, and Top-Down accounting on the same loop.
 */

#ifndef WSEARCH_MEMSIM_SIMULATOR_HH
#define WSEARCH_MEMSIM_SIMULATOR_HH

#include <cstdint>

#include "memsim/hierarchy.hh"
#include "trace/record.hh"

namespace wsearch {

/** Result of a functional cache simulation. */
struct SimResult
{
    uint64_t instructions = 0; ///< measured instruction count
    CacheLevelStats l1i, l1d, l2, l3, l4;
    uint64_t l3Evictions = 0;
    uint64_t writebacks = 0;
    uint64_t backInvalidations = 0;

    /** Combined L1 stats. */
    CacheLevelStats
    l1() const
    {
        CacheLevelStats s = l1i;
        s += l1d;
        return s;
    }
};

/**
 * Run @p warmup records (stats discarded), then @p measure records.
 * The source must not be exhausted before warmup + measure records.
 */
SimResult runTrace(TraceSource &src, CacheHierarchy &hier,
                   uint64_t warmup, uint64_t measure);

} // namespace wsearch

#endif // WSEARCH_MEMSIM_SIMULATOR_HH
