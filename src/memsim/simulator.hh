/**
 * @file
 * Trace-driven functional simulation driver: pushes records from a
 * TraceSource through a CacheHierarchy with a warmup phase, then
 * measures. Used directly by the pure miss-rate experiments (Figures
 * 6, 7, 13); the CPU-level experiments use cpu/system.hh which layers
 * branch prediction, TLBs, and Top-Down accounting on the same loop.
 */

#ifndef WSEARCH_MEMSIM_SIMULATOR_HH
#define WSEARCH_MEMSIM_SIMULATOR_HH

#include <cmath>
#include <cstdint>

#include "memsim/hierarchy.hh"
#include "trace/buffered_trace.hh"
#include "trace/record.hh"

namespace wsearch {

/** Result of a functional cache simulation. */
struct SimResult
{
    uint64_t instructions = 0; ///< measured instruction count
    CacheLevelStats l1i, l1d, l2, l3, l4;
    uint64_t l3Evictions = 0;
    uint64_t writebacks = 0;
    uint64_t backInvalidations = 0;
    // Coherence traffic (all zero when CoherenceProtocol::None).
    uint64_t cohUpgrades = 0;
    uint64_t cohInvalidations = 0;
    uint64_t cohDirtyWritebacks = 0;
    /**
     * Number of sampled measurement windows merged into this result
     * (0 = exact, contiguous measurement). Nonzero results come from
     * the sweep engine's opt-in sampled-interval mode and must be
     * reported as sampled estimates.
     */
    uint64_t sampledWindows = 0;
    /**
     * Windows this estimate stands for (the sum of plan weights);
     * 0 for exact runs and legacy periodic sampling. When nonzero,
     * counters are weighted totals over representedWindows windows,
     * of which only sampledWindows were simulated.
     */
    uint64_t representedWindows = 0;
    /**
     * Estimated variance of the weighted LLC(l3)-total-miss estimate
     * (0 = exact). Variances of independently sampled results add
     * under operator+=. See the band accessors below and DESIGN.md
     * "Representative sampling" for the derivation.
     */
    double l3MissVar = 0;

    /** 95% confidence half-width on the l3 total-miss estimate. */
    double
    l3MissHalfWidth95() const
    {
        return 1.96 * std::sqrt(l3MissVar);
    }

    /** Lower/upper 95% band on the l3 total-miss estimate. */
    double
    l3MissBandLo() const
    {
        const double lo = static_cast<double>(l3.totalMisses()) -
            l3MissHalfWidth95();
        return lo > 0 ? lo : 0;
    }

    double
    l3MissBandHi() const
    {
        return static_cast<double>(l3.totalMisses()) +
            l3MissHalfWidth95();
    }

    /** Band half-width relative to the estimate (0 when exact). */
    double
    bandRelHalfWidth() const
    {
        const uint64_t m = l3.totalMisses();
        return m ? l3MissHalfWidth95() / static_cast<double>(m) : 0.0;
    }

    /** Combined L1 stats. */
    CacheLevelStats
    l1() const
    {
        CacheLevelStats s = l1i;
        s += l1d;
        return s;
    }

    /** Merge another result's counters (sampled-window accumulation). */
    SimResult &
    operator+=(const SimResult &o)
    {
        instructions += o.instructions;
        l1i += o.l1i;
        l1d += o.l1d;
        l2 += o.l2;
        l3 += o.l3;
        l4 += o.l4;
        l3Evictions += o.l3Evictions;
        writebacks += o.writebacks;
        backInvalidations += o.backInvalidations;
        cohUpgrades += o.cohUpgrades;
        cohInvalidations += o.cohInvalidations;
        cohDirtyWritebacks += o.cohDirtyWritebacks;
        sampledWindows += o.sampledWindows;
        representedWindows += o.representedWindows;
        l3MissVar += o.l3MissVar;
        return *this;
    }
};

/**
 * Run @p warmup records (stats discarded), then @p measure records.
 * The source must not be exhausted before warmup + measure records.
 */
SimResult runTrace(TraceSource &src, CacheHierarchy &hier,
                   uint64_t warmup, uint64_t measure);

/**
 * Chunked-replay variant: same semantics and bit-identical counters,
 * but consumes contiguous record spans from a materialized buffer --
 * no per-batch virtual dispatch, no copy into a staging buffer, and
 * no generation cost. Replay starts at the buffer's first record.
 */
SimResult runTrace(const BufferedTrace &trace, CacheHierarchy &hier,
                   uint64_t warmup, uint64_t measure);

/**
 * Replay one contiguous record span through @p hier. The sweep
 * engine's inner loop; exposed so system-level simulators can share
 * the chunk-walking pattern.
 */
void pumpSpan(CacheHierarchy &hier, const TraceRecord *rec, size_t n);

/**
 * Replay records [@p begin, @p begin + @p count) of @p trace.
 * @return records actually replayed (less when the buffer ends).
 */
uint64_t pumpRange(const BufferedTrace &trace, CacheHierarchy &hier,
                   uint64_t begin, uint64_t count);

} // namespace wsearch

#endif // WSEARCH_MEMSIM_SIMULATOR_HH
