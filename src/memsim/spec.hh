/**
 * @file
 * Composable cache-hierarchy specification. A hierarchy is assembled
 * from per-level CacheLevelSpec building blocks (size/ways/latency, a
 * pluggable ReplPolicy, an inclusion mode, optional slice-hash
 * dispatch for the LLC, and an optional fully-associative backend)
 * by cache_gen_* factories in the style of FlexiCAS's generator
 * templates. A HierarchySpec composes the levels with a coherence
 * protocol choice; CacheHierarchy consumes it directly, and the old
 * monolithic HierarchyConfig maps onto it bit-identically through
 * HierarchySpec::fromLegacy (pinned by the compat oracle test and
 * bench_replacement's legacy-compat gate).
 *
 * Level semantics:
 *  - inclusion describes how a level relates to the levels ABOVE it
 *    (closer to the core). Inclusive LLC back-invalidates private
 *    caches on eviction; Exclusive LLC holds only private-cache
 *    victims (hits migrate the line up and out of the LLC); NINE
 *    (non-inclusive non-exclusive) is the default fill-everywhere
 *    design.
 *  - victimFill marks a memory-side victim cache (the paper's L4):
 *    filled only by evictions of the level above, misses do not
 *    allocate.
 *  - fullyAssociative selects the ways==sets configuration, backed by
 *    the O(1) hash-map + intrusive-list implementation (a linear way
 *    scan would be impractical at GiB capacities). Exact LRU only;
 *    other policies are rejected at construction.
 *  - slices > 1 statically interleaves the level into address-hashed
 *    slices of sizeBytes/slices each (LLC slice dispatch).
 */

#ifndef WSEARCH_MEMSIM_SPEC_HH
#define WSEARCH_MEMSIM_SPEC_HH

#include <cstdint>
#include <optional>

#include "memsim/cache.hh"
#include "memsim/prefetch.hh"

namespace wsearch {

struct HierarchyConfig; // legacy monolithic config (hierarchy.hh)

/** How a cache level relates to the levels above it. */
enum class InclusionMode : uint8_t {
    NINE,      ///< non-inclusive non-exclusive (fill everywhere)
    Inclusive, ///< eviction back-invalidates the upper levels
    Exclusive, ///< holds only upper-level victims; hits migrate up
};

/** Coherence metadata protocol for multi-core data sharing. */
enum class CoherenceProtocol : uint8_t {
    None, ///< the paper's assumption: negligible read-write sharing
    MSI,
    MESI, ///< adds the silent Exclusive->Modified upgrade
};

/** One composable cache level. */
struct CacheLevelSpec
{
    CacheConfig cache;
    InclusionMode inclusion = InclusionMode::NINE;
    bool fullyAssociative = false;
    uint32_t slices = 1;     ///< address-hashed slice count (LLC)
    bool victimFill = false; ///< memory-side victim cache (paper L4)
    double latencyNs = 0.0;  ///< hit latency hint for the AMAT models
};

/** Private L1 level (I or D side). */
CacheLevelSpec cache_gen_l1(uint64_t size_bytes, uint32_t block_bytes,
                            uint32_t ways,
                            ReplPolicy repl = ReplPolicy::LRU);

/** Private unified L2 level. */
CacheLevelSpec cache_gen_l2(uint64_t size_bytes, uint32_t block_bytes,
                            uint32_t ways,
                            ReplPolicy repl = ReplPolicy::LRU);

/** Shared last-level cache (optionally sliced / partitioned). */
CacheLevelSpec
cache_gen_llc(uint64_t size_bytes, uint32_t block_bytes, uint32_t ways,
              ReplPolicy repl = ReplPolicy::LRU,
              InclusionMode inclusion = InclusionMode::NINE,
              uint32_t slices = 1, uint32_t partition_ways = 0);

/** Inclusive LLC shorthand (FlexiCAS cache_gen_llc_inc). */
CacheLevelSpec cache_gen_llc_inc(uint64_t size_bytes,
                                 uint32_t block_bytes, uint32_t ways,
                                 ReplPolicy repl = ReplPolicy::LRU,
                                 uint32_t slices = 1);

/** Exclusive (victim) LLC shorthand (FlexiCAS cache_gen_l2_exc). */
CacheLevelSpec cache_gen_llc_exc(uint64_t size_bytes,
                                 uint32_t block_bytes, uint32_t ways,
                                 ReplPolicy repl = ReplPolicy::LRU,
                                 uint32_t slices = 1);

/**
 * Memory-side cache behind the LLC (the paper's eDRAM L4).
 * @p victim_fill true = the paper design (filled by LLC evictions
 * only, misses do not allocate); false = conventional
 * allocate-on-miss. Direct-mapped unless @p fully_assoc.
 */
CacheLevelSpec cache_gen_victim(uint64_t size_bytes,
                                uint32_t block_bytes,
                                bool fully_assoc = false,
                                bool victim_fill = true);

/**
 * A full hierarchy: per-core private L1-I/L1-D/L2, an optional shared
 * LLC, an optional memory-side L4, plus prefetch and coherence
 * choices. Assemble the levels with the cache_gen_* factories.
 */
struct HierarchySpec
{
    uint32_t numCores = 1;
    uint32_t smtWays = 1; ///< hardware threads sharing a core's L1/L2

    CacheLevelSpec l1i{CacheConfig{32 * KiB, 64, 8}};
    CacheLevelSpec l1d{CacheConfig{32 * KiB, 64, 8}};
    CacheLevelSpec l2{CacheConfig{256 * KiB, 64, 8}};
    /**
     * Split the unified L2 by reserving this many ways for
     * instructions (CAT-style I/D partitioning, paper §V). 0 keeps
     * the L2 unified.
     */
    uint32_t l2InstrPartitionWays = 0;

    CacheLevelSpec llc{CacheConfig{40 * MiB, 64, 20}};
    bool hasLlc = true;
    std::optional<CacheLevelSpec> l4;

    /** Directory coherence over the private data caches. None keeps
     *  the paper's coherence-free model (and the seed's counters). */
    CoherenceProtocol coherence = CoherenceProtocol::None;
    PrefetchConfig prefetch;

    /**
     * Map the legacy monolithic config onto the generators. The
     * mapping is bit-identical: a CacheHierarchy built from
     * fromLegacy(cfg) reproduces the exact counter stream of the
     * pre-generator implementation (compat oracle test).
     */
    static HierarchySpec fromLegacy(const HierarchyConfig &cfg);
};

} // namespace wsearch

#endif // WSEARCH_MEMSIM_SPEC_HH
