/**
 * @file
 * Directory-based MSI/MESI coherence metadata for multi-core runs.
 * The paper skips coherence because production search has negligible
 * read-write sharing (§III-A); this layer exists to check that claim
 * honestly for the shared heap segment: it accounts the coherence
 * traffic (upgrades, invalidations, dirty writebacks) a real protocol
 * would generate, without modeling timing.
 *
 * The directory tracks, per block, which cores' private data caches
 * may hold it (a sharer bitmask) and the protocol state of the owning
 * copy (Shared / Exclusive / Modified; MSI collapses E into S at fill
 * time). onAccess() returns the set of remote cores whose private
 * copies must be invalidated — the hierarchy performs those
 * invalidations so the cache contents stay consistent with the
 * metadata. MESI differs from MSI in exactly one observable way: a
 * store by the sole, exclusive owner upgrades E->M silently, while
 * MSI charges an upgrade message for every S->M transition.
 */

#ifndef WSEARCH_MEMSIM_COHERENCE_HH
#define WSEARCH_MEMSIM_COHERENCE_HH

#include <cstdint>
#include <unordered_map>

#include "memsim/spec.hh"
#include "util/logging.hh"

namespace wsearch {

/** Coherence traffic counters (merged into SimResult). */
struct CoherenceStats
{
    /** S->M (and MSI's first-write) upgrade messages. */
    uint64_t upgrades = 0;
    /** Invalidation messages sent to remote sharers. */
    uint64_t invalidations = 0;
    /** Modified lines flushed by a remote core's access. */
    uint64_t dirtyWritebacks = 0;

    void
    reset()
    {
        upgrades = 0;
        invalidations = 0;
        dirtyWritebacks = 0;
    }
};

/** Block-granular MSI/MESI directory over private data caches. */
class CoherenceDirectory
{
  public:
    CoherenceDirectory(CoherenceProtocol proto, uint32_t block_bytes)
        : proto_(proto), blockShift_(log2i(block_bytes))
    {
        wsearch_assert(isPow2(block_bytes));
        wsearch_assert(proto != CoherenceProtocol::None);
    }

    /**
     * Record a data access by @p core and return the bitmask of
     * OTHER cores whose private copies must be invalidated (empty on
     * loads of shared lines). Counters are updated as a side effect.
     */
    uint64_t
    onAccess(uint32_t core, uint64_t addr, bool is_store)
    {
        const uint64_t block = addr >> blockShift_;
        const uint64_t me = 1ull << core;
        Entry &e = dir_[block];
        if (e.sharers == 0) {
            // First touch: MESI grants Exclusive, MSI only Shared.
            e.sharers = me;
            e.owner = core;
            if (is_store) {
                e.state = State::M;
                // MSI has no E state: even a private first write is
                // an S->M upgrade message. MESI upgrades silently.
                if (proto_ == CoherenceProtocol::MSI)
                    ++stats_.upgrades;
            } else {
                e.state = proto_ == CoherenceProtocol::MESI
                    ? State::E : State::S;
            }
            return 0;
        }

        const uint64_t others = e.sharers & ~me;
        if (!is_store) {
            if (e.state == State::M && others) {
                // Remote modified copy: flush it, degrade to Shared.
                ++stats_.dirtyWritebacks;
                e.state = State::S;
            } else if (e.state == State::E && others) {
                e.state = State::S; // remote exclusive copy downgrades
            }
            e.sharers |= me;
            if (e.sharers != me && e.state != State::M)
                e.state = State::S;
            return 0;
        }

        // Store: invalidate every remote sharer, then own Modified.
        if (others) {
            stats_.invalidations +=
                static_cast<uint64_t>(popcount64(others));
            if (e.state == State::M)
                ++stats_.dirtyWritebacks;
            ++stats_.upgrades;
        } else if (e.state == State::S) {
            // Sole sharer but only Shared permission: upgrade.
            ++stats_.upgrades;
        } else if (e.state == State::E &&
                   proto_ == CoherenceProtocol::MSI) {
            wsearch_panic("MSI directory holds an E line");
        }
        // MESI E->M with no other sharers: silent, no message.
        e.sharers = me;
        e.owner = core;
        e.state = State::M;
        return others;
    }

    const CoherenceStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); } ///< keeps directory contents

    /** Directory state of @p addr (tests); 'I' when untracked. */
    char
    stateOf(uint64_t addr) const
    {
        auto it = dir_.find(addr >> blockShift_);
        if (it == dir_.end() || it->second.sharers == 0)
            return 'I';
        switch (it->second.state) {
        case State::S: return 'S';
        case State::E: return 'E';
        case State::M: return 'M';
        }
        return 'I';
    }

    /** Sharer bitmask of @p addr (tests). */
    uint64_t
    sharersOf(uint64_t addr) const
    {
        auto it = dir_.find(addr >> blockShift_);
        return it == dir_.end() ? 0 : it->second.sharers;
    }

  private:
    enum class State : uint8_t { S, E, M };

    struct Entry
    {
        uint64_t sharers = 0;
        State state = State::S;
        uint32_t owner = 0;
    };

    static int
    popcount64(uint64_t v)
    {
#if defined(__GNUC__) || defined(__clang__)
        return __builtin_popcountll(v);
#else
        int n = 0;
        for (; v; v &= v - 1)
            ++n;
        return n;
#endif
    }

    CoherenceProtocol proto_;
    uint32_t blockShift_;
    CoherenceStats stats_;
    std::unordered_map<uint64_t, Entry> dir_;
};

} // namespace wsearch

#endif // WSEARCH_MEMSIM_COHERENCE_HH
