/**
 * @file
 * Hardware prefetcher models, matching the paper's PLT1 description of
 * four configurable prefetchers: two for L1-D (IP-stride and next-line)
 * and two for L2 (adjacent-line and streamer) [§II-E]. Prefetches are
 * functional inserts into the target cache, so both their benefit
 * (converted demand misses) and their cost (pollution) are emergent.
 */

#ifndef WSEARCH_MEMSIM_PREFETCH_HH
#define WSEARCH_MEMSIM_PREFETCH_HH

#include <cstdint>
#include <vector>

#include "util/rng.hh"

namespace wsearch {

/** Which prefetchers are enabled and how aggressive they are. */
struct PrefetchConfig
{
    bool l1Stride = false;    ///< IP-based stride prefetcher at L1-D
    bool l1NextLine = false;  ///< next-line prefetcher at L1-D
    bool l2Adjacent = false;  ///< adjacent-line (buddy) at L2
    bool l2Stream = false;    ///< miss-stream prefetcher at L2
    uint32_t streamDegree = 2;

    bool
    any() const
    {
        return l1Stride || l1NextLine || l2Adjacent || l2Stream;
    }

    /** All four prefetchers on (the PLT1 default configuration). */
    static PrefetchConfig
    allOn()
    {
        PrefetchConfig p;
        p.l1Stride = p.l1NextLine = p.l2Adjacent = p.l2Stream = true;
        return p;
    }
};

/**
 * IP-indexed stride detector. Tracks the last address and stride per
 * (hashed) PC; after two confirmations it predicts addr + stride.
 */
class StridePrefetcher
{
  public:
    explicit StridePrefetcher(uint32_t table_size = 256)
        : entries_(table_size)
    {
    }

    /**
     * Train on a demand access and return a predicted block-aligned
     * prefetch address, or 0 when no confident prediction exists.
     */
    uint64_t
    train(uint64_t pc, uint64_t addr)
    {
        Entry &e = entries_[(mix64(pc) ^ pc) % entries_.size()];
        const uint64_t tag = pc;
        uint64_t predicted = 0;
        if (e.pcTag == tag) {
            const int64_t stride = static_cast<int64_t>(addr) -
                static_cast<int64_t>(e.lastAddr);
            if (stride == e.stride && stride != 0) {
                if (e.conf < 3)
                    ++e.conf;
            } else {
                e.stride = stride;
                e.conf = e.conf > 0 ? e.conf - 1 : 0;
            }
            if (e.conf >= 2 && e.stride != 0) {
                predicted = static_cast<uint64_t>(
                    static_cast<int64_t>(addr) + e.stride);
            }
        } else {
            e.pcTag = tag;
            e.stride = 0;
            e.conf = 0;
        }
        e.lastAddr = addr;
        return predicted;
    }

  private:
    struct Entry
    {
        uint64_t pcTag = ~0ull;
        uint64_t lastAddr = 0;
        int64_t stride = 0;
        uint8_t conf = 0;
    };
    std::vector<Entry> entries_;
};

/**
 * L2 miss-stream detector: on an ascending block-miss streak, prefetch
 * the next @p degree blocks.
 */
class StreamPrefetcher
{
  public:
    explicit StreamPrefetcher(uint32_t degree = 2) : degree_(degree) {}

    /**
     * Observe a demand miss on @p block; appends predicted blocks to
     * @p out (caller-sized scratch) and returns how many were produced.
     */
    uint32_t
    observeMiss(uint64_t block, uint64_t *out)
    {
        uint32_t n = 0;
        if (block == lastMissBlock_ + 1) {
            if (streak_ < 4)
                ++streak_;
            if (streak_ >= 1) {
                for (uint32_t i = 1; i <= degree_; ++i)
                    out[n++] = block + i;
            }
        } else if (block != lastMissBlock_) {
            streak_ = 0;
        }
        lastMissBlock_ = block;
        return n;
    }

    uint32_t degree() const { return degree_; }

  private:
    uint32_t degree_;
    uint32_t streak_ = 0;
    uint64_t lastMissBlock_ = ~0ull - 1;
};

} // namespace wsearch

#endif // WSEARCH_MEMSIM_PREFETCH_HH
