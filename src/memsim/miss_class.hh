/**
 * @file
 * Miss classification (cold / capacity / conflict) for a single cache,
 * via the classic methodology: a miss is *cold* if the block was never
 * referenced before; otherwise it is *conflict* if a fully-associative
 * LRU cache of the same capacity would have hit, else *capacity*.
 * Backs the paper's §III-C miss-type analysis.
 */

#ifndef WSEARCH_MEMSIM_MISS_CLASS_HH
#define WSEARCH_MEMSIM_MISS_CLASS_HH

#include <cstdint>
#include <unordered_set>

#include "memsim/cache.hh"
#include "memsim/fully_assoc.hh"
#include "stats/access_kind.hh"

namespace wsearch {

/** Per-kind cold/capacity/conflict counters. */
struct MissBreakdown
{
    uint64_t cold[kNumAccessKinds] = {};
    uint64_t capacity[kNumAccessKinds] = {};
    uint64_t conflict[kNumAccessKinds] = {};
    uint64_t hits = 0;
    uint64_t accesses = 0;

    uint64_t
    totalCold() const
    {
        uint64_t t = 0;
        for (auto v : cold)
            t += v;
        return t;
    }

    uint64_t
    totalCapacity() const
    {
        uint64_t t = 0;
        for (auto v : capacity)
            t += v;
        return t;
    }

    uint64_t
    totalConflict() const
    {
        uint64_t t = 0;
        for (auto v : conflict)
            t += v;
        return t;
    }
};

/**
 * Classifying wrapper around one cache. Feed it the same reference
 * stream the real cache at this level sees.
 */
class MissClassifier
{
  public:
    explicit MissClassifier(const CacheConfig &cfg)
        : cache_(cfg), shadow_(cfg.sizeBytes, cfg.blockBytes),
          blockShift_(log2i(cfg.blockBytes))
    {
    }

    /** Access; classifies any miss. */
    void
    access(uint64_t addr, AccessKind kind)
    {
        ++stats_.accesses;
        const bool hit = cache_.access(addr, false);
        const bool shadow_hit = shadow_.access(addr);
        const uint64_t block = addr >> blockShift_;
        const bool seen = !touched_.insert(block).second;
        if (hit) {
            ++stats_.hits;
            return;
        }
        const auto k = static_cast<uint32_t>(kind);
        if (!seen)
            ++stats_.cold[k];
        else if (shadow_hit)
            ++stats_.conflict[k];
        else
            ++stats_.capacity[k];
    }

    const MissBreakdown &breakdown() const { return stats_; }

  private:
    SetAssocCache cache_;
    FullyAssocLruCache shadow_;
    uint32_t blockShift_;
    std::unordered_set<uint64_t> touched_;
    MissBreakdown stats_;
};

} // namespace wsearch

#endif // WSEARCH_MEMSIM_MISS_CLASS_HH
