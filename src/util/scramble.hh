/**
 * @file
 * Bijective address scramblers. The trace generators draw Zipf-distributed
 * block ranks; a scrambler maps rank -> block index bijectively so that
 * hot blocks are scattered across the address space (as in a real heap)
 * instead of clustered, without storing a permutation table.
 */

#ifndef WSEARCH_UTIL_SCRAMBLE_HH
#define WSEARCH_UTIL_SCRAMBLE_HH

#include <cstdint>

#include "util/logging.hh"
#include "util/units.hh"

namespace wsearch {

/**
 * Invertible mixing permutation over [0, 2^bits). Uses multiply by an odd
 * constant and xor-shift folding, both invertible modulo 2^bits, so the
 * mapping is a true permutation of the domain.
 */
class BitMixPermutation
{
  public:
    /** @param bits domain is [0, 2^bits); bits in [1, 63]. */
    explicit BitMixPermutation(uint32_t bits, uint64_t salt = 0)
        : bits_(bits), mask_((bits >= 64) ? ~0ull : ((1ull << bits) - 1)),
          mult_((0x9e3779b97f4a7c15ull ^ (salt * 0xff51afd7ed558ccdull))
                | 1ull)
    {
        wsearch_assert(bits >= 1 && bits <= 63);
    }

    /** Map rank @p x to its scrambled position. */
    uint64_t
    apply(uint64_t x) const
    {
        x &= mask_;
        x = (x * mult_) & mask_;
        x ^= x >> (bits_ / 2 + 1);
        x = (x * 0xc2b2ae3d27d4eb4full) & mask_;
        x ^= x >> (bits_ / 2 + 1);
        return x & mask_;
    }

    uint64_t domainSize() const { return mask_ + 1; }

  private:
    uint32_t bits_;
    uint64_t mask_;
    uint64_t mult_;
};

/**
 * Scrambler over an arbitrary (not necessarily power-of-two) domain
 * [0, n) via cycle-walking a power-of-two permutation: apply the
 * permutation repeatedly until the result falls inside the domain.
 * Expected iterations < 2.
 */
class DomainScrambler
{
  public:
    explicit DomainScrambler(uint64_t n, uint64_t salt = 0)
        : n_(n), perm_(n <= 2 ? 1 : log2i(nextPow2(n)), salt)
    {
        wsearch_assert(n >= 1);
    }

    uint64_t
    apply(uint64_t x) const
    {
        wsearch_assert(x < n_);
        uint64_t y = perm_.apply(x);
        while (y >= n_)
            y = perm_.apply(y);
        return y;
    }

    uint64_t domainSize() const { return n_; }

  private:
    uint64_t n_;
    BitMixPermutation perm_;
};

} // namespace wsearch

#endif // WSEARCH_UTIL_SCRAMBLE_HH
