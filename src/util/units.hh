/**
 * @file
 * Size/capacity unit helpers and small bit-manipulation utilities used
 * throughout the wsearch libraries.
 */

#ifndef WSEARCH_UTIL_UNITS_HH
#define WSEARCH_UTIL_UNITS_HH

#include <cstdint>
#include <string>

namespace wsearch {

/** Number of bytes in one binary kilobyte. */
constexpr uint64_t KiB = 1024ull;
/** Number of bytes in one binary megabyte. */
constexpr uint64_t MiB = 1024ull * KiB;
/** Number of bytes in one binary gigabyte. */
constexpr uint64_t GiB = 1024ull * MiB;

/** Return true if @p x is a (non-zero) power of two. */
constexpr bool
isPow2(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Integer log2 of a power of two (undefined for non powers of two). */
constexpr uint32_t
log2i(uint64_t x)
{
    uint32_t r = 0;
    while (x > 1) {
        x >>= 1;
        ++r;
    }
    return r;
}

/** Round @p x down to a multiple of power-of-two @p align. */
constexpr uint64_t
alignDown(uint64_t x, uint64_t align)
{
    return x & ~(align - 1);
}

/** Round @p x up to a multiple of power-of-two @p align. */
constexpr uint64_t
alignUp(uint64_t x, uint64_t align)
{
    return (x + align - 1) & ~(align - 1);
}

/** Smallest power of two >= @p x (x must be >= 1). */
constexpr uint64_t
nextPow2(uint64_t x)
{
    uint64_t p = 1;
    while (p < x)
        p <<= 1;
    return p;
}

/** Integer ceiling division. */
constexpr uint64_t
ceilDiv(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

/**
 * Format a byte count as a human-readable string with binary units,
 * e.g. "45 MiB", "1.5 GiB", "512 B".
 */
inline std::string
formatBytes(uint64_t bytes)
{
    auto fmt = [](double v, const char *unit) {
        char buf[32];
        if (v == static_cast<uint64_t>(v)) {
            snprintf(buf, sizeof(buf), "%llu %s",
                     (unsigned long long)v, unit);
        } else {
            snprintf(buf, sizeof(buf), "%.2f %s", v, unit);
        }
        return std::string(buf);
    };
    if (bytes >= GiB)
        return fmt(static_cast<double>(bytes) / GiB, "GiB");
    if (bytes >= MiB)
        return fmt(static_cast<double>(bytes) / MiB, "MiB");
    if (bytes >= KiB)
        return fmt(static_cast<double>(bytes) / KiB, "KiB");
    return fmt(static_cast<double>(bytes), "B");
}

} // namespace wsearch

#endif // WSEARCH_UTIL_UNITS_HH
