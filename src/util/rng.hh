/**
 * @file
 * Fast deterministic pseudo-random number generation (xoshiro256**) with
 * splitmix64 seeding. All stochastic components in wsearch draw from this
 * generator so runs are exactly reproducible from a seed.
 */

#ifndef WSEARCH_UTIL_RNG_HH
#define WSEARCH_UTIL_RNG_HH

#include <cstdint>

namespace wsearch {

/** splitmix64 step; also a good 64-bit mixing (hash) function. */
constexpr uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Stateless 64-bit mix of a single value (for hashing). */
constexpr uint64_t
mix64(uint64_t x)
{
    uint64_t s = x;
    return splitmix64(s);
}

/**
 * xoshiro256** generator. Small, fast, passes BigCrush; suitable for the
 * hundreds of millions of draws per experiment used by the trace
 * generators.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via splitmix64. */
    explicit Rng(uint64_t seed = 0x9b1a5bul)
    {
        uint64_t sm = seed;
        for (auto &word : s)
            word = splitmix64(sm);
    }

    /** Next raw 64-bit value. */
    uint64_t
    nextU64()
    {
        const uint64_t result = rotl(s[1] * 5, 7) * 9;
        const uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound) for bound >= 1 (unbiased enough). */
    uint64_t
    nextRange(uint64_t bound)
    {
        // 128-bit multiply trick (Lemire); bias negligible for our use.
        return static_cast<uint64_t>(
            (static_cast<unsigned __int128>(nextU64()) * bound) >> 64);
    }

    /** Bernoulli draw with probability @p p. */
    bool
    nextBool(double p)
    {
        return nextDouble() < p;
    }

  private:
    static constexpr uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t s[4];
};

} // namespace wsearch

#endif // WSEARCH_UTIL_RNG_HH
