#include "util/table.hh"

#include <cstdio>

#include "util/env.hh"
#include "util/logging.hh"

namespace wsearch {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    wsearch_assert(!headers_.empty());
}

void
Table::addRow(std::vector<std::string> cells)
{
    wsearch_assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::toString() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            if (row[c].size() > widths[c])
                widths[c] = row[c].size();

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string out = "|";
        for (size_t c = 0; c < row.size(); ++c) {
            out += " " + row[c];
            out.append(widths[c] - row[c].size() + 1, ' ');
            out += "|";
        }
        out += "\n";
        return out;
    };

    std::string out = renderRow(headers_);
    out += "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
        out.append(widths[c] + 2, '-');
        out += "|";
    }
    out += "\n";
    for (const auto &row : rows_)
        out += renderRow(row);
    return out;
}

std::string
Table::toCsv() const
{
    auto cell = [](const std::string &v) {
        if (v.find(',') == std::string::npos &&
            v.find('"') == std::string::npos)
            return v;
        std::string out = "\"";
        for (const char c : v) {
            if (c == '"')
                out += '"';
            out += c;
        }
        out += '"';
        return out;
    };
    auto row = [&](const std::vector<std::string> &cells) {
        std::string out;
        for (size_t i = 0; i < cells.size(); ++i) {
            if (i)
                out += ',';
            out += cell(cells[i]);
        }
        out += '\n';
        return out;
    };
    std::string out = row(headers_);
    for (const auto &r : rows_)
        out += row(r);
    return out;
}

void
Table::print() const
{
    // WSEARCH_CSV=1 switches bench output to machine-readable CSV.
    if (envU64("WSEARCH_CSV", 0))
        std::fputs(toCsv().c_str(), stdout);
    else
        std::fputs(toString().c_str(), stdout);
}

std::string
Table::fmt(double v, int precision)
{
    char buf[64];
    snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::fmtPct(double fraction, int precision)
{
    char buf[64];
    snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
Table::fmtInt(uint64_t v)
{
    char buf[32];
    snprintf(buf, sizeof(buf), "%llu", (unsigned long long)v);
    return buf;
}

} // namespace wsearch
