#include "util/env.hh"

#include <cstdlib>
#include <cstring>

namespace wsearch {

uint64_t
envU64(const char *name, uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v)
        return fallback;
    return parsed;
}

bool
fastMode()
{
    return envU64("WSEARCH_FAST", 0) != 0;
}

uint64_t
traceBudget(uint64_t nominal)
{
    const uint64_t override_records = envU64("WSEARCH_RECORDS", 0);
    if (override_records)
        return override_records;
    return fastMode() ? nominal / 8 : nominal;
}

} // namespace wsearch
