/**
 * @file
 * O(1) Zipf-distributed sampling via rejection-inversion (Hormann &
 * Derflinger, "Rejection-inversion to generate variates from monotone
 * discrete distributions"). Used for term popularity, document
 * popularity, heap-block reuse, and code-path selection.
 */

#ifndef WSEARCH_UTIL_ZIPF_HH
#define WSEARCH_UTIL_ZIPF_HH

#include <cstdint>

#include "util/rng.hh"

namespace wsearch {

/**
 * Samples ranks in [0, n) with P(rank k) proportional to 1/(k+1)^theta.
 * Constant time per sample independent of n; supports theta in (0, ~10],
 * including theta == 1.
 */
class ZipfSampler
{
  public:
    /**
     * @param n     number of items (>= 1)
     * @param theta skew; larger means more concentrated on low ranks
     */
    ZipfSampler(uint64_t n, double theta);

    /** Draw one rank in [0, n) using @p rng. */
    uint64_t sample(Rng &rng) const;

    uint64_t numItems() const { return n_; }
    double theta() const { return theta_; }

  private:
    double h(double x) const;
    double hInverse(double x) const;

    uint64_t n_;
    double theta_;
    double hxm_;       // h(n + 0.5)
    double hx0_;       // h(0.5) shifted
    double s_;         // rejection shortcut threshold
};

} // namespace wsearch

#endif // WSEARCH_UTIL_ZIPF_HH
