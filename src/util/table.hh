/**
 * @file
 * Minimal ASCII table printer used by the bench harnesses to emit
 * paper-style tables and figure series. Cells are strings; columns are
 * auto-sized; output is GitHub-flavored markdown so bench output can be
 * pasted into EXPERIMENTS.md directly.
 */

#ifndef WSEARCH_UTIL_TABLE_HH
#define WSEARCH_UTIL_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace wsearch {

/** A simple row/column table with markdown rendering. */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Render to a markdown table string. */
    std::string toString() const;

    /** Render as CSV (used when WSEARCH_CSV is set). */
    std::string toCsv() const;

    /** Render to stdout. */
    void print() const;

    size_t numRows() const { return rows_.size(); }

    /** Format helpers for cells. */
    static std::string fmt(double v, int precision = 2);
    static std::string fmtPct(double fraction, int precision = 1);
    static std::string fmtInt(uint64_t v);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace wsearch

#endif // WSEARCH_UTIL_TABLE_HH
