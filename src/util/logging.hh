/**
 * @file
 * Error and status reporting helpers in the spirit of gem5's logging.hh:
 * panic() for internal invariant violations, fatal() for user errors,
 * warn()/inform() for status messages.
 */

#ifndef WSEARCH_UTIL_LOGGING_HH
#define WSEARCH_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>

namespace wsearch {

/**
 * Abort due to an internal library bug. Use when a condition that should
 * never happen (regardless of user input) is detected.
 */
[[noreturn]] inline void
panicImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg, file, line);
    std::abort();
}

/**
 * Exit due to a user-facing configuration error (bad parameters, invalid
 * workload definitions, etc.). Not a library bug.
 */
[[noreturn]] inline void
fatalImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg, file, line);
    std::exit(1);
}

inline void
warnImpl(const char *msg)
{
    std::fprintf(stderr, "warn: %s\n", msg);
}

inline void
informImpl(const char *msg)
{
    std::fprintf(stderr, "info: %s\n", msg);
}

} // namespace wsearch

#define wsearch_panic(msg) ::wsearch::panicImpl(__FILE__, __LINE__, msg)
#define wsearch_fatal(msg) ::wsearch::fatalImpl(__FILE__, __LINE__, msg)
#define wsearch_warn(msg) ::wsearch::warnImpl(msg)
#define wsearch_inform(msg) ::wsearch::informImpl(msg)

/** Assert an invariant that indicates a library bug when violated. */
#define wsearch_assert(cond)                                               \
    do {                                                                   \
        if (!(cond))                                                       \
            wsearch_panic("assertion failed: " #cond);                     \
    } while (0)

#endif // WSEARCH_UTIL_LOGGING_HH
