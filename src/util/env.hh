/**
 * @file
 * Environment-driven experiment budgets. The bench harnesses call
 * traceBudget() to decide how many trace records to simulate per
 * experiment point; WSEARCH_FAST=1 shrinks budgets for smoke runs and
 * WSEARCH_RECORDS=<n> overrides them entirely.
 */

#ifndef WSEARCH_UTIL_ENV_HH
#define WSEARCH_UTIL_ENV_HH

#include <cstdint>

namespace wsearch {

/** Read an unsigned integer env var, or @p fallback when unset/invalid. */
uint64_t envU64(const char *name, uint64_t fallback);

/** True when WSEARCH_FAST is set to a nonzero value. */
bool fastMode();

/**
 * Scale a nominal record budget: full value normally, 1/8 in fast mode,
 * or the WSEARCH_RECORDS override when present.
 */
uint64_t traceBudget(uint64_t nominal);

} // namespace wsearch

#endif // WSEARCH_UTIL_ENV_HH
