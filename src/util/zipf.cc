#include "util/zipf.hh"

#include <cmath>

#include "util/logging.hh"

namespace wsearch {

namespace {

/** (x^(1-theta) - 1) / (1 - theta), continuous at theta == 1 (-> ln x). */
double
hIntegral(double x, double theta)
{
    const double log_x = std::log(x);
    const double t = (1.0 - theta) * log_x;
    // expm1-based form is numerically stable near theta == 1.
    if (std::fabs(t) < 1e-8)
        return log_x * (1.0 + t / 2.0 + t * t / 6.0);
    return std::expm1(t) / (1.0 - theta);
}

/** Inverse of hIntegral. */
double
hIntegralInverse(double x, double theta)
{
    double t = x * (1.0 - theta);
    if (t < -1.0)
        t = -1.0; // guard against rounding
    if (std::fabs(t) < 1e-8)
        return std::exp(x * (1.0 - t / 2.0 + t * t / 3.0));
    return std::exp(std::log1p(t) / (1.0 - theta));
}

} // namespace

ZipfSampler::ZipfSampler(uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    wsearch_assert(n >= 1);
    wsearch_assert(theta > 0.0);
    hxm_ = hIntegral(static_cast<double>(n) + 0.5, theta_);
    hx0_ = hIntegral(1.5, theta_) - 1.0;
    s_ = 2.0 - hIntegralInverse(hIntegral(2.5, theta_) - std::pow(2.0,
                                -theta_), theta_);
}

double
ZipfSampler::h(double x) const
{
    return hIntegral(x, theta_);
}

double
ZipfSampler::hInverse(double x) const
{
    return hIntegralInverse(x, theta_);
}

uint64_t
ZipfSampler::sample(Rng &rng) const
{
    if (n_ == 1)
        return 0;
    // Rejection-inversion main loop; expected < 2 iterations.
    while (true) {
        const double u = hxm_ + rng.nextDouble() * (hx0_ - hxm_);
        const double x = hInverse(u);
        uint64_t k = static_cast<uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        else if (k > n_)
            k = n_;
        const double kd = static_cast<double>(k);
        if (kd - x <= s_ ||
            u >= h(kd + 0.5) - std::exp(-theta_ * std::log(kd))) {
            return k - 1; // ranks are 0-based externally
        }
    }
}

} // namespace wsearch
