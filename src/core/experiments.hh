/**
 * @file
 * Shared experiment-harness helpers used by the bench binaries: run a
 * (workload, platform, hierarchy-variation) combination through the
 * full system simulator with environment-scaled record budgets, and
 * produce the simulation-backed inputs (hit-rate curves) the
 * analytical models consume.
 */

#ifndef WSEARCH_CORE_EXPERIMENTS_HH
#define WSEARCH_CORE_EXPERIMENTS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/hit_curve.hh"
#include "core/platform.hh"
#include "cpu/system.hh"
#include "memsim/sweep.hh"
#include "trace/profile.hh"
#include "util/env.hh"

namespace wsearch {

/** Variations applied on top of a platform's default hierarchy. */
struct RunOptions
{
    uint32_t cores = 16;
    uint32_t smtWays = 1;
    uint32_t l3PartitionWays = 0;     ///< CAT (0 = all ways)
    std::optional<uint64_t> l3Bytes;  ///< override total L3 size
    std::optional<uint32_t> l3Ways;   ///< override L3 associativity
    std::optional<uint32_t> l1Ways;   ///< override L1-I/L1-D associativity
    std::optional<uint32_t> l2Ways;   ///< override L2 associativity
    std::optional<uint32_t> blockBytes; ///< override all block sizes
    std::optional<CacheLevelSpec> l4;   ///< cache_gen_victim spec
    PrefetchConfig prefetch;
    bool modelTlb = false;
    bool hugePages = false;
    /** LLC inclusion mode (Inclusive = legacy inclusiveL3). */
    InclusionMode llcInclusion = InclusionMode::NINE;
    std::optional<ReplPolicy> llcRepl; ///< override LLC replacement
    uint32_t llcSlices = 1;            ///< address-hashed LLC slices
    CoherenceProtocol coherence = CoherenceProtocol::None;
    uint64_t warmupRecords = 0;  ///< 0: derived from measure budget
    uint64_t measureRecords = 20'000'000; ///< pre-scaling nominal
};

/** Build the full SystemConfig one RunOptions variation implies. */
SystemConfig makeSystemConfig(const WorkloadProfile &profile,
                              const PlatformConfig &platform,
                              const RunOptions &opt);

/** Environment-scaled (warmup, measure) record budgets of @p opt. */
struct RecordBudget
{
    uint64_t warmup = 0;
    uint64_t measure = 0;
    uint64_t total() const { return warmup + measure; }
};
RecordBudget recordBudget(const RunOptions &opt);

/** Run one configuration end to end. */
SystemResult runWorkload(const WorkloadProfile &profile,
                         const PlatformConfig &platform,
                         const RunOptions &opt);

/** Knobs of a parallel workload sweep (see runWorkloadSweep). */
struct SweepControl
{
    uint32_t threads = 0;      ///< worker threads; 0 = simThreads()
    /**
     * Representative-window sampling policy. kUniform/kClustered (with
     * rep enabled) replace each variation's contiguous replay with a
     * planned representative-window replay carrying a confidence band;
     * kOff falls back to @p sampling when that is enabled, else exact.
     */
    SamplingPolicy policy = SamplingPolicy::kOff;
    RepresentativeSampling rep; ///< kUniform/kClustered knobs
    SampledIntervals sampling;  ///< legacy periodic quick-look mode
};

/**
 * The parallel sweep: run every RunOptions variation against the same
 * workload/platform concurrently. The trace is generated ONCE per
 * distinct hardware-thread count (traces depend on cores x smtWays)
 * into a shared immutable BufferedTrace; each variation then replays
 * the shared buffer through its own private simulator on a worker
 * thread. Results are positionally matched to @p options and
 * bit-identical to serial runWorkload calls at any thread count --
 * unless @p control.sampling is enabled, which replaces each
 * variation's contiguous warmup+measure replay with periodic sampled
 * windows (results then carry sampledWindows != 0).
 */
std::vector<SystemResult>
runWorkloadSweep(const WorkloadProfile &profile,
                 const PlatformConfig &platform,
                 const std::vector<RunOptions> &options,
                 const SweepControl &control = {});

/** One independent (workload, platform, variation) job. */
struct WorkloadSpec
{
    WorkloadProfile profile;
    PlatformConfig platform;
    RunOptions opt;
};

/**
 * Run heterogeneous workload jobs in parallel (e.g. the Table I
 * rows). Each job generates its own trace -- nothing is shared, so
 * results are bit-identical to serial runWorkload calls unless
 * @p control.sampling is enabled (sampled quick-look estimates).
 */
std::vector<SystemResult>
runWorkloads(const std::vector<WorkloadSpec> &specs,
             const SweepControl &control);
std::vector<SystemResult>
runWorkloads(const std::vector<WorkloadSpec> &specs,
             uint32_t threads = 0);

/**
 * Sweep total L3 capacity and return the overall L3 hit-rate curve
 * (as seen by the QPS models). @p sizes in bytes.
 */
HitRateCurve l3HitCurve(const WorkloadProfile &profile,
                        const PlatformConfig &platform, RunOptions opt,
                        const std::vector<uint64_t> &sizes);

/**
 * Sweep L4 capacity at a fixed L3 and return the L4 hit-rate curve.
 */
HitRateCurve l4HitCurve(const WorkloadProfile &profile,
                        const PlatformConfig &platform, RunOptions opt,
                        const std::vector<uint64_t> &sizes,
                        bool fully_associative);

/** Print the standard bench banner. */
void printBanner(const std::string &experiment_id,
                 const std::string &description);

} // namespace wsearch

#endif // WSEARCH_CORE_EXPERIMENTS_HH
