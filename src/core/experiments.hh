/**
 * @file
 * Shared experiment-harness helpers used by the bench binaries: run a
 * (workload, platform, hierarchy-variation) combination through the
 * full system simulator with environment-scaled record budgets, and
 * produce the simulation-backed inputs (hit-rate curves) the
 * analytical models consume.
 */

#ifndef WSEARCH_CORE_EXPERIMENTS_HH
#define WSEARCH_CORE_EXPERIMENTS_HH

#include <cstdint>
#include <optional>
#include <string>

#include "core/hit_curve.hh"
#include "core/platform.hh"
#include "cpu/system.hh"
#include "trace/profile.hh"
#include "util/env.hh"

namespace wsearch {

/** Variations applied on top of a platform's default hierarchy. */
struct RunOptions
{
    uint32_t cores = 16;
    uint32_t smtWays = 1;
    uint32_t l3PartitionWays = 0;     ///< CAT (0 = all ways)
    std::optional<uint64_t> l3Bytes;  ///< override total L3 size
    std::optional<uint32_t> l3Ways;   ///< override L3 associativity
    std::optional<uint32_t> blockBytes; ///< override all block sizes
    std::optional<L4Config> l4;
    PrefetchConfig prefetch;
    bool modelTlb = false;
    bool hugePages = false;
    bool inclusiveL3 = false;
    uint64_t warmupRecords = 0;  ///< 0: derived from measure budget
    uint64_t measureRecords = 20'000'000; ///< pre-scaling nominal
};

/** Run one configuration end to end. */
SystemResult runWorkload(const WorkloadProfile &profile,
                         const PlatformConfig &platform,
                         const RunOptions &opt);

/**
 * Sweep total L3 capacity and return the overall L3 hit-rate curve
 * (as seen by the QPS models). @p sizes in bytes.
 */
HitRateCurve l3HitCurve(const WorkloadProfile &profile,
                        const PlatformConfig &platform, RunOptions opt,
                        const std::vector<uint64_t> &sizes);

/**
 * Sweep L4 capacity at a fixed L3 and return the L4 hit-rate curve.
 */
HitRateCurve l4HitCurve(const WorkloadProfile &profile,
                        const PlatformConfig &platform, RunOptions opt,
                        const std::vector<uint64_t> &sizes,
                        bool fully_associative);

/** Print the standard bench banner. */
void printBanner(const std::string &experiment_id,
                 const std::string &description);

} // namespace wsearch

#endif // WSEARCH_CORE_EXPERIMENTS_HH
