/**
 * @file
 * Power and energy model for the paper's "Power and Energy"
 * discussion (§IV-C): each core contributes 3.77% of baseline socket
 * power; the cache-for-cores trade is energy-neutral (linear power
 * and linear performance cancel); and the L4 slightly reduces memory
 * power because eDRAM accesses cost much less energy than DRAM while
 * most of the L4's energy benefit comes through performance
 * (joules/query = power / QPS).
 */

#ifndef WSEARCH_CORE_POWER_MODEL_HH
#define WSEARCH_CORE_POWER_MODEL_HH

#include <cstdint>

namespace wsearch {

/** Socket-level power/energy accounting. */
struct PowerModel
{
    double baselineSocketWatts = 145.0; ///< 18-core PLT1-class TDP
    double corePowerShare = 0.0377;     ///< per paper: 3.77% per core
    /** Memory-system power at the baseline (DRAM channels). */
    double memorySystemWatts = 18.0;
    /** Energy per 64 B access (pJ -> relative units suffice). */
    double dramAccessNj = 20.0;
    double edramAccessNj = 5.0; ///< eDRAM is far cheaper [10][54]

    /** Socket power with @p cores active (L3 not power-gated, per
     *  the paper's measurement caveat). */
    double
    socketWatts(uint32_t cores) const
    {
        const double non_core =
            baselineSocketWatts * (1.0 - corePowerShare * 18.0);
        return non_core + baselineSocketWatts * corePowerShare * cores;
    }

    /** Power increase of an n-core design over the 18-core baseline. */
    double
    powerIncrease(uint32_t cores) const
    {
        return socketWatts(cores) / socketWatts(18) - 1.0;
    }

    /**
     * Memory-system power scale when an L4 filters @p l4_hit_rate of
     * DRAM accesses (those become eDRAM accesses).
     */
    double
    memoryPowerScale(double l4_hit_rate) const
    {
        return (1.0 - l4_hit_rate) +
            l4_hit_rate * (edramAccessNj / dramAccessNj);
    }

    /**
     * Relative energy per query: (relative power) / (relative QPS).
     * < 1 means the design is more energy-efficient than baseline.
     */
    double
    energyPerQuery(uint32_t cores, double relative_qps,
                   double l4_hit_rate = 0.0) const
    {
        const double core_power = socketWatts(cores);
        const double mem_power =
            memorySystemWatts * memoryPowerScale(l4_hit_rate);
        const double base_power =
            socketWatts(18) + memorySystemWatts;
        const double rel_power =
            (core_power + mem_power) / base_power;
        return rel_power / relative_qps;
    }
};

} // namespace wsearch

#endif // WSEARCH_CORE_POWER_MODEL_HH
