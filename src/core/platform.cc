#include "core/platform.hh"

namespace wsearch {

PlatformConfig
PlatformConfig::plt1()
{
    PlatformConfig p;
    p.name = "PLT1";
    p.microarchitecture = "Intel Haswell";
    p.sockets = 2;
    p.coresPerSocket = 18;
    p.smtWays = 2;
    p.cacheBlockBytes = 64;
    p.l1iBytes = 32 * KiB;
    p.l1dBytes = 32 * KiB;
    p.l2Bytes = 256 * KiB;
    p.l3Bytes = 45 * MiB;
    p.l3Ways = 20;
    p.width = 4;
    p.freqGhz = 2.5;
    p.l3HitNs = 23.0;
    p.memNs = 123.0;
    p.smt.eta2 = 0.80;
    p.tlbBase = TlbConfig{};
    p.tlbHuge = TlbConfig::huge2M();
    return p;
}

PlatformConfig
PlatformConfig::plt2()
{
    PlatformConfig p;
    p.name = "PLT2";
    p.microarchitecture = "IBM POWER8";
    p.sockets = 2;
    p.coresPerSocket = 12;
    p.smtWays = 8;
    p.cacheBlockBytes = 128;
    p.l1iBytes = 32 * KiB;
    p.l1dBytes = 64 * KiB;
    p.l2Bytes = 512 * KiB;
    p.l3Bytes = 96 * MiB;
    p.l3Ways = 8;
    p.width = 8;
    p.freqGhz = 3.5;
    p.l3HitNs = 27.0;
    p.memNs = 115.0;
    p.smt.eta2 = 0.92;
    p.smt.eta4 = 0.88;
    p.smt.eta8 = 0.79;
    // POWER8-style engine: deep L2 streams only; the 128 B blocks
    // already capture the adjacent/next-line spatial locality, so
    // those components mostly pollute.
    p.prefetchEngine = PrefetchConfig{};
    p.prefetchEngine.l2Stream = true;
    p.prefetchEngine.streamDegree = 8;
    p.tlbBase = TlbConfig::base64K();
    p.tlbHuge = TlbConfig::huge16M();
    return p;
}

HierarchySpec
PlatformConfig::hierarchy(uint32_t cores, uint32_t smt_ways,
                          uint32_t l3_partition_ways) const
{
    HierarchySpec h;
    h.numCores = cores;
    h.smtWays = smt_ways;
    h.l1i = cache_gen_l1(l1iBytes, cacheBlockBytes, 8);
    h.l1d = cache_gen_l1(l1dBytes, cacheBlockBytes, 8);
    h.l2 = cache_gen_l2(l2Bytes, cacheBlockBytes, 8);
    h.llc = cache_gen_llc(l3Bytes, cacheBlockBytes, l3Ways,
                          ReplPolicy::LRU, InclusionMode::NINE,
                          /*slices=*/1, l3_partition_ways);
    h.llc.latencyNs = l3HitNs; // documentation; timing uses core params
    return h;
}

CoreModelParams
PlatformConfig::coreParams(const WorkloadProfile &profile) const
{
    CoreModelParams c;
    c.width = width;
    c.freqGhz = freqGhz;
    c.l3HitNs = l3HitNs;
    c.memNs = memNs;
    c.tlbWalkNs = tlbBase.walkNs;
    c.tweaks = profile.cpu;
    return c;
}

SystemConfig
PlatformConfig::system(const WorkloadProfile &profile, uint32_t cores,
                       uint32_t smt_ways, uint32_t l3_partition_ways,
                       std::optional<CacheLevelSpec> l4) const
{
    SystemConfig s;
    s.hierarchy = hierarchy(cores, smt_ways, l3_partition_ways);
    s.hierarchy.l4 = l4;
    s.core = coreParams(profile);
    s.dtlb = tlbBase;
    return s;
}

} // namespace wsearch
