/**
 * @file
 * Iso-area trade-off model (paper §IV-B): one core plus its private
 * caches occupies roughly the area of a 4 MiB slice of L3 (verified by
 * the paper against Haswell die photos), so total area in "equivalent
 * L3 MiB" is A = n * (s + c), with n cores, s = 4 MiB per core, and c
 * MiB of L3 per core.
 */

#ifndef WSEARCH_CORE_AREA_MODEL_HH
#define WSEARCH_CORE_AREA_MODEL_HH

#include <cmath>
#include <cstdint>

namespace wsearch {

/** Area accounting in equivalent L3 MiB. */
struct AreaModel
{
    double coreAreaMib = 4.0; ///< one core ~ 4 MiB of L3 (paper [7])

    /** Total area of n cores with c MiB of L3 per core. */
    double
    area(double cores, double l3_mib_per_core) const
    {
        return cores * (coreAreaMib + l3_mib_per_core);
    }

    /**
     * Cores that fit in @p area_mib with c MiB of L3 per core
     * (fractional: the paper's non-quantized upper bound).
     */
    double
    coresForArea(double area_mib, double l3_mib_per_core) const
    {
        return area_mib / (coreAreaMib + l3_mib_per_core);
    }

    /** Whole-core (quantized) variant; wastes leftover transistors,
     *  which the paper later spends on the L4 controller. */
    uint32_t
    coresForAreaQuantized(double area_mib, double l3_mib_per_core) const
    {
        return static_cast<uint32_t>(
            std::floor(coresForArea(area_mib, l3_mib_per_core)));
    }
};

} // namespace wsearch

#endif // WSEARCH_CORE_AREA_MODEL_HH
