/**
 * @file
 * The paper's first optimization (§IV-B): repurpose over-provisioned
 * L3 transistors as cores under an iso-area constraint. Reproduces
 * Figures 10 and 11 from an L3 hit-rate curve plus the area and IPC
 * models.
 */

#ifndef WSEARCH_CORE_OPTIMIZER_HH
#define WSEARCH_CORE_OPTIMIZER_HH

#include <cstdint>
#include <vector>

#include "core/amat_model.hh"
#include "core/area_model.hh"
#include "core/hit_curve.hh"

namespace wsearch {

/** One evaluated design point of the cache-for-cores trade-off. */
struct TradeoffPoint
{
    double l3MibPerCore = 0;
    double coresIdeal = 0;     ///< fractional cores (upper bound)
    uint32_t coresQuantized = 0;
    double qpsIdeal = 0;       ///< relative to the baseline design
    double qpsQuantized = 0;
    /** Figure 11 decomposition. */
    double gainFromCores = 0;  ///< +QPS from extra cores alone
    double lossFromCache = 0;  ///< -QPS from the smaller L3 alone
};

/** Iso-area L3-capacity-for-cores optimizer. */
class CacheForCoresOptimizer
{
  public:
    /**
     * @param l3_curve L3 hit rate as a function of total L3 bytes
     *                 (from simulation at the intended SMT level)
     */
    CacheForCoresOptimizer(const AreaModel &area, const AmatModel &amat,
                           const IpcModel &ipc,
                           const HitRateCurve &l3_curve,
                           uint32_t baseline_cores = 18,
                           double baseline_mib_per_core = 2.5)
        : area_(area), amat_(amat), ipc_(ipc), curve_(l3_curve),
          nBase_(baseline_cores), cBase_(baseline_mib_per_core)
    {
    }

    /** Relative QPS of an (n cores, c MiB/core) design vs baseline. */
    double
    relativeQps(double cores, double l3_mib_per_core) const
    {
        return cores * ipcAt(cores * l3_mib_per_core) /
            (nBase_ * ipcAt(nBase_ * cBase_));
    }

    /** Evaluate one c (MiB of L3 per core) at baseline-equal area. */
    TradeoffPoint
    evaluate(double l3_mib_per_core) const
    {
        const double a = area_.area(nBase_, cBase_);
        TradeoffPoint p;
        p.l3MibPerCore = l3_mib_per_core;
        p.coresIdeal = area_.coresForArea(a, l3_mib_per_core);
        p.coresQuantized =
            area_.coresForAreaQuantized(a, l3_mib_per_core);
        p.qpsIdeal = relativeQps(p.coresIdeal, l3_mib_per_core) - 1.0;
        p.qpsQuantized =
            relativeQps(p.coresQuantized, l3_mib_per_core) - 1.0;
        // Figure 11 decomposition at fixed baseline core count /
        // fixed baseline cache.
        p.gainFromCores = p.coresIdeal / nBase_ - 1.0;
        p.lossFromCache = ipcAt(nBase_ * l3_mib_per_core) /
                ipcAt(nBase_ * cBase_) - 1.0;
        return p;
    }

    /** Sweep c from 2.25 down to 0.5 in steps of 0.25 (Figure 10). */
    std::vector<TradeoffPoint>
    sweep() const
    {
        std::vector<TradeoffPoint> out;
        for (double c = 2.25; c >= 0.499; c -= 0.25)
            out.push_back(evaluate(c));
        return out;
    }

    /** The best quantized design in the sweep. */
    TradeoffPoint
    best() const
    {
        TradeoffPoint best_p;
        double best_q = -1e9;
        for (const auto &p : sweep()) {
            if (p.qpsQuantized > best_q) {
                best_q = p.qpsQuantized;
                best_p = p;
            }
        }
        return best_p;
    }

  private:
    double
    ipcAt(double total_l3_mib) const
    {
        const uint64_t bytes =
            static_cast<uint64_t>(total_l3_mib * 1048576.0);
        return ipc_.ipc(amat_.amat(curve_.hitRate(bytes)));
    }

    AreaModel area_;
    AmatModel amat_;
    IpcModel ipc_;
    HitRateCurve curve_;
    uint32_t nBase_;
    double cBase_;
};

} // namespace wsearch

#endif // WSEARCH_CORE_OPTIMIZER_HH
