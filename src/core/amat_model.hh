/**
 * @file
 * The paper's analytical performance model (§III-D): average memory
 * access time at the L3, and the measurement-calibrated linear IPC
 * model (Eq. 1): IPC = -8.62e-3 * AMAT_L3 + 1.78. The model is valid
 * because search has low per-thread memory-level parallelism, so L3
 * AMAT translates almost directly into stall time.
 */

#ifndef WSEARCH_CORE_AMAT_MODEL_HH
#define WSEARCH_CORE_AMAT_MODEL_HH

#include <vector>

#include "stats/linreg.hh"

namespace wsearch {

/** AMAT calculator for post-L2 levels. */
struct AmatModel
{
    double tL3Ns = 23.0;
    double tL4Ns = 40.0;
    double tMemNs = 123.0;
    double l4MissExtraNs = 0.0; ///< serialization penalty when the L4
                                ///< tag check is not overlapped with
                                ///< memory scheduling

    /** AMAT without an L4. */
    double
    amat(double h_l3) const
    {
        return h_l3 * tL3Ns + (1.0 - h_l3) * tMemNs;
    }

    /** AMAT with an L4 behind the L3. */
    double
    amatWithL4(double h_l3, double h_l4) const
    {
        const double miss_path = h_l4 * tL4Ns +
            (1.0 - h_l4) * (tMemNs + l4MissExtraNs);
        return h_l3 * tL3Ns + (1.0 - h_l3) * miss_path;
    }

    /** The paper's "future" scenario: +10% memory latency. */
    AmatModel
    future() const
    {
        AmatModel m = *this;
        m.tMemNs *= 1.10;
        return m;
    }
};

/** Linear IPC(AMAT) model (paper Eq. 1). */
struct IpcModel
{
    double slope = -8.62e-3;  ///< IPC per ns of AMAT_L3
    double intercept = 1.78;

    double
    ipc(double amat_ns) const
    {
        return slope * amat_ns + intercept;
    }

    /** The exact coefficients published in the paper. */
    static IpcModel
    paperEq1()
    {
        return IpcModel{};
    }

    /** Refit from (AMAT, IPC) samples, as the paper did from CAT and
     *  frequency experiments (Figure 8). */
    static IpcModel
    fit(const std::vector<double> &amat_ns, const std::vector<double> &ipc)
    {
        const LinearFit f = fitLinear(amat_ns, ipc);
        return IpcModel{f.slope, f.intercept};
    }
};

} // namespace wsearch

#endif // WSEARCH_CORE_AMAT_MODEL_HH
