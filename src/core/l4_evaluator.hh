/**
 * @file
 * The paper's second optimization (§IV-C): a latency-optimized,
 * on-package eDRAM L4 cache layered under the rightsized L3.
 * Reproduces Figure 14: QPS improvement over the 18-core/45 MiB
 * baseline for the baseline L4 (40 ns, parallel tag check), a
 * pessimistic variant (60 ns hit, +5 ns serialized miss), a
 * fully-associative variant, and the "future" scenario (+10% memory
 * latency and +10% L3 misses).
 */

#ifndef WSEARCH_CORE_L4_EVALUATOR_HH
#define WSEARCH_CORE_L4_EVALUATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/amat_model.hh"
#include "core/hit_curve.hh"

namespace wsearch {

/** Inputs the evaluator needs from simulation. */
struct L4EvalInputs
{
    double baselineHitL3 = 0;   ///< hL3 of the 18-core, 45 MiB design
    double rightsizedHitL3 = 0; ///< hL3 of the 23-core, 23 MiB design
    HitRateCurve l4Direct;      ///< hL4(size), direct-mapped victim L4
    HitRateCurve l4Assoc;       ///< hL4(size), fully-associative L4
    uint32_t baselineCores = 18;
    uint32_t optimizedCores = 23;
};

/** One of the paper's four evaluation scenarios. */
struct L4Scenario
{
    std::string name;
    double tL4Ns = 40.0;
    double l4MissExtraNs = 0.0;
    bool associative = false;
    bool future = false;

    static L4Scenario
    baseline()
    {
        return {"Baseline", 40.0, 0.0, false, false};
    }

    static L4Scenario
    pessimistic()
    {
        return {"Pessimistic", 60.0, 5.0, false, false};
    }

    static L4Scenario
    associativeL4()
    {
        return {"Associative", 40.0, 0.0, true, false};
    }

    static L4Scenario
    futureGen()
    {
        return {"Future", 40.0, 0.0, false, true};
    }
};

/** Evaluates Figure 14 rows. */
class L4Evaluator
{
  public:
    L4Evaluator(const L4EvalInputs &in, const AmatModel &amat,
                const IpcModel &ipc)
        : in_(in), amat_(amat), ipc_(ipc)
    {
    }

    /** QPS improvement of the rightsized design alone (no L4). */
    double
    rightsizeOnlyImprovement() const
    {
        const AmatModel m = amat_;
        const double base = in_.baselineCores *
            ipc_.ipc(m.amat(in_.baselineHitL3));
        const double opt = in_.optimizedCores *
            ipc_.ipc(m.amat(in_.rightsizedHitL3));
        return opt / base - 1.0;
    }

    /**
     * QPS improvement of rightsizing + an L4 of @p l4_bytes under
     * @p scenario, relative to the unmodified baseline.
     */
    double
    improvement(const L4Scenario &scenario, uint64_t l4_bytes) const
    {
        AmatModel m = amat_;
        m.tL4Ns = scenario.tL4Ns;
        m.l4MissExtraNs = scenario.l4MissExtraNs;
        double h_l3_base = in_.baselineHitL3;
        double h_l3_opt = in_.rightsizedHitL3;
        if (scenario.future) {
            // +10% memory latency; +10% last-level misses from larger
            // shards.
            m.tMemNs *= 1.10;
            h_l3_base = 1.0 - (1.0 - h_l3_base) * 1.10;
            h_l3_opt = 1.0 - (1.0 - h_l3_opt) * 1.10;
        }
        const HitRateCurve &curve =
            scenario.associative ? in_.l4Assoc : in_.l4Direct;
        const double h_l4 = curve.hitRate(l4_bytes);
        const double base = in_.baselineCores *
            ipc_.ipc(m.amat(h_l3_base));
        const double opt = in_.optimizedCores *
            ipc_.ipc(m.amatWithL4(h_l3_opt, h_l4));
        return opt / base - 1.0;
    }

  private:
    L4EvalInputs in_;
    AmatModel amat_;
    IpcModel ipc_;
};

} // namespace wsearch

#endif // WSEARCH_CORE_L4_EVALUATOR_HH
