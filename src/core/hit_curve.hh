/**
 * @file
 * Hit-rate-vs-capacity curve with log-capacity linear interpolation.
 * The design-space models (cache-for-cores, L4 evaluation) consume
 * curves produced by simulation sweeps; interpolation lets them
 * evaluate capacities between simulated points.
 */

#ifndef WSEARCH_CORE_HIT_CURVE_HH
#define WSEARCH_CORE_HIT_CURVE_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace wsearch {

/** Monotone-capacity hit-rate curve. */
class HitRateCurve
{
  public:
    /** Points may be added in any order; they are kept sorted. */
    void
    addPoint(uint64_t size_bytes, double hit_rate)
    {
        wsearch_assert(size_bytes > 0);
        points_.push_back({static_cast<double>(size_bytes), hit_rate});
        std::sort(points_.begin(), points_.end());
    }

    size_t numPoints() const { return points_.size(); }

    /** Interpolated hit rate; clamps outside the sampled range. */
    double
    hitRate(uint64_t size_bytes) const
    {
        wsearch_assert(!points_.empty());
        const double s = static_cast<double>(size_bytes);
        if (s <= points_.front().first)
            return points_.front().second;
        if (s >= points_.back().first)
            return points_.back().second;
        for (size_t i = 1; i < points_.size(); ++i) {
            if (s <= points_[i].first) {
                const double x0 = std::log2(points_[i - 1].first);
                const double x1 = std::log2(points_[i].first);
                const double t = (std::log2(s) - x0) / (x1 - x0);
                return points_[i - 1].second +
                    t * (points_[i].second - points_[i - 1].second);
            }
        }
        return points_.back().second;
    }

  private:
    std::vector<std::pair<double, double>> points_;
};

} // namespace wsearch

#endif // WSEARCH_CORE_HIT_CURVE_HH
