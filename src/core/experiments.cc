#include "core/experiments.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>

#include "trace/buffered_trace.hh"
#include "trace/synthetic.hh"

namespace wsearch {

SystemConfig
makeSystemConfig(const WorkloadProfile &profile,
                 const PlatformConfig &platform, const RunOptions &opt)
{
    SystemConfig cfg = platform.system(profile, opt.cores, opt.smtWays,
                                       opt.l3PartitionWays, opt.l4);
    if (opt.l3Bytes)
        cfg.hierarchy.llc.cache.sizeBytes = *opt.l3Bytes;
    if (opt.l3Ways)
        cfg.hierarchy.llc.cache.ways = *opt.l3Ways;
    if (opt.l1Ways) {
        cfg.hierarchy.l1i.cache.ways = *opt.l1Ways;
        cfg.hierarchy.l1d.cache.ways = *opt.l1Ways;
    }
    if (opt.l2Ways)
        cfg.hierarchy.l2.cache.ways = *opt.l2Ways;
    if (opt.blockBytes) {
        cfg.hierarchy.l1i.cache.blockBytes = *opt.blockBytes;
        cfg.hierarchy.l1d.cache.blockBytes = *opt.blockBytes;
        cfg.hierarchy.l2.cache.blockBytes = *opt.blockBytes;
        cfg.hierarchy.llc.cache.blockBytes = *opt.blockBytes;
    }
    cfg.hierarchy.prefetch = opt.prefetch;
    cfg.hierarchy.llc.inclusion = opt.llcInclusion;
    if (opt.llcRepl)
        cfg.hierarchy.llc.cache.repl = *opt.llcRepl;
    cfg.hierarchy.llc.slices = opt.llcSlices;
    cfg.hierarchy.coherence = opt.coherence;
    cfg.modelTlb = opt.modelTlb;
    if (opt.modelTlb)
        cfg.dtlb = opt.hugePages ? platform.tlbHuge : platform.tlbBase;
    return cfg;
}

RecordBudget
recordBudget(const RunOptions &opt)
{
    RecordBudget b;
    b.measure = traceBudget(opt.measureRecords);
    b.warmup = opt.warmupRecords ? traceBudget(opt.warmupRecords)
                                 : b.measure / 2;
    return b;
}

SystemResult
runWorkload(const WorkloadProfile &profile,
            const PlatformConfig &platform, const RunOptions &opt)
{
    const SystemConfig cfg = makeSystemConfig(profile, platform, opt);
    const uint32_t threads = opt.cores * opt.smtWays;
    SyntheticSearchTrace trace(profile, threads);
    SystemSimulator sim(cfg);
    const RecordBudget budget = recordBudget(opt);
    return sim.run(trace, budget.warmup, budget.measure);
}

std::vector<SystemResult>
runWorkloadSweep(const WorkloadProfile &profile,
                 const PlatformConfig &platform,
                 const std::vector<RunOptions> &options,
                 const SweepControl &control)
{
    // Traces depend on the hardware-thread count, so variations are
    // grouped by cores x smtWays and each group shares one buffer
    // sized for its largest warmup+measure budget.
    struct Group
    {
        uint32_t threads = 0;
        uint64_t records = 0;
        std::shared_ptr<const BufferedTrace> trace;
    };
    std::map<uint32_t, size_t> group_of;
    std::vector<Group> groups;
    std::vector<size_t> job_group(options.size());
    std::vector<RecordBudget> budgets(options.size());
    for (size_t i = 0; i < options.size(); ++i) {
        const uint32_t threads =
            options[i].cores * options[i].smtWays;
        budgets[i] = recordBudget(options[i]);
        auto [it, fresh] = group_of.try_emplace(threads, groups.size());
        if (fresh)
            groups.push_back(Group{threads, 0, nullptr});
        Group &g = groups[it->second];
        g.records = std::max(g.records, budgets[i].total());
        job_group[i] = it->second;
    }

    // Generation is itself embarrassingly parallel across groups
    // (each group owns an independent deterministic source).
    runParallelJobs(groups.size(), control.threads, [&](size_t gi) {
        SyntheticSearchTrace src(profile, groups[gi].threads);
        groups[gi].trace =
            BufferedTrace::materialize(src, groups[gi].records);
    });

    // Representative plans depend only on (trace, total records): one
    // plan per distinct (group, budget) pair, shared by every
    // configuration replaying that trace prefix.
    const bool planned = control.policy != SamplingPolicy::kOff &&
        control.rep.enabled();
    std::vector<SamplingPlan> plans;
    std::vector<size_t> job_plan(options.size(), 0);
    if (planned) {
        SweepOptions sweep_opt;
        sweep_opt.policy = control.policy;
        sweep_opt.rep = control.rep;
        std::map<std::pair<size_t, uint64_t>, size_t> plan_of;
        std::vector<std::pair<size_t, uint64_t>> plan_keys;
        for (size_t i = 0; i < options.size(); ++i) {
            const std::pair<size_t, uint64_t> key{
                job_group[i], budgets[i].total()};
            auto [it, fresh] =
                plan_of.try_emplace(key, plan_keys.size());
            if (fresh)
                plan_keys.push_back(key);
            job_plan[i] = it->second;
        }
        plans.resize(plan_keys.size());
        runParallelJobs(plan_keys.size(), control.threads,
                        [&](size_t pi) {
            plans[pi] = buildSweepPlan(
                *groups[plan_keys[pi].first].trace,
                plan_keys[pi].second, sweep_opt);
        });
    }

    std::vector<SystemResult> results(options.size());
    runParallelJobs(options.size(), control.threads, [&](size_t i) {
        SystemSimulator sim(
            makeSystemConfig(profile, platform, options[i]));
        const BufferedTrace &trace = *groups[job_group[i]].trace;
        if (planned)
            results[i] = sim.runPlanned(trace, plans[job_plan[i]]);
        else if (control.sampling.enabled())
            results[i] = sim.runSampled(trace, budgets[i].total(),
                                        control.sampling);
        else
            results[i] = sim.run(trace, budgets[i].warmup,
                                 budgets[i].measure);
    });
    return results;
}

std::vector<SystemResult>
runWorkloads(const std::vector<WorkloadSpec> &specs,
             const SweepControl &control)
{
    const bool planned = control.policy != SamplingPolicy::kOff &&
        control.rep.enabled();
    std::vector<SystemResult> results(specs.size());
    runParallelJobs(specs.size(), control.threads, [&](size_t i) {
        const WorkloadSpec &s = specs[i];
        if (planned || control.sampling.enabled()) {
            const RecordBudget budget = recordBudget(s.opt);
            SyntheticSearchTrace src(s.profile,
                                     s.opt.cores * s.opt.smtWays);
            const std::shared_ptr<const BufferedTrace> trace =
                BufferedTrace::materialize(src, budget.total());
            SystemSimulator sim(
                makeSystemConfig(s.profile, s.platform, s.opt));
            if (planned) {
                SweepOptions sweep_opt;
                sweep_opt.policy = control.policy;
                sweep_opt.rep = control.rep;
                results[i] = sim.runPlanned(
                    *trace,
                    buildSweepPlan(*trace, budget.total(), sweep_opt));
            } else {
                results[i] = sim.runSampled(*trace, budget.total(),
                                            control.sampling);
            }
        } else {
            results[i] =
                runWorkload(s.profile, s.platform, s.opt);
        }
    });
    return results;
}

std::vector<SystemResult>
runWorkloads(const std::vector<WorkloadSpec> &specs, uint32_t threads)
{
    SweepControl control;
    control.threads = threads;
    return runWorkloads(specs, control);
}

HitRateCurve
l3HitCurve(const WorkloadProfile &profile,
           const PlatformConfig &platform, RunOptions opt,
           const std::vector<uint64_t> &sizes)
{
    std::vector<RunOptions> options;
    for (const uint64_t size : sizes) {
        opt.l3Bytes = size;
        options.push_back(opt);
    }
    const std::vector<SystemResult> results =
        runWorkloadSweep(profile, platform, options);
    HitRateCurve curve;
    for (size_t i = 0; i < sizes.size(); ++i)
        curve.addPoint(sizes[i], results[i].l3DataHitRate());
    return curve;
}

HitRateCurve
l4HitCurve(const WorkloadProfile &profile,
           const PlatformConfig &platform, RunOptions opt,
           const std::vector<uint64_t> &sizes, bool fully_associative)
{
    std::vector<RunOptions> options;
    for (const uint64_t size : sizes) {
        opt.l4 = cache_gen_victim(size, platform.cacheBlockBytes,
                                  fully_associative);
        options.push_back(opt);
    }
    const std::vector<SystemResult> results =
        runWorkloadSweep(profile, platform, options);
    HitRateCurve curve;
    for (size_t i = 0; i < sizes.size(); ++i)
        curve.addPoint(sizes[i], results[i].l4.hitRateTotal());
    return curve;
}

void
printBanner(const std::string &experiment_id,
            const std::string &description)
{
    std::printf("\n== %s: %s ==\n", experiment_id.c_str(),
                description.c_str());
    if (fastMode())
        std::printf("(WSEARCH_FAST: reduced record budgets)\n");
    std::printf("\n");
}

} // namespace wsearch
