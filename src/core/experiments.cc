#include "core/experiments.hh"

#include <cstdio>

#include "trace/synthetic.hh"

namespace wsearch {

SystemResult
runWorkload(const WorkloadProfile &profile,
            const PlatformConfig &platform, const RunOptions &opt)
{
    SystemConfig cfg = platform.system(profile, opt.cores, opt.smtWays,
                                       opt.l3PartitionWays, opt.l4);
    if (opt.l3Bytes)
        cfg.hierarchy.l3.sizeBytes = *opt.l3Bytes;
    if (opt.l3Ways)
        cfg.hierarchy.l3.ways = *opt.l3Ways;
    if (opt.blockBytes) {
        cfg.hierarchy.l1i.blockBytes = *opt.blockBytes;
        cfg.hierarchy.l1d.blockBytes = *opt.blockBytes;
        cfg.hierarchy.l2.blockBytes = *opt.blockBytes;
        cfg.hierarchy.l3.blockBytes = *opt.blockBytes;
    }
    cfg.hierarchy.prefetch = opt.prefetch;
    cfg.hierarchy.inclusiveL3 = opt.inclusiveL3;
    cfg.modelTlb = opt.modelTlb;
    if (opt.modelTlb)
        cfg.dtlb = opt.hugePages ? platform.tlbHuge : platform.tlbBase;

    const uint32_t threads = opt.cores * opt.smtWays;
    SyntheticSearchTrace trace(profile, threads);
    SystemSimulator sim(cfg);
    const uint64_t measure = traceBudget(opt.measureRecords);
    const uint64_t warmup =
        opt.warmupRecords ? traceBudget(opt.warmupRecords) : measure / 2;
    return sim.run(trace, warmup, measure);
}

HitRateCurve
l3HitCurve(const WorkloadProfile &profile,
           const PlatformConfig &platform, RunOptions opt,
           const std::vector<uint64_t> &sizes)
{
    HitRateCurve curve;
    for (const uint64_t size : sizes) {
        opt.l3Bytes = size;
        const SystemResult r = runWorkload(profile, platform, opt);
        curve.addPoint(size, r.l3DataHitRate());
    }
    return curve;
}

HitRateCurve
l4HitCurve(const WorkloadProfile &profile,
           const PlatformConfig &platform, RunOptions opt,
           const std::vector<uint64_t> &sizes, bool fully_associative)
{
    HitRateCurve curve;
    for (const uint64_t size : sizes) {
        L4Config l4;
        l4.sizeBytes = size;
        l4.fullyAssociative = fully_associative;
        l4.blockBytes = platform.cacheBlockBytes;
        opt.l4 = l4;
        const SystemResult r = runWorkload(profile, platform, opt);
        curve.addPoint(size, r.l4.hitRateTotal());
    }
    return curve;
}

void
printBanner(const std::string &experiment_id,
            const std::string &description)
{
    std::printf("\n== %s: %s ==\n", experiment_id.c_str(),
                description.c_str());
    if (fastMode())
        std::printf("(WSEARCH_FAST: reduced record budgets)\n");
    std::printf("\n");
}

} // namespace wsearch
