/**
 * @file
 * Platform presets (paper Table II) and the glue that turns a
 * (platform, workload) pair into a runnable SystemConfig. PLT1 models
 * the Intel Haswell system, PLT2 the IBM POWER8 system.
 */

#ifndef WSEARCH_CORE_PLATFORM_HH
#define WSEARCH_CORE_PLATFORM_HH

#include <cstdint>
#include <optional>
#include <string>

#include "cpu/smt.hh"
#include "cpu/system.hh"
#include "trace/profile.hh"

namespace wsearch {

/** A hardware platform (paper Table II). */
struct PlatformConfig
{
    std::string name;
    std::string microarchitecture;
    uint32_t sockets = 2;
    uint32_t coresPerSocket = 18;
    uint32_t smtWays = 2;
    uint32_t cacheBlockBytes = 64;
    uint64_t l1iBytes = 32 * KiB;
    uint64_t l1dBytes = 32 * KiB;
    uint64_t l2Bytes = 256 * KiB;
    uint64_t l3Bytes = 45 * MiB; ///< per socket
    uint32_t l3Ways = 20;
    uint32_t width = 4;
    double freqGhz = 2.5;
    double l3HitNs = 23.0;
    double memNs = 123.0;
    SmtParams smt;
    TlbConfig tlbBase;
    TlbConfig tlbHuge;
    /** The platform's hardware prefetch engine when enabled. PLT2's
     *  (POWER8) engine streams much deeper, which combined with its
     *  128 B blocks makes pollution dominate on search (paper
     *  Figure 2c). */
    PrefetchConfig prefetchEngine = PrefetchConfig::allOn();

    /** Intel Haswell platform (PLT1). */
    static PlatformConfig plt1();

    /** IBM POWER8 platform (PLT2). */
    static PlatformConfig plt2();

    /**
     * Build a single-socket hierarchy spec using @p cores cores and
     * @p smt_ways hardware threads per core, assembled with the
     * cache_gen_* generators.
     *
     * @param l3_partition_ways CAT partition (0 = all ways)
     */
    HierarchySpec
    hierarchy(uint32_t cores, uint32_t smt_ways,
              uint32_t l3_partition_ways = 0) const;

    /** Core-model parameters with @p profile's exposures applied. */
    CoreModelParams coreParams(const WorkloadProfile &profile) const;

    /**
     * Full system config for @p profile on @p cores cores.
     * Threads are expected to equal cores * smt_ways.
     * @param l4 optional memory-side cache level (cache_gen_victim)
     */
    SystemConfig
    system(const WorkloadProfile &profile, uint32_t cores,
           uint32_t smt_ways = 1, uint32_t l3_partition_ways = 0,
           std::optional<CacheLevelSpec> l4 = std::nullopt) const;
};

} // namespace wsearch

#endif // WSEARCH_CORE_PLATFORM_HH
