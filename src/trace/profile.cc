#include "trace/profile.hh"

#include "util/units.hh"

namespace wsearch {

// The constants below are the calibrated knobs for each Table I
// workload. They were tuned against the paper's reported metrics on a
// simulated PLT1-like hierarchy (see tests/trace/calibration and
// bench_table1); the mechanisms (Zipf code/heap reuse, streaming
// shard, persistent-vs-data-dependent branches) are fixed, only these
// magnitudes were fit.

WorkloadProfile
WorkloadProfile::atNominalScale() const
{
    WorkloadProfile p = *this;
    if (sweepScale <= 1)
        return p;
    p.name = name + "-nominal";
    p.code.footprintBytes *= sweepScale;
    p.heapWorkingSetBytes *= sweepScale;
    p.heapWarmSharedBytes *= sweepScale;
    p.shardSpanBytes *= sweepScale;
    p.sweepScale = 1;
    return p;
}

WorkloadProfile
WorkloadProfile::s1Leaf()
{
    WorkloadProfile p;
    p.name = "S1-leaf";
    p.loadFrac = 0.28;
    p.storeFrac = 0.10;
    p.code.footprintBytes = 4 * MiB;
    p.code.functionBytes = 2048;
    p.code.functionTheta = 1.12;
    p.code.branchEvery = 6.0;
    p.code.dataDepBranchFrac = 0.082;
    p.code.branchNoise = 0.015;
    p.code.loopRepeatProb = 0.50;
    p.code.loopMeanIters = 4.0;
    p.heapFrac = 0.55;
    p.shardFrac = 0.028;
    p.stackFrac = 0.40;
    p.heapHotFrac = 0.86;
    p.heapWarmFrac = 0.12;
    p.heapWorkingSetBytes = 1 * GiB;
    p.heapTheta = 1.10;
    p.shardSpanBytes = 64 * GiB;
    p.shardRunBytes = 512;
    p.cpu.postL2Exposure = 0.13;
    p.seed = 0x51ea5ull;
    return p;
}

// Sweep variant: every working set is scaled by 1/32 and the shared
// heap / shard reuse components get a much larger share of accesses,
// so steady-state hit rates at (scaled) GiB capacities converge in
// tens of millions of records instead of the paper's 135B
// instructions. Capacity axes must be multiplied by sweepScale when
// comparing with the paper.
WorkloadProfile
WorkloadProfile::s1LeafSweep()
{
    WorkloadProfile p = s1Leaf();
    p.name = "S1-leaf-sweep";
    p.sweepScale = 32;
    p.code.footprintBytes = 128 * KiB; // 4 MiB / 32
    p.heapWorkingSetBytes = 32 * MiB;  // 1 GiB / 32
    p.heapTheta = 0.65;
    p.heapHotFrac = 0.58;
    p.heapHotBytesPerThread = 4 << 10;   // L1-resident at 1/32 scale
    p.heapWarmFrac = 0.24;
    p.heapWarmBytesPerThread = 12 << 10; // spills the per-core L2
    p.heapWarmSharedFrac = 0.16;
    p.heapWarmSharedBytes = 384 * KiB;   // 12 MiB-eq shared band
    // Remaining 2% of heap accesses: the GiB-scale Zipf tail.
    p.heapFrac = 0.48;
    p.shardFrac = 0.16;      // boosted so the L3-miss stream keeps the
                             // paper's heap/shard balance
    p.stackFrac = 0.36;
    p.shardSpanBytes = 2 * GiB;        // 64 GiB / 32
    p.shardTheta = 0.0;                // streaming, reuse-free
    p.seed = 0x51ea5ull;
    return p;
}

// Capacity-sweep variant: one third of heap accesses go to the
// GiB-equivalent Zipf tail so the Figure 6b/13 capacity knees (heap
// captured by ~1 GiB-eq; code by ~16 MiB-eq) are resolvable.
WorkloadProfile
WorkloadProfile::s1LeafCapacitySweep()
{
    WorkloadProfile p = s1LeafSweep();
    p.name = "S1-leaf-capacity-sweep";
    p.heapHotFrac = 0.50;
    p.heapHotBytesPerThread = 16 << 10;
    p.heapWarmFrac = 0.12;
    p.heapWarmBytesPerThread = 96 << 10;
    p.heapWarmSharedFrac = 0.05;
    p.heapWarmSharedBytes = 768 * KiB;
    // Remaining 33% of heap accesses: the 1 GiB-eq Zipf tail.
    return p;
}

WorkloadProfile
WorkloadProfile::s2Leaf()
{
    WorkloadProfile p = s1Leaf();
    p.name = "S2-leaf";
    p.code.dataDepBranchFrac = 0.034;
    p.code.functionTheta = 1.10;
    p.heapTheta = 1.12;
    p.shardFrac = 0.022;
    p.seed = 0x52ea5ull;
    return p;
}

WorkloadProfile
WorkloadProfile::s3Leaf()
{
    WorkloadProfile p = s1Leaf();
    p.name = "S3-leaf";
    p.code.dataDepBranchFrac = 0.058;
    p.code.footprintBytes = 5 * MiB;
    p.code.functionTheta = 1.06;
    p.heapTheta = 1.15;
    p.shardFrac = 0.020;
    p.seed = 0x53ea5ull;
    return p;
}

// Root servers score/merge results and extract snippets: no index
// shard, larger and colder shared heap (candidate result sets), fewer
// data-dependent branches, similar code footprint.
WorkloadProfile
WorkloadProfile::s1Root()
{
    WorkloadProfile p;
    p.name = "S1-root";
    p.loadFrac = 0.30;
    p.storeFrac = 0.11;
    p.code.footprintBytes = 4 * MiB;
    p.code.functionTheta = 1.10;
    p.code.loopRepeatProb = 0.50;
    p.code.loopMeanIters = 4.0;
    p.code.dataDepBranchFrac = 0.012;
    p.code.branchNoise = 0.008;
    p.code.loopTripNoise = 0.06;
    p.heapFrac = 0.85;
    p.shardFrac = 0.0;
    p.stackFrac = 0.14;
    p.heapHotFrac = 0.86;
    p.heapWarmFrac = 0.11;
    p.heapWorkingSetBytes = 2 * GiB;
    p.heapTheta = 1.00;
    p.cpu.postL2Exposure = 0.13;
    p.seed = 0x51007ull;
    return p;
}

WorkloadProfile
WorkloadProfile::s2Root()
{
    WorkloadProfile p = s1Root();
    p.name = "S2-root";
    p.code.footprintBytes = 6 * MiB;
    p.code.functionTheta = 1.04;
    p.code.dataDepBranchFrac = 0.014;
    p.heapTheta = 1.05;
    p.seed = 0x52007ull;
    return p;
}

WorkloadProfile
WorkloadProfile::s3Root()
{
    WorkloadProfile p = s1Root();
    p.name = "S3-root";
    p.code.dataDepBranchFrac = 0.017;
    p.heapTheta = 1.02;
    p.seed = 0x53007ull;
    return p;
}

WorkloadProfile
WorkloadProfile::specPerlbench()
{
    WorkloadProfile p;
    p.name = "400.perlbench";
    p.loadFrac = 0.30;
    p.storeFrac = 0.12;
    p.code.footprintBytes = 160 * KiB;
    p.code.functionTheta = 1.30;
    p.code.loopRepeatProb = 0.55;
    p.code.loopMeanIters = 5.0;
    p.code.dataDepBranchFrac = 0.001;
    p.code.branchNoise = 0.003;
    p.code.loopTripNoise = 0.02;
    p.code.branchEvery = 5.0;
    p.heapFrac = 0.80;
    p.shardFrac = 0.0;
    p.stackFrac = 0.20;
    p.heapHotFrac = 0.90;
    p.heapWarmFrac = 0.08;
    p.heapWorkingSetBytes = 24 * MiB;
    p.heapTheta = 1.25;
    p.cpu.postL2Exposure = 0.10;
    p.cpu.feBwSlotsPerInstr = 0.18;
    p.cpu.beCoreSlotsPerInstr = 0.17;
    p.seed = 0x400ull;
    return p;
}

WorkloadProfile
WorkloadProfile::specMcf()
{
    WorkloadProfile p;
    p.name = "429.mcf";
    p.loadFrac = 0.35;
    p.storeFrac = 0.09;
    p.code.footprintBytes = 16 * KiB;
    p.code.functionBytes = 512;
    p.code.functionTheta = 1.0;
    p.code.dataDepBranchFrac = 0.125;
    p.code.branchNoise = 0.020;
    p.code.branchEvery = 5.0;
    p.heapFrac = 0.92;
    p.shardFrac = 0.0;
    p.stackFrac = 0.08;
    p.heapHotFrac = 0.70;
    p.heapWarmFrac = 0.13;
    p.heapWorkingSetBytes = 4 * GiB;
    p.heapTheta = 0.22;
    p.cpu.postL2Exposure = 0.30;
    p.cpu.feBwSlotsPerInstr = 0.10;
    p.cpu.beCoreSlotsPerInstr = 0.15;
    p.seed = 0x429ull;
    return p;
}

WorkloadProfile
WorkloadProfile::specGobmk()
{
    WorkloadProfile p;
    p.name = "445.gobmk";
    p.loadFrac = 0.26;
    p.storeFrac = 0.11;
    p.code.footprintBytes = 1536 * KiB;
    p.code.functionTheta = 1.28;
    p.code.loopRepeatProb = 0.50;
    p.code.loopMeanIters = 4.0;
    p.code.dataDepBranchFrac = 0.310;
    p.code.branchNoise = 0.015;
    p.code.branchEvery = 4.5;
    p.heapFrac = 0.55;
    p.shardFrac = 0.0;
    p.stackFrac = 0.45;
    p.heapHotFrac = 0.88;
    p.heapWarmFrac = 0.10;
    p.heapWorkingSetBytes = 16 * MiB;
    p.heapTheta = 1.25;
    p.cpu.postL2Exposure = 0.12;
    p.cpu.feBwSlotsPerInstr = 0.18;
    p.cpu.beCoreSlotsPerInstr = 0.20;
    p.seed = 0x445ull;
    return p;
}

WorkloadProfile
WorkloadProfile::specOmnetpp()
{
    WorkloadProfile p;
    p.name = "471.omnetpp";
    p.loadFrac = 0.34;
    p.storeFrac = 0.16;
    p.code.footprintBytes = 128 * KiB;
    p.code.functionTheta = 1.15;
    p.code.loopRepeatProb = 0.50;
    p.code.loopMeanIters = 5.0;
    p.code.dataDepBranchFrac = 0.040;
    p.code.branchNoise = 0.010;
    p.code.branchEvery = 5.0;
    p.heapFrac = 0.90;
    p.shardFrac = 0.0;
    p.stackFrac = 0.10;
    p.heapHotFrac = 0.80;
    p.heapWarmFrac = 0.12;
    p.heapWorkingSetBytes = 1536 * MiB;
    p.heapTheta = 0.35;
    p.cpu.postL2Exposure = 0.33;
    p.cpu.feBwSlotsPerInstr = 0.10;
    p.cpu.beCoreSlotsPerInstr = 0.18;
    p.seed = 0x471ull;
    return p;
}

// CloudSuite v3 Web Search (Lucene/Solr-like): small code footprint,
// modest hot heap, negligible shard pressure and very predictable
// branches -- the paper's point is precisely how much tamer this is
// than production search.
WorkloadProfile
WorkloadProfile::cloudsuiteWebSearch()
{
    WorkloadProfile p;
    p.name = "CloudSuite-WebSearch";
    p.loadFrac = 0.27;
    p.storeFrac = 0.09;
    p.code.footprintBytes = 128 * KiB;
    p.code.functionTheta = 1.30;
    p.code.loopRepeatProb = 0.55;
    p.code.loopMeanIters = 6.0;
    p.code.dataDepBranchFrac = 0.0003;
    p.code.branchNoise = 0.001;
    p.code.loopTripNoise = 0.01;
    p.code.branchEvery = 7.0;
    p.heapFrac = 0.70;
    p.shardFrac = 0.0005;
    p.stackFrac = 0.295;
    p.heapHotFrac = 0.92;
    p.heapWarmFrac = 0.07;
    p.heapWorkingSetBytes = 12 * MiB;
    p.heapTheta = 1.30;
    p.shardRunBytes = 1024;
    p.cpu.postL2Exposure = 0.13;
    p.cpu.feBwSlotsPerInstr = 0.45;
    p.cpu.beCoreSlotsPerInstr = 0.45;
    p.seed = 0xc10ull;
    return p;
}

} // namespace wsearch
