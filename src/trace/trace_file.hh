/**
 * @file
 * Binary trace file format: capture any TraceSource (typically the
 * instrumented engine) to disk and replay it later, the workflow the
 * paper used with its Pin traces. The format is a fixed 32-byte
 * little-endian record with a small header, so traces are portable
 * and seekable.
 */

#ifndef WSEARCH_TRACE_TRACE_FILE_HH
#define WSEARCH_TRACE_TRACE_FILE_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "trace/record.hh"

namespace wsearch {

/** On-disk header of a wsearch trace file. */
struct TraceFileHeader
{
    static constexpr uint64_t kMagic = 0x77737263'74726331ull; // wsrctrc1
    uint64_t magic = kMagic;
    uint64_t recordCount = 0;
    uint32_t numThreads = 0;
    uint32_t reserved = 0;
};

/** Writes records to a trace file. */
class TraceFileWriter
{
  public:
    /** Opens (truncates) @p path; check ok() before use. */
    TraceFileWriter(const std::string &path, uint32_t num_threads);
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    bool ok() const { return file_ != nullptr; }

    /** Append @p n records. */
    void append(const TraceRecord *recs, size_t n);

    /** Drain @p count records from @p src into the file. */
    uint64_t captureFrom(TraceSource &src, uint64_t count);

    /** Finalize the header and close; returns records written. */
    uint64_t close();

  private:
    std::FILE *file_ = nullptr;
    TraceFileHeader header_;
};

/** Replays a trace file as a TraceSource. */
class TraceFileReader : public TraceSource
{
  public:
    /** Opens @p path; check ok() (bad magic also fails). */
    explicit TraceFileReader(const std::string &path);
    ~TraceFileReader() override;

    TraceFileReader(const TraceFileReader &) = delete;
    TraceFileReader &operator=(const TraceFileReader &) = delete;

    bool ok() const { return file_ != nullptr; }
    uint64_t recordCount() const { return header_.recordCount; }
    uint32_t numThreads() const { return header_.numThreads; }

    size_t fill(TraceRecord *buf, size_t max) override;
    void reset() override;

  private:
    std::FILE *file_ = nullptr;
    TraceFileHeader header_;
    uint64_t position_ = 0;
};

} // namespace wsearch

#endif // WSEARCH_TRACE_TRACE_FILE_HH
