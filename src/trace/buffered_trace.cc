#include "trace/buffered_trace.hh"

#include <algorithm>

namespace wsearch {

std::shared_ptr<const BufferedTrace>
BufferedTrace::materialize(TraceSource &src, uint64_t records,
                           size_t chunk_records)
{
    auto trace = std::shared_ptr<BufferedTrace>(
        new BufferedTrace(chunk_records));
    const size_t chunk = trace->chunkRecords_;
    uint64_t remaining = records;
    while (remaining > 0) {
        const size_t want = static_cast<size_t>(
            std::min<uint64_t>(chunk, remaining));
        std::vector<TraceRecord> c(want);
        size_t filled = 0;
        while (filled < want) {
            const size_t got =
                src.fill(c.data() + filled, want - filled);
            if (got == 0)
                break;
            filled += got;
        }
        c.resize(filled);
        if (filled == 0)
            break;
        trace->size_ += filled;
        remaining -= filled;
        trace->chunks_.push_back(std::move(c));
        if (filled < want)
            break; // source exhausted

    }
    return trace;
}

size_t
BufferedTrace::Cursor::fill(TraceRecord *buf, size_t max)
{
    size_t n = 0;
    while (n < max) {
        const BufferedTrace::Span s =
            trace_->spanAt(pos_, max - n);
        if (s.count == 0)
            break;
        std::copy(s.data, s.data + s.count, buf + n);
        n += s.count;
        pos_ += s.count;
    }
    return n;
}

} // namespace wsearch
