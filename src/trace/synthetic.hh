/**
 * @file
 * Statistical trace generator. Produces an infinite, deterministic,
 * multi-threaded instruction + data reference stream whose locality
 * structure follows a WorkloadProfile. Generation is procedural (no
 * stored trace) at tens of millions of records per second, which is
 * what makes the paper's GiB-scale cache sweeps feasible.
 *
 * Sharing behaviour is emergent: all threads draw heap blocks from the
 * same Zipf distribution (shared hot structures), while shard positions
 * are independent random jumps (no reuse, disjoint across threads), so
 * the Figure 5 working-set scaling falls out of the mechanism.
 */

#ifndef WSEARCH_TRACE_SYNTHETIC_HH
#define WSEARCH_TRACE_SYNTHETIC_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/code_model.hh"
#include "trace/profile.hh"
#include "trace/record.hh"
#include "util/scramble.hh"
#include "util/zipf.hh"

namespace wsearch {

/** Infinite multi-threaded synthetic trace following a profile. */
class SyntheticSearchTrace : public TraceSource
{
  public:
    /**
     * @param profile     workload description
     * @param num_threads software threads interleaved round-robin
     * @param seed        overrides profile.seed when nonzero
     */
    SyntheticSearchTrace(const WorkloadProfile &profile,
                         uint32_t num_threads, uint64_t seed = 0);

    size_t fill(TraceRecord *buf, size_t max) override;
    void reset() override;

    uint32_t numThreads() const { return numThreads_; }
    const WorkloadProfile &profile() const { return prof_; }

  private:
    struct ThreadState
    {
        std::unique_ptr<CodeModel> code;
        Rng rng;
        uint64_t shardPos = 0;     ///< current posting-run cursor
        uint32_t shardRunLeft = 0; ///< bytes left in the current run

        ThreadState() : rng(0) {}
    };

    void generateOne(TraceRecord &rec, uint32_t tid);
    uint64_t heapAddr(ThreadState &t, uint32_t tid);
    uint64_t shardAddr(ThreadState &t);
    uint64_t stackAddr(ThreadState &t, uint32_t tid);

    /** Shared warm region (mid-scale shared structures). */
    static constexpr uint64_t kWarmSharedBase =
        vaddr::kHeapBase + (4ull << 40);
    /** Per-thread scratch regions inside the heap segment. */
    static constexpr uint64_t kScratchStride = 32ull << 20;
    static constexpr uint64_t kHotScratchBase =
        vaddr::kHeapBase + (16ull << 40);
    static constexpr uint64_t kWarmScratchBase =
        vaddr::kHeapBase + (24ull << 40);

    WorkloadProfile prof_;
    uint32_t numThreads_;
    uint64_t seed_;
    uint64_t heapBlocks_;
    ZipfSampler heapZipf_;
    DomainScrambler heapScramble_;
    std::unique_ptr<ZipfSampler> shardZipf_; ///< set when shardTheta > 0
    std::unique_ptr<DomainScrambler> shardScramble_;
    std::vector<ThreadState> threads_;
    uint32_t rr_ = 0; ///< round-robin cursor
};

} // namespace wsearch

#endif // WSEARCH_TRACE_SYNTHETIC_HH
