/**
 * @file
 * Synthetic instruction-stream model. Models the search binary as a
 * large set of functions whose invocation frequency follows a Zipf
 * distribution over a multi-MiB code footprint, with sequential fetch
 * inside basic blocks, short loops, and a calibrated fraction of
 * hard-to-predict (data-dependent) branches. This reproduces the
 * paper's signature front-end behaviour: a code working set that
 * overflows private L2 caches but is fully captured by a shared L3.
 */

#ifndef WSEARCH_TRACE_CODE_MODEL_HH
#define WSEARCH_TRACE_CODE_MODEL_HH

#include <cstdint>

#include "util/rng.hh"
#include "util/scramble.hh"
#include "util/zipf.hh"

namespace wsearch {

/** Configuration of the synthetic code path model. */
struct CodeModelConfig
{
    uint64_t footprintBytes = 4ull << 20; ///< total code working set
    uint32_t functionBytes = 2048;        ///< function body size
    double functionTheta = 0.65;          ///< Zipf skew of call targets
    double branchEvery = 6.0;             ///< mean instrs between branches
    double dataDepBranchFrac = 0.105;     ///< fraction of branches that
                                          ///< are data-dependent coin
                                          ///< flips (hard to predict)
    double takenBias = 0.72;              ///< fraction of static branches
                                          ///< whose persistent direction
                                          ///< is taken
    double branchNoise = 0.03;            ///< per-visit flip probability
                                          ///< of a regular branch
    double loopRepeatProb = 0.45;         ///< prob a region re-executes
    double loopMeanIters = 3.0;           ///< mean extra loop iterations
    double loopTripNoise = 0.15;          ///< prob a loop visit deviates
                                          ///< from its static trip count
    uint32_t instrBytes = 4;              ///< bytes per instruction
};

/** Output of one step of the code model. */
struct FetchedInstr
{
    uint64_t pc;
    bool isBranch;
    bool taken;
    uint64_t target; ///< valid when isBranch && taken
};

/**
 * Walks a synthetic call graph, producing one instruction per next()
 * call. Deterministic given the seed.
 */
class CodeModel
{
  public:
    /**
     * @param struct_seed determines the static binary structure
     *        (function layout, basic-block lengths, branch kinds and
     *        biases); must be the same for every thread of a process
     * @param walk_seed   per-thread randomness (call choices, branch
     *        outcomes, loop trip counts)
     */
    CodeModel(const CodeModelConfig &cfg, uint64_t base_pc,
              uint64_t struct_seed, uint64_t walk_seed);

    /** Produce the next dynamic instruction. */
    FetchedInstr
    next()
    {
        FetchedInstr out;
        out.pc = curPc_;
        const bool must_end_fn = curPc_ + cfg_.instrBytes >= fnEnd_;
        if (remainingInRegion_ == 0 || must_end_fn) {
            emitBranch(out, must_end_fn);
        } else {
            out.isBranch = false;
            out.taken = false;
            out.target = 0;
            --remainingInRegion_;
            curPc_ += cfg_.instrBytes;
        }
        return out;
    }

    /** Number of functions in the synthetic binary. */
    uint32_t numFunctions() const { return numFns_; }

    /** Entry PC of function index @p idx. */
    uint64_t
    functionEntry(uint32_t idx) const
    {
        return basePc_ + static_cast<uint64_t>(idx) * cfg_.functionBytes;
    }

    /** One past the highest code address the model can emit. */
    uint64_t
    codeLimit() const
    {
        return basePc_ + static_cast<uint64_t>(numFns_) *
            cfg_.functionBytes;
    }

  private:
    void emitBranch(FetchedInstr &out, bool must_end_fn);
    void callNewFunction();
    void startRegion();
    /** Deterministic per-PC draw in [1, 2*mean) (static structure). */
    uint32_t structDraw(uint64_t pc, double mean, uint64_t salt) const;

    CodeModelConfig cfg_;
    uint64_t basePc_;
    uint64_t structSeed_;
    Rng rng_;
    uint32_t numFns_;
    ZipfSampler fnZipf_;
    DomainScrambler fnScramble_;

    // Current execution state.
    uint64_t curPc_ = 0;       ///< next fetch pc
    uint64_t fnEnd_ = 0;       ///< one past last pc of current function
    uint64_t regionStart_ = 0; ///< loop region start pc
    uint32_t regionLen_ = 0;   ///< instrs in the current region
    uint32_t remainingInRegion_ = 0;
    uint32_t loopsLeft_ = 0;   ///< times the current region re-executes
};

} // namespace wsearch

#endif // WSEARCH_TRACE_CODE_MODEL_HH
