/**
 * @file
 * Cheap per-window access signatures over a BufferedTrace, and the
 * deterministic k-means clustering that groups similar windows. This
 * is the analysis half of clustered representative-interval sampling
 * (memsim/sweep.hh): a single non-simulating pass tallies, for every
 * fixed-size record window, the access mix per AccessKind, store and
 * branch fractions, branch-direction entropy, and approximate
 * distinct-block footprints of the code/heap/shard/stack segments.
 * Windows with similar signatures behave similarly under any cache
 * configuration, so simulating one representative per cluster and
 * weighting by cluster size estimates the full-trace counters at a
 * fraction of the replay cost.
 *
 * Everything here is deterministic: the extraction pass is pure
 * arithmetic over the immutable buffer, and the clustering is seeded
 * (k-means++ init from a caller-provided seed, fixed iteration cap,
 * lowest-index tie-breaking), so a (trace, seed) pair always produces
 * the same plan regardless of thread count.
 */

#ifndef WSEARCH_TRACE_SIGNATURE_HH
#define WSEARCH_TRACE_SIGNATURE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "stats/access_kind.hh"
#include "trace/buffered_trace.hh"

namespace wsearch {

/** Dimensionality of the per-window feature vector. */
constexpr size_t kSignatureDims = 10;

/** One window's feature vector (see WindowSignature::features). */
using SignatureVec = std::array<double, kSignatureDims>;

/**
 * Raw single-pass tallies for one record window. Footprints are
 * linear-counting estimates of distinct cache blocks touched (a
 * 4096-bit hash bitmap per segment), which is what separates a
 * streaming phase from a resident one at equal access counts.
 */
struct WindowSignature
{
    uint64_t begin = 0;   ///< absolute record index of the window start
    uint64_t records = 0; ///< records in this window (tail may be short)

    uint64_t dataAccesses[kNumAccessKinds] = {}; ///< Code unused (0)
    uint64_t stores = 0;
    uint64_t branches = 0;
    uint64_t taken = 0;
    double codeFootprint = 0;  ///< est. distinct code blocks
    double heapFootprint = 0;  ///< est. distinct heap blocks
    double shardFootprint = 0; ///< est. distinct shard blocks
    double stackFootprint = 0; ///< est. distinct stack blocks

    /** Binary entropy of the branch direction stream (0 when no branches). */
    double branchEntropy() const;

    /**
     * Per-record normalized feature vector: [heap, shard, stack, store,
     * branch] fractions, branch entropy, and log2(1 + footprint) for
     * code/heap/shard/stack. Log-scale footprints keep a 10x working
     * set difference comparable to a mix-fraction difference.
     */
    SignatureVec features() const;
};

/**
 * The signature pass: tally one WindowSignature per @p window_records
 * window of records [0, @p total) of @p trace (the final window keeps
 * the shorter tail). Walks contiguous chunk spans; never simulates and
 * never mutates the buffer. @p block_bytes is the footprint-sketch
 * granularity (cache block size).
 */
std::vector<WindowSignature>
extractWindowSignatures(const BufferedTrace &trace, uint64_t total,
                        uint64_t window_records,
                        uint32_t block_bytes = 64);

/**
 * Z-score standardization of the windows' feature vectors (per
 * dimension across windows; constant dimensions map to 0) so k-means
 * distances weight every feature equally.
 */
std::vector<SignatureVec>
standardizedFeatures(const std::vector<WindowSignature> &sigs);

/** Output of kMeansCluster. */
struct KMeansResult
{
    std::vector<uint32_t> assignment; ///< per input point, in [0, k)
    std::vector<SignatureVec> centroids;
};

/**
 * Deterministic seeded k-means: k-means++ initialization from
 * @p seed, Lloyd iterations to convergence (capped), lowest-index
 * tie-breaking, empty clusters reseeded to the point farthest from
 * its centroid. @p k is clamped to the point count.
 */
KMeansResult kMeansCluster(const std::vector<SignatureVec> &points,
                            uint32_t k, uint64_t seed);

/** Squared Euclidean distance between two feature vectors. */
double sigDistSq(const SignatureVec &a, const SignatureVec &b);

} // namespace wsearch

#endif // WSEARCH_TRACE_SIGNATURE_HH
