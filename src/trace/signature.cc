#include "trace/signature.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "util/rng.hh"

namespace wsearch {

namespace {

/**
 * 4096-bit linear-counting sketch of distinct values. Cheap enough to
 * clear per window per segment, accurate to a few percent up to ~10k
 * distinct blocks -- plenty to order windows by footprint, which is
 * all clustering needs.
 */
class FootprintSketch
{
  public:
    void clear() { std::memset(bits_, 0, sizeof bits_); }

    void
    add(uint64_t value)
    {
        const uint64_t h = mix64(value) & (kBits - 1);
        bits_[h >> 6] |= 1ull << (h & 63);
    }

    /** Linear-counting estimate: -m * ln(zeros / m). */
    double
    estimate() const
    {
        uint64_t set = 0;
        for (const uint64_t w : bits_)
            set += static_cast<uint64_t>(__builtin_popcountll(w));
        const uint64_t zeros = kBits - set;
        if (zeros == 0) // saturated; return the sketch ceiling
            return static_cast<double>(kBits) *
                std::log(static_cast<double>(kBits));
        return -static_cast<double>(kBits) *
            std::log(static_cast<double>(zeros) /
                     static_cast<double>(kBits));
    }

  private:
    static constexpr uint64_t kBits = 4096;
    uint64_t bits_[kBits / 64] = {};
};

} // namespace

double
WindowSignature::branchEntropy() const
{
    if (branches == 0)
        return 0.0;
    const double p = static_cast<double>(taken) /
        static_cast<double>(branches);
    if (p <= 0.0 || p >= 1.0)
        return 0.0;
    return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

SignatureVec
WindowSignature::features() const
{
    SignatureVec f{};
    if (records == 0)
        return f;
    const double n = static_cast<double>(records);
    f[0] = static_cast<double>(
               dataAccesses[static_cast<uint32_t>(AccessKind::Heap)]) / n;
    f[1] = static_cast<double>(
               dataAccesses[static_cast<uint32_t>(AccessKind::Shard)]) / n;
    f[2] = static_cast<double>(
               dataAccesses[static_cast<uint32_t>(AccessKind::Stack)]) / n;
    f[3] = static_cast<double>(stores) / n;
    f[4] = static_cast<double>(branches) / n;
    f[5] = branchEntropy();
    f[6] = std::log2(1.0 + codeFootprint);
    f[7] = std::log2(1.0 + heapFootprint);
    f[8] = std::log2(1.0 + shardFootprint);
    f[9] = std::log2(1.0 + stackFootprint);
    return f;
}

std::vector<WindowSignature>
extractWindowSignatures(const BufferedTrace &trace, uint64_t total,
                        uint64_t window_records, uint32_t block_bytes)
{
    std::vector<WindowSignature> sigs;
    total = std::min(total, trace.size());
    if (total == 0 || window_records == 0)
        return sigs;
    const uint32_t block_shift = [&] {
        uint32_t s = 0;
        while ((1u << (s + 1)) <= block_bytes)
            ++s;
        return s;
    }();

    // One sketch set reused across windows; cleared per window.
    FootprintSketch code, heap, shard, stack;
    uint64_t pos = 0;
    while (pos < total) {
        WindowSignature sig;
        sig.begin = pos;
        sig.records = std::min(window_records, total - pos);
        code.clear();
        heap.clear();
        shard.clear();
        stack.clear();
        uint64_t left = sig.records;
        uint64_t at = pos;
        while (left > 0) {
            const BufferedTrace::Span s = trace.spanAt(at, left);
            if (s.count == 0)
                break;
            for (size_t i = 0; i < s.count; ++i) {
                const TraceRecord &r = s.data[i];
                code.add(r.pc >> block_shift);
                if (r.isBranch()) {
                    ++sig.branches;
                    if (r.isTaken())
                        ++sig.taken;
                }
                if (r.hasData()) {
                    ++sig.dataAccesses[static_cast<uint32_t>(r.kind)];
                    if (r.isStore())
                        ++sig.stores;
                    const uint64_t blk = r.addr >> block_shift;
                    switch (r.kind) {
                      case AccessKind::Heap:
                        heap.add(blk);
                        break;
                      case AccessKind::Shard:
                        shard.add(blk);
                        break;
                      case AccessKind::Stack:
                        stack.add(blk);
                        break;
                      case AccessKind::Code:
                        break;
                    }
                }
            }
            at += s.count;
            left -= s.count;
        }
        sig.codeFootprint = code.estimate();
        sig.heapFootprint = heap.estimate();
        sig.shardFootprint = shard.estimate();
        sig.stackFootprint = stack.estimate();
        sigs.push_back(sig);
        pos += sig.records;
    }
    return sigs;
}

std::vector<SignatureVec>
standardizedFeatures(const std::vector<WindowSignature> &sigs)
{
    std::vector<SignatureVec> feats;
    feats.reserve(sigs.size());
    for (const WindowSignature &s : sigs)
        feats.push_back(s.features());
    if (feats.empty())
        return feats;
    const double n = static_cast<double>(feats.size());
    for (size_t d = 0; d < kSignatureDims; ++d) {
        double mean = 0;
        for (const SignatureVec &f : feats)
            mean += f[d];
        mean /= n;
        double var = 0;
        for (const SignatureVec &f : feats)
            var += (f[d] - mean) * (f[d] - mean);
        var /= n;
        const double sd = std::sqrt(var);
        for (SignatureVec &f : feats)
            f[d] = sd > 1e-12 ? (f[d] - mean) / sd : 0.0;
    }
    return feats;
}

double
sigDistSq(const SignatureVec &a, const SignatureVec &b)
{
    double d = 0;
    for (size_t i = 0; i < kSignatureDims; ++i) {
        const double diff = a[i] - b[i];
        d += diff * diff;
    }
    return d;
}

KMeansResult
kMeansCluster(const std::vector<SignatureVec> &points, uint32_t k,
              uint64_t seed)
{
    KMeansResult res;
    const size_t n = points.size();
    if (n == 0 || k == 0)
        return res;
    k = static_cast<uint32_t>(std::min<size_t>(k, n));

    // k-means++ initialization: first center uniform, then
    // D^2-weighted draws. All randomness comes from one seeded Rng.
    Rng rng(seed);
    std::vector<SignatureVec> centers;
    centers.reserve(k);
    centers.push_back(points[rng.nextRange(n)]);
    std::vector<double> d2(n);
    while (centers.size() < k) {
        double sum = 0;
        for (size_t i = 0; i < n; ++i) {
            double best = std::numeric_limits<double>::max();
            for (const SignatureVec &c : centers)
                best = std::min(best, sigDistSq(points[i], c));
            d2[i] = best;
            sum += best;
        }
        size_t pick = 0;
        if (sum > 0) {
            double r = rng.nextDouble() * sum;
            for (size_t i = 0; i < n; ++i) {
                r -= d2[i];
                if (r <= 0) {
                    pick = i;
                    break;
                }
            }
        } else {
            // All remaining points coincide with a center; any pick
            // yields an identical clustering.
            pick = rng.nextRange(n);
        }
        centers.push_back(points[pick]);
    }

    res.assignment.assign(n, 0);
    constexpr int kMaxIters = 64;
    for (int iter = 0; iter < kMaxIters; ++iter) {
        // Assign: nearest center, lowest index on ties (strict <).
        bool changed = false;
        for (size_t i = 0; i < n; ++i) {
            uint32_t best = 0;
            double bestd = sigDistSq(points[i], centers[0]);
            for (uint32_t c = 1; c < k; ++c) {
                const double d = sigDistSq(points[i], centers[c]);
                if (d < bestd) {
                    bestd = d;
                    best = c;
                }
            }
            if (res.assignment[i] != best) {
                res.assignment[i] = best;
                changed = true;
            }
        }
        if (!changed && iter > 0)
            break;

        // Update: mean of members; empty clusters reseed to the point
        // farthest from its current center (deterministic).
        std::vector<SignatureVec> sums(k, SignatureVec{});
        std::vector<uint64_t> counts(k, 0);
        for (size_t i = 0; i < n; ++i) {
            const uint32_t c = res.assignment[i];
            ++counts[c];
            for (size_t d = 0; d < kSignatureDims; ++d)
                sums[c][d] += points[i][d];
        }
        for (uint32_t c = 0; c < k; ++c) {
            if (counts[c] > 0) {
                for (size_t d = 0; d < kSignatureDims; ++d)
                    centers[c][d] =
                        sums[c][d] / static_cast<double>(counts[c]);
            } else {
                size_t far = 0;
                double fard = -1;
                for (size_t i = 0; i < n; ++i) {
                    const double d = sigDistSq(
                        points[i], centers[res.assignment[i]]);
                    if (d > fard) {
                        fard = d;
                        far = i;
                    }
                }
                centers[c] = points[far];
            }
        }
    }
    res.centroids = std::move(centers);
    return res;
}

} // namespace wsearch
