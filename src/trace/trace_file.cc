#include "trace/trace_file.hh"

#include <algorithm>
#include <vector>

#include "util/logging.hh"

namespace wsearch {

namespace {

/** Fixed 32-byte on-disk record (host endianness; little-endian on
 *  every supported platform). */
struct DiskRecord
{
    uint64_t pc;
    uint64_t addr;
    uint64_t target;
    uint16_t tid;
    uint8_t kind;
    uint8_t op;
    uint8_t branch;
    uint8_t pad[3];
};
static_assert(sizeof(DiskRecord) == 32, "trace record layout");

DiskRecord
toDisk(const TraceRecord &r)
{
    DiskRecord d{};
    d.pc = r.pc;
    d.addr = r.addr;
    d.target = r.target;
    d.tid = r.tid;
    d.kind = static_cast<uint8_t>(r.kind);
    d.op = static_cast<uint8_t>(r.op);
    d.branch = static_cast<uint8_t>(r.branch);
    return d;
}

TraceRecord
fromDisk(const DiskRecord &d)
{
    TraceRecord r;
    r.pc = d.pc;
    r.addr = d.addr;
    r.target = d.target;
    r.tid = d.tid;
    r.kind = static_cast<AccessKind>(d.kind);
    r.op = static_cast<MemOp>(d.op);
    r.branch = static_cast<BranchKind>(d.branch);
    return r;
}

} // namespace

TraceFileWriter::TraceFileWriter(const std::string &path,
                                 uint32_t num_threads)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        return;
    header_.numThreads = num_threads;
    // Placeholder header; rewritten with the final count on close().
    std::fwrite(&header_, sizeof(header_), 1, file_);
}

TraceFileWriter::~TraceFileWriter()
{
    if (file_)
        close();
}

void
TraceFileWriter::append(const TraceRecord *recs, size_t n)
{
    wsearch_assert(file_ != nullptr);
    std::vector<DiskRecord> disk(n);
    for (size_t i = 0; i < n; ++i)
        disk[i] = toDisk(recs[i]);
    std::fwrite(disk.data(), sizeof(DiskRecord), n, file_);
    header_.recordCount += n;
}

uint64_t
TraceFileWriter::captureFrom(TraceSource &src, uint64_t count)
{
    TraceRecord buf[4096];
    uint64_t done = 0;
    while (done < count) {
        const size_t want = static_cast<size_t>(
            std::min<uint64_t>(4096, count - done));
        const size_t got = src.fill(buf, want);
        if (got == 0)
            break;
        append(buf, got);
        done += got;
    }
    return done;
}

uint64_t
TraceFileWriter::close()
{
    if (!file_)
        return header_.recordCount;
    std::fseek(file_, 0, SEEK_SET);
    std::fwrite(&header_, sizeof(header_), 1, file_);
    std::fclose(file_);
    file_ = nullptr;
    return header_.recordCount;
}

TraceFileReader::TraceFileReader(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        return;
    if (std::fread(&header_, sizeof(header_), 1, file_) != 1 ||
        header_.magic != TraceFileHeader::kMagic) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

TraceFileReader::~TraceFileReader()
{
    if (file_)
        std::fclose(file_);
}

size_t
TraceFileReader::fill(TraceRecord *buf, size_t max)
{
    if (!file_ || position_ >= header_.recordCount)
        return 0;
    const size_t want = static_cast<size_t>(std::min<uint64_t>(
        max, header_.recordCount - position_));
    std::vector<DiskRecord> disk(want);
    const size_t got =
        std::fread(disk.data(), sizeof(DiskRecord), want, file_);
    for (size_t i = 0; i < got; ++i)
        buf[i] = fromDisk(disk[i]);
    position_ += got;
    return got;
}

void
TraceFileReader::reset()
{
    if (!file_)
        return;
    std::fseek(file_, sizeof(TraceFileHeader), SEEK_SET);
    position_ = 0;
}

} // namespace wsearch
