/**
 * @file
 * Shared, immutable, chunked in-memory trace buffer. A BufferedTrace
 * is decoded/generated ONCE from any TraceSource and then replayed
 * any number of times -- concurrently from many threads -- without
 * regeneration cost, locks, or per-record virtual calls: consumers
 * walk contiguous TraceRecord spans chunk by chunk.
 *
 * This is what makes the parallel sweep engine (memsim/sweep.hh)
 * cheap: a sweep of N hierarchy configurations pays for trace
 * generation once instead of N times, and every worker replays the
 * same bit-identical record sequence from read-only memory.
 *
 * Memory cost is sizeof(TraceRecord) (32 bytes) per record; chunk
 * granularity is tunable so tests can exercise chunk boundaries and
 * replay loops stay cache-friendly.
 */

#ifndef WSEARCH_TRACE_BUFFERED_TRACE_HH
#define WSEARCH_TRACE_BUFFERED_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "trace/record.hh"

namespace wsearch {

/** Immutable chunked record buffer; safe for concurrent replay. */
class BufferedTrace
{
  public:
    /** Default records per chunk (64K records = 2 MiB per chunk). */
    static constexpr size_t kDefaultChunkRecords = 1u << 16;

    /** A contiguous view into one chunk. */
    struct Span
    {
        const TraceRecord *data = nullptr;
        size_t count = 0;
    };

    /**
     * Pull up to @p records records out of @p src into a new buffer.
     * Stops early if the source is exhausted. @p chunk_records is the
     * chunk granularity (exposed for boundary tests).
     */
    static std::shared_ptr<const BufferedTrace>
    materialize(TraceSource &src, uint64_t records,
                size_t chunk_records = kDefaultChunkRecords);

    /** Total records stored. */
    uint64_t size() const { return size_; }

    size_t numChunks() const { return chunks_.size(); }
    size_t chunkRecords() const { return chunkRecords_; }

    /** The @p i-th chunk as a contiguous span. */
    Span
    chunk(size_t i) const
    {
        return {chunks_[i].data(), chunks_[i].size()};
    }

    /**
     * Longest contiguous span starting at absolute record @p begin,
     * clipped to both @p max_len and the containing chunk's edge.
     * Returns an empty span when @p begin >= size().
     */
    Span
    spanAt(uint64_t begin, uint64_t max_len) const
    {
        if (begin >= size_ || max_len == 0)
            return {};
        const size_t ci = static_cast<size_t>(begin / chunkRecords_);
        const size_t off = static_cast<size_t>(begin % chunkRecords_);
        const std::vector<TraceRecord> &c = chunks_[ci];
        const uint64_t in_chunk = c.size() - off;
        const size_t n = static_cast<size_t>(
            in_chunk < max_len ? in_chunk : max_len);
        return {c.data() + off, n};
    }

    /** Record @p i (bounds-unchecked; tests only). */
    const TraceRecord &
    at(uint64_t i) const
    {
        return chunks_[static_cast<size_t>(i / chunkRecords_)]
                      [static_cast<size_t>(i % chunkRecords_)];
    }

    /**
     * TraceSource adapter replaying the buffer once (reset() rewinds).
     * Holds a shared_ptr so the buffer outlives any live cursor.
     */
    class Cursor : public TraceSource
    {
      public:
        explicit Cursor(std::shared_ptr<const BufferedTrace> trace)
            : trace_(std::move(trace))
        {
        }

        size_t fill(TraceRecord *buf, size_t max) override;
        void reset() override { pos_ = 0; }

      private:
        std::shared_ptr<const BufferedTrace> trace_;
        uint64_t pos_ = 0;
    };

  private:
    explicit BufferedTrace(size_t chunk_records)
        : chunkRecords_(chunk_records ? chunk_records : 1)
    {
    }

    size_t chunkRecords_;
    uint64_t size_ = 0;
    std::vector<std::vector<TraceRecord>> chunks_;
};

} // namespace wsearch

#endif // WSEARCH_TRACE_BUFFERED_TRACE_HH
