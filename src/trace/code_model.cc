#include "trace/code_model.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/units.hh"

namespace wsearch {

CodeModel::CodeModel(const CodeModelConfig &cfg, uint64_t base_pc,
                     uint64_t struct_seed, uint64_t walk_seed)
    : cfg_(cfg), basePc_(base_pc), structSeed_(struct_seed),
      rng_(walk_seed),
      numFns_(static_cast<uint32_t>(
          std::max<uint64_t>(1, cfg.footprintBytes / cfg.functionBytes))),
      fnZipf_(numFns_, cfg.functionTheta),
      fnScramble_(numFns_, struct_seed ^ 0x5eedull)
{
    wsearch_assert(cfg_.instrBytes > 0 && isPow2(cfg_.instrBytes));
    wsearch_assert(cfg_.functionBytes >= 8 * cfg_.instrBytes);
    callNewFunction();
}

uint32_t
CodeModel::structDraw(uint64_t pc, double mean, uint64_t salt) const
{
    const uint64_t span = std::max<uint64_t>(
        1, static_cast<uint64_t>(2.0 * mean) - 1);
    return 1 + static_cast<uint32_t>(mix64(pc ^ structSeed_ ^ salt) %
                                     span);
}

void
CodeModel::startRegion()
{
    regionStart_ = curPc_;
    // Basic-block length is a static property of the code location.
    regionLen_ = structDraw(curPc_, cfg_.branchEvery, 0x1eadull);
    remainingInRegion_ = regionLen_;
    // Whether the region is a loop is static, and so (mostly) is its
    // trip count: real loops iterate over fixed-size structures far
    // more often than over random-length ones, which is what makes
    // loop exits predictable on real hardware.
    const bool is_loop = static_cast<double>(
        mix64(curPc_ ^ structSeed_ ^ 0x100bull) >> 11) * 0x1.0p-53 <
        cfg_.loopRepeatProb;
    if (is_loop) {
        loopsLeft_ = structDraw(curPc_, cfg_.loopMeanIters, 0x717eull);
        if (rng_.nextBool(cfg_.loopTripNoise))
            loopsLeft_ += static_cast<uint32_t>(rng_.nextRange(3));
    } else {
        loopsLeft_ = 0;
    }
}

void
CodeModel::callNewFunction()
{
    const uint64_t rank = fnZipf_.sample(rng_);
    const uint64_t idx = fnScramble_.apply(rank);
    const uint64_t entry = functionEntry(static_cast<uint32_t>(idx));
    fnEnd_ = entry + cfg_.functionBytes;
    curPc_ = entry;
    startRegion();
}

void
CodeModel::emitBranch(FetchedInstr &out, bool must_end_fn)
{
    out.isBranch = true;
    if (must_end_fn && loopsLeft_ == 0) {
        // Tail call / call to the next Zipf-selected function.
        callNewFunction();
        out.taken = true;
        out.target = curPc_;
        return;
    }
    if (loopsLeft_ > 0) {
        // Loop back-edge: highly predictable taken branch.
        --loopsLeft_;
        out.taken = true;
        out.target = regionStart_;
        curPc_ = regionStart_;
        remainingInRegion_ = regionLen_;
        return;
    }
    // Conditional branch ending the region. Whether the branch is
    // data-dependent is a persistent property of its PC (a static
    // branch either tests data or it does not); data-dependent
    // branches flip per visit, regular ones have a persistent per-PC
    // direction with small per-visit noise -- that is what makes the
    // former irreducible and the latter learnable by predictors.
    const uint64_t pc_hash = mix64(out.pc ^ structSeed_);
    const bool data_dep = static_cast<double>(pc_hash >> 11) *
        0x1.0p-53 < cfg_.dataDepBranchFrac;
    bool taken;
    if (data_dep) {
        taken = rng_.nextBool(0.5);
    } else {
        const bool bias_taken = static_cast<double>(
            mix64(pc_hash) >> 11) * 0x1.0p-53 < cfg_.takenBias;
        taken = rng_.nextBool(cfg_.branchNoise) ? !bias_taken
                                                : bias_taken;
    }
    out.taken = taken;
    if (taken) {
        // Short forward skip; the target is a static property of the
        // branch.
        const uint64_t skip = cfg_.instrBytes *
            structDraw(out.pc, 6.0, 0x5017ull);
        uint64_t target = curPc_ + cfg_.instrBytes + skip;
        if (target + cfg_.instrBytes >= fnEnd_)
            target = fnEnd_ - 2 * cfg_.instrBytes;
        if (target <= curPc_)
            target = curPc_ + cfg_.instrBytes;
        out.target = target;
        curPc_ = target;
    } else {
        out.target = 0;
        curPc_ += cfg_.instrBytes;
    }
    startRegion();
}

} // namespace wsearch
