#include "trace/synthetic.hh"

#include "util/logging.hh"
#include "util/units.hh"

namespace wsearch {

SyntheticSearchTrace::SyntheticSearchTrace(const WorkloadProfile &profile,
                                           uint32_t num_threads,
                                           uint64_t seed)
    : prof_(profile), numThreads_(num_threads),
      seed_(seed ? seed : profile.seed),
      heapBlocks_(std::max<uint64_t>(1, profile.heapWorkingSetBytes / 64)),
      heapZipf_(heapBlocks_, profile.heapTheta),
      heapScramble_(heapBlocks_, seed_ ^ 0x48eaull)
{
    wsearch_assert(num_threads >= 1);
    wsearch_assert(profile.heapFrac + profile.shardFrac +
                   profile.stackFrac <= 1.0 + 1e-9);
    if (prof_.shardTheta > 0.0) {
        const uint64_t runs =
            prof_.shardSpanBytes / prof_.shardRunBytes;
        shardZipf_ = std::make_unique<ZipfSampler>(runs,
                                                   prof_.shardTheta);
        shardScramble_ = std::make_unique<DomainScrambler>(
            runs, seed_ ^ 0x54a3dull);
    }
    reset();
}

void
SyntheticSearchTrace::reset()
{
    threads_.clear();
    threads_.resize(numThreads_);
    for (uint32_t t = 0; t < numThreads_; ++t) {
        uint64_t sm = seed_ + t * 0x1009ull;
        const uint64_t tseed = splitmix64(sm);
        // All threads run the same binary: structure comes from the
        // shared seed, only the walk differs per thread.
        threads_[t].code = std::make_unique<CodeModel>(
            prof_.code, vaddr::kCodeBase, seed_, tseed);
        threads_[t].rng = Rng(tseed ^ 0xda7aull);
        threads_[t].shardRunLeft = 0;
    }
    rr_ = 0;
}

uint64_t
SyntheticSearchTrace::heapAddr(ThreadState &t, uint32_t tid)
{
    const double u = t.rng.nextDouble();
    if (u < prof_.heapHotFrac) {
        // Per-thread hot scratch (accumulators being updated now).
        const uint64_t off =
            t.rng.nextRange(prof_.heapHotBytesPerThread / 8) * 8;
        return kHotScratchBase + tid * kScratchStride + off;
    }
    if (u < prof_.heapHotFrac + prof_.heapWarmFrac) {
        // Per-thread warm scratch (per-query tables).
        const uint64_t off =
            t.rng.nextRange(prof_.heapWarmBytesPerThread / 8) * 8;
        return kWarmScratchBase + tid * kScratchStride + off;
    }
    if (u < prof_.heapHotFrac + prof_.heapWarmFrac +
            prof_.heapWarmSharedFrac) {
        // Shared warm structures: uniform reuse over tens of MiB,
        // shared by all threads.
        const uint64_t off =
            t.rng.nextRange(prof_.heapWarmSharedBytes / 8) * 8;
        return kWarmSharedBase + off;
    }
    // Shared long-lived structures: Zipf reuse over the full working
    // set, identical distribution for all threads (sharing emergent).
    const uint64_t rank = heapZipf_.sample(t.rng);
    const uint64_t block = heapScramble_.apply(rank);
    const uint64_t word = t.rng.nextRange(8);
    return vaddr::kHeapBase + block * 64 + word * 8;
}

uint64_t
SyntheticSearchTrace::shardAddr(ThreadState &t)
{
    if (t.shardRunLeft < prof_.shardItemBytes) {
        // Jump to the next posting run: uniform (no reuse) by
        // default, or Zipf-selected (hot posting lists) when the
        // profile models shard reuse.
        const uint64_t runs = prof_.shardSpanBytes / prof_.shardRunBytes;
        uint64_t run;
        if (shardZipf_) {
            run = shardScramble_->apply(shardZipf_->sample(t.rng));
        } else {
            run = t.rng.nextRange(runs);
        }
        t.shardPos = run * prof_.shardRunBytes;
        t.shardRunLeft = prof_.shardRunBytes;
    }
    const uint64_t addr = vaddr::kShardBase + t.shardPos +
        (prof_.shardRunBytes - t.shardRunLeft);
    t.shardRunLeft -= prof_.shardItemBytes;
    return addr;
}

uint64_t
SyntheticSearchTrace::stackAddr(ThreadState &t, uint32_t tid)
{
    const uint64_t slot =
        t.rng.nextRange(prof_.stackBytesPerThread / 8);
    return vaddr::kStackBase + tid * vaddr::kStackStride + slot * 8;
}

void
SyntheticSearchTrace::generateOne(TraceRecord &rec, uint32_t tid)
{
    ThreadState &t = threads_[tid];
    const FetchedInstr fi = t.code->next();
    rec.pc = fi.pc;
    rec.tid = static_cast<uint16_t>(tid);
    rec.branch = fi.isBranch
        ? (fi.taken ? BranchKind::Taken : BranchKind::NotTaken)
        : BranchKind::NotBranch;
    rec.target = fi.target;

    const double u = t.rng.nextDouble();
    if (u < prof_.loadFrac + prof_.storeFrac) {
        rec.op = u < prof_.loadFrac ? MemOp::Load : MemOp::Store;
        const double v = t.rng.nextDouble();
        if (v < prof_.heapFrac) {
            rec.kind = AccessKind::Heap;
            rec.addr = heapAddr(t, tid);
        } else if (v < prof_.heapFrac + prof_.shardFrac) {
            rec.kind = AccessKind::Shard;
            rec.addr = shardAddr(t);
        } else if (v < prof_.heapFrac + prof_.shardFrac +
                       prof_.stackFrac) {
            rec.kind = AccessKind::Stack;
            rec.addr = stackAddr(t, tid);
        } else {
            rec.kind = AccessKind::Heap;
            rec.addr = heapAddr(t, tid);
        }
    } else {
        rec.op = MemOp::None;
        rec.addr = 0;
        rec.kind = AccessKind::Heap;
    }
}

size_t
SyntheticSearchTrace::fill(TraceRecord *buf, size_t max)
{
    for (size_t i = 0; i < max; ++i) {
        generateOne(buf[i], rr_);
        rr_ = rr_ + 1 == numThreads_ ? 0 : rr_ + 1;
    }
    return max;
}

} // namespace wsearch
