/**
 * @file
 * Trace record format. One record corresponds to one dynamic
 * instruction: its fetch PC, optional branch outcome, and optional data
 * access tagged with an AccessKind. Both the statistical generator and
 * the instrumented mini search engine emit this format; the cache
 * simulator and CPU models consume it.
 */

#ifndef WSEARCH_TRACE_RECORD_HH
#define WSEARCH_TRACE_RECORD_HH

#include <cstdint>

#include "stats/access_kind.hh"

namespace wsearch {

/** Data-access operation attached to an instruction. */
enum class MemOp : uint8_t {
    None = 0,
    Load = 1,
    Store = 2,
};

/** Branch behaviour of an instruction. */
enum class BranchKind : uint8_t {
    NotBranch = 0,
    NotTaken = 1,
    Taken = 2,
};

/** Canonical virtual-address-space layout used by all trace sources. */
namespace vaddr {
constexpr uint64_t kCodeBase = 0x0000'0040'0000ull;
constexpr uint64_t kHeapBase = 0x2000'0000'0000ull;
constexpr uint64_t kShardBase = 0x4000'0000'0000ull;
constexpr uint64_t kStackBase = 0x7000'0000'0000ull;
/** Per-thread stack stride (maximum modeled stack size). */
constexpr uint64_t kStackStride = 0x0000'0100'0000ull; // 16 MiB
} // namespace vaddr

/** One dynamic instruction. */
struct TraceRecord
{
    uint64_t pc = 0;       ///< fetch address
    uint64_t addr = 0;     ///< data address (valid when op != None)
    uint64_t target = 0;   ///< branch target (valid when branch != NotBranch)
    uint16_t tid = 0;      ///< software/hardware thread id
    AccessKind kind = AccessKind::Heap; ///< kind of the data access
    MemOp op = MemOp::None;
    BranchKind branch = BranchKind::NotBranch;

    bool isBranch() const { return branch != BranchKind::NotBranch; }
    bool isTaken() const { return branch == BranchKind::Taken; }
    bool hasData() const { return op != MemOp::None; }
    bool isStore() const { return op == MemOp::Store; }
};

/**
 * Pull-based trace source. Implementations fill caller-provided buffers
 * so the hot simulation loop never crosses a virtual call per record.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Fill up to @p max records into @p buf.
     * @return number of records produced; 0 means the source is
     *         exhausted (infinite sources never return 0).
     */
    virtual size_t fill(TraceRecord *buf, size_t max) = 0;

    /** Restart the source from the beginning (optional). */
    virtual void reset() {}
};

} // namespace wsearch

#endif // WSEARCH_TRACE_RECORD_HH
