/**
 * @file
 * Workload profiles: the complete parameterization of a synthetic
 * workload's memory behaviour (instruction mix, code model, data-segment
 * mix, per-segment working sets and locality). Presets reproduce the
 * workloads the paper characterizes in Table I: the production search
 * services S1/S2/S3 (leaf and root roles), SPEC CPU2006 representatives,
 * and the CloudSuite v3 Web Search.
 *
 * The presets are calibrated so a PLT1-like simulated hierarchy lands
 * near the paper's Table I metrics; sweeps then vary only cache
 * parameters, mirroring the paper's methodology (§III-A).
 */

#ifndef WSEARCH_TRACE_PROFILE_HH
#define WSEARCH_TRACE_PROFILE_HH

#include <cstdint>
#include <string>

#include "trace/code_model.hh"

namespace wsearch {

/** Per-workload tweak of the CPU model's latency-exposure behaviour. */
struct CpuTweaks
{
    /**
     * Fraction of post-L2 miss latency exposed as back-end stall (the
     * inverse of memory-level parallelism). Search has low MLP (paper
     * §III-D) so its exposure is high.
     */
    double postL2Exposure = 0.20;
    /** Fraction of L1-to-L2 data latency exposed (OoO hides most). */
    double l2Exposure = 0.06;
    /** Extra issue slots consumed per instruction by decode/FE bandwidth. */
    double feBwSlotsPerInstr = 0.30;
    /** Extra issue slots consumed per instruction by core serialization. */
    double beCoreSlotsPerInstr = 0.27;
};

/** Full description of a synthetic workload. */
struct WorkloadProfile
{
    std::string name = "unnamed";

    // --- instruction mix (branch fraction is emergent from the code
    //     model's branchEvery parameter) ---
    double loadFrac = 0.28;   ///< loads per instruction
    double storeFrac = 0.10;  ///< stores per instruction

    // --- code segment ---
    CodeModelConfig code;

    // --- data segment mix (fractions of all data accesses; must sum
    //     to <= 1, remainder treated as heap) ---
    double heapFrac = 0.55;
    double shardFrac = 0.03;
    double stackFrac = 0.42;

    // --- heap segment: hierarchical locality ---
    // Real query processing touches per-thread scratch (accumulators,
    // hash tables) with very strong locality, plus shared long-lived
    // structures (doc metadata, dictionaries) with Zipf reuse over a
    // ~GiB working set. The shared component is what GiB-scale caches
    // capture (paper Figure 6b); the scratch components set the
    // L1/L2-level behaviour.
    double heapHotFrac = 0.85;      ///< heap accesses to L1-scale scratch
    uint64_t heapHotBytesPerThread = 16 << 10;
    double heapWarmFrac = 0.12;     ///< heap accesses to L2-scale scratch
    uint64_t heapWarmBytesPerThread = 96 << 10;
    /**
     * Mid-scale shared-warm component: uniformly re-referenced shared
     * structures (scoring tables, hot metadata) whose working set is
     * tens of MiB -- the locality band the paper's CAT experiments
     * exercise (L3 hit rate still rising at 45 MiB, Figure 8a).
     */
    double heapWarmSharedFrac = 0.0;
    uint64_t heapWarmSharedBytes = 24ull << 20;
    // Remainder (GiB-scale shared tail) fractions below.
    uint64_t heapWorkingSetBytes = 1ull << 30; ///< shared heap WS
    double heapTheta = 0.75;        ///< Zipf skew of shared-block reuse

    // --- shard segment: reuse-free streaming over a huge span with
    //     short sequential runs (posting-list decode) ---
    uint64_t shardSpanBytes = 64ull << 30;
    uint32_t shardRunBytes = 512;   ///< sequential run per posting block
    uint32_t shardItemBytes = 8;    ///< bytes consumed per access
    /** Zipf skew of run selection (0 = uniform/no reuse). Nonzero
     *  models hot posting lists being re-read across queries, which
     *  is what gives the paper's ~50% shard hit rate at 2 GiB. */
    double shardTheta = 0.0;

    // --- stack segment: small, very hot, per-thread ---
    uint64_t stackBytesPerThread = 4 << 10;

    CpuTweaks cpu;

    /**
     * Capacity-scale factor of this profile: cache sizes in sweep
     * experiments should be interpreted as (simulated size x scale).
     * 1 for the Table-I-calibrated profiles; the *Sweep profiles use
     * 32 (working sets scaled 1/32 and shared-access rates boosted)
     * so GiB-scale cache sweeps converge within feasible trace
     * lengths -- the substitution for the paper's 135B-instruction
     * traces (DESIGN.md §1).
     */
    uint32_t sweepScale = 1;

    uint64_t seed = 0x5ea7c4ull;

    /**
     * This profile with its scaled-down shared working sets restored
     * to paper-nominal sizes (everything sweepScale multiplies back:
     * code footprint, shared heap tail, shared-warm band, shard span)
     * and sweepScale reset to 1, so cache sweeps read in real paper
     * capacities. Nominal-scale sweeps need far more records to
     * converge than 1/32-scale ones -- pair with clustered
     * representative sampling (memsim/sweep.hh) to keep them
     * affordable. Identity for profiles already at scale 1.
     */
    WorkloadProfile atNominalScale() const;

    // ----- preset factory functions (Table I workloads) -----
    static WorkloadProfile s1Leaf();
    /**
     * 1/32-scale variant whose data-at-L3 composition reproduces the
     * paper's CAT hit-rate domain (Figure 8a); feeds the design-space
     * models (Figs 8-11, 14).
     */
    static WorkloadProfile s1LeafSweep();
    /**
     * 1/32-scale variant with a dominant GiB-equivalent heap tail,
     * for the capacity-sweep curves (Figs 6b/6c, 13) where the
     * "heap needs ~1 GiB" knee is the point.
     */
    static WorkloadProfile s1LeafCapacitySweep();
    static WorkloadProfile s2Leaf();
    static WorkloadProfile s3Leaf();
    static WorkloadProfile s1Root();
    static WorkloadProfile s2Root();
    static WorkloadProfile s3Root();
    static WorkloadProfile specPerlbench();
    static WorkloadProfile specMcf();
    static WorkloadProfile specGobmk();
    static WorkloadProfile specOmnetpp();
    static WorkloadProfile cloudsuiteWebSearch();
};

} // namespace wsearch

#endif // WSEARCH_TRACE_PROFILE_HH
