/**
 * @file
 * Posting block codecs. A posting list is a sequence of
 * kPostingBlockSize-posting blocks plus a codec-independent SkipEntry
 * sidecar; the *codec* decides how one block's (doc-gap, tf) pairs
 * are laid out in the shard byte stream:
 *
 *  - VarintBlockCodec: the original delta + varint byte stream,
 *    unchanged on disk. One posting is (gap varint, tf varint,
 *    optional fixed payload). Decode is an inherently serial
 *    byte-at-a-time walk.
 *
 *  - PackedBlockCodec: bit-packed frame-of-reference blocks. Every
 *    block stores an 8-byte header (base doc id, posting count, one
 *    fixed bit width for doc-gaps and one for tfs) followed by two
 *    bit-packed payloads in a 4-lane vertical layout (see below).
 *    Bulk unpack is runtime-dispatched to AVX2, SSE2, or a portable
 *    scalar loop -- all three produce bit-identical output, the
 *    scalar path is the reference, and -DWSEARCH_NO_AVX2=ON forces
 *    it everywhere (CI proves the equivalence).
 *
 * Packed block layout (little endian):
 *
 *     u32 base      last doc id of the previous block (0 for the
 *                   first block, whose first gap is then absolute)
 *     u16 count     postings in this block (tail may be short)
 *     u8  gapBits   bit width of every doc-gap   (0..32)
 *     u8  tfBits    bit width of every tf        (0..32)
 *     16*gapBits bytes   gaps, vertically packed
 *     16*tfBits  bytes   tfs, vertically packed
 *
 * Vertical layout: value i of the (zero-padded to 128) block lives in
 * lane i%4 of row i/4; the payload is gapBits 128-bit words where
 * word k holds bits [32k, 32k+32) of each lane's 32-value stream.
 * Rows are contiguous in the output, so a 128-bit register unpacks 4
 * consecutive values with aligned-stride loads and uniform shifts --
 * no gathers, no per-width specializations. Headers make each block
 * self-describing, so a skip-table-free sequential cursor (the
 * live-merge reader) can walk packed bytes too.
 *
 * Lists encoded with the packed codec carry kPackedTailPad zero bytes
 * after the final block (outside every SkipEntry.endByte): the SIMD
 * unpack loops issue unconditional next-word loads that may read up
 * to 32 bytes past the payload of the last block.
 */

#ifndef WSEARCH_SEARCH_BLOCK_CODEC_HH
#define WSEARCH_SEARCH_BLOCK_CODEC_HH

#include <cstdint>
#include <vector>

#include "search/types.hh"

namespace wsearch {

/** On-disk posting block layout identifier (per shard/segment). */
enum class PostingCodec : uint8_t
{
    kVarint = 0, ///< delta + varint byte stream (the seed format)
    kPacked = 1, ///< bit-packed frame-of-reference blocks
};

const char *postingCodecName(PostingCodec codec);

/** SIMD slack required after a packed list's final block. */
constexpr uint32_t kPackedTailPad = 32;

/** Encoder/decoder for one posting block (see file comment). */
class BlockCodec
{
  public:
    virtual ~BlockCodec() = default;

    virtual PostingCodec id() const = 0;
    virtual const char *name() const = 0;

    /**
     * Append one encoded block to @p out. @p docs/@p tfs hold
     * @p count postings with strictly ascending doc ids; @p base is
     * the last doc id of the previous block (0 for the first block).
     */
    virtual void encodeBlock(const DocId *docs, const uint32_t *tfs,
                             uint32_t count, DocId base,
                             std::vector<uint8_t> &out) const = 0;

    /**
     * Decode the block at [@p begin, @p end) into @p docs/@p tfs
     * (each sized >= kPostingBlockSize). @p payload_bytes is the
     * fixed per-posting payload to step over (varint streams only;
     * the packed format never carries payloads).
     */
    virtual void decodeBlock(const uint8_t *begin, const uint8_t *end,
                             DocId base, uint32_t count,
                             uint32_t payload_bytes, DocId *docs,
                             uint32_t *tfs) const = 0;

    /** Zero slack bytes a list must carry after its final block. */
    virtual uint32_t tailPadBytes() const { return 0; }

    /** The process-wide codec instance for @p id. */
    static const BlockCodec &get(PostingCodec id);
};

/**
 * Decoded header of one packed block. Packed blocks are
 * self-describing, so a sequential reader (PostingCursor, the
 * live-merge input path) can walk a packed stream without a skip
 * table: read the header, decode, advance by blockBytes.
 */
struct PackedBlockHeader
{
    DocId base = 0;        ///< last doc id of the previous block
    uint32_t count = 0;    ///< postings in the block
    uint32_t gapBits = 0;  ///< doc-gap payload bit width
    uint32_t tfBits = 0;   ///< tf payload bit width
    uint32_t blockBytes = 0; ///< header + both payloads
};

PackedBlockHeader readPackedBlockHeader(const uint8_t *p);

/**
 * Bit-unpack primitives behind PackedBlockCodec, exposed so the codec
 * equivalence tests can pin scalar == SSE2 == AVX2 directly. All
 * unpack 128 width-@p bits values from @p in (vertical layout) into
 * @p out; the SIMD variants return false when the instruction set is
 * unavailable (or compiled out via WSEARCH_NO_AVX2).
 */
namespace packed_simd {

enum class Level : uint8_t
{
    kScalar = 0,
    kSse2 = 1,
    kAvx2 = 2,
};

/** The level the runtime dispatcher selected for this process. */
Level activeLevel();

const char *levelName(Level level);

void unpackScalar(const uint8_t *in, uint32_t bits, uint32_t *out);
bool unpackSse2(const uint8_t *in, uint32_t bits, uint32_t *out);
bool unpackAvx2(const uint8_t *in, uint32_t bits, uint32_t *out);

} // namespace packed_simd

} // namespace wsearch

#endif // WSEARCH_SEARCH_BLOCK_CODEC_HH
