#include "search/live/merge_worker.hh"

namespace wsearch {

MergeWorker::MergeWorker(LiveIndex &index, const Config &cfg)
    : index_(index), cfg_(cfg), thread_([this] { main(); })
{
}

MergeWorker::~MergeWorker() { stop(); }

void
MergeWorker::stop()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_.store(true);
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

void
MergeWorker::main()
{
    Clock &clk = cfg_.clock ? *cfg_.clock : realClock();
    while (!stop_.load()) {
        while (!stop_.load() && index_.mergePending()) {
            const uint64_t my_seq = seq_++;
            // One decision per merge attempt; a crashed merge leaves
            // its inputs pending, so the next attempt (fresh seq,
            // fresh draw) retries -- recovery after the crash.
            const bool crash = cfg_.faults &&
                cfg_.faults->crashMerge(cfg_.shardId, my_seq,
                                        clk.now());
            if (index_.mergeOnce(
                    crash ? std::function<bool()>([] { return true; })
                          : std::function<bool()>())) {
                done_.fetch_add(1);
            } else {
                if (crash)
                    crashed_.fetch_add(1);
                break; // crashed (retry next period) or no work
            }
        }
        std::unique_lock<std::mutex> lk(mu_);
        if (stop_.load())
            break;
        const uint64_t deadline = clk.now() + cfg_.periodNs;
        clk.waitUntil(cv_, lk, deadline, [this] {
            return stop_.load();
        });
    }
}

} // namespace wsearch
