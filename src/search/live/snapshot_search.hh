/**
 * @file
 * Query execution over an IndexSnapshot: one QueryExecutor per live
 * segment, partial top-k lists filtered through the snapshot's
 * published tombstones and merged best-first (RootServer::merge).
 *
 * A SnapshotSearcher belongs to one logical thread (like the
 * executors it wraps) and caches executors keyed by segment uid:
 * across snapshot swaps, segments that survived (the common case --
 * commits only *append* a segment) keep their warmed executor arenas,
 * and executors of merged-away segments are dropped. The searcher
 * pins each cached segment with a shared_ptr, so a cached executor
 * never outlives its shard even if every snapshot referencing it is
 * gone.
 */

#ifndef WSEARCH_SEARCH_LIVE_SNAPSHOT_SEARCH_HH
#define WSEARCH_SEARCH_LIVE_SNAPSHOT_SEARCH_HH

#include <memory>
#include <unordered_map>

#include "search/executor.hh"
#include "search/live/live_index.hh"
#include "search/query.hh"
#include "search/touch.hh"

namespace wsearch {

/** Per-thread search engine over live snapshots. */
class SnapshotSearcher
{
  public:
    /**
     * @param tid   logical thread id (forwarded to the executors)
     * @param sink  touch receiver (null = discard)
     * @param clock deadline time source (null = real steady clock)
     */
    SnapshotSearcher(uint32_t tid, TouchSink *sink = nullptr,
                     const Clock *clock = nullptr);

    /**
     * Execute @p req against @p snap. Per-segment top-k is widened by
     * the segment's tombstone count so a fully-deleted prefix cannot
     * starve the merged page, then tombstoned docs are filtered and
     * the survivors merged to req.query.topK. An empty snapshot
     * answers ok with zero docs.
     */
    SearchResponse search(const IndexSnapshot &snap,
                          const SearchRequest &req);

    const ExecStats &lastStats() const { return lastStats_; }

    /** Cached per-segment executors (== distinct segments seen and
     *  still referenced by the latest searched snapshot). */
    size_t cachedSegments() const { return slots_.size(); }

  private:
    struct Slot
    {
        std::shared_ptr<const LiveSegment> segment; ///< keepalive
        QueryExecutor exec;

        Slot(std::shared_ptr<const LiveSegment> seg, uint32_t tid,
             TouchSink *sink, const Clock *clock)
            : segment(std::move(seg)),
              exec(*segment, tid, sink, clock)
        {
        }
    };

    Slot &slotFor(const std::shared_ptr<const LiveSegment> &seg);
    void pruneTo(const IndexSnapshot &snap);

    uint32_t tid_;
    TouchSink *sink_;
    const Clock *clock_;
    NullTouchSink nullSink_;
    std::unordered_map<uint64_t, std::unique_ptr<Slot>> slots_;
    ExecStats lastStats_;
};

} // namespace wsearch

#endif // WSEARCH_SEARCH_LIVE_SNAPSHOT_SEARCH_HH
