/**
 * @file
 * Segments of the live (writable) index. Two halves of one lifecycle:
 *
 *  - MutableSegment: the in-memory write buffer. Absorbs document
 *    adds, updates, and removes as plain term vectors; nothing here is
 *    queryable. It is cheap to mutate and cheap to throw away.
 *
 *  - LiveSegment: an immutable inverted index produced by sealing a
 *    MutableSegment (or by merging several LiveSegments). Postings are
 *    encoded in the exact block format the frozen shards use
 *    (PostingListBuilder with a SkipEntry sidecar, in whichever
 *    PostingCodec the owning shard is configured for), so the pruned
 *    executor runs on live data unchanged.
 *    A LiveSegment implements IndexShard over a *sparse* vocabulary
 *    and a *sparse* doc-id space: termInfo() of an absent term is a
 *    zero-docFreq entry and docLen() of an absent doc is 0, which the
 *    executor already tolerates. Doc ids are global: a sealed segment
 *    holds whatever ids the writer ingested, not a dense 0..N-1 range.
 *
 * Immutability is the concurrency story: once sealed, a segment is
 * never modified, so queries need no locks -- visibility is decided
 * entirely by which segments (and tombstone sets) a snapshot
 * references (see live_index.hh).
 */

#ifndef WSEARCH_SEARCH_LIVE_LIVE_SEGMENT_HH
#define WSEARCH_SEARCH_LIVE_LIVE_SEGMENT_HH

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "search/index.hh"
#include "search/postings.hh"
#include "search/types.hh"

namespace wsearch {

class LiveSegmentBuilder;

/** Immutable, queryable segment of the live index. */
class LiveSegment : public IndexShard
{
  public:
    // IndexShard over a sparse vocabulary / sparse doc space.
    uint32_t
    numDocs() const override
    {
        return static_cast<uint32_t>(docIds_.size());
    }
    uint32_t
    numTerms() const override
    {
        return static_cast<uint32_t>(terms_.size());
    }
    double avgDocLen() const override { return avgDocLen_; }

    /** Absent terms get a zero-docFreq TermInfo (no assert): the
     *  executor treats them as empty posting lists. */
    TermInfo termInfo(TermId term) const override;

    /** Length of @p doc, 0 when the doc is not in this segment. */
    uint32_t docLen(DocId doc) const override;

    void postingBytes(TermId term,
                      std::vector<uint8_t> &out) const override;

    /** Always lends storage (possibly an empty view). */
    bool postingView(TermId term, PostingView &out) const override;

    uint64_t shardBytes() const override { return shardBytes_; }
    PostingCodec codec() const override { return codec_; }

    /** Process-unique segment identity (executor-cache key). */
    uint64_t uid() const { return uid_; }

    /** Index version at which this segment was sealed/merged. */
    uint64_t sealVersion() const { return sealVersion_; }

    /** Ascending global doc ids held by this segment. */
    const std::vector<DocId> &docIds() const { return docIds_; }

    bool
    contains(DocId doc) const
    {
        return docLen_.find(doc) != docLen_.end();
    }

    /** Distinct terms, ascending (deterministic merge order). */
    std::vector<TermId> termIds() const;

  private:
    friend class LiveSegmentBuilder;
    LiveSegment() = default;

    struct TermData
    {
        TermInfo info;
        std::vector<uint8_t> bytes;
        std::vector<SkipEntry> skips;
    };

    std::unordered_map<TermId, TermData> terms_;
    std::unordered_map<DocId, uint32_t> docLen_;
    std::vector<DocId> docIds_; ///< ascending
    PostingCodec codec_ = PostingCodec::kVarint;
    double avgDocLen_ = 0.0;
    uint64_t shardBytes_ = 0;
    uint64_t uid_ = 0;
    uint64_t sealVersion_ = 0;
};

/**
 * Accumulates postings and encodes a LiveSegment. Used by
 * MutableSegment::seal (whole documents) and by the merge path
 * (per-term posting streams from the inputs).
 */
class LiveSegmentBuilder
{
  public:
    /** Segments seal into @p codec (the owning shard's choice). */
    explicit LiveSegmentBuilder(
        PostingCodec codec = PostingCodec::kVarint)
        : codec_(codec)
    {
    }

    /** Add one whole document (term occurrences with repetition).
     *  Documents may arrive in any id order; each id at most once. */
    void addDoc(DocId doc, const std::vector<TermId> &terms);

    /** Merge path: record @p doc's length (each id at most once)... */
    void setDocLen(DocId doc, uint32_t len);
    /** ...and append one pre-counted posting for it. */
    void addPosting(TermId term, DocId doc, uint32_t tf);

    size_t numDocs() const { return docLen_.size(); }

    /** Encode everything into an immutable segment. */
    std::shared_ptr<const LiveSegment> build(uint64_t seal_version);

  private:
    // std::map: ascending term order makes shard offsets (and thus
    // the whole encoded segment) deterministic.
    std::map<TermId, std::vector<Posting>> acc_;
    std::unordered_map<DocId, uint32_t> docLen_;
    PostingCodec codec_ = PostingCodec::kVarint;
};

/** The in-memory write buffer (not queryable until sealed). */
class MutableSegment
{
  public:
    /** Insert or replace @p doc. */
    void add(DocId doc, const std::vector<TermId> &terms);

    /** Drop @p doc from the buffer; false when absent. */
    bool remove(DocId doc);

    bool
    contains(DocId doc) const
    {
        return docs_.find(doc) != docs_.end();
    }

    size_t numDocs() const { return docs_.size(); }

    /** Rough heap footprint of the buffered terms (bytes). */
    uint64_t
    approxBytes() const
    {
        return approxBytes_;
    }

    /** Encode the buffered documents into an immutable segment in
     *  @p codec. The buffer itself is unchanged (caller clears after
     *  publish). */
    std::shared_ptr<const LiveSegment>
    seal(uint64_t seal_version,
         PostingCodec codec = PostingCodec::kVarint) const;

    void
    clear()
    {
        docs_.clear();
        approxBytes_ = 0;
    }

  private:
    std::unordered_map<DocId, std::vector<TermId>> docs_;
    uint64_t approxBytes_ = 0;
};

} // namespace wsearch

#endif // WSEARCH_SEARCH_LIVE_LIVE_SEGMENT_HH
