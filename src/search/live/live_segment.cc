#include "search/live/live_segment.hh"

#include <algorithm>
#include <atomic>

#include "util/logging.hh"

namespace wsearch {

namespace {

/** Process-wide uid source; uid 0 is reserved for "the write buffer"
 *  in LiveIndex's doc-location map. */
std::atomic<uint64_t> g_next_uid{1};

} // namespace

TermInfo
LiveSegment::termInfo(TermId term) const
{
    const auto it = terms_.find(term);
    if (it == terms_.end())
        return TermInfo{}; // docFreq 0: executor skips the term
    return it->second.info;
}

uint32_t
LiveSegment::docLen(DocId doc) const
{
    const auto it = docLen_.find(doc);
    return it == docLen_.end() ? 0 : it->second;
}

void
LiveSegment::postingBytes(TermId term, std::vector<uint8_t> &out) const
{
    out.clear();
    const auto it = terms_.find(term);
    if (it != terms_.end())
        out = it->second.bytes;
}

bool
LiveSegment::postingView(TermId term, PostingView &out) const
{
    const auto it = terms_.find(term);
    if (it == terms_.end()) {
        out = PostingView{};
        return true; // empty view: cursor starts invalid
    }
    const TermData &td = it->second;
    out.bytes = td.bytes.data();
    out.size = td.bytes.size();
    out.skips = td.skips.data();
    out.numSkips = static_cast<uint32_t>(td.skips.size());
    out.count = td.info.docFreq;
    out.codec = codec_;
    return true;
}

std::vector<TermId>
LiveSegment::termIds() const
{
    std::vector<TermId> ids;
    ids.reserve(terms_.size());
    for (const auto &kv : terms_)
        ids.push_back(kv.first);
    std::sort(ids.begin(), ids.end());
    return ids;
}

void
LiveSegmentBuilder::addDoc(DocId doc, const std::vector<TermId> &terms)
{
    wsearch_assert(docLen_.find(doc) == docLen_.end());
    docLen_[doc] = static_cast<uint32_t>(terms.size());
    // Count tf by repetition: sort a scratch copy and run-length it.
    std::vector<TermId> sorted = terms;
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = 0; i < sorted.size();) {
        size_t j = i;
        while (j < sorted.size() && sorted[j] == sorted[i])
            ++j;
        acc_[sorted[i]].push_back(
            Posting{doc, static_cast<uint32_t>(j - i)});
        i = j;
    }
}

void
LiveSegmentBuilder::setDocLen(DocId doc, uint32_t len)
{
    wsearch_assert(docLen_.find(doc) == docLen_.end());
    docLen_[doc] = len;
}

void
LiveSegmentBuilder::addPosting(TermId term, DocId doc, uint32_t tf)
{
    acc_[term].push_back(Posting{doc, tf});
}

std::shared_ptr<const LiveSegment>
LiveSegmentBuilder::build(uint64_t seal_version)
{
    auto seg = std::shared_ptr<LiveSegment>(new LiveSegment());
    seg->uid_ = g_next_uid.fetch_add(1);
    seg->sealVersion_ = seal_version;
    seg->codec_ = codec_;

    seg->docIds_.reserve(docLen_.size());
    uint64_t total_len = 0;
    for (const auto &kv : docLen_) {
        seg->docIds_.push_back(kv.first);
        total_len += kv.second;
    }
    std::sort(seg->docIds_.begin(), seg->docIds_.end());
    seg->docLen_ = std::move(docLen_);
    seg->avgDocLen_ = seg->docIds_.empty()
        ? 0.0
        : static_cast<double>(total_len) /
            static_cast<double>(seg->docIds_.size());

    uint64_t offset = 0;
    for (auto &kv : acc_) {
        std::vector<Posting> &ps = kv.second;
        std::sort(ps.begin(), ps.end(),
                  [](const Posting &a, const Posting &b) {
                      return a.doc < b.doc;
                  });
        PostingListBuilder plb(codec_);
        uint32_t max_tf = 0;
        for (const Posting &p : ps) {
            // Each doc contributes one posting per term: duplicates
            // would mean the same id was fed from two sources.
            plb.add(p.doc, p.tf);
            if (p.tf > max_tf)
                max_tf = p.tf;
        }
        LiveSegment::TermData td;
        td.info.docFreq = plb.count();
        td.info.maxTf = max_tf;
        td.info.shardOffset = offset;
        td.skips = plb.releaseSkips();
        td.bytes = plb.release();
        td.info.byteLength = td.bytes.size();
        offset += td.info.byteLength;
        seg->terms_.emplace(kv.first, std::move(td));
    }
    seg->shardBytes_ = offset;
    acc_.clear();
    return seg;
}

void
MutableSegment::add(DocId doc, const std::vector<TermId> &terms)
{
    auto it = docs_.find(doc);
    if (it != docs_.end()) {
        approxBytes_ -= it->second.size() * sizeof(TermId);
        it->second = terms;
    } else {
        docs_.emplace(doc, terms);
        approxBytes_ += sizeof(DocId) + sizeof(uint32_t);
    }
    approxBytes_ += terms.size() * sizeof(TermId);
}

bool
MutableSegment::remove(DocId doc)
{
    auto it = docs_.find(doc);
    if (it == docs_.end())
        return false;
    approxBytes_ -= it->second.size() * sizeof(TermId) +
        sizeof(DocId) + sizeof(uint32_t);
    docs_.erase(it);
    return true;
}

std::shared_ptr<const LiveSegment>
MutableSegment::seal(uint64_t seal_version, PostingCodec codec) const
{
    LiveSegmentBuilder b(codec);
    for (const auto &kv : docs_)
        b.addDoc(kv.first, kv.second);
    return b.build(seal_version);
}

} // namespace wsearch
