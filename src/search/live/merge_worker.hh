/**
 * @file
 * Background merge thread for one LiveIndex: wakes on a fixed period,
 * asks the index's merge policy whether compaction work is pending,
 * and runs merges to completion one at a time. The merge-crash fault
 * hook (FaultInjector::crashMerge, drawn per merge sequence number)
 * abandons a merge partway through the build phase -- the live index
 * discards the partial output and the inputs stay untouched, so a
 * crashed merge costs wall-clock only, never correctness.
 *
 * The period waits run on an injected Clock: under SimClock the
 * worker only advances when the test moves virtual time, and stop()
 * is always responsive (the wait also wakes on the stop flag).
 */

#ifndef WSEARCH_SEARCH_LIVE_MERGE_WORKER_HH
#define WSEARCH_SEARCH_LIVE_MERGE_WORKER_HH

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "search/live/live_index.hh"
#include "serve/clock.hh"
#include "serve/fault.hh"

namespace wsearch {

/** Owns the background merge thread of one LiveIndex. */
class MergeWorker
{
  public:
    struct Config
    {
        /** Pause between merge-policy polls. */
        uint64_t periodNs = 2'000'000; // 2 ms
        /** Shard id reported to the fault injector. */
        uint32_t shardId = 0;
        /** Time source (null = real steady clock). */
        Clock *clock = nullptr;
        /** Fault decisions (null = benign). */
        const FaultInjector *faults = nullptr;
    };

    MergeWorker(LiveIndex &index, const Config &cfg);
    ~MergeWorker();

    /** Stop and join the merge thread (idempotent). */
    void stop();

    uint64_t mergesDone() const { return done_.load(); }
    uint64_t mergesCrashed() const { return crashed_.load(); }

  private:
    void main();

    LiveIndex &index_;
    const Config cfg_;
    std::atomic<bool> stop_{false};
    std::atomic<uint64_t> done_{0};
    std::atomic<uint64_t> crashed_{0};
    uint64_t seq_ = 0; ///< merge sequence number (thread-local)
    std::mutex mu_;
    std::condition_variable cv_;
    std::thread thread_;
};

} // namespace wsearch

#endif // WSEARCH_SEARCH_LIVE_MERGE_WORKER_HH
