/**
 * @file
 * The live index: an LSM-style lifecycle over LiveSegments.
 *
 * Writers mutate a MutableSegment buffer; commit() seals it into an
 * immutable LiveSegment and publishes a new IndexSnapshot -- commit is
 * the *acknowledgement point*: an add or remove is "acked" once the
 * commit() covering it returns, and the invariant the chaos suite
 * enforces is that every acked operation is visible in every snapshot
 * whose version >= that commit's version.
 *
 * An IndexSnapshot is an immutable, versioned, refcounted view: a list
 * of (segment, published-tombstone-set) pairs plus doc accounting and
 * a checksum over all of it. Queries grab the current shared_ptr and
 * keep scoring against it however long they run; a concurrent commit
 * or merge only swaps the pointer. validate() recomputes the checksum
 * so a torn or corrupted handoff is detectable at adoption time.
 *
 * Deletes are two-phase: remove() records a *pending* tombstone
 * immediately (the ack happens at the next commit, which *publishes*
 * it into the snapshot). Merges compact several sealed segments into
 * one, dropping only *published* tombstones -- pending ones ride along
 * to the merged segment -- so a merge never changes visibility, it
 * only re-homes it. A merge can therefore be crashed (abandoned)
 * mid-build with no effect beyond wasted work, which is exactly what
 * the mid-merge crash fault exercises.
 */

#ifndef WSEARCH_SEARCH_LIVE_LIVE_INDEX_HH
#define WSEARCH_SEARCH_LIVE_LIVE_INDEX_HH

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "search/live/live_segment.hh"
#include "search/types.hh"

namespace wsearch {

using DeleteSet = std::unordered_set<DocId>;

/** One segment plus the tombstones published against it. */
struct SegmentView
{
    std::shared_ptr<const LiveSegment> segment;
    std::shared_ptr<const DeleteSet> deletes; ///< null == none

    bool
    deleted(DocId doc) const
    {
        return deletes && deletes->count(doc) != 0;
    }

    uint64_t
    deleteCount() const
    {
        return deletes ? deletes->size() : 0;
    }
};

/** Immutable, versioned view of the index (see file comment). */
class IndexSnapshot
{
  public:
    uint64_t version = 0;
    std::vector<SegmentView> segments;
    uint64_t liveDocs = 0;    ///< visible docs (tombstones excluded)
    uint64_t deletedDocs = 0; ///< published tombstones still carried
    uint64_t checksum = 0;    ///< over everything above

    /** Checksum of the current field values (order-independent over
     *  the unordered tombstone sets). */
    uint64_t computeChecksum() const;

    /** True when checksum matches the contents. */
    bool
    validate() const
    {
        return checksum == computeChecksum();
    }

    /** A copy with one field perturbed under a stale checksum --
     *  validate() fails. Models a torn/corrupted snapshot handoff
     *  (fault injection only). */
    std::shared_ptr<const IndexSnapshot> corruptedCopy() const;
};

struct LiveConfig
{
    /** Max sealed segments fed to one merge. */
    uint32_t mergeFanIn = 4;
    /** mergePending() once this many sealed segments accumulate. */
    uint32_t mergeTriggerSegments = 4;
    /** ...or once any segment's tombstone fraction exceeds this
     *  (single-segment rewrite purges the dead docs). */
    double mergeTriggerDeletedFrac = 0.5;
    /** Auto-commit when the write buffer reaches this many docs
     *  (0 = manual commits only). */
    uint32_t autoCommitDocs = 0;
    /** Codec every seal and merge encodes segments into. */
    PostingCodec codec = PostingCodec::kVarint;
};

/** Monotonic counters (one writer's view; see ServeSnapshot for the
 *  serving-side aggregation). */
struct LiveStats
{
    uint64_t version = 0;
    uint64_t docsAdded = 0;
    uint64_t docsUpdated = 0;
    uint64_t docsRemoved = 0;
    uint64_t commits = 0;
    uint64_t merges = 0;        ///< completed merges
    uint64_t mergesCrashed = 0; ///< abandoned mid-build
    uint64_t liveDocs = 0;      ///< per current snapshot
    uint64_t deletedDocs = 0;   ///< published tombstones carried
    uint32_t segments = 0;      ///< sealed segments
    uint64_t bufferedDocs = 0;  ///< unacked docs in the write buffer
};

/**
 * Writer + merge + snapshot-publication state machine. Thread safety:
 * add/remove/commit may race with snapshot() and with one mergeOnce()
 * (writers serialize on an internal mutex; merges serialize on their
 * own and only take the writer lock for the plan and install steps, so
 * ingest proceeds while a merge builds).
 */
class LiveIndex
{
  public:
    explicit LiveIndex(const LiveConfig &cfg = LiveConfig());

    /** Insert or replace one document (unacked until commit()). */
    void add(DocId doc, const std::vector<TermId> &terms);

    /** Delete @p doc; false when it is not in the index. The
     *  tombstone is published (and thereby acked) at the next
     *  commit(). */
    bool remove(DocId doc);

    /**
     * Seal the write buffer (if non-empty), publish all pending
     * tombstones, and install a new snapshot. Returns the version at
     * which every operation issued before this call is visible --
     * the ack version. No-op (returns the current version) when
     * nothing changed.
     */
    uint64_t commit();

    /** Current published snapshot (never null; version 0 is empty). */
    std::shared_ptr<const IndexSnapshot> snapshot() const;

    uint64_t version() const;

    /** Would mergeOnce() find work right now? */
    bool mergePending() const;

    /**
     * Run one merge to completion (or abandonment): pick inputs per
     * the config triggers, compact them outside the writer lock, and
     * install the result. @p crash_mid_merge is polled between input
     * segments; returning true abandons the merge (partial work
     * discarded, inputs untouched) -- the mid-merge crash fault.
     * Returns true when a merge completed and was installed.
     */
    bool mergeOnce(const std::function<bool()> &crash_mid_merge = {});

    LiveStats stats() const;
    const LiveConfig &config() const { return cfg_; }

  private:
    struct SegmentEntry
    {
        std::shared_ptr<const LiveSegment> segment;
        DeleteSet pending; ///< all tombstones (superset of published)
        std::shared_ptr<const DeleteSet> published;
        bool dirty = false; ///< pending != published

        uint64_t
        publishedCount() const
        {
            return published ? published->size() : 0;
        }
    };

    /** Build + install a snapshot from entries_ (mu_ held). */
    void publishLocked();
    uint64_t commitLocked();
    bool mergePendingLocked() const;

    const LiveConfig cfg_;

    mutable std::mutex mu_; ///< writer lock: buffer, entries, location
    MutableSegment buffer_;
    std::vector<SegmentEntry> entries_;
    /** Doc -> owning segment uid (kBufferUid for the write buffer).
     *  Docs with a pending tombstone are absent. */
    std::unordered_map<DocId, uint64_t> location_;
    static constexpr uint64_t kBufferUid = 0;

    uint64_t version_ = 0;
    uint64_t docsAdded_ = 0;
    uint64_t docsUpdated_ = 0;
    uint64_t docsRemoved_ = 0;
    uint64_t commits_ = 0;
    uint64_t merges_ = 0;
    uint64_t mergesCrashed_ = 0;

    std::mutex mergeMu_; ///< one merge at a time

    mutable std::mutex snapMu_; ///< guards the current_ pointer swap
    std::shared_ptr<const IndexSnapshot> current_;
};

} // namespace wsearch

#endif // WSEARCH_SEARCH_LIVE_LIVE_INDEX_HH
