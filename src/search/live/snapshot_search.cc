#include "search/live/snapshot_search.hh"

#include <algorithm>

#include "search/root.hh"

namespace wsearch {

SnapshotSearcher::SnapshotSearcher(uint32_t tid, TouchSink *sink,
                                   const Clock *clock)
    : tid_(tid), sink_(sink ? sink : &nullSink_), clock_(clock)
{
}

SnapshotSearcher::Slot &
SnapshotSearcher::slotFor(const std::shared_ptr<const LiveSegment> &seg)
{
    auto it = slots_.find(seg->uid());
    if (it == slots_.end())
        it = slots_
                 .emplace(seg->uid(),
                          std::make_unique<Slot>(seg, tid_, sink_,
                                                 clock_))
                 .first;
    return *it->second;
}

void
SnapshotSearcher::pruneTo(const IndexSnapshot &snap)
{
    for (auto it = slots_.begin(); it != slots_.end();) {
        bool keep = false;
        for (const SegmentView &v : snap.segments)
            if (v.segment->uid() == it->first) {
                keep = true;
                break;
            }
        it = keep ? std::next(it) : slots_.erase(it);
    }
}

SearchResponse
SnapshotSearcher::search(const IndexSnapshot &snap,
                         const SearchRequest &req)
{
    pruneTo(snap);

    SearchResponse out;
    if (snap.segments.empty()) {
        lastStats_ = out.stats;
        return out; // ok, zero docs
    }

    std::vector<std::vector<ScoredDoc>> partials;
    partials.reserve(snap.segments.size());
    bool any_ok = false;
    bool all_ok = true;
    bool degraded = false;
    for (const SegmentView &view : snap.segments) {
        Slot &slot = slotFor(view.segment);
        SearchRequest sub = req;
        // Widen per-segment k past the tombstone count: at most that
        // many of the segment's top hits can be filtered out below.
        const uint64_t extra = std::min<uint64_t>(
            view.deleteCount(), view.segment->numDocs());
        sub.query.topK =
            req.query.topK + static_cast<uint32_t>(extra);
        SearchResponse r = slot.exec.execute(sub);
        out.stats.merge(r.stats);
        degraded |= r.degraded;
        any_ok |= r.ok;
        all_ok &= r.ok;
        if (r.ok && view.deletes) {
            r.docs.erase(std::remove_if(r.docs.begin(), r.docs.end(),
                                        [&view](const ScoredDoc &d) {
                                            return view.deleted(d.doc);
                                        }),
                         r.docs.end());
        }
        partials.push_back(std::move(r.docs));
    }
    out.docs = RootServer::merge(partials, req.query.topK);
    out.ok = any_ok;
    out.degraded = degraded || (any_ok && !all_ok);
    lastStats_ = out.stats;
    return out;
}

} // namespace wsearch
