#include "search/live/live_index.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/scramble.hh"

namespace wsearch {

uint64_t
IndexSnapshot::computeChecksum() const
{
    uint64_t h = mix64(version ^ 0x11d5eedull);
    h = mix64(h ^ segments.size());
    for (const SegmentView &v : segments) {
        h = mix64(h ^ v.segment->uid());
        h = mix64(h ^ v.segment->numDocs());
        h = mix64(h ^ v.segment->shardBytes());
        // XOR-fold the tombstones: stable under set iteration order.
        uint64_t dh = 0;
        if (v.deletes)
            for (DocId d : *v.deletes)
                dh ^= mix64(d ^ 0xdeadull);
        h = mix64(h ^ v.deleteCount() ^ dh);
    }
    h = mix64(h ^ liveDocs);
    h = mix64(h ^ deletedDocs);
    return h;
}

std::shared_ptr<const IndexSnapshot>
IndexSnapshot::corruptedCopy() const
{
    auto c = std::make_shared<IndexSnapshot>(*this);
    c->liveDocs += 1; // checksum left stale: validate() now fails
    return c;
}

LiveIndex::LiveIndex(const LiveConfig &cfg) : cfg_(cfg)
{
    auto snap = std::make_shared<IndexSnapshot>();
    snap->checksum = snap->computeChecksum();
    current_ = snap;
}

void
LiveIndex::add(DocId doc, const std::vector<TermId> &terms)
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = location_.find(doc);
    if (it == location_.end()) {
        ++docsAdded_;
    } else {
        ++docsUpdated_;
        if (it->second != kBufferUid) {
            // Tombstone the sealed copy; the replacement lives in the
            // buffer until the next commit publishes both.
            for (SegmentEntry &e : entries_) {
                if (e.segment->uid() == it->second) {
                    e.pending.insert(doc);
                    e.dirty = true;
                    break;
                }
            }
        }
    }
    buffer_.add(doc, terms);
    location_[doc] = kBufferUid;
    if (cfg_.autoCommitDocs != 0 &&
        buffer_.numDocs() >= cfg_.autoCommitDocs)
        commitLocked();
}

bool
LiveIndex::remove(DocId doc)
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = location_.find(doc);
    if (it == location_.end())
        return false;
    if (it->second == kBufferUid) {
        buffer_.remove(doc);
    } else {
        for (SegmentEntry &e : entries_) {
            if (e.segment->uid() == it->second) {
                e.pending.insert(doc);
                e.dirty = true;
                break;
            }
        }
    }
    location_.erase(it);
    ++docsRemoved_;
    return true;
}

uint64_t
LiveIndex::commit()
{
    std::lock_guard<std::mutex> lk(mu_);
    return commitLocked();
}

uint64_t
LiveIndex::commitLocked()
{
    bool changed = false;
    if (buffer_.numDocs() != 0) {
        auto seg = buffer_.seal(version_ + 1, cfg_.codec);
        for (DocId d : seg->docIds())
            location_[d] = seg->uid();
        SegmentEntry e;
        e.segment = std::move(seg);
        entries_.push_back(std::move(e));
        buffer_.clear();
        changed = true;
    }
    for (SegmentEntry &e : entries_) {
        if (e.dirty) {
            e.published = std::make_shared<DeleteSet>(e.pending);
            e.dirty = false;
            changed = true;
        }
    }
    if (!changed)
        return version_;
    ++commits_;
    ++version_;
    publishLocked();
    return version_;
}

void
LiveIndex::publishLocked()
{
    auto snap = std::make_shared<IndexSnapshot>();
    snap->version = version_;
    snap->segments.reserve(entries_.size());
    for (const SegmentEntry &e : entries_) {
        SegmentView v;
        v.segment = e.segment;
        v.deletes = e.published;
        snap->liveDocs += e.segment->numDocs() - e.publishedCount();
        snap->deletedDocs += e.publishedCount();
        snap->segments.push_back(std::move(v));
    }
    snap->checksum = snap->computeChecksum();
    std::lock_guard<std::mutex> sl(snapMu_);
    current_ = std::move(snap);
}

std::shared_ptr<const IndexSnapshot>
LiveIndex::snapshot() const
{
    std::lock_guard<std::mutex> sl(snapMu_);
    return current_;
}

uint64_t
LiveIndex::version() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return version_;
}

bool
LiveIndex::mergePending() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return mergePendingLocked();
}

bool
LiveIndex::mergePendingLocked() const
{
    if (entries_.size() >= cfg_.mergeTriggerSegments &&
        entries_.size() >= 2)
        return true;
    // Rewrite trigger counts *published* tombstones only: a merge can
    // drop nothing else, so triggering on pending ones would spin.
    for (const SegmentEntry &e : entries_) {
        const uint32_t n = e.segment->numDocs();
        if (n != 0 && e.publishedCount() != 0 &&
            static_cast<double>(e.publishedCount()) >=
                cfg_.mergeTriggerDeletedFrac * static_cast<double>(n))
            return true;
    }
    return false;
}

bool
LiveIndex::mergeOnce(const std::function<bool()> &crash_mid_merge)
{
    std::lock_guard<std::mutex> mg(mergeMu_);

    // Plan under the writer lock: capture input segments and their
    // *published* tombstones. Both are immutable, so the build below
    // runs lock-free against them while ingest continues.
    struct Input
    {
        std::shared_ptr<const LiveSegment> segment;
        std::shared_ptr<const DeleteSet> published;
    };
    std::vector<Input> inputs;
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (!mergePendingLocked())
            return false;
        std::vector<size_t> idx(entries_.size());
        for (size_t i = 0; i < idx.size(); ++i)
            idx[i] = i;
        if (entries_.size() >= cfg_.mergeTriggerSegments &&
            entries_.size() >= 2) {
            // Tiered compaction: merge the smallest segments first.
            std::sort(idx.begin(), idx.end(),
                      [this](size_t a, size_t b) {
                          return entries_[a].segment->numDocs() <
                              entries_[b].segment->numDocs();
                      });
            const size_t take = std::min<size_t>(
                std::max<uint32_t>(cfg_.mergeFanIn, 2), idx.size());
            idx.resize(take);
        } else {
            // Tombstone-purge rewrite of the worst single segment.
            size_t best = idx.size();
            double best_frac = 0.0;
            for (size_t i : idx) {
                const SegmentEntry &e = entries_[i];
                const uint32_t n = e.segment->numDocs();
                if (n == 0)
                    continue;
                const double f =
                    static_cast<double>(e.publishedCount()) /
                    static_cast<double>(n);
                if (f >= cfg_.mergeTriggerDeletedFrac &&
                    f > best_frac) {
                    best = i;
                    best_frac = f;
                }
            }
            if (best == idx.size())
                return false;
            idx.assign(1, best);
        }
        inputs.reserve(idx.size());
        for (size_t i : idx)
            inputs.push_back(Input{entries_[i].segment,
                                   entries_[i].published});
    }

    // Build outside the writer lock, polling the crash hook at each
    // input-segment boundary. Abandoning here discards partial work
    // only: nothing was installed, the inputs are untouched.
    LiveSegmentBuilder b(cfg_.codec);
    for (const Input &in : inputs) {
        if (crash_mid_merge && crash_mid_merge()) {
            std::lock_guard<std::mutex> lk(mu_);
            ++mergesCrashed_;
            return false;
        }
        const LiveSegment &s = *in.segment;
        const DeleteSet *dead = in.published.get();
        for (DocId d : s.docIds())
            if (!dead || dead->count(d) == 0)
                b.setDocLen(d, s.docLen(d));
        for (TermId t : s.termIds()) {
            PostingView v;
            s.postingView(t, v);
            PostingCursor cur(v.bytes, v.bytes + v.size, v.count, 0,
                              v.codec);
            for (; cur.valid(); cur.next())
                if (!dead || dead->count(cur.doc()) == 0)
                    b.addPosting(t, cur.doc(), cur.tf());
        }
    }
    if (crash_mid_merge && crash_mid_merge()) {
        std::lock_guard<std::mutex> lk(mu_);
        ++mergesCrashed_;
        return false;
    }

    std::lock_guard<std::mutex> lk(mu_);
    auto merged = b.build(version_ + 1);

    // Carry tombstones forward. Published sets may have advanced past
    // the captured ones while we built (a concurrent commit): those
    // docs are still in `merged`, so they must stay published-deleted,
    // not resurrect. Pending-unpublished ones ride along unpublished.
    //
    // Only tombstones aimed at the copy that made it INTO `merged`
    // carry: a tombstone for a doc that was already dead at capture
    // targets a copy the merge dropped, and blindly carrying it would
    // kill a newer live copy of the same id from a sibling input.
    DeleteSet new_pending;
    auto new_published = std::make_shared<DeleteSet>();
    std::unordered_set<uint64_t> input_uids;
    for (const Input &in : inputs)
        input_uids.insert(in.segment->uid());
    std::vector<SegmentEntry> kept;
    kept.reserve(entries_.size());
    for (SegmentEntry &e : entries_) {
        if (input_uids.count(e.segment->uid()) == 0) {
            kept.push_back(std::move(e));
            continue;
        }
        const DeleteSet *captured = nullptr;
        for (const Input &in : inputs)
            if (in.segment->uid() == e.segment->uid()) {
                captured = in.published.get();
                break;
            }
        const auto copy_in_merged = [&](DocId d) {
            return merged->contains(d) &&
                (!captured || captured->count(d) == 0);
        };
        for (DocId d : e.pending)
            if (copy_in_merged(d))
                new_pending.insert(d);
        if (e.published)
            for (DocId d : *e.published)
                if (copy_in_merged(d))
                    new_published->insert(d);
    }
    entries_ = std::move(kept);

    if (merged->numDocs() != 0) {
        for (DocId d : merged->docIds()) {
            const auto it = location_.find(d);
            if (it != location_.end() &&
                input_uids.count(it->second) != 0)
                it->second = merged->uid();
        }
        SegmentEntry me;
        me.segment = merged;
        me.dirty = new_pending.size() != new_published->size();
        me.pending = std::move(new_pending);
        if (!new_published->empty())
            me.published = std::move(new_published);
        entries_.push_back(std::move(me));
    }

    ++merges_;
    ++version_;
    publishLocked();
    return true;
}

LiveStats
LiveIndex::stats() const
{
    LiveStats s;
    std::lock_guard<std::mutex> lk(mu_);
    s.version = version_;
    s.docsAdded = docsAdded_;
    s.docsUpdated = docsUpdated_;
    s.docsRemoved = docsRemoved_;
    s.commits = commits_;
    s.merges = merges_;
    s.mergesCrashed = mergesCrashed_;
    s.segments = static_cast<uint32_t>(entries_.size());
    s.bufferedDocs = buffer_.numDocs();
    std::lock_guard<std::mutex> sl(snapMu_);
    s.liveDocs = current_->liveDocs;
    s.deletedDocs = current_->deletedDocs;
    return s;
}

} // namespace wsearch
