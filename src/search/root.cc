#include "search/root.hh"

#include <algorithm>

#include "search/topk.hh"

namespace wsearch {

std::vector<ScoredDoc>
RootServer::merge(const std::vector<std::vector<ScoredDoc>> &partials,
                  uint32_t k)
{
    TopK topk(k);
    for (const auto &partial : partials)
        for (const auto &sd : partial)
            topk.offer(sd);
    return topk.results();
}

ServingTree::ServingTree(std::vector<LeafServer *> leaves,
                         size_t cache_capacity)
    : leaves_(std::move(leaves)), cache_(cache_capacity)
{
    wsearch_assert(!leaves_.empty());
}

std::vector<ScoredDoc>
ServingTree::handle(uint32_t tid, const Query &query)
{
    ++stats_.queries;
    std::vector<ScoredDoc> cached;
    if (cache_.lookup(query.id, &cached)) {
        ++stats_.cacheHits;
        return cached;
    }
    std::vector<std::vector<ScoredDoc>> partials;
    partials.reserve(leaves_.size());
    for (LeafServer *leaf : leaves_) {
        const uint32_t leaf_tid = tid % leaf->numThreads();
        partials.push_back(leaf->serve(leaf_tid, query));
        ++stats_.leafQueries;
    }
    std::vector<ScoredDoc> merged = RootServer::merge(partials,
                                                      query.topK);
    cache_.insert(query.id, merged);
    return merged;
}

MultiLevelTree::MultiLevelTree(std::vector<LeafServer *> leaves,
                               uint32_t fanout, size_t cache_capacity)
    : cache_(cache_capacity)
{
    wsearch_assert(!leaves.empty());
    wsearch_assert(fanout >= 1);
    for (size_t i = 0; i < leaves.size(); i += fanout) {
        std::vector<LeafServer *> group;
        for (size_t j = i; j < std::min(leaves.size(), i + fanout); ++j)
            group.push_back(leaves[j]);
        groups_.push_back(std::move(group));
    }
}

std::vector<ScoredDoc>
MultiLevelTree::handle(uint32_t tid, const Query &query)
{
    ++stats_.queries;
    std::vector<ScoredDoc> cached;
    if (cache_.lookup(query.id, &cached)) {
        ++stats_.cacheHits;
        return cached;
    }
    // Each intermediate parent merges its group's leaf results before
    // forwarding the group top-k to the root.
    std::vector<std::vector<ScoredDoc>> parent_results;
    parent_results.reserve(groups_.size());
    for (const auto &group : groups_) {
        std::vector<std::vector<ScoredDoc>> partials;
        partials.reserve(group.size());
        for (LeafServer *leaf : group) {
            partials.push_back(
                leaf->serve(tid % leaf->numThreads(), query));
            ++stats_.leafQueries;
        }
        parent_results.push_back(
            RootServer::merge(partials, query.topK));
        ++stats_.parentMerges;
    }
    std::vector<ScoredDoc> merged =
        RootServer::merge(parent_results, query.topK);
    cache_.insert(query.id, merged);
    return merged;
}

} // namespace wsearch
