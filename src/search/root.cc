#include "search/root.hh"

#include <algorithm>
#include <unordered_map>

#include "search/topk.hh"

namespace wsearch {

namespace {

/** Offer every partial into @p topk, deduplicating doc ids (a doc
 *  appearing in several partials -- primary + hedge answering for the
 *  same shard -- keeps its best score). */
template <typename PartialFilter>
std::vector<ScoredDoc>
dedupMerge(const std::vector<std::vector<ScoredDoc>> &partials,
           uint32_t k, PartialFilter use_partial)
{
    std::unordered_map<DocId, float> best;
    for (size_t s = 0; s < partials.size(); ++s) {
        if (!use_partial(s))
            continue;
        for (const ScoredDoc &sd : partials[s]) {
            auto [it, inserted] = best.emplace(sd.doc, sd.score);
            if (!inserted && sd.score > it->second)
                it->second = sd.score;
        }
    }
    TopK topk(k);
    for (const auto &[doc, score] : best)
        topk.offer({doc, score});
    return topk.results();
}

} // namespace

std::vector<ScoredDoc>
RootServer::merge(const std::vector<std::vector<ScoredDoc>> &partials,
                  uint32_t k)
{
    return dedupMerge(partials, k, [](size_t) { return true; });
}

MergedPage
RootServer::mergeWithCoverage(
    const std::vector<std::vector<ScoredDoc>> &partials,
    const std::vector<uint8_t> &answered, uint32_t k)
{
    wsearch_assert(partials.size() == answered.size());
    MergedPage page;
    page.shardsTotal = static_cast<uint32_t>(partials.size());
    for (const uint8_t a : answered)
        page.shardsAnswered += a ? 1 : 0;
    page.docs = dedupMerge(partials, k,
                           [&](size_t s) { return answered[s] != 0; });
    return page;
}

MergedPage
RootServer::mergeWithCoverage(
    const std::vector<std::vector<ScoredDoc>> &partials,
    const std::vector<ShardOutcome> &outcomes, uint32_t k)
{
    wsearch_assert(partials.size() == outcomes.size());
    MergedPage page;
    page.shardsTotal = static_cast<uint32_t>(partials.size());
    for (const ShardOutcome o : outcomes) {
        if (o == ShardOutcome::Answered)
            ++page.shardsAnswered;
        else if (o == ShardOutcome::Unavailable)
            ++page.shardsUnavailable;
    }
    page.docs = dedupMerge(partials, k, [&](size_t s) {
        return outcomes[s] == ShardOutcome::Answered;
    });
    return page;
}

ServingTree::ServingTree(std::vector<LeafServer *> leaves,
                         size_t cache_capacity)
    : leaves_(std::move(leaves)), cache_(cache_capacity)
{
    wsearch_assert(!leaves_.empty());
}

SearchResponse
ServingTree::handle(uint32_t tid, const SearchRequest &req)
{
    const Query &query = req.query;
    SearchResponse resp;
    queries_.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lk(cacheMu_);
        if (cache_.lookup(query.id, &resp.docs)) {
            cacheHits_.fetch_add(1, std::memory_order_relaxed);
            return resp;
        }
    }
    std::vector<std::vector<ScoredDoc>> partials;
    partials.reserve(leaves_.size());
    for (LeafServer *leaf : leaves_) {
        const uint32_t leaf_tid = tid % leaf->numThreads();
        SearchResponse leaf_resp = leaf->serve(leaf_tid, req);
        resp.stats.merge(leaf_resp.stats);
        resp.degraded = resp.degraded || leaf_resp.degraded ||
            !leaf_resp.ok;
        partials.push_back(std::move(leaf_resp.docs));
        leafQueries_.fetch_add(1, std::memory_order_relaxed);
    }
    resp.docs = RootServer::merge(partials, query.topK);
    if (!resp.degraded) {
        std::lock_guard<std::mutex> lk(cacheMu_);
        cache_.insert(query.id, resp.docs);
    }
    return resp;
}


MultiLevelTree::MultiLevelTree(std::vector<LeafServer *> leaves,
                               uint32_t fanout, size_t cache_capacity)
    : cache_(cache_capacity)
{
    wsearch_assert(!leaves.empty());
    wsearch_assert(fanout >= 1);
    for (size_t i = 0; i < leaves.size(); i += fanout) {
        std::vector<LeafServer *> group;
        for (size_t j = i; j < std::min(leaves.size(), i + fanout); ++j)
            group.push_back(leaves[j]);
        groups_.push_back(std::move(group));
    }
}

SearchResponse
MultiLevelTree::handle(uint32_t tid, const SearchRequest &req)
{
    const Query &query = req.query;
    SearchResponse resp;
    queries_.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lk(cacheMu_);
        if (cache_.lookup(query.id, &resp.docs)) {
            cacheHits_.fetch_add(1, std::memory_order_relaxed);
            return resp;
        }
    }
    // Each intermediate parent merges its group's leaf results before
    // forwarding the group top-k to the root.
    std::vector<std::vector<ScoredDoc>> parent_results;
    parent_results.reserve(groups_.size());
    for (const auto &group : groups_) {
        std::vector<std::vector<ScoredDoc>> partials;
        partials.reserve(group.size());
        for (LeafServer *leaf : group) {
            SearchResponse leaf_resp =
                leaf->serve(tid % leaf->numThreads(), req);
            resp.stats.merge(leaf_resp.stats);
            resp.degraded = resp.degraded || leaf_resp.degraded ||
                !leaf_resp.ok;
            partials.push_back(std::move(leaf_resp.docs));
            leafQueries_.fetch_add(1, std::memory_order_relaxed);
        }
        parent_results.push_back(
            RootServer::merge(partials, query.topK));
        parentMerges_.fetch_add(1, std::memory_order_relaxed);
    }
    resp.docs = RootServer::merge(parent_results, query.topK);
    if (!resp.degraded) {
        std::lock_guard<std::mutex> lk(cacheMu_);
        cache_.insert(query.id, resp.docs);
    }
    return resp;
}


} // namespace wsearch
