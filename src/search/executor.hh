/**
 * @file
 * Query execution over an index shard: conjunctive (AND) evaluation
 * by driving the rarest posting list and seeking the others, and
 * disjunctive (OR) evaluation via score accumulators, both feeding a
 * bounded top-k with BM25 scores. Every logical memory reference is
 * reported to the TouchSink with its segment-tagged canonical address
 * (shard for posting bytes, heap for lexicon/metadata/accumulators,
 * stack for frames), which is what makes the engine usable as a
 * production-like trace source.
 */

#ifndef WSEARCH_SEARCH_EXECUTOR_HH
#define WSEARCH_SEARCH_EXECUTOR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "search/index.hh"
#include "search/query.hh"
#include "search/scorer.hh"
#include "search/topk.hh"
#include "search/touch.hh"

namespace wsearch {

/** Per-query execution statistics. */
struct ExecStats
{
    uint64_t postingsDecoded = 0;
    uint64_t candidatesScored = 0;
    uint64_t shardBytesRead = 0;
};

/** Executes queries on one shard for one logical thread. */
class QueryExecutor
{
  public:
    /**
     * @param tid  logical thread id (selects scratch/stack regions)
     * @param sink touch receiver (never null; use NullTouchSink)
     */
    QueryExecutor(const IndexShard &shard, uint32_t tid,
                  TouchSink *sink);

    /** Execute and return the top-k best-first. */
    std::vector<ScoredDoc> execute(const Query &query);

    const ExecStats &lastStats() const { return lastStats_; }

    /** Peak per-query scratch bytes observed (for footprint stats). */
    uint64_t scratchHighWater() const { return scratchHighWater_; }

  private:
    struct TermCursorData
    {
        TermId term;
        TermInfo info;
        std::vector<uint8_t> bytes;
    };

    void loadTerm(TermId term, TermCursorData &out);
    double scoreCandidate(DocId doc, uint32_t tf, uint32_t doc_freq);
    void executeConjunctive(const Query &q, TopK &topk);
    void executeDisjunctive(const Query &q, TopK &topk);

    /** Shard touch helper: one touch per decoded posting entry. */
    void
    touchShard(const TermCursorData &t, uint64_t byte_pos,
               uint32_t bytes)
    {
        sink_->touch(engine_vaddr::shardAddr(t.info.shardOffset +
                                             byte_pos),
                     bytes, AccessKind::Shard, false);
    }

    const IndexShard &shard_;
    Bm25Scorer scorer_;
    uint32_t tid_;
    TouchSink *sink_;
    ExecStats lastStats_;
    uint64_t scratchHighWater_ = 0;
    std::unordered_map<DocId, float> accum_; ///< OR-mode accumulators
    std::vector<std::pair<DocId, float>> drain_; ///< sorted drain scratch
};

} // namespace wsearch

#endif // WSEARCH_SEARCH_EXECUTOR_HH
