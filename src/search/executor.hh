/**
 * @file
 * Query execution over an index shard. Two engines behind one
 * SearchRequest/SearchResponse API:
 *
 *  - Pruned fast path (default): block postings walked through
 *    BlockPostingCursor. Conjunctive (AND) queries drive the rarest
 *    list and gallop the others with O(blocks) skip-table seeks, so
 *    blocks without candidates are never decoded. Disjunctive (OR)
 *    queries run document-at-a-time MaxScore: terms sorted by score
 *    upper bound, candidates generated only from the essential lists,
 *    and docs whose bound cannot beat the current top-k threshold are
 *    never (fully) scored.
 *
 *  - Sequential reference (ExecAlgo::kSequential): the exhaustive
 *    term-at-a-time / linear-merge engine, kept as the equivalence
 *    oracle and the "before" side of bench_leaf.
 *
 * Both return byte-identical top-k (score desc, doc id asc on ties):
 * every fully scored document accumulates its per-term contributions
 * in the same canonical order (terms sorted ascending by upper bound
 * for OR, by docFreq for AND) in double precision, and pruning
 * decisions carry a conservative epsilon so float rounding at the
 * final cast can never admit a pruned document.
 *
 * Every logical memory reference is reported to the TouchSink with
 * its segment-tagged canonical address: shard for decoded posting
 * regions (one touch per decoded block -- skipped blocks are never
 * touched), heap for lexicon/skip-metadata/doc-metadata/accumulators,
 * stack for frames. This is what makes the engine usable as a
 * production-like trace source, and why pruning visibly changes the
 * simulated memory behaviour, not just wall-clock.
 */

#ifndef WSEARCH_SEARCH_EXECUTOR_HH
#define WSEARCH_SEARCH_EXECUTOR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "search/index.hh"
#include "search/query.hh"
#include "search/scorer.hh"
#include "search/topk.hh"
#include "search/touch.hh"
#include "serve/clock.hh"

namespace wsearch {

/** Executes queries on one shard for one logical thread. */
class QueryExecutor
{
  public:
    /**
     * @param tid   logical thread id (selects scratch/stack regions)
     * @param sink  touch receiver (never null; use NullTouchSink)
     * @param clock time source for mid-query deadline polls (null =
     *              real steady clock; tests inject a SimClock so
     *              deadline expiry is a function of virtual time)
     */
    QueryExecutor(const IndexShard &shard, uint32_t tid,
                  TouchSink *sink, const Clock *clock = nullptr);

    /**
     * Execute one request. All scratch (cursors, decode buffers,
     * accumulators, heaps) lives in a per-executor arena that is
     * reused across queries: steady-state execution performs no
     * per-query allocation. Honors req.deadlineNs / req.cancel by
     * abandoning mid-query (response.degraded).
     */
    SearchResponse execute(const SearchRequest &req);

    const ExecStats &lastStats() const { return lastStats_; }

    /** Peak per-query scratch bytes observed (for footprint stats). */
    uint64_t scratchHighWater() const { return scratchHighWater_; }

  private:
    /** Arena slot for one query term: cursor state + fallback
     *  buffers, all reused across queries. */
    struct TermCursorData
    {
        TermId term = 0;
        TermInfo info;
        double maxScore = 0.0; ///< list-wide contribution upper bound
        PostingView view;
        BlockPostingCursor cursor;
        PostingCursor seq;     ///< sequential-reference cursor
        uint64_t consumed = 0; ///< seq-path bytes accounted so far
        uint64_t seqDecoded = 0; ///< seq-path postings accounted
        uint32_t blocksDecoded = 0; ///< this query (for skip stats)
        /** Decode-on-demand fallback (ProceduralIndex): generated
         *  bytes + skip table in executor-owned scratch. */
        std::vector<uint8_t> ownedBytes;
        std::vector<SkipEntry> ownedSkips;
    };

    /** Shared engine behind both execute() overloads; @p policy
     *  carries deadline/cancel/algo (its query member is unused, so
     *  the legacy shim can avoid copying the query). */
    SearchResponse executeImpl(const Query &q,
                               const SearchRequest &policy);

    void loadTerm(TermId term, TermCursorData &out);
    double scoreCandidate(DocId doc, uint32_t tf, uint32_t doc_freq);
    bool shouldStop(const SearchRequest &policy);

    /** Deadline time source (injected clock or the steady clock). */
    uint64_t
    timeNowNs() const
    {
        return clock_ ? clock_->now() : nowNs();
    }

    /** Drain cursor instrumentation (decoded block -> shard touch,
     *  skip scan -> heap touch) after any cursor operation. */
    void drainCursor(TermCursorData &t);

    void executeConjunctive(const Query &q,
                            const SearchRequest &policy, TopK &topk);
    void executeDisjunctive(const Query &q,
                            const SearchRequest &policy, TopK &topk);
    void executeConjunctiveSeq(const Query &q,
                               const SearchRequest &policy,
                               TopK &topk);
    void executeDisjunctiveSeq(const Query &q,
                               const SearchRequest &policy,
                               TopK &topk);

    /** Shard touch helper: one touch per decoded posting region. */
    void
    touchShard(const TermCursorData &t, uint64_t byte_pos,
               uint32_t bytes)
    {
        sink_->touch(engine_vaddr::shardAddr(t.info.shardOffset +
                                             byte_pos),
                     bytes, AccessKind::Shard, false);
    }

    const IndexShard &shard_;
    Bm25Scorer scorer_;
    uint32_t tid_;
    TouchSink *sink_;
    const Clock *clock_;
    ExecStats lastStats_;
    uint64_t scratchHighWater_ = 0;
    bool degraded_ = false; ///< deadline/cancel hit mid-query
    uint64_t checkTick_ = 0; ///< paces deadline/cancel polls

    // ----- per-executor arena, reused across queries -----
    std::vector<TermCursorData> terms_; ///< cursor slots
    std::vector<uint32_t> order_;       ///< canonical term order
    std::vector<double> suffixUb_;      ///< MaxScore suffix bounds
    TopK topk_{0};
    std::unordered_map<DocId, double> accum_; ///< sequential OR
    std::vector<std::pair<DocId, double>> drain_; ///< sorted drain
};

} // namespace wsearch

#endif // WSEARCH_SEARCH_EXECUTOR_HH
