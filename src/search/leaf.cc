#include "search/leaf.hh"

#include "search/live/live_index.hh"
#include "search/live/snapshot_search.hh"

namespace wsearch {

LeafServer::LeafServer(const IndexShard &shard, const Config &cfg,
                       TouchSink *sink)
    : shard_(&shard), cfg_(cfg)
{
    wsearch_assert(cfg.numThreads >= 1);
    TouchSink *effective = sink ? sink : &nullSink_;
    for (uint32_t t = 0; t < cfg.numThreads; ++t) {
        executors_.push_back(std::make_unique<QueryExecutor>(
            shard, t, effective, cfg.clock));
    }
}

LeafServer::LeafServer(std::shared_ptr<const IndexSnapshot> snapshot,
                       const Config &cfg, TouchSink *sink)
    : shard_(nullptr), cfg_(cfg), snapshot_(std::move(snapshot))
{
    wsearch_assert(cfg.numThreads >= 1);
    wsearch_assert(snapshot_ != nullptr);
    // Live segments hold global doc ids already; a stride would remap
    // them into nonsense.
    wsearch_assert(cfg.docIdStride == 1 && cfg.docIdOffset == 0);
    TouchSink *effective = sink ? sink : &nullSink_;
    for (uint32_t t = 0; t < cfg.numThreads; ++t) {
        searchers_.push_back(std::make_unique<SnapshotSearcher>(
            t, effective, cfg.clock));
    }
}

LeafServer::~LeafServer() = default;

SearchResponse
LeafServer::serve(uint32_t tid, const SearchRequest &req)
{
    SearchResponse resp;
    if (live()) {
        wsearch_assert(tid < searchers_.size());
        // Capture once: this query finishes on this version even if
        // adoptSnapshot() swaps the pointer mid-flight.
        std::shared_ptr<const IndexSnapshot> snap;
        {
            std::lock_guard<std::mutex> lk(snapMu_);
            snap = snapshot_;
        }
        resp = searchers_[tid]->search(*snap, req);
        resp.indexVersion = snap->version;
    } else {
        wsearch_assert(tid < executors_.size());
        resp = executors_[tid]->execute(req);
        if (cfg_.docIdStride != 1 || cfg_.docIdOffset != 0) {
            for (auto &r : resp.docs)
                r.doc = r.doc * cfg_.docIdStride + cfg_.docIdOffset;
        }
    }
    queriesServed_.fetch_add(1, std::memory_order_relaxed);
    return resp;
}

bool
LeafServer::adoptSnapshot(std::shared_ptr<const IndexSnapshot> snap)
{
    wsearch_assert(live());
    if (!snap || !snap->validate()) {
        handoffsRejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    std::lock_guard<std::mutex> lk(snapMu_);
    if (snap->version < snapshot_->version) {
        handoffsRejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    snapshot_ = std::move(snap);
    snapshotsAdopted_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

uint64_t
LeafServer::currentVersion() const
{
    if (!live())
        return 0;
    std::lock_guard<std::mutex> lk(snapMu_);
    return snapshot_->version;
}

std::shared_ptr<const IndexSnapshot>
LeafServer::snapshot() const
{
    if (!live())
        return nullptr;
    std::lock_guard<std::mutex> lk(snapMu_);
    return snapshot_;
}

PostingCodec
LeafServer::shardCodec() const
{
    if (!live())
        return shard_->codec();
    const auto snap = snapshot();
    for (const SegmentView &v : snap->segments)
        return v.segment->codec();
    return PostingCodec::kVarint; // empty snapshot: nothing encoded
}

const ExecStats &
LeafServer::lastStats(uint32_t tid) const
{
    return live() ? searchers_[tid]->lastStats()
                  : executors_[tid]->lastStats();
}

FootprintStats
LeafServer::footprint() const
{
    FootprintStats f;
    f.codeBytes = cfg_.codeBytes;
    f.stackBytes = static_cast<uint64_t>(cfg_.numThreads) *
        cfg_.stackBytesPerThread;
    // Shared heap: document metadata and the term dictionary. The
    // shard itself is NOT heap (the paper accounts it separately).
    uint64_t docs = 0;
    uint64_t terms = 0;
    if (live()) {
        const auto snap = snapshot();
        for (const SegmentView &v : snap->segments) {
            docs += v.segment->numDocs();
            terms += v.segment->numTerms();
        }
    } else {
        docs = shard_->numDocs();
        terms = shard_->numTerms();
    }
    f.heapSharedBytes = docs * engine_vaddr::kDocMetaBytes +
        terms * engine_vaddr::kLexiconEntryBytes;
    uint64_t per_thread = 0;
    for (const auto &e : executors_)
        per_thread += e->scratchHighWater() + cfg_.perThreadBufferBytes;
    if (live())
        per_thread += static_cast<uint64_t>(searchers_.size()) *
            cfg_.perThreadBufferBytes;
    f.heapPerThreadBytes = per_thread;
    return f;
}

} // namespace wsearch
