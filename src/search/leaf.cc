#include "search/leaf.hh"

namespace wsearch {

LeafServer::LeafServer(const IndexShard &shard, const Config &cfg,
                       TouchSink *sink)
    : shard_(shard), cfg_(cfg)
{
    wsearch_assert(cfg.numThreads >= 1);
    TouchSink *effective = sink ? sink : &nullSink_;
    for (uint32_t t = 0; t < cfg.numThreads; ++t) {
        executors_.push_back(std::make_unique<QueryExecutor>(
            shard, t, effective, cfg.clock));
    }
}

SearchResponse
LeafServer::serve(uint32_t tid, const SearchRequest &req)
{
    wsearch_assert(tid < executors_.size());
    SearchResponse resp = executors_[tid]->execute(req);
    if (cfg_.docIdStride != 1 || cfg_.docIdOffset != 0) {
        for (auto &r : resp.docs)
            r.doc = r.doc * cfg_.docIdStride + cfg_.docIdOffset;
    }
    queriesServed_.fetch_add(1, std::memory_order_relaxed);
    return resp;
}

std::vector<ScoredDoc>
LeafServer::serve(uint32_t tid, const Query &query)
{
    SearchRequest req;
    req.query = query;
    return serve(tid, req).docs;
}

FootprintStats
LeafServer::footprint() const
{
    FootprintStats f;
    f.codeBytes = cfg_.codeBytes;
    f.stackBytes =
        static_cast<uint64_t>(cfg_.numThreads) * cfg_.stackBytesPerThread;
    // Shared heap: document metadata and the term dictionary. The
    // shard itself is NOT heap (the paper accounts it separately).
    f.heapSharedBytes =
        static_cast<uint64_t>(shard_.numDocs()) *
            engine_vaddr::kDocMetaBytes +
        static_cast<uint64_t>(shard_.numTerms()) *
            engine_vaddr::kLexiconEntryBytes;
    uint64_t per_thread = 0;
    for (const auto &e : executors_)
        per_thread += e->scratchHighWater() + cfg_.perThreadBufferBytes;
    f.heapPerThreadBytes = per_thread;
    return f;
}

} // namespace wsearch
