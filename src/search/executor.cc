#include "search/executor.hh"

#include <algorithm>

namespace wsearch {

namespace {

/** Scratch layout offsets within a thread's per-query region. */
constexpr uint64_t kTopKOffset = 0;
constexpr uint64_t kAccumOffset = 64 * KiB;
constexpr uint32_t kAccumEntryBytes = 16;
constexpr uint64_t kAccumSlots = (8ull << 20) / kAccumEntryBytes;

} // namespace

QueryExecutor::QueryExecutor(const IndexShard &shard, uint32_t tid,
                             TouchSink *sink)
    : shard_(shard), scorer_(shard.numDocs(), shard.avgDocLen()),
      tid_(tid), sink_(sink)
{
    wsearch_assert(sink != nullptr);
}

void
QueryExecutor::loadTerm(TermId term, TermCursorData &out)
{
    out.term = term;
    out.info = shard_.termInfo(term);
    // Dictionary lookup: one heap touch per probe step (model a
    // two-probe hash lookup).
    sink_->touch(engine_vaddr::lexiconAddr(term),
                 engine_vaddr::kLexiconEntryBytes, AccessKind::Heap,
                 false);
    shard_.postingBytes(term, out.bytes);
}

double
QueryExecutor::scoreCandidate(DocId doc, uint32_t tf, uint32_t doc_freq)
{
    // Document metadata read (length + static rank).
    sink_->touch(engine_vaddr::docMetaAddr(doc), 8, AccessKind::Heap,
                 false);
    ++lastStats_.candidatesScored;
    return scorer_.score(tf, shard_.docLen(doc), doc_freq);
}

void
QueryExecutor::executeConjunctive(const Query &q, TopK &topk)
{
    std::vector<TermCursorData> terms(q.terms.size());
    for (size_t i = 0; i < q.terms.size(); ++i)
        loadTerm(q.terms[i], terms[i]);
    // Drive the rarest list; seek the others.
    std::sort(terms.begin(), terms.end(),
              [](const TermCursorData &a, const TermCursorData &b) {
                  return a.info.docFreq < b.info.docFreq;
              });

    std::vector<PostingCursor> cursors;
    cursors.reserve(terms.size());
    for (const auto &t : terms) {
        cursors.emplace_back(t.bytes.data(),
                             t.bytes.data() + t.bytes.size(),
                             t.info.docFreq, shard_.payloadBytes());
    }
    std::vector<size_t> consumed(terms.size(), 0);
    auto account = [&](size_t i) {
        const size_t now = cursors[i].bytesConsumed(
            terms[i].bytes.data());
        if (now > consumed[i]) {
            touchShard(terms[i],
                       consumed[i],
                       static_cast<uint32_t>(now - consumed[i]));
            lastStats_.shardBytesRead += now - consumed[i];
            lastStats_.postingsDecoded +=
                (now - consumed[i] + 2) / 3;
            consumed[i] = now;
        }
    };

    bool exhausted = false;
    while (cursors[0].valid() && !exhausted) {
        const DocId cand = cursors[0].doc();
        bool all = true;
        for (size_t i = 1; i < cursors.size(); ++i) {
            cursors[i].seek(cand);
            account(i);
            if (!cursors[i].valid()) {
                exhausted = true; // no further matches possible
                all = false;
                break;
            }
            if (cursors[i].doc() != cand) {
                all = false;
                break;
            }
        }
        if (all) {
            double score = 0;
            for (size_t i = 0; i < cursors.size(); ++i) {
                score += scoreCandidate(cand, cursors[i].tf(),
                                        terms[i].info.docFreq);
            }
            // Top-k heap update in scratch.
            sink_->touch(engine_vaddr::scratchAddr(tid_, kTopKOffset +
                             (topk.size() % 64) * 16),
                         16, AccessKind::Heap, true);
            topk.offer({cand, static_cast<float>(score)});
        }
        cursors[0].next();
        account(0);
    }
}

void
QueryExecutor::executeDisjunctive(const Query &q, TopK &topk)
{
    accum_.clear();
    std::vector<TermCursorData> terms(q.terms.size());
    for (size_t i = 0; i < q.terms.size(); ++i)
        loadTerm(q.terms[i], terms[i]);

    for (const auto &t : terms) {
        PostingCursor cur(t.bytes.data(),
                          t.bytes.data() + t.bytes.size(),
                          t.info.docFreq, shard_.payloadBytes());
        size_t consumed = 0;
        while (cur.valid()) {
            const DocId doc = cur.doc();
            const double s =
                scoreCandidate(doc, cur.tf(), t.info.docFreq);
            // Accumulator update: hashed slot in scratch.
            const uint64_t slot =
                mix64(doc * 0x9e3779b97f4a7c15ull) % kAccumSlots;
            sink_->touch(engine_vaddr::scratchAddr(tid_, kAccumOffset +
                             slot * kAccumEntryBytes),
                         kAccumEntryBytes, AccessKind::Heap, true);
            accum_[doc] += static_cast<float>(s);
            cur.next();
            const size_t now = cur.bytesConsumed(t.bytes.data());
            touchShard(t, consumed,
                       static_cast<uint32_t>(now - consumed));
            lastStats_.shardBytesRead += now - consumed;
            ++lastStats_.postingsDecoded;
            consumed = now;
        }
    }
    const uint64_t scratch_bytes = kAccumOffset +
        std::min<uint64_t>(accum_.size(), kAccumSlots) *
            kAccumEntryBytes;
    scratchHighWater_ = std::max(scratchHighWater_, scratch_bytes);
    // Drain in doc order: unordered_map iteration order depends on
    // bucket history, which would make traces non-deterministic.
    drain_.assign(accum_.begin(), accum_.end());
    std::sort(drain_.begin(), drain_.end());
    for (const auto &[doc, score] : drain_) {
        sink_->touch(engine_vaddr::scratchAddr(tid_, kTopKOffset +
                         (doc % 64) * 16),
                     16, AccessKind::Heap, false);
        topk.offer({doc, score});
    }
}

std::vector<ScoredDoc>
QueryExecutor::execute(const Query &query)
{
    lastStats_ = ExecStats{};
    // Query parse / setup frames on the stack.
    for (uint64_t off = 0; off < 256; off += 64)
        sink_->touch(engine_vaddr::stackAddr(tid_, off), 64,
                     AccessKind::Stack, true);
    TopK topk(query.topK);
    if (query.terms.empty())
        return {};
    if (query.conjunctive && query.terms.size() > 1)
        executeConjunctive(query, topk);
    else
        executeDisjunctive(query, topk);
    return topk.results();
}

} // namespace wsearch
