#include "search/executor.hh"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "util/rng.hh"
#include "util/units.hh"

namespace wsearch {

namespace {

/** Scratch layout offsets within a thread's per-query region. */
constexpr uint64_t kTopKOffset = 0;
constexpr uint64_t kAccumOffset = 64 * KiB;
constexpr uint32_t kAccumEntryBytes = 16;
constexpr uint64_t kAccumSlots = (8ull << 20) / kAccumEntryBytes;

/** Deadline/cancel poll period (candidate evaluations). */
constexpr uint64_t kStopCheckMask = 0x3FF;

/**
 * Conservative pruning margin. A document is pruned only when its
 * score upper bound falls below the top-k threshold by more than this
 * slack, which covers (a) double summation rounding in the bound and
 * (b) the final double -> float cast rounding *up* to exactly the
 * threshold (floats can enter on a score tie with a lower doc id).
 * The analytic MaxScore slack (doc_len -> 0) dwarfs it, so it costs
 * nothing in pruning power.
 */
double
pruneEps(double bound)
{
    return 1e-6 * (bound < 0 ? -bound : bound) + 1e-9;
}

} // namespace

QueryExecutor::QueryExecutor(const IndexShard &shard, uint32_t tid,
                             TouchSink *sink, const Clock *clock)
    : shard_(shard), scorer_(shard.numDocs(), shard.avgDocLen()),
      tid_(tid), sink_(sink), clock_(clock)
{
    wsearch_assert(sink != nullptr);
}

void
QueryExecutor::loadTerm(TermId term, TermCursorData &out)
{
    out.term = term;
    out.info = shard_.termInfo(term);
    out.consumed = 0;
    out.seqDecoded = 0;
    out.blocksDecoded = 0;
    // Dictionary lookup: term stats, shard placement, and the
    // precomputed list max-score all live in the lexicon entry.
    sink_->touch(engine_vaddr::lexiconAddr(term),
                 engine_vaddr::kLexiconEntryBytes, AccessKind::Heap,
                 false);
    if (!shard_.postingView(term, out.view)) {
        // Decode-on-demand backend (ProceduralIndex): generate the
        // bytes into executor-owned scratch and build the skip
        // sidecar in one pass. The scratch is reused across queries.
        shard_.postingBytes(term, out.ownedBytes);
        buildSkipEntries(out.ownedBytes.data(),
                         out.ownedBytes.data() + out.ownedBytes.size(),
                         out.info.docFreq, shard_.payloadBytes(),
                         out.ownedSkips);
        out.view.bytes = out.ownedBytes.data();
        out.view.size = out.ownedBytes.size();
        out.view.skips = out.ownedSkips.data();
        out.view.numSkips =
            static_cast<uint32_t>(out.ownedSkips.size());
        out.view.count = out.info.docFreq;
        out.view.codec = shard_.codec();
    }
    out.maxScore = scorer_.maxScore(out.info.maxTf, out.info.docFreq);
}

double
QueryExecutor::scoreCandidate(DocId doc, uint32_t tf, uint32_t doc_freq)
{
    // Document metadata read (length + static rank).
    sink_->touch(engine_vaddr::docMetaAddr(doc), 8, AccessKind::Heap,
                 false);
    ++lastStats_.candidatesScored;
    return scorer_.score(tf, shard_.docLen(doc), doc_freq);
}

bool
QueryExecutor::shouldStop(const SearchRequest &policy)
{
    if (degraded_)
        return true;
    if (!policy.cancel && policy.deadlineNs == 0)
        return false;
    if ((++checkTick_ & kStopCheckMask) != 0)
        return false;
    if (policy.cancel &&
        policy.cancel->load(std::memory_order_acquire)) {
        degraded_ = true;
        return true;
    }
    if (policy.deadlineNs != 0 && timeNowNs() > policy.deadlineNs) {
        degraded_ = true;
        return true;
    }
    return false;
}

void
QueryExecutor::drainCursor(TermCursorData &t)
{
    uint32_t first = 0, count = 0;
    if (t.cursor.takeSkipScan(first, count)) {
        // Skip-table scan: block metadata reads (heap, not shard).
        sink_->touch(engine_vaddr::skipAddr(t.info.shardOffset, first),
                     count * engine_vaddr::kSkipEntryBytes,
                     AccessKind::Heap, false);
        lastStats_.skipEntriesScanned += count;
    }
    uint64_t bb = 0, be = 0;
    uint32_t postings = 0;
    if (t.cursor.takeDecodedBlock(bb, be, postings)) {
        // One logical touch per decoded posting region.
        touchShard(t, bb, static_cast<uint32_t>(be - bb));
        lastStats_.shardBytesRead += be - bb;
        lastStats_.postingsDecoded += postings;
        ++lastStats_.blocksDecoded;
        if (t.view.codec == PostingCodec::kPacked)
            ++lastStats_.packedBlocksDecoded;
        ++t.blocksDecoded;
    }
}

// ---------------------------------------------------------------------
// Pruned fast path
// ---------------------------------------------------------------------

void
QueryExecutor::executeConjunctive(const Query &q,
                                  const SearchRequest &policy,
                                  TopK &topk)
{
    const size_t n = q.terms.size();
    // Drive the rarest list; gallop the others. Deterministic order
    // (docFreq, term, slot) -- also the canonical scoring order.
    std::sort(order_.begin(), order_.end(),
              [this](uint32_t a, uint32_t b) {
                  const TermCursorData &ta = terms_[a];
                  const TermCursorData &tb = terms_[b];
                  if (ta.info.docFreq != tb.info.docFreq)
                      return ta.info.docFreq < tb.info.docFreq;
                  if (ta.term != tb.term)
                      return ta.term < tb.term;
                  return a < b;
              });
    for (size_t i = 0; i < n; ++i) {
        TermCursorData &t = terms_[order_[i]];
        t.cursor.reset(t.view, shard_.payloadBytes());
        drainCursor(t);
    }

    TermCursorData &drv = terms_[order_[0]];
    while (drv.cursor.valid() && !shouldStop(policy)) {
        const DocId cand = drv.cursor.doc();
        bool all = true;
        bool exhausted = false;
        DocId resume = cand;
        for (size_t i = 1; i < n; ++i) {
            TermCursorData &t = terms_[order_[i]];
            t.cursor.seek(cand);
            drainCursor(t);
            if (!t.cursor.valid()) {
                exhausted = true; // no further matches possible
                all = false;
                break;
            }
            if (t.cursor.doc() != cand) {
                all = false;
                resume = t.cursor.doc(); // gallop the driver here
                break;
            }
        }
        if (exhausted)
            break;
        if (all) {
            double score = 0;
            for (size_t i = 0; i < n; ++i) {
                TermCursorData &t = terms_[order_[i]];
                score += scoreCandidate(cand, t.cursor.tf(),
                                        t.info.docFreq);
            }
            // Top-k heap update in scratch.
            sink_->touch(engine_vaddr::scratchAddr(tid_, kTopKOffset +
                             (topk.size() % 64) * 16),
                         16, AccessKind::Heap, true);
            topk.offer({cand, static_cast<float>(score)});
            drv.cursor.next();
        } else {
            drv.cursor.seek(resume);
        }
        drainCursor(drv);
    }
    for (size_t i = 0; i < n; ++i) {
        const TermCursorData &t = terms_[order_[i]];
        lastStats_.blocksSkipped += t.view.numSkips - t.blocksDecoded;
    }
    scratchHighWater_ = std::max(scratchHighWater_,
                                 kTopKOffset + topk.capacity() * 16);
}

void
QueryExecutor::executeDisjunctive(const Query &q,
                                  const SearchRequest &policy,
                                  TopK &topk)
{
    const size_t n = q.terms.size();
    // Canonical order for MaxScore: ascending score upper bound.
    // This is also the per-document accumulation order, so the fully
    // scored sum is bit-identical to the sequential engine's.
    std::sort(order_.begin(), order_.end(),
              [this](uint32_t a, uint32_t b) {
                  const TermCursorData &ta = terms_[a];
                  const TermCursorData &tb = terms_[b];
                  if (ta.maxScore != tb.maxScore)
                      return ta.maxScore < tb.maxScore;
                  if (ta.term != tb.term)
                      return ta.term < tb.term;
                  return a < b;
              });
    for (size_t i = 0; i < n; ++i) {
        TermCursorData &t = terms_[order_[i]];
        t.cursor.reset(t.view, shard_.payloadBytes());
        drainCursor(t);
    }
    suffixUb_.resize(n + 1);
    suffixUb_[n] = 0.0;
    for (size_t i = n; i-- > 0;)
        suffixUb_[i] = suffixUb_[i + 1] + terms_[order_[i]].maxScore;

    while (!shouldStop(policy)) {
        // No pruning until the heap is full: anything can enter.
        const bool full = topk.size() == topk.capacity();
        const double theta =
            full ? static_cast<double>(topk.threshold()) : -1.0;

        // Lists [0, pivot) are non-essential: a document appearing
        // only in them is bounded by their upper-bound prefix sum and
        // can never enter the heap, so they are only ever seeked into.
        size_t pivot = 0;
        if (full) {
            double prefix = 0.0;
            while (pivot < n) {
                const double with =
                    prefix + terms_[order_[pivot]].maxScore;
                if (with + pruneEps(with) >= theta)
                    break;
                prefix = with;
                ++pivot;
            }
        }
        if (pivot == n)
            break; // even all lists together cannot beat the heap

        // Next candidate: min doc over the essential cursors.
        DocId cand = kInvalidDoc;
        for (size_t i = pivot; i < n; ++i) {
            const BlockPostingCursor &c = terms_[order_[i]].cursor;
            if (c.valid() && c.doc() < cand)
                cand = c.doc();
        }
        if (cand == kInvalidDoc)
            break; // essential lists exhausted

        // Score in canonical ascending order, abandoning as soon as
        // the remaining upper bound cannot reach the threshold.
        double score = 0.0;
        bool abandoned = false;
        for (size_t i = 0; i < n; ++i) {
            TermCursorData &t = terms_[order_[i]];
            if (i < pivot) {
                t.cursor.seek(cand);
                drainCursor(t);
            }
            if (t.cursor.valid() && t.cursor.doc() == cand)
                score += scoreCandidate(cand, t.cursor.tf(),
                                        t.info.docFreq);
            if (full) {
                const double bound = score + suffixUb_[i + 1];
                if (bound + pruneEps(bound) < theta) {
                    abandoned = true;
                    break;
                }
            }
        }
        // Consume the candidate from every essential list sitting on
        // it (also when abandoned, or it would repeat forever).
        for (size_t i = pivot; i < n; ++i) {
            TermCursorData &t = terms_[order_[i]];
            if (t.cursor.valid() && t.cursor.doc() == cand) {
                t.cursor.next();
                drainCursor(t);
            }
        }
        if (!abandoned) {
            sink_->touch(engine_vaddr::scratchAddr(tid_, kTopKOffset +
                             (topk.size() % 64) * 16),
                         16, AccessKind::Heap, true);
            topk.offer({cand, static_cast<float>(score)});
        }
    }
    for (size_t i = 0; i < n; ++i) {
        const TermCursorData &t = terms_[order_[i]];
        lastStats_.blocksSkipped += t.view.numSkips - t.blocksDecoded;
    }
    scratchHighWater_ = std::max(scratchHighWater_,
                                 kTopKOffset + topk.capacity() * 16);
}

// ---------------------------------------------------------------------
// Sequential reference engine (the pre-block executor, kept as the
// equivalence oracle and bench_leaf's "before" side)
// ---------------------------------------------------------------------

void
QueryExecutor::executeConjunctiveSeq(const Query &q,
                                     const SearchRequest &policy,
                                     TopK &topk)
{
    const size_t n = q.terms.size();
    std::sort(order_.begin(), order_.end(),
              [this](uint32_t a, uint32_t b) {
                  const TermCursorData &ta = terms_[a];
                  const TermCursorData &tb = terms_[b];
                  if (ta.info.docFreq != tb.info.docFreq)
                      return ta.info.docFreq < tb.info.docFreq;
                  if (ta.term != tb.term)
                      return ta.term < tb.term;
                  return a < b;
              });
    for (size_t i = 0; i < n; ++i) {
        TermCursorData &t = terms_[order_[i]];
        t.seq.reset(t.view.bytes, t.view.bytes + t.view.size,
                    t.info.docFreq, shard_.payloadBytes(),
                    t.view.codec);
    }
    auto account = [&](TermCursorData &t) {
        const size_t now = t.seq.bytesConsumed(t.view.bytes);
        if (now > t.consumed) {
            touchShard(t, t.consumed,
                       static_cast<uint32_t>(now - t.consumed));
            lastStats_.shardBytesRead += now - t.consumed;
            t.consumed = now;
        }
        // Byte deltas are block-granular for packed streams, so count
        // postings from the cursor's exact decode counter instead.
        const uint64_t dec = t.seq.postingsConsumed();
        lastStats_.postingsDecoded += dec - t.seqDecoded;
        t.seqDecoded = dec;
    };

    TermCursorData &drv = terms_[order_[0]];
    bool exhausted = false;
    while (drv.seq.valid() && !exhausted && !shouldStop(policy)) {
        const DocId cand = drv.seq.doc();
        bool all = true;
        for (size_t i = 1; i < n; ++i) {
            TermCursorData &t = terms_[order_[i]];
            t.seq.seek(cand);
            account(t);
            if (!t.seq.valid()) {
                exhausted = true; // no further matches possible
                all = false;
                break;
            }
            if (t.seq.doc() != cand) {
                all = false;
                break;
            }
        }
        if (all) {
            double score = 0;
            for (size_t i = 0; i < n; ++i) {
                TermCursorData &t = terms_[order_[i]];
                score += scoreCandidate(cand, t.seq.tf(),
                                        t.info.docFreq);
            }
            // Top-k heap update in scratch.
            sink_->touch(engine_vaddr::scratchAddr(tid_, kTopKOffset +
                             (topk.size() % 64) * 16),
                         16, AccessKind::Heap, true);
            topk.offer({cand, static_cast<float>(score)});
        }
        drv.seq.next();
        account(drv);
    }
}

void
QueryExecutor::executeDisjunctiveSeq(const Query &q,
                                     const SearchRequest &policy,
                                     TopK &topk)
{
    const size_t n = q.terms.size();
    accum_.clear();
    // Same canonical term order as the pruned engine so per-document
    // accumulation sums in the same sequence (bit-identical floats).
    std::sort(order_.begin(), order_.end(),
              [this](uint32_t a, uint32_t b) {
                  const TermCursorData &ta = terms_[a];
                  const TermCursorData &tb = terms_[b];
                  if (ta.maxScore != tb.maxScore)
                      return ta.maxScore < tb.maxScore;
                  if (ta.term != tb.term)
                      return ta.term < tb.term;
                  return a < b;
              });

    for (size_t i = 0; i < n && !shouldStop(policy); ++i) {
        TermCursorData &t = terms_[order_[i]];
        t.seq.reset(t.view.bytes, t.view.bytes + t.view.size,
                    t.info.docFreq, shard_.payloadBytes(),
                    t.view.codec);
        while (t.seq.valid() && !shouldStop(policy)) {
            const DocId doc = t.seq.doc();
            const double s =
                scoreCandidate(doc, t.seq.tf(), t.info.docFreq);
            // Accumulator update: hashed slot in scratch.
            const uint64_t slot =
                mix64(doc * 0x9e3779b97f4a7c15ull) % kAccumSlots;
            sink_->touch(engine_vaddr::scratchAddr(tid_, kAccumOffset +
                             slot * kAccumEntryBytes),
                         kAccumEntryBytes, AccessKind::Heap, true);
            accum_[doc] += s;
            t.seq.next();
            const size_t now = t.seq.bytesConsumed(t.view.bytes);
            // Packed streams consume whole blocks at a time, so most
            // steps advance zero bytes -- only touch real reads.
            if (now > t.consumed) {
                touchShard(t, t.consumed,
                           static_cast<uint32_t>(now - t.consumed));
                lastStats_.shardBytesRead += now - t.consumed;
                t.consumed = now;
            }
            ++lastStats_.postingsDecoded;
        }
    }
    const uint64_t scratch_bytes = kAccumOffset +
        std::min<uint64_t>(accum_.size(), kAccumSlots) *
            kAccumEntryBytes;
    scratchHighWater_ = std::max(scratchHighWater_, scratch_bytes);
    // Drain in doc order: unordered_map iteration order depends on
    // bucket history, which would make traces non-deterministic.
    drain_.assign(accum_.begin(), accum_.end());
    std::sort(drain_.begin(), drain_.end());
    for (const auto &[doc, score] : drain_) {
        sink_->touch(engine_vaddr::scratchAddr(tid_, kTopKOffset +
                         (doc % 64) * 16),
                     16, AccessKind::Heap, false);
        topk.offer({doc, static_cast<float>(score)});
    }
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

SearchResponse
QueryExecutor::executeImpl(const Query &q, const SearchRequest &policy)
{
    lastStats_ = ExecStats{};
    degraded_ = false;
    checkTick_ = 0;
    SearchResponse resp;
    // Query parse / setup frames on the stack.
    for (uint64_t off = 0; off < 256; off += 64)
        sink_->touch(engine_vaddr::stackAddr(tid_, off), 64,
                     AccessKind::Stack, true);
    if (q.terms.empty() || q.topK == 0) {
        resp.stats = lastStats_;
        return resp;
    }
    // Cancelled/expired before starting: drop without executing.
    if ((policy.cancel &&
         policy.cancel->load(std::memory_order_acquire)) ||
        (policy.deadlineNs != 0 &&
         timeNowNs() > policy.deadlineNs)) {
        resp.ok = false;
        resp.degraded = true;
        resp.stats = lastStats_;
        return resp;
    }

    const size_t n = q.terms.size();
    if (terms_.size() < n)
        terms_.resize(n);
    for (size_t i = 0; i < n; ++i)
        loadTerm(q.terms[i], terms_[i]);
    order_.resize(n);
    std::iota(order_.begin(), order_.end(), 0u);
    topk_.reset(q.topK);

    bool conjunctive = q.conjunctive;
    if (policy.algo == ExecAlgo::kAnd)
        conjunctive = true;
    else if (policy.algo == ExecAlgo::kOr)
        conjunctive = false;
    const bool sequential = policy.algo == ExecAlgo::kSequential;

    if (conjunctive && n > 1) {
        if (sequential)
            executeConjunctiveSeq(q, policy, topk_);
        else
            executeConjunctive(q, policy, topk_);
    } else {
        if (sequential)
            executeDisjunctiveSeq(q, policy, topk_);
        else
            executeDisjunctive(q, policy, topk_);
    }
    resp.docs = topk_.results();
    resp.stats = lastStats_;
    resp.degraded = degraded_;
    return resp;
}

SearchResponse
QueryExecutor::execute(const SearchRequest &req)
{
    return executeImpl(req.query, req);
}

} // namespace wsearch
