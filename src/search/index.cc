#include "search/index.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/logging.hh"

namespace wsearch {

// ---------------------------------------------------------------------
// MaterializedIndex
// ---------------------------------------------------------------------

MaterializedIndex::MaterializedIndex(const CorpusGenerator &corpus,
                                     PostingCodec codec)
    : codec_(codec)
{
    build(corpus, 1, 0);
}

MaterializedIndex::MaterializedIndex(const CorpusGenerator &corpus,
                                     uint32_t take_stride,
                                     uint32_t take_offset,
                                     PostingCodec codec)
    : codec_(codec)
{
    build(corpus, take_stride, take_offset);
}

void
MaterializedIndex::build(const CorpusGenerator &corpus,
                         uint32_t take_stride, uint32_t take_offset)
{
    wsearch_assert(take_stride >= 1);
    wsearch_assert(take_offset < take_stride);
    const CorpusConfig &cc = corpus.config();
    // Local doc d maps to global doc d * stride + offset.
    numDocs_ = take_offset < cc.numDocs
        ? (cc.numDocs - take_offset + take_stride - 1) / take_stride
        : 0;
    docLen_.resize(numDocs_);

    // term -> (doc -> tf), built doc-by-doc. Documents arrive in
    // ascending id order so posting lists come out sorted.
    std::vector<std::map<DocId, uint32_t>> acc(cc.vocabSize);
    uint64_t total_len = 0;
    for (DocId d = 0; d < numDocs_; ++d) {
        const Document doc =
            corpus.document(d * take_stride + take_offset);
        docLen_[d] = static_cast<uint32_t>(doc.terms.size());
        total_len += doc.terms.size();
        for (const TermId t : doc.terms)
            ++acc[t][d];
    }
    avgDocLen_ = numDocs_
        ? static_cast<double>(total_len) / numDocs_ : 0.0;

    terms_.resize(cc.vocabSize);
    uint64_t offset = 0;
    for (TermId t = 0; t < cc.vocabSize; ++t) {
        PostingListBuilder b(codec_);
        for (const auto &[doc, tf] : acc[t])
            b.add(doc, tf);
        TermData &td = terms_[t];
        td.info.docFreq = b.count();
        td.skips = b.releaseSkips(); // must precede release()
        td.bytes = b.release();
        for (const SkipEntry &e : td.skips)
            td.info.maxTf = std::max(td.info.maxTf, e.maxTf);
        td.info.byteLength = td.bytes.size();
        td.info.shardOffset = offset;
        offset += td.info.byteLength;
    }
    shardBytes_ = offset;
}

TermInfo
MaterializedIndex::termInfo(TermId term) const
{
    wsearch_assert(term < terms_.size());
    return terms_[term].info;
}

void
MaterializedIndex::postingBytes(TermId term,
                                std::vector<uint8_t> &out) const
{
    wsearch_assert(term < terms_.size());
    out = terms_[term].bytes;
}

bool
MaterializedIndex::postingView(TermId term, PostingView &out) const
{
    wsearch_assert(term < terms_.size());
    const TermData &td = terms_[term];
    out.bytes = td.bytes.data();
    out.size = td.bytes.size();
    out.skips = td.skips.data();
    out.numSkips = static_cast<uint32_t>(td.skips.size());
    out.count = td.info.docFreq;
    out.codec = codec_;
    return true;
}

// ---------------------------------------------------------------------
// ProceduralIndex
// ---------------------------------------------------------------------

namespace {

/** Per-entry layout parameters for one procedural term. */
struct ProcTermLayout
{
    uint32_t df;
    uint32_t gapBytes;  ///< exact varint size of every gap
    uint64_t gapLo;     ///< inclusive gap range
    uint64_t gapHi;
};

ProcTermLayout
layoutFor(uint32_t df, uint32_t num_docs, uint32_t payload_bytes)
{
    (void)payload_bytes;
    ProcTermLayout l;
    l.df = df;
    const uint64_t avg_gap =
        std::max<uint64_t>(1, num_docs / std::max<uint32_t>(1, df));
    // Pin every gap to one exact varint size so posting byte lengths
    // are a closed-form function of df (O(1) termInfo on a shard that
    // is never materialized).
    uint32_t gb = varintSize(avg_gap);
    const uint64_t lo_bound = gb == 1 ? 1 : (1ull << (7 * (gb - 1)));
    const uint64_t hi_bound = (1ull << (7 * gb)) - 1;
    uint64_t lo = std::max<uint64_t>(lo_bound, avg_gap / 2);
    uint64_t hi = std::min<uint64_t>(hi_bound, avg_gap * 2);
    if (lo > hi)
        lo = hi;
    l.gapBytes = gb;
    l.gapLo = lo;
    l.gapHi = hi;
    return l;
}

} // namespace

ProceduralIndex::ProceduralIndex(const Config &cfg) : cfg_(cfg)
{
    wsearch_assert(cfg.numTerms >= 1);
    // Shard layout is a closed form; compute the total size.
    // df(rank) = clamp(maxDf / (rank+1)^dfTheta, minDf, maxDf).
    uint64_t offset = 0;
    // Full per-term offset table: 8 bytes per term, built once.
    offsets_.reserve(cfg.numTerms + 1);
    for (TermId t = 0; t < cfg.numTerms; ++t) {
        offsets_.push_back(offset);
        const ProcTermLayout l =
            layoutFor(docFreqOf(t), cfg.numDocs, cfg.payloadBytes);
        offset += static_cast<uint64_t>(l.df) *
            (l.gapBytes + 1 + cfg.payloadBytes);
    }
    offsets_.push_back(offset);
    shardBytes_ = offset;
}

uint32_t
ProceduralIndex::docFreqOf(TermId term) const
{
    const double df = static_cast<double>(cfg_.maxDocFreq) /
        std::pow(static_cast<double>(term) + 1.0, cfg_.dfTheta);
    if (df < cfg_.minDocFreq)
        return cfg_.minDocFreq;
    if (df > cfg_.maxDocFreq)
        return cfg_.maxDocFreq;
    return static_cast<uint32_t>(df);
}

TermInfo
ProceduralIndex::termInfo(TermId term) const
{
    wsearch_assert(term < cfg_.numTerms);
    TermInfo info;
    const ProcTermLayout l =
        layoutFor(docFreqOf(term), cfg_.numDocs, cfg_.payloadBytes);
    info.docFreq = l.df;
    info.byteLength = static_cast<uint64_t>(l.df) *
        (l.gapBytes + 1 + cfg_.payloadBytes);
    info.shardOffset = offsets_[term];
    // Generated tf is 1 + mix64 % 6: bound without materializing.
    info.maxTf = 6;
    return info;
}

void
ProceduralIndex::postingBytes(TermId term,
                              std::vector<uint8_t> &out) const
{
    out.clear();
    const ProcTermLayout l =
        layoutFor(docFreqOf(term), cfg_.numDocs, cfg_.payloadBytes);
    out.reserve(static_cast<size_t>(l.df) *
                (l.gapBytes + 1 + cfg_.payloadBytes));
    const uint64_t salt = cfg_.seed ^
        (static_cast<uint64_t>(term) * 0x9e3779b97f4a7c15ull);
    const uint64_t span = l.gapHi - l.gapLo + 1;
    for (uint32_t i = 0; i < l.df; ++i) {
        const uint64_t gap = l.gapLo + mix64(salt + i) % span;
        const uint32_t tf = 1 + static_cast<uint32_t>(
            mix64(salt ^ (i + 0x7f0ull)) % 6);
        const uint32_t gap_size = varintEncode(gap, out);
        wsearch_assert(gap_size == l.gapBytes);
        varintEncode(tf, out);
        // Fixed-size payload (positions / static features).
        for (uint32_t b = 0; b < cfg_.payloadBytes; ++b)
            out.push_back(static_cast<uint8_t>(mix64(salt + i) >>
                                               (8 * (b % 8))));
    }
}

} // namespace wsearch
