/**
 * @file
 * Leaf server: owns one index shard and a per-thread executor pool,
 * answers queries with BM25 top-k, and accounts its memory footprint
 * by segment (paper Figure 4's code/stack/heap breakdown).
 */

#ifndef WSEARCH_SEARCH_LEAF_HH
#define WSEARCH_SEARCH_LEAF_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "search/executor.hh"
#include "search/index.hh"
#include "search/touch.hh"

namespace wsearch {

/** Allocated-bytes breakdown (paper Figure 4). */
struct FootprintStats
{
    uint64_t codeBytes = 0;
    uint64_t stackBytes = 0;
    uint64_t heapSharedBytes = 0;    ///< metadata, lexicon, caches
    uint64_t heapPerThreadBytes = 0; ///< arenas, buffers

    uint64_t
    heapBytes() const
    {
        return heapSharedBytes + heapPerThreadBytes;
    }
};

/** One leaf of the serving tree. */
class LeafServer
{
  public:
    struct Config
    {
        uint32_t numThreads = 1;
        /** Nominal per-thread buffers (network, decompression, ...);
         *  part of the Figure 4 heap accounting. */
        uint64_t perThreadBufferBytes = 24ull << 20;
        uint64_t codeBytes = 4ull << 20;
        uint64_t stackBytesPerThread = 64 * KiB;
        /**
         * Doc ids returned are local * docIdStride + docIdOffset so
         * multiple leaves can serve disjoint partitions of a global
         * document space.
         */
        uint32_t docIdStride = 1;
        uint32_t docIdOffset = 0;
        /** Time source for mid-query deadline polls (null = steady
         *  clock; tests inject a SimClock). */
        const Clock *clock = nullptr;
    };

    /**
     * @param sink touch receiver shared by all threads (may be null
     *             for untraced runs)
     */
    LeafServer(const IndexShard &shard, const Config &cfg,
               TouchSink *sink = nullptr);

    /**
     * Serve a request on logical thread @p tid; best-first results
     * with doc ids mapped to the global document space. Thread-safe
     * for concurrent calls with distinct tids (each tid owns its
     * executor; the shard is read-only), which is what the serve
     * runtime's worker pool relies on. Deadline/cancel in the request
     * are honored mid-query (response.degraded).
     */
    SearchResponse serve(uint32_t tid, const SearchRequest &req);

    /** Deprecated shim: serve with default policy (pruned, no
     *  deadline). Prefer serve(tid, SearchRequest). */
    std::vector<ScoredDoc> serve(uint32_t tid, const Query &query);

    /** Figure 4 accounting. */
    FootprintStats footprint() const;

    const IndexShard &shard() const { return shard_; }
    uint32_t numThreads() const { return cfg_.numThreads; }
    uint64_t queriesServed() const { return queriesServed_.load(); }

    const ExecStats &
    lastStats(uint32_t tid) const
    {
        return executors_[tid]->lastStats();
    }

  private:
    const IndexShard &shard_;
    Config cfg_;
    NullTouchSink nullSink_;
    std::vector<std::unique_ptr<QueryExecutor>> executors_;
    std::atomic<uint64_t> queriesServed_{0};
};

} // namespace wsearch

#endif // WSEARCH_SEARCH_LEAF_HH
