/**
 * @file
 * Leaf server: owns one index shard and a per-thread executor pool,
 * answers queries with BM25 top-k, and accounts its memory footprint
 * by segment (paper Figure 4's code/stack/heap breakdown).
 *
 * Two modes behind the same serve() contract:
 *
 *  - frozen: one immutable IndexShard, one QueryExecutor per thread
 *    (the original PR 3 layout);
 *  - live: a refcounted IndexSnapshot (see search/live/) served
 *    through per-thread SnapshotSearchers. serve() captures the
 *    current snapshot pointer once, so an in-flight query finishes on
 *    the version it started with while adoptSnapshot() swaps the
 *    pointer underneath -- the atomic-rollout primitive. Adoption
 *    validates the snapshot checksum and rejects version regressions,
 *    which is what makes a corrupted/torn handoff survivable.
 */

#ifndef WSEARCH_SEARCH_LEAF_HH
#define WSEARCH_SEARCH_LEAF_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "search/executor.hh"
#include "search/index.hh"
#include "search/touch.hh"

namespace wsearch {

class IndexSnapshot;
class SnapshotSearcher;

/** Allocated-bytes breakdown (paper Figure 4). */
struct FootprintStats
{
    uint64_t codeBytes = 0;
    uint64_t stackBytes = 0;
    uint64_t heapSharedBytes = 0;    ///< metadata, lexicon, caches
    uint64_t heapPerThreadBytes = 0; ///< arenas, buffers

    uint64_t
    heapBytes() const
    {
        return heapSharedBytes + heapPerThreadBytes;
    }
};

/** One leaf of the serving tree. */
class LeafServer
{
  public:
    struct Config
    {
        uint32_t numThreads = 1;
        /** Nominal per-thread buffers (network, decompression, ...);
         *  part of the Figure 4 heap accounting. */
        uint64_t perThreadBufferBytes = 24ull << 20;
        uint64_t codeBytes = 4ull << 20;
        uint64_t stackBytesPerThread = 64 * KiB;
        /**
         * Doc ids returned are local * docIdStride + docIdOffset so
         * multiple leaves can serve disjoint partitions of a global
         * document space.
         */
        uint32_t docIdStride = 1;
        uint32_t docIdOffset = 0;
        /** Time source for mid-query deadline polls (null = steady
         *  clock; tests inject a SimClock). */
        const Clock *clock = nullptr;
    };

    /**
     * Frozen-shard leaf.
     * @param sink touch receiver shared by all threads (may be null
     *             for untraced runs)
     */
    LeafServer(const IndexShard &shard, const Config &cfg,
               TouchSink *sink = nullptr);

    /**
     * Live leaf serving @p snapshot (never null; LiveIndex::snapshot()
     * provides an empty version-0 view). Live leaves hold global doc
     * ids already, so cfg.docIdStride/Offset must be identity.
     */
    LeafServer(std::shared_ptr<const IndexSnapshot> snapshot,
               const Config &cfg, TouchSink *sink = nullptr);

    ~LeafServer();

    /**
     * Serve a request on logical thread @p tid; best-first results
     * with doc ids mapped to the global document space. Thread-safe
     * for concurrent calls with distinct tids (each tid owns its
     * executor; shards/snapshots are immutable), which is what the
     * serve runtime's worker pool relies on. Deadline/cancel in the
     * request are honored mid-query (response.degraded). Live leaves
     * stamp response.indexVersion with the snapshot version served.
     */
    SearchResponse serve(uint32_t tid, const SearchRequest &req);

    /**
     * Atomically switch to @p snap (live leaves only). Rejected --
     * returning false, current snapshot untouched -- when @p snap is
     * null, fails checksum validation (torn handoff), or would move
     * the version backwards. In-flight queries keep the pointer they
     * captured and finish on their version.
     */
    bool adoptSnapshot(std::shared_ptr<const IndexSnapshot> snap);

    bool live() const { return shard_ == nullptr; }

    /** Version currently being served (0 for frozen leaves). */
    uint64_t currentVersion() const;

    /** Current snapshot (live leaves; null for frozen). */
    std::shared_ptr<const IndexSnapshot> snapshot() const;

    uint64_t
    snapshotsAdopted() const
    {
        return snapshotsAdopted_.load(std::memory_order_relaxed);
    }
    uint64_t
    handoffsRejected() const
    {
        return handoffsRejected_.load(std::memory_order_relaxed);
    }

    /** Figure 4 accounting. */
    FootprintStats footprint() const;

    /** The frozen shard (frozen leaves only). */
    const IndexShard &
    shard() const
    {
        wsearch_assert(shard_ != nullptr);
        return *shard_;
    }

    /**
     * Posting codec this leaf serves: the frozen shard's codec, or
     * for live leaves the codec of the current snapshot's segments
     * (kVarint when the snapshot is empty).
     */
    PostingCodec shardCodec() const;

    uint32_t numThreads() const { return cfg_.numThreads; }
    uint64_t queriesServed() const { return queriesServed_.load(); }

    const ExecStats &lastStats(uint32_t tid) const;

  private:
    const IndexShard *shard_; ///< null in live mode
    Config cfg_;
    NullTouchSink nullSink_;
    std::vector<std::unique_ptr<QueryExecutor>> executors_;

    // Live mode.
    mutable std::mutex snapMu_; ///< guards the snapshot_ pointer swap
    std::shared_ptr<const IndexSnapshot> snapshot_;
    std::vector<std::unique_ptr<SnapshotSearcher>> searchers_;
    std::atomic<uint64_t> snapshotsAdopted_{0};
    std::atomic<uint64_t> handoffsRejected_{0};

    std::atomic<uint64_t> queriesServed_{0};
};

} // namespace wsearch

#endif // WSEARCH_SEARCH_LEAF_HH
