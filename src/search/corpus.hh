/**
 * @file
 * Synthetic corpus generator: documents whose term occurrences follow
 * a Zipf distribution over the vocabulary, with log-normal-ish
 * document lengths. Deterministic from a seed, so indexes built from
 * it are reproducible.
 */

#ifndef WSEARCH_SEARCH_CORPUS_HH
#define WSEARCH_SEARCH_CORPUS_HH

#include <cstdint>
#include <vector>

#include "search/types.hh"
#include "util/rng.hh"
#include "util/zipf.hh"

namespace wsearch {

/** Corpus shape parameters. */
struct CorpusConfig
{
    uint32_t numDocs = 10000;
    uint32_t vocabSize = 20000;
    uint32_t avgDocLen = 120;    ///< mean terms per document
    double termTheta = 1.0;      ///< Zipf skew of term frequency
    uint64_t seed = 0xc0de5ull;
};

/** One generated document: term occurrences (with repetition). */
struct Document
{
    DocId id = 0;
    std::vector<TermId> terms;
};

/** Deterministic document generator. */
class CorpusGenerator
{
  public:
    explicit CorpusGenerator(const CorpusConfig &cfg)
        : cfg_(cfg), zipf_(cfg.vocabSize, cfg.termTheta)
    {
    }

    const CorpusConfig &config() const { return cfg_; }

    /** Generate document @p id (idempotent: same id, same content). */
    Document
    document(DocId id) const
    {
        uint64_t sm = cfg_.seed ^ (0x9e3779b97f4a7c15ull * (id + 1));
        Rng rng(splitmix64(sm));
        Document d;
        d.id = id;
        // Length in [avg/2, 3*avg/2).
        const uint32_t len = cfg_.avgDocLen / 2 +
            static_cast<uint32_t>(rng.nextRange(cfg_.avgDocLen));
        d.terms.reserve(len);
        for (uint32_t i = 0; i < len; ++i)
            d.terms.push_back(static_cast<TermId>(zipf_.sample(rng)));
        return d;
    }

  private:
    CorpusConfig cfg_;
    ZipfSampler zipf_;
};

} // namespace wsearch

#endif // WSEARCH_SEARCH_CORPUS_HH
