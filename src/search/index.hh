/**
 * @file
 * The index shard. Two implementations behind one interface:
 *
 *  - MaterializedIndex: a real inverted index built from a corpus
 *    (term -> encoded posting list), with document metadata. Exact
 *    and fully functional; used by correctness tests and the small
 *    examples.
 *
 *  - ProceduralIndex: posting content is a deterministic function of
 *    (term, position), generated on demand. Physically tiny, but its
 *    *nominal* shard layout spans many GiB, so the instrumented
 *    engine produces shard access streams with production-scale
 *    footprints -- the substitution for the paper's proprietary
 *    shards (DESIGN.md §1).
 *
 * Both report nominal shard byte offsets for every posting-list read
 * so the memory-touch instrumentation can emit canonical shard
 * addresses.
 */

#ifndef WSEARCH_SEARCH_INDEX_HH
#define WSEARCH_SEARCH_INDEX_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "search/corpus.hh"
#include "search/postings.hh"
#include "search/types.hh"
#include "util/scramble.hh"

namespace wsearch {

/** Per-term shard placement and statistics. */
struct TermInfo
{
    uint64_t shardOffset = 0; ///< nominal byte offset in the shard
    uint64_t byteLength = 0;  ///< encoded length
    uint32_t docFreq = 0;     ///< number of documents containing it
    /** Upper bound of any tf in the list (exact for materialized
     *  shards, a distribution bound for procedural ones); feeds the
     *  executor's MaxScore pruning bound. */
    uint32_t maxTf = 0;
};

/** Abstract shard interface used by the query executor. */
class IndexShard
{
  public:
    virtual ~IndexShard() = default;

    virtual uint32_t numDocs() const = 0;
    virtual uint32_t numTerms() const = 0;
    virtual double avgDocLen() const = 0;

    /** Term placement/stats (nominal offsets). */
    virtual TermInfo termInfo(TermId term) const = 0;

    /** Document length in terms (for BM25). */
    virtual uint32_t docLen(DocId doc) const = 0;

    /**
     * Materialize the encoded posting bytes for @p term into @p out.
     * For the procedural index this *generates* them; the bytes are
     * identical on every call.
     */
    virtual void postingBytes(TermId term,
                              std::vector<uint8_t> &out) const = 0;

    /**
     * Borrow a zero-copy view of @p term's encoded postings and skip
     * table, valid while the shard lives. Returns false when the
     * backend cannot lend storage (e.g. ProceduralIndex, which
     * generates bytes on demand); callers then fall back to
     * postingBytes() + buildSkipEntries() into their own scratch.
     */
    virtual bool
    postingView(TermId, PostingView &) const
    {
        return false;
    }

    /** Total nominal shard size in bytes. */
    virtual uint64_t shardBytes() const = 0;

    /** Fixed per-posting payload bytes (0 for plain (gap, tf)). */
    virtual uint32_t payloadBytes() const { return 0; }

    /** Posting block codec of this shard's byte stream. */
    virtual PostingCodec
    codec() const
    {
        return PostingCodec::kVarint;
    }
};

/** Real inverted index built from a corpus. */
class MaterializedIndex : public IndexShard
{
  public:
    /** Build from @p corpus (generates all numDocs documents). */
    explicit MaterializedIndex(
        const CorpusGenerator &corpus,
        PostingCodec codec = PostingCodec::kVarint);

    /**
     * Build a shard holding the strided partition of @p corpus:
     * global documents take_offset, take_offset + take_stride, ...
     * become local docs 0, 1, ... -- the inverse of LeafServer's
     * docIdStride/docIdOffset mapping, so a leaf configured with the
     * same (stride, offset) returns global ids. BM25 statistics
     * (docFreq, avgDocLen) are shard-local, as in a real partitioned
     * fleet.
     */
    MaterializedIndex(const CorpusGenerator &corpus,
                      uint32_t take_stride, uint32_t take_offset,
                      PostingCodec codec = PostingCodec::kVarint);

    uint32_t numDocs() const override { return numDocs_; }
    uint32_t
    numTerms() const override
    {
        return static_cast<uint32_t>(terms_.size());
    }
    double avgDocLen() const override { return avgDocLen_; }
    TermInfo termInfo(TermId term) const override;
    uint32_t docLen(DocId doc) const override { return docLen_[doc]; }
    void postingBytes(TermId term,
                      std::vector<uint8_t> &out) const override;
    bool postingView(TermId term, PostingView &out) const override;
    uint64_t shardBytes() const override { return shardBytes_; }
    PostingCodec codec() const override { return codec_; }

  private:
    void build(const CorpusGenerator &corpus, uint32_t take_stride,
               uint32_t take_offset);

    struct TermData
    {
        TermInfo info;
        std::vector<uint8_t> bytes;
        std::vector<SkipEntry> skips; ///< block metadata (heap)
    };
    std::vector<TermData> terms_;
    std::vector<uint32_t> docLen_;
    PostingCodec codec_ = PostingCodec::kVarint;
    uint32_t numDocs_ = 0;
    double avgDocLen_ = 0;
    uint64_t shardBytes_ = 0;
};

/** Procedurally backed shard with production-scale nominal layout. */
class ProceduralIndex : public IndexShard
{
  public:
    struct Config
    {
        uint32_t numDocs = 1u << 24;  ///< 16M docs
        uint32_t numTerms = 1u << 23; ///< 8M terms
        double dfTheta = 0.80;        ///< skew of document frequency
                                      ///< over term rank
        uint32_t maxDocFreq = 32768;
        uint32_t minDocFreq = 16;
        /** Per-posting payload (positions/features); part of the
         *  shard layout, skipped on decode. The default makes the
         *  nominal shard GiB-scale. */
        uint32_t payloadBytes = 8;
        uint64_t seed = 0x54a4dull;
    };

    explicit ProceduralIndex(const Config &cfg);

    uint32_t numDocs() const override { return cfg_.numDocs; }
    uint32_t numTerms() const override { return cfg_.numTerms; }
    double avgDocLen() const override { return 120.0; }
    TermInfo termInfo(TermId term) const override;
    uint32_t
    docLen(DocId doc) const override
    {
        return 60 + static_cast<uint32_t>(mix64(doc ^ cfg_.seed) % 120);
    }
    void postingBytes(TermId term,
                      std::vector<uint8_t> &out) const override;
    uint64_t shardBytes() const override { return shardBytes_; }
    uint32_t payloadBytes() const override { return cfg_.payloadBytes; }

  private:
    uint32_t docFreqOf(TermId term) const;

    Config cfg_;
    uint64_t shardBytes_ = 0;
    std::vector<uint64_t> offsets_; ///< per-term shard offsets
};

} // namespace wsearch

#endif // WSEARCH_SEARCH_INDEX_HH
