/**
 * @file
 * Okapi BM25 relevance scoring, the standard ranking function for the
 * retrieval stage of the leaf server.
 */

#ifndef WSEARCH_SEARCH_SCORER_HH
#define WSEARCH_SEARCH_SCORER_HH

#include <cmath>
#include <cstdint>

namespace wsearch {

/** BM25 scorer with the usual k1/b parameters. */
class Bm25Scorer
{
  public:
    /**
     * @param num_docs     documents in the shard
     * @param avg_doc_len  mean document length in terms
     */
    Bm25Scorer(uint32_t num_docs, double avg_doc_len, double k1 = 1.2,
               double b = 0.75)
        : numDocs_(num_docs), avgDocLen_(avg_doc_len), k1_(k1), b_(b)
    {
    }

    /** Robertson-Sparck-Jones IDF with the +1 smoothing. */
    double
    idf(uint32_t doc_freq) const
    {
        const double n = static_cast<double>(numDocs_);
        const double df = static_cast<double>(doc_freq);
        return std::log(1.0 + (n - df + 0.5) / (df + 0.5));
    }

    /** Per-(term, doc) contribution. */
    double
    score(uint32_t tf, uint32_t doc_len, uint32_t doc_freq) const
    {
        const double tfd = static_cast<double>(tf);
        const double norm = k1_ * (1.0 - b_ +
            b_ * static_cast<double>(doc_len) / avgDocLen_);
        return idf(doc_freq) * tfd * (k1_ + 1.0) / (tfd + norm);
    }

    /**
     * Upper bound of any per-(term, doc) contribution for a term whose
     * largest tf is @p max_tf: the score is increasing in tf and
     * decreasing in doc_len, so doc_len -> 0 (norm = k1 * (1 - b))
     * bounds it. This is the list-wide MaxScore used for dynamic
     * pruning; per-block max tf gives tighter per-block bounds.
     */
    double
    maxScore(uint32_t max_tf, uint32_t doc_freq) const
    {
        const double tfd = static_cast<double>(max_tf);
        const double norm = k1_ * (1.0 - b_);
        return idf(doc_freq) * tfd * (k1_ + 1.0) / (tfd + norm);
    }

    double k1() const { return k1_; }
    double b() const { return b_; }

  private:
    uint32_t numDocs_;
    double avgDocLen_;
    double k1_;
    double b_;
};

} // namespace wsearch

#endif // WSEARCH_SEARCH_SCORER_HH
