/**
 * @file
 * Queries, the unified SearchRequest/SearchResponse pair every serving
 * layer speaks (leaf, tree, worker pool, cluster), and the query
 * generator. Query popularity is Zipf: a small number of distinct
 * queries dominate traffic, which is exactly what the intermediate
 * cache servers absorb (paper Figure 1) -- the leaf then sees the
 * cache-missed tail with far less repetition.
 */

#ifndef WSEARCH_SEARCH_QUERY_HH
#define WSEARCH_SEARCH_QUERY_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "search/types.hh"
#include "util/rng.hh"
#include "util/zipf.hh"

namespace wsearch {

/** A parsed query. */
struct Query
{
    uint64_t id = 0;              ///< canonical query identity
    std::vector<TermId> terms;    ///< 1..5 terms
    bool conjunctive = true;      ///< AND (intersection) vs OR
    uint32_t topK = 10;
};

/** Leaf execution algorithm hint carried by a SearchRequest. */
enum class ExecAlgo : uint8_t
{
    kAuto,       ///< query.conjunctive decides; pruned fast path
    kAnd,        ///< force conjunctive: skip-driven galloping AND
    kOr,         ///< force disjunctive: MaxScore-pruned OR
    kSequential, ///< exhaustive reference executor (no skips/pruning)
};

/** Per-query execution statistics. */
struct ExecStats
{
    uint64_t postingsDecoded = 0;
    uint64_t candidatesScored = 0;
    uint64_t shardBytesRead = 0;
    uint64_t blocksDecoded = 0;     ///< posting blocks bulk-decoded
    uint64_t blocksSkipped = 0;     ///< blocks skipped over via seeks
    uint64_t skipEntriesScanned = 0; ///< block-metadata reads
    /** Of blocksDecoded, how many came through the bit-packed codec
     *  (SIMD bulk unpack). Splitting the counter lets memsim traces
     *  attribute shard-MPKI shifts to the layout change. */
    uint64_t packedBlocksDecoded = 0;

    void
    merge(const ExecStats &o)
    {
        postingsDecoded += o.postingsDecoded;
        candidatesScored += o.candidatesScored;
        shardBytesRead += o.shardBytesRead;
        blocksDecoded += o.blocksDecoded;
        blocksSkipped += o.blocksSkipped;
        skipEntriesScanned += o.skipEntriesScanned;
        packedBlocksDecoded += o.packedBlocksDecoded;
    }
};

/**
 * One search call: the query plus its serving policy. Deadline and
 * cancellation used to thread through ad-hoc parameters and shared
 * flags per layer; every submit/serve/handle path now takes this pair.
 */
struct SearchRequest
{
    Query query;
    /**
     * Absolute steady-clock deadline (ns since the nowNs() epoch;
     * 0 = none). Layers drop work whose deadline already passed, and
     * the executor abandons mid-query once it notices expiry,
     * returning whatever it has (degraded).
     */
    uint64_t deadlineNs = 0;
    /** Optional cooperative cancel flag (e.g. a hedge twin won). */
    std::shared_ptr<std::atomic<bool>> cancel;
    ExecAlgo algo = ExecAlgo::kAuto;
};

/** Outcome of one search call. */
struct SearchResponse
{
    std::vector<ScoredDoc> docs; ///< best-first top-k
    ExecStats stats;
    /** False when the request was dropped before executing (shed,
     *  expired in queue, cancelled); docs is then empty. */
    bool ok = true;
    /** True when execution stopped early (deadline/cancel observed
     *  mid-query) or coverage was partial; docs is still valid and
     *  correctly ordered over what was evaluated. */
    bool degraded = false;
    /** Version of the IndexSnapshot this response was computed
     *  against (live leaves only; 0 = frozen shard). */
    uint64_t indexVersion = 0;
};

/** Zipf-popularity query stream. */
class QueryGenerator
{
  public:
    struct Config
    {
        uint64_t distinctQueries = 1u << 22;
        double popularityTheta = 0.9; ///< repeat skew of query traffic
        uint32_t vocabSize = 1u << 20;
        double termTheta = 0.95;      ///< skew of term choice
        double maxTerms = 5;
        double conjunctiveFrac = 0.7;
        uint64_t seed = 0x9ee4ull;
    };

    explicit QueryGenerator(const Config &cfg, uint64_t salt = 0)
        : cfg_(cfg), rng_(cfg.seed ^ salt),
          popularity_(cfg.distinctQueries, cfg.popularityTheta),
          term_(cfg.vocabSize, cfg.termTheta)
    {
    }

    /** Generate the next query from the traffic distribution. */
    Query
    next()
    {
        const uint64_t qid = popularity_.sample(rng_);
        return materialize(qid);
    }

    /**
     * The content of query @p qid (deterministic: the same query id
     * always has the same terms, so result caches work).
     */
    Query
    materialize(uint64_t qid)
    {
        Query q;
        q.id = qid;
        uint64_t sm = cfg_.seed ^ (qid * 0x2545f4914f6cdd1dull);
        Rng qrng(splitmix64(sm));
        const uint32_t nterms = 1 + static_cast<uint32_t>(
            qrng.nextRange(static_cast<uint64_t>(cfg_.maxTerms)));
        q.terms.reserve(nterms);
        for (uint32_t i = 0; i < nterms; ++i)
            q.terms.push_back(
                static_cast<TermId>(term_.sample(qrng)));
        q.conjunctive = qrng.nextBool(cfg_.conjunctiveFrac);
        return q;
    }

    const Config &config() const { return cfg_; }

  private:
    Config cfg_;
    Rng rng_;
    ZipfSampler popularity_;
    ZipfSampler term_;
};

} // namespace wsearch

#endif // WSEARCH_SEARCH_QUERY_HH
