/**
 * @file
 * Queries and the query generator. Query popularity is Zipf: a small
 * number of distinct queries dominate traffic, which is exactly what
 * the intermediate cache servers absorb (paper Figure 1) -- the leaf
 * then sees the cache-missed tail with far less repetition.
 */

#ifndef WSEARCH_SEARCH_QUERY_HH
#define WSEARCH_SEARCH_QUERY_HH

#include <cstdint>
#include <vector>

#include "search/types.hh"
#include "util/rng.hh"
#include "util/zipf.hh"

namespace wsearch {

/** A parsed query. */
struct Query
{
    uint64_t id = 0;              ///< canonical query identity
    std::vector<TermId> terms;    ///< 1..5 terms
    bool conjunctive = true;      ///< AND (intersection) vs OR
    uint32_t topK = 10;
};

/** Zipf-popularity query stream. */
class QueryGenerator
{
  public:
    struct Config
    {
        uint64_t distinctQueries = 1u << 22;
        double popularityTheta = 0.9; ///< repeat skew of query traffic
        uint32_t vocabSize = 1u << 20;
        double termTheta = 0.95;      ///< skew of term choice
        double maxTerms = 5;
        double conjunctiveFrac = 0.7;
        uint64_t seed = 0x9ee4ull;
    };

    explicit QueryGenerator(const Config &cfg, uint64_t salt = 0)
        : cfg_(cfg), rng_(cfg.seed ^ salt),
          popularity_(cfg.distinctQueries, cfg.popularityTheta),
          term_(cfg.vocabSize, cfg.termTheta)
    {
    }

    /** Generate the next query from the traffic distribution. */
    Query
    next()
    {
        const uint64_t qid = popularity_.sample(rng_);
        return materialize(qid);
    }

    /**
     * The content of query @p qid (deterministic: the same query id
     * always has the same terms, so result caches work).
     */
    Query
    materialize(uint64_t qid)
    {
        Query q;
        q.id = qid;
        uint64_t sm = cfg_.seed ^ (qid * 0x2545f4914f6cdd1dull);
        Rng qrng(splitmix64(sm));
        const uint32_t nterms = 1 + static_cast<uint32_t>(
            qrng.nextRange(static_cast<uint64_t>(cfg_.maxTerms)));
        q.terms.reserve(nterms);
        for (uint32_t i = 0; i < nterms; ++i)
            q.terms.push_back(
                static_cast<TermId>(term_.sample(qrng)));
        q.conjunctive = qrng.nextBool(cfg_.conjunctiveFrac);
        return q;
    }

    const Config &config() const { return cfg_; }

  private:
    Config cfg_;
    Rng rng_;
    ZipfSampler popularity_;
    ZipfSampler term_;
};

} // namespace wsearch

#endif // WSEARCH_SEARCH_QUERY_HH
