#include "search/engine_trace.hh"

#include <algorithm>

#include "search/touch.hh"

namespace wsearch {

/** Sink that appends touches to the active thread's queue. */
class EngineTraceSource::QueueSink : public TouchSink
{
  public:
    void
    touch(uint64_t addr, uint32_t bytes, AccessKind kind,
          bool is_write) override
    {
        queue_->push_back(PendingTouch{addr, bytes, kind, is_write});
    }

    void setQueue(std::deque<PendingTouch> *q) { queue_ = q; }

  private:
    std::deque<PendingTouch> *queue_ = nullptr;
};

EngineTraceSource::EngineTraceSource(const IndexShard &shard,
                                     const EngineTraceConfig &cfg)
    : shard_(shard), cfg_(cfg), cache_(cfg.queryCacheEntries)
{
    wsearch_assert(cfg.numThreads >= 1);
    wsearch_assert(cfg.touchGranularity >= 1);
    sink_ = std::make_unique<QueueSink>();
    LeafServer::Config lc;
    lc.numThreads = cfg.numThreads;
    lc.codeBytes = cfg.code.footprintBytes;
    leaf_ = std::make_unique<LeafServer>(shard, lc, sink_.get());
    threads_.resize(cfg.numThreads);
    for (uint32_t t = 0; t < cfg.numThreads; ++t) {
        uint64_t sm = cfg.seed + t * 0x9177ull;
        const uint64_t tseed = splitmix64(sm);
        threads_[t].code = std::make_unique<CodeModel>(
            cfg.code, vaddr::kCodeBase, cfg.seed, tseed);
        threads_[t].queries =
            std::make_unique<QueryGenerator>(cfg.queries, tseed);
        threads_[t].rng = Rng(tseed ^ 0x9a9ull);
    }
}

EngineTraceSource::~EngineTraceSource() = default;

void
EngineTraceSource::reset()
{
    // Rebuild per-thread state and drop cache contents.
    cache_ = QueryCacheServer(cfg_.queryCacheEntries);
    queriesExecuted_ = 0;
    cacheAbsorbed_ = 0;
    rr_ = 0;
    for (uint32_t t = 0; t < cfg_.numThreads; ++t) {
        uint64_t sm = cfg_.seed + t * 0x9177ull;
        const uint64_t tseed = splitmix64(sm);
        threads_[t].code = std::make_unique<CodeModel>(
            cfg_.code, vaddr::kCodeBase, cfg_.seed, tseed);
        threads_[t].queries =
            std::make_unique<QueryGenerator>(cfg_.queries, tseed);
        threads_[t].pending.clear();
        threads_[t].chunkPos = 0;
        threads_[t].codeGap = 0;
        threads_[t].rng = Rng(tseed ^ 0x9a9ull);
    }
}

void
EngineTraceSource::refillThread(uint32_t tid)
{
    ThreadState &t = threads_[tid];
    while (t.pending.empty()) {
        const Query q = t.queries->next();
        // The cache-tier probe is real work: one hashed bucket read
        // per lookup, hit or miss. Emitting it also guarantees the
        // refill loop makes progress when traffic is so repetitive
        // that the cache absorbs everything (the pruned executor
        // yields few records per query, so saturation is reachable
        // within one trace).
        t.pending.push_back(
            PendingTouch{engine_vaddr::queryCacheAddr(q.id),
                         engine_vaddr::kQueryCacheBucketBytes,
                         AccessKind::Heap, false});
        if (cache_.lookup(q.id, nullptr)) {
            // Absorbed by the cache tier; the leaf never sees it.
            ++cacheAbsorbed_;
            continue;
        }
        sink_->setQueue(&t.pending);
        SearchRequest req;
        req.query = q;
        SearchResponse resp = leaf_->serve(tid, req);
        cache_.insert(q.id, std::move(resp.docs));
        ++queriesExecuted_;
    }
}

void
EngineTraceSource::emitRecord(TraceRecord &rec, uint32_t tid)
{
    ThreadState &t = threads_[tid];
    const FetchedInstr fi = t.code->next();
    rec.pc = fi.pc;
    rec.tid = static_cast<uint16_t>(tid);
    rec.branch = fi.isBranch
        ? (fi.taken ? BranchKind::Taken : BranchKind::NotTaken)
        : BranchKind::NotBranch;
    rec.target = fi.target;
    rec.op = MemOp::None;
    rec.addr = 0;
    rec.kind = AccessKind::Heap;

    if (t.codeGap > 0) {
        --t.codeGap;
        return;
    }
    if (t.pending.empty())
        refillThread(tid);
    PendingTouch &front = t.pending.front();
    rec.op = front.write ? MemOp::Store : MemOp::Load;
    rec.addr = front.addr + t.chunkPos;
    rec.kind = front.kind;
    t.chunkPos += cfg_.touchGranularity;
    if (t.chunkPos >= front.bytes) {
        t.pending.pop_front();
        t.chunkPos = 0;
    }
    const uint64_t span = std::max<uint64_t>(
        1, static_cast<uint64_t>(2.0 * cfg_.codeGapMean));
    t.codeGap = static_cast<uint32_t>(t.rng.nextRange(span + 1));
}

size_t
EngineTraceSource::fill(TraceRecord *buf, size_t max)
{
    for (size_t i = 0; i < max; ++i) {
        emitRecord(buf[i], rr_);
        rr_ = rr_ + 1 == cfg_.numThreads ? 0 : rr_ + 1;
    }
    return max;
}

} // namespace wsearch
