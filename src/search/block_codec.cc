#include "search/block_codec.hh"

#include <cstring>

#include "search/postings.hh"
#include "search/varint.hh"
#include "util/logging.hh"

#if defined(__x86_64__) && !defined(WSEARCH_NO_AVX2)
#define WSEARCH_PACKED_X86 1
#include <immintrin.h>
#endif

namespace wsearch {

namespace {

// ---------------------------------------------------------------------
// Little-endian scalar load/store helpers (memcpy keeps them legal
// under strict aliasing; the format is in-memory only).
// ---------------------------------------------------------------------

inline uint32_t
loadLe32(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

inline void
storeLe32(uint8_t *p, uint32_t v)
{
    std::memcpy(p, &v, 4);
}

inline uint16_t
loadLe16(const uint8_t *p)
{
    uint16_t v;
    std::memcpy(&v, p, 2);
    return v;
}

inline void
storeLe16(uint8_t *p, uint16_t v)
{
    std::memcpy(p, &v, 2);
}

/** Bits needed to represent @p v (0 for 0). */
inline uint32_t
bitWidth(uint32_t v)
{
    return v == 0 ? 0 : 32 - static_cast<uint32_t>(__builtin_clz(v));
}

constexpr uint32_t kPackedHeaderBytes = 8;

} // namespace

// ---------------------------------------------------------------------
// packed_simd: generic-width vertical bit unpack, three ISA levels
// ---------------------------------------------------------------------

namespace packed_simd {

namespace {

/**
 * Portable reference: value i lives in lane i%4, row i/4; row r of a
 * lane occupies bits [r*bits, (r+1)*bits) of that lane's 32-bit word
 * stream (word k of lane l sits at byte (k*4+l)*4). Never reads past
 * the 16*bits payload: the carry word is only touched when the value
 * actually crosses a word boundary, which implies word+1 < bits.
 */
void
unpackScalarImpl(const uint8_t *in, uint32_t bits, uint32_t *out)
{
    const uint64_t mask = (1ull << bits) - 1;
    for (uint32_t r = 0; r < 32; ++r) {
        const uint32_t bit = r * bits;
        const uint32_t word = bit >> 5;
        const uint32_t sh = bit & 31;
        for (uint32_t l = 0; l < 4; ++l) {
            uint64_t v = loadLe32(in + (word * 4 + l) * 4) >> sh;
            if (sh + bits > 32)
                v |= static_cast<uint64_t>(
                         loadLe32(in + ((word + 1) * 4 + l) * 4))
                    << (32 - sh);
            out[r * 4 + l] = static_cast<uint32_t>(v & mask);
        }
    }
}

#if WSEARCH_PACKED_X86

/**
 * SSE2: one row (4 lanes) per iteration. The next-word load is
 * unconditional (shift counts >= 32 zero the lanes, so a carry that
 * is not needed contributes nothing), which is why packed lists pad
 * kPackedTailPad bytes after the final block.
 */
void
unpackSse2Impl(const uint8_t *in, uint32_t bits, uint32_t *out)
{
    const __m128i mask = _mm_set1_epi32(
        static_cast<int>((1ull << bits) - 1));
    for (uint32_t r = 0; r < 32; ++r) {
        const uint32_t bit = r * bits;
        const uint32_t k = bit >> 5;
        const uint32_t sh = bit & 31;
        __m128i v = _mm_srl_epi32(
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(in + 16 * k)),
            _mm_cvtsi32_si128(static_cast<int>(sh)));
        const __m128i carry = _mm_sll_epi32(
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(in + 16 * (k + 1))),
            _mm_cvtsi32_si128(static_cast<int>(32 - sh)));
        v = _mm_and_si128(_mm_or_si128(v, carry), mask);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + 4 * r), v);
    }
}

/**
 * AVX2: two rows per iteration via per-lane variable shifts. Rows r
 * and r+1 start in the same or adjacent 128-bit words, so one 256-bit
 * load (or a 128-bit broadcast when they share a word) covers both.
 */
__attribute__((target("avx2"))) void
unpackAvx2Impl(const uint8_t *in, uint32_t bits, uint32_t *out)
{
    const __m256i mask = _mm256_set1_epi32(
        static_cast<int>((1ull << bits) - 1));
    for (uint32_t r = 0; r < 32; r += 2) {
        const uint32_t b0 = r * bits;
        const uint32_t b1 = (r + 1) * bits;
        const uint32_t k0 = b0 >> 5;
        const uint32_t k1 = b1 >> 5;
        const int s0 = static_cast<int>(b0 & 31);
        const int s1 = static_cast<int>(b1 & 31);
        __m256i lo, carry;
        if (k0 == k1) {
            lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(in + 16 * k0)));
            carry = _mm256_broadcastsi128_si256(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(in + 16 * (k0 + 1))));
        } else {
            lo = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(in + 16 * k0));
            carry = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(in + 16 * (k0 + 1)));
        }
        const __m256i srl =
            _mm256_setr_epi32(s0, s0, s0, s0, s1, s1, s1, s1);
        const __m256i sll = _mm256_setr_epi32(
            32 - s0, 32 - s0, 32 - s0, 32 - s0, 32 - s1, 32 - s1,
            32 - s1, 32 - s1);
        __m256i v = _mm256_or_si256(_mm256_srlv_epi32(lo, srl),
                                    _mm256_sllv_epi32(carry, sll));
        v = _mm256_and_si256(v, mask);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + 4 * r),
                            v);
    }
}

#endif // WSEARCH_PACKED_X86

using UnpackFn = void (*)(const uint8_t *, uint32_t, uint32_t *);

struct Dispatch
{
    UnpackFn fn;
    Level level;
};

Dispatch
resolve()
{
#if WSEARCH_PACKED_X86
    if (__builtin_cpu_supports("avx2"))
        return {unpackAvx2Impl, Level::kAvx2};
    return {unpackSse2Impl, Level::kSse2};
#else
    return {unpackScalarImpl, Level::kScalar};
#endif
}

const Dispatch &
dispatch()
{
    static const Dispatch d = resolve();
    return d;
}

/** Width-0 blocks carry no payload: everything decodes to zero. */
inline bool
zeroFill(uint32_t bits, uint32_t *out)
{
    if (bits != 0)
        return false;
    std::memset(out, 0, sizeof(uint32_t) * kPostingBlockSize);
    return true;
}

} // namespace

Level
activeLevel()
{
    return dispatch().level;
}

const char *
levelName(Level level)
{
    switch (level) {
      case Level::kScalar:
        return "scalar";
      case Level::kSse2:
        return "sse2";
      case Level::kAvx2:
        return "avx2";
    }
    return "?";
}

void
unpackScalar(const uint8_t *in, uint32_t bits, uint32_t *out)
{
    if (zeroFill(bits, out))
        return;
    unpackScalarImpl(in, bits, out);
}

bool
unpackSse2(const uint8_t *in, uint32_t bits, uint32_t *out)
{
#if WSEARCH_PACKED_X86
    if (zeroFill(bits, out))
        return true;
    unpackSse2Impl(in, bits, out);
    return true;
#else
    (void)in;
    (void)bits;
    (void)out;
    return false;
#endif
}

bool
unpackAvx2(const uint8_t *in, uint32_t bits, uint32_t *out)
{
#if WSEARCH_PACKED_X86
    if (!__builtin_cpu_supports("avx2"))
        return false;
    if (zeroFill(bits, out))
        return true;
    unpackAvx2Impl(in, bits, out);
    return true;
#else
    (void)in;
    (void)bits;
    (void)out;
    return false;
#endif
}

} // namespace packed_simd

namespace {

/** The dispatched bulk unpack (handles width 0). */
inline void
unpackDispatched(const uint8_t *in, uint32_t bits, uint32_t *out)
{
    if (bits == 0) {
        std::memset(out, 0, sizeof(uint32_t) * kPostingBlockSize);
        return;
    }
    packed_simd::dispatch().fn(in, bits, out);
}

/**
 * Append 128 width-@p bits values (vertical layout; @p v zero-padded
 * past @p count by the caller) to @p out. Encode is scalar: it runs
 * once at build/seal/merge time, decode is the hot path.
 */
void
packBits(const uint32_t *v, uint32_t bits, std::vector<uint8_t> &out)
{
    if (bits == 0)
        return;
    const size_t pos = out.size();
    out.resize(pos + 16u * bits, 0);
    uint8_t *bytes = out.data() + pos;
    for (uint32_t i = 0; i < kPostingBlockSize; ++i) {
        const uint32_t lane = i & 3;
        const uint32_t row = i >> 2;
        const uint32_t bit = row * bits;
        const uint32_t word = bit >> 5;
        const uint32_t sh = bit & 31;
        const uint64_t val = static_cast<uint64_t>(v[i]) << sh;
        uint8_t *p0 = bytes + (word * 4 + lane) * 4;
        storeLe32(p0, loadLe32(p0) | static_cast<uint32_t>(val));
        if (sh + bits > 32) {
            uint8_t *p1 = bytes + ((word + 1) * 4 + lane) * 4;
            storeLe32(p1,
                      loadLe32(p1) | static_cast<uint32_t>(val >> 32));
        }
    }
}

// ---------------------------------------------------------------------
// Codec implementations
// ---------------------------------------------------------------------

class VarintBlockCodec final : public BlockCodec
{
  public:
    PostingCodec id() const override { return PostingCodec::kVarint; }
    const char *name() const override { return "varint"; }

    void
    encodeBlock(const DocId *docs, const uint32_t *tfs, uint32_t count,
                DocId base, std::vector<uint8_t> &out) const override
    {
        DocId prev = base;
        for (uint32_t i = 0; i < count; ++i) {
            varintEncode(docs[i] - prev, out);
            varintEncode(tfs[i], out);
            prev = docs[i];
        }
    }

    void
    decodeBlock(const uint8_t *begin, const uint8_t *end, DocId base,
                uint32_t count, uint32_t payload_bytes, DocId *docs,
                uint32_t *tfs) const override
    {
        const uint8_t *p = begin;
        DocId doc = base;
        for (uint32_t i = 0; i < count; ++i) {
            const uint64_t gap = varintDecode(p, end);
            const uint64_t tf = varintDecode(p, end);
            doc += static_cast<DocId>(gap);
            docs[i] = doc;
            tfs[i] = static_cast<uint32_t>(tf);
            p += payload_bytes <= static_cast<size_t>(end - p)
                ? payload_bytes
                : static_cast<size_t>(end - p);
        }
    }
};

class PackedBlockCodec final : public BlockCodec
{
  public:
    PostingCodec id() const override { return PostingCodec::kPacked; }
    const char *name() const override { return "packed"; }

    void
    encodeBlock(const DocId *docs, const uint32_t *tfs, uint32_t count,
                DocId base, std::vector<uint8_t> &out) const override
    {
        wsearch_assert(count >= 1 && count <= kPostingBlockSize);
        uint32_t gaps[kPostingBlockSize] = {0};
        uint32_t tfv[kPostingBlockSize] = {0};
        DocId prev = base;
        uint32_t gap_or = 0;
        uint32_t tf_or = 0;
        for (uint32_t i = 0; i < count; ++i) {
            gaps[i] = docs[i] - prev;
            prev = docs[i];
            gap_or |= gaps[i];
            tfv[i] = tfs[i];
            tf_or |= tfs[i];
        }
        const uint32_t gap_bits = bitWidth(gap_or);
        const uint32_t tf_bits = bitWidth(tf_or);
        const size_t pos = out.size();
        out.resize(pos + kPackedHeaderBytes);
        uint8_t *hdr = out.data() + pos;
        storeLe32(hdr, base);
        storeLe16(hdr + 4, static_cast<uint16_t>(count));
        hdr[6] = static_cast<uint8_t>(gap_bits);
        hdr[7] = static_cast<uint8_t>(tf_bits);
        packBits(gaps, gap_bits, out);
        packBits(tfv, tf_bits, out);
    }

    void
    decodeBlock(const uint8_t *begin, const uint8_t *end, DocId base,
                uint32_t count, uint32_t payload_bytes, DocId *docs,
                uint32_t *tfs) const override
    {
        (void)payload_bytes;
        wsearch_assert(payload_bytes == 0);
        wsearch_assert(end - begin >=
                       static_cast<ptrdiff_t>(kPackedHeaderBytes));
        wsearch_assert(loadLe32(begin) == base);
        wsearch_assert(loadLe16(begin + 4) == count);
        const uint32_t gap_bits = begin[6];
        const uint32_t tf_bits = begin[7];
        alignas(32) uint32_t gaps[kPostingBlockSize];
        unpackDispatched(begin + kPackedHeaderBytes, gap_bits, gaps);
        unpackDispatched(begin + kPackedHeaderBytes + 16 * gap_bits,
                         tf_bits, tfs);
        DocId doc = base;
        for (uint32_t i = 0; i < count; ++i) {
            doc += gaps[i];
            docs[i] = doc;
        }
    }

    uint32_t tailPadBytes() const override { return kPackedTailPad; }
};

} // namespace

PackedBlockHeader
readPackedBlockHeader(const uint8_t *p)
{
    PackedBlockHeader h;
    h.base = loadLe32(p);
    h.count = loadLe16(p + 4);
    h.gapBits = p[6];
    h.tfBits = p[7];
    h.blockBytes = kPackedHeaderBytes + 16 * (h.gapBits + h.tfBits);
    return h;
}

const char *
postingCodecName(PostingCodec codec)
{
    return BlockCodec::get(codec).name();
}

const BlockCodec &
BlockCodec::get(PostingCodec id)
{
    static const VarintBlockCodec varint;
    static const PackedBlockCodec packed;
    switch (id) {
      case PostingCodec::kVarint:
        return varint;
      case PostingCodec::kPacked:
        return packed;
    }
    wsearch_panic("unknown PostingCodec");
}

} // namespace wsearch
