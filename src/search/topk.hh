/**
 * @file
 * Bounded top-k selection via a min-heap: the leaf server keeps the k
 * best-scoring documents seen so far with O(log k) insertion.
 */

#ifndef WSEARCH_SEARCH_TOPK_HH
#define WSEARCH_SEARCH_TOPK_HH

#include <algorithm>
#include <vector>

#include "search/types.hh"

namespace wsearch {

/** Keeps the k largest ScoredDocs. */
class TopK
{
  public:
    explicit TopK(size_t k) : k_(k) {}

    /** Rebind to a new k and empty the heap (keeps capacity). */
    void
    reset(size_t k)
    {
        k_ = k;
        heap_.clear();
    }

    /** Offer a candidate; @return true when it entered the heap. */
    bool
    offer(const ScoredDoc &cand)
    {
        if (heap_.size() < k_) {
            heap_.push_back(cand);
            std::push_heap(heap_.begin(), heap_.end(), minFirst);
            return true;
        }
        if (!(heap_.front() < cand))
            return false;
        std::pop_heap(heap_.begin(), heap_.end(), minFirst);
        heap_.back() = cand;
        std::push_heap(heap_.begin(), heap_.end(), minFirst);
        return true;
    }

    /** Lowest score currently retained (0 when not full). */
    float
    threshold() const
    {
        return heap_.size() < k_ ? 0.0f : heap_.front().score;
    }

    size_t size() const { return heap_.size(); }
    size_t capacity() const { return k_; }

    /** Extract results ordered best-first. */
    std::vector<ScoredDoc>
    results() const
    {
        std::vector<ScoredDoc> out = heap_;
        std::sort(out.begin(), out.end(),
                  [](const ScoredDoc &a, const ScoredDoc &b) {
                      return b < a;
                  });
        return out;
    }

    void
    clear()
    {
        heap_.clear();
    }

  private:
    static bool
    minFirst(const ScoredDoc &a, const ScoredDoc &b)
    {
        return b < a;
    }

    size_t k_;
    std::vector<ScoredDoc> heap_;
};

} // namespace wsearch

#endif // WSEARCH_SEARCH_TOPK_HH
