/**
 * @file
 * Root aggregation and the serving tree (paper Figure 1): a query
 * enters at the front end, is filtered by the query-cache tier, fans
 * out to every leaf (each holding a disjoint shard partition), and
 * the root merges the per-leaf top-k into the final result page.
 */

#ifndef WSEARCH_SEARCH_ROOT_HH
#define WSEARCH_SEARCH_ROOT_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "search/cache_server.hh"
#include "search/leaf.hh"
#include "search/query.hh"

namespace wsearch {

/**
 * How one shard resolved within a scatter-gather query. Missed and
 * Unavailable both leave a coverage hole, but they mean different
 * things operationally: Missed is deadline pressure (the shard was
 * healthy, the query ran out of time), Unavailable is a shard whose
 * every attempt failed or whose replicas are all down -- the signal
 * an operator pages on.
 */
enum class ShardOutcome : uint8_t
{
    Answered,    ///< contributed a partial result
    Missed,      ///< no answer by the deadline (shard may be fine)
    Unavailable, ///< every replica crashed/failed; gave up early
};

/**
 * A merged result page tagged with shard coverage: how many of the
 * shards that should have contributed actually did. A degraded page
 * (shardsAnswered < shardsTotal) is still valid and correctly ordered
 * over the shards that answered -- the scatter-gather layer returns
 * it when a shard misses its deadline or sheds, rather than failing
 * the whole query. shardsUnavailable counts the subset of the missing
 * shards that were *known dead* (all replicas crashed or exhausted
 * their retries) rather than merely late.
 */
struct MergedPage
{
    std::vector<ScoredDoc> docs;
    uint32_t shardsTotal = 0;
    uint32_t shardsAnswered = 0;
    uint32_t shardsUnavailable = 0;
    /** Per-shard index version behind each answer (live clusters;
     *  empty for frozen shards, 0 for shards that did not answer).
     *  One logical page never mixes answers from before and after a
     *  shard's rollout: the version is whatever snapshot the single
     *  winning replica answer was computed against. */
    std::vector<uint64_t> shardVersions;

    bool degraded() const { return shardsAnswered < shardsTotal; }

    double
    coverage() const
    {
        return shardsTotal ? static_cast<double>(shardsAnswered) /
                static_cast<double>(shardsTotal)
                           : 0.0;
    }
};

/** Merges per-leaf result lists into a global top-k. */
class RootServer
{
  public:
    /**
     * Merge best-first partial results into a global top-k.
     * Duplicate doc ids across partials (e.g. a primary and its hedge
     * both answering for the same shard) are deduplicated, keeping
     * the highest score; ordering is deterministic (score desc, doc
     * id asc on ties).
     */
    static std::vector<ScoredDoc>
    merge(const std::vector<std::vector<ScoredDoc>> &partials,
          uint32_t k);

    /**
     * Coverage-aware merge: only partials[s] with answered[s] != 0
     * contribute; the page reports shardsAnswered/shardsTotal.
     * @p answered must be the same length as @p partials.
     */
    static MergedPage
    mergeWithCoverage(const std::vector<std::vector<ScoredDoc>> &partials,
                      const std::vector<uint8_t> &answered, uint32_t k);

    /**
     * Outcome-aware merge: only ShardOutcome::Answered partials
     * contribute; Unavailable shards are additionally reported in
     * MergedPage::shardsUnavailable so callers can distinguish "late"
     * from "dead". @p outcomes must be the same length as @p partials.
     */
    static MergedPage
    mergeWithCoverage(const std::vector<std::vector<ScoredDoc>> &partials,
                      const std::vector<ShardOutcome> &outcomes,
                      uint32_t k);
};

/** The full serving system: cache tier + root + leaves. */
class ServingTree
{
  public:
    /** Plain counter snapshot (the atomics live in the tree). */
    struct Stats
    {
        uint64_t queries = 0;
        uint64_t cacheHits = 0;
        uint64_t leafQueries = 0; ///< queries that reached the leaves
    };

    /**
     * @param leaves non-owning; leaf i must serve partition i of the
     *               global document space
     * @param cache_capacity query-result cache entries (0 disables)
     */
    ServingTree(std::vector<LeafServer *> leaves, size_t cache_capacity);

    /**
     * Handle one request end-to-end on logical thread @p tid.
     * Thread-safe for concurrent callers with distinct tids, each
     * tid < every leaf's numThreads (LeafServer::serve's contract);
     * the cache tier is mutex-guarded and the stats are atomic.
     * Deadline/cancel propagate to every leaf; a degraded response
     * (some leaf abandoned mid-query) is never cached.
     * @return final merged results (served from cache when possible)
     */
    SearchResponse handle(uint32_t tid, const SearchRequest &req);

    /** Consistent-enough counter snapshot, safe mid-traffic. */
    Stats
    stats() const
    {
        Stats s;
        s.queries = queries_.load(std::memory_order_relaxed);
        s.cacheHits = cacheHits_.load(std::memory_order_relaxed);
        s.leafQueries = leafQueries_.load(std::memory_order_relaxed);
        return s;
    }

    /** The cache tier; callers must not race with handle(). */
    QueryCacheServer &cache() { return cache_; }

  private:
    std::vector<LeafServer *> leaves_;
    mutable std::mutex cacheMu_;
    QueryCacheServer cache_; ///< guarded by cacheMu_
    std::atomic<uint64_t> queries_{0};
    std::atomic<uint64_t> cacheHits_{0};
    std::atomic<uint64_t> leafQueries_{0};
};

/**
 * Multi-level serving tree (paper Figure 1): the root fans out to
 * intermediate parents, each responsible for a group of leaves and
 * performing its own score/merge step before the root's final merge.
 */
class MultiLevelTree
{
  public:
    /** Plain counter snapshot (the atomics live in the tree). */
    struct Stats
    {
        uint64_t queries = 0;
        uint64_t cacheHits = 0;
        uint64_t parentMerges = 0;
        uint64_t leafQueries = 0;
    };

    /**
     * @param leaves  non-owning, partitioned leaves
     * @param fanout  leaves per intermediate parent (>= 1)
     * @param cache_capacity front-end query cache entries (0 = none)
     */
    MultiLevelTree(std::vector<LeafServer *> leaves, uint32_t fanout,
                   size_t cache_capacity);

    /**
     * Handle one request through cache -> parents -> root merge.
     * Thread-safe under the same contract as ServingTree::handle;
     * degraded responses are never cached.
     */
    SearchResponse handle(uint32_t tid, const SearchRequest &req);

    /** Consistent-enough counter snapshot, safe mid-traffic. */
    Stats
    stats() const
    {
        Stats s;
        s.queries = queries_.load(std::memory_order_relaxed);
        s.cacheHits = cacheHits_.load(std::memory_order_relaxed);
        s.parentMerges = parentMerges_.load(std::memory_order_relaxed);
        s.leafQueries = leafQueries_.load(std::memory_order_relaxed);
        return s;
    }

    uint32_t numParents() const
    {
        return static_cast<uint32_t>(groups_.size());
    }

    /** The cache tier; callers must not race with handle(). */
    QueryCacheServer &cache() { return cache_; }

  private:
    std::vector<std::vector<LeafServer *>> groups_;
    mutable std::mutex cacheMu_;
    QueryCacheServer cache_; ///< guarded by cacheMu_
    std::atomic<uint64_t> queries_{0};
    std::atomic<uint64_t> cacheHits_{0};
    std::atomic<uint64_t> parentMerges_{0};
    std::atomic<uint64_t> leafQueries_{0};
};

} // namespace wsearch

#endif // WSEARCH_SEARCH_ROOT_HH
