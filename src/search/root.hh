/**
 * @file
 * Root aggregation and the serving tree (paper Figure 1): a query
 * enters at the front end, is filtered by the query-cache tier, fans
 * out to every leaf (each holding a disjoint shard partition), and
 * the root merges the per-leaf top-k into the final result page.
 */

#ifndef WSEARCH_SEARCH_ROOT_HH
#define WSEARCH_SEARCH_ROOT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "search/cache_server.hh"
#include "search/leaf.hh"
#include "search/query.hh"

namespace wsearch {

/** Merges per-leaf result lists into a global top-k. */
class RootServer
{
  public:
    /** Merge best-first partial results into a global top-k. */
    static std::vector<ScoredDoc>
    merge(const std::vector<std::vector<ScoredDoc>> &partials,
          uint32_t k);
};

/** The full serving system: cache tier + root + leaves. */
class ServingTree
{
  public:
    struct Stats
    {
        uint64_t queries = 0;
        uint64_t cacheHits = 0;
        uint64_t leafQueries = 0; ///< queries that reached the leaves
    };

    /**
     * @param leaves non-owning; leaf i must serve partition i of the
     *               global document space
     * @param cache_capacity query-result cache entries (0 disables)
     */
    ServingTree(std::vector<LeafServer *> leaves, size_t cache_capacity);

    /**
     * Handle one query end-to-end on logical thread @p tid.
     * @return final merged results (served from cache when possible)
     */
    std::vector<ScoredDoc> handle(uint32_t tid, const Query &query);

    const Stats &stats() const { return stats_; }
    QueryCacheServer &cache() { return cache_; }

  private:
    std::vector<LeafServer *> leaves_;
    QueryCacheServer cache_;
    Stats stats_;
};

/**
 * Multi-level serving tree (paper Figure 1): the root fans out to
 * intermediate parents, each responsible for a group of leaves and
 * performing its own score/merge step before the root's final merge.
 */
class MultiLevelTree
{
  public:
    struct Stats
    {
        uint64_t queries = 0;
        uint64_t cacheHits = 0;
        uint64_t parentMerges = 0;
        uint64_t leafQueries = 0;
    };

    /**
     * @param leaves  non-owning, partitioned leaves
     * @param fanout  leaves per intermediate parent (>= 1)
     * @param cache_capacity front-end query cache entries (0 = none)
     */
    MultiLevelTree(std::vector<LeafServer *> leaves, uint32_t fanout,
                   size_t cache_capacity);

    /** Handle one query through cache -> parents -> root merge. */
    std::vector<ScoredDoc> handle(uint32_t tid, const Query &query);

    const Stats &stats() const { return stats_; }
    uint32_t numParents() const
    {
        return static_cast<uint32_t>(groups_.size());
    }
    QueryCacheServer &cache() { return cache_; }

  private:
    std::vector<std::vector<LeafServer *>> groups_;
    QueryCacheServer cache_;
    Stats stats_;
};

} // namespace wsearch

#endif // WSEARCH_SEARCH_ROOT_HH
