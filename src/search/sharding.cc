#include "search/sharding.hh"

#include "util/logging.hh"

namespace wsearch {

std::vector<const IndexShard *>
ShardedIndex::shardPtrs() const
{
    std::vector<const IndexShard *> out;
    out.reserve(shards.size());
    for (const auto &s : shards)
        out.push_back(s.get());
    return out;
}

ShardedIndex
buildShardedIndex(const CorpusGenerator &corpus, uint32_t num_shards,
                  PostingCodec codec)
{
    wsearch_assert(num_shards >= 1);
    wsearch_assert(corpus.config().numDocs >= num_shards);
    ShardedIndex si;
    si.shards.reserve(num_shards);
    for (uint32_t s = 0; s < num_shards; ++s)
        si.shards.push_back(std::make_unique<MaterializedIndex>(
            corpus, num_shards, s, codec));
    return si;
}

} // namespace wsearch
