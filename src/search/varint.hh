/**
 * @file
 * LEB128-style variable-length integer codec used by the posting-list
 * format. Small values (typical document-id deltas) take one byte.
 */

#ifndef WSEARCH_SEARCH_VARINT_HH
#define WSEARCH_SEARCH_VARINT_HH

#include <cstdint>
#include <vector>

namespace wsearch {

/** Append @p value to @p out varint-encoded; returns bytes written. */
inline uint32_t
varintEncode(uint64_t value, std::vector<uint8_t> &out)
{
    uint32_t n = 0;
    while (value >= 0x80) {
        out.push_back(static_cast<uint8_t>(value) | 0x80);
        value >>= 7;
        ++n;
    }
    out.push_back(static_cast<uint8_t>(value));
    return n + 1;
}

/**
 * Decode one varint starting at @p p; advances @p p past it.
 * @p end guards against truncated input (returns 0 and leaves p at
 * end on overrun).
 */
inline uint64_t
varintDecode(const uint8_t *&p, const uint8_t *end)
{
    uint64_t value = 0;
    uint32_t shift = 0;
    while (p < end) {
        const uint8_t byte = *p++;
        value |= static_cast<uint64_t>(byte & 0x7F) << shift;
        if (!(byte & 0x80))
            return value;
        shift += 7;
        if (shift >= 64)
            break;
    }
    return value;
}

/** Encoded size of @p value in bytes. */
inline uint32_t
varintSize(uint64_t value)
{
    uint32_t n = 1;
    while (value >= 0x80) {
        value >>= 7;
        ++n;
    }
    return n;
}

} // namespace wsearch

#endif // WSEARCH_SEARCH_VARINT_HH
