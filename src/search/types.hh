/**
 * @file
 * Common identifier types for the mini search engine.
 */

#ifndef WSEARCH_SEARCH_TYPES_HH
#define WSEARCH_SEARCH_TYPES_HH

#include <cstdint>

namespace wsearch {

using DocId = uint32_t;
using TermId = uint32_t;

constexpr DocId kInvalidDoc = ~0u;

/** A scored document. */
struct ScoredDoc
{
    DocId doc = kInvalidDoc;
    float score = 0.0f;

    bool
    operator<(const ScoredDoc &other) const
    {
        // Order by score, ties by doc id for determinism.
        if (score != other.score)
            return score < other.score;
        return doc > other.doc;
    }
};

} // namespace wsearch

#endif // WSEARCH_SEARCH_TYPES_HH
