/**
 * @file
 * Engine-backed trace source: runs the instrumented leaf server on a
 * cache-filtered query stream and converts its memory touches into
 * TraceRecords, interleaving a synthetic instruction stream (the code
 * model) between data references. This is the repository's stand-in
 * for the paper's Pin traces of production servers: the data
 * references come from *real* query execution over the shard, and
 * only the instruction addresses are synthesized.
 */

#ifndef WSEARCH_SEARCH_ENGINE_TRACE_HH
#define WSEARCH_SEARCH_ENGINE_TRACE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "search/cache_server.hh"
#include "search/leaf.hh"
#include "search/query.hh"
#include "trace/code_model.hh"
#include "trace/record.hh"

namespace wsearch {

/** Configuration of the bridge. */
struct EngineTraceConfig
{
    uint32_t numThreads = 4;
    /** Mean number of instruction-only records between data records
     *  (search executes a few instructions per memory reference). */
    double codeGapMean = 1.6;
    /** Data records are emitted at this granularity within a touch
     *  (one record per this many bytes). */
    uint32_t touchGranularity = 16;
    /** Entries in the fronting query-result cache (absorbs popular
     *  queries before they reach the leaf). 0 disables the tier. */
    size_t queryCacheEntries = 1 << 16;
    CodeModelConfig code; ///< leaf binary model
    QueryGenerator::Config queries;
    uint64_t seed = 0x7ea5eull;
};

/** TraceSource backed by live instrumented query execution. */
class EngineTraceSource : public TraceSource
{
  public:
    /**
     * @param shard shared index shard; the leaf is created internally
     *        with cfg.numThreads executor threads
     */
    EngineTraceSource(const IndexShard &shard,
                      const EngineTraceConfig &cfg);
    ~EngineTraceSource() override;

    size_t fill(TraceRecord *buf, size_t max) override;
    void reset() override;

    uint64_t queriesExecuted() const { return queriesExecuted_; }
    uint64_t cacheAbsorbed() const { return cacheAbsorbed_; }
    LeafServer &leaf() { return *leaf_; }

    /** Codec of the traced shard, so memsim studies can label the
     *  shard access stream with the posting layout that produced it
     *  (varint vs packed MPKI comparisons). */
    PostingCodec shardCodec() const { return shard_.codec(); }

  private:
    struct PendingTouch
    {
        uint64_t addr;
        uint32_t bytes;
        AccessKind kind;
        bool write;
    };

    class QueueSink;

    struct ThreadState
    {
        std::unique_ptr<CodeModel> code;
        std::unique_ptr<QueryGenerator> queries;
        std::deque<PendingTouch> pending;
        uint64_t chunkPos = 0; ///< progress within pending.front()
        uint32_t codeGap = 0;
        Rng rng{0};
    };

    void refillThread(uint32_t tid);
    void emitRecord(TraceRecord &rec, uint32_t tid);

    const IndexShard &shard_;
    EngineTraceConfig cfg_;
    std::unique_ptr<QueueSink> sink_;
    std::unique_ptr<LeafServer> leaf_;
    QueryCacheServer cache_;
    std::vector<ThreadState> threads_;
    uint32_t rr_ = 0;
    uint64_t queriesExecuted_ = 0;
    uint64_t cacheAbsorbed_ = 0;
};

} // namespace wsearch

#endif // WSEARCH_SEARCH_ENGINE_TRACE_HH
