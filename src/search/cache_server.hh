/**
 * @file
 * Query-result cache server (paper Figure 1). Popular queries are
 * absorbed at this tier, so leaf servers see the cache-missed tail of
 * the traffic with very little repetition -- the reason the shard
 * working set shows no temporal locality at the leaf (paper §III-B).
 */

#ifndef WSEARCH_SEARCH_CACHE_SERVER_HH
#define WSEARCH_SEARCH_CACHE_SERVER_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "search/types.hh"

namespace wsearch {

/** LRU cache of query results keyed by canonical query id. */
class QueryCacheServer
{
  public:
    explicit QueryCacheServer(size_t capacity) : capacity_(capacity) {}

    /** @return true and fill @p out on a hit (refreshes LRU). */
    bool
    lookup(uint64_t query_id, std::vector<ScoredDoc> *out)
    {
        ++lookups_;
        auto it = map_.find(query_id);
        if (it == map_.end())
            return false;
        ++hits_;
        lru_.splice(lru_.begin(), lru_, it->second);
        if (out)
            *out = it->second->second;
        return true;
    }

    /** Install results for a missed query. */
    void
    insert(uint64_t query_id, std::vector<ScoredDoc> results)
    {
        // A disabled cache (capacity 0) must never store anything, so
        // the guard comes before any mutation.
        if (capacity_ == 0)
            return;
        auto it = map_.find(query_id);
        if (it != map_.end()) {
            it->second->second = std::move(results);
            lru_.splice(lru_.begin(), lru_, it->second);
            return;
        }
        if (lru_.size() >= capacity_) {
            map_.erase(lru_.back().first);
            lru_.pop_back();
            ++evictions_;
        }
        lru_.emplace_front(query_id, std::move(results));
        map_[query_id] = lru_.begin();
    }

    uint64_t lookups() const { return lookups_; }
    uint64_t hits() const { return hits_; }
    uint64_t evictions() const { return evictions_; }
    size_t size() const { return lru_.size(); }
    size_t capacity() const { return capacity_; }

    double
    hitRate() const
    {
        return lookups_
            ? static_cast<double>(hits_) / static_cast<double>(lookups_)
            : 0.0;
    }

    /** Approximate resident bytes (for footprint accounting). */
    uint64_t
    residentBytes() const
    {
        // id + list node + ~10 results.
        return lru_.size() * (16 + 32 + 10 * sizeof(ScoredDoc));
    }

  private:
    using Entry = std::pair<uint64_t, std::vector<ScoredDoc>>;
    size_t capacity_;
    std::list<Entry> lru_;
    std::unordered_map<uint64_t, std::list<Entry>::iterator> map_;
    uint64_t lookups_ = 0;
    uint64_t hits_ = 0;
    uint64_t evictions_ = 0;
};

} // namespace wsearch

#endif // WSEARCH_SEARCH_CACHE_SERVER_HH
