/**
 * @file
 * Memory-touch instrumentation. The engine's data structures report
 * every logical memory reference (segment-tagged canonical virtual
 * addresses) to a TouchSink; the trace bridge (engine_trace.hh) turns
 * these into TraceRecords for the cache simulator. A null sink makes
 * instrumentation free when tracing is off.
 */

#ifndef WSEARCH_SEARCH_TOUCH_HH
#define WSEARCH_SEARCH_TOUCH_HH

#include <cstdint>

#include "search/types.hh"
#include "stats/access_kind.hh"
#include "trace/record.hh"
#include "util/rng.hh"

namespace wsearch {

/** Receiver of instrumented memory touches. */
class TouchSink
{
  public:
    virtual ~TouchSink() = default;

    /**
     * One logical reference.
     * @param addr  canonical virtual address (vaddr:: layout)
     * @param bytes extent of the reference
     */
    virtual void touch(uint64_t addr, uint32_t bytes, AccessKind kind,
                       bool is_write) = 0;
};

/** Sink that discards everything (functional runs). */
class NullTouchSink : public TouchSink
{
  public:
    void
    touch(uint64_t, uint32_t, AccessKind, bool) override
    {
    }
};

/** Canonical engine address layout helpers. */
namespace engine_vaddr {

/** Shard bytes live at kShardBase + shard offset. */
inline uint64_t
shardAddr(uint64_t shard_offset)
{
    return vaddr::kShardBase + shard_offset;
}

/** Document metadata entries (length, static rank, ...): 32 B/doc. */
constexpr uint32_t kDocMetaBytes = 32;

inline uint64_t
docMetaAddr(DocId doc)
{
    return vaddr::kHeapBase + static_cast<uint64_t>(doc) * kDocMetaBytes;
}

/** Per-term dictionary entries: 48 B/term, after doc metadata. */
constexpr uint32_t kLexiconEntryBytes = 48;
constexpr uint64_t kLexiconBase = vaddr::kHeapBase + (8ull << 40);

inline uint64_t
lexiconAddr(TermId term)
{
    return kLexiconBase +
        static_cast<uint64_t>(term) * kLexiconEntryBytes;
}

/**
 * Per-term skip tables (block metadata), laid out in posting-list
 * order after the lexicon. Metadata is heap, not shard: the paper's
 * leaf keeps index auxiliaries in ordinary heap while the shard bytes
 * are a separate mapping. One 16 B entry per posting block; a table
 * never outgrows a quarter of its list's encoded bytes (>= 2 B per
 * posting, one entry per 128 postings), so offset/4 slots keep tables
 * disjoint.
 */
constexpr uint64_t kSkipBase = vaddr::kHeapBase + (12ull << 40);
constexpr uint32_t kSkipEntryBytes = 16;

inline uint64_t
skipAddr(uint64_t term_shard_offset, uint32_t entry)
{
    return kSkipBase + term_shard_offset / 4 +
        static_cast<uint64_t>(entry) * kSkipEntryBytes;
}

/**
 * Query-result cache tier buckets (the front tier that absorbs
 * popular queries). Every lookup -- hit or miss -- probes one hashed
 * bucket; shared across threads like the rest of the heap metadata.
 */
constexpr uint64_t kQueryCacheBase = vaddr::kHeapBase + (20ull << 40);
constexpr uint32_t kQueryCacheBucketBytes = 64;
constexpr uint64_t kQueryCacheBuckets = 1ull << 20;

inline uint64_t
queryCacheAddr(uint64_t query_id)
{
    return kQueryCacheBase +
        (mix64(query_id) % kQueryCacheBuckets) * kQueryCacheBucketBytes;
}

/** Per-thread query scratch (accumulators, top-k): 32 MiB stride. */
constexpr uint64_t kScratchBase = vaddr::kHeapBase + (16ull << 40);
constexpr uint64_t kScratchStride = 32ull << 20;

inline uint64_t
scratchAddr(uint32_t tid, uint64_t offset)
{
    return kScratchBase + tid * kScratchStride + offset;
}

/** Per-thread stack frames. */
inline uint64_t
stackAddr(uint32_t tid, uint64_t offset)
{
    return vaddr::kStackBase + tid * vaddr::kStackStride + offset;
}

} // namespace engine_vaddr

} // namespace wsearch

#endif // WSEARCH_SEARCH_TOUCH_HH
