/**
 * @file
 * Sharded index build: partition one corpus into S disjoint
 * MaterializedIndex shards by doc-id stride (shard s holds global
 * documents s, s + S, s + 2S, ...). Each shard's leaf is configured
 * with the matching docIdStride/docIdOffset so results carry global
 * document ids and a root merge over all shards covers the whole
 * corpus exactly once -- the paper Figure 1 partitioning, buildable
 * at any fan-out.
 */

#ifndef WSEARCH_SEARCH_SHARDING_HH
#define WSEARCH_SEARCH_SHARDING_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "search/corpus.hh"
#include "search/index.hh"
#include "search/leaf.hh"

namespace wsearch {

/** A corpus partitioned into disjoint per-shard indexes. */
struct ShardedIndex
{
    std::vector<std::unique_ptr<MaterializedIndex>> shards;

    uint32_t
    numShards() const
    {
        return static_cast<uint32_t>(shards.size());
    }

    const IndexShard &shard(uint32_t s) const { return *shards[s]; }

    /** Non-owning shard pointers (ClusterServer's ctor shape). */
    std::vector<const IndexShard *> shardPtrs() const;

    /**
     * Leaf config for shard @p s: @p base with docIdStride/docIdOffset
     * set so served doc ids are global.
     */
    LeafServer::Config
    leafConfig(uint32_t s, LeafServer::Config base = {}) const
    {
        base.docIdStride = numShards();
        base.docIdOffset = s;
        return base;
    }
};

/**
 * Build @p num_shards disjoint shards of @p corpus, each encoded in
 * @p codec. Shard statistics (docFreq, avgDocLen) are shard-local;
 * with the Zipf corpus and a stride partition they concentrate to the
 * global values as shards stay balanced (each holds every S-th
 * document).
 */
ShardedIndex
buildShardedIndex(const CorpusGenerator &corpus, uint32_t num_shards,
                  PostingCodec codec = PostingCodec::kVarint);

} // namespace wsearch

#endif // WSEARCH_SEARCH_SHARDING_HH
