/**
 * @file
 * Posting lists: delta + varint encoded (docid gap, term frequency)
 * pairs, the core of the index shard. The byte stream is organized in
 * blocks of kPostingBlockSize postings; a sidecar skip table (one
 * SkipEntry per block: last doc id, end byte offset, count, max tf)
 * lets a cursor seek in O(blocks) without decoding skipped blocks and
 * gives the executor per-block score upper bounds for dynamic pruning.
 * The skip table is *metadata* (heap segment); only the encoded
 * posting bytes belong to the shard segment.
 *
 * Two backends expose the same cursor interfaces:
 *
 *  - MaterializedPostings: real encoded bytes built by the indexer
 *    (used by the functional engine and all correctness tests).
 *  - Procedural postings (see index.hh): deterministic content
 *    generated on demand, so a nominal multi-GiB shard can be walked
 *    without materializing it -- the substitution that stands in for
 *    the paper's proprietary 100s-of-GiB production shards.
 */

#ifndef WSEARCH_SEARCH_POSTINGS_HH
#define WSEARCH_SEARCH_POSTINGS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "search/types.hh"
#include "search/varint.hh"
#include "util/logging.hh"

namespace wsearch {

/** Postings per block (one SkipEntry per block). */
constexpr uint32_t kPostingBlockSize = 128;

/** One decoded posting. */
struct Posting
{
    DocId doc = kInvalidDoc;
    uint32_t tf = 0;
};

/**
 * Per-block skip metadata. Block b spans encoded bytes
 * [b == 0 ? 0 : skips[b-1].endByte, skips[b].endByte) and decodes
 * against base doc id (b == 0 ? absolute first gap : skips[b-1].lastDoc).
 */
struct SkipEntry
{
    DocId lastDoc = 0;    ///< last doc id in the block
    uint32_t endByte = 0; ///< one past the block's final encoded byte
    uint32_t count = 0;   ///< postings in the block (tail may be short)
    uint32_t maxTf = 0;   ///< max term frequency in the block
};

/**
 * Borrowed, zero-copy view of one term's encoded postings plus its
 * skip table. Valid for the lifetime of whatever owns the storage
 * (the MaterializedIndex, or a per-executor scratch buffer for the
 * decode-on-demand procedural path).
 */
struct PostingView
{
    const uint8_t *bytes = nullptr;
    size_t size = 0;
    const SkipEntry *skips = nullptr;
    uint32_t numSkips = 0;
    uint32_t count = 0; ///< total postings (== docFreq)
};

/** Builder for an encoded posting list (ascending doc ids). */
class PostingListBuilder
{
  public:
    /** Append a posting; doc ids must be strictly ascending. */
    void
    add(DocId doc, uint32_t tf)
    {
        wsearch_assert(count_ == 0 || doc > lastDoc_);
        varintEncode(count_ == 0 ? doc : doc - lastDoc_, bytes_);
        varintEncode(tf, bytes_);
        lastDoc_ = doc;
        ++count_;
        if (tf > blockMaxTf_)
            blockMaxTf_ = tf;
        ++blockCount_;
        if (blockCount_ == kPostingBlockSize)
            finishBlock();
    }

    uint32_t count() const { return count_; }
    const std::vector<uint8_t> &bytes() const { return bytes_; }

    std::vector<uint8_t>
    release()
    {
        return std::move(bytes_);
    }

    /**
     * Skip table for the postings added so far (flushes the tail
     * block). Call before release(): the tail entry's endByte is the
     * current encoded length, which moves out with the bytes.
     */
    std::vector<SkipEntry>
    releaseSkips()
    {
        wsearch_assert(bytes_.size() >= count_ || count_ == 0);
        if (blockCount_ > 0)
            finishBlock();
        return std::move(skips_);
    }

  private:
    void
    finishBlock()
    {
        SkipEntry e;
        e.lastDoc = lastDoc_;
        e.endByte = static_cast<uint32_t>(bytes_.size());
        e.count = blockCount_;
        e.maxTf = blockMaxTf_;
        skips_.push_back(e);
        blockCount_ = 0;
        blockMaxTf_ = 0;
    }

    std::vector<uint8_t> bytes_;
    std::vector<SkipEntry> skips_;
    DocId lastDoc_ = 0;
    uint32_t count_ = 0;
    uint32_t blockCount_ = 0;
    uint32_t blockMaxTf_ = 0;
};

/**
 * Build the skip table for an already-encoded posting stream (the
 * decode-on-demand path for shards that cannot store a sidecar, e.g.
 * ProceduralIndex). One sequential decode pass; appends into @p out.
 */
inline void
buildSkipEntries(const uint8_t *begin, const uint8_t *end,
                 uint32_t count, uint32_t payload_bytes,
                 std::vector<SkipEntry> &out)
{
    out.clear();
    const uint8_t *p = begin;
    DocId doc = 0;
    uint32_t in_block = 0;
    uint32_t max_tf = 0;
    for (uint32_t i = 0; i < count && p < end; ++i) {
        const uint64_t gap = varintDecode(p, end);
        const uint64_t tf = varintDecode(p, end);
        doc = i == 0 ? static_cast<DocId>(gap)
                     : doc + static_cast<DocId>(gap);
        p += payload_bytes <= static_cast<size_t>(end - p)
            ? payload_bytes : static_cast<size_t>(end - p);
        if (tf > max_tf)
            max_tf = static_cast<uint32_t>(tf);
        ++in_block;
        if (in_block == kPostingBlockSize || i + 1 == count) {
            SkipEntry e;
            e.lastDoc = doc;
            e.endByte = static_cast<uint32_t>(p - begin);
            e.count = in_block;
            e.maxTf = max_tf;
            out.push_back(e);
            in_block = 0;
            max_tf = 0;
        }
    }
}

/** Sequential decoder over encoded posting bytes. */
class PostingCursor
{
  public:
    PostingCursor() = default;

    /**
     * @param payload_bytes fixed per-posting payload (positions,
     *        static features, ...) following the tf; skipped on
     *        decode but part of the shard layout
     */
    PostingCursor(const uint8_t *begin, const uint8_t *end,
                  uint32_t count, uint32_t payload_bytes = 0)
    {
        reset(begin, end, count, payload_bytes);
    }

    /** Rebind to a new byte range (arena reuse across queries). */
    void
    reset(const uint8_t *begin, const uint8_t *end, uint32_t count,
          uint32_t payload_bytes = 0)
    {
        p_ = begin;
        end_ = end;
        remaining_ = count;
        payloadBytes_ = payload_bytes;
        first_ = true;
        current_ = Posting{kInvalidDoc, 0};
        advance();
    }

    bool valid() const { return current_.doc != kInvalidDoc; }
    const Posting &posting() const { return current_; }
    DocId doc() const { return current_.doc; }
    uint32_t tf() const { return current_.tf; }

    /** Bytes consumed so far (for shard-access instrumentation). */
    size_t
    bytesConsumed(const uint8_t *begin) const
    {
        return static_cast<size_t>(p_ - begin);
    }

    /** Step to the next posting. */
    void
    next()
    {
        advance();
    }

    /** Advance to the first posting with doc >= @p target. */
    void
    seek(DocId target)
    {
        while (valid() && current_.doc < target)
            advance();
    }

  private:
    void
    advance()
    {
        if (remaining_ == 0 || p_ >= end_) {
            current_ = Posting{};
            return;
        }
        const uint64_t gap = varintDecode(p_, end_);
        const uint64_t tf = varintDecode(p_, end_);
        current_.doc = first_ ? static_cast<DocId>(gap)
                              : current_.doc + static_cast<DocId>(gap);
        current_.tf = static_cast<uint32_t>(tf);
        p_ += payloadBytes_ <= static_cast<size_t>(end_ - p_)
            ? payloadBytes_ : static_cast<size_t>(end_ - p_);
        first_ = false;
        --remaining_;
    }

    const uint8_t *p_ = nullptr;
    const uint8_t *end_ = nullptr;
    uint32_t remaining_ = 0;
    uint32_t payloadBytes_ = 0;
    bool first_ = true;
    Posting current_{kInvalidDoc, 0};
};

/**
 * Skip-aware block decoder. Decodes one block at a time (gap + tf in
 * bulk into an internal buffer); seek() walks the skip table forward
 * in O(blocks) and only decodes the landing block, so skipped blocks
 * are never touched. After any call that may decode, the caller can
 * collect the newly decoded byte region (takeDecodedBlock) and the
 * skip entries scanned (takeSkipScan) for touch instrumentation --
 * at most one block is decoded per cursor call.
 */
class BlockPostingCursor
{
  public:
    BlockPostingCursor() = default;

    /** Rebind to @p view; decodes the first block. */
    void
    reset(const PostingView &view, uint32_t payload_bytes)
    {
        view_ = view;
        payloadBytes_ = payload_bytes;
        block_ = 0;
        idx_ = 0;
        blockLen_ = 0;
        decodedBegin_ = decodedEnd_ = 0;
        decodedCount_ = 0;
        hasDecoded_ = false;
        scanBegin_ = scanEnd_ = 0;
        if (view_.numSkips > 0)
            decodeBlock(0);
    }

    bool valid() const { return idx_ < blockLen_; }
    DocId doc() const { return docs_[idx_]; }
    uint32_t tf() const { return tfs_[idx_]; }

    /** Step to the next posting (decodes the next block at an edge). */
    void
    next()
    {
        if (!valid())
            return;
        ++idx_;
        if (idx_ == blockLen_ && block_ + 1 < view_.numSkips)
            decodeBlock(block_ + 1);
    }

    /**
     * Advance to the first posting with doc >= @p target: scan skip
     * entries forward to the first block whose lastDoc covers the
     * target (skipped blocks are never decoded), then binary-search
     * inside the decoded block.
     */
    void
    seek(DocId target)
    {
        if (!valid() || docs_[idx_] >= target)
            return;
        if (view_.skips[block_].lastDoc < target) {
            // O(blocks) forward scan of the skip table.
            uint32_t b = block_ + 1;
            scanBegin_ = b;
            while (b < view_.numSkips &&
                   view_.skips[b].lastDoc < target)
                ++b;
            // The landing entry's lastDoc was read too.
            scanEnd_ = b < view_.numSkips ? b + 1 : view_.numSkips;
            if (b >= view_.numSkips) { // past the last block: exhausted
                idx_ = blockLen_;
                return;
            }
            decodeBlock(b);
        }
        // In-block gallop: binary search over the decoded doc ids.
        uint32_t lo = idx_, hi = blockLen_;
        while (lo < hi) {
            const uint32_t mid = (lo + hi) / 2;
            if (docs_[mid] < target)
                lo = mid + 1;
            else
                hi = mid;
        }
        idx_ = lo;
        // lastDoc >= target guarantees an in-block hit.
        wsearch_assert(idx_ < blockLen_);
    }

    /** Current block's skip entry (for block-max pruning). */
    const SkipEntry &
    blockMeta() const
    {
        return view_.skips[block_];
    }

    /**
     * Newly decoded byte region since the last call; true at most once
     * per decode. @p postings receives the block's posting count.
     */
    bool
    takeDecodedBlock(uint64_t &byte_begin, uint64_t &byte_end,
                     uint32_t &postings)
    {
        if (!hasDecoded_)
            return false;
        byte_begin = decodedBegin_;
        byte_end = decodedEnd_;
        postings = decodedCount_;
        hasDecoded_ = false;
        return true;
    }

    /** Skip-table entries scanned by the last seek (metadata reads). */
    bool
    takeSkipScan(uint32_t &first, uint32_t &count)
    {
        if (scanBegin_ == scanEnd_)
            return false;
        first = scanBegin_;
        count = scanEnd_ - scanBegin_;
        scanBegin_ = scanEnd_ = 0;
        return true;
    }

  private:
    void
    decodeBlock(uint32_t b)
    {
        const SkipEntry &e = view_.skips[b];
        const uint32_t begin = b == 0 ? 0 : view_.skips[b - 1].endByte;
        const uint8_t *p = view_.bytes + begin;
        const uint8_t *end = view_.bytes + e.endByte;
        DocId doc = b == 0 ? 0 : view_.skips[b - 1].lastDoc;
        for (uint32_t i = 0; i < e.count; ++i) {
            const uint64_t gap = varintDecode(p, end);
            const uint64_t tf = varintDecode(p, end);
            doc = (b == 0 && i == 0) ? static_cast<DocId>(gap)
                                     : doc + static_cast<DocId>(gap);
            docs_[i] = doc;
            tfs_[i] = static_cast<uint32_t>(tf);
            p += payloadBytes_ <= static_cast<size_t>(end - p)
                ? payloadBytes_ : static_cast<size_t>(end - p);
        }
        block_ = b;
        idx_ = 0;
        blockLen_ = e.count;
        decodedBegin_ = begin;
        decodedEnd_ = e.endByte;
        decodedCount_ = e.count;
        hasDecoded_ = true;
    }

    PostingView view_;
    uint32_t payloadBytes_ = 0;
    uint32_t block_ = 0;    ///< current block index
    uint32_t idx_ = 0;      ///< position within the decoded block
    uint32_t blockLen_ = 0; ///< postings decoded in the current block
    DocId docs_[kPostingBlockSize];
    uint32_t tfs_[kPostingBlockSize];

    // Instrumentation hand-off (drained by take*()).
    uint64_t decodedBegin_ = 0;
    uint64_t decodedEnd_ = 0;
    uint32_t decodedCount_ = 0;
    bool hasDecoded_ = false;
    uint32_t scanBegin_ = 0;
    uint32_t scanEnd_ = 0;
};

} // namespace wsearch

#endif // WSEARCH_SEARCH_POSTINGS_HH
