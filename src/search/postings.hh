/**
 * @file
 * Posting lists: (docid gap, term frequency) pairs organized in blocks
 * of kPostingBlockSize postings, the core of the index shard. How one
 * block is laid out in the byte stream is the shard's *codec* (see
 * block_codec.hh): the original delta + varint stream, or bit-packed
 * frame-of-reference blocks with SIMD bulk unpack. A codec-independent
 * sidecar skip table (one SkipEntry per block: last doc id, end byte
 * offset, count, max tf) lets a cursor seek in O(blocks) without
 * decoding skipped blocks and gives the executor per-block score upper
 * bounds for dynamic pruning. The skip table is *metadata* (heap
 * segment); only the encoded posting bytes belong to the shard
 * segment.
 *
 * Two backends expose the same cursor interfaces:
 *
 *  - MaterializedPostings: real encoded bytes built by the indexer
 *    (used by the functional engine and all correctness tests).
 *  - Procedural postings (see index.hh): deterministic content
 *    generated on demand, so a nominal multi-GiB shard can be walked
 *    without materializing it -- the substitution that stands in for
 *    the paper's proprietary 100s-of-GiB production shards. Always
 *    varint (the generator emits the stream byte-wise).
 */

#ifndef WSEARCH_SEARCH_POSTINGS_HH
#define WSEARCH_SEARCH_POSTINGS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "search/block_codec.hh"
#include "search/types.hh"
#include "search/varint.hh"
#include "util/logging.hh"

namespace wsearch {

/** Postings per block (one SkipEntry per block). */
constexpr uint32_t kPostingBlockSize = 128;

/** One decoded posting. */
struct Posting
{
    DocId doc = kInvalidDoc;
    uint32_t tf = 0;
};

/**
 * Per-block skip metadata. Block b spans encoded bytes
 * [b == 0 ? 0 : skips[b-1].endByte, skips[b].endByte) and decodes
 * against base doc id (b == 0 ? 0 : skips[b-1].lastDoc); a base of 0
 * makes the first block's first gap the absolute doc id.
 */
struct SkipEntry
{
    DocId lastDoc = 0;    ///< last doc id in the block
    uint32_t endByte = 0; ///< one past the block's final encoded byte
    uint32_t count = 0;   ///< postings in the block (tail may be short)
    uint32_t maxTf = 0;   ///< max term frequency in the block
};

/**
 * Borrowed, zero-copy view of one term's encoded postings plus its
 * skip table. Valid for the lifetime of whatever owns the storage
 * (the MaterializedIndex, or a per-executor scratch buffer for the
 * decode-on-demand procedural path). For codec kPacked, `size`
 * includes the kPackedTailPad slack after the final block.
 */
struct PostingView
{
    const uint8_t *bytes = nullptr;
    size_t size = 0;
    const SkipEntry *skips = nullptr;
    uint32_t numSkips = 0;
    uint32_t count = 0; ///< total postings (== docFreq)
    PostingCodec codec = PostingCodec::kVarint;
};

/**
 * Canonical per-block skip-metadata accumulator. Both skip-table
 * producers -- PostingListBuilder (the indexer) and buildSkipEntries
 * (the decode-on-demand rebuild) -- run their postings through this
 * one accumulator, so the two paths cannot disagree on block
 * boundaries, counts, or the tail block's maxTf (regression: a tail
 * of exactly one posting).
 */
class SkipTableBuilder
{
  public:
    /** Record one posting of the current block. */
    void
    note(DocId doc, uint32_t tf)
    {
        lastDoc_ = doc;
        if (tf > maxTf_)
            maxTf_ = tf;
        ++blockCount_;
    }

    bool blockFull() const { return blockCount_ == kPostingBlockSize; }
    uint32_t blockCount() const { return blockCount_; }
    DocId blockLastDoc() const { return lastDoc_; }
    uint32_t blockMaxTf() const { return maxTf_; }

    /** Close the current block, whose bytes end at @p end_byte. */
    void
    endBlock(uint32_t end_byte)
    {
        wsearch_assert(blockCount_ > 0);
        entries_.push_back(
            SkipEntry{lastDoc_, end_byte, blockCount_, maxTf_});
        blockCount_ = 0;
        maxTf_ = 0;
    }

    std::vector<SkipEntry>
    release()
    {
        wsearch_assert(blockCount_ == 0);
        return std::move(entries_);
    }

  private:
    std::vector<SkipEntry> entries_;
    DocId lastDoc_ = 0;
    uint32_t blockCount_ = 0;
    uint32_t maxTf_ = 0;
};

/**
 * Builder for an encoded posting list (ascending doc ids) in the
 * given codec. Varint lists encode eagerly, so bytes() is complete
 * after every add(); packed lists encode a block at a time, so
 * bytes() covers finished blocks only until releaseSkips() flushes
 * the tail. releaseSkips() must precede release().
 */
class PostingListBuilder
{
  public:
    explicit PostingListBuilder(
        PostingCodec codec = PostingCodec::kVarint)
        : codec_(&BlockCodec::get(codec))
    {
    }

    /** Append a posting; doc ids must be strictly ascending. */
    void
    add(DocId doc, uint32_t tf)
    {
        wsearch_assert(count_ == 0 || doc > lastDoc_);
        if (codec_->id() == PostingCodec::kVarint) {
            // One varint posting is self-delimiting: encode eagerly
            // so bytes() stays live mid-block (byte stream identical
            // to the pre-codec format).
            codec_->encodeBlock(&doc, &tf, 1, count_ == 0 ? 0 : lastDoc_,
                                bytes_);
        } else {
            const uint32_t i = skips_.blockCount();
            docBuf_[i] = doc;
            tfBuf_[i] = tf;
        }
        lastDoc_ = doc;
        ++count_;
        skips_.note(doc, tf);
        if (skips_.blockFull())
            finishBlock();
    }

    uint32_t count() const { return count_; }
    PostingCodec codec() const { return codec_->id(); }

    /** Encoded bytes so far (packed: finished blocks only). */
    const std::vector<uint8_t> &bytes() const { return bytes_; }

    /**
     * The encoded list. Call releaseSkips() first -- it flushes the
     * tail block -- after which this appends the codec's tail pad
     * (SIMD over-read slack, outside every SkipEntry.endByte) and
     * moves the bytes out.
     */
    std::vector<uint8_t>
    release()
    {
        wsearch_assert(skips_.blockCount() == 0);
        if (count_ > 0)
            bytes_.insert(bytes_.end(), codec_->tailPadBytes(), 0u);
        return std::move(bytes_);
    }

    /**
     * Skip table for the postings added so far (flushes the tail
     * block). Call before release(): the tail entry's endByte is the
     * current encoded length, which moves out with the bytes.
     */
    std::vector<SkipEntry>
    releaseSkips()
    {
        if (skips_.blockCount() > 0)
            finishBlock();
        return skips_.release();
    }

  private:
    void
    finishBlock()
    {
        if (codec_->id() != PostingCodec::kVarint)
            codec_->encodeBlock(docBuf_, tfBuf_, skips_.blockCount(),
                                base_, bytes_);
        base_ = lastDoc_;
        skips_.endBlock(static_cast<uint32_t>(bytes_.size()));
    }

    const BlockCodec *codec_;
    std::vector<uint8_t> bytes_;
    SkipTableBuilder skips_;
    DocId docBuf_[kPostingBlockSize];
    uint32_t tfBuf_[kPostingBlockSize];
    DocId lastDoc_ = 0;
    DocId base_ = 0; ///< last doc of the previous finished block
    uint32_t count_ = 0;
};

/**
 * Build the skip table for an already-encoded varint posting stream
 * (the decode-on-demand path for shards that cannot store a sidecar,
 * e.g. ProceduralIndex). One sequential decode pass through the same
 * SkipTableBuilder the indexer uses; appends into @p out.
 */
inline void
buildSkipEntries(const uint8_t *begin, const uint8_t *end,
                 uint32_t count, uint32_t payload_bytes,
                 std::vector<SkipEntry> &out)
{
    SkipTableBuilder stb;
    const uint8_t *p = begin;
    DocId doc = 0;
    for (uint32_t i = 0; i < count && p < end; ++i) {
        const uint64_t gap = varintDecode(p, end);
        const uint64_t tf = varintDecode(p, end);
        doc += static_cast<DocId>(gap);
        p += payload_bytes <= static_cast<size_t>(end - p)
            ? payload_bytes : static_cast<size_t>(end - p);
        stb.note(doc, static_cast<uint32_t>(tf));
        if (stb.blockFull() || i + 1 == count)
            stb.endBlock(static_cast<uint32_t>(p - begin));
    }
    out = stb.release();
}

/**
 * Sequential decoder over encoded posting bytes. Varint streams are
 * walked a posting at a time; packed streams a block at a time via
 * the self-describing block headers (no skip table needed), which is
 * also what the live-merge reader uses.
 */
class PostingCursor
{
  public:
    PostingCursor() = default;

    /**
     * @param payload_bytes fixed per-posting payload (positions,
     *        static features, ...) following the tf; skipped on
     *        decode but part of the shard layout (varint only)
     */
    PostingCursor(const uint8_t *begin, const uint8_t *end,
                  uint32_t count, uint32_t payload_bytes = 0,
                  PostingCodec codec = PostingCodec::kVarint)
    {
        reset(begin, end, count, payload_bytes, codec);
    }

    /** Rebind to a new byte range (arena reuse across queries). */
    void
    reset(const uint8_t *begin, const uint8_t *end, uint32_t count,
          uint32_t payload_bytes = 0,
          PostingCodec codec = PostingCodec::kVarint)
    {
        p_ = begin;
        end_ = end;
        remaining_ = count;
        payloadBytes_ = payload_bytes;
        codec_ = codec;
        wsearch_assert(codec_ == PostingCodec::kVarint ||
                       payload_bytes == 0);
        blockLen_ = 0;
        idx_ = 0;
        emitted_ = 0;
        current_ = Posting{kInvalidDoc, 0};
        advance();
    }

    bool valid() const { return current_.doc != kInvalidDoc; }
    const Posting &posting() const { return current_; }
    DocId doc() const { return current_.doc; }
    uint32_t tf() const { return current_.tf; }

    /**
     * Bytes consumed so far (for shard-access instrumentation).
     * Block-granular for packed streams: a whole block is charged
     * when it is decoded.
     */
    size_t
    bytesConsumed(const uint8_t *begin) const
    {
        return static_cast<size_t>(p_ - begin);
    }

    /**
     * Postings decoded so far (exact and codec-independent, unlike
     * bytesConsumed which is block-granular for packed streams).
     */
    uint64_t postingsConsumed() const { return emitted_; }

    /** Step to the next posting. */
    void
    next()
    {
        advance();
    }

    /** Advance to the first posting with doc >= @p target. */
    void
    seek(DocId target)
    {
        while (valid() && current_.doc < target)
            advance();
    }

  private:
    void
    advance()
    {
        if (codec_ == PostingCodec::kPacked) {
            advancePacked();
            return;
        }
        if (remaining_ == 0 || p_ >= end_) {
            current_ = Posting{};
            return;
        }
        const uint64_t gap = varintDecode(p_, end_);
        const uint64_t tf = varintDecode(p_, end_);
        current_.doc = current_.doc == kInvalidDoc
            ? static_cast<DocId>(gap)
            : current_.doc + static_cast<DocId>(gap);
        current_.tf = static_cast<uint32_t>(tf);
        p_ += payloadBytes_ <= static_cast<size_t>(end_ - p_)
            ? payloadBytes_ : static_cast<size_t>(end_ - p_);
        --remaining_;
        ++emitted_;
    }

    void
    advancePacked()
    {
        if (idx_ + 1 < blockLen_) {
            ++idx_;
            current_ = Posting{docs_[idx_], tfs_[idx_]};
            ++emitted_;
            return;
        }
        if (remaining_ == 0 || p_ >= end_) {
            current_ = Posting{};
            return;
        }
        const PackedBlockHeader h = readPackedBlockHeader(p_);
        wsearch_assert(h.count <= remaining_);
        BlockCodec::get(PostingCodec::kPacked)
            .decodeBlock(p_, p_ + h.blockBytes, h.base, h.count, 0,
                         docs_, tfs_);
        p_ += h.blockBytes;
        remaining_ -= h.count;
        blockLen_ = h.count;
        idx_ = 0;
        current_ = Posting{docs_[0], tfs_[0]};
        ++emitted_;
    }

    const uint8_t *p_ = nullptr;
    const uint8_t *end_ = nullptr;
    uint32_t remaining_ = 0;
    uint32_t payloadBytes_ = 0;
    PostingCodec codec_ = PostingCodec::kVarint;
    uint64_t emitted_ = 0; ///< postings decoded since reset()
    Posting current_{kInvalidDoc, 0};

    // Packed-stream block buffer (unused for varint).
    uint32_t blockLen_ = 0;
    uint32_t idx_ = 0;
    alignas(32) DocId docs_[kPostingBlockSize];
    alignas(32) uint32_t tfs_[kPostingBlockSize];
};

/**
 * Skip-aware block decoder. Decodes one block at a time through the
 * view's codec (bulk into an internal buffer); seek() walks the skip
 * table forward in O(blocks), only decodes the landing block, and
 * then gallops within it (branchless binary search over the unpacked
 * doc array), so skipped blocks are never touched. After any call
 * that may decode, the caller can collect the newly decoded byte
 * region (takeDecodedBlock) and the skip entries scanned
 * (takeSkipScan) for touch instrumentation -- at most one block is
 * decoded per cursor call.
 */
class BlockPostingCursor
{
  public:
    BlockPostingCursor() = default;

    /** Rebind to @p view; decodes the first block. */
    void
    reset(const PostingView &view, uint32_t payload_bytes)
    {
        view_ = view;
        codec_ = &BlockCodec::get(view.codec);
        payloadBytes_ = payload_bytes;
        block_ = 0;
        idx_ = 0;
        blockLen_ = 0;
        decodedBegin_ = decodedEnd_ = 0;
        decodedCount_ = 0;
        hasDecoded_ = false;
        scanBegin_ = scanEnd_ = 0;
        if (view_.numSkips > 0)
            decodeBlock(0);
    }

    bool valid() const { return idx_ < blockLen_; }
    DocId doc() const { return docs_[idx_]; }
    uint32_t tf() const { return tfs_[idx_]; }
    PostingCodec codec() const { return view_.codec; }

    /** Step to the next posting (decodes the next block at an edge). */
    void
    next()
    {
        if (!valid())
            return;
        ++idx_;
        if (idx_ == blockLen_ && block_ + 1 < view_.numSkips)
            decodeBlock(block_ + 1);
    }

    /**
     * Advance to the first posting with doc >= @p target: scan skip
     * entries forward to the first block whose lastDoc covers the
     * target (skipped blocks are never decoded), then gallop inside
     * the decoded block.
     */
    void
    seek(DocId target)
    {
        if (!valid() || docs_[idx_] >= target)
            return;
        if (view_.skips[block_].lastDoc < target) {
            // O(blocks) forward scan of the skip table.
            uint32_t b = block_ + 1;
            scanBegin_ = b;
            while (b < view_.numSkips &&
                   view_.skips[b].lastDoc < target)
                ++b;
            // The landing entry's lastDoc was read too.
            scanEnd_ = b < view_.numSkips ? b + 1 : view_.numSkips;
            if (b >= view_.numSkips) { // past the last block: exhausted
                idx_ = blockLen_;
                return;
            }
            decodeBlock(b);
        }
        // In-block gallop: branchless lower bound over the decoded
        // doc ids (the comparison result feeds a conditional move,
        // not a branch -- seek targets are adversarially unsorted
        // under MaxScore, so the branch would be unpredictable).
        uint32_t lo = idx_;
        uint32_t n = blockLen_ - idx_;
        while (n > 1) {
            const uint32_t half = n / 2;
            lo += docs_[lo + half - 1] < target ? half : 0;
            n -= half;
        }
        idx_ = lo + (docs_[lo] < target ? 1 : 0);
        // lastDoc >= target guarantees an in-block hit.
        wsearch_assert(idx_ < blockLen_);
    }

    /** Current block's skip entry (for block-max pruning). */
    const SkipEntry &
    blockMeta() const
    {
        return view_.skips[block_];
    }

    /**
     * Newly decoded byte region since the last call; true at most once
     * per decode. @p postings receives the block's posting count.
     */
    bool
    takeDecodedBlock(uint64_t &byte_begin, uint64_t &byte_end,
                     uint32_t &postings)
    {
        if (!hasDecoded_)
            return false;
        byte_begin = decodedBegin_;
        byte_end = decodedEnd_;
        postings = decodedCount_;
        hasDecoded_ = false;
        return true;
    }

    /** Skip-table entries scanned by the last seek (metadata reads). */
    bool
    takeSkipScan(uint32_t &first, uint32_t &count)
    {
        if (scanBegin_ == scanEnd_)
            return false;
        first = scanBegin_;
        count = scanEnd_ - scanBegin_;
        scanBegin_ = scanEnd_ = 0;
        return true;
    }

  private:
    void
    decodeBlock(uint32_t b)
    {
        const SkipEntry &e = view_.skips[b];
        const uint32_t begin = b == 0 ? 0 : view_.skips[b - 1].endByte;
        const DocId base = b == 0 ? 0 : view_.skips[b - 1].lastDoc;
        codec_->decodeBlock(view_.bytes + begin,
                            view_.bytes + e.endByte, base, e.count,
                            payloadBytes_, docs_, tfs_);
        block_ = b;
        idx_ = 0;
        blockLen_ = e.count;
        decodedBegin_ = begin;
        decodedEnd_ = e.endByte;
        decodedCount_ = e.count;
        hasDecoded_ = true;
    }

    PostingView view_;
    const BlockCodec *codec_ = nullptr;
    uint32_t payloadBytes_ = 0;
    uint32_t block_ = 0;    ///< current block index
    uint32_t idx_ = 0;      ///< position within the decoded block
    uint32_t blockLen_ = 0; ///< postings decoded in the current block
    alignas(32) DocId docs_[kPostingBlockSize];
    alignas(32) uint32_t tfs_[kPostingBlockSize];

    // Instrumentation hand-off (drained by take*()).
    uint64_t decodedBegin_ = 0;
    uint64_t decodedEnd_ = 0;
    uint32_t decodedCount_ = 0;
    bool hasDecoded_ = false;
    uint32_t scanBegin_ = 0;
    uint32_t scanEnd_ = 0;
};

} // namespace wsearch

#endif // WSEARCH_SEARCH_POSTINGS_HH
