/**
 * @file
 * Posting lists: delta + varint encoded (docid gap, term frequency)
 * pairs, the core of the index shard. Two backends expose the same
 * cursor interface:
 *
 *  - MaterializedPostings: real encoded bytes built by the indexer
 *    (used by the functional engine and all correctness tests).
 *  - Procedural postings (see shard.hh): deterministic content
 *    generated on demand, so a nominal multi-GiB shard can be walked
 *    without materializing it -- the substitution that stands in for
 *    the paper's proprietary 100s-of-GiB production shards.
 */

#ifndef WSEARCH_SEARCH_POSTINGS_HH
#define WSEARCH_SEARCH_POSTINGS_HH

#include <cstdint>
#include <vector>

#include "search/types.hh"
#include "search/varint.hh"
#include "util/logging.hh"

namespace wsearch {

/** One decoded posting. */
struct Posting
{
    DocId doc = kInvalidDoc;
    uint32_t tf = 0;
};

/** Builder for an encoded posting list (ascending doc ids). */
class PostingListBuilder
{
  public:
    /** Append a posting; doc ids must be strictly ascending. */
    void
    add(DocId doc, uint32_t tf)
    {
        wsearch_assert(count_ == 0 || doc > lastDoc_);
        varintEncode(count_ == 0 ? doc : doc - lastDoc_, bytes_);
        varintEncode(tf, bytes_);
        lastDoc_ = doc;
        ++count_;
    }

    uint32_t count() const { return count_; }
    const std::vector<uint8_t> &bytes() const { return bytes_; }

    std::vector<uint8_t>
    release()
    {
        return std::move(bytes_);
    }

  private:
    std::vector<uint8_t> bytes_;
    DocId lastDoc_ = 0;
    uint32_t count_ = 0;
};

/** Sequential decoder over encoded posting bytes. */
class PostingCursor
{
  public:
    /**
     * @param payload_bytes fixed per-posting payload (positions,
     *        static features, ...) following the tf; skipped on
     *        decode but part of the shard layout
     */
    PostingCursor(const uint8_t *begin, const uint8_t *end,
                  uint32_t count, uint32_t payload_bytes = 0)
        : p_(begin), end_(end), remaining_(count),
          payloadBytes_(payload_bytes)
    {
        advance();
    }

    bool valid() const { return current_.doc != kInvalidDoc; }
    const Posting &posting() const { return current_; }
    DocId doc() const { return current_.doc; }
    uint32_t tf() const { return current_.tf; }

    /** Bytes consumed so far (for shard-access instrumentation). */
    size_t
    bytesConsumed(const uint8_t *begin) const
    {
        return static_cast<size_t>(p_ - begin);
    }

    /** Step to the next posting. */
    void
    next()
    {
        advance();
    }

    /** Advance to the first posting with doc >= @p target. */
    void
    seek(DocId target)
    {
        while (valid() && current_.doc < target)
            advance();
    }

  private:
    void
    advance()
    {
        if (remaining_ == 0 || p_ >= end_) {
            current_ = Posting{};
            return;
        }
        const uint64_t gap = varintDecode(p_, end_);
        const uint64_t tf = varintDecode(p_, end_);
        current_.doc = first_ ? static_cast<DocId>(gap)
                              : current_.doc + static_cast<DocId>(gap);
        current_.tf = static_cast<uint32_t>(tf);
        p_ += payloadBytes_ <= static_cast<size_t>(end_ - p_)
            ? payloadBytes_ : static_cast<size_t>(end_ - p_);
        first_ = false;
        --remaining_;
    }

    const uint8_t *p_;
    const uint8_t *end_;
    uint32_t remaining_;
    uint32_t payloadBytes_ = 0;
    bool first_ = true;
    Posting current_{kInvalidDoc, 0};
};

} // namespace wsearch

#endif // WSEARCH_SEARCH_POSTINGS_HH
