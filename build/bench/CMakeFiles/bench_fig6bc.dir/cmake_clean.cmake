file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6bc.dir/bench_fig6bc.cc.o"
  "CMakeFiles/bench_fig6bc.dir/bench_fig6bc.cc.o.d"
  "bench_fig6bc"
  "bench_fig6bc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6bc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
