# Empty compiler generated dependencies file for bench_fig6bc.
# This may be replaced when dependencies are built.
