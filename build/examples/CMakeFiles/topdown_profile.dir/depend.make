# Empty dependencies file for topdown_profile.
# This may be replaced when dependencies are built.
