file(REMOVE_RECURSE
  "CMakeFiles/topdown_profile.dir/topdown_profile.cpp.o"
  "CMakeFiles/topdown_profile.dir/topdown_profile.cpp.o.d"
  "topdown_profile"
  "topdown_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topdown_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
