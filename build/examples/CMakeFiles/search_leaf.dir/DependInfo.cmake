
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/search_leaf.cpp" "examples/CMakeFiles/search_leaf.dir/search_leaf.cpp.o" "gcc" "examples/CMakeFiles/search_leaf.dir/search_leaf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wsearch_core.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/wsearch_search.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/wsearch_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/wsearch_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wsearch_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wsearch_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wsearch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
