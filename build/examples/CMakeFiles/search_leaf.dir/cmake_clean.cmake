file(REMOVE_RECURSE
  "CMakeFiles/search_leaf.dir/search_leaf.cpp.o"
  "CMakeFiles/search_leaf.dir/search_leaf.cpp.o.d"
  "search_leaf"
  "search_leaf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_leaf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
