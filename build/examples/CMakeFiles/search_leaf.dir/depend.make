# Empty dependencies file for search_leaf.
# This may be replaced when dependencies are built.
