file(REMOVE_RECURSE
  "libwsearch_util.a"
)
