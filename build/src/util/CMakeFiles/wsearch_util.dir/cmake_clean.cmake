file(REMOVE_RECURSE
  "CMakeFiles/wsearch_util.dir/env.cc.o"
  "CMakeFiles/wsearch_util.dir/env.cc.o.d"
  "CMakeFiles/wsearch_util.dir/table.cc.o"
  "CMakeFiles/wsearch_util.dir/table.cc.o.d"
  "CMakeFiles/wsearch_util.dir/zipf.cc.o"
  "CMakeFiles/wsearch_util.dir/zipf.cc.o.d"
  "libwsearch_util.a"
  "libwsearch_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsearch_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
