# Empty compiler generated dependencies file for wsearch_util.
# This may be replaced when dependencies are built.
