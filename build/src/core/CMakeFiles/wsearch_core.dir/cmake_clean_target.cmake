file(REMOVE_RECURSE
  "libwsearch_core.a"
)
