file(REMOVE_RECURSE
  "CMakeFiles/wsearch_core.dir/experiments.cc.o"
  "CMakeFiles/wsearch_core.dir/experiments.cc.o.d"
  "CMakeFiles/wsearch_core.dir/platform.cc.o"
  "CMakeFiles/wsearch_core.dir/platform.cc.o.d"
  "libwsearch_core.a"
  "libwsearch_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsearch_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
