# Empty dependencies file for wsearch_core.
# This may be replaced when dependencies are built.
