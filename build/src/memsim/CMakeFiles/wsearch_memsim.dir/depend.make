# Empty dependencies file for wsearch_memsim.
# This may be replaced when dependencies are built.
