file(REMOVE_RECURSE
  "CMakeFiles/wsearch_memsim.dir/hierarchy.cc.o"
  "CMakeFiles/wsearch_memsim.dir/hierarchy.cc.o.d"
  "CMakeFiles/wsearch_memsim.dir/simulator.cc.o"
  "CMakeFiles/wsearch_memsim.dir/simulator.cc.o.d"
  "libwsearch_memsim.a"
  "libwsearch_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsearch_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
