file(REMOVE_RECURSE
  "libwsearch_memsim.a"
)
