file(REMOVE_RECURSE
  "CMakeFiles/wsearch_search.dir/engine_trace.cc.o"
  "CMakeFiles/wsearch_search.dir/engine_trace.cc.o.d"
  "CMakeFiles/wsearch_search.dir/executor.cc.o"
  "CMakeFiles/wsearch_search.dir/executor.cc.o.d"
  "CMakeFiles/wsearch_search.dir/index.cc.o"
  "CMakeFiles/wsearch_search.dir/index.cc.o.d"
  "CMakeFiles/wsearch_search.dir/leaf.cc.o"
  "CMakeFiles/wsearch_search.dir/leaf.cc.o.d"
  "CMakeFiles/wsearch_search.dir/root.cc.o"
  "CMakeFiles/wsearch_search.dir/root.cc.o.d"
  "libwsearch_search.a"
  "libwsearch_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsearch_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
