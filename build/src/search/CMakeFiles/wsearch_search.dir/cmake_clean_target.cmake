file(REMOVE_RECURSE
  "libwsearch_search.a"
)
