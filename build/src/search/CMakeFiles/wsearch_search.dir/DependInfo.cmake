
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/engine_trace.cc" "src/search/CMakeFiles/wsearch_search.dir/engine_trace.cc.o" "gcc" "src/search/CMakeFiles/wsearch_search.dir/engine_trace.cc.o.d"
  "/root/repo/src/search/executor.cc" "src/search/CMakeFiles/wsearch_search.dir/executor.cc.o" "gcc" "src/search/CMakeFiles/wsearch_search.dir/executor.cc.o.d"
  "/root/repo/src/search/index.cc" "src/search/CMakeFiles/wsearch_search.dir/index.cc.o" "gcc" "src/search/CMakeFiles/wsearch_search.dir/index.cc.o.d"
  "/root/repo/src/search/leaf.cc" "src/search/CMakeFiles/wsearch_search.dir/leaf.cc.o" "gcc" "src/search/CMakeFiles/wsearch_search.dir/leaf.cc.o.d"
  "/root/repo/src/search/root.cc" "src/search/CMakeFiles/wsearch_search.dir/root.cc.o" "gcc" "src/search/CMakeFiles/wsearch_search.dir/root.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/wsearch_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wsearch_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wsearch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
