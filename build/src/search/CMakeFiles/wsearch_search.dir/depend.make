# Empty dependencies file for wsearch_search.
# This may be replaced when dependencies are built.
