file(REMOVE_RECURSE
  "libwsearch_cpu.a"
)
