file(REMOVE_RECURSE
  "CMakeFiles/wsearch_cpu.dir/system.cc.o"
  "CMakeFiles/wsearch_cpu.dir/system.cc.o.d"
  "libwsearch_cpu.a"
  "libwsearch_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsearch_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
