# Empty compiler generated dependencies file for wsearch_cpu.
# This may be replaced when dependencies are built.
