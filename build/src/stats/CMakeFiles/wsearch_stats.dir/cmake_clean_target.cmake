file(REMOVE_RECURSE
  "libwsearch_stats.a"
)
