file(REMOVE_RECURSE
  "CMakeFiles/wsearch_stats.dir/linreg.cc.o"
  "CMakeFiles/wsearch_stats.dir/linreg.cc.o.d"
  "CMakeFiles/wsearch_stats.dir/working_set.cc.o"
  "CMakeFiles/wsearch_stats.dir/working_set.cc.o.d"
  "libwsearch_stats.a"
  "libwsearch_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsearch_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
