# Empty dependencies file for wsearch_stats.
# This may be replaced when dependencies are built.
