# Empty compiler generated dependencies file for wsearch_stats.
# This may be replaced when dependencies are built.
