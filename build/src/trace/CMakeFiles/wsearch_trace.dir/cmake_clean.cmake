file(REMOVE_RECURSE
  "CMakeFiles/wsearch_trace.dir/code_model.cc.o"
  "CMakeFiles/wsearch_trace.dir/code_model.cc.o.d"
  "CMakeFiles/wsearch_trace.dir/profile.cc.o"
  "CMakeFiles/wsearch_trace.dir/profile.cc.o.d"
  "CMakeFiles/wsearch_trace.dir/synthetic.cc.o"
  "CMakeFiles/wsearch_trace.dir/synthetic.cc.o.d"
  "CMakeFiles/wsearch_trace.dir/trace_file.cc.o"
  "CMakeFiles/wsearch_trace.dir/trace_file.cc.o.d"
  "libwsearch_trace.a"
  "libwsearch_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsearch_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
