file(REMOVE_RECURSE
  "libwsearch_trace.a"
)
