# Empty compiler generated dependencies file for wsearch_trace.
# This may be replaced when dependencies are built.
