file(REMOVE_RECURSE
  "CMakeFiles/test_btb.dir/cpu/btb_test.cc.o"
  "CMakeFiles/test_btb.dir/cpu/btb_test.cc.o.d"
  "test_btb"
  "test_btb.pdb"
  "test_btb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_btb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
