file(REMOVE_RECURSE
  "CMakeFiles/test_root.dir/search/root_test.cc.o"
  "CMakeFiles/test_root.dir/search/root_test.cc.o.d"
  "test_root"
  "test_root.pdb"
  "test_root[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_root.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
