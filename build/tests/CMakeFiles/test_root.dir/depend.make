# Empty dependencies file for test_root.
# This may be replaced when dependencies are built.
