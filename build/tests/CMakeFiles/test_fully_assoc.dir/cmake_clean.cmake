file(REMOVE_RECURSE
  "CMakeFiles/test_fully_assoc.dir/memsim/fully_assoc_test.cc.o"
  "CMakeFiles/test_fully_assoc.dir/memsim/fully_assoc_test.cc.o.d"
  "test_fully_assoc"
  "test_fully_assoc.pdb"
  "test_fully_assoc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fully_assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
