file(REMOVE_RECURSE
  "CMakeFiles/test_multilevel_tree.dir/search/multilevel_tree_test.cc.o"
  "CMakeFiles/test_multilevel_tree.dir/search/multilevel_tree_test.cc.o.d"
  "test_multilevel_tree"
  "test_multilevel_tree.pdb"
  "test_multilevel_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multilevel_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
