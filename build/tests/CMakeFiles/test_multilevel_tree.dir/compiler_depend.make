# Empty compiler generated dependencies file for test_multilevel_tree.
# This may be replaced when dependencies are built.
