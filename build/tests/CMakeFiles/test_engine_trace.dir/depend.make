# Empty dependencies file for test_engine_trace.
# This may be replaced when dependencies are built.
