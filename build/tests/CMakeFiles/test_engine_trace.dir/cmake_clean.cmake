file(REMOVE_RECURSE
  "CMakeFiles/test_engine_trace.dir/search/engine_trace_test.cc.o"
  "CMakeFiles/test_engine_trace.dir/search/engine_trace_test.cc.o.d"
  "test_engine_trace"
  "test_engine_trace.pdb"
  "test_engine_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
