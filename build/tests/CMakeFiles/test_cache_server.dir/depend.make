# Empty dependencies file for test_cache_server.
# This may be replaced when dependencies are built.
