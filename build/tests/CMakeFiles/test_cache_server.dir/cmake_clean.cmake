file(REMOVE_RECURSE
  "CMakeFiles/test_cache_server.dir/search/cache_server_test.cc.o"
  "CMakeFiles/test_cache_server.dir/search/cache_server_test.cc.o.d"
  "test_cache_server"
  "test_cache_server.pdb"
  "test_cache_server[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
