# Empty dependencies file for test_scorer_topk.
# This may be replaced when dependencies are built.
