file(REMOVE_RECURSE
  "CMakeFiles/test_scorer_topk.dir/search/scorer_topk_test.cc.o"
  "CMakeFiles/test_scorer_topk.dir/search/scorer_topk_test.cc.o.d"
  "test_scorer_topk"
  "test_scorer_topk.pdb"
  "test_scorer_topk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scorer_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
