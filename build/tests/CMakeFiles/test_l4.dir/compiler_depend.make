# Empty compiler generated dependencies file for test_l4.
# This may be replaced when dependencies are built.
