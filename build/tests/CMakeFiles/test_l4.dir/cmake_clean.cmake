file(REMOVE_RECURSE
  "CMakeFiles/test_l4.dir/memsim/l4_test.cc.o"
  "CMakeFiles/test_l4.dir/memsim/l4_test.cc.o.d"
  "test_l4"
  "test_l4.pdb"
  "test_l4[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_l4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
