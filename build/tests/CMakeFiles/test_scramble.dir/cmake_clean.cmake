file(REMOVE_RECURSE
  "CMakeFiles/test_scramble.dir/util/scramble_test.cc.o"
  "CMakeFiles/test_scramble.dir/util/scramble_test.cc.o.d"
  "test_scramble"
  "test_scramble.pdb"
  "test_scramble[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scramble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
