# Empty dependencies file for test_scramble.
# This may be replaced when dependencies are built.
