file(REMOVE_RECURSE
  "CMakeFiles/test_predictor_props.dir/cpu/predictor_props_test.cc.o"
  "CMakeFiles/test_predictor_props.dir/cpu/predictor_props_test.cc.o.d"
  "test_predictor_props"
  "test_predictor_props.pdb"
  "test_predictor_props[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predictor_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
