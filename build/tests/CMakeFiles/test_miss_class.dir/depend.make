# Empty dependencies file for test_miss_class.
# This may be replaced when dependencies are built.
