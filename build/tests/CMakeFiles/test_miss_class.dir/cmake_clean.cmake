file(REMOVE_RECURSE
  "CMakeFiles/test_miss_class.dir/memsim/miss_class_test.cc.o"
  "CMakeFiles/test_miss_class.dir/memsim/miss_class_test.cc.o.d"
  "test_miss_class"
  "test_miss_class.pdb"
  "test_miss_class[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_miss_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
