file(REMOVE_RECURSE
  "CMakeFiles/test_split_l2.dir/memsim/split_l2_test.cc.o"
  "CMakeFiles/test_split_l2.dir/memsim/split_l2_test.cc.o.d"
  "test_split_l2"
  "test_split_l2.pdb"
  "test_split_l2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_split_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
