file(REMOVE_RECURSE
  "CMakeFiles/test_postings.dir/search/postings_test.cc.o"
  "CMakeFiles/test_postings.dir/search/postings_test.cc.o.d"
  "test_postings"
  "test_postings.pdb"
  "test_postings[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_postings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
