# Empty dependencies file for test_hierarchy_props.
# This may be replaced when dependencies are built.
