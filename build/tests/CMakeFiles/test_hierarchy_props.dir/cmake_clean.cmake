file(REMOVE_RECURSE
  "CMakeFiles/test_hierarchy_props.dir/memsim/hierarchy_props_test.cc.o"
  "CMakeFiles/test_hierarchy_props.dir/memsim/hierarchy_props_test.cc.o.d"
  "test_hierarchy_props"
  "test_hierarchy_props.pdb"
  "test_hierarchy_props[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hierarchy_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
