# Empty dependencies file for test_srrip.
# This may be replaced when dependencies are built.
