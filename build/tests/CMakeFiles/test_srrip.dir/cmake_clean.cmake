file(REMOVE_RECURSE
  "CMakeFiles/test_srrip.dir/memsim/srrip_test.cc.o"
  "CMakeFiles/test_srrip.dir/memsim/srrip_test.cc.o.d"
  "test_srrip"
  "test_srrip.pdb"
  "test_srrip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_srrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
