# Empty compiler generated dependencies file for test_code_model.
# This may be replaced when dependencies are built.
