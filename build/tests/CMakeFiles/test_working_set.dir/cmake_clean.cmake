file(REMOVE_RECURSE
  "CMakeFiles/test_working_set.dir/stats/working_set_test.cc.o"
  "CMakeFiles/test_working_set.dir/stats/working_set_test.cc.o.d"
  "test_working_set"
  "test_working_set.pdb"
  "test_working_set[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_working_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
