# Empty compiler generated dependencies file for test_working_set.
# This may be replaced when dependencies are built.
