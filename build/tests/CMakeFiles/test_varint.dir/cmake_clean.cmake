file(REMOVE_RECURSE
  "CMakeFiles/test_varint.dir/search/varint_test.cc.o"
  "CMakeFiles/test_varint.dir/search/varint_test.cc.o.d"
  "test_varint"
  "test_varint.pdb"
  "test_varint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_varint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
