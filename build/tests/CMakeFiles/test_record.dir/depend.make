# Empty dependencies file for test_record.
# This may be replaced when dependencies are built.
