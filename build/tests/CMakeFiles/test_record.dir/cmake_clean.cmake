file(REMOVE_RECURSE
  "CMakeFiles/test_record.dir/trace/record_test.cc.o"
  "CMakeFiles/test_record.dir/trace/record_test.cc.o.d"
  "test_record"
  "test_record.pdb"
  "test_record[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_record.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
