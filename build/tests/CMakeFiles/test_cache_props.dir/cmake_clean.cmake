file(REMOVE_RECURSE
  "CMakeFiles/test_cache_props.dir/memsim/cache_props_test.cc.o"
  "CMakeFiles/test_cache_props.dir/memsim/cache_props_test.cc.o.d"
  "test_cache_props"
  "test_cache_props.pdb"
  "test_cache_props[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
