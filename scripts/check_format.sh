#!/usr/bin/env bash
# Reports files under src/ tests/ bench/ that deviate from the
# committed .clang-format. Exit 1 when any file needs formatting,
# 0 when clean (or when clang-format is unavailable, so local builds
# without the tool are not blocked). CI runs this as a non-blocking
# job: drift is surfaced, not gating.
#
# Usage: scripts/check_format.sh [--diff]
#   --diff  also print the formatting diff for each offending file

set -u
cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
    echo "check_format: clang-format not found; skipping" >&2
    exit 0
fi

show_diff=0
if [ "${1:-}" = "--diff" ]; then
    show_diff=1
fi

status=0
checked=0
while IFS= read -r f; do
    checked=$((checked + 1))
    if ! clang-format --dry-run --Werror "$f" >/dev/null 2>&1; then
        echo "needs format: $f"
        if [ "$show_diff" -eq 1 ]; then
            diff -u "$f" <(clang-format "$f") || true
        fi
        status=1
    fi
done < <(find src tests bench -name '*.cc' -o -name '*.hh' | sort)

echo "check_format: $checked files checked ($(clang-format --version | head -n1))"
exit $status
