#!/usr/bin/env bash
# Run the smoke-mode bench suite and aggregate the per-driver
# BENCH_*.json artifacts into one BENCH_all.json for CI upload and
# scripts/bench_diff.py gating.
#
# Usage: scripts/bench_all.sh [build-dir]
#   build-dir          defaults to ./build
#   WSEARCH_BENCHES    space-separated driver subset (default:
#                      "leaf ingest serve sweep replacement micro
#                      ablation fig6bc fig8 fig9 fig13")
#   Artifacts are written to the current working directory.
set -euo pipefail

BUILD_DIR=${1:-build}
BENCHES=${WSEARCH_BENCHES:-"leaf ingest serve sweep replacement micro ablation fig6bc fig8 fig9 fig13"}

if [ ! -d "$BUILD_DIR/bench" ]; then
    echo "bench_all.sh: no $BUILD_DIR/bench (build first)" >&2
    exit 2
fi

for b in $BENCHES; do
    bin="$BUILD_DIR/bench/bench_$b"
    if [ ! -x "$bin" ]; then
        echo "bench_all.sh: missing $bin" >&2
        exit 2
    fi
    echo "== bench_$b (smoke) =="
    case "$b" in
        serve)
            # bench_serve has no --smoke flag; WSEARCH_FAST shrinks it.
            WSEARCH_FAST=1 "$bin"
            ;;
        sweep|replacement|micro|ablation|fig6bc|fig8|fig9|fig13)
            # fig6bc doubles as the clustered-sampling statistical
            # gate: it exits nonzero if the full-replay oracle lands
            # outside the clustered estimate's confidence band.
            WSEARCH_FAST=1 "$bin" --smoke
            ;;
        *)
            "$bin" --smoke
            ;;
    esac
    echo
done

python3 - <<'EOF'
import glob, json

out = {"schema_version": 1, "benches": {}}
for path in sorted(glob.glob("BENCH_*.json")):
    if path == "BENCH_all.json":
        continue
    name = path[len("BENCH_"):-len(".json")]
    with open(path) as f:
        out["benches"][name] = json.load(f)
shas = {b.get("git_sha", "unknown") for b in out["benches"].values()}
out["git_sha"] = shas.pop() if len(shas) == 1 else "mixed"
with open("BENCH_all.json", "w") as f:
    json.dump(out, f, indent=1, sort_keys=True)
    f.write("\n")
print("aggregated %d benches into BENCH_all.json"
      % len(out["benches"]))
EOF
