#!/usr/bin/env python3
"""Gate bench output against a previous run's artifacts.

Usage:
    scripts/bench_diff.py CURRENT BASELINE
    scripts/bench_diff.py --selftest

CURRENT and BASELINE are BENCH_all.json files (or directories
containing one), as produced by scripts/bench_all.sh.

Two kinds of checks, per bench present in both runs (and only when
both runs used the same smoke setting and config keys match):

  * correctness counters: deterministic counts (postings decoded,
    equivalence tallies, determinism flags). Any difference is DRIFT
    and fails the gate (exit 1) -- same inputs must count the same.
  * wall time: > WARN_WALL_FRAC regression on the gated benches
    prints a warning (GitHub annotation format) but passes; bench
    machines are noisy, so time never hard-fails.

In-run invariants (measured == expected) are checked on CURRENT even
when the baseline lacks that bench, so a truncated or crashed run
cannot slip through by also corrupting its artifact.

Exit codes: 0 ok (warnings allowed), 1 drift/invariant failure,
2 usage or unreadable input.
"""

import json
import os
import sys

WARN_WALL_FRAC = 0.15
WALL_GATED = ("leaf", "serve", "sweep")

# Per-bench deterministic keys: equal configs must reproduce these
# exactly. Keys listed under "rows" are compared per rows[] element,
# matched by the "key_by" fields. Wall-clock-derived numbers (qps,
# docs/s, latency) are deliberately absent.
GATES = {
    "leaf": {
        "config": ["smoke", "docs", "queries_per_workload"],
        "counters": ["equivalent_queries",
                     "expected_equivalent_queries"],
        "rows": {
            "field": "rows",
            "key_by": ["workload", "codec"],
            "counters": ["postings_decoded", "candidates_scored",
                         "blocks_decoded", "blocks_skipped",
                         "packed_blocks_decoded"],
        },
        "invariants": [("equivalent_queries",
                        "expected_equivalent_queries")],
    },
    "sweep": {
        "config": ["smoke", "configs", "records_per_config"],
        "counters": ["all_identical"],
        "invariants": [("all_identical", 1)],
    },
    "ingest": {
        "config": ["smoke", "docs", "terms_per_doc", "commit_batch"],
        # Background merges race the writer, so segment/merge counts
        # are legitimately run-dependent; only the doc ledger is
        # deterministic.
        "counters": ["live_docs"],
        "invariants": [],
    },
    "serve": {
        "config": ["smoke", "workers", "scaling_queries"],
        # Thread-scaling rows are closed-loop: every submitted query
        # must resolve (worker completion or cache hit), none shed,
        # and the snapshot identities must hold -- exactly, per row.
        # qps / speedup / hit_rate are wall-clock or
        # interleaving-dependent and deliberately ungated.
        "counters": ["scaling_rows_ok"],
        "rows": {
            "field": "rows",
            "key_by": ["mix", "workers"],
            "counters": ["queries", "resolved", "shed",
                         "stats_consistent"],
        },
        "invariants": [("scaling_rows_ok", 1)],
    },
    "replacement": {
        "config": ["smoke"],
        # compat_identical == 1 asserts the generator-built hierarchy
        # reproduced the legacy HierarchyConfig counters bit-exactly.
        "counters": ["compat_identical"],
        "rows": {
            "field": "rows",
            "key_by": ["l3_capacity", "variant"],
            "counters": ["l3_accesses", "l3_misses",
                         "back_invalidations", "instructions"],
        },
        "invariants": [("compat_identical", 1)],
    },
    "micro": {
        "config": ["smoke"],
        "counters": [],
        "rows": {
            "field": "rows",
            "key_by": ["kernel"],
            "counters": ["items", "checksum"],
        },
        "invariants": [],
    },
    "ablation": {
        "config": ["smoke", "records_unit"],
        "counters": [],
        "rows": {
            "field": "rows",
            "key_by": ["study", "variant"],
            "counters": ["instructions", "l3_misses", "l4_misses",
                         "back_invalidations"],
        },
        "invariants": [],
    },
    "fig6bc": {
        # Sampling knobs are config: a deliberate knob change re-baselines
        # instead of reading as drift. The band_violations invariant is
        # the clustered-vs-oracle statistical gate -- the binary also
        # exits nonzero on it, but asserting it here means a stale or
        # hand-edited artifact cannot pass either.
        "config": ["smoke", "cores", "scaled_measure_records",
                   "scaled_warmup_records", "nominal_measure_records",
                   "nominal_warmup_records", "gate_records",
                   "sampling_policy", "sample_window_records",
                   "sample_clusters", "sample_seed"],
        "counters": ["gate_oracle_l3_misses",
                     "gate_clustered_l3_misses",
                     "gate_uniform_l3_misses", "band_violations"],
        "rows": {
            "field": "rows",
            "key_by": ["section", "l3_sim_bytes"],
            "counters": ["instructions", "l3_accesses", "l3_misses",
                         "sampled_windows", "represented_windows"],
        },
        "invariants": [("band_violations", 0)],
    },
    "fig8": {
        "config": ["smoke", "cores", "scaled_measure_records",
                   "scaled_warmup_records", "nominal_measure_records",
                   "nominal_warmup_records", "sampling_policy",
                   "sample_window_records", "sample_clusters",
                   "sample_seed"],
        "counters": [],
        "rows": {
            "field": "rows",
            "key_by": ["section", "ways"],
            "counters": ["instructions", "l3_accesses", "l3_misses",
                         "sampled_windows", "represented_windows"],
        },
        "invariants": [],
    },
    "fig9": {
        "config": ["smoke", "scaled_measure_records",
                   "scaled_warmup_records", "nominal_measure_records",
                   "nominal_warmup_records", "sampling_policy",
                   "sample_window_records", "sample_clusters",
                   "sample_seed"],
        "counters": [],
        "rows": {
            "field": "rows",
            "key_by": ["section", "cores", "ways"],
            "counters": ["instructions", "l3_accesses", "l3_misses",
                         "sampled_windows", "represented_windows"],
        },
        "invariants": [],
    },
    "fig13": {
        "config": ["smoke", "cores", "l3_sim_bytes",
                   "scaled_measure_records", "scaled_warmup_records",
                   "nominal_measure_records", "nominal_warmup_records",
                   "sampling_policy", "sample_window_records",
                   "sample_clusters", "sample_seed"],
        "counters": [],
        "rows": {
            "field": "rows",
            "key_by": ["section", "l4_sim_bytes"],
            "counters": ["instructions", "l4_accesses", "l4_misses",
                         "sampled_windows", "represented_windows"],
        },
        "invariants": [],
    },
}


def fail(msg):
    print("FAIL: %s" % msg)
    return ["%s" % msg]


def warn(msg):
    # GitHub Actions annotation; plain text everywhere else.
    print("::warning::bench_diff: %s" % msg)


def load(path):
    if os.path.isdir(path):
        path = os.path.join(path, "BENCH_all.json")
    with open(path) as f:
        data = json.load(f)
    if "benches" not in data:
        raise ValueError("%s: not a BENCH_all.json aggregate" % path)
    return data["benches"]


def check_invariants(name, bench, gate):
    errors = []
    for key, want in gate.get("invariants", []):
        got = bench.get(key)
        expect = bench.get(want) if isinstance(want, str) else want
        if got != expect:
            errors += fail("%s: invariant %s=%r != %r"
                           % (name, key, got, expect))
    return errors


def rows_by_key(bench, spec):
    out = {}
    for row in bench.get(spec["field"], []):
        key = tuple(row.get(k) for k in spec["key_by"])
        out[key] = row
    return out


def diff_bench(name, cur, base, gate):
    errors = []
    for key in gate.get("config", []):
        if cur.get(key) != base.get(key):
            print("note: %s: config %s changed (%r -> %r); counter "
                  "diff skipped" % (name, key, base.get(key),
                                    cur.get(key)))
            return errors
    for key in gate.get("counters", []):
        if key in base and cur.get(key) != base.get(key):
            errors += fail("%s: counter drift: %s %r -> %r"
                           % (name, key, base.get(key), cur.get(key)))
    spec = gate.get("rows")
    if spec:
        cur_rows = rows_by_key(cur, spec)
        for key, brow in rows_by_key(base, spec).items():
            crow = cur_rows.get(key)
            if crow is None:
                errors += fail("%s: row %r disappeared" % (name, key))
                continue
            for counter in spec["counters"]:
                if counter in brow and \
                        crow.get(counter) != brow.get(counter):
                    errors += fail(
                        "%s: row %r counter drift: %s %r -> %r"
                        % (name, key, counter, brow.get(counter),
                           crow.get(counter)))
    cw, bw = cur.get("wall_time_sec"), base.get("wall_time_sec")
    if name in WALL_GATED and cw and bw and \
            cw > (1.0 + WARN_WALL_FRAC) * bw:
        warn("%s: wall time %.2fs is %.0f%% over baseline %.2fs"
             % (name, cw, 100.0 * (cw / bw - 1.0), bw))
    return errors


def run_diff(cur_path, base_path):
    current = load(cur_path)
    errors = []
    for name, bench in sorted(current.items()):
        gate = GATES.get(name)
        if gate:
            errors += check_invariants(name, bench, gate)
    try:
        baseline = load(base_path)
    except (OSError, ValueError) as e:
        print("note: no usable baseline (%s); invariants only" % e)
        return errors
    for name, bench in sorted(current.items()):
        gate = GATES.get(name)
        if gate and name in baseline:
            errors += diff_bench(name, bench, baseline[name], gate)
    return errors


# ----------------------------------------------------------------- #
# Self-test: prove the gate actually fails on injected drift.        #
# ----------------------------------------------------------------- #

def _sample():
    return {
        "benches": {
            "leaf": {
                "smoke": 1, "docs": 20000,
                "queries_per_workload": 200,
                "equivalent_queries": 1200,
                "expected_equivalent_queries": 1200,
                "wall_time_sec": 10.0,
                "rows": [
                    {"workload": "OR", "codec": "packed",
                     "postings_decoded": 5000, "candidates_scored": 900,
                     "blocks_decoded": 40, "blocks_skipped": 8,
                     "packed_blocks_decoded": 40},
                ],
            },
            "sweep": {"smoke": 1, "configs": 8,
                      "records_per_config": 1000,
                      "all_identical": 1, "wall_time_sec": 5.0},
            "serve": {
                "smoke": 1, "workers": 2, "scaling_queries": 1500,
                "scaling_rows_ok": 1, "wall_time_sec": 6.0,
                "rows": [
                    {"mix": "queue", "workers": 1, "queries": 1500,
                     "resolved": 1500, "shed": 0,
                     "stats_consistent": 1, "qps": 900.0,
                     "speedup_vs_1w": 1.0},
                    {"mix": "cachehit", "workers": 4, "queries": 1500,
                     "resolved": 1500, "shed": 0,
                     "stats_consistent": 1, "qps": 3100.0,
                     "speedup_vs_1w": 3.4},
                ],
            },
            "fig8": {
                "smoke": 1, "cores": 16,
                "scaled_measure_records": 16000000,
                "scaled_warmup_records": 32000000,
                "nominal_measure_records": 24000000,
                "nominal_warmup_records": 12000000,
                "sampling_policy": "clustered",
                "sample_window_records": 62500,
                "sample_clusters": 12, "sample_seed": 12345,
                "wall_time_sec": 7.0,
                "rows": [
                    {"section": "scaled", "ways": 2,
                     "instructions": 800000, "l3_accesses": 30000,
                     "l3_misses": 9000, "sampled_windows": 0,
                     "represented_windows": 0},
                    {"section": "nominal", "ways": 20,
                     "instructions": 800000, "l3_accesses": 31000,
                     "l3_misses": 8000, "sampled_windows": 12,
                     "represented_windows": 96},
                ],
            },
            "fig6bc": {
                "smoke": 1, "cores": 16,
                "scaled_measure_records": 3000000,
                "scaled_warmup_records": 6000000,
                "nominal_measure_records": 3000000,
                "nominal_warmup_records": 1500000,
                "gate_records": 6000000,
                "sampling_policy": "clustered",
                "sample_window_records": 62500,
                "sample_clusters": 12, "sample_seed": 12345,
                "gate_oracle_l3_misses": 523200,
                "gate_clustered_l3_misses": 539815,
                "gate_uniform_l3_misses": 568376,
                "band_violations": 0, "wall_time_sec": 8.0,
                "rows": [
                    {"section": "scaled", "l3_sim_bytes": 131072,
                     "instructions": 900000, "l3_accesses": 40000,
                     "l3_misses": 39000, "sampled_windows": 0,
                     "represented_windows": 0},
                    {"section": "nominal", "l3_sim_bytes": 33554432,
                     "instructions": 900000, "l3_accesses": 41000,
                     "l3_misses": 38000, "sampled_windows": 12,
                     "represented_windows": 96},
                ],
            },
            "replacement": {
                "smoke": 1, "compat_identical": 1,
                "wall_time_sec": 3.0,
                "rows": [
                    {"l3_capacity": 9437184, "variant": "srrip",
                     "l3_accesses": 4000, "l3_misses": 700,
                     "back_invalidations": 0,
                     "instructions": 100000},
                ],
            },
        }
    }


def selftest():
    import copy
    import tempfile

    def write(tree, name):
        path = os.path.join(tmp, name)
        with open(path, "w") as f:
            json.dump(tree, f)
        return path

    with tempfile.TemporaryDirectory() as tmp:
        base = write(_sample(), "base.json")

        # 1. Identical runs pass.
        assert run_diff(write(_sample(), "same.json"), base) == []

        # 2. Injected counter drift fails.
        drift = _sample()
        drift["benches"]["leaf"]["rows"][0]["postings_decoded"] += 1
        assert run_diff(write(drift, "drift.json"), base)

        # 3. A broken in-run invariant fails even with no baseline.
        broken = _sample()
        broken["benches"]["leaf"]["equivalent_queries"] = 7
        assert run_diff(write(broken, "broken.json"),
                        os.path.join(tmp, "missing.json"))

        # 4. Lost determinism in sweep fails.
        nondet = _sample()
        nondet["benches"]["sweep"]["all_identical"] = 0
        assert run_diff(write(nondet, "nondet.json"), base)

        # 5. Wall-time regression warns but passes.
        slow = _sample()
        slow["benches"]["leaf"]["wall_time_sec"] = 13.0
        assert run_diff(write(slow, "slow.json"), base) == []

        # 6. A failed legacy-compat oracle fails even with no
        # baseline (in-run invariant).
        nocompat = _sample()
        nocompat["benches"]["replacement"]["compat_identical"] = 0
        assert run_diff(write(nocompat, "nocompat.json"),
                        os.path.join(tmp, "missing.json"))

        # 7. Replacement-row miss drift fails.
        rdrift = _sample()
        rdrift["benches"]["replacement"]["rows"][0]["l3_misses"] += 3
        assert run_diff(write(rdrift, "rdrift.json"), base)

        # 8. Config change skips the counter diff instead of failing.
        refit = _sample()
        refit["benches"]["leaf"]["docs"] = 80000
        refit["benches"]["leaf"]["rows"][0]["postings_decoded"] = 1
        assert run_diff(write(refit, "refit.json"), base) == []

        # 9. An injected clustered-sampling band violation fails even
        # with no baseline: the statistical gate is an in-run
        # invariant, so it cannot be dodged by deleting the baseline.
        banded = _sample()
        banded["benches"]["fig6bc"]["band_violations"] = 1
        assert run_diff(write(banded, "banded.json"),
                        os.path.join(tmp, "missing.json"))

        # 10. Sampled-estimate drift in a nominal-scale row fails:
        # plans are seeded, so equal configs (same seed/knobs) must
        # reproduce the same estimate bit-for-bit.
        sdrift = _sample()
        sdrift["benches"]["fig6bc"]["rows"][1]["l3_misses"] += 17
        assert run_diff(write(sdrift, "sdrift.json"), base)

        # 11. Changing the sampling seed is a config change, not drift.
        reseed = _sample()
        reseed["benches"]["fig6bc"]["sample_seed"] = 99
        reseed["benches"]["fig6bc"]["rows"][1]["l3_misses"] += 17
        assert run_diff(write(reseed, "reseed.json"), base) == []

        # 12. A serve thread-scaling row losing a query (resolved !=
        # baseline) is drift.
        sserve = _sample()
        sserve["benches"]["serve"]["rows"][0]["resolved"] -= 1
        assert run_diff(write(sserve, "sserve.json"), base)

        # 13. A broken serve accounting invariant fails even with no
        # baseline: a shed or inconsistent row cannot slip through by
        # re-baselining.
        sbad = _sample()
        sbad["benches"]["serve"]["scaling_rows_ok"] = 0
        assert run_diff(write(sbad, "sbad.json"),
                        os.path.join(tmp, "missing.json"))

        # 14. CAT-ladder miss drift in a fig8 row fails (both the
        # exact scaled replay and the seeded nominal estimate).
        f8 = _sample()
        f8["benches"]["fig8"]["rows"][1]["l3_misses"] += 5
        assert run_diff(write(f8, "f8.json"), base)

    print("bench_diff selftest: all gates behave")
    return 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--selftest":
        return selftest()
    if len(argv) != 3:
        print(__doc__.strip())
        return 2
    try:
        errors = run_diff(argv[1], argv[2])
    except (OSError, ValueError) as e:
        print("bench_diff: %s" % e)
        return 2
    if errors:
        print("bench_diff: %d failure(s)" % len(errors))
        return 1
    print("bench_diff: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
