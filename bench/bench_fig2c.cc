/**
 * @file
 * Reproduces paper Figure 2c: throughput impact of huge pages (~10%
 * on both platforms, from eliminated TLB walks over a near-all-of-
 * memory footprint) and of hardware prefetchers (+5% on PLT1; slight
 * degradation on PLT2, whose 128 B blocks already capture the spatial
 * locality the prefetchers would fetch).
 */

#include <cstdio>

#include "core/experiments.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

double
qpsOf(const PlatformConfig &plt, const RunOptions &opt)
{
    const SystemResult r =
        runWorkload(WorkloadProfile::s1Leaf(), plt, opt);
    return opt.cores * r.ipcPerThread;
}

void
runFig2c()
{
    printBanner("Figure 2c", "Huge pages and hardware prefetching");
    Table t({"Platform", "Feature", "QPS improvement", "(paper)"});

    for (const PlatformConfig &plt :
         {PlatformConfig::plt1(), PlatformConfig::plt2()}) {
        RunOptions base;
        base.cores = 8;
        base.measureRecords = 16'000'000;
        base.modelTlb = true;
        base.hugePages = false;

        // Huge pages: 4K->2M on PLT1, 64K->16M on PLT2.
        RunOptions huge = base;
        huge.hugePages = true;
        const double q_base = qpsOf(plt, base);
        const double q_huge = qpsOf(plt, huge);
        t.addRow({plt.name, "Huge pages",
                  Table::fmtPct(q_huge / q_base - 1.0, 1),
                  plt.name == "PLT1" ? "~10%" : "~9%"});
        std::fflush(stdout);

        // Prefetchers (TLB with huge pages on, as deployed).
        RunOptions pf_off = huge;
        RunOptions pf_on = huge;
        pf_on.prefetch = plt.prefetchEngine;
        const double q_off = qpsOf(plt, pf_off);
        const double q_on = qpsOf(plt, pf_on);
        t.addRow({plt.name, "HW prefetchers",
                  Table::fmtPct(q_on / q_off - 1.0, 1),
                  plt.name == "PLT1" ? "~5%" : "slightly negative"});
        std::fflush(stdout);
    }
    t.print();
}

} // namespace
} // namespace wsearch

int
main()
{
    wsearch::runFig2c();
    return 0;
}
