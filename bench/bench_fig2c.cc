/**
 * @file
 * Reproduces paper Figure 2c: throughput impact of huge pages (~10%
 * on both platforms, from eliminated TLB walks over a near-all-of-
 * memory footprint) and of hardware prefetchers (+5% on PLT1; slight
 * degradation on PLT2, whose 128 B blocks already capture the spatial
 * locality the prefetchers would fetch).
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

void
runFig2c(const bench::Args &args)
{
    bench::banner(args, "Figure 2c",
                  "Huge pages and hardware prefetching");
    Table t({"Platform", "Feature", "QPS improvement", "(paper)"});

    for (const PlatformConfig &plt :
         {PlatformConfig::plt1(), PlatformConfig::plt2()}) {
        RunOptions base = bench::baseOptions(8, 16'000'000);
        base.modelTlb = true;
        base.hugePages = false;

        // Huge pages: 4K->2M on PLT1, 64K->16M on PLT2. Prefetchers
        // are evaluated with huge pages on (as deployed); its "off"
        // baseline is the huge-pages run itself.
        RunOptions huge = base;
        huge.hugePages = true;
        RunOptions pf_on = huge;
        pf_on.prefetch = plt.prefetchEngine;

        const std::vector<SystemResult> results =
            runWorkloadSweep(WorkloadProfile::s1Leaf(), plt,
                             {base, huge, pf_on},
                             bench::sweepControl(args));
        auto qps = [&](const SystemResult &r) {
            return base.cores * r.ipcPerThread;
        };
        const double q_base = qps(results[0]);
        const double q_huge = qps(results[1]);
        const double q_pf = qps(results[2]);
        t.addRow({plt.name, "Huge pages",
                  Table::fmtPct(q_huge / q_base - 1.0, 1),
                  plt.name == "PLT1" ? "~10%" : "~9%"});
        t.addRow({plt.name, "HW prefetchers",
                  Table::fmtPct(q_pf / q_huge - 1.0, 1),
                  plt.name == "PLT1" ? "~5%" : "slightly negative"});
        std::fflush(stdout);
    }
    t.print();
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    wsearch::runFig2c(wsearch::bench::parseArgs(argc, argv));
    return 0;
}
