/**
 * @file
 * Reproduces paper Figure 6a: per-level (L1/L2/L3) misses broken down
 * by access type (code / heap / shard) on a PLT1-like hierarchy with
 * a 40 MiB L3 driven by 16 threads of S1-leaf traffic — the paper's
 * simulator baseline (§III-A).
 */

#include <cstdio>

#include "common.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

void
runFig6a(const bench::Args &args)
{
    bench::banner(args, "Figure 6a",
                  "Cache MPKI across the hierarchy by access type");
    RunOptions opt = bench::baseOptions(16, 32'000'000, 48'000'000);
    opt.l3Bytes = 40 * MiB;
    const SystemResult r =
        runWorkloadSweep(WorkloadProfile::s1Leaf(),
                         PlatformConfig::plt1(), {opt},
                         bench::sweepControl(args))
            .front();
    const uint64_t instr = r.instructions;
    const CacheLevelStats l1 = [&] {
        CacheLevelStats s = r.l1i;
        s += r.l1d;
        return s;
    }();

    Table t({"Level", "Code MPKI", "Heap MPKI", "Shard MPKI",
             "Stack MPKI", "Total MPKI"});
    auto row = [&](const char *name, const CacheLevelStats &s) {
        t.addRow({name, Table::fmt(s.mpki(AccessKind::Code, instr), 2),
                  Table::fmt(s.mpki(AccessKind::Heap, instr), 2),
                  Table::fmt(s.mpki(AccessKind::Shard, instr), 2),
                  Table::fmt(s.mpki(AccessKind::Stack, instr), 2),
                  Table::fmt(s.mpkiTotal(instr), 2)});
    };
    row("L1", l1);
    row("L2", r.l2);
    row("L3", r.l3);
    t.print();
    std::printf("\nPaper: L1/L2 miss significantly for code, heap and "
                "shard; the shared L3 eliminates virtually all "
                "instruction misses while heap and shard still miss "
                "to memory.\n");
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    wsearch::runFig6a(wsearch::bench::parseArgs(argc, argv));
    return 0;
}
