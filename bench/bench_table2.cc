/**
 * @file
 * Reproduces paper Table II: key attributes of the PLT1 (Intel
 * Haswell) and PLT2 (IBM POWER8) platforms as modeled by this
 * library's PlatformConfig presets.
 */

#include <cstdio>

#include "core/platform.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

void
runTable2()
{
    std::printf("\n== Table II: Key attributes of PLT1 and PLT2 ==\n\n");
    const PlatformConfig p1 = PlatformConfig::plt1();
    const PlatformConfig p2 = PlatformConfig::plt2();

    Table t({"Attribute", p1.name, p2.name});
    t.addRow({"Microarchitecture", p1.microarchitecture,
              p2.microarchitecture});
    t.addRow({"Number of sockets", Table::fmtInt(p1.sockets),
              Table::fmtInt(p2.sockets)});
    t.addRow({"Cores per socket", Table::fmtInt(p1.coresPerSocket),
              Table::fmtInt(p2.coresPerSocket)});
    t.addRow({"SMT", Table::fmtInt(p1.smtWays),
              Table::fmtInt(p2.smtWays)});
    t.addRow({"Cache block size", formatBytes(p1.cacheBlockBytes),
              formatBytes(p2.cacheBlockBytes)});
    t.addRow({"L1-I$ (per core)", formatBytes(p1.l1iBytes),
              formatBytes(p2.l1iBytes)});
    t.addRow({"L1-D$ (per core)", formatBytes(p1.l1dBytes),
              formatBytes(p2.l1dBytes)});
    t.addRow({"Private L2$ (per core)", formatBytes(p1.l2Bytes),
              formatBytes(p2.l2Bytes)});
    t.addRow({"Shared L3$ (per socket)", formatBytes(p1.l3Bytes),
              formatBytes(p2.l3Bytes)});
    t.print();
}

} // namespace
} // namespace wsearch

int
main()
{
    wsearch::runTable2();
    return 0;
}
