/**
 * @file
 * Reproduces paper Figure 2b: SMT throughput improvement. PLT1
 * (Haswell) SMT-2 gives ~37%; PLT2 (POWER8) gives ~76% at SMT-2 up to
 * ~3.24x at SMT-8. Cache contention between hardware threads is
 * simulated (threads share L1/L2); the issue model converts the
 * contention-adjusted per-thread IPC into core throughput.
 */

#include <cstdio>

#include <algorithm>
#include <vector>

#include "common.hh"
#include "cpu/smt.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

void
runPlatform(const PlatformConfig &plt, const std::vector<uint32_t> &smt,
            const std::vector<double> &paper_speedups,
            const bench::Args &args, Table &t)
{
    const WorkloadProfile prof = WorkloadProfile::s1Leaf();
    const uint32_t cores = 8;

    std::vector<RunOptions> options;
    for (const uint32_t m : smt) {
        // Cache contention is simulated up to SMT-2; beyond that the
        // fine-grained timing interleaving (which a functional model
        // cannot capture) offsets further contention, so the issue
        // model's eta factors carry the remainder.
        const uint32_t ways = std::min(m, 2u);
        RunOptions opt = bench::baseOptions(
            cores, 2'000'000ull * cores * ways);
        opt.smtWays = ways;
        options.push_back(opt);
    }
    const std::vector<SystemResult> results =
        runWorkloadSweep(prof, plt, options, bench::sweepControl(args));

    double base_core_ipc = 0;
    for (size_t i = 0; i < smt.size(); ++i) {
        const uint32_t m = smt[i];
        const SystemResult &r = results[i];
        const double core_ipc =
            smtCoreIpc(r.ipcPerThread, plt.width, m, plt.smt);
        if (m == 1)
            base_core_ipc = core_ipc;
        const double speedup = core_ipc / base_core_ipc;
        t.addRow({plt.name, "SMT-" + std::to_string(m),
                  Table::fmt(r.ipcPerThread, 3),
                  Table::fmt(core_ipc, 3), Table::fmt(speedup, 2),
                  paper_speedups[i] > 0 ? Table::fmt(paper_speedups[i], 2)
                                        : std::string("-")});
    }
}

void
runFig2b(const bench::Args &args)
{
    bench::banner(args, "Figure 2b",
                  "SMT throughput (threads share L1/L2; contention "
                  "emergent)");
    Table t({"Platform", "SMT", "IPC/thread", "Core IPC",
             "Speedup vs SMT-1", "(paper)"});
    runPlatform(PlatformConfig::plt1(), {1, 2}, {1.0, 1.37}, args, t);
    runPlatform(PlatformConfig::plt2(), {1, 2, 4, 8},
                {1.0, 1.76, 2.5, 3.24}, args, t);
    t.print();
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    wsearch::runFig2b(wsearch::bench::parseArgs(argc, argv));
    return 0;
}
