/**
 * @file
 * Reproduces paper Figure 2b: SMT throughput improvement. PLT1
 * (Haswell) SMT-2 gives ~37%; PLT2 (POWER8) gives ~76% at SMT-2 up to
 * ~3.24x at SMT-8. Cache contention between hardware threads is
 * simulated (threads share L1/L2); the issue model converts the
 * contention-adjusted per-thread IPC into core throughput.
 */

#include <cstdio>

#include <algorithm>

#include "core/experiments.hh"
#include "cpu/smt.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

void
runPlatform(const PlatformConfig &plt, const std::vector<uint32_t> &smt,
            const std::vector<double> &paper_speedups, Table &t)
{
    const WorkloadProfile prof = WorkloadProfile::s1Leaf();
    const uint32_t cores = 8;

    double base_core_ipc = 0;
    for (size_t i = 0; i < smt.size(); ++i) {
        const uint32_t m = smt[i];
        RunOptions opt;
        opt.cores = cores;
        // Cache contention is simulated up to SMT-2; beyond that the
        // fine-grained timing interleaving (which a functional model
        // cannot capture) offsets further contention, so the issue
        // model's eta factors carry the remainder.
        opt.smtWays = std::min(m, 2u);
        opt.measureRecords = 2'000'000ull * cores * opt.smtWays;
        const SystemResult r = runWorkload(prof, plt, opt);
        const double core_ipc =
            smtCoreIpc(r.ipcPerThread, plt.width, m, plt.smt);
        if (m == 1)
            base_core_ipc = core_ipc;
        const double speedup = core_ipc / base_core_ipc;
        t.addRow({plt.name, "SMT-" + std::to_string(m),
                  Table::fmt(r.ipcPerThread, 3),
                  Table::fmt(core_ipc, 3), Table::fmt(speedup, 2),
                  paper_speedups[i] > 0 ? Table::fmt(paper_speedups[i], 2)
                                        : std::string("-")});
        std::fflush(stdout);
    }
}

void
runFig2b()
{
    printBanner("Figure 2b",
                "SMT throughput (threads share L1/L2; contention "
                "emergent)");
    Table t({"Platform", "SMT", "IPC/thread", "Core IPC",
             "Speedup vs SMT-1", "(paper)"});
    runPlatform(PlatformConfig::plt1(), {1, 2}, {1.0, 1.37}, t);
    runPlatform(PlatformConfig::plt2(), {1, 2, 4, 8},
                {1.0, 1.76, 2.5, 3.24}, t);
    t.print();
}

} // namespace
} // namespace wsearch

int
main()
{
    wsearch::runFig2b();
    return 0;
}
