/**
 * @file
 * Reproduces paper Figure 7a: MPKI reduction when conflict misses are
 * eliminated (same-capacity, conflict-free caches). The paper finds
 * ~7.4% at L1 and <1% at L2/L3, concluding default associativities
 * are a good design point. Conflict-freedom is modeled by raising the
 * level's associativity until sets are (nearly) fully shared; a
 * cold/capacity/conflict classification from the exact
 * fully-associative shadow (MissClassifier) is printed as a
 * cross-check for the L1-D.
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "memsim/miss_class.hh"
#include "trace/synthetic.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

struct LevelMpki
{
    double l1i, l1d, l2, l3;
};

void
runFig7a(const bench::Args &args)
{
    bench::banner(args, "Figure 7a",
                  "MPKI decrease from eliminating conflict misses");
    // Conflict-free variants: one level at a time gets enough ways
    // that conflicts effectively vanish (L1: single 512-way set; L2:
    // 8 sets; L3: 64-way -- high enough to kill conflicts while
    // avoiding large-associativity LRU pathologies).
    const PlatformConfig plt = PlatformConfig::plt1();
    const WorkloadProfile prof = WorkloadProfile::s1Leaf();

    // Identical budgets for the baseline and every variant so cold
    // misses cancel in the comparison; all four replay one shared
    // trace buffer.
    auto with_ways = [](uint32_t l1ways, uint32_t l2ways,
                        uint32_t l3ways) {
        RunOptions opt = bench::baseOptions(16, 16'000'000);
        opt.l1Ways = l1ways;
        opt.l2Ways = l2ways;
        opt.l3Ways = l3ways;
        return opt;
    };
    const std::vector<RunOptions> options = {
        with_ways(8, 8, 20), with_ways(512, 8, 20),
        with_ways(8, 512, 20), with_ways(8, 8, 64)};
    const std::vector<SystemResult> results =
        runWorkloadSweep(prof, plt, options, bench::sweepControl(args));
    auto mpki = [](const SystemResult &r) -> LevelMpki {
        const uint64_t i = r.instructions;
        return {r.l1i.mpkiTotal(i), r.l1d.mpkiTotal(i),
                r.l2.mpkiTotal(i), r.l3.mpkiTotal(i)};
    };
    const LevelMpki def = mpki(results[0]);
    const LevelMpki fa1 = mpki(results[1]);
    const LevelMpki fa2 = mpki(results[2]);
    const LevelMpki fa3 = mpki(results[3]);

    Table t({"Level", "Default MPKI", "Conflict-free MPKI",
             "Decrease", "(paper)"});
    auto pct = [](double a, double b) {
        return Table::fmtPct(a > 0 ? (a - b) / a : 0.0, 1);
    };
    t.addRow({"L1-I", Table::fmt(def.l1i, 2), Table::fmt(fa1.l1i, 2),
              pct(def.l1i, fa1.l1i), "~7%"});
    t.addRow({"L1-D", Table::fmt(def.l1d, 2), Table::fmt(fa1.l1d, 2),
              pct(def.l1d, fa1.l1d), "~7%"});
    t.addRow({"L2", Table::fmt(def.l2, 2), Table::fmt(fa2.l2, 2),
              pct(def.l2, fa2.l2), "<1%"});
    t.addRow({"L3", Table::fmt(def.l3, 2), Table::fmt(fa3.l3, 2),
              pct(def.l3, fa3.l3), "<1%"});
    t.print();

    // Cross-check with the exact cold/capacity/conflict classifier on
    // the L1-D reference stream.
    SyntheticSearchTrace trace(prof, 1);
    MissClassifier mc({32 * KiB, 64, 8});
    TraceRecord buf[4096];
    uint64_t n = traceBudget(2'000'000);
    while (n > 0) {
        const size_t got =
            trace.fill(buf, std::min<uint64_t>(4096, n));
        for (size_t i = 0; i < got; ++i)
            if (buf[i].hasData())
                mc.access(buf[i].addr, buf[i].kind);
        n -= got;
    }
    const MissBreakdown &b = mc.breakdown();
    const double total = static_cast<double>(
        b.totalCold() + b.totalCapacity() + b.totalConflict());
    std::printf("\nL1-D miss classification (exact FA shadow): "
                "cold %.1f%%, capacity %.1f%%, conflict %.1f%%\n",
                100.0 * b.totalCold() / total,
                100.0 * b.totalCapacity() / total,
                100.0 * b.totalConflict() / total);
    std::printf("Paper: conflicts are a minor share; heap misses are "
                "mostly capacity, shard misses mostly cold.\n");
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    wsearch::runFig7a(wsearch::bench::parseArgs(argc, argv));
    return 0;
}
