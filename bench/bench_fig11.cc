/**
 * @file
 * Reproduces paper Figure 11: decomposition of the cache-for-cores
 * trade-off into its two opposing components -- the QPS gained from
 * the extra cores and the QPS lost to the smaller L3 -- as L3
 * capacity per core is repurposed. The widening gap between the two
 * curves down to c = 1 MiB/core is the insight motivating the
 * optimization.
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "core/optimizer.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

void
runFig11(const bench::Args &args)
{
    bench::banner(args, "Figure 11",
                  "Cores-gain vs cache-loss decomposition");
    const WorkloadProfile prof = WorkloadProfile::s1LeafSweep();
    std::vector<uint64_t> paper_sizes = {4608ull * KiB};
    for (uint64_t mib = 9; mib <= 45; mib += 9)
        paper_sizes.push_back(mib * MiB);

    std::vector<RunOptions> options;
    for (const uint64_t paper : paper_sizes) {
        RunOptions opt =
            bench::baseOptions(18, 12'000'000, 30'000'000);
        opt.smtWays = 2;
        opt.l3Bytes = paper / prof.sweepScale;
        options.push_back(opt);
    }
    const std::vector<SystemResult> results = runWorkloadSweep(
        prof, PlatformConfig::plt1(), options, bench::sweepControl(args));
    HitRateCurve curve;
    for (size_t i = 0; i < paper_sizes.size(); ++i)
        curve.addPoint(paper_sizes[i], results[i].l3DataHitRate());

    CacheForCoresOptimizer optimizer(AreaModel{}, AmatModel{},
                                     IpcModel::paperEq1(), curve);
    Table t({"L3 MiB/core", "Gain from cores", "Loss from cache",
             "Net (ideal)"});
    for (const TradeoffPoint &p : optimizer.sweep()) {
        t.addRow({Table::fmt(p.l3MibPerCore, 2),
                  Table::fmtPct(p.gainFromCores, 1),
                  Table::fmtPct(p.lossFromCache, 1),
                  Table::fmtPct(p.qpsIdeal, 1)});
    }
    t.print();
    std::printf("\nPaper: the cores curve rises faster than the cache "
                "curve falls until ~1 MiB/core, where the net gap is "
                "maximal; below that the cache loss accelerates.\n");
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    wsearch::runFig11(wsearch::bench::parseArgs(argc, argv));
    return 0;
}
