/**
 * @file
 * Microbenchmarks of the simulator's hot paths: cache access, Zipf
 * sampling, trace generation, and the full system loop. These bound
 * how many records per second the experiment sweeps can push.
 *
 * Self-timed (no google-benchmark) so the results flow through the
 * standard JSON frame: BENCH_micro.json carries one rows[] element
 * per kernel with a deterministic checksum — bench_diff.py gates the
 * checksums exactly and reports throughput drift informationally.
 */

#include <cstdio>

#include "common.hh"
#include "util/table.hh"
#include "cpu/system.hh"
#include "memsim/cache.hh"
#include "trace/synthetic.hh"
#include "util/zipf.hh"

namespace wsearch {
namespace {

/// Defeats dead-code elimination of a benchmark-loop result.
template <typename T>
inline void
sink(const T &v)
{
    asm volatile("" : : "g"(&v) : "memory");
}

struct Kernel
{
    const char *name;
    uint64_t items;    ///< Work units executed (deterministic).
    uint64_t checksum; ///< Deterministic digest of the results.
    double seconds;    ///< Wall time (informational, not gated).
};

Kernel
cacheAccessHit(uint64_t iters)
{
    SetAssocCache c({32 * KiB, 64, 8});
    for (uint64_t a = 0; a < 32 * KiB; a += 64)
        c.access(a, false);
    uint64_t a = 0, hits = 0;
    const double t0 = bench::nowSec();
    for (uint64_t i = 0; i < iters; ++i) {
        hits += c.access(a, false) ? 1 : 0;
        a = (a + 64) & (32 * KiB - 1);
    }
    sink(hits);
    return {"cache_access_hit", iters, hits, bench::nowSec() - t0};
}

Kernel
cacheAccessMissHeavy(uint64_t iters)
{
    SetAssocCache c({256 * KiB, 64, 8});
    Rng rng(1);
    uint64_t hits = 0;
    const double t0 = bench::nowSec();
    for (uint64_t i = 0; i < iters; ++i)
        hits += c.access(rng.nextRange(1u << 26) * 64, false) ? 1 : 0;
    sink(hits);
    return {"cache_access_miss_heavy", iters, hits,
            bench::nowSec() - t0};
}

Kernel
zipfSample(uint64_t iters)
{
    ZipfSampler z(1u << 24, 0.9);
    Rng rng(2);
    uint64_t sum = 0;
    const double t0 = bench::nowSec();
    for (uint64_t i = 0; i < iters; ++i)
        sum += z.sample(rng);
    sink(sum);
    return {"zipf_sample", iters, sum, bench::nowSec() - t0};
}

Kernel
traceGeneration(uint64_t iters)
{
    SyntheticSearchTrace trace(WorkloadProfile::s1Leaf(), 16);
    TraceRecord buf[4096];
    uint64_t sum = 0;
    const double t0 = bench::nowSec();
    for (uint64_t i = 0; i < iters; ++i) {
        const size_t n = trace.fill(buf, 4096);
        sum += n + buf[0].addr;
    }
    sink(sum);
    return {"trace_generation", iters * 4096, sum,
            bench::nowSec() - t0};
}

Kernel
fullSystemLoop(uint64_t iters)
{
    SyntheticSearchTrace trace(WorkloadProfile::s1Leaf(), 16);
    SystemConfig cfg;
    cfg.hierarchy.numCores = 16;
    cfg.hierarchy.llc = cache_gen_llc(40 * MiB, 64, 20);
    SystemSimulator sim(cfg);
    sim.run(trace, 500'000, 0); // warm
    uint64_t checksum = 0;
    const double t0 = bench::nowSec();
    for (uint64_t i = 0; i < iters; ++i) {
        const SystemResult r = sim.run(trace, 0, 100'000);
        checksum += r.instructions + r.l3.totalMisses();
    }
    return {"full_system_loop", iters * 100'000, checksum,
            bench::nowSec() - t0};
}

void
runMicro(const bench::Args &args)
{
    const double t0 = bench::nowSec();
    printBanner("Microbenchmarks", "Simulator hot-path throughput");
    // Smoke mode shrinks iteration counts; the checksums stay
    // deterministic at either scale (config carries the mode).
    const uint64_t k = args.smoke ? 1 : 16;

    const Kernel kernels[] = {
        cacheAccessHit(1'000'000 * k),
        cacheAccessMissHeavy(500'000 * k),
        zipfSample(500'000 * k),
        traceGeneration(256 * k),
        fullSystemLoop(4 * k),
    };

    Table t({"Kernel", "Items", "M items/s"});
    bench::JsonWriter json;
    bench::beginStandardJson(json, "micro", args.smoke);
    json.beginArray("rows");
    for (const Kernel &kn : kernels) {
        const double mips = kn.seconds > 0
            ? kn.items / kn.seconds / 1e6 : 0.0;
        t.addRow({kn.name, Table::fmtInt(kn.items),
                  Table::fmt(mips, 2)});
        json.beginObject();
        json.add("kernel", std::string(kn.name));
        json.add("items", kn.items);
        json.add("checksum", kn.checksum);
        json.add("m_items_per_s", mips);
        json.endObject();
    }
    json.endArray();
    t.print();
    bench::finishStandardJson(json, "micro", t0);
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    wsearch::runMicro(wsearch::bench::parseArgs(argc, argv));
    return 0;
}
