/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths:
 * cache access, trace generation, and the full system loop. These
 * bound how many records per second the experiment sweeps can push.
 */

#include <benchmark/benchmark.h>

#include "cpu/system.hh"
#include "memsim/cache.hh"
#include "trace/synthetic.hh"
#include "util/zipf.hh"

namespace wsearch {
namespace {

void
BM_CacheAccessHit(benchmark::State &state)
{
    SetAssocCache c({32 * KiB, 64, 8});
    for (uint64_t a = 0; a < 32 * KiB; a += 64)
        c.access(a, false);
    uint64_t a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.access(a, false));
        a = (a + 64) & (32 * KiB - 1);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccessHit);

void
BM_CacheAccessMissHeavy(benchmark::State &state)
{
    SetAssocCache c({256 * KiB, 64, 8});
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            c.access(rng.nextRange(1u << 26) * 64, false));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccessMissHeavy);

void
BM_ZipfSample(benchmark::State &state)
{
    ZipfSampler z(1u << 24, 0.9);
    Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(z.sample(rng));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

void
BM_TraceGeneration(benchmark::State &state)
{
    SyntheticSearchTrace trace(WorkloadProfile::s1Leaf(), 16);
    TraceRecord buf[4096];
    for (auto _ : state)
        benchmark::DoNotOptimize(trace.fill(buf, 4096));
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_TraceGeneration);

void
BM_FullSystemLoop(benchmark::State &state)
{
    SyntheticSearchTrace trace(WorkloadProfile::s1Leaf(), 16);
    SystemConfig cfg;
    cfg.hierarchy.numCores = 16;
    cfg.hierarchy.l3 = {40 * MiB, 64, 20};
    SystemSimulator sim(cfg);
    sim.run(trace, 2'000'000, 0); // warm
    uint64_t total = 0;
    for (auto _ : state) {
        sim.run(trace, 0, 100'000);
        total += 100'000;
    }
    state.SetItemsProcessed(total);
}
BENCHMARK(BM_FullSystemLoop)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace wsearch
