/**
 * @file
 * Reproduces paper Figure 13: hit rate and MPKI of the proposed
 * direct-mapped, memory-side (victim) eDRAM L4 cache as capacity
 * sweeps 64 MiB .. 8 GiB, behind the rightsized 23 MiB L3. The
 * paper's landmarks: 1 GiB captures most of the heap locality; the
 * remaining misses are dominated by the shard; heap hit rate trends
 * toward ~90% at the top capacities.
 *
 * Runs on the 1/32-scale sweep profile; capacities are reported in
 * paper-equivalent units (simulated size x 16).
 */

#include <cstdio>

#include "core/experiments.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

void
runFig13()
{
    printBanner("Figure 13",
                "L4 capacity sweep (direct-mapped victim cache, "
                "1/32-scale)");
    const WorkloadProfile prof = WorkloadProfile::s1LeafCapacitySweep();
    const PlatformConfig plt1 = PlatformConfig::plt1();
    const uint64_t l3_sim = (23 * MiB) / prof.sweepScale;

    Table t({"L4 (paper-eq)", "L4 (sim)", "Heap hit", "Shard hit",
             "Comb. hit", "Heap MPKI", "Shard MPKI", "Comb. MPKI"});
    for (uint64_t sim = 2 * MiB; sim <= 256 * MiB; sim *= 2) {
        RunOptions opt;
        opt.cores = 16;
        opt.l3Bytes = l3_sim;
        L4Config l4;
        l4.sizeBytes = sim;
        opt.l4 = l4;
        opt.measureRecords = 24'000'000;
        opt.warmupRecords = 48'000'000;
        const SystemResult r = runWorkload(prof, plt1, opt);
        const uint64_t i = r.instructions;
        t.addRow({formatBytes(sim * prof.sweepScale), formatBytes(sim),
                  Table::fmtPct(r.l4.hitRate(AccessKind::Heap), 0),
                  Table::fmtPct(r.l4.hitRate(AccessKind::Shard), 0),
                  Table::fmtPct(r.l4.hitRateTotal(), 0),
                  Table::fmt(r.l4.mpki(AccessKind::Heap, i), 2),
                  Table::fmt(r.l4.mpki(AccessKind::Shard, i), 2),
                  Table::fmt(r.l4.mpkiTotal(i), 2)});
        std::fflush(stdout);
    }
    t.print();
    std::printf("\nPaper: a 1 GiB L4 captures most heap locality; "
                "remaining misses are mostly shard; ~50%% of DRAM "
                "accesses filtered overall at 1 GiB.\n"
                "MPKI columns are on the sweep profile's boosted "
                "data-access rate; compare shapes, not absolutes.\n");
}

} // namespace
} // namespace wsearch

int
main()
{
    wsearch::runFig13();
    return 0;
}
