/**
 * @file
 * Reproduces paper Figure 13: hit rate and MPKI of the proposed
 * direct-mapped, memory-side (victim) eDRAM L4 cache as capacity
 * sweeps 64 MiB .. 8 GiB, behind the rightsized 23 MiB L3. The
 * paper's landmarks: 1 GiB captures most of the heap locality; the
 * remaining misses are dominated by the shard; heap hit rate trends
 * toward ~90% at the top capacities.
 *
 * Runs on the 1/32-scale sweep profile; capacities are reported in
 * paper-equivalent units (simulated size x 16). All L4 sizes replay
 * one shared trace buffer concurrently.
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

void
runFig13(const bench::Args &args)
{
    bench::banner(args, "Figure 13",
                  "L4 capacity sweep (direct-mapped victim cache, "
                  "1/32-scale)");
    const WorkloadProfile prof = WorkloadProfile::s1LeafCapacitySweep();
    const PlatformConfig plt1 = PlatformConfig::plt1();
    const uint64_t l3_sim = (23 * MiB) / prof.sweepScale;

    std::vector<uint64_t> sizes;
    std::vector<RunOptions> options;
    for (uint64_t sim = 2 * MiB; sim <= 256 * MiB; sim *= 2) {
        RunOptions opt = bench::baseOptions(16, 24'000'000, 48'000'000);
        opt.l3Bytes = l3_sim;
        opt.l4 = cache_gen_victim(sim, 64);
        sizes.push_back(sim);
        options.push_back(opt);
    }
    const std::vector<SystemResult> results =
        runWorkloadSweep(prof, plt1, options, bench::sweepControl(args));

    Table t({"L4 (paper-eq)", "L4 (sim)", "Heap hit", "Shard hit",
             "Comb. hit", "Heap MPKI", "Shard MPKI", "Comb. MPKI"});
    for (size_t j = 0; j < sizes.size(); ++j) {
        const SystemResult &r = results[j];
        const uint64_t sim = sizes[j];
        const uint64_t i = r.instructions;
        t.addRow({formatBytes(sim * prof.sweepScale), formatBytes(sim),
                  Table::fmtPct(r.l4.hitRate(AccessKind::Heap), 0),
                  Table::fmtPct(r.l4.hitRate(AccessKind::Shard), 0),
                  Table::fmtPct(r.l4.hitRateTotal(), 0),
                  Table::fmt(r.l4.mpki(AccessKind::Heap, i), 2),
                  Table::fmt(r.l4.mpki(AccessKind::Shard, i), 2),
                  Table::fmt(r.l4.mpkiTotal(i), 2)});
    }
    t.print();
    std::printf("\nPaper: a 1 GiB L4 captures most heap locality; "
                "remaining misses are mostly shard; ~50%% of DRAM "
                "accesses filtered overall at 1 GiB.\n"
                "MPKI columns are on the sweep profile's boosted "
                "data-access rate; compare shapes, not absolutes.\n");
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    wsearch::runFig13(wsearch::bench::parseArgs(argc, argv));
    return 0;
}
