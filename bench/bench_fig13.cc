/**
 * @file
 * Reproduces paper Figure 13: hit rate and MPKI of the proposed
 * direct-mapped, memory-side (victim) eDRAM L4 cache as capacity
 * sweeps, behind the rightsized 23 MiB L3. The paper's landmarks:
 * 1 GiB captures most of the heap locality; the remaining misses are
 * dominated by the shard; heap hit rate trends toward ~90% at the top
 * capacities. Two sections:
 *
 *   scaled   the established 1/32-scale ladder (2 MiB .. 256 MiB
 *            simulated L4 behind a 736 KiB L3) replayed exactly --
 *            the continuity rows scripts/bench_diff.py gates.
 *   nominal  the L4 sweep at FULL NOMINAL working-set sizes
 *            (WorkloadProfile::atNominalScale) and real paper
 *            capacities -- a GiB-scale L4 behind the real 23 MiB
 *            L3 -- made affordable by clustered representative
 *            sampling (~1/4 of each trace simulated, every row
 *            carrying its LLC-miss confidence band). The statistical
 *            validity of those bands is gated by bench_fig6bc's
 *            clustered-vs-oracle section; this driver reuses the same
 *            plan machinery and records the bands for bench_diff.
 *
 * Emits BENCH_fig13.json in the standard frame for bench_all.sh
 * aggregation and bench_diff.py gating.
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

void
addRow(bench::JsonWriter &json, const char *section, uint64_t sim_bytes,
       uint64_t paper_eq_bytes, const SystemResult &r)
{
    json.beginObject();
    json.add("section", std::string(section));
    json.add("l4_sim_bytes", sim_bytes);
    json.add("l4_paper_eq_bytes", paper_eq_bytes);
    json.add("instructions", r.instructions);
    json.add("l4_accesses", r.l4.totalAccesses());
    json.add("l4_misses", r.l4.totalMisses());
    json.add("heap_hit", r.l4.hitRate(AccessKind::Heap));
    json.add("shard_hit", r.l4.hitRate(AccessKind::Shard));
    json.add("sampled_windows", r.sampledWindows);
    json.add("represented_windows", r.representedWindows);
    json.add("band_lo", r.l3MissBandLo());
    json.add("band_hi", r.l3MissBandHi());
    json.add("band_rel", r.bandRelHalfWidth());
    json.endObject();
}

void
printTable(const WorkloadProfile &prof,
           const std::vector<uint64_t> &sizes,
           const std::vector<SystemResult> &results, bool banded)
{
    std::vector<std::string> cols = {
        "L4 (paper-eq)", "L4 (sim)", "Heap hit", "Shard hit",
        "Comb. hit", "Heap MPKI", "Shard MPKI", "Comb. MPKI"};
    if (banded)
        cols.push_back("L4-access band (95%)");
    Table t(cols);
    for (size_t j = 0; j < sizes.size(); ++j) {
        const SystemResult &r = results[j];
        const uint64_t sim = sizes[j];
        const uint64_t i = r.instructions;
        std::vector<std::string> row = {
            formatBytes(sim * prof.sweepScale), formatBytes(sim),
            Table::fmtPct(r.l4.hitRate(AccessKind::Heap), 0),
            Table::fmtPct(r.l4.hitRate(AccessKind::Shard), 0),
            Table::fmtPct(r.l4.hitRateTotal(), 0),
            Table::fmt(r.l4.mpki(AccessKind::Heap, i), 2),
            Table::fmt(r.l4.mpki(AccessKind::Shard, i), 2),
            Table::fmt(r.l4.mpkiTotal(i), 2)};
        if (banded) {
            // The band is on LLC misses == L4 lookups: the sampling
            // plan's variance model tracks the L3 miss stream feeding
            // the victim cache.
            char buf[64];
            std::snprintf(buf, sizeof buf, "%.3g..%.3g (+-%.1f%%)",
                          r.l3MissBandLo(), r.l3MissBandHi(),
                          100.0 * r.bandRelHalfWidth());
            row.push_back(buf);
        }
        t.addRow(row);
    }
    t.print();
}

void
runFig13(const bench::Args &args)
{
    const double t0 = bench::nowSec();
    bench::banner(args, "Figure 13",
                  "L4 capacity sweep (direct-mapped victim cache; "
                  "1/32-scale ladder + clustered nominal-scale sweep)");
    const WorkloadProfile prof = WorkloadProfile::s1LeafCapacitySweep();
    const PlatformConfig plt1 = PlatformConfig::plt1();
    const uint64_t l3_sim = (23 * MiB) / prof.sweepScale;

    bench::JsonWriter json;
    bench::beginStandardJson(json, "fig13", args.smoke);
    json.add("cores", static_cast<uint64_t>(16));
    json.add("l3_sim_bytes", l3_sim);

    // --- scaled: the established 1/32-scale ladder, exact replay ---
    std::vector<uint64_t> sizes;
    std::vector<RunOptions> options;
    for (uint64_t sim = 2 * MiB; sim <= 256 * MiB; sim *= 2) {
        RunOptions opt = bench::baseOptions(16, 24'000'000, 48'000'000);
        opt.l3Bytes = l3_sim;
        opt.l4 = cache_gen_victim(sim, 64);
        sizes.push_back(sim);
        options.push_back(opt);
    }
    json.add("scaled_measure_records", recordBudget(options[0]).measure);
    json.add("scaled_warmup_records", recordBudget(options[0]).warmup);
    const std::vector<SystemResult> results =
        runWorkloadSweep(prof, plt1, options, bench::sweepControl(args));
    printTable(prof, sizes, results, false);
    std::printf("\nPaper: a 1 GiB L4 captures most heap locality; "
                "remaining misses are mostly shard; ~50%% of DRAM "
                "accesses filtered overall at 1 GiB.\n"
                "MPKI columns are on the sweep profile's boosted "
                "data-access rate; compare shapes, not absolutes.\n\n");

    // --- nominal: real 23 MiB L3 + GiB-scale victim L4 under
    //     clustered sampling ---
    const WorkloadProfile nominal = prof.atNominalScale();
    std::vector<uint64_t> nom_sizes;
    if (args.smoke) {
        nom_sizes = {128 * MiB, 512 * MiB};
    } else {
        nom_sizes = {256 * MiB, 1 * GiB, 2 * GiB, 4 * GiB};
    }
    std::vector<RunOptions> nom_options;
    for (const uint64_t size : nom_sizes) {
        RunOptions opt = bench::baseOptions(16, 24'000'000, 12'000'000);
        opt.l3Bytes = 23 * MiB;
        opt.l4 = cache_gen_victim(size, 64);
        nom_options.push_back(opt);
    }
    const RecordBudget nom_budget = recordBudget(nom_options[0]);
    const SweepControl nom_control =
        bench::clusteredControl(args, nom_budget.total());
    json.add("nominal_measure_records", nom_budget.measure);
    json.add("nominal_warmup_records", nom_budget.warmup);
    json.add("sampling_policy",
             std::string(samplingPolicyName(nom_control.policy)));
    json.add("sample_window_records", nom_control.rep.windowRecords);
    json.add("sample_clusters",
             static_cast<uint64_t>(nom_control.rep.sampleWindows));
    json.add("sample_seed", sampleSeed(nom_control.rep.seed));

    std::printf("Nominal-scale sweep (%s sampling; 23 MiB L3, paper "
                "working sets: %s heap tail, %s shard span)\n",
                samplingPolicyName(nom_control.policy),
                formatBytes(nominal.heapWorkingSetBytes).c_str(),
                formatBytes(nominal.shardSpanBytes).c_str());
    const std::vector<SystemResult> nom_results =
        runWorkloadSweep(nominal, plt1, nom_options, nom_control);
    printTable(nominal, nom_sizes, nom_results, true);
    std::printf("\n");

    json.beginArray("rows");
    for (size_t i = 0; i < sizes.size(); ++i)
        addRow(json, "scaled", sizes[i], sizes[i] * prof.sweepScale,
               results[i]);
    for (size_t i = 0; i < nom_sizes.size(); ++i)
        addRow(json, "nominal", nom_sizes[i], nom_sizes[i],
               nom_results[i]);
    json.endArray();

    bench::finishStandardJson(json, "fig13", t0);
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    wsearch::runFig13(wsearch::bench::parseArgs(argc, argv));
    return 0;
}
