/**
 * @file
 * Ablations of the design choices DESIGN.md calls out, beyond the
 * paper's own sensitivity bars:
 *
 *  1. L4 fill policy: victim-of-L3 (the paper's memory-side design)
 *     vs conventional allocate-on-miss.
 *  2. Inclusive vs non-inclusive L3 (the paper notes CAT-induced
 *     back-invalidations make its measured results conservative).
 *  3. CAT way-partitioning vs a dedicated same-capacity cache
 *     (partitioning reduces associativity, adding conflicts).
 *  4. L3 replacement policy: LRU vs random vs SRRIP (scan-resistant).
 */

#include <cstdio>

#include "core/experiments.hh"
#include "trace/synthetic.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

SystemResult
runCfg(const WorkloadProfile &prof, SystemConfig cfg, uint64_t records)
{
    SyntheticSearchTrace trace(prof, cfg.hierarchy.numCores *
                                          cfg.hierarchy.smtWays);
    SystemSimulator sim(cfg);
    const uint64_t n = traceBudget(records);
    return sim.run(trace, n, n);
}

void
l4FillPolicy()
{
    std::printf("--- L4 fill policy (victim vs allocate-on-miss) ---\n");
    const WorkloadProfile prof = WorkloadProfile::s1LeafSweep();
    const PlatformConfig plt1 = PlatformConfig::plt1();
    Table t({"Fill policy", "L4 hit rate", "L3 MPKI", "DRAM accesses "
             "per ki"});
    for (const bool victim : {true, false}) {
        SystemConfig cfg = plt1.system(prof, 16);
        cfg.hierarchy.l3.sizeBytes = (23 * MiB) / prof.sweepScale;
        L4Config l4;
        l4.sizeBytes = (1 * GiB) / prof.sweepScale;
        l4.fill = victim ? L4Config::Fill::VictimOfL3
                         : L4Config::Fill::OnMiss;
        cfg.hierarchy.l4 = l4;
        const SystemResult r = runCfg(prof, cfg, 24'000'000);
        const uint64_t i = r.instructions;
        t.addRow({victim ? "victim-of-L3 (paper)" : "allocate-on-miss",
                  Table::fmtPct(r.l4.hitRateTotal(), 1),
                  Table::fmt(r.l3.mpkiTotal(i), 2),
                  Table::fmt(r.l4.mpkiTotal(i), 2)});
        std::fflush(stdout);
    }
    t.print();
    std::printf("\n");
}

void
inclusiveL3()
{
    std::printf("--- Inclusive vs non-inclusive L3 ---\n");
    const WorkloadProfile prof = WorkloadProfile::s1Leaf();
    const PlatformConfig plt1 = PlatformConfig::plt1();
    Table t({"L3 policy", "L3 MPKI", "Back-invalidations/ki", "IPC"});
    for (const bool inclusive : {false, true}) {
        SystemConfig cfg = plt1.system(prof, 16);
        cfg.hierarchy.inclusiveL3 = inclusive;
        // A small partition makes inclusion victims visible, like the
        // paper's CAT experiments.
        cfg.hierarchy.l3.partitionWays = 4;
        const SystemResult r = runCfg(prof, cfg, 16'000'000);
        const uint64_t i = r.instructions;
        t.addRow({inclusive ? "inclusive" : "non-inclusive",
                  Table::fmt(r.l3.mpkiTotal(i), 2),
                  Table::fmt(1000.0 * r.backInvalidations /
                                 static_cast<double>(i), 2),
                  Table::fmt(r.ipcPerThread, 3)});
        std::fflush(stdout);
    }
    t.print();
    std::printf("Paper: inclusion back-invalidations under CAT make "
                "the measured rightsizing benefits conservative.\n\n");
}

void
catVsDedicated()
{
    std::printf("--- CAT partition vs dedicated cache ---\n");
    const WorkloadProfile prof = WorkloadProfile::s1Leaf();
    const PlatformConfig plt1 = PlatformConfig::plt1();
    Table t({"Configuration", "Effective capacity", "Ways", "L3 MPKI"});
    // 4 of 20 ways of 45 MiB (CAT) vs a dedicated 9 MiB 20-way cache.
    {
        SystemConfig cfg = plt1.system(prof, 16);
        cfg.hierarchy.l3.partitionWays = 4;
        const SystemResult r = runCfg(prof, cfg, 16'000'000);
        t.addRow({"CAT 4/20 ways of 45 MiB", "9 MiB", "4",
                  Table::fmt(r.l3.mpkiTotal(r.instructions), 2)});
    }
    {
        SystemConfig cfg = plt1.system(prof, 16);
        cfg.hierarchy.l3.sizeBytes = 9 * MiB;
        const SystemResult r = runCfg(prof, cfg, 16'000'000);
        t.addRow({"dedicated 9 MiB, 20-way", "9 MiB", "20",
                  Table::fmt(r.l3.mpkiTotal(r.instructions), 2)});
    }
    t.print();
    std::printf("CAT keeps the set count but cuts associativity, so "
                "it suffers extra conflict misses vs a dedicated "
                "cache of the same capacity.\n\n");
}

void
replacementPolicy()
{
    std::printf("--- L3 replacement policy ---\n");
    const WorkloadProfile prof = WorkloadProfile::s1Leaf();
    const PlatformConfig plt1 = PlatformConfig::plt1();
    Table t({"Policy", "L3 MPKI", "L3 hit rate"});
    for (const ReplPolicy repl :
         {ReplPolicy::LRU, ReplPolicy::Random, ReplPolicy::SRRIP}) {
        SystemConfig cfg = plt1.system(prof, 16);
        // Capacity-constrained point where replacement matters.
        cfg.hierarchy.l3.sizeBytes = 9 * MiB;
        cfg.hierarchy.l3.repl = repl;
        const SystemResult r = runCfg(prof, cfg, 16'000'000);
        const char *name = repl == ReplPolicy::LRU ? "LRU"
            : repl == ReplPolicy::Random ? "random" : "SRRIP";
        t.addRow({name,
                  Table::fmt(r.l3.mpkiTotal(r.instructions), 2),
                  Table::fmtPct(r.l3.hitRateTotal(), 1)});
        std::fflush(stdout);
    }
    t.print();
}

} // namespace
} // namespace wsearch

int
main()
{
    wsearch::printBanner("Ablations",
                         "Design-choice sensitivity beyond the paper's "
                         "own bars");
    wsearch::l4FillPolicy();
    wsearch::inclusiveL3();
    wsearch::catVsDedicated();
    wsearch::replacementPolicy();
    return 0;
}
