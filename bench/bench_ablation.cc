/**
 * @file
 * Ablations of the design choices DESIGN.md calls out, beyond the
 * paper's own sensitivity bars:
 *
 *  1. L4 fill policy: victim-of-LLC (the paper's memory-side design)
 *     vs conventional allocate-on-miss.
 *  2. Inclusive vs non-inclusive L3 (the paper notes CAT-induced
 *     back-invalidations make its measured results conservative).
 *  3. CAT way-partitioning vs a dedicated same-capacity cache
 *     (partitioning reduces associativity, adding conflicts).
 *  4. L3 replacement policy: LRU vs random vs SRRIP vs DRRIP.
 *
 * Emits BENCH_ablation.json through the standard frame: one rows[]
 * element per (study, variant) with the deterministic counters
 * bench_diff.py gates on.
 */

#include <cstdio>

#include "common.hh"
#include "trace/synthetic.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

uint64_t
budget(const bench::Args &args, uint64_t records)
{
    // Smoke mode quarters the (already WSEARCH_FAST-scaled) budget:
    // the studies stay directionally meaningful and CI stays fast.
    const uint64_t n = traceBudget(records);
    return args.smoke ? n / 4 : n;
}

SystemResult
runCfg(const WorkloadProfile &prof, SystemConfig cfg, uint64_t records)
{
    SyntheticSearchTrace trace(prof, cfg.hierarchy.numCores *
                                          cfg.hierarchy.smtWays);
    SystemSimulator sim(cfg);
    return sim.run(trace, records, records);
}

void
addRow(bench::JsonWriter &json, const char *study, const char *variant,
       const SystemResult &r)
{
    json.beginObject();
    json.add("study", std::string(study));
    json.add("variant", std::string(variant));
    json.add("instructions", r.instructions);
    json.add("l3_misses", r.l3.totalMisses());
    json.add("l4_accesses", r.l4.totalAccesses());
    json.add("l4_misses", r.l4.totalMisses());
    json.add("writebacks", r.writebacks);
    json.add("back_invalidations", r.backInvalidations);
    json.endObject();
}

void
l4FillPolicy(const bench::Args &args, bench::JsonWriter &json)
{
    std::printf("--- L4 fill policy (victim vs allocate-on-miss) ---\n");
    const WorkloadProfile prof = WorkloadProfile::s1LeafSweep();
    const PlatformConfig plt1 = PlatformConfig::plt1();
    Table t({"Fill policy", "L4 hit rate", "L3 MPKI", "DRAM accesses "
             "per ki"});
    for (const bool victim : {true, false}) {
        SystemConfig cfg = plt1.system(prof, 16);
        cfg.hierarchy.llc.cache.sizeBytes =
            (23 * MiB) / prof.sweepScale;
        cfg.hierarchy.l4 = cache_gen_victim(
            (1 * GiB) / prof.sweepScale, 64, /*fully_assoc=*/false,
            /*victim_fill=*/victim);
        const SystemResult r =
            runCfg(prof, cfg, budget(args, 24'000'000));
        const uint64_t i = r.instructions;
        t.addRow({victim ? "victim-of-L3 (paper)" : "allocate-on-miss",
                  Table::fmtPct(r.l4.hitRateTotal(), 1),
                  Table::fmt(r.l3.mpkiTotal(i), 2),
                  Table::fmt(r.l4.mpkiTotal(i), 2)});
        addRow(json, "l4_fill", victim ? "victim" : "on_miss", r);
        std::fflush(stdout);
    }
    t.print();
    std::printf("\n");
}

void
inclusiveL3(const bench::Args &args, bench::JsonWriter &json)
{
    std::printf("--- Inclusive vs non-inclusive L3 ---\n");
    const WorkloadProfile prof = WorkloadProfile::s1Leaf();
    const PlatformConfig plt1 = PlatformConfig::plt1();
    Table t({"L3 policy", "L3 MPKI", "Back-invalidations/ki", "IPC"});
    for (const bool inclusive : {false, true}) {
        SystemConfig cfg = plt1.system(prof, 16);
        cfg.hierarchy.llc.inclusion = inclusive
            ? InclusionMode::Inclusive : InclusionMode::NINE;
        // A small partition makes inclusion victims visible, like the
        // paper's CAT experiments.
        cfg.hierarchy.llc.cache.partitionWays = 4;
        const SystemResult r =
            runCfg(prof, cfg, budget(args, 16'000'000));
        const uint64_t i = r.instructions;
        t.addRow({inclusive ? "inclusive" : "non-inclusive",
                  Table::fmt(r.l3.mpkiTotal(i), 2),
                  Table::fmt(1000.0 * r.backInvalidations /
                                 static_cast<double>(i), 2),
                  Table::fmt(r.ipcPerThread, 3)});
        addRow(json, "inclusion", inclusive ? "inclusive" : "nine", r);
        std::fflush(stdout);
    }
    t.print();
    std::printf("Paper: inclusion back-invalidations under CAT make "
                "the measured rightsizing benefits conservative.\n\n");
}

void
catVsDedicated(const bench::Args &args, bench::JsonWriter &json)
{
    std::printf("--- CAT partition vs dedicated cache ---\n");
    const WorkloadProfile prof = WorkloadProfile::s1Leaf();
    const PlatformConfig plt1 = PlatformConfig::plt1();
    Table t({"Configuration", "Effective capacity", "Ways", "L3 MPKI"});
    // 4 of 20 ways of 45 MiB (CAT) vs a dedicated 9 MiB 20-way cache.
    {
        SystemConfig cfg = plt1.system(prof, 16);
        cfg.hierarchy.llc.cache.partitionWays = 4;
        const SystemResult r =
            runCfg(prof, cfg, budget(args, 16'000'000));
        t.addRow({"CAT 4/20 ways of 45 MiB", "9 MiB", "4",
                  Table::fmt(r.l3.mpkiTotal(r.instructions), 2)});
        addRow(json, "cat", "partition_4_of_20", r);
    }
    {
        SystemConfig cfg = plt1.system(prof, 16);
        cfg.hierarchy.llc.cache.sizeBytes = 9 * MiB;
        const SystemResult r =
            runCfg(prof, cfg, budget(args, 16'000'000));
        t.addRow({"dedicated 9 MiB, 20-way", "9 MiB", "20",
                  Table::fmt(r.l3.mpkiTotal(r.instructions), 2)});
        addRow(json, "cat", "dedicated_9mib", r);
    }
    t.print();
    std::printf("CAT keeps the set count but cuts associativity, so "
                "it suffers extra conflict misses vs a dedicated "
                "cache of the same capacity.\n\n");
}

void
replacementPolicy(const bench::Args &args, bench::JsonWriter &json)
{
    std::printf("--- L3 replacement policy ---\n");
    const WorkloadProfile prof = WorkloadProfile::s1Leaf();
    const PlatformConfig plt1 = PlatformConfig::plt1();
    Table t({"Policy", "L3 MPKI", "L3 hit rate"});
    for (const ReplPolicy repl :
         {ReplPolicy::LRU, ReplPolicy::Random, ReplPolicy::SRRIP,
          ReplPolicy::DRRIP}) {
        SystemConfig cfg = plt1.system(prof, 16);
        // Capacity-constrained point where replacement matters.
        cfg.hierarchy.llc.cache.sizeBytes = 9 * MiB;
        cfg.hierarchy.llc.cache.repl = repl;
        const SystemResult r =
            runCfg(prof, cfg, budget(args, 16'000'000));
        const char *name = repl == ReplPolicy::LRU ? "LRU"
            : repl == ReplPolicy::Random ? "random"
            : repl == ReplPolicy::SRRIP ? "SRRIP" : "DRRIP";
        t.addRow({name,
                  Table::fmt(r.l3.mpkiTotal(r.instructions), 2),
                  Table::fmtPct(r.l3.hitRateTotal(), 1)});
        addRow(json, "replacement", name, r);
        std::fflush(stdout);
    }
    t.print();
}

void
runAblation(const bench::Args &args)
{
    const double t0 = bench::nowSec();
    printBanner("Ablations",
                "Design-choice sensitivity beyond the paper's own "
                "bars");
    bench::JsonWriter json;
    bench::beginStandardJson(json, "ablation", args.smoke);
    json.add("records_unit", budget(args, 16'000'000));
    json.beginArray("rows");
    l4FillPolicy(args, json);
    inclusiveL3(args, json);
    catVsDedicated(args, json);
    replacementPolicy(args, json);
    json.endArray();
    bench::finishStandardJson(json, "ablation", t0);
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    wsearch::runAblation(wsearch::bench::parseArgs(argc, argv));
    return 0;
}
