/**
 * @file
 * Scatter-gather cluster characterization (src/serve cluster layer).
 * Three sections, each a closed-loop run against a fresh cluster:
 *
 *   1. shard fan-out sweep at a fixed generous deadline, with the
 *      per-shard corpus held constant (weak scaling): every query
 *      waits for the slowest of S shards, so tail latency grows with
 *      fan-out even though per-shard work does not -- the
 *      tail-at-scale effect the serving tree must engineer around;
 *   2. deadline sweep at the widest fan-out: tightening the budget
 *      caps the tail but costs coverage -- the graceful-degradation
 *      trade the root makes instead of failing queries;
 *   3. hedging: replicas suffer occasional background-interference
 *      stalls (the pool's interference knob); with two replicas per
 *      shard, a backup request for the slowest few percent of shard
 *      answers cuts p99 for a few percent of extra executed leaf
 *      load (cancellation reclaims the rest).
 *
 * A fourth section, selected with --faults, injects deterministic
 * fault plans (serve/fault.hh) into a hedged, retrying cluster and
 * reports what each failure mode costs: coverage, unavailable-shard
 * counts, retry/hedge traffic, and the latency tail.
 *
 * WSEARCH_FAST=1 shrinks the run; WSEARCH_CLUSTER_CLIENTS overrides
 * the closed-loop client count (default 4).
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "search/corpus.hh"
#include "search/sharding.hh"
#include "serve/cluster.hh"
#include "serve/fault.hh"
#include "serve/loadgen.hh"
#include "util/env.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

QueryGenerator::Config
trafficFor(const CorpusConfig &corpus)
{
    QueryGenerator::Config qc;
    qc.vocabSize = corpus.vocabSize;
    qc.distinctQueries = 1u << 16;
    qc.popularityTheta = 0.9;
    qc.maxTerms = 3;
    qc.conjunctiveFrac = 0.7;
    return qc;
}

std::string
fmtDeadline(uint64_t ns)
{
    if (ns == 0)
        return "none";
    if (ns % 1'000'000 == 0)
        return Table::fmtInt(ns / 1'000'000) + " ms";
    return Table::fmtInt(ns / 1'000) + " us";
}

void
runBenchCluster()
{
    const bool fast = fastMode();
    const uint32_t clients = static_cast<uint32_t>(
        envU64("WSEARCH_CLUSTER_CLIENTS", 4));
    if (clients < 1)
        wsearch_fatal("WSEARCH_CLUSTER_CLIENTS must be >= 1");

    // Weak scaling: the per-shard corpus is constant, so a bigger
    // cluster serves a bigger corpus at the same per-shard work and
    // latency differences are pure fan-out effects.
    const uint32_t per_shard_docs = fast ? 1000 : 2500;
    CorpusConfig cc;
    cc.vocabSize = 20000;
    std::printf("# bench_cluster: %u docs/shard, %u terms, %u "
                "closed-loop clients\n",
                per_shard_docs, cc.vocabSize, clients);
    std::fflush(stdout);
    const auto corpus_for = [&cc, per_shard_docs](uint32_t num_shards) {
        CorpusConfig scaled = cc;
        scaled.numDocs = per_shard_docs * num_shards;
        return CorpusGenerator(scaled);
    };

    LoadGenConfig lg;
    lg.queries = trafficFor(cc);
    lg.clients = clients;
    lg.numQueries = fast ? 800 : 3000;

    // --- 1. Shard fan-out sweep at a fixed deadline. -----------------
    const uint64_t wide_deadline = 50'000'000; // 50 ms: rarely missed
    std::printf("\n## Fan-out sweep (deadline %s)\n",
                fmtDeadline(wide_deadline).c_str());
    Table fan({"Shards", "QPS", "Coverage", "Degraded", "p50 (us)",
               "p95 (us)", "p99 (us)", "p99.9 (us)", "shard p50 (us)",
               "shard p99 (us)"});
    for (const uint32_t s : {1u, 2u, 4u, 8u}) {
        const CorpusGenerator corpus = corpus_for(s);
        const ShardedIndex si = buildShardedIndex(corpus, s);
        ClusterConfig cfg;
        cfg.pool.numWorkers = 1;
        cfg.deadlineNs = wide_deadline;
        ClusterServer cluster(si.shardPtrs(), cfg);
        const ClusterLoadReport r = runClusterClosedLoop(cluster, lg);
        const LatencyHistogram &q = r.snap.queryNs;
        fan.addRow({Table::fmtInt(s), Table::fmt(r.achievedQps, 1),
                    Table::fmtPct(r.snap.meanCoverage(), 2),
                    Table::fmtInt(r.snap.degraded),
                    fmtUsec(q.quantile(0.50)), fmtUsec(q.quantile(0.95)),
                    fmtUsec(q.quantile(0.99)),
                    fmtUsec(q.quantile(0.999)),
                    fmtUsec(r.snap.shardNs.quantile(0.50)),
                    fmtUsec(r.snap.shardNs.quantile(0.99))});
        std::fflush(stdout);
    }
    fan.print();

    // --- 2. Deadline sweep at the widest fan-out. --------------------
    const uint32_t sweep_shards = 8;
    std::printf("\n## Deadline sweep (%u shards)\n", sweep_shards);
    const CorpusGenerator sweep_corpus = corpus_for(sweep_shards);
    const ShardedIndex sweep_index =
        buildShardedIndex(sweep_corpus, sweep_shards);
    Table dl({"Deadline", "Coverage", "Degraded", "Expired", "p50 (us)",
              "p99 (us)", "p99.9 (us)"});
    for (const uint64_t deadline_ns :
         {uint64_t{0}, uint64_t{50'000'000}, uint64_t{10'000'000},
          uint64_t{2'000'000}, uint64_t{500'000}, uint64_t{200'000}}) {
        ClusterConfig cfg;
        cfg.pool.numWorkers = 1;
        cfg.deadlineNs = deadline_ns;
        ClusterServer cluster(sweep_index.shardPtrs(), cfg);
        const ClusterLoadReport r = runClusterClosedLoop(cluster, lg);
        uint64_t expired = 0;
        for (const ShardSnapshot &ss : r.snap.shards)
            expired += ss.pool.expired;
        const LatencyHistogram &q = r.snap.queryNs;
        dl.addRow({fmtDeadline(deadline_ns),
                   Table::fmtPct(r.snap.meanCoverage(), 2),
                   Table::fmtInt(r.snap.degraded),
                   Table::fmtInt(expired), fmtUsec(q.quantile(0.50)),
                   fmtUsec(q.quantile(0.99)),
                   fmtUsec(q.quantile(0.999))});
        std::fflush(stdout);
    }
    dl.print();

    // --- 3. Hedging stragglers (2 replicas per shard). ---------------
    const uint32_t hedge_shards = 4;
    // The stall must sit well above the ordinary queueing tail or the
    // interference never dominates p99 and a hedge has nothing to
    // beat; 20 ms is ~2-3x the saturated 8-shard p99 on the reference
    // 1-CPU host.
    const uint32_t interference_every = 128;
    const uint64_t interference_pause = 20'000'000; // 20 ms stall
    std::printf("\n## Hedging (%u shards, 2 replicas each; "
                "1/%u executions stall %s)\n",
                hedge_shards, interference_every,
                fmtDeadline(interference_pause).c_str());
    const CorpusGenerator hedge_corpus = corpus_for(hedge_shards);
    const ShardedIndex hedge_index =
        buildShardedIndex(hedge_corpus, hedge_shards);
    ClusterConfig base;
    base.replicasPerShard = 2;
    base.pool.numWorkers = 1;
    base.pool.interferenceEveryN = interference_every;
    base.pool.interferencePauseNs = interference_pause;
    base.deadlineNs = wide_deadline;

    // Baseline (hedging off) calibrates the straggler threshold: a
    // delay at the shard-latency p95 hedges only the slowest ~5% of
    // shard answers -- the interference stalls sit far above it.
    ClusterLoadReport baseline;
    {
        ClusterServer cluster(hedge_index.shardPtrs(), base);
        baseline = runClusterClosedLoop(cluster, lg);
    }
    const uint64_t p95 = baseline.snap.shardNs.quantile(0.95);
    const uint64_t p90 = baseline.snap.shardNs.quantile(0.90);

    Table hedge({"Hedge delay", "Hedges", "Wins", "Extra leaf load",
                 "Coverage", "p50 (us)", "p95 (us)", "p99 (us)",
                 "p99.9 (us)"});
    const auto add_row = [&hedge](const char *label,
                                  const ClusterLoadReport &r) {
        const LatencyHistogram &q = r.snap.queryNs;
        hedge.addRow({label, Table::fmtInt(r.snap.hedgesIssued),
                      Table::fmtInt(r.snap.hedgeWins),
                      Table::fmtPct(r.extraLeafLoad(), 2),
                      Table::fmtPct(r.snap.meanCoverage(), 2),
                      fmtUsec(q.quantile(0.50)),
                      fmtUsec(q.quantile(0.95)),
                      fmtUsec(q.quantile(0.99)),
                      fmtUsec(q.quantile(0.999))});
    };
    add_row("off", baseline);
    {
        ClusterConfig cfg = base;
        cfg.hedgeDelayNs = std::max<uint64_t>(p95, 1);
        ClusterServer cluster(hedge_index.shardPtrs(), cfg);
        add_row("shard p95", runClusterClosedLoop(cluster, lg));
        std::fflush(stdout);
    }
    {
        ClusterConfig cfg = base;
        cfg.hedgeDelayNs = std::max<uint64_t>(p90, 1);
        ClusterServer cluster(hedge_index.shardPtrs(), cfg);
        add_row("shard p90", runClusterClosedLoop(cluster, lg));
    }
    hedge.print();

    std::printf("\n## Full cluster report (hedging at shard p95)\n");
    {
        ClusterConfig cfg = base;
        cfg.hedgeDelayNs = std::max<uint64_t>(p95, 1);
        ClusterServer cluster(hedge_index.shardPtrs(), cfg);
        const ClusterLoadReport r = runClusterClosedLoop(cluster, lg);
        printClusterReport(r.snap, r.durationSec);
    }
}

// --- 4. Fault sweep (--faults). ----------------------------------
void
runBenchFaults()
{
    const bool fast = fastMode();
    const uint32_t clients = static_cast<uint32_t>(
        envU64("WSEARCH_CLUSTER_CLIENTS", 4));
    const uint32_t num_shards = 4;
    const uint32_t per_shard_docs = fast ? 1000 : 2500;
    CorpusConfig cc;
    cc.vocabSize = 20000;
    cc.numDocs = per_shard_docs * num_shards;
    std::printf("# bench_cluster --faults: %u shards x 2 replicas, "
                "%u docs/shard, %u clients\n",
                num_shards, per_shard_docs, clients);
    std::fflush(stdout);
    const CorpusGenerator corpus(cc);
    const ShardedIndex si = buildShardedIndex(corpus, num_shards);

    LoadGenConfig lg;
    lg.queries = trafficFor(cc);
    lg.clients = clients;
    lg.numQueries = fast ? 600 : 2000;

    const uint64_t deadline = 10'000'000; // 10 ms
    std::printf("deadline %s, hedge at 2 ms, 1 retry/shard, eject "
                "after 3 failures\n",
                fmtDeadline(deadline).c_str());

    struct Scenario
    {
        const char *name;
        void (*setup)(FaultPlan &);
    };
    const Scenario scenarios[] = {
        {"none", [](FaultPlan &) {}},
        // 1% of executions stall 2-8 ms: stragglers for hedging.
        {"1% delay 2-8ms",
         [](FaultPlan &p) {
             p.defaultSpec().delayProb = 0.01;
             p.defaultSpec().delayMinNs = 2'000'000;
             p.defaultSpec().delayMaxNs = 8'000'000;
         }},
        // 5% of executions fail outright: retries go elsewhere.
        {"5% failures",
         [](FaultPlan &p) { p.defaultSpec().failProb = 0.05; }},
        // One replica of shard 0 dead: its twin carries the shard.
        {"1 replica crashed",
         [](FaultPlan &p) { p.replicaSpec(0, 0).crashAtNs = 1; }},
        // Shard 0 fully dead: coverage loss, fail-fast unavailable.
        {"shard 0 crashed",
         [](FaultPlan &p) {
             p.replicaSpec(0, 0).crashAtNs = 1;
             p.replicaSpec(0, 1).crashAtNs = 1;
         }},
        // Everything at once, milder rates.
        {"combo",
         [](FaultPlan &p) {
             p.defaultSpec().delayProb = 0.005;
             p.defaultSpec().delayMinNs = 2'000'000;
             p.defaultSpec().delayMaxNs = 8'000'000;
             p.defaultSpec().failProb = 0.02;
             p.defaultSpec().dropProb = 0.005;
             p.defaultSpec().corruptProb = 0.005;
             p.replicaSpec(0, 0).crashAtNs = 1;
         }},
    };

    Table t({"Scenario", "Coverage", "Unavail", "Retries", "Hedges",
             "Wins", "p50 (us)", "p99 (us)", "p99.9 (us)"});
    for (const Scenario &sc : scenarios) {
        FaultPlan plan;
        sc.setup(plan);
        ClusterConfig cfg;
        cfg.replicasPerShard = 2;
        cfg.pool.numWorkers = 1;
        cfg.deadlineNs = deadline;
        cfg.hedgeDelayNs = 2'000'000;
        cfg.maxRetriesPerShard = 1;
        cfg.retryBackoffNs = 200'000;
        cfg.ejectAfterFailures = 3;
        cfg.probationNs = 50'000'000;
        cfg.faults = &plan;
        ClusterServer cluster(si.shardPtrs(), cfg);
        const ClusterLoadReport r = runClusterClosedLoop(cluster, lg);
        const LatencyHistogram &q = r.snap.queryNs;
        t.addRow({sc.name, Table::fmtPct(r.snap.meanCoverage(), 2),
                  Table::fmtInt(r.snap.shardsUnavailable),
                  Table::fmtInt(r.snap.retriesIssued),
                  Table::fmtInt(r.snap.hedgesIssued),
                  Table::fmtInt(r.snap.hedgeWins),
                  fmtUsec(q.quantile(0.50)), fmtUsec(q.quantile(0.99)),
                  fmtUsec(q.quantile(0.999))});
        std::fflush(stdout);
    }
    t.print();
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--faults") == 0) {
        wsearch::runBenchFaults();
        return 0;
    }
    wsearch::runBenchCluster();
    return 0;
}
