/**
 * @file
 * Reproduces paper Figure 2a: search throughput (QPS) scaling with
 * core count, SMT off, on a 4-socket PLT1-class system (8 to 72
 * cores). Near-perfect scaling is the paper's evidence that search is
 * not limited by sharing, shared-cache bandwidth, or I/O.
 *
 * QPS is modeled as cores x per-thread IPC; the L3 per socket is
 * constant, so L3 capacity per core varies exactly as on the real
 * machine (the paper notes the impact is small).
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

void
runFig2a(const bench::Args &args)
{
    bench::banner(args, "Figure 2a",
                  "Search throughput scaling with core count (SMT off)");
    const PlatformConfig plt1 = PlatformConfig::plt1();
    const WorkloadProfile prof = WorkloadProfile::s1Leaf();

    const std::vector<uint32_t> core_counts = {8,  16, 24, 32, 40,
                                               48, 56, 64, 72};
    std::vector<uint32_t> per_socket_counts;
    std::vector<RunOptions> options;
    for (const uint32_t cores : core_counts) {
        // Sockets are share-nothing for search (disjoint threads,
        // private 45 MiB L3 per socket): simulate one socket's share
        // and scale linearly across sockets, exactly like the real
        // 4-socket system.
        const uint32_t sockets = (cores + 17) / 18;
        const uint32_t per_socket = cores / sockets;
        per_socket_counts.push_back(per_socket);
        options.push_back(bench::baseOptions(
            per_socket, 2'000'000ull * per_socket));
    }
    const std::vector<SystemResult> results =
        runWorkloadSweep(prof, plt1, options, bench::sweepControl(args));

    Table t({"Cores", "Cores/socket", "Per-thread IPC",
             "Normalized QPS", "Scaling efficiency"});
    double qps8 = 0;
    for (size_t i = 0; i < core_counts.size(); ++i) {
        const uint32_t cores = core_counts[i];
        const SystemResult &r = results[i];
        const double qps = cores * r.ipcPerThread;
        if (qps8 == 0)
            qps8 = qps;
        t.addRow({Table::fmtInt(cores),
                  Table::fmtInt(per_socket_counts[i]),
                  Table::fmt(r.ipcPerThread, 3),
                  Table::fmt(qps / qps8, 2),
                  Table::fmtPct(qps / qps8 / (cores / 8.0), 1)});
    }
    t.print();
    std::printf("\nPaper: near-perfect linear scaling to 72 cores "
                "(9x at 72 vs 8).\n");
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    wsearch::runFig2a(wsearch::bench::parseArgs(argc, argv));
    return 0;
}
