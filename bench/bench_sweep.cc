/**
 * @file
 * Benchmarks (and gates) the parallel sweep engine itself on a
 * Figure-6bc-shaped L3 capacity sweep: 8 configurations of the
 * 1/32-scale S1 leaf, replayed
 *
 *   1. serial-classic   one runWorkload per config; each run
 *                       regenerates its own trace (the pre-sweep
 *                       code path),
 *   2. buffered serial  runWorkloadSweep with threads=1; the trace
 *                       is generated once into a shared BufferedTrace
 *                       and every config replays chunked spans,
 *   3. parallel         runWorkloadSweep at 2/4/8 worker threads,
 *   4. sampled          --smoke's sampled-interval mode (estimates;
 *                       reported separately, never identity-gated).
 *
 * Every exact run is compared counter-for-counter against the
 * serial-classic oracle; any mismatch makes the binary exit nonzero,
 * so CI can use it as the determinism gate. Wall-clock timings and
 * speedups land in BENCH_sweep.json for EXPERIMENTS.md.
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hh"
#include "trace/synthetic.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

std::vector<RunOptions>
sweepOptions(const bench::Args &args)
{
    // Smaller budgets in smoke mode: the point there is exercising
    // the machinery (under TSan in CI), not timing fidelity.
    const uint64_t measure = args.smoke ? 1'500'000 : 8'000'000;
    const uint64_t warmup = args.smoke ? 1'000'000 : 16'000'000;
    std::vector<RunOptions> options;
    for (uint64_t sim = 128 * KiB; sim <= 16 * MiB; sim *= 2) {
        RunOptions opt = bench::baseOptions(16, measure, warmup);
        opt.l3Bytes = sim;
        opt.l3Ways = 16;
        options.push_back(opt);
    }
    return options;
}

/** Exact counter equality; prints the first difference found. */
bool
identical(const SystemResult &a, const SystemResult &b)
{
    auto differ = [](const char *what, uint64_t x, uint64_t y) {
        if (x == y)
            return false;
        std::printf("MISMATCH %s: %llu != %llu\n", what,
                    static_cast<unsigned long long>(x),
                    static_cast<unsigned long long>(y));
        return true;
    };
    if (differ("instructions", a.instructions, b.instructions) ||
        differ("branches", a.branches, b.branches) ||
        differ("mispredicts", a.mispredicts, b.mispredicts) ||
        differ("dtlbWalks", a.dtlbWalks, b.dtlbWalks) ||
        differ("itlbWalks", a.itlbWalks, b.itlbWalks) ||
        differ("l3Evictions", a.l3Evictions, b.l3Evictions) ||
        differ("writebacks", a.writebacks, b.writebacks) ||
        differ("backInvalidations", a.backInvalidations,
               b.backInvalidations) ||
        differ("cohUpgrades", a.cohUpgrades, b.cohUpgrades) ||
        differ("cohInvalidations", a.cohInvalidations,
               b.cohInvalidations) ||
        differ("cohDirtyWritebacks", a.cohDirtyWritebacks,
               b.cohDirtyWritebacks))
        return false;
    const CacheLevelStats *as[] = {&a.l1i, &a.l1d, &a.l2, &a.l3, &a.l4};
    const CacheLevelStats *bs[] = {&b.l1i, &b.l1d, &b.l2, &b.l3, &b.l4};
    for (int lvl = 0; lvl < 5; ++lvl)
        for (uint32_t k = 0; k < kNumAccessKinds; ++k)
            if (differ("cache accesses", as[lvl]->accesses[k],
                       bs[lvl]->accesses[k]) ||
                differ("cache misses", as[lvl]->misses[k],
                       bs[lvl]->misses[k]))
                return false;
    if (a.ipcPerThread != b.ipcPerThread ||
        a.amatL3Ns != b.amatL3Ns ||
        a.topdown.total() != b.topdown.total()) {
        std::printf("MISMATCH derived metrics (ipc/amat/topdown)\n");
        return false;
    }
    return true;
}

int
runBenchSweep(const bench::Args &args)
{
    const double bench_t0 = bench::nowSec();
    // In this driver --smoke shrinks budgets but the gated runs stay
    // exact, so skip the "all numbers are estimates" banner notice;
    // only the explicitly labelled sampled row is an estimate.
    bench::Args banner_args = args;
    banner_args.smoke = false;
    bench::banner(banner_args, "Sweep engine",
                  "serial-classic vs shared-buffer vs parallel replay "
                  "(8-config L3 capacity sweep)");
    const WorkloadProfile prof = WorkloadProfile::s1LeafCapacitySweep();
    const PlatformConfig plt1 = PlatformConfig::plt1();
    const std::vector<RunOptions> options = sweepOptions(args);
    const uint64_t records_per_config = recordBudget(options[0]).total();

    // 1. Serial-classic oracle: per-config trace regeneration.
    double t0 = bench::nowSec();
    std::vector<SystemResult> oracle;
    for (const RunOptions &opt : options)
        oracle.push_back(runWorkload(prof, plt1, opt));
    const double serial_sec = bench::nowSec() - t0;
    std::printf("serial-classic: %u configs x %llu records in %.2fs\n",
                static_cast<unsigned>(options.size()),
                static_cast<unsigned long long>(records_per_config),
                serial_sec);
    std::fflush(stdout);

    bench::JsonWriter json;
    bench::beginStandardJson(json, "sweep", args.smoke);
    json.add("configs", static_cast<uint64_t>(options.size()));
    json.add("records_per_config", records_per_config);
    json.add("sim_threads_default", static_cast<uint64_t>(simThreads()));
    json.add("serial_classic_sec", serial_sec);
    json.beginArray("runs");

    Table t({"Mode", "Threads", "Wall (s)", "Speedup", "Identical"});
    t.addRow({"serial-classic", "-", Table::fmt(serial_sec, 2),
              Table::fmt(1.0, 2), "(oracle)"});

    bool all_identical = true;
    const std::vector<uint32_t> thread_counts = {1, 2, 4, 8};
    for (const uint32_t threads : thread_counts) {
        SweepControl control;
        control.threads = threads;
        t0 = bench::nowSec();
        const std::vector<SystemResult> got =
            runWorkloadSweep(prof, plt1, options, control);
        const double sec = bench::nowSec() - t0;

        bool same = got.size() == oracle.size();
        for (size_t i = 0; same && i < oracle.size(); ++i)
            same = identical(got[i], oracle[i]);
        all_identical = all_identical && same;

        const char *mode =
            threads == 1 ? "buffered serial" : "parallel";
        t.addRow({mode, Table::fmtInt(threads), Table::fmt(sec, 2),
                  Table::fmt(serial_sec / sec, 2),
                  same ? "yes" : "NO"});
        json.beginObject();
        json.add("mode", std::string(mode));
        json.add("threads", static_cast<uint64_t>(threads));
        json.add("wall_sec", sec);
        json.add("speedup_vs_serial_classic", serial_sec / sec);
        json.add("identical", static_cast<uint64_t>(same ? 1 : 0));
        json.endObject();
        std::fflush(stdout);
    }

    // Sampled quick-look mode, timed for reference. Estimates by
    // design -- never part of the identity gate.
    {
        bench::Args smoke_args = args;
        smoke_args.smoke = true;
        SweepControl control = bench::sweepControl(smoke_args);
        control.threads = 1;
        t0 = bench::nowSec();
        const std::vector<SystemResult> sampled =
            runWorkloadSweep(prof, plt1, options, control);
        const double sec = bench::nowSec() - t0;
        t.addRow({"sampled (est.)", "1", Table::fmt(sec, 2),
                  Table::fmt(serial_sec / sec, 2),
                  "n/a (sampled)"});
        json.beginObject();
        json.add("mode", std::string("sampled"));
        json.add("threads", static_cast<uint64_t>(1));
        json.add("wall_sec", sec);
        json.add("speedup_vs_serial_classic", serial_sec / sec);
        json.add("sampled_windows", sampled[0].sampledWindows);
        json.add("simulated_fraction",
                 control.sampling.simulatedFraction());
        json.endObject();
    }

    // Clustered representative sampling (see memsim/sweep.hh), timed
    // and compared against uniform sampling at EQUAL ERROR: escalate
    // the uniform plan's window budget (k, 2k, 4k, 8k) until its
    // absolute LLC-miss error matches clustered's, then report the
    // simulated-records ratio -- the honest "speedup at equal error"
    // number. Informational, not gated (the statistical gate lives in
    // bench_fig6bc); in WSEARCH_FAST smoke runs the trace is short
    // enough that the comparison is noisy.
    {
        // Clustered row: the SAME 8-config sweep as every row above,
        // so its speedup column is apples-to-apples with
        // serial-classic (one shared signature pass + plan, replayed
        // per config).
        SweepControl control;
        control.threads = 1;
        control.policy = SamplingPolicy::kClustered;
        control.rep = defaultRepresentativeSampling(records_per_config);
        t0 = bench::nowSec();
        const std::vector<SystemResult> cres =
            runWorkloadSweep(prof, plt1, options, control);
        const double clustered_sec = bench::nowSec() - t0;

        // Equal-error analysis on one mid-ladder config (1 MiB L3).
        const RunOptions &opt = options[3];
        const uint64_t total = records_per_config;
        SyntheticSearchTrace src(prof, opt.cores * opt.smtWays);
        const auto trace = BufferedTrace::materialize(src, total);
        const SystemConfig cfg = makeSystemConfig(prof, plt1, opt);

        SystemSimulator osim(cfg);
        const double o = static_cast<double>(
            osim.run(*trace, 0, total).l3.totalMisses());

        // Same knobs + same deterministic trace => this plan is the
        // one the sweep above used, so cres[3] IS its estimate.
        const SamplingPlan cplan =
            buildClusteredPlan(*trace, total, control.rep);
        const SystemResult &clustered = cres[3];
        const double cerr = std::abs(
            static_cast<double>(clustered.l3.totalMisses()) - o);

        // Escalate uniform until it is at least as accurate.
        uint64_t uniform_records = 0;
        uint32_t uniform_windows = 0;
        double uerr = -1.0;
        bool equal_error_reached = false;
        for (uint32_t mult = 1; mult <= 8; mult *= 2) {
            RepresentativeSampling urep = control.rep;
            urep.sampleWindows = control.rep.sampleWindows * mult;
            const SamplingPlan uplan = buildUniformPlan(total, urep);
            SystemSimulator usim(cfg);
            const SystemResult uniform = usim.runPlanned(*trace, uplan);
            uerr = std::abs(
                static_cast<double>(uniform.l3.totalMisses()) - o);
            uniform_records = uplan.simulatedRecords();
            uniform_windows = urep.sampleWindows;
            if (uerr <= cerr) {
                equal_error_reached = true;
                break;
            }
        }
        const double speedup_at_equal_error =
            static_cast<double>(uniform_records) /
            static_cast<double>(cplan.simulatedRecords());

        t.addRow({"clustered (est.)", "1",
                  Table::fmt(clustered_sec, 2),
                  Table::fmt(serial_sec / clustered_sec, 2),
                  "n/a (sampled)"});
        std::printf("clustered vs uniform at equal error: clustered "
                    "|err| %.0f with %llu records; uniform needs "
                    "%u windows (%llu records, |err| %.0f)%s -> "
                    "%.2fx records at equal error\n",
                    cerr,
                    static_cast<unsigned long long>(
                        cplan.simulatedRecords()),
                    uniform_windows,
                    static_cast<unsigned long long>(uniform_records),
                    uerr,
                    equal_error_reached ? "" : " (never matched; 8x cap)",
                    speedup_at_equal_error);

        json.beginObject();
        json.add("mode", std::string("clustered"));
        json.add("threads", static_cast<uint64_t>(1));
        json.add("wall_sec", clustered_sec);
        json.add("speedup_vs_serial_classic", serial_sec / clustered_sec);
        json.add("sampled_windows", clustered.sampledWindows);
        json.add("simulated_fraction", cplan.simulatedFraction());
        json.endObject();
        json.endArray();

        json.add("equal_error_oracle_l3_misses", o);
        json.add("equal_error_clustered_abs_err", cerr);
        json.add("equal_error_clustered_records",
                 cplan.simulatedRecords());
        json.add("equal_error_uniform_abs_err", uerr);
        json.add("equal_error_uniform_records", uniform_records);
        json.add("equal_error_uniform_windows",
                 static_cast<uint64_t>(uniform_windows));
        json.add("equal_error_reached",
                 static_cast<uint64_t>(equal_error_reached ? 1 : 0));
        json.add("speedup_at_equal_error", speedup_at_equal_error);
    }
    json.add("all_identical",
             static_cast<uint64_t>(all_identical ? 1 : 0));

    t.print();
    std::printf("\n");
    bench::finishStandardJson(json, "sweep", bench_t0);

    if (!all_identical) {
        std::printf("\nFAIL: sweep results differ from the "
                    "serial-classic oracle\n");
        return 1;
    }
    std::printf("\nAll sweep modes bit-identical to the "
                "serial-classic oracle.\n");
    std::printf("Note: parallel speedup requires hardware threads; "
                "on a single-CPU host the win comes from generating "
                "the trace once instead of once per config.\n");
    return 0;
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    return wsearch::runBenchSweep(wsearch::bench::parseArgs(argc, argv));
}
