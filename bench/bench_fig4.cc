/**
 * @file
 * Reproduces paper Figure 4: steady-state allocated memory footprint
 * (code, stack, heap) as served cores scale from 6 to 36 on a leaf.
 * The paper's observations: heap dominates by ~an order of magnitude
 * and grows sub-linearly (shared structures); code is constant; the
 * shard (not shown) is 100s of GiB. Here the accounting comes from
 * the mini leaf server over the procedural production-scale shard.
 */

#include <cstdio>

#include "search/leaf.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

void
runFig4()
{
    std::printf("\n== Figure 4: Allocated footprint vs cores ==\n\n");
    ProceduralIndex::Config pc; // default: GiB-scale nominal shard
    ProceduralIndex shard(pc);

    Table t({"Cores", "Code", "Stack", "Heap",
             "Heap growth vs 6-core"});
    double heap6 = 0;
    for (uint32_t cores : {6u, 16u, 26u, 36u}) {
        LeafServer::Config lc;
        lc.numThreads = cores;
        LeafServer leaf(shard, lc);
        // Run a few queries per thread so per-query scratch
        // high-water marks are realistic.
        QueryGenerator::Config qc;
        qc.vocabSize = shard.numTerms();
        QueryGenerator gen(qc);
        for (uint32_t tid = 0; tid < cores; ++tid)
            for (int i = 0; i < 3; ++i) {
                SearchRequest req;
                req.query = gen.next();
                leaf.serve(tid, req);
            }
        const FootprintStats f = leaf.footprint();
        if (heap6 == 0)
            heap6 = static_cast<double>(f.heapBytes());
        t.addRow({Table::fmtInt(cores), formatBytes(f.codeBytes),
                  formatBytes(f.stackBytes), formatBytes(f.heapBytes()),
                  Table::fmt(f.heapBytes() / heap6, 2) + "x"});
        std::fflush(stdout);
    }
    t.print();
    std::printf("\nShard (not shown above, as in the paper): %s "
                "nominal.\n", formatBytes(shard.shardBytes()).c_str());
    std::printf("Paper: heap ~10x code/stack; heap grows sub-linearly "
                "with cores (6x cores -> well under 6x heap).\n");
}

} // namespace
} // namespace wsearch

int
main()
{
    wsearch::runFig4();
    return 0;
}
