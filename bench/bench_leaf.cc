/**
 * @file
 * Leaf query-execution microbenchmark: the pruned fast path (block
 * postings + skip-driven AND / MaxScore OR) against the sequential
 * reference executor (ExecAlgo::kSequential), same shard, same
 * queries, single thread. Reports QPS, postings decoded, candidates
 * scored, and the scored/decoded ratio -- the "how much work did
 * pruning avoid" numbers behind the speedup.
 *
 * Every query is executed on both engines and the result lists are
 * compared bit-identically (doc ids, float scores, order); any
 * mismatch is fatal, so the speedup claim always stands for the same
 * answers.
 *
 * Flags / env:
 *   --smoke        tiny corpus + few queries; the CI equivalence gate
 *   WSEARCH_FAST=1 same as --smoke
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.hh"
#include "search/executor.hh"
#include "util/env.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

struct EngineRun
{
    double qps = 0;
    ExecStats stats;
    std::vector<SearchResponse> responses;
};

EngineRun
runEngine(QueryExecutor &ex, const std::vector<Query> &queries,
          ExecAlgo algo)
{
    EngineRun r;
    r.responses.reserve(queries.size());
    const uint64_t t0 = nowNs();
    for (const Query &q : queries) {
        SearchRequest req;
        req.query = q;
        req.algo = algo;
        r.responses.push_back(ex.execute(req));
        r.stats.merge(ex.lastStats());
    }
    const uint64_t dt = nowNs() - t0;
    r.qps = queries.size() / (static_cast<double>(dt) * 1e-9);
    return r;
}

void
checkEquivalent(const std::vector<Query> &queries,
                const EngineRun &pruned, const EngineRun &seq,
                const char *workload)
{
    for (size_t i = 0; i < queries.size(); ++i) {
        const auto &p = pruned.responses[i].docs;
        const auto &s = seq.responses[i].docs;
        bool same = p.size() == s.size();
        for (size_t j = 0; same && j < p.size(); ++j)
            same = p[j].doc == s[j].doc && p[j].score == s[j].score;
        if (!same) {
            std::fprintf(stderr,
                         "bench_leaf: %s query %zu: pruned result "
                         "differs from sequential\n",
                         workload, i);
            std::exit(1);
        }
    }
}

void
addRows(Table &t, const char *workload, const EngineRun &pruned,
        const EngineRun &seq)
{
    auto ratio = [](const ExecStats &s) {
        return s.postingsDecoded
            ? static_cast<double>(s.candidatesScored) /
                static_cast<double>(s.postingsDecoded)
            : 0.0;
    };
    t.addRow({workload, "sequential", Table::fmt(seq.qps, 0),
              Table::fmtInt(seq.stats.postingsDecoded),
              Table::fmtInt(seq.stats.candidatesScored),
              Table::fmt(ratio(seq.stats), 3), "1.00"});
    t.addRow({workload, "pruned", Table::fmt(pruned.qps, 0),
              Table::fmtInt(pruned.stats.postingsDecoded),
              Table::fmtInt(pruned.stats.candidatesScored),
              Table::fmt(ratio(pruned.stats), 3),
              Table::fmt(pruned.qps / seq.qps, 2)});
}

int
runBenchLeaf(bool smoke)
{
    CorpusConfig cc;
    cc.numDocs = smoke ? 20000 : 80000;
    cc.vocabSize = 20000;
    cc.avgDocLen = 120;
    std::printf("# bench_leaf: %u docs, %u terms%s\n", cc.numDocs,
                cc.vocabSize, smoke ? " (smoke)" : "");
    std::fflush(stdout);
    const CorpusGenerator corpus(cc);
    const MaterializedIndex index(corpus);

    QueryGenerator::Config qc;
    qc.vocabSize = cc.vocabSize;
    qc.distinctQueries = 1u << 16;
    qc.maxTerms = 4;
    QueryGenerator gen(qc);
    const uint64_t num_queries = smoke ? 200 : 2000;
    std::vector<Query> or_q, and_q;
    for (uint64_t i = 0; i < num_queries; ++i) {
        Query q = gen.materialize(i);
        q.topK = 10;
        q.conjunctive = false;
        or_q.push_back(q);
        q.conjunctive = true;
        and_q.push_back(q);
    }

    NullTouchSink sink;
    QueryExecutor ex(index, 0, &sink);
    // Warm the arena so steady-state has no allocation on either side.
    runEngine(ex, {or_q[0], and_q[0]}, ExecAlgo::kAuto);

    Table t({"Workload", "Engine", "QPS", "Postings decoded",
             "Candidates scored", "Scored/decoded", "Speedup"});
    const EngineRun or_seq = runEngine(ex, or_q, ExecAlgo::kSequential);
    const EngineRun or_pruned = runEngine(ex, or_q, ExecAlgo::kOr);
    checkEquivalent(or_q, or_pruned, or_seq, "OR");
    addRows(t, "OR", or_pruned, or_seq);

    const EngineRun and_seq =
        runEngine(ex, and_q, ExecAlgo::kSequential);
    const EngineRun and_pruned = runEngine(ex, and_q, ExecAlgo::kAnd);
    checkEquivalent(and_q, and_pruned, and_seq, "AND");
    addRows(t, "AND", and_pruned, and_seq);
    t.print();

    std::printf("\nblocks decoded/skipped: OR %llu/%llu, "
                "AND %llu/%llu; equivalence: %llu queries "
                "bit-identical\n",
                static_cast<unsigned long long>(
                    or_pruned.stats.blocksDecoded),
                static_cast<unsigned long long>(
                    or_pruned.stats.blocksSkipped),
                static_cast<unsigned long long>(
                    and_pruned.stats.blocksDecoded),
                static_cast<unsigned long long>(
                    and_pruned.stats.blocksSkipped),
                static_cast<unsigned long long>(2 * num_queries));

    bench::JsonWriter json;
    json.add("bench", std::string("leaf"));
    json.add("smoke", static_cast<uint64_t>(smoke ? 1 : 0));
    json.add("docs", static_cast<uint64_t>(cc.numDocs));
    json.add("queries_per_workload", num_queries);
    json.beginArray("workloads");
    const struct
    {
        const char *name;
        const EngineRun *pruned;
        const EngineRun *seq;
    } rows[] = {{"OR", &or_pruned, &or_seq},
                {"AND", &and_pruned, &and_seq}};
    for (const auto &row : rows) {
        json.beginObject();
        json.add("workload", std::string(row.name));
        json.add("sequential_qps", row.seq->qps);
        json.add("pruned_qps", row.pruned->qps);
        json.add("speedup", row.pruned->qps / row.seq->qps);
        json.add("postings_decoded",
                 row.pruned->stats.postingsDecoded);
        json.add("candidates_scored",
                 row.pruned->stats.candidatesScored);
        json.add("blocks_decoded", row.pruned->stats.blocksDecoded);
        json.add("blocks_skipped", row.pruned->stats.blocksSkipped);
        json.endObject();
    }
    json.endArray();
    json.add("equivalent_queries", 2 * num_queries);
    const std::string out = "BENCH_leaf.json";
    if (json.writeFile(out))
        std::printf("Results written to %s\n", out.c_str());
    return 0;
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    bool smoke = wsearch::fastMode();
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else {
            std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
            return 2;
        }
    }
    return wsearch::runBenchLeaf(smoke);
}
