/**
 * @file
 * Leaf query-execution microbenchmark: the pruned fast path (block
 * postings + skip-driven AND / MaxScore OR) against the sequential
 * reference executor (ExecAlgo::kSequential), same corpus, same
 * queries, single thread -- for BOTH posting codecs (delta+varint and
 * the SIMD bit-packed frame-of-reference blocks). Reports QPS,
 * postings decoded, candidates scored, and the scored/decoded ratio,
 * plus the packed-vs-varint QPS ratio that motivates the codec.
 *
 * Every query is executed on every engine x codec combination and the
 * result lists are compared bit-identically (doc ids, float scores,
 * order) against the varint sequential reference; any mismatch is
 * fatal, so both the pruning speedup and the packed-codec speedup
 * always stand for the same answers.
 *
 * Flags / env:
 *   --smoke        tiny corpus + few queries; the CI equivalence gate
 *   WSEARCH_FAST=1 same as --smoke
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.hh"
#include "search/executor.hh"
#include "util/env.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

struct EngineRun
{
    double qps = 0;
    ExecStats stats;
    std::vector<SearchResponse> responses;
};

EngineRun
runEngine(QueryExecutor &ex, const std::vector<Query> &queries,
          ExecAlgo algo)
{
    EngineRun r;
    r.responses.reserve(queries.size());
    const uint64_t t0 = nowNs();
    for (const Query &q : queries) {
        SearchRequest req;
        req.query = q;
        req.algo = algo;
        r.responses.push_back(ex.execute(req));
        r.stats.merge(ex.lastStats());
    }
    const uint64_t dt = nowNs() - t0;
    r.qps = queries.size() / (static_cast<double>(dt) * 1e-9);
    return r;
}

void
checkEquivalent(const std::vector<Query> &queries,
                const EngineRun &run, const EngineRun &ref,
                const char *what)
{
    for (size_t i = 0; i < queries.size(); ++i) {
        const auto &p = run.responses[i].docs;
        const auto &s = ref.responses[i].docs;
        bool same = p.size() == s.size();
        for (size_t j = 0; same && j < p.size(); ++j)
            same = p[j].doc == s[j].doc && p[j].score == s[j].score;
        if (!same) {
            std::fprintf(stderr,
                         "bench_leaf: %s query %zu: result differs "
                         "from the varint sequential reference\n",
                         what, i);
            std::exit(1);
        }
    }
}

double
scoredPerDecoded(const ExecStats &s)
{
    return s.postingsDecoded
        ? static_cast<double>(s.candidatesScored) /
            static_cast<double>(s.postingsDecoded)
        : 0.0;
}

/** All four engine runs of one workload on one codec's shard. */
struct CodecRuns
{
    EngineRun seq;
    EngineRun pruned;
};

int
runBenchLeaf(bool smoke)
{
    const double t0 = bench::nowSec();
    CorpusConfig cc;
    cc.numDocs = smoke ? 20000 : 80000;
    cc.vocabSize = 20000;
    cc.avgDocLen = 120;
    std::printf("# bench_leaf: %u docs, %u terms%s, simd %s\n",
                cc.numDocs, cc.vocabSize, smoke ? " (smoke)" : "",
                packed_simd::levelName(packed_simd::activeLevel()));
    std::fflush(stdout);
    const CorpusGenerator corpus(cc);
    // Same corpus, two layouts: every comparison below is the same
    // logical index in a different byte encoding.
    const MaterializedIndex varint(corpus, PostingCodec::kVarint);
    const MaterializedIndex packed(corpus, PostingCodec::kPacked);

    QueryGenerator::Config qc;
    qc.vocabSize = cc.vocabSize;
    qc.distinctQueries = 1u << 16;
    qc.maxTerms = 4;
    QueryGenerator gen(qc);
    const uint64_t num_queries = smoke ? 200 : 2000;
    std::vector<Query> or_q, and_q;
    for (uint64_t i = 0; i < num_queries; ++i) {
        Query q = gen.materialize(i);
        q.topK = 10;
        q.conjunctive = false;
        or_q.push_back(q);
        q.conjunctive = true;
        and_q.push_back(q);
    }

    NullTouchSink sink;
    QueryExecutor exv(varint, 0, &sink);
    QueryExecutor exp(packed, 0, &sink);
    // Warm the arenas so steady-state has no allocation on any side.
    runEngine(exv, {or_q[0], and_q[0]}, ExecAlgo::kAuto);
    runEngine(exp, {or_q[0], and_q[0]}, ExecAlgo::kAuto);

    Table t({"Workload", "Codec", "Engine", "QPS", "Postings decoded",
             "Candidates scored", "Scored/decoded", "Speedup"});
    bench::JsonWriter json;
    bench::beginStandardJson(json, "leaf", smoke);
    json.add("docs", static_cast<uint64_t>(cc.numDocs));
    json.add("queries_per_workload", num_queries);
    json.add("simd_level",
             std::string(packed_simd::levelName(
                 packed_simd::activeLevel())));
    json.beginArray("rows");

    uint64_t equivalent = 0, packed_blocks = 0;
    double packed_vs_varint_min = 1e300;
    const struct
    {
        const char *name;
        const std::vector<Query> *queries;
        ExecAlgo prunedAlgo;
    } workloads[] = {{"OR", &or_q, ExecAlgo::kOr},
                     {"AND", &and_q, ExecAlgo::kAnd}};
    for (const auto &w : workloads) {
        CodecRuns vr, pr;
        vr.seq = runEngine(exv, *w.queries, ExecAlgo::kSequential);
        vr.pruned = runEngine(exv, *w.queries, w.prunedAlgo);
        pr.seq = runEngine(exp, *w.queries, ExecAlgo::kSequential);
        pr.pruned = runEngine(exp, *w.queries, w.prunedAlgo);

        // One reference, three challengers: varint pruned, packed
        // sequential, packed pruned must all match bit-identically.
        checkEquivalent(*w.queries, vr.pruned, vr.seq, w.name);
        checkEquivalent(*w.queries, pr.seq, vr.seq, w.name);
        checkEquivalent(*w.queries, pr.pruned, vr.seq, w.name);
        equivalent += 3 * w.queries->size();
        packed_blocks += pr.pruned.stats.packedBlocksDecoded;

        const struct
        {
            const char *codec;
            const CodecRuns *runs;
        } sides[] = {{"varint", &vr}, {"packed", &pr}};
        for (const auto &side : sides) {
            const EngineRun &seq = side.runs->seq;
            const EngineRun &pruned = side.runs->pruned;
            t.addRow({w.name, side.codec, "sequential",
                      Table::fmt(seq.qps, 0),
                      Table::fmtInt(seq.stats.postingsDecoded),
                      Table::fmtInt(seq.stats.candidatesScored),
                      Table::fmt(scoredPerDecoded(seq.stats), 3),
                      Table::fmt(seq.qps / vr.seq.qps, 2)});
            t.addRow({w.name, side.codec, "pruned",
                      Table::fmt(pruned.qps, 0),
                      Table::fmtInt(pruned.stats.postingsDecoded),
                      Table::fmtInt(pruned.stats.candidatesScored),
                      Table::fmt(scoredPerDecoded(pruned.stats), 3),
                      Table::fmt(pruned.qps / vr.seq.qps, 2)});
            json.beginObject();
            json.add("workload", std::string(w.name));
            json.add("codec", std::string(side.codec));
            json.add("sequential_qps", seq.qps);
            json.add("pruned_qps", pruned.qps);
            json.add("speedup_vs_varint_seq", pruned.qps / vr.seq.qps);
            json.add("postings_decoded", pruned.stats.postingsDecoded);
            json.add("candidates_scored",
                     pruned.stats.candidatesScored);
            json.add("blocks_decoded", pruned.stats.blocksDecoded);
            json.add("blocks_skipped", pruned.stats.blocksSkipped);
            json.add("packed_blocks_decoded",
                     pruned.stats.packedBlocksDecoded);
            json.endObject();
        }
        packed_vs_varint_min = std::min(
            packed_vs_varint_min, pr.pruned.qps / vr.pruned.qps);
        std::printf("%s: packed/varint pruned QPS ratio %.2f\n",
                    w.name, pr.pruned.qps / vr.pruned.qps);
        std::fflush(stdout);
    }
    t.print();

    std::printf("\nequivalence: %llu comparisons bit-identical to the "
                "varint sequential reference; %llu packed blocks "
                "decoded\n",
                static_cast<unsigned long long>(equivalent),
                static_cast<unsigned long long>(packed_blocks));

    json.endArray();
    // Measured vs expected: bench_diff.py fails the run when these
    // disagree (the in-process gate already exits 1, but the pair
    // also catches a crashed/truncated run at diff time).
    json.add("equivalent_queries", equivalent);
    json.add("expected_equivalent_queries",
             static_cast<uint64_t>(6 * num_queries));
    json.add("packed_vs_varint_pruned_qps_min", packed_vs_varint_min);
    bench::finishStandardJson(json, "leaf", t0);
    return 0;
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    bool smoke = wsearch::fastMode();
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else {
            std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
            return 2;
        }
    }
    return wsearch::runBenchLeaf(smoke);
}
