/**
 * @file
 * Shared harness for the figure/table bench drivers: command-line
 * parsing (--smoke, --threads), the standard RunOptions/budget
 * boilerplate every driver used to duplicate, the SweepControl fed to
 * the parallel sweep engine, wall-clock timing, and a minimal JSON
 * emitter for machine-readable bench output (BENCH_*.json).
 *
 * Runtime knobs (see README.md):
 *   WSEARCH_SIM_THREADS  sweep worker threads (default: hardware
 *                        concurrency); --threads=N overrides
 *   --smoke              sampled-interval quick-look mode: periodic
 *                        warmup+measure windows instead of the full
 *                        contiguous replay; results are ESTIMATES and
 *                        are banner-labelled as sampled
 */

#ifndef WSEARCH_BENCH_COMMON_HH
#define WSEARCH_BENCH_COMMON_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiments.hh"

namespace wsearch {
namespace bench {

/** Command-line knobs shared by all drivers. */
struct Args
{
    bool smoke = false;   ///< sampled quick-look mode
    uint32_t threads = 0; ///< sweep workers; 0 = WSEARCH_SIM_THREADS
    /**
     * Representative-window sampling policy override
     * (--sampling=off|uniform|clustered). kOff means "driver default":
     * drivers that support representative sampling pick their own
     * policy (typically kClustered for nominal-scale sections).
     */
    SamplingPolicy policy = SamplingPolicy::kOff;
    bool policySet = false; ///< --sampling= was given explicitly
};

/** Parse --smoke / --threads=N / --sampling=off|uniform|clustered;
 *  unknown arguments are ignored. */
Args parseArgs(int argc, char **argv);

/**
 * SweepControl implied by @p args: worker threads plus, in smoke
 * mode, sampled intervals covering ~1/4 of each trace (budget-scaled
 * so WSEARCH_FAST smoke runs still get several windows).
 */
SweepControl sweepControl(const Args &args);

/**
 * SweepControl running representative-window sampling over
 * @p total_records with the default knobs (~96 windows, 12 sampled;
 * WSEARCH_SAMPLE_WINDOWS / WSEARCH_SAMPLE_CLUSTERS / WSEARCH_SAMPLE_SEED
 * override -- see README). Policy is @p fallback unless --sampling=
 * was given. This is what lets the fig6bc/fig13 capacity sweeps run
 * at full nominal working-set sizes: only ~1/4 of each trace is
 * simulated and every estimate carries a confidence band.
 */
SweepControl clusteredControl(const Args &args, uint64_t total_records,
                              SamplingPolicy fallback =
                                  SamplingPolicy::kClustered);

/**
 * The standard driver preamble: cores + nominal record budgets
 * (warmup 0 = half the measure budget, the repo-wide default).
 */
RunOptions baseOptions(uint32_t cores, uint64_t measure_records,
                       uint64_t warmup_records = 0);

/**
 * printBanner plus the sampled-mode notice when @p args.smoke: any
 * numbers printed under a sampled banner are estimates.
 */
void banner(const Args &args, const std::string &experiment_id,
            const std::string &description);

/** Monotonic wall clock in seconds. */
double nowSec();

/**
 * Git revision the binary is benchmarking: WSEARCH_GIT_SHA if set,
 * else GITHUB_SHA (what CI exports), else "unknown". Baked into every
 * BENCH_*.json so scripts/bench_diff.py can tell which two revisions
 * it is comparing.
 */
std::string gitSha();

/**
 * Minimal JSON object writer for BENCH_*.json artifacts. Values are
 * emitted in insertion order; nested arrays of objects supported via
 * beginArray/add/endArray.
 */
class JsonWriter
{
  public:
    void add(const std::string &key, double value);
    void add(const std::string &key, uint64_t value);
    void add(const std::string &key, const std::string &value);
    void beginArray(const std::string &key);
    void beginObject();
    void endObject();
    void endArray();

    /** Write the accumulated object to @p path; returns success. */
    bool writeFile(const std::string &path) const;

    std::string str() const;

  private:
    void comma();
    std::string out_ = "{";
    bool needComma_ = false;
};

/**
 * The uniform BENCH_*.json preamble every driver emits first:
 *   schema_version  bumped when the shared key set changes
 *   bench           @p bench_name
 *   smoke           1 when the run is the sampled/smoke quick-look
 *   git_sha         gitSha()
 * Driver-specific config and measured/expected counters follow, and
 * finishStandardJson() closes the object. Keeping the frame uniform is
 * what lets bench_all.sh aggregate and bench_diff.py gate without
 * per-bench special cases.
 */
void beginStandardJson(JsonWriter &json, const std::string &bench_name,
                       bool smoke);

/**
 * Append "wall_time_sec" (nowSec() - @p t0_sec) and write the object
 * to BENCH_<bench_name>.json, echoing the path on success. Returns
 * the write status.
 */
bool finishStandardJson(JsonWriter &json,
                        const std::string &bench_name, double t0_sec);

} // namespace bench
} // namespace wsearch

#endif // WSEARCH_BENCH_COMMON_HH
