/**
 * @file
 * Reproduces paper Figure 14 and the §IV-C headline numbers: QPS
 * improvement over the 18-core / 45 MiB PLT1 baseline when combining
 * the L3-for-cores rebalancing (23 cores, 1 MiB/core) with the
 * latency-optimized eDRAM L4, across four scenarios:
 *   Baseline     40 ns L4 hit, parallel tag check (no miss penalty)
 *   Pessimistic  60 ns hit, +5 ns serialized miss
 *   Associative  fully-associative L4 (conflict-miss sensitivity)
 *   Future       +10% memory latency and +10% last-level misses
 * Paper: +14% from rightsizing alone; +27% with a 1 GiB L4; +30% at
 * 8 GiB; +38% in the future scenario. Also checks the synergy note:
 * the smaller L3 makes the L4 hotter.
 *
 * Methodology: L3 hit rates and the composition of the L3-miss stream
 * come from the Table-I-calibrated native profile (directly
 * simulable at 23/45 MiB); the GiB-scale L4's per-kind hit rates come
 * from the 1/32-scale sweep profile and are reweighted by the native
 * miss composition. The QPS model is the paper's Eq. 1.
 *
 * All 15 simulator configurations (two L3 points, two 6-point L4
 * curves, the synergy run) share one trace buffer and replay it
 * concurrently through the sweep engine.
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "core/l4_evaluator.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

struct NativePoint
{
    double hitL3 = 0;
    double missShare[kNumAccessKinds] = {}; ///< L3-miss composition
};

NativePoint
nativePoint(const SystemResult &r)
{
    NativePoint p;
    p.hitL3 = r.l3DataHitRate();
    const double total = static_cast<double>(r.l3.totalMisses());
    for (uint32_t k = 0; k < kNumAccessKinds; ++k)
        p.missShare[k] = total > 0 ? r.l3.misses[k] / total : 0.0;
    return p;
}

void
runFig14(const bench::Args &args)
{
    bench::banner(args, "Figure 14",
                  "Combined L4 + cache-for-cores evaluation");
    const WorkloadProfile sweep = WorkloadProfile::s1LeafSweep();
    const PlatformConfig plt1 = PlatformConfig::plt1();
    const uint32_t scale = sweep.sweepScale;
    const std::vector<uint64_t> l4_paper_sizes = {
        128 * MiB, 256 * MiB, 512 * MiB, 1 * GiB, 2 * GiB, 8 * GiB};

    // One batch for every configuration this figure needs.
    auto base = [&] {
        return bench::baseOptions(16, 20'000'000, 48'000'000);
    };
    std::vector<RunOptions> options;
    // [0], [1]: the two L3 designs.
    for (const uint64_t paper : {45 * MiB, 23 * MiB}) {
        RunOptions opt = base();
        opt.l3Bytes = paper / scale;
        options.push_back(opt);
    }
    // [2..7] direct-mapped and [8..13] fully-associative L4 curves.
    for (const bool assoc : {false, true}) {
        for (const uint64_t paper_size : l4_paper_sizes) {
            RunOptions opt = base();
            opt.l3Bytes = (23 * MiB) / scale;
            opt.l4 = cache_gen_victim(paper_size / scale, 64, assoc);
            options.push_back(opt);
        }
    }
    // [14]: the synergy check (same L4 behind the bigger L3).
    {
        RunOptions syn = base();
        syn.l3Bytes = (45 * MiB) / scale;
        syn.l4 = cache_gen_victim((1 * GiB) / scale, 64);
        options.push_back(syn);
    }
    const std::vector<SystemResult> results =
        runWorkloadSweep(sweep, plt1, options, bench::sweepControl(args));

    // 1. L3 behaviour at the two designs (sweep scale).
    const NativePoint base45 = nativePoint(results[0]);
    const NativePoint right23 = nativePoint(results[1]);
    std::printf("hL3(data): baseline(45 MiB-eq) = %.3f, rightsized"
                "(23 MiB-eq) = %.3f\n", base45.hitL3, right23.hitL3);
    std::printf("L3-miss composition (23 MiB-eq): code %.0f%%, "
                "heap %.0f%%, shard %.0f%%\n",
                100 * right23.missShare[0], 100 * right23.missShare[1],
                100 * right23.missShare[2]);

    // 2. L4 hit rates from the sweep profile (data accesses).
    L4EvalInputs in;
    in.baselineHitL3 = base45.hitL3;
    in.rightsizedHitL3 = right23.hitL3;
    for (size_t i = 0; i < l4_paper_sizes.size(); ++i) {
        in.l4Direct.addPoint(l4_paper_sizes[i],
                             results[2 + i].l4.hitRateTotal());
        in.l4Assoc.addPoint(l4_paper_sizes[i],
                            results[8 + i].l4.hitRateTotal());
    }
    std::printf("Reweighted L4 hit rate at 1 GiB: %.1f%% (paper: "
                "filters ~50%% of DRAM accesses)\n\n",
                100.0 * in.l4Direct.hitRate(1 * GiB));

    const AmatModel amat;
    const L4Evaluator eval(in, amat, IpcModel::paperEq1());

    std::printf("Rightsizing alone (23 cores, 23 MiB L3): %+.1f%% "
                "(paper: +14%%)\n\n",
                eval.rightsizeOnlyImprovement() * 100.0);

    Table t({"Scenario", "128 MiB", "256 MiB", "512 MiB", "1 GiB",
             "2 GiB"});
    for (const L4Scenario &sc :
         {L4Scenario::baseline(), L4Scenario::pessimistic(),
          L4Scenario::associativeL4(), L4Scenario::futureGen()}) {
        std::vector<std::string> row = {sc.name};
        for (const uint64_t size :
             {128 * MiB, 256 * MiB, 512 * MiB, 1 * GiB, 2 * GiB}) {
            row.push_back(
                Table::fmtPct(eval.improvement(sc, size), 1));
        }
        t.addRow(row);
    }
    t.print();

    std::printf("\nHeadlines: 1 GiB baseline %+.1f%% (paper +27%%); "
                "8 GiB %+.1f%% (paper +30%%); future 1 GiB %+.1f%% "
                "(paper +38%%).\n",
                eval.improvement(L4Scenario::baseline(), 1 * GiB) * 100,
                eval.improvement(L4Scenario::baseline(), 8 * GiB) * 100,
                eval.improvement(L4Scenario::futureGen(), 1 * GiB) *
                    100);

    // Synergy check (§IV-C): with the bigger 45 MiB-eq L3 in front,
    // the same L4 sees colder traffic and hits less.
    const SystemResult &r_big = results[14];
    std::printf("\nSynergy: 1 GiB L4 hit rate behind 23 MiB L3 = "
                "%.1f%%, behind 45 MiB L3 = %.1f%% (paper: ~10%% "
                "hotter behind the rightsized L3).\n",
                100.0 * in.l4Direct.hitRate(1 * GiB),
                100.0 * r_big.l4.hitRateTotal());
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    wsearch::runFig14(wsearch::bench::parseArgs(argc, argv));
    return 0;
}
