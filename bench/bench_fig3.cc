/**
 * @file
 * Reproduces paper Figure 3: the first two levels of the Top-Down
 * breakdown for an S1 leaf on PLT1. The paper's headline: only 32% of
 * issue slots retire; back-end memory (20.5%), branch mispredictions
 * (15.4%) and front-end latency (13.8%) dominate the waste.
 */

#include <cstdio>

#include "common.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

void
runFig3(const bench::Args &args)
{
    bench::banner(args, "Figure 3",
                  "Top-Down breakdown of an S1 leaf on PLT1");
    const SystemResult r =
        runWorkloadSweep(WorkloadProfile::s1Leaf(),
                         PlatformConfig::plt1(),
                         {bench::baseOptions(16, 24'000'000)},
                         bench::sweepControl(args))
            .front();
    const TopDown &td = r.topdown;

    Table t({"Category", "Measured", "Paper"});
    t.addRow({"Retiring", Table::fmtPct(td.retiringFrac(), 1), "32.0%"});
    t.addRow({"Bad speculation", Table::fmtPct(td.badSpecFrac(), 1),
              "15.4%"});
    t.addRow({"Front-end: latency", Table::fmtPct(td.feLatFrac(), 1),
              "13.8%"});
    t.addRow({"Front-end: bandwidth", Table::fmtPct(td.feBwFrac(), 1),
              "9.7%"});
    t.addRow({"Back-end: memory", Table::fmtPct(td.beMemFrac(), 1),
              "20.5%"});
    t.addRow({"Back-end: core", Table::fmtPct(td.beCoreFrac(), 1),
              "8.5%"});
    t.print();
    std::printf("\nPer-thread IPC: %.2f (paper: 1.27)\n",
                r.ipcPerThread);

    // The paper's §II-F upper bound: converting all back-end memory
    // slots into retiring slots would gain ~64%.
    const double upper = td.beMemFrac() / td.retiringFrac();
    std::printf("Upper-bound gain from eliminating memory stalls: "
                "%.0f%% (paper: ~64%%)\n", upper * 100.0);
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    wsearch::runFig3(wsearch::bench::parseArgs(argc, argv));
    return 0;
}
