/**
 * @file
 * Live-index ingest benchmark: sustained add+commit rate into a
 * LiveIndex, query latency against a quiesced snapshot, and the mixed
 * phase -- queries racing a full-speed writer with the background
 * MergeWorker compacting segments underneath. Reports docs/s, query
 * p50/p99, and merge counters; the mixed-phase p99 is the "what does
 * ingest cost the reader" number.
 *
 * Flags / env:
 *   --smoke        small corpus + short phases; the CI gate
 *   WSEARCH_FAST=1 same as --smoke
 *
 * Output: human table on stdout plus BENCH_ingest.json.
 */

#include <atomic>
#include <cstdio>
#include <random>
#include <thread>
#include <vector>

#include "common.hh"
#include "search/live/live_index.hh"
#include "search/live/merge_worker.hh"
#include "search/live/snapshot_search.hh"
#include "serve/latency_histogram.hh"
#include "util/env.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

constexpr TermId kVocab = 50'000;
constexpr uint32_t kTermsPerDoc = 8;
constexpr uint32_t kCommitBatch = 1000;

std::vector<TermId>
docTerms(std::mt19937_64 &rng)
{
    std::vector<TermId> t(kTermsPerDoc);
    for (TermId &x : t)
        x = static_cast<TermId>(rng() % kVocab);
    return t;
}

SearchRequest
randomQuery(std::mt19937_64 &rng)
{
    SearchRequest req;
    req.query.id = rng();
    req.query.terms.resize(2 + rng() % 3);
    for (TermId &t : req.query.terms)
        t = static_cast<TermId>(rng() % kVocab);
    req.query.topK = 10;
    return req;
}

struct IngestResult
{
    double docsPerSec = 0;
    double wallSec = 0;
};

/** Add+commit @p num_docs docs starting at id @p first. */
IngestResult
runIngest(LiveIndex &idx, DocId first, uint32_t num_docs,
          uint64_t rng_seed)
{
    std::mt19937_64 rng(rng_seed);
    const double t0 = bench::nowSec();
    for (uint32_t i = 0; i < num_docs; ++i) {
        idx.add(first + i, docTerms(rng));
        if ((i + 1) % kCommitBatch == 0)
            idx.commit();
    }
    idx.commit();
    IngestResult r;
    r.wallSec = bench::nowSec() - t0;
    r.docsPerSec = num_docs / r.wallSec;
    return r;
}

struct QueryResult
{
    double qps = 0;
    double p50Us = 0;
    double p99Us = 0;
    uint64_t queries = 0;
};

/** Run queries against live snapshots until @p stop (or @p max_q). */
QueryResult
runQueries(const LiveIndex &idx, uint64_t max_q, uint64_t rng_seed,
           const std::atomic<bool> *stop = nullptr)
{
    SnapshotSearcher searcher(0);
    std::mt19937_64 rng(rng_seed);
    LatencyHistogram hist;
    const double t0 = bench::nowSec();
    uint64_t n = 0;
    for (; n < max_q && (!stop || !stop->load()); ++n) {
        const SearchRequest req = randomQuery(rng);
        const auto snap = idx.snapshot();
        const double q0 = bench::nowSec();
        searcher.search(*snap, req);
        hist.record(static_cast<uint64_t>(
            (bench::nowSec() - q0) * 1e9));
    }
    QueryResult r;
    r.queries = n;
    r.qps = n / (bench::nowSec() - t0);
    r.p50Us = hist.quantile(0.50) * 1e-3;
    r.p99Us = hist.quantile(0.99) * 1e-3;
    return r;
}

int
runBenchIngest(bool smoke)
{
    const double t0 = bench::nowSec();
    const uint32_t num_docs = smoke ? 20'000 : 200'000;
    const uint64_t num_queries = smoke ? 2'000 : 20'000;
    std::printf("# bench_ingest: %u docs, %u terms/doc%s\n", num_docs,
                kTermsPerDoc, smoke ? " (smoke)" : "");
    std::fflush(stdout);

    LiveConfig cfg;
    cfg.mergeTriggerSegments = 8;
    cfg.mergeFanIn = 8;

    // Phase 1: ingest-only, merges deferred -- the raw ack rate.
    LiveIndex ingest_idx(cfg);
    const IngestResult ingest =
        runIngest(ingest_idx, 1, num_docs, /*rng_seed=*/1);

    // Compact so phase 2 queries a merged steady-state index.
    while (ingest_idx.mergePending())
        ingest_idx.mergeOnce();

    // Phase 2: query-only against the quiesced snapshot.
    const QueryResult quiet =
        runQueries(ingest_idx, num_queries, /*rng_seed=*/2);

    // Phase 3: queries racing a full-speed writer, background merges
    // on. The writer updates into the already-populated doc space, so
    // segments accumulate tombstones and the MergeWorker has real
    // compaction work.
    std::atomic<bool> writer_done{false};
    IngestResult mixed_ingest;
    QueryResult mixed;
    {
        MergeWorker::Config mc;
        MergeWorker merger(ingest_idx, mc);
        std::thread writer([&] {
            mixed_ingest =
                runIngest(ingest_idx, 1, num_docs, /*rng_seed=*/3);
            writer_done.store(true);
        });
        mixed = runQueries(ingest_idx, ~0ull, /*rng_seed=*/4,
                           &writer_done);
        writer.join();
        merger.stop();
    }
    const LiveStats stats = ingest_idx.stats();

    Table t({"Phase", "Docs/s", "QPS", "p50 (us)", "p99 (us)"});
    t.addRow({"ingest-only", Table::fmt(ingest.docsPerSec, 0), "-",
              "-", "-"});
    t.addRow({"query-only", "-", Table::fmt(quiet.qps, 0),
              Table::fmt(quiet.p50Us, 1), Table::fmt(quiet.p99Us, 1)});
    t.addRow({"mixed", Table::fmt(mixed_ingest.docsPerSec, 0),
              Table::fmt(mixed.qps, 0), Table::fmt(mixed.p50Us, 1),
              Table::fmt(mixed.p99Us, 1)});
    t.print();
    std::printf("\nlive docs %llu, segments %u, merges %llu "
                "(%llu crashed), version %llu\n",
                static_cast<unsigned long long>(stats.liveDocs),
                stats.segments,
                static_cast<unsigned long long>(stats.merges),
                static_cast<unsigned long long>(stats.mergesCrashed),
                static_cast<unsigned long long>(stats.version));

    bench::JsonWriter json;
    bench::beginStandardJson(json, "ingest", smoke);
    json.add("docs", static_cast<uint64_t>(num_docs));
    json.add("terms_per_doc", static_cast<uint64_t>(kTermsPerDoc));
    json.add("commit_batch", static_cast<uint64_t>(kCommitBatch));
    json.add("ingest_docs_per_sec", ingest.docsPerSec);
    json.add("ingest_wall_sec", ingest.wallSec);
    json.add("query_only_qps", quiet.qps);
    json.add("query_only_p50_us", quiet.p50Us);
    json.add("query_only_p99_us", quiet.p99Us);
    json.add("mixed_docs_per_sec", mixed_ingest.docsPerSec);
    json.add("mixed_qps", mixed.qps);
    json.add("mixed_p50_us", mixed.p50Us);
    json.add("mixed_p99_us", mixed.p99Us);
    json.add("mixed_queries", mixed.queries);
    json.add("live_docs", stats.liveDocs);
    json.add("segments", static_cast<uint64_t>(stats.segments));
    json.add("merges", stats.merges);
    json.add("final_version", stats.version);
    bench::finishStandardJson(json, "ingest", t0);

    // The acceptance floor: sustained ingest of 10k docs/s. The
    // in-memory buffer acks orders of magnitude faster; a miss here
    // means an accidental O(n^2) crept into commit or publish.
    if (ingest.docsPerSec < 10'000.0) {
        std::printf("\nFAIL: ingest %.0f docs/s below the 10k "
                    "floor\n",
                    ingest.docsPerSec);
        return 1;
    }
    return 0;
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    const wsearch::bench::Args args =
        wsearch::bench::parseArgs(argc, argv);
    return wsearch::runBenchIngest(args.smoke ||
                                   wsearch::fastMode());
}
