/**
 * @file
 * Reproduces paper Figure 7b: per-level MPKI as the cache block size
 * sweeps 32..1024 bytes at fixed byte capacities. The paper finds the
 * 64 B baseline captures most spatial locality; larger lines give
 * limited benefit (consistent with the modest prefetcher gains).
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

void
runFig7b(const bench::Args &args)
{
    bench::banner(args, "Figure 7b",
                  "MPKI vs cache block size (all levels)");
    const std::vector<uint32_t> blocks = {32, 64, 128, 256, 512, 1024};
    std::vector<RunOptions> options;
    for (const uint32_t block : blocks) {
        RunOptions opt = bench::baseOptions(16, 16'000'000);
        opt.blockBytes = block;
        options.push_back(opt);
    }
    const std::vector<SystemResult> results =
        runWorkloadSweep(WorkloadProfile::s1Leaf(),
                         PlatformConfig::plt1(), options,
                         bench::sweepControl(args));

    Table t({"Block", "L1-I MPKI", "L1-D MPKI", "L2 MPKI", "L3 MPKI"});
    for (size_t j = 0; j < blocks.size(); ++j) {
        const SystemResult &r = results[j];
        const uint64_t i = r.instructions;
        t.addRow({formatBytes(blocks[j]),
                  Table::fmt(r.l1i.mpkiTotal(i), 2),
                  Table::fmt(r.l1d.mpkiTotal(i), 2),
                  Table::fmt(r.l2.mpkiTotal(i), 2),
                  Table::fmt(r.l3.mpkiTotal(i), 2)});
    }
    t.print();
    std::printf("\nPaper: MPKI shrinks with block size (sequential "
                "code and shard runs), but most of the benefit is "
                "already captured at 64 B; the incremental gain of "
                "bigger lines is limited.\n");
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    wsearch::runFig7b(wsearch::bench::parseArgs(argc, argv));
    return 0;
}
