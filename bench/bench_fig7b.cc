/**
 * @file
 * Reproduces paper Figure 7b: per-level MPKI as the cache block size
 * sweeps 32..1024 bytes at fixed byte capacities. The paper finds the
 * 64 B baseline captures most spatial locality; larger lines give
 * limited benefit (consistent with the modest prefetcher gains).
 */

#include <cstdio>

#include "core/experiments.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

void
runFig7b()
{
    printBanner("Figure 7b", "MPKI vs cache block size (all levels)");
    Table t({"Block", "L1-I MPKI", "L1-D MPKI", "L2 MPKI", "L3 MPKI"});
    for (uint32_t block : {32u, 64u, 128u, 256u, 512u, 1024u}) {
        RunOptions opt;
        opt.cores = 16;
        opt.blockBytes = block;
        opt.measureRecords = 16'000'000;
        const SystemResult r = runWorkload(WorkloadProfile::s1Leaf(),
                                           PlatformConfig::plt1(), opt);
        const uint64_t i = r.instructions;
        t.addRow({formatBytes(block), Table::fmt(r.l1i.mpkiTotal(i), 2),
                  Table::fmt(r.l1d.mpkiTotal(i), 2),
                  Table::fmt(r.l2.mpkiTotal(i), 2),
                  Table::fmt(r.l3.mpkiTotal(i), 2)});
        std::fflush(stdout);
    }
    t.print();
    std::printf("\nPaper: MPKI shrinks with block size (sequential "
                "code and shard runs), but most of the benefit is "
                "already captured at 64 B; the incremental gain of "
                "bigger lines is limited.\n");
}

} // namespace
} // namespace wsearch

int
main()
{
    wsearch::runFig7b();
    return 0;
}
