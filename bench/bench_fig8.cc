/**
 * @file
 * Reproduces paper Figures 8a/8b: IPC as a function of L3 hit rate
 * (varied with CAT way-partitioning) and of L3 AMAT, plus the linear
 * refit of the paper's Eq. 1 (IPC = -8.62e-3 * AMAT + 1.78). The
 * linearity is the paper's evidence of low memory-level parallelism,
 * and the fitted model powers all the §IV design-space evaluations.
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "core/amat_model.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

void
runFig8(const bench::Args &args)
{
    bench::banner(args, "Figure 8",
                  "IPC vs L3 hit rate / AMAT via CAT partitioning");
    const PlatformConfig plt1 = PlatformConfig::plt1();
    // CAT on the 45 MiB L3 is exercised at 1/32 scale on the sweep
    // profile (see DESIGN.md: GiB-era locality cannot be warmed at
    // native rates within feasible trace lengths).
    const WorkloadProfile prof = WorkloadProfile::s1LeafSweep();
    const uint32_t scale = prof.sweepScale;

    std::vector<uint32_t> way_counts;
    std::vector<RunOptions> options;
    for (uint32_t ways = 2; ways <= 20; ways += 2) {
        RunOptions opt = bench::baseOptions(16, 16'000'000, 32'000'000);
        opt.l3Bytes = plt1.l3Bytes / scale;
        opt.l3PartitionWays = ways;
        way_counts.push_back(ways);
        options.push_back(opt);
    }
    const std::vector<SystemResult> results =
        runWorkloadSweep(prof, plt1, options, bench::sweepControl(args));

    Table t({"CAT ways", "L3 (paper-eq)", "L3 data hit rate",
             "AMAT (ns)", "IPC"});
    std::vector<double> amats, ipcs;
    for (size_t i = 0; i < way_counts.size(); ++i) {
        const SystemResult &r = results[i];
        t.addRow({Table::fmtInt(way_counts[i]),
                  formatBytes(plt1.l3Bytes / 20 * way_counts[i]),
                  Table::fmtPct(r.l3DataHitRate(), 1),
                  Table::fmt(r.amatL3Ns, 1),
                  Table::fmt(r.ipcPerThread, 3)});
        amats.push_back(r.amatL3Ns);
        ipcs.push_back(r.ipcPerThread);
    }
    t.print();

    const IpcModel fitted = IpcModel::fit(amats, ipcs);
    const LinearFit quality = fitLinear(amats, ipcs);
    std::printf("\nFitted linear model: IPC = %.3e * AMAT + %.3f "
                "(r^2 = %.4f)\n",
                fitted.slope, fitted.intercept, quality.r2);
    std::printf("Paper Eq. 1:         IPC = -8.620e-03 * AMAT + 1.780\n");
    std::printf("The strong linear fit (r^2 ~ 1) reproduces the "
                "paper's low-MLP conclusion; slope magnitude depends "
                "on the calibrated exposure factors.\n");
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    wsearch::runFig8(wsearch::bench::parseArgs(argc, argv));
    return 0;
}
