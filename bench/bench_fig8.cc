/**
 * @file
 * Reproduces paper Figures 8a/8b: IPC as a function of L3 hit rate
 * (varied with CAT way-partitioning) and of L3 AMAT, plus the linear
 * refit of the paper's Eq. 1 (IPC = -8.62e-3 * AMAT + 1.78). The
 * linearity is the paper's evidence of low memory-level parallelism,
 * and the fitted model powers all the §IV design-space evaluations.
 *
 * Two sections:
 *   scaled   the CAT ladder (2..20 ways) on the 1/32-scale L3,
 *            replayed exactly -- the continuity rows
 *            scripts/bench_diff.py gates.
 *   nominal  a ways subset on the REAL 45 MiB L3 at full nominal
 *            working-set sizes under clustered representative
 *            sampling; every row carries its confidence band.
 *
 * Emits BENCH_fig8.json in the standard frame (see
 * bench::beginStandardJson) for bench_all.sh aggregation and
 * bench_diff.py gating.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common.hh"
#include "core/amat_model.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

void
addWayRow(bench::JsonWriter &json, const char *section, uint32_t ways,
          uint64_t sim_bytes, const SystemResult &r)
{
    json.beginObject();
    json.add("section", std::string(section));
    json.add("ways", static_cast<uint64_t>(ways));
    json.add("l3_sim_bytes", sim_bytes);
    json.add("instructions", r.instructions);
    json.add("l3_accesses", r.l3.totalAccesses());
    json.add("l3_misses", r.l3.totalMisses());
    json.add("data_hit", r.l3DataHitRate());
    json.add("amat_ns", r.amatL3Ns);
    json.add("ipc", r.ipcPerThread);
    json.add("sampled_windows", r.sampledWindows);
    json.add("represented_windows", r.representedWindows);
    json.add("band_lo", r.l3MissBandLo());
    json.add("band_hi", r.l3MissBandHi());
    json.add("band_rel", r.bandRelHalfWidth());
    json.endObject();
}

void
printWayTable(const PlatformConfig &plt1,
              const std::vector<uint32_t> &way_counts,
              const std::vector<SystemResult> &results, bool banded)
{
    std::vector<std::string> cols = {"CAT ways", "L3 (paper-eq)",
                                     "L3 data hit rate", "AMAT (ns)",
                                     "IPC"};
    if (banded)
        cols.push_back("LLC miss band (95%)");
    Table t(cols);
    for (size_t i = 0; i < way_counts.size(); ++i) {
        const SystemResult &r = results[i];
        std::vector<std::string> row = {
            Table::fmtInt(way_counts[i]),
            formatBytes(plt1.l3Bytes / 20 * way_counts[i]),
            Table::fmtPct(r.l3DataHitRate(), 1),
            Table::fmt(r.amatL3Ns, 1), Table::fmt(r.ipcPerThread, 3)};
        if (banded) {
            char buf[64];
            std::snprintf(buf, sizeof buf, "%.3g..%.3g (+-%.1f%%)",
                          r.l3MissBandLo(), r.l3MissBandHi(),
                          100.0 * r.bandRelHalfWidth());
            row.push_back(buf);
        }
        t.addRow(row);
    }
    t.print();
}

void
runFig8(const bench::Args &args)
{
    const double t0 = bench::nowSec();
    bench::banner(args, "Figure 8",
                  "IPC vs L3 hit rate / AMAT via CAT partitioning "
                  "(1/32-scale ladder + clustered nominal-scale "
                  "points)");
    const PlatformConfig plt1 = PlatformConfig::plt1();
    // CAT on the 45 MiB L3 is exercised at 1/32 scale on the sweep
    // profile (see DESIGN.md: GiB-era locality cannot be warmed at
    // native rates within feasible trace lengths).
    const WorkloadProfile prof = WorkloadProfile::s1LeafSweep();
    const uint32_t scale = prof.sweepScale;

    bench::JsonWriter json;
    bench::beginStandardJson(json, "fig8", args.smoke);
    json.add("cores", static_cast<uint64_t>(16));

    // --- scaled: the CAT ladder at 1/32 scale, exact replay ---
    std::vector<uint32_t> way_counts;
    std::vector<RunOptions> options;
    for (uint32_t ways = 2; ways <= 20; ways += 2) {
        RunOptions opt = bench::baseOptions(16, 16'000'000, 32'000'000);
        opt.l3Bytes = plt1.l3Bytes / scale;
        opt.l3PartitionWays = ways;
        way_counts.push_back(ways);
        options.push_back(opt);
    }
    json.add("scaled_measure_records", recordBudget(options[0]).measure);
    json.add("scaled_warmup_records", recordBudget(options[0]).warmup);
    const std::vector<SystemResult> results =
        runWorkloadSweep(prof, plt1, options, bench::sweepControl(args));
    printWayTable(plt1, way_counts, results, false);

    std::vector<double> amats, ipcs;
    for (const SystemResult &r : results) {
        amats.push_back(r.amatL3Ns);
        ipcs.push_back(r.ipcPerThread);
    }
    const IpcModel fitted = IpcModel::fit(amats, ipcs);
    const LinearFit quality = fitLinear(amats, ipcs);
    std::printf("\nFitted linear model: IPC = %.3e * AMAT + %.3f "
                "(r^2 = %.4f)\n",
                fitted.slope, fitted.intercept, quality.r2);
    std::printf("Paper Eq. 1:         IPC = -8.620e-03 * AMAT + 1.780\n");
    std::printf("The strong linear fit (r^2 ~ 1) reproduces the "
                "paper's low-MLP conclusion; slope magnitude depends "
                "on the calibrated exposure factors.\n\n");
    json.add("fit_slope", fitted.slope);
    json.add("fit_intercept", fitted.intercept);
    json.add("fit_r2", quality.r2);

    // --- nominal: a ways subset on the REAL 45 MiB L3 at full
    //     paper-scale working sets under clustered sampling ---
    const WorkloadProfile nominal = prof.atNominalScale();
    std::vector<uint32_t> nom_ways;
    if (args.smoke)
        nom_ways = {4, 20};
    else
        nom_ways = {2, 8, 14, 20};
    std::vector<RunOptions> nom_options;
    for (const uint32_t ways : nom_ways) {
        RunOptions opt = bench::baseOptions(16, 24'000'000, 12'000'000);
        opt.l3Bytes = plt1.l3Bytes;
        opt.l3PartitionWays = ways;
        nom_options.push_back(opt);
    }
    const RecordBudget nom_budget = recordBudget(nom_options[0]);
    const SweepControl nom_control =
        bench::clusteredControl(args, nom_budget.total());
    json.add("nominal_measure_records", nom_budget.measure);
    json.add("nominal_warmup_records", nom_budget.warmup);
    json.add("sampling_policy",
             std::string(samplingPolicyName(nom_control.policy)));
    json.add("sample_window_records", nom_control.rep.windowRecords);
    json.add("sample_clusters",
             static_cast<uint64_t>(nom_control.rep.sampleWindows));
    json.add("sample_seed", sampleSeed(nom_control.rep.seed));

    std::printf("Nominal-scale points (%s sampling; full 45 MiB L3, "
                "%s heap tail, %s shard span)\n",
                samplingPolicyName(nom_control.policy),
                formatBytes(nominal.heapWorkingSetBytes).c_str(),
                formatBytes(nominal.shardSpanBytes).c_str());
    const std::vector<SystemResult> nom_results =
        runWorkloadSweep(nominal, plt1, nom_options, nom_control);
    printWayTable(plt1, nom_ways, nom_results, true);

    json.beginArray("rows");
    for (size_t i = 0; i < way_counts.size(); ++i)
        addWayRow(json, "scaled", way_counts[i],
                  plt1.l3Bytes / scale, results[i]);
    for (size_t i = 0; i < nom_ways.size(); ++i)
        addWayRow(json, "nominal", nom_ways[i], plt1.l3Bytes,
                  nom_results[i]);
    json.endArray();

    bench::finishStandardJson(json, "fig8", t0);
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    wsearch::runFig8(wsearch::bench::parseArgs(argc, argv));
    return 0;
}
