/**
 * @file
 * Reproduces the paper's §V Discussion analyses and the §IV "Power
 * and Energy" accounting:
 *
 *  1. Split I/D L2 (§V): partitioning the unified L2 between
 *     instructions and data improves the L2 instruction hit rate but
 *     loses as much on the data side -- the paper concludes it is
 *     unlikely to be beneficial.
 *  2. Power/energy (§IV-C): the cache-for-cores trade is roughly
 *     energy-neutral; the 23-core design costs ~19% more socket power
 *     for ~27% more QPS (within commercial TDP limits); the L4
 *     filters about half the DRAM accesses at lower eDRAM energy.
 *  3. Iso-power alternative: 18 cores with 1 MiB/core keeps
 *     performance within ~5% of baseline while shrinking core+cache
 *     area by ~23%.
 */

#include <cstdio>

#include "core/area_model.hh"
#include "core/experiments.hh"
#include "core/power_model.hh"
#include "trace/synthetic.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

void
splitL2Study()
{
    std::printf("--- Split I/D L2 (paper SV) ---\n");
    const PlatformConfig plt1 = PlatformConfig::plt1();
    const WorkloadProfile prof = WorkloadProfile::s1Leaf();

    Table t({"L2 organization", "L2-I MPKI", "L2-D MPKI", "IPC"});
    for (uint32_t iways : {0u, 2u, 4u, 6u}) {
        SystemConfig cfg = plt1.system(prof, 16);
        cfg.hierarchy.l2InstrPartitionWays = iways;
        SyntheticSearchTrace trace(prof, 16);
        SystemSimulator sim(cfg);
        const uint64_t n = traceBudget(20'000'000);
        const SystemResult r = sim.run(trace, n / 2, n);
        const uint64_t i = r.instructions;
        const std::string label = iways == 0
            ? "unified 8-way"
            : "split " + std::to_string(iways) + "I/" +
                  std::to_string(8 - iways) + "D";
        t.addRow({label, Table::fmt(r.l2.mpki(AccessKind::Code, i), 2),
                  Table::fmt(r.l2.mpkiData(i), 2),
                  Table::fmt(r.ipcPerThread, 3)});
        std::fflush(stdout);
    }
    t.print();
    std::printf("Paper: the improved L2 instruction hit rate is "
                "offset by the decreased L2 data hit rate.\n\n");
}

void
powerStudy()
{
    std::printf("--- Power and energy (paper SIV-C) ---\n");
    const PowerModel power;

    // The paper's published results for the optimized design.
    const double qps_rightsized = 1.14;
    const double qps_with_l4 = 1.27;
    const double l4_filter = 0.50;

    Table t({"Design", "Socket power", "Relative QPS",
             "Energy/query"});
    t.addRow({"18 cores, 45 MiB L3 (base)", "100.0%", "1.00", "1.00"});
    t.addRow({"23 cores, 23 MiB L3",
              Table::fmtPct(1.0 + power.powerIncrease(23), 1),
              Table::fmt(qps_rightsized, 2),
              Table::fmt(power.energyPerQuery(23, qps_rightsized), 2)});
    t.addRow({"23 cores + 1 GiB L4",
              Table::fmtPct(1.0 + power.powerIncrease(23), 1),
              Table::fmt(qps_with_l4, 2),
              Table::fmt(power.energyPerQuery(23, qps_with_l4,
                                              l4_filter), 2)});
    t.print();
    std::printf("Paper: +18.9%% socket power (~27 W) for +27%% "
                "performance; energy per query improves; L4 power "
                "impact small because cores dominate.\n\n");

    // Iso-power alternative: 18 cores with 1 MiB/core.
    const AreaModel area;
    const double a_base = area.area(18, 2.5);
    const double a_iso = area.area(18, 1.0);
    std::printf("Iso-power design (18 cores, 1 MiB/core): area "
                "%.0f%% of baseline (paper: ~23%% smaller), power "
                "%+.1f%%\n",
                100.0 * a_iso / a_base, power.powerIncrease(18) * 100);
}

} // namespace
} // namespace wsearch

int
main()
{
    wsearch::printBanner("Discussion (SV) & Power (SIV-C)",
                         "Split I/D L2, power and energy accounting");
    wsearch::splitL2Study();
    wsearch::powerStudy();
    return 0;
}
