/**
 * @file
 * Serving-runtime characterization: drives the concurrent leaf worker
 * pool (src/serve) with an open-loop Poisson load generator across a
 * sweep of offered QPS and prints the throughput-latency curve whose
 * saturation knee the paper's SMT/core-trading analysis presupposes
 * (§IV: the leaf is throughput-bound but latency-constrained).
 *
 * Three sections:
 *   1. closed-loop calibration of the saturation capacity;
 *   2. the open-loop QPS sweep (the knee table);
 *   3. the same mid-load point with the query-cache tier enabled,
 *      showing the cache absorbing popular queries ahead of the queue.
 *
 * WSEARCH_FAST=1 shrinks the run; WSEARCH_SERVE_WORKERS overrides the
 * worker count (default 2).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common.hh"
#include "search/corpus.hh"
#include "search/index.hh"
#include "serve/loadgen.hh"
#include "serve/serve_stats.hh"
#include "serve/worker_pool.hh"
#include "util/env.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

QueryGenerator::Config
trafficFor(const CorpusConfig &corpus)
{
    QueryGenerator::Config qc;
    qc.vocabSize = corpus.vocabSize; // terms must exist in the shard
    qc.distinctQueries = 1u << 16;
    qc.popularityTheta = 0.9;
    qc.maxTerms = 3;
    qc.conjunctiveFrac = 0.7;
    return qc;
}

void
runBenchServe()
{
    const double t0 = bench::nowSec();
    const bool fast = fastMode();
    const uint32_t workers = static_cast<uint32_t>(
        envU64("WSEARCH_SERVE_WORKERS", 2));
    if (workers < 1)
        wsearch_fatal("WSEARCH_SERVE_WORKERS must be >= 1");

    CorpusConfig cc;
    cc.numDocs = fast ? 6000 : 20000;
    cc.vocabSize = 20000;
    std::printf("# bench_serve: building index (%u docs, %u terms), "
                "%u workers\n",
                cc.numDocs, cc.vocabSize, workers);
    std::fflush(stdout);
    const CorpusGenerator corpus(cc);
    const MaterializedIndex index(corpus);

    LoadGenConfig lg;
    lg.queries = trafficFor(cc);

    // --- 1. Calibrate saturation capacity (closed loop). -------------
    LeafWorkerPool::Config pc;
    pc.numWorkers = workers;
    pc.queueCapacity = 512;
    double capacity;
    {
        LeafWorkerPool pool(index, pc);
        LoadGenConfig cal = lg;
        cal.clients = 4 * workers;
        cal.numQueries = fast ? 2000 : 8000;
        const LoadReport r = runClosedLoop(pool, cal);
        capacity = r.achievedQps;
        std::printf("\n## Closed-loop calibration (%u clients)\n",
                    cal.clients);
        Table t({"Clients", "Queries", "Capacity QPS", "p50 (us)",
                 "p99 (us)"});
        t.addRow({Table::fmtInt(cal.clients),
                  Table::fmtInt(r.snap.completed),
                  Table::fmt(capacity, 1),
                  fmtUsec(r.snap.sojournNs.quantile(0.50)),
                  fmtUsec(r.snap.sojournNs.quantile(0.99))});
        t.print();
    }

    // --- 2. Open-loop QPS sweep: the throughput-latency knee. --------
    std::printf("\n## Open-loop QPS sweep (Poisson arrivals)\n");
    const std::vector<double> fractions = {0.3, 0.5, 0.7, 0.85,
                                           0.95, 1.05, 1.2, 1.5};
    const double point_sec = fast ? 0.5 : 2.0;
    Table sweep({"Offered QPS", "Achieved QPS", "Shed %",
                 "Mean qdepth", "p50 (us)", "p95 (us)", "p99 (us)",
                 "p99.9 (us)"});
    ServeSnapshot saturated;
    for (const double f : fractions) {
        const double qps = std::max(1.0, f * capacity);
        LeafWorkerPool pool(index, pc);
        LoadGenConfig point = lg;
        point.offeredQps = qps;
        point.numQueries = std::max<uint64_t>(
            500, static_cast<uint64_t>(qps * point_sec));
        const LoadReport r = runOpenLoop(pool, point);
        const LatencyHistogram &s = r.snap.sojournNs;
        sweep.addRow({Table::fmt(qps, 1), Table::fmt(r.achievedQps, 1),
                      Table::fmtPct(r.shedFraction, 1),
                      Table::fmt(r.meanQueueDepth, 1),
                      fmtUsec(s.quantile(0.50)),
                      fmtUsec(s.quantile(0.95)),
                      fmtUsec(s.quantile(0.99)),
                      fmtUsec(s.quantile(0.999))});
        std::fflush(stdout);
        if (f == fractions.back())
            saturated = r.snap;
    }
    sweep.print();

    std::printf("\n## Saturated-point report (%.0f%% of capacity)\n",
                fractions.back() * 100);
    printServeReport(saturated, 0.0);

    // --- 3. Cache tier in front of the pool. -------------------------
    std::printf("\n## Query-cache tier at 70%% of capacity\n");
    Table ct({"Cache entries", "Hit rate", "Evictions", "Achieved QPS",
              "p50 (us)", "p99 (us)"});
    double cached_hit_rate = 0, cached_qps = 0;
    for (const size_t cache_cap : {size_t{0}, size_t{4096}}) {
        LeafWorkerPool::Config cpc = pc;
        cpc.cacheCapacity = cache_cap;
        LeafWorkerPool pool(index, cpc);
        LoadGenConfig point = lg;
        point.offeredQps = std::max(1.0, 0.7 * capacity);
        point.numQueries = std::max<uint64_t>(
            500,
            static_cast<uint64_t>(point.offeredQps * point_sec));
        const LoadReport r = runOpenLoop(pool, point);
        const ServeSnapshot &s = r.snap;
        const double hit_rate = s.cacheLookups
            ? static_cast<double>(s.cacheHits) /
                static_cast<double>(s.cacheLookups)
            : 0.0;
        // Cache hits answer in-line; fold them into the latency view.
        LatencyHistogram all = s.sojournNs;
        all.merge(s.cacheHitNs);
        ct.addRow({Table::fmtInt(cache_cap), Table::fmtPct(hit_rate, 1),
                   Table::fmtInt(s.cacheEvictions),
                   Table::fmt(r.achievedQps, 1),
                   fmtUsec(all.quantile(0.50)),
                   fmtUsec(all.quantile(0.99))});
        if (cache_cap) {
            cached_hit_rate = hit_rate;
            cached_qps = r.achievedQps;
        }
    }
    ct.print();

    bench::JsonWriter json;
    bench::beginStandardJson(json, "serve", fast);
    json.add("workers", static_cast<uint64_t>(workers));
    json.add("docs", static_cast<uint64_t>(cc.numDocs));
    json.add("capacity_qps", capacity);
    json.add("saturated_completed", saturated.completed);
    json.add("saturated_p50_us",
             saturated.sojournNs.quantile(0.50) * 1e-3);
    json.add("saturated_p99_us",
             saturated.sojournNs.quantile(0.99) * 1e-3);
    json.add("cached_hit_rate", cached_hit_rate);
    json.add("cached_qps", cached_qps);
    bench::finishStandardJson(json, "serve", t0);
}

} // namespace
} // namespace wsearch

int
main()
{
    wsearch::runBenchServe();
    return 0;
}
