/**
 * @file
 * Serving-runtime characterization: drives the concurrent leaf worker
 * pool (src/serve) with an open-loop Poisson load generator across a
 * sweep of offered QPS and prints the throughput-latency curve whose
 * saturation knee the paper's SMT/core-trading analysis presupposes
 * (§IV: the leaf is throughput-bound but latency-constrained).
 *
 * Four sections:
 *   1. closed-loop calibration of the saturation capacity;
 *   2. the open-loop QPS sweep (the knee table);
 *   3. the same mid-load point with the query-cache tier enabled,
 *      showing the cache absorbing popular queries ahead of the queue;
 *   4. thread scaling across 1/2/4/8 workers on two mixes (queue-only
 *      and cache-hit-heavy), the section that exercises the
 *      contention-free data plane: the ticket ring, the lock-striped
 *      cache tier, and the per-worker stats slabs. Every row's
 *      admission accounting is deterministic and gated by
 *      scripts/bench_diff.py; the throughput/speedup columns are
 *      wall-clock and only meaningful on multi-core hardware.
 *
 * WSEARCH_FAST=1 shrinks the run; WSEARCH_SERVE_WORKERS overrides the
 * worker count (default 2).
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hh"
#include "search/corpus.hh"
#include "search/index.hh"
#include "serve/loadgen.hh"
#include "serve/serve_stats.hh"
#include "serve/worker_pool.hh"
#include "util/env.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

QueryGenerator::Config
trafficFor(const CorpusConfig &corpus)
{
    QueryGenerator::Config qc;
    qc.vocabSize = corpus.vocabSize; // terms must exist in the shard
    qc.distinctQueries = 1u << 16;
    qc.popularityTheta = 0.9;
    qc.maxTerms = 3;
    qc.conjunctiveFrac = 0.7;
    return qc;
}

void
runBenchServe()
{
    const double t0 = bench::nowSec();
    const bool fast = fastMode();
    const uint32_t workers = static_cast<uint32_t>(
        envU64("WSEARCH_SERVE_WORKERS", 2));
    if (workers < 1)
        wsearch_fatal("WSEARCH_SERVE_WORKERS must be >= 1");

    CorpusConfig cc;
    cc.numDocs = fast ? 6000 : 20000;
    cc.vocabSize = 20000;
    std::printf("# bench_serve: building index (%u docs, %u terms), "
                "%u workers\n",
                cc.numDocs, cc.vocabSize, workers);
    std::fflush(stdout);
    const CorpusGenerator corpus(cc);
    const MaterializedIndex index(corpus);

    LoadGenConfig lg;
    lg.queries = trafficFor(cc);

    // --- 1. Calibrate saturation capacity (closed loop). -------------
    LeafWorkerPool::Config pc;
    pc.numWorkers = workers;
    pc.queueCapacity = 512;
    double capacity;
    {
        LeafWorkerPool pool(index, pc);
        LoadGenConfig cal = lg;
        cal.clients = 4 * workers;
        cal.numQueries = fast ? 2000 : 8000;
        const LoadReport r = runClosedLoop(pool, cal);
        capacity = r.achievedQps;
        std::printf("\n## Closed-loop calibration (%u clients)\n",
                    cal.clients);
        Table t({"Clients", "Queries", "Capacity QPS", "p50 (us)",
                 "p99 (us)"});
        t.addRow({Table::fmtInt(cal.clients),
                  Table::fmtInt(r.snap.completed),
                  Table::fmt(capacity, 1),
                  fmtUsec(r.snap.sojournNs.quantile(0.50)),
                  fmtUsec(r.snap.sojournNs.quantile(0.99))});
        t.print();
    }

    // --- 2. Open-loop QPS sweep: the throughput-latency knee. --------
    std::printf("\n## Open-loop QPS sweep (Poisson arrivals)\n");
    const std::vector<double> fractions = {0.3, 0.5, 0.7, 0.85,
                                           0.95, 1.05, 1.2, 1.5};
    const double point_sec = fast ? 0.5 : 2.0;
    Table sweep({"Offered QPS", "Achieved QPS", "Shed %",
                 "Mean qdepth", "p50 (us)", "p95 (us)", "p99 (us)",
                 "p99.9 (us)"});
    ServeSnapshot saturated;
    for (const double f : fractions) {
        const double qps = std::max(1.0, f * capacity);
        LeafWorkerPool pool(index, pc);
        LoadGenConfig point = lg;
        point.offeredQps = qps;
        point.numQueries = std::max<uint64_t>(
            500, static_cast<uint64_t>(qps * point_sec));
        const LoadReport r = runOpenLoop(pool, point);
        const LatencyHistogram &s = r.snap.sojournNs;
        sweep.addRow({Table::fmt(qps, 1), Table::fmt(r.achievedQps, 1),
                      Table::fmtPct(r.shedFraction, 1),
                      Table::fmt(r.meanQueueDepth, 1),
                      fmtUsec(s.quantile(0.50)),
                      fmtUsec(s.quantile(0.95)),
                      fmtUsec(s.quantile(0.99)),
                      fmtUsec(s.quantile(0.999))});
        std::fflush(stdout);
        if (f == fractions.back())
            saturated = r.snap;
    }
    sweep.print();

    std::printf("\n## Saturated-point report (%.0f%% of capacity)\n",
                fractions.back() * 100);
    printServeReport(saturated, 0.0);

    // --- 3. Cache tier in front of the pool. -------------------------
    std::printf("\n## Query-cache tier at 70%% of capacity\n");
    Table ct({"Cache entries", "Hit rate", "Evictions", "Achieved QPS",
              "p50 (us)", "p99 (us)"});
    double cached_hit_rate = 0, cached_qps = 0;
    for (const size_t cache_cap : {size_t{0}, size_t{4096}}) {
        LeafWorkerPool::Config cpc = pc;
        cpc.cacheCapacity = cache_cap;
        LeafWorkerPool pool(index, cpc);
        LoadGenConfig point = lg;
        point.offeredQps = std::max(1.0, 0.7 * capacity);
        point.numQueries = std::max<uint64_t>(
            500,
            static_cast<uint64_t>(point.offeredQps * point_sec));
        const LoadReport r = runOpenLoop(pool, point);
        const ServeSnapshot &s = r.snap;
        const double hit_rate = s.cacheLookups
            ? static_cast<double>(s.cacheHits) /
                static_cast<double>(s.cacheLookups)
            : 0.0;
        // Cache hits answer in-line; fold them into the latency view.
        LatencyHistogram all = s.sojournNs;
        all.merge(s.cacheHitNs);
        ct.addRow({Table::fmtInt(cache_cap), Table::fmtPct(hit_rate, 1),
                   Table::fmtInt(s.cacheEvictions),
                   Table::fmt(r.achievedQps, 1),
                   fmtUsec(all.quantile(0.50)),
                   fmtUsec(all.quantile(0.99))});
        if (cache_cap) {
            cached_hit_rate = hit_rate;
            cached_qps = r.achievedQps;
        }
    }
    ct.print();

    // --- 4. Thread scaling on the contention-free data plane. --------
    // Closed loop so every submission resolves (no shed): the row
    // counters (queries, resolved, shed, consistency) are exactly
    // reproducible and bench_diff-gated, while qps/speedup are
    // wall-clock and only materialize on multi-core CI hardware.
    struct ScaleMix
    {
        const char *name;
        size_t cacheCapacity;
        uint32_t distinctQueries;
    };
    const ScaleMix mixes[] = {
        // Every query through the ticket ring to a worker.
        {"queue", 0, 1u << 16},
        // Popular repeats resolved by the lock-striped cache tier.
        {"cachehit", 4096, 1024},
    };
    const uint32_t scale_workers[] = {1, 2, 4, 8};
    const uint64_t scale_queries = fast ? 1500 : 6000;
    std::printf("\n## Thread scaling (closed loop, %llu queries per "
                "point)\n",
                static_cast<unsigned long long>(scale_queries));
    Table st({"Mix", "Workers", "Queries", "Resolved", "Shed",
              "Hit rate", "QPS", "Speedup vs 1w"});
    struct ScaleRow
    {
        const char *mix;
        uint32_t workers;
        uint64_t queries, resolved, shed;
        uint64_t consistent;
        double wallSec, qps, speedup, hitRate;
    };
    std::vector<ScaleRow> scale_rows;
    uint64_t scaling_rows_ok = 1;
    for (const ScaleMix &mix : mixes) {
        double qps_1w = 0.0;
        for (const uint32_t w : scale_workers) {
            LeafWorkerPool::Config spc;
            spc.numWorkers = w;
            spc.queueCapacity = 512;
            spc.cacheCapacity = mix.cacheCapacity;
            LeafWorkerPool pool(index, spc);
            LoadGenConfig run = lg;
            run.queries.distinctQueries = mix.distinctQueries;
            run.clients = 2 * w;
            run.numQueries = scale_queries;
            const double s0 = bench::nowSec();
            const LoadReport r = runClosedLoop(pool, run);
            const ServeSnapshot &s = r.snap;

            ScaleRow row;
            row.mix = mix.name;
            row.workers = w;
            row.queries = s.submitted;
            row.resolved = s.completed + s.cacheHits;
            row.shed = s.shed;
            row.consistent = s.consistent() ? 1 : 0;
            row.wallSec = bench::nowSec() - s0;
            row.qps = r.achievedQps;
            if (qps_1w == 0.0)
                qps_1w = r.achievedQps;
            row.speedup = qps_1w > 0 ? r.achievedQps / qps_1w : 0.0;
            row.hitRate = s.cacheLookups
                ? static_cast<double>(s.cacheHits) /
                    static_cast<double>(s.cacheLookups)
                : 0.0;
            // The in-run accounting invariant bench_diff asserts:
            // every submitted query resolved, none shed, all
            // identities intact.
            if (row.queries != scale_queries ||
                row.resolved != scale_queries || row.shed != 0 ||
                !row.consistent)
                scaling_rows_ok = 0;
            scale_rows.push_back(row);
            st.addRow({mix.name, Table::fmtInt(w),
                       Table::fmtInt(row.queries),
                       Table::fmtInt(row.resolved),
                       Table::fmtInt(row.shed),
                       Table::fmtPct(row.hitRate, 1),
                       Table::fmt(row.qps, 1),
                       Table::fmt(row.speedup, 2)});
            std::fflush(stdout);
        }
    }
    st.print();
    std::printf("Speedup columns need real cores: on a single-CPU "
                "host the workers serialize and the ratio stays ~1.\n");

    bench::JsonWriter json;
    bench::beginStandardJson(json, "serve", fast);
    json.add("workers", static_cast<uint64_t>(workers));
    json.add("docs", static_cast<uint64_t>(cc.numDocs));
    json.add("scaling_queries", scale_queries);
    json.add("capacity_qps", capacity);
    json.add("saturated_completed", saturated.completed);
    json.add("saturated_p50_us",
             saturated.sojournNs.quantile(0.50) * 1e-3);
    json.add("saturated_p99_us",
             saturated.sojournNs.quantile(0.99) * 1e-3);
    json.add("cached_hit_rate", cached_hit_rate);
    json.add("cached_qps", cached_qps);
    json.add("scaling_rows_ok", scaling_rows_ok);
    json.beginArray("rows");
    for (const ScaleRow &row : scale_rows) {
        json.beginObject();
        json.add("mix", std::string(row.mix));
        json.add("workers", static_cast<uint64_t>(row.workers));
        json.add("queries", row.queries);
        json.add("resolved", row.resolved);
        json.add("shed", row.shed);
        json.add("stats_consistent", row.consistent);
        json.add("wall_sec", row.wallSec);
        json.add("qps", row.qps);
        json.add("speedup_vs_1w", row.speedup);
        json.add("hit_rate", row.hitRate);
        json.endObject();
    }
    json.endArray();
    bench::finishStandardJson(json, "serve", t0);
}

} // namespace
} // namespace wsearch

int
main()
{
    wsearch::runBenchServe();
    return 0;
}
