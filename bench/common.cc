#include "common.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace wsearch {
namespace bench {

Args
parseArgs(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--smoke") == 0) {
            args.smoke = true;
        } else if (std::strncmp(a, "--threads=", 10) == 0) {
            args.threads =
                static_cast<uint32_t>(std::strtoul(a + 10, nullptr, 10));
        } else if (std::strncmp(a, "--sampling=", 11) == 0) {
            const char *p = a + 11;
            if (std::strcmp(p, "uniform") == 0) {
                args.policy = SamplingPolicy::kUniform;
                args.policySet = true;
            } else if (std::strcmp(p, "clustered") == 0) {
                args.policy = SamplingPolicy::kClustered;
                args.policySet = true;
            } else if (std::strcmp(p, "off") == 0) {
                args.policy = SamplingPolicy::kOff;
                args.policySet = true;
            }
        }
    }
    return args;
}

SweepControl
sweepControl(const Args &args)
{
    SweepControl control;
    control.threads = args.threads;
    if (args.smoke) {
        // ~1/4 of the trace in windows of 1/8 warmup + 1/8 measure.
        control.sampling.periodRecords = traceBudget(4'000'000);
        control.sampling.warmupRecords = traceBudget(500'000);
        control.sampling.measureRecords = traceBudget(500'000);
    }
    return control;
}

SweepControl
clusteredControl(const Args &args, uint64_t total_records,
                 SamplingPolicy fallback)
{
    SweepControl control;
    control.threads = args.threads;
    control.policy = args.policySet ? args.policy : fallback;
    if (control.policy != SamplingPolicy::kOff)
        control.rep = defaultRepresentativeSampling(total_records);
    return control;
}

RunOptions
baseOptions(uint32_t cores, uint64_t measure_records,
            uint64_t warmup_records)
{
    RunOptions opt;
    opt.cores = cores;
    opt.measureRecords = measure_records;
    opt.warmupRecords = warmup_records;
    return opt;
}

void
banner(const Args &args, const std::string &experiment_id,
       const std::string &description)
{
    printBanner(experiment_id, description);
    if (args.smoke) {
        const SampledIntervals s = sweepControl(args).sampling;
        std::printf("(--smoke: SAMPLED intervals -- %.0f%% of each "
                    "trace simulated in periodic windows; all numbers "
                    "are estimates)\n\n",
                    100.0 * s.simulatedFraction());
    }
}

double
nowSec()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::string
gitSha()
{
    for (const char *var : {"WSEARCH_GIT_SHA", "GITHUB_SHA"}) {
        const char *v = std::getenv(var);
        if (v && *v)
            return v;
    }
    return "unknown";
}

void
beginStandardJson(JsonWriter &json, const std::string &bench_name,
                  bool smoke)
{
    json.add("schema_version", static_cast<uint64_t>(1));
    json.add("bench", bench_name);
    json.add("smoke", static_cast<uint64_t>(smoke ? 1 : 0));
    json.add("git_sha", gitSha());
}

bool
finishStandardJson(JsonWriter &json, const std::string &bench_name,
                   double t0_sec)
{
    json.add("wall_time_sec", nowSec() - t0_sec);
    const std::string out = "BENCH_" + bench_name + ".json";
    const bool ok = json.writeFile(out);
    if (ok)
        std::printf("Results written to %s\n", out.c_str());
    else
        std::fprintf(stderr, "bench: failed to write %s\n",
                     out.c_str());
    return ok;
}

void
JsonWriter::comma()
{
    if (needComma_)
        out_ += ",";
    needComma_ = true;
}

void
JsonWriter::add(const std::string &key, double value)
{
    comma();
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    out_ += "\"" + key + "\":" + buf;
}

void
JsonWriter::add(const std::string &key, uint64_t value)
{
    comma();
    out_ += "\"" + key + "\":" + std::to_string(value);
}

void
JsonWriter::add(const std::string &key, const std::string &value)
{
    comma();
    out_ += "\"" + key + "\":\"" + value + "\"";
}

void
JsonWriter::beginArray(const std::string &key)
{
    comma();
    out_ += "\"" + key + "\":[";
    needComma_ = false;
}

void
JsonWriter::beginObject()
{
    comma();
    out_ += "{";
    needComma_ = false;
}

void
JsonWriter::endObject()
{
    out_ += "}";
    needComma_ = true;
}

void
JsonWriter::endArray()
{
    out_ += "]";
    needComma_ = true;
}

bool
JsonWriter::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::string body = str();
    const bool ok =
        std::fwrite(body.data(), 1, body.size(), f) == body.size();
    std::fclose(f);
    return ok;
}

std::string
JsonWriter::str() const
{
    return out_ + "}\n";
}

} // namespace bench
} // namespace wsearch
