/**
 * @file
 * Replacement-policy and inclusion-mode study over the Figure-6bc L3
 * capacity ladder (1/32-scale S1 leaf), exercising the composable
 * hierarchy generators end to end:
 *
 *   lru / srrip / drrip   NINE LLC, replacement policy swapped
 *   inclusive / exclusive LLC inclusion mode swapped (LRU)
 *
 * Every (capacity, variant) cell lands in BENCH_replacement.json with
 * exact counters for bench_diff.py to gate.
 *
 * The binary is also the legacy-compat gate: three representative
 * configurations are run twice, once through a hand-assembled
 * cache_gen_* HierarchySpec and once through the monolithic
 * HierarchyConfig mapped by HierarchySpec::fromLegacy. Any counter
 * mismatch makes the binary exit nonzero (mirroring bench_sweep's
 * serial-vs-parallel oracle), so CI proves the redesigned API is
 * bit-identical to the old one.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common.hh"
#include "trace/synthetic.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

struct Variant
{
    const char *name;
    ReplPolicy repl;
    InclusionMode inclusion;
};

constexpr Variant kVariants[] = {
    {"lru", ReplPolicy::LRU, InclusionMode::NINE},
    {"srrip", ReplPolicy::SRRIP, InclusionMode::NINE},
    {"drrip", ReplPolicy::DRRIP, InclusionMode::NINE},
    {"inclusive", ReplPolicy::LRU, InclusionMode::Inclusive},
    {"exclusive", ReplPolicy::LRU, InclusionMode::Exclusive},
};

/** Exact counter equality between the two construction routes. */
bool
identicalRuns(const SystemResult &a, const SystemResult &b)
{
    auto differ = [](const char *what, uint64_t x, uint64_t y) {
        if (x == y)
            return false;
        std::printf("COMPAT MISMATCH %s: %llu != %llu\n", what,
                    static_cast<unsigned long long>(x),
                    static_cast<unsigned long long>(y));
        return true;
    };
    if (differ("instructions", a.instructions, b.instructions) ||
        differ("l3Evictions", a.l3Evictions, b.l3Evictions) ||
        differ("writebacks", a.writebacks, b.writebacks) ||
        differ("backInvalidations", a.backInvalidations,
               b.backInvalidations) ||
        differ("cohUpgrades", a.cohUpgrades, b.cohUpgrades) ||
        differ("cohInvalidations", a.cohInvalidations,
               b.cohInvalidations))
        return false;
    const CacheLevelStats *as[] = {&a.l1i, &a.l1d, &a.l2, &a.l3, &a.l4};
    const CacheLevelStats *bs[] = {&b.l1i, &b.l1d, &b.l2, &b.l3, &b.l4};
    for (int lvl = 0; lvl < 5; ++lvl)
        for (uint32_t k = 0; k < kNumAccessKinds; ++k)
            if (differ("cache accesses", as[lvl]->accesses[k],
                       bs[lvl]->accesses[k]) ||
                differ("cache misses", as[lvl]->misses[k],
                       bs[lvl]->misses[k]))
                return false;
    return true;
}

SystemResult
oracleRun(const HierarchySpec &spec)
{
    SystemConfig cfg;
    cfg.hierarchy = spec;
    SyntheticSearchTrace trace(WorkloadProfile::s1Leaf(),
                               spec.numCores * spec.smtWays);
    SystemSimulator sim(cfg);
    return sim.run(trace, 400'000, 800'000);
}

/**
 * Run three representative configurations through both construction
 * routes and demand bit-identical counters.
 */
bool
legacyCompatGate()
{
    std::printf("--- Legacy-config compat oracle ---\n");
    bool all_ok = true;
    auto check = [&](const char *name, const HierarchySpec &gen,
                     const HierarchyConfig &legacy) {
        const bool ok = identicalRuns(
            oracleRun(gen), oracleRun(HierarchySpec::fromLegacy(legacy)));
        std::printf("  %-16s %s\n", name, ok ? "identical" : "DIFFERS");
        all_ok = all_ok && ok;
    };

    { // Plain shared-LLC hierarchy.
        HierarchySpec gen;
        gen.numCores = 4;
        gen.llc = cache_gen_llc(1 * MiB, 64, 16);
        HierarchyConfig legacy;
        legacy.numCores = 4;
        legacy.l3 = {1 * MiB, 64, 16};
        check("plain", gen, legacy);
    }
    { // Inclusive LLC with a CAT partition (paper §III-D setup).
        HierarchySpec gen;
        gen.numCores = 4;
        gen.llc = cache_gen_llc(1 * MiB, 64, 16, ReplPolicy::LRU,
                                InclusionMode::Inclusive, 1, 4);
        HierarchyConfig legacy;
        legacy.numCores = 4;
        legacy.l3 = {1 * MiB, 64, 16};
        legacy.l3.partitionWays = 4;
        legacy.inclusiveL3 = true;
        check("inclusive+cat", gen, legacy);
    }
    { // SRRIP LLC with a memory-side victim L4 behind it.
        HierarchySpec gen;
        gen.numCores = 4;
        gen.llc = cache_gen_llc(1 * MiB, 64, 16, ReplPolicy::SRRIP);
        gen.l4 = cache_gen_victim(4 * MiB, 64);
        HierarchyConfig legacy;
        legacy.numCores = 4;
        legacy.l3 = {1 * MiB, 64, 16};
        legacy.l3.repl = ReplPolicy::SRRIP;
        legacy.l4 = cache_gen_victim(4 * MiB, 64);
        check("srrip+l4", gen, legacy);
    }
    std::printf("\n");
    return all_ok;
}

int
runReplacement(const bench::Args &args)
{
    const double bench_t0 = bench::nowSec();
    bench::banner(args, "Replacement & inclusion",
                  "LLC policy study on the Fig. 6bc capacity ladder "
                  "(1/32-scale)");
    const WorkloadProfile prof = WorkloadProfile::s1LeafCapacitySweep();
    const PlatformConfig plt1 = PlatformConfig::plt1();
    const uint32_t scale = prof.sweepScale;
    const std::vector<uint64_t> sizes = {128 * KiB, 512 * KiB, 2 * MiB,
                                         8 * MiB};

    std::vector<RunOptions> options;
    for (const uint64_t sim : sizes) {
        for (const Variant &v : kVariants) {
            RunOptions opt =
                bench::baseOptions(16, 8'000'000, 16'000'000);
            opt.l3Bytes = sim;
            opt.l3Ways = 16;
            opt.llcRepl = v.repl;
            opt.llcInclusion = v.inclusion;
            options.push_back(opt);
        }
    }
    const std::vector<SystemResult> results =
        runWorkloadSweep(prof, plt1, options, bench::sweepControl(args));

    const bool compat_ok = legacyCompatGate();

    bench::JsonWriter json;
    bench::beginStandardJson(json, "replacement", args.smoke);
    json.add("capacity_points", static_cast<uint64_t>(sizes.size()));
    json.beginArray("rows");

    constexpr size_t kNumVariants =
        sizeof(kVariants) / sizeof(kVariants[0]);
    Table t({"L3 (paper-eq)", "LRU MPKI", "SRRIP MPKI", "DRRIP MPKI",
             "Incl. MPKI", "Excl. MPKI"});
    for (size_t i = 0; i < sizes.size(); ++i) {
        std::vector<std::string> row = {
            formatBytes(sizes[i] * scale)};
        for (size_t j = 0; j < kNumVariants; ++j) {
            const SystemResult &r = results[i * kNumVariants + j];
            row.push_back(
                Table::fmt(r.l3.mpkiTotal(r.instructions), 2));
            json.beginObject();
            json.add("l3_capacity", sizes[i] * scale);
            json.add("variant", std::string(kVariants[j].name));
            json.add("l3_accesses", r.l3.totalAccesses());
            json.add("l3_misses", r.l3.totalMisses());
            json.add("writebacks", r.writebacks);
            json.add("back_invalidations", r.backInvalidations);
            json.add("instructions", r.instructions);
            json.endObject();
        }
        t.addRow(row);
    }
    json.endArray();
    json.add("compat_identical",
             static_cast<uint64_t>(compat_ok ? 1 : 0));
    t.print();
    std::printf("\nSRRIP/DRRIP protect the reused shard band against "
                "the scan-like posting traffic; the exclusive LLC "
                "buys ~L2-sized extra effective capacity, the "
                "inclusive one pays back-invalidations.\n");
    bench::finishStandardJson(json, "replacement", bench_t0);

    if (!compat_ok) {
        std::printf("\nFAIL: legacy HierarchyConfig route is not "
                    "bit-identical to the generator route\n");
        return 1;
    }
    std::printf("\nLegacy-config mapping bit-identical across all "
                "oracle configurations.\n");
    return 0;
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    return wsearch::runReplacement(
        wsearch::bench::parseArgs(argc, argv));
}
