/**
 * @file
 * Reproduces paper Table I: key performance metrics (per-core IPC, L3
 * load MPKI, L2 instruction MPKI, branch MPKI) for the production
 * search services S1/S2/S3 (leaf and root), the S1 leaf on the PLT1
 * and PLT2 lab platforms, four SPEC CPU2006 representatives, and the
 * CloudSuite v3 Web Search.
 *
 * The rows are heterogeneous (different profiles and platforms), so
 * they run through runWorkloads -- each row gets a private trace and
 * simulator on a worker thread.
 *
 * Paper reference values are printed alongside for comparison; see
 * EXPERIMENTS.md for the recorded deltas.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

struct Row
{
    std::string label;
    WorkloadProfile profile;
    PlatformConfig platform;
    uint32_t cores;
    /** Paper reference: IPC, L3 load MPKI, L2-I MPKI, branch MPKI. */
    double refIpc, refL3, refL2i, refBr;
};

void
runTable1(const bench::Args &args)
{
    bench::banner(args, "Table I",
                  "Key performance metrics for search, SPEC CPU2006, "
                  "and CloudSuite");

    const PlatformConfig plt1 = PlatformConfig::plt1();
    const PlatformConfig plt2 = PlatformConfig::plt2();

    std::vector<Row> rows = {
        {"S1 leaf (fleet)", WorkloadProfile::s1Leaf(), plt1, 16,
         1.34, 2.20, 11.83, 8.98},
        {"S2 leaf (fleet)", WorkloadProfile::s2Leaf(), plt1, 16,
         1.63, 1.89, 12.44, 6.17},
        {"S3 leaf (fleet)", WorkloadProfile::s3Leaf(), plt1, 16,
         1.46, 1.78, 14.10, 7.99},
        {"S1 root (fleet)", WorkloadProfile::s1Root(), plt1, 16,
         1.03, 4.20, 12.02, 4.71},
        {"S2 root (fleet)", WorkloadProfile::s2Root(), plt1, 16,
         1.14, 3.05, 19.62, 4.84},
        {"S3 root (fleet)", WorkloadProfile::s3Root(), plt1, 16,
         1.08, 3.19, 13.97, 5.37},
        {"S1 leaf PLT1 (lab)", WorkloadProfile::s1Leaf(), plt1, 16,
         1.27, 2.43, 10.78, 9.47},
        {"S1 leaf PLT2 (lab)", WorkloadProfile::s1Leaf(), plt2, 12,
         1.92, 1.15, 2.53, 11.50},
        {"400.perlbench", WorkloadProfile::specPerlbench(), plt1, 1,
         2.72, 0.48, 0.58, 1.80},
        {"429.mcf", WorkloadProfile::specMcf(), plt1, 1,
         0.15, 56.92, 0.31, 11.32},
        {"445.gobmk", WorkloadProfile::specGobmk(), plt1, 1,
         1.43, 0.29, 3.02, 18.40},
        {"471.omnetpp", WorkloadProfile::specOmnetpp(), plt1, 1,
         0.30, 24.92, 0.63, 5.32},
        {"CloudSuite WebSearch", WorkloadProfile::cloudsuiteWebSearch(),
         plt1, 16, 1.61, 0.03, 0.28, 0.51},
    };

    std::vector<WorkloadSpec> specs;
    for (const auto &row : rows) {
        RunOptions opt = bench::baseOptions(
            row.cores, row.cores >= 8 ? 24'000'000 : 8'000'000);
        specs.push_back({row.profile, row.platform, opt});
    }
    const std::vector<SystemResult> results =
        runWorkloads(specs, bench::sweepControl(args));

    Table t({"Workload", "IPC", "(ref)", "L3 load MPKI", "(ref)",
             "L2-I MPKI", "(ref)", "Branch MPKI", "(ref)"});
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        const SystemResult &r = results[i];
        t.addRow({row.label, Table::fmt(r.ipcPerThread, 2),
                  Table::fmt(row.refIpc, 2), Table::fmt(r.l3LoadMpki(), 2),
                  Table::fmt(row.refL3, 2), Table::fmt(r.l2InstrMpki(), 2),
                  Table::fmt(row.refL2i, 2), Table::fmt(r.branchMpki(), 2),
                  Table::fmt(row.refBr, 2)});
    }
    t.print();
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    wsearch::runTable1(wsearch::bench::parseArgs(argc, argv));
    return 0;
}
