/**
 * @file
 * Reproduces paper Figure 9: search throughput vs "L3-equivalent
 * area" for every combination of core count (4..18) and CAT-enabled
 * L3 ways (2..20 of the 45 MiB, 20-way L3). One core ~ 4 MiB of L3
 * (paper's die-photo estimate). The paper's observations: at equal
 * area, designs with more cores and ~1 MiB/core of L3 beat the
 * default 2.5 MiB/core ratio, but capacities below the instruction
 * working set (~18 MiB total) are detrimental.
 *
 * Two sections:
 *   scaled   the full 100-configuration grid at 1/32 scale, replayed
 *            exactly -- the sweep engine's showcase (one shared trace
 *            buffer per core count, every CAT partitioning replayed
 *            concurrently) and the continuity rows
 *            scripts/bench_diff.py gates.
 *   nominal  the paper's highlighted equal-area comparison points on
 *            the REAL 45 MiB L3 at full nominal working-set sizes
 *            under clustered representative sampling, bands attached.
 *
 * Emits BENCH_fig9.json in the standard frame (see
 * bench::beginStandardJson) for bench_all.sh aggregation and
 * bench_diff.py gating.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common.hh"
#include "core/area_model.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

struct Point
{
    uint32_t cores, ways;
};

void
addGridRow(bench::JsonWriter &json, const char *section,
           const Point &p, uint64_t sim_bytes, const SystemResult &r)
{
    json.beginObject();
    json.add("section", std::string(section));
    json.add("cores", static_cast<uint64_t>(p.cores));
    json.add("ways", static_cast<uint64_t>(p.ways));
    json.add("l3_sim_bytes", sim_bytes);
    json.add("instructions", r.instructions);
    json.add("l3_accesses", r.l3.totalAccesses());
    json.add("l3_misses", r.l3.totalMisses());
    json.add("ipc", r.ipcPerThread);
    json.add("sampled_windows", r.sampledWindows);
    json.add("represented_windows", r.representedWindows);
    json.add("band_lo", r.l3MissBandLo());
    json.add("band_hi", r.l3MissBandHi());
    json.add("band_rel", r.bandRelHalfWidth());
    json.endObject();
}

void
runFig9(const bench::Args &args)
{
    const double t0 = bench::nowSec();
    bench::banner(args, "Figure 9",
                  "QPS vs L3-equivalent area (cores x CAT ways; "
                  "1/32-scale grid + clustered nominal-scale "
                  "highlight points)");
    const PlatformConfig plt1 = PlatformConfig::plt1();
    const WorkloadProfile prof = WorkloadProfile::s1LeafSweep();
    const AreaModel area;

    bench::JsonWriter json;
    bench::beginStandardJson(json, "fig9", args.smoke);

    // --- scaled: the full grid at 1/32 scale, exact replay ---
    const uint32_t core_counts[] = {4, 6, 8, 9, 10, 11, 12, 14, 16, 18};
    std::vector<Point> points;
    std::vector<RunOptions> options;
    for (const uint32_t cores : core_counts) {
        for (uint32_t ways = 2; ways <= 20; ways += 2) {
            RunOptions opt =
                bench::baseOptions(cores, 8'000'000, 24'000'000);
            opt.l3Bytes = plt1.l3Bytes / prof.sweepScale;
            opt.l3PartitionWays = ways;
            points.push_back({cores, ways});
            options.push_back(opt);
        }
    }
    json.add("scaled_measure_records", recordBudget(options[0]).measure);
    json.add("scaled_warmup_records", recordBudget(options[0]).warmup);
    const std::vector<SystemResult> results =
        runWorkloadSweep(prof, plt1, options, bench::sweepControl(args));

    Table t({"Cores", "L3 ways", "L3 MiB", "MiB/core",
             "Area (L3-eq MiB)", "Norm. QPS"});
    double qps_ref = 0; // 4 cores, 2 ways
    double qps_9c10w = 0, qps_11c6w = 0, qps_18c4w = 0, qps_16c8w = 0;
    for (size_t i = 0; i < points.size(); ++i) {
        const uint32_t cores = points[i].cores;
        const uint32_t ways = points[i].ways;
        const double qps = cores * results[i].ipcPerThread;
        if (qps_ref == 0)
            qps_ref = qps;
        if (cores == 9 && ways == 10)
            qps_9c10w = qps;
        if (cores == 11 && ways == 6)
            qps_11c6w = qps;
        if (cores == 18 && ways == 4)
            qps_18c4w = qps;
        if (cores == 16 && ways == 8)
            qps_16c8w = qps;
        const double l3_mib = 45.0 * ways / 20.0;
        t.addRow({Table::fmtInt(cores), Table::fmtInt(ways),
                  Table::fmt(l3_mib, 2),
                  Table::fmt(l3_mib / cores, 2),
                  Table::fmt(area.area(cores, l3_mib / cores), 1),
                  Table::fmt(qps / qps_ref, 2)});
    }
    t.print();
    std::printf("\nPaper's highlighted equal-area comparisons:\n");
    std::printf("  ~58 L3-eq MiB: 9-core/10-way QPS %.2f vs "
                "11-core/6-way QPS %.2f (paper: 11-core wins)\n",
                qps_9c10w / qps_ref, qps_11c6w / qps_ref);
    std::printf("  ~82 L3-eq MiB: 18-core/4-way (0.5 MiB/core) QPS "
                "%.2f vs 16-core/8-way QPS %.2f (paper: starving the "
                "L3 below the instruction working set loses)\n\n",
                qps_18c4w / qps_ref, qps_16c8w / qps_ref);

    // --- nominal: the highlighted equal-area points on the real
    //     45 MiB L3 at full paper-scale working sets ---
    const WorkloadProfile nominal = prof.atNominalScale();
    std::vector<Point> nom_points;
    if (args.smoke)
        nom_points = {{9, 10}, {11, 6}};
    else
        nom_points = {{9, 10}, {11, 6}, {18, 4}, {16, 8}};
    std::vector<RunOptions> nom_options;
    for (const Point &p : nom_points) {
        RunOptions opt =
            bench::baseOptions(p.cores, 16'000'000, 8'000'000);
        opt.l3Bytes = plt1.l3Bytes;
        opt.l3PartitionWays = p.ways;
        nom_options.push_back(opt);
    }
    const RecordBudget nom_budget = recordBudget(nom_options[0]);
    const SweepControl nom_control =
        bench::clusteredControl(args, nom_budget.total());
    json.add("nominal_measure_records", nom_budget.measure);
    json.add("nominal_warmup_records", nom_budget.warmup);
    json.add("sampling_policy",
             std::string(samplingPolicyName(nom_control.policy)));
    json.add("sample_window_records", nom_control.rep.windowRecords);
    json.add("sample_clusters",
             static_cast<uint64_t>(nom_control.rep.sampleWindows));
    json.add("sample_seed", sampleSeed(nom_control.rep.seed));

    std::printf("Nominal-scale equal-area points (%s sampling; full "
                "45 MiB L3)\n",
                samplingPolicyName(nom_control.policy));
    const std::vector<SystemResult> nom_results =
        runWorkloadSweep(nominal, plt1, nom_options, nom_control);
    // Normalize within the section: the nominal profile's absolute
    // IPC is not comparable to the 1/32-scale grid's.
    const double nom_ref =
        nom_points[0].cores * nom_results[0].ipcPerThread;
    Table nt({"Cores", "L3 ways", "Norm. QPS",
              "LLC miss band (95%)"});
    for (size_t i = 0; i < nom_points.size(); ++i) {
        const SystemResult &r = nom_results[i];
        const double qps = nom_points[i].cores * r.ipcPerThread;
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.3g..%.3g (+-%.1f%%)",
                      r.l3MissBandLo(), r.l3MissBandHi(),
                      100.0 * r.bandRelHalfWidth());
        nt.addRow({Table::fmtInt(nom_points[i].cores),
                   Table::fmtInt(nom_points[i].ways),
                   Table::fmt(nom_ref > 0 ? qps / nom_ref : 0.0, 2),
                   buf});
    }
    nt.print();

    json.beginArray("rows");
    for (size_t i = 0; i < points.size(); ++i)
        addGridRow(json, "scaled", points[i],
                   plt1.l3Bytes / prof.sweepScale, results[i]);
    for (size_t i = 0; i < nom_points.size(); ++i)
        addGridRow(json, "nominal", nom_points[i], plt1.l3Bytes,
                   nom_results[i]);
    json.endArray();

    bench::finishStandardJson(json, "fig9", t0);
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    wsearch::runFig9(wsearch::bench::parseArgs(argc, argv));
    return 0;
}
