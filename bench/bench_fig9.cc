/**
 * @file
 * Reproduces paper Figure 9: search throughput vs "L3-equivalent
 * area" for every combination of core count (4..18) and CAT-enabled
 * L3 ways (2..20 of the 45 MiB, 20-way L3). One core ~ 4 MiB of L3
 * (paper's die-photo estimate). The paper's observations: at equal
 * area, designs with more cores and ~1 MiB/core of L3 beat the
 * default 2.5 MiB/core ratio, but capacities below the instruction
 * working set (~18 MiB total) are detrimental.
 *
 * The 100-configuration grid is the sweep engine's showcase: one
 * shared trace buffer per core count, every CAT partitioning replayed
 * concurrently.
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "core/area_model.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

void
runFig9(const bench::Args &args)
{
    bench::banner(args, "Figure 9",
                  "QPS vs L3-equivalent area (cores x CAT ways)");
    const PlatformConfig plt1 = PlatformConfig::plt1();
    const WorkloadProfile prof = WorkloadProfile::s1LeafSweep();
    const AreaModel area;

    const uint32_t core_counts[] = {4, 6, 8, 9, 10, 11, 12, 14, 16, 18};
    struct Point
    {
        uint32_t cores, ways;
    };
    std::vector<Point> points;
    std::vector<RunOptions> options;
    for (const uint32_t cores : core_counts) {
        for (uint32_t ways = 2; ways <= 20; ways += 2) {
            RunOptions opt =
                bench::baseOptions(cores, 8'000'000, 24'000'000);
            opt.l3Bytes = plt1.l3Bytes / prof.sweepScale;
            opt.l3PartitionWays = ways;
            points.push_back({cores, ways});
            options.push_back(opt);
        }
    }
    const std::vector<SystemResult> results =
        runWorkloadSweep(prof, plt1, options, bench::sweepControl(args));

    Table t({"Cores", "L3 ways", "L3 MiB", "MiB/core",
             "Area (L3-eq MiB)", "Norm. QPS"});
    double qps_ref = 0; // 4 cores, 2 ways
    double qps_9c10w = 0, qps_11c6w = 0, qps_18c4w = 0, qps_16c8w = 0;
    for (size_t i = 0; i < points.size(); ++i) {
        const uint32_t cores = points[i].cores;
        const uint32_t ways = points[i].ways;
        const double qps = cores * results[i].ipcPerThread;
        if (qps_ref == 0)
            qps_ref = qps;
        if (cores == 9 && ways == 10)
            qps_9c10w = qps;
        if (cores == 11 && ways == 6)
            qps_11c6w = qps;
        if (cores == 18 && ways == 4)
            qps_18c4w = qps;
        if (cores == 16 && ways == 8)
            qps_16c8w = qps;
        const double l3_mib = 45.0 * ways / 20.0;
        t.addRow({Table::fmtInt(cores), Table::fmtInt(ways),
                  Table::fmt(l3_mib, 2),
                  Table::fmt(l3_mib / cores, 2),
                  Table::fmt(area.area(cores, l3_mib / cores), 1),
                  Table::fmt(qps / qps_ref, 2)});
    }
    t.print();
    std::printf("\nPaper's highlighted equal-area comparisons:\n");
    std::printf("  ~58 L3-eq MiB: 9-core/10-way QPS %.2f vs "
                "11-core/6-way QPS %.2f (paper: 11-core wins)\n",
                qps_9c10w / qps_ref, qps_11c6w / qps_ref);
    std::printf("  ~82 L3-eq MiB: 18-core/4-way (0.5 MiB/core) QPS "
                "%.2f vs 16-core/8-way QPS %.2f (paper: starving the "
                "L3 below the instruction working set loses)\n",
                qps_18c4w / qps_ref, qps_16c8w / qps_ref);
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    wsearch::runFig9(wsearch::bench::parseArgs(argc, argv));
    return 0;
}
