/**
 * @file
 * Reproduces paper Figures 6b and 6c: L3 working-set hit-rate and
 * MPKI curves by access type as L3 capacity sweeps 4 MiB .. 2 GiB.
 * The paper's story: 16 MiB suffices for code; heap locality needs
 * ~1 GiB (95% hit); the shard barely reaches 50% at 2 GiB.
 *
 * Runs on the 1/32-scale sweep profile (see WorkloadProfile::
 * s1LeafSweep); capacities below are simulated sizes, reported with
 * their paper-equivalent (x16) alongside. All capacities replay the
 * same shared trace buffer concurrently via the sweep engine.
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

void
runFig6bc(const bench::Args &args)
{
    bench::banner(args, "Figure 6b/6c",
                  "L3 hit-rate and MPKI vs capacity, by access type "
                  "(1/32-scale sweep)");
    const WorkloadProfile prof = WorkloadProfile::s1LeafCapacitySweep();
    const PlatformConfig plt1 = PlatformConfig::plt1();

    std::vector<uint64_t> sizes;
    std::vector<RunOptions> options;
    for (uint64_t sim = 128 * KiB; sim <= 64 * MiB; sim *= 2) {
        RunOptions opt = bench::baseOptions(16, 24'000'000, 48'000'000);
        opt.l3Bytes = sim;
        opt.l3Ways = 16; // power-of-two friendly across the sweep
        sizes.push_back(sim);
        options.push_back(opt);
    }
    const std::vector<SystemResult> results =
        runWorkloadSweep(prof, plt1, options, bench::sweepControl(args));

    Table t({"L3 (paper-eq)", "L3 (sim)", "Code hit", "Heap hit",
             "Shard hit", "Comb. hit", "Code MPKI", "Heap MPKI",
             "Shard MPKI", "Comb. MPKI"});
    for (size_t i = 0; i < sizes.size(); ++i) {
        const SystemResult &r = results[i];
        const uint64_t sim = sizes[i];
        const uint64_t instr = r.instructions;
        t.addRow({formatBytes(sim * prof.sweepScale), formatBytes(sim),
                  Table::fmtPct(r.l3.hitRate(AccessKind::Code), 0),
                  Table::fmtPct(r.l3.hitRate(AccessKind::Heap), 0),
                  Table::fmtPct(r.l3.hitRate(AccessKind::Shard), 0),
                  Table::fmtPct(r.l3.hitRateTotal(), 0),
                  Table::fmt(r.l3.mpki(AccessKind::Code, instr), 2),
                  Table::fmt(r.l3.mpki(AccessKind::Heap, instr), 2),
                  Table::fmt(r.l3.mpki(AccessKind::Shard, instr), 2),
                  Table::fmt(r.l3.mpkiTotal(instr), 2)});
    }
    t.print();
    std::printf("\nPaper landmarks: code misses vanish by 16 MiB; "
                "heap hit ~95%% at 1 GiB; shard ~50%% at 2 GiB; "
                "combined MPKI 3.51 @32 MiB -> 1.37 @1 GiB.\n"
                "MPKI columns are on the sweep profile's boosted "
                "data-access rate; compare shapes, not absolutes.\n");
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    wsearch::runFig6bc(wsearch::bench::parseArgs(argc, argv));
    return 0;
}
