/**
 * @file
 * Reproduces paper Figures 6b and 6c: L3 working-set hit-rate and
 * MPKI curves by access type as L3 capacity sweeps. Three sections:
 *
 *   scaled   the established 1/32-scale ladder (128 KiB .. 64 MiB
 *            simulated; paper-equivalent x32) replayed exactly --
 *            the continuity rows scripts/bench_diff.py gates.
 *   gate     clustered representative sampling validated against the
 *            full-replay oracle on the 1/32-scale trace: the oracle's
 *            LLC miss count must land inside the clustered estimate's
 *            own reported 95% band (the driver EXITS NONZERO on a
 *            violation, which is what CI runs), with uniform
 *            sampling's error recorded at the same simulated-record
 *            budget.
 *   nominal  the sweep at FULL NOMINAL working-set sizes
 *            (WorkloadProfile::atNominalScale -- 4 MiB code, 1 GiB
 *            heap tail, 64 GiB shard span) under clustered sampling,
 *            which is what makes paper-scale capacities affordable:
 *            ~1/4 of each trace is simulated (12 of 96 windows plus
 *            their warmup) and every row carries its confidence band.
 *
 * Emits BENCH_fig6bc.json in the standard frame (see bench::
 * beginStandardJson) for bench_all.sh aggregation and bench_diff.py
 * gating.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "common.hh"
#include "trace/synthetic.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

void
addSweepRow(bench::JsonWriter &json, const char *section,
            uint64_t sim_bytes, uint64_t paper_eq_bytes,
            const SystemResult &r)
{
    json.beginObject();
    json.add("section", std::string(section));
    json.add("l3_sim_bytes", sim_bytes);
    json.add("l3_paper_eq_bytes", paper_eq_bytes);
    json.add("instructions", r.instructions);
    json.add("l3_accesses", r.l3.totalAccesses());
    json.add("l3_misses", r.l3.totalMisses());
    json.add("code_hit", r.l3.hitRate(AccessKind::Code));
    json.add("heap_hit", r.l3.hitRate(AccessKind::Heap));
    json.add("shard_hit", r.l3.hitRate(AccessKind::Shard));
    json.add("sampled_windows", r.sampledWindows);
    json.add("represented_windows", r.representedWindows);
    json.add("band_lo", r.l3MissBandLo());
    json.add("band_hi", r.l3MissBandHi());
    json.add("band_rel", r.bandRelHalfWidth());
    json.endObject();
}

void
printSweepTable(const WorkloadProfile &prof,
                const std::vector<uint64_t> &sizes,
                const std::vector<SystemResult> &results, bool banded)
{
    std::vector<std::string> cols = {
        "L3 (paper-eq)", "L3 (sim)", "Code hit", "Heap hit",
        "Shard hit", "Comb. hit", "Comb. MPKI"};
    if (banded)
        cols.push_back("LLC miss band (95%)");
    Table t(cols);
    for (size_t i = 0; i < sizes.size(); ++i) {
        const SystemResult &r = results[i];
        const uint64_t sim = sizes[i];
        std::vector<std::string> row = {
            formatBytes(sim * prof.sweepScale), formatBytes(sim),
            Table::fmtPct(r.l3.hitRate(AccessKind::Code), 0),
            Table::fmtPct(r.l3.hitRate(AccessKind::Heap), 0),
            Table::fmtPct(r.l3.hitRate(AccessKind::Shard), 0),
            Table::fmtPct(r.l3.hitRateTotal(), 0),
            Table::fmt(r.l3.mpkiTotal(r.instructions), 2)};
        if (banded) {
            char buf[64];
            std::snprintf(buf, sizeof buf, "%.3g..%.3g (+-%.1f%%)",
                          r.l3MissBandLo(), r.l3MissBandHi(),
                          100.0 * r.bandRelHalfWidth());
            row.push_back(buf);
        }
        t.addRow(row);
    }
    t.print();
}

/**
 * The clustered-vs-oracle gate: full contiguous replay vs planned
 * clustered and uniform replays of the same trace span, on one
 * 1/32-scale configuration. Returns the number of band violations
 * (the driver's exit status).
 */
int
runGate(const WorkloadProfile &prof, const PlatformConfig &plt1,
        bench::JsonWriter &json)
{
    RunOptions opt = bench::baseOptions(16, 3'000'000, 3'000'000);
    opt.l3Bytes = 1 * MiB;
    opt.l3Ways = 16;
    // Fixed record count, deliberately NOT WSEARCH_FAST-scaled: below
    // a few million records the trace is barely longer than the L3
    // refill time, so no sampling scheme can be simultaneously cheap
    // and unbiased and the band check would be meaningless. 6M records
    // keeps the full-replay oracle under a second.
    const uint64_t total = 6'000'000;

    SyntheticSearchTrace src(prof, opt.cores * opt.smtWays);
    const auto trace = BufferedTrace::materialize(src, total);
    const SystemConfig cfg = makeSystemConfig(prof, plt1, opt);
    const RepresentativeSampling rep =
        defaultRepresentativeSampling(total);

    double t0 = bench::nowSec();
    SystemSimulator oracle_sim(cfg);
    const SystemResult oracle = oracle_sim.run(*trace, 0, total);
    const double oracle_sec = bench::nowSec() - t0;

    t0 = bench::nowSec();
    const SamplingPlan cplan = buildClusteredPlan(*trace, total, rep);
    SystemSimulator clustered_sim(cfg);
    const SystemResult clustered =
        clustered_sim.runPlanned(*trace, cplan);
    const double clustered_sec = bench::nowSec() - t0;

    const SamplingPlan uplan = buildUniformPlan(total, rep);
    SystemSimulator uniform_sim(cfg);
    const SystemResult uniform = uniform_sim.runPlanned(*trace, uplan);

    const double o = static_cast<double>(oracle.l3.totalMisses());
    const double cerr =
        std::abs(static_cast<double>(clustered.l3.totalMisses()) - o);
    const double uerr =
        std::abs(static_cast<double>(uniform.l3.totalMisses()) - o);
    const int violations =
        (o < clustered.l3MissBandLo() || o > clustered.l3MissBandHi())
            ? 1 : 0;

    std::printf("Gate: clustered sampling vs full-replay oracle "
                "(1/32 scale, %llu records)\n",
                static_cast<unsigned long long>(total));
    std::printf("  oracle LLC misses    %12.0f  (%.2fs full replay)\n",
                o, oracle_sec);
    std::printf("  clustered estimate   %12llu  band %.0f..%.0f  "
                "(%.2fs, %.0f%% of trace simulated)\n",
                static_cast<unsigned long long>(
                    clustered.l3.totalMisses()),
                clustered.l3MissBandLo(), clustered.l3MissBandHi(),
                clustered_sec, 100.0 * cplan.simulatedFraction());
    std::printf("  uniform estimate     %12llu  (equal budget)\n",
                static_cast<unsigned long long>(
                    uniform.l3.totalMisses()));
    std::printf("  |err| clustered %.0f vs uniform %.0f; oracle %s "
                "the reported band\n\n",
                cerr, uerr,
                violations ? "OUTSIDE (GATE FAILURE)" : "inside");

    json.add("gate_records", total);
    json.add("gate_oracle_l3_misses", oracle.l3.totalMisses());
    json.add("gate_clustered_l3_misses", clustered.l3.totalMisses());
    json.add("gate_uniform_l3_misses", uniform.l3.totalMisses());
    json.add("gate_band_lo", clustered.l3MissBandLo());
    json.add("gate_band_hi", clustered.l3MissBandHi());
    json.add("gate_clustered_abs_err", cerr);
    json.add("gate_uniform_abs_err", uerr);
    json.add("gate_simulated_fraction", cplan.simulatedFraction());
    json.add("gate_oracle_sec", oracle_sec);
    json.add("gate_clustered_sec", clustered_sec);
    json.add("band_violations", static_cast<uint64_t>(violations));
    return violations;
}

int
runFig6bc(const bench::Args &args)
{
    const double t0 = bench::nowSec();
    bench::banner(args, "Figure 6b/6c",
                  "L3 hit-rate and MPKI vs capacity, by access type "
                  "(1/32-scale ladder + clustered nominal-scale "
                  "sweep)");
    const WorkloadProfile prof = WorkloadProfile::s1LeafCapacitySweep();
    const PlatformConfig plt1 = PlatformConfig::plt1();

    bench::JsonWriter json;
    bench::beginStandardJson(json, "fig6bc", args.smoke);
    json.add("cores", static_cast<uint64_t>(16));

    // --- scaled: the established 1/32-scale ladder, exact replay ---
    std::vector<uint64_t> sizes;
    std::vector<RunOptions> options;
    for (uint64_t sim = 128 * KiB; sim <= 64 * MiB; sim *= 2) {
        RunOptions opt = bench::baseOptions(16, 24'000'000, 48'000'000);
        opt.l3Bytes = sim;
        opt.l3Ways = 16; // power-of-two friendly across the sweep
        sizes.push_back(sim);
        options.push_back(opt);
    }
    json.add("scaled_measure_records", recordBudget(options[0]).measure);
    json.add("scaled_warmup_records", recordBudget(options[0]).warmup);
    const std::vector<SystemResult> results =
        runWorkloadSweep(prof, plt1, options, bench::sweepControl(args));
    printSweepTable(prof, sizes, results, false);
    std::printf("\nPaper landmarks: code misses vanish by 16 MiB; "
                "heap hit ~95%% at 1 GiB; shard ~50%% at 2 GiB; "
                "combined MPKI 3.51 @32 MiB -> 1.37 @1 GiB.\n"
                "MPKI columns are on the sweep profile's boosted "
                "data-access rate; compare shapes, not absolutes.\n\n");

    // --- gate: clustered sampling vs the full-replay oracle ---
    const int violations = runGate(prof, plt1, json);

    // --- nominal: full paper-scale working sets under clustered
    //     sampling (this is the section representative sampling
    //     exists for: a 1 GiB working set with only ~1/4 of the
    //     trace simulated per capacity point) ---
    const WorkloadProfile nominal = prof.atNominalScale();
    std::vector<uint64_t> nom_sizes;
    if (args.smoke) {
        nom_sizes = {32 * MiB, 128 * MiB};
    } else {
        nom_sizes = {64 * MiB, 256 * MiB, 1 * GiB, 2 * GiB};
    }
    std::vector<RunOptions> nom_options;
    for (const uint64_t size : nom_sizes) {
        RunOptions opt = bench::baseOptions(16, 24'000'000, 12'000'000);
        opt.l3Bytes = size;
        opt.l3Ways = 16;
        nom_options.push_back(opt);
    }
    const RecordBudget nom_budget = recordBudget(nom_options[0]);
    const SweepControl nom_control =
        bench::clusteredControl(args, nom_budget.total());
    json.add("nominal_measure_records", nom_budget.measure);
    json.add("nominal_warmup_records", nom_budget.warmup);
    json.add("sampling_policy",
             std::string(samplingPolicyName(nom_control.policy)));
    json.add("sample_window_records", nom_control.rep.windowRecords);
    json.add("sample_clusters",
             static_cast<uint64_t>(nom_control.rep.sampleWindows));
    json.add("sample_seed", sampleSeed(nom_control.rep.seed));

    std::printf("Nominal-scale sweep (%s sampling; full paper "
                "working sets: %s heap tail, %s shard span)\n",
                samplingPolicyName(nom_control.policy),
                formatBytes(nominal.heapWorkingSetBytes).c_str(),
                formatBytes(nominal.shardSpanBytes).c_str());
    const std::vector<SystemResult> nom_results =
        runWorkloadSweep(nominal, plt1, nom_options, nom_control);
    printSweepTable(nominal, nom_sizes, nom_results, true);
    std::printf("\n");

    json.beginArray("rows");
    for (size_t i = 0; i < sizes.size(); ++i)
        addSweepRow(json, "scaled", sizes[i],
                    sizes[i] * prof.sweepScale, results[i]);
    for (size_t i = 0; i < nom_sizes.size(); ++i)
        addSweepRow(json, "nominal", nom_sizes[i], nom_sizes[i],
                    nom_results[i]);
    json.endArray();

    bench::finishStandardJson(json, "fig6bc", t0);
    return violations;
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    return wsearch::runFig6bc(wsearch::bench::parseArgs(argc, argv));
}
