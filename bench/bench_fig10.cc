/**
 * @file
 * Reproduces paper Figure 10: search performance when trading L3
 * capacity for cores at constant area, for c = 2.25 .. 0.5 MiB of L3
 * per core, in ideal (fractional cores) and quantized variants, with
 * SMT on and off. The paper's optimum: c = 1 MiB/core -> 23 cores,
 * +14% QPS over the 18-core, 2.5 MiB/core baseline (SMT on).
 *
 * Inputs: the simulated L3 hit-rate curve (SMT-on and SMT-off
 * variants) + the paper's Eq. 1 IPC model + the area model. Each
 * curve's capacity points replay one shared trace buffer in parallel.
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "core/optimizer.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

HitRateCurve
curveFor(uint32_t smt_ways, const bench::Args &args)
{
    // Hit rates measured on the 1/32-scale sweep profile; the curve
    // is keyed by paper-equivalent capacity.
    const WorkloadProfile prof = WorkloadProfile::s1LeafSweep();
    std::vector<uint64_t> paper_sizes = {4608ull * KiB,
                                         13824ull * KiB};
    for (uint64_t mib = 9; mib <= 45; mib += 9)
        paper_sizes.push_back(mib * MiB);

    std::vector<RunOptions> options;
    for (const uint64_t paper : paper_sizes) {
        RunOptions opt =
            bench::baseOptions(18, 12'000'000, 30'000'000);
        opt.smtWays = smt_ways;
        opt.l3Bytes = paper / prof.sweepScale;
        options.push_back(opt);
    }
    const std::vector<SystemResult> results = runWorkloadSweep(
        prof, PlatformConfig::plt1(), options, bench::sweepControl(args));
    HitRateCurve curve;
    for (size_t i = 0; i < paper_sizes.size(); ++i)
        curve.addPoint(paper_sizes[i], results[i].l3DataHitRate());
    return curve;
}

void
runFig10(const bench::Args &args)
{
    bench::banner(args, "Figure 10",
                  "Trading L3 capacity for cores (iso-area)");
    const AmatModel amat;
    const IpcModel eq1 = IpcModel::paperEq1();
    const AreaModel area;

    for (const uint32_t smt : {2u, 1u}) {
        const HitRateCurve curve = curveFor(smt, args);
        CacheForCoresOptimizer optimizer(area, amat, eq1, curve);
        std::printf("--- SMT %s ---\n", smt == 2 ? "on" : "off");
        Table t({"L3 MiB/core", "Cores (ideal)", "Cores (quant)",
                 "dQPS ideal", "dQPS quantized"});
        for (const TradeoffPoint &p : optimizer.sweep()) {
            t.addRow({Table::fmt(p.l3MibPerCore, 2),
                      Table::fmt(p.coresIdeal, 1),
                      Table::fmtInt(p.coresQuantized),
                      Table::fmtPct(p.qpsIdeal, 1),
                      Table::fmtPct(p.qpsQuantized, 1)});
        }
        t.print();
        const TradeoffPoint best = optimizer.best();
        std::printf("Best quantized design: %.2f MiB/core, %u cores, "
                    "%+.1f%% QPS\n\n", best.l3MibPerCore,
                    best.coresQuantized, best.qpsQuantized * 100.0);
        std::fflush(stdout);
    }
    std::printf("Paper: optimum c = 1 MiB/core with 23 cores, +14%% "
                "(SMT on); SMT-off benefits slightly higher.\n");
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    wsearch::runFig10(wsearch::bench::parseArgs(argc, argv));
    return 0;
}
