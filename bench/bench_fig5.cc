/**
 * @file
 * Reproduces paper Figure 5: accessed working set of the heap and
 * shard segments as thread count scales 1..16, measured from the
 * instrumented engine serving a cache-filtered query stream. The
 * paper's findings: the shard working set grows nearly linearly with
 * threads (disjoint posting lists; little locality survives the
 * cache-server tier), while the heap working set grows much slower
 * (shared structures).
 */

#include <cstdio>

#include "search/engine_trace.hh"
#include "stats/working_set.hh"
#include "util/env.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

void
runFig5()
{
    std::printf("\n== Figure 5: Accessed working set vs threads ==\n\n");
    ProceduralIndex::Config pc; // GiB-scale nominal shard
    ProceduralIndex shard(pc);

    Table t({"Threads", "Heap WS", "Shard WS", "Heap growth",
             "Shard growth"});
    const uint64_t records_per_thread = traceBudget(3'000'000);
    double heap1 = 0, shard1 = 0;
    for (uint32_t threads : {1u, 2u, 4u, 8u, 16u}) {
        EngineTraceConfig cfg;
        cfg.numThreads = threads;
        cfg.queries.vocabSize = shard.numTerms();
        EngineTraceSource src(shard, cfg);

        // The heap segment has three dense sub-regions (metadata,
        // lexicon, per-thread scratch); track each with a bitmap.
        WorkingSetTracker meta_ws(
            vaddr::kHeapBase,
            uint64_t(shard.numDocs()) * engine_vaddr::kDocMetaBytes +
                64, 64);
        WorkingSetTracker lex_ws(
            engine_vaddr::kLexiconBase,
            uint64_t(shard.numTerms()) *
                    engine_vaddr::kLexiconEntryBytes + 64, 64);
        WorkingSetTracker scratch_ws(
            engine_vaddr::kScratchBase,
            engine_vaddr::kScratchStride * threads, 64);
        WorkingSetTracker shard_ws(vaddr::kShardBase,
                                   shard.shardBytes() + (1 << 20), 64);
        std::vector<TraceRecord> buf(8192);
        uint64_t total = records_per_thread * threads;
        while (total > 0) {
            const size_t got = src.fill(
                buf.data(), std::min<uint64_t>(buf.size(), total));
            for (size_t i = 0; i < got; ++i) {
                const TraceRecord &r = buf[i];
                if (!r.hasData())
                    continue;
                if (r.kind == AccessKind::Heap) {
                    meta_ws.touch(r.addr);
                    lex_ws.touch(r.addr);
                    scratch_ws.touch(r.addr);
                } else if (r.kind == AccessKind::Shard) {
                    shard_ws.touch(r.addr);
                }
            }
            total -= got;
        }
        const uint64_t heap_bytes = meta_ws.workingSetBytes() +
            lex_ws.workingSetBytes() + scratch_ws.workingSetBytes();
        if (heap1 == 0) {
            heap1 = static_cast<double>(heap_bytes);
            shard1 = static_cast<double>(shard_ws.workingSetBytes());
        }
        t.addRow({Table::fmtInt(threads), formatBytes(heap_bytes),
                  formatBytes(shard_ws.workingSetBytes()),
                  Table::fmt(heap_bytes / heap1, 2) + "x",
                  Table::fmt(shard_ws.workingSetBytes() / shard1, 2) +
                      "x"});
        std::fflush(stdout);
    }
    t.print();
    std::printf("\nPaper: shard WS grows ~linearly with threads; heap "
                "WS grows much slower (shared structures). At 16 "
                "threads the paper's heap WS is ~1 GiB.\n");
}

} // namespace
} // namespace wsearch

int
main()
{
    wsearch::runFig5();
    return 0;
}
