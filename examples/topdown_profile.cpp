/**
 * @file
 * Top-Down profiler example: run any built-in workload on either
 * platform and print the full Yasin-style slot breakdown, per-level
 * MPKIs, branch behaviour, and the AMAT/IPC relationship — the
 * paper's §II/III characterization workflow as a tool.
 *
 *   ./examples/topdown_profile [workload] [plt1|plt2] [cores]
 */

#include <cstdio>
#include <string>

#include "core/experiments.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

WorkloadProfile
profileByName(const std::string &name)
{
    if (name == "s2leaf")
        return WorkloadProfile::s2Leaf();
    if (name == "s3leaf")
        return WorkloadProfile::s3Leaf();
    if (name == "s1root")
        return WorkloadProfile::s1Root();
    if (name == "perlbench")
        return WorkloadProfile::specPerlbench();
    if (name == "mcf")
        return WorkloadProfile::specMcf();
    if (name == "gobmk")
        return WorkloadProfile::specGobmk();
    if (name == "omnetpp")
        return WorkloadProfile::specOmnetpp();
    if (name == "cloudsuite")
        return WorkloadProfile::cloudsuiteWebSearch();
    return WorkloadProfile::s1Leaf();
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    using namespace wsearch;
    const WorkloadProfile prof =
        profileByName(argc > 1 ? argv[1] : "s1leaf");
    const PlatformConfig plt =
        (argc > 2 && std::string(argv[2]) == "plt2")
            ? PlatformConfig::plt2() : PlatformConfig::plt1();
    RunOptions opt;
    opt.cores = argc > 3 ? std::atoi(argv[3]) : 8;
    opt.measureRecords = 2'500'000ull * opt.cores;

    std::printf("Profiling %s on %s (%u cores)...\n\n",
                prof.name.c_str(), plt.name.c_str(), opt.cores);
    const SystemResult r = runWorkload(prof, plt, opt);
    const uint64_t i = r.instructions;

    Table td({"Top-Down category", "Share of issue slots"});
    td.addRow({"Retiring", Table::fmtPct(r.topdown.retiringFrac(), 1)});
    td.addRow({"Bad speculation",
               Table::fmtPct(r.topdown.badSpecFrac(), 1)});
    td.addRow({"Front-end latency",
               Table::fmtPct(r.topdown.feLatFrac(), 1)});
    td.addRow({"Front-end bandwidth",
               Table::fmtPct(r.topdown.feBwFrac(), 1)});
    td.addRow({"Back-end memory",
               Table::fmtPct(r.topdown.beMemFrac(), 1)});
    td.addRow({"Back-end core",
               Table::fmtPct(r.topdown.beCoreFrac(), 1)});
    td.print();

    Table caches({"Level", "Total MPKI", "Code MPKI", "Data MPKI",
                  "Hit rate"});
    auto row = [&](const char *name, const CacheLevelStats &s) {
        caches.addRow({name, Table::fmt(s.mpkiTotal(i), 2),
                       Table::fmt(s.mpki(AccessKind::Code, i), 2),
                       Table::fmt(s.mpkiData(i), 2),
                       Table::fmtPct(s.hitRateTotal(), 1)});
    };
    std::printf("\n");
    row("L1-I", r.l1i);
    row("L1-D", r.l1d);
    row("L2", r.l2);
    row("L3", r.l3);
    caches.print();

    std::printf("\nIPC/thread %.3f | branch MPKI %.2f "
                "(%.1f%% mispredict) | AMAT_L3 %.1f ns\n",
                r.ipcPerThread, r.branchMpki(),
                r.branches ? 100.0 * r.mispredicts / r.branches : 0.0,
                r.amatL3Ns);
    return 0;
}
