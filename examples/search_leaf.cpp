/**
 * @file
 * End-to-end mini search system: build a materialized inverted index
 * over a synthetic corpus, stand up a two-leaf serving tree with a
 * query-cache tier, serve real queries, then run the *instrumented*
 * engine as a trace source through the cache simulator and print its
 * memory-hierarchy profile — the same pipeline the paper used with
 * production servers and Pin traces.
 *
 *   ./examples/search_leaf
 */

#include <cstdio>

#include "cpu/system.hh"
#include "search/engine_trace.hh"
#include "search/root.hh"

int
main()
{
    using namespace wsearch;

    // --- Part 1: functional search over a real (materialized) index.
    CorpusConfig cc;
    cc.numDocs = 5000;
    cc.vocabSize = 4000;
    cc.avgDocLen = 100;
    CorpusGenerator corpus(cc);
    MaterializedIndex index(corpus);
    std::printf("Built index: %u docs, %u terms, %s of postings\n",
                index.numDocs(), index.numTerms(),
                formatBytes(index.shardBytes()).c_str());

    LeafServer::Config lc0, lc1;
    lc0.numThreads = lc1.numThreads = 2;
    lc0.docIdStride = lc1.docIdStride = 2;
    lc1.docIdOffset = 1;
    LeafServer leaf0(index, lc0), leaf1(index, lc1);
    ServingTree tree({&leaf0, &leaf1}, 1024);

    QueryGenerator::Config qc;
    qc.vocabSize = cc.vocabSize;
    qc.distinctQueries = 2000;
    QueryGenerator queries(qc);
    for (int i = 0; i < 2000; ++i) {
        SearchRequest req;
        req.query = queries.next();
        tree.handle(i % 2, req);
    }
    std::printf("Served %llu queries; cache hit rate %.1f%%; "
                "leaf fan-outs %llu\n",
                (unsigned long long)tree.stats().queries,
                100.0 * tree.cache().hitRate(),
                (unsigned long long)tree.stats().leafQueries);

    const Query sample = queries.materialize(123);
    SearchRequest sample_req;
    sample_req.query = sample;
    const auto results = tree.handle(0, sample_req).docs;
    std::printf("Sample query %llu (%zu terms, %s): top hits ",
                (unsigned long long)sample.id, sample.terms.size(),
                sample.conjunctive ? "AND" : "OR");
    for (size_t i = 0; i < std::min<size_t>(3, results.size()); ++i)
        std::printf("doc%u(%.2f) ", results[i].doc, results[i].score);
    std::printf("\n\n");

    // --- Part 2: the instrumented engine as a trace source over a
    //     production-scale procedural shard, driven through the
    //     PLT1-like hierarchy.
    ProceduralIndex::Config pc;
    pc.numDocs = 1u << 22;
    pc.numTerms = 1u << 20;
    ProceduralIndex shard(pc);
    std::printf("Procedural shard: %s nominal\n",
                formatBytes(shard.shardBytes()).c_str());

    EngineTraceConfig tc;
    tc.numThreads = 8;
    tc.queries.vocabSize = shard.numTerms();
    EngineTraceSource trace(shard, tc);

    SystemConfig sys;
    sys.hierarchy.numCores = 8;
    sys.hierarchy.llc = cache_gen_llc(40 * MiB, 64, 20);
    SystemSimulator sim(sys);
    const SystemResult r = sim.run(trace, 4'000'000, 12'000'000);

    std::printf("Engine-trace profile on a 40 MiB-L3 hierarchy:\n");
    std::printf("  queries executed    %llu (+%llu absorbed by the "
                "cache tier)\n",
                (unsigned long long)trace.queriesExecuted(),
                (unsigned long long)trace.cacheAbsorbed());
    std::printf("  IPC per thread      %.2f\n", r.ipcPerThread);
    std::printf("  L2 MPKI             %.2f\n",
                r.l2.mpkiTotal(r.instructions));
    std::printf("  L3 MPKI             %.2f (shard %.2f, heap %.2f)\n",
                r.l3.mpkiTotal(r.instructions),
                r.l3.mpki(AccessKind::Shard, r.instructions),
                r.l3.mpki(AccessKind::Heap, r.instructions));
    std::printf("  L3 hit rate         %.1f%%\n",
                100.0 * r.l3.hitRateTotal());
    return 0;
}
