/**
 * @file
 * Quickstart: build a PLT1-like cache hierarchy, run a calibrated
 * synthetic search trace through the full system simulator (caches +
 * branch predictors + Top-Down core model), and print the headline
 * metrics. This is the 20-line tour of the library's public API.
 *
 *   ./examples/quickstart [million_records]
 */

#include <cstdio>
#include <cstdlib>

#include "core/experiments.hh"

int
main(int argc, char **argv)
{
    using namespace wsearch;

    const uint64_t millions =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16;

    // 1. Pick a workload (Google-search-leaf-like) and a platform
    //    (Haswell-like "PLT1" from the paper's Table II).
    const WorkloadProfile workload = WorkloadProfile::s1Leaf();
    const PlatformConfig platform = PlatformConfig::plt1();

    // 2. Describe the run: 16 cores, SMT off, default 45 MiB L3.
    RunOptions opt;
    opt.cores = 16;
    opt.measureRecords = millions * 1'000'000;

    // 3. Simulate.
    const SystemResult r = runWorkload(workload, platform, opt);

    // 4. Read off the metrics the paper reports.
    std::printf("Workload: %s on %s (%u cores)\n",
                workload.name.c_str(), platform.name.c_str(),
                opt.cores);
    std::printf("  instructions        %llu\n",
                (unsigned long long)r.instructions);
    std::printf("  IPC per thread      %.2f\n", r.ipcPerThread);
    std::printf("  L3 load MPKI        %.2f\n", r.l3LoadMpki());
    std::printf("  L2 instr MPKI       %.2f\n", r.l2InstrMpki());
    std::printf("  branch MPKI         %.2f\n", r.branchMpki());
    std::printf("  L3 hit rate         %.1f%%\n",
                100.0 * r.l3.hitRateTotal());
    std::printf("  AMAT at L3          %.1f ns\n", r.amatL3Ns);
    std::printf("  Top-Down: retiring %.0f%%, bad-spec %.0f%%, "
                "FE %.0f%%, BE-mem %.0f%%\n",
                100 * r.topdown.retiringFrac(),
                100 * r.topdown.badSpecFrac(),
                100 * (r.topdown.feLatFrac() + r.topdown.feBwFrac()),
                100 * r.topdown.beMemFrac());
    return 0;
}
