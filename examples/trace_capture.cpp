/**
 * @file
 * Trace capture & replay: record the instrumented engine's memory
 * trace to a binary file (the workflow the paper used with Pin), then
 * replay it through two different hierarchies — demonstrating that a
 * captured trace is a reusable artifact giving bit-identical streams.
 *
 *   ./examples/trace_capture [records] [path]
 */

#include <cstdio>
#include <cstdlib>

#include "memsim/simulator.hh"
#include "search/engine_trace.hh"
#include "trace/trace_file.hh"

int
main(int argc, char **argv)
{
    using namespace wsearch;

    const uint64_t records =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2'000'000;
    const std::string path =
        argc > 2 ? argv[2] : "/tmp/wsearch_engine.trace";

    // 1. Capture: run the instrumented engine and write its records.
    ProceduralIndex::Config pc;
    pc.numDocs = 1u << 20;
    pc.numTerms = 1u << 17;
    ProceduralIndex shard(pc);
    EngineTraceConfig tc;
    tc.numThreads = 4;
    tc.queries.vocabSize = shard.numTerms();
    EngineTraceSource engine(shard, tc);

    {
        TraceFileWriter writer(path, tc.numThreads);
        if (!writer.ok()) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return 1;
        }
        const uint64_t written = writer.captureFrom(engine, records);
        std::printf("captured %llu records (%llu queries) to %s\n",
                    (unsigned long long)written,
                    (unsigned long long)engine.queriesExecuted(),
                    path.c_str());
    }

    // 2. Replay through two hierarchies from the same file.
    for (const uint64_t l3 : {8ull << 20, 40ull << 20}) {
        TraceFileReader reader(path);
        if (!reader.ok()) {
            std::fprintf(stderr, "cannot read %s\n", path.c_str());
            return 1;
        }
        HierarchyConfig h;
        h.numCores = tc.numThreads;
        h.l3 = {l3, 64, 20};
        CacheHierarchy hier(h);
        const SimResult r =
            runTrace(reader, hier, records / 4, records / 2);
        std::printf("replay with %-7s L3: L2 MPKI %6.2f | L3 MPKI "
                    "%6.2f | L3 hit %5.1f%%\n",
                    formatBytes(l3).c_str(),
                    r.l2.mpkiTotal(r.instructions),
                    r.l3.mpkiTotal(r.instructions),
                    100.0 * r.l3.hitRateTotal());
    }
    std::remove(path.c_str());
    return 0;
}
