/**
 * @file
 * Design-space explorer: a small CLI over the library's what-if
 * machinery. Sweeps an L3 (or L4) capacity range for a chosen
 * workload, prints hit rates and model-projected QPS, and evaluates a
 * user-specified cache-for-cores trade (the paper's §IV methodology
 * as a tool).
 *
 *   ./examples/hierarchy_explorer l3 [workload]
 *   ./examples/hierarchy_explorer l4 [workload]
 *   ./examples/hierarchy_explorer trade <mib_per_core>
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/experiments.hh"
#include "core/l4_evaluator.hh"
#include "core/optimizer.hh"
#include "util/table.hh"

namespace wsearch {
namespace {

WorkloadProfile
profileByName(const std::string &name)
{
    if (name == "s1root")
        return WorkloadProfile::s1Root();
    if (name == "mcf")
        return WorkloadProfile::specMcf();
    if (name == "cloudsuite")
        return WorkloadProfile::cloudsuiteWebSearch();
    if (name == "sweep")
        return WorkloadProfile::s1LeafSweep();
    return WorkloadProfile::s1Leaf();
}

int
sweepL3(const WorkloadProfile &prof)
{
    std::printf("L3 capacity sweep for %s\n\n", prof.name.c_str());
    const AmatModel amat;
    const IpcModel eq1 = IpcModel::paperEq1();
    Table t({"L3 size", "Hit rate", "AMAT (ns)", "Eq.1 QPS/core"});
    for (uint64_t size = 4 * MiB; size <= 64 * MiB; size *= 2) {
        RunOptions opt;
        opt.cores = 8;
        opt.l3Bytes = size;
        opt.measureRecords = 8'000'000;
        const SystemResult r =
            runWorkload(prof, PlatformConfig::plt1(), opt);
        const double h = r.l3.hitRateTotal();
        t.addRow({formatBytes(size), Table::fmtPct(h, 1),
                  Table::fmt(amat.amat(h), 1),
                  Table::fmt(eq1.ipc(amat.amat(h)), 3)});
    }
    t.print();
    return 0;
}

int
sweepL4(const WorkloadProfile &prof)
{
    std::printf("L4 capacity sweep for %s (L3 fixed at 23 MiB-eq)\n\n",
                prof.name.c_str());
    Table t({"L4 size (paper-eq)", "Hit rate", "DRAM accesses "
             "filtered"});
    const uint32_t scale = prof.sweepScale;
    for (uint64_t size = 64 * MiB; size <= 2 * GiB; size *= 2) {
        RunOptions opt;
        opt.cores = 8;
        opt.l3Bytes = 23 * MiB / scale;
        opt.l4 = cache_gen_victim(size / scale, 64);
        opt.measureRecords = 10'000'000;
        const SystemResult r =
            runWorkload(prof, PlatformConfig::plt1(), opt);
        t.addRow({formatBytes(size),
                  Table::fmtPct(r.l4.hitRateTotal(), 1),
                  Table::fmtPct(r.l4.hitRateTotal(), 1)});
    }
    t.print();
    return 0;
}

int
evaluateTrade(double mib_per_core)
{
    std::printf("Iso-area trade: %.2f MiB of L3 per core\n\n",
                mib_per_core);
    // Hit rates come from the 1/32-scale sweep profile (the CAT
    // locality band cannot be warmed at native rates; see DESIGN.md).
    const WorkloadProfile prof = WorkloadProfile::s1LeafSweep();
    RunOptions opt;
    opt.cores = 18;
    opt.smtWays = 2;
    opt.measureRecords = 8'000'000;
    opt.warmupRecords = 20'000'000;
    HitRateCurve curve;
    for (uint64_t mib = 9; mib <= 45; mib += 9) {
        opt.l3Bytes = mib * MiB / prof.sweepScale;
        const SystemResult r =
            runWorkload(prof, PlatformConfig::plt1(), opt);
        curve.addPoint(mib * MiB, r.l3DataHitRate());
    }
    CacheForCoresOptimizer optimizer(AreaModel{}, AmatModel{},
                                     IpcModel::paperEq1(), curve);
    const TradeoffPoint p = optimizer.evaluate(mib_per_core);
    std::printf("cores (ideal/quantized): %.1f / %u\n", p.coresIdeal,
                p.coresQuantized);
    std::printf("QPS vs 18-core baseline: %+.1f%% (ideal), %+.1f%% "
                "(quantized)\n", p.qpsIdeal * 100, p.qpsQuantized * 100);
    std::printf("decomposition: %+.1f%% from cores, %+.1f%% from "
                "cache\n", p.gainFromCores * 100, p.lossFromCache * 100);
    return 0;
}

} // namespace
} // namespace wsearch

int
main(int argc, char **argv)
{
    using namespace wsearch;
    const std::string mode = argc > 1 ? argv[1] : "l3";
    if (mode == "trade") {
        const double c = argc > 2 ? std::atof(argv[2]) : 1.0;
        return evaluateTrade(c);
    }
    const WorkloadProfile prof =
        profileByName(argc > 2 ? argv[2] : (mode == "l4" ? "sweep"
                                                         : "s1leaf"));
    if (mode == "l4")
        return sweepL4(prof);
    return sweepL3(prof);
}
