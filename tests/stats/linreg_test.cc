#include <gtest/gtest.h>

#include "stats/linreg.hh"
#include "util/rng.hh"

namespace wsearch {
namespace {

TEST(LinReg, ExactLine)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    std::vector<double> ys = {3, 5, 7, 9, 11}; // y = 2x + 1
    const LinearFit f = fitLinear(xs, ys);
    EXPECT_NEAR(f.slope, 2.0, 1e-12);
    EXPECT_NEAR(f.intercept, 1.0, 1e-12);
    EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(LinReg, NegativeSlopeLikeEq1)
{
    // The paper's Eq. 1: IPC = -8.62e-3 * AMAT + 1.78.
    std::vector<double> xs, ys;
    for (double amat = 50; amat <= 70; amat += 2) {
        xs.push_back(amat);
        ys.push_back(-8.62e-3 * amat + 1.78);
    }
    const LinearFit f = fitLinear(xs, ys);
    EXPECT_NEAR(f.slope, -8.62e-3, 1e-9);
    EXPECT_NEAR(f.intercept, 1.78, 1e-9);
}

TEST(LinReg, NoisyDataStillRecovers)
{
    Rng rng(17);
    std::vector<double> xs, ys;
    for (int i = 0; i < 500; ++i) {
        const double x = rng.nextDouble() * 100;
        xs.push_back(x);
        ys.push_back(0.5 * x + 10 + (rng.nextDouble() - 0.5));
    }
    const LinearFit f = fitLinear(xs, ys);
    EXPECT_NEAR(f.slope, 0.5, 0.01);
    EXPECT_NEAR(f.intercept, 10.0, 0.5);
    EXPECT_GT(f.r2, 0.99);
}

TEST(LinReg, ConstantXDegenerate)
{
    std::vector<double> xs = {2, 2, 2};
    std::vector<double> ys = {1, 2, 3};
    const LinearFit f = fitLinear(xs, ys);
    EXPECT_DOUBLE_EQ(f.slope, 0.0);
    EXPECT_DOUBLE_EQ(f.intercept, 2.0);
}

TEST(LinReg, EvalInterpolates)
{
    LinearFit f;
    f.slope = -2.0;
    f.intercept = 100.0;
    EXPECT_DOUBLE_EQ(f.eval(10), 80.0);
}

} // namespace
} // namespace wsearch
