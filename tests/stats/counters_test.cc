#include <gtest/gtest.h>

#include "stats/counters.hh"

namespace wsearch {
namespace {

TEST(CacheLevelStats, RecordAndTotals)
{
    CacheLevelStats s;
    s.record(AccessKind::Code, true);
    s.record(AccessKind::Code, false);
    s.record(AccessKind::Heap, true);
    s.record(AccessKind::Shard, true);
    EXPECT_EQ(s.totalAccesses(), 4u);
    EXPECT_EQ(s.totalMisses(), 3u);
    EXPECT_EQ(s.missesOf(AccessKind::Code), 1u);
    EXPECT_EQ(s.accessesOf(AccessKind::Code), 2u);
}

TEST(CacheLevelStats, Mpki)
{
    CacheLevelStats s;
    for (int i = 0; i < 10; ++i)
        s.record(AccessKind::Heap, true);
    EXPECT_DOUBLE_EQ(s.mpki(AccessKind::Heap, 1000), 10.0);
    EXPECT_DOUBLE_EQ(s.mpkiTotal(2000), 5.0);
    EXPECT_DOUBLE_EQ(s.mpki(AccessKind::Heap, 0), 0.0);
}

TEST(CacheLevelStats, MpkiDataExcludesCode)
{
    CacheLevelStats s;
    for (int i = 0; i < 5; ++i)
        s.record(AccessKind::Code, true);
    for (int i = 0; i < 3; ++i)
        s.record(AccessKind::Heap, true);
    for (int i = 0; i < 2; ++i)
        s.record(AccessKind::Shard, true);
    EXPECT_DOUBLE_EQ(s.mpkiData(1000), 5.0);
    EXPECT_DOUBLE_EQ(s.mpkiTotal(1000), 10.0);
}

TEST(CacheLevelStats, HitRate)
{
    CacheLevelStats s;
    s.record(AccessKind::Heap, false);
    s.record(AccessKind::Heap, false);
    s.record(AccessKind::Heap, true);
    s.record(AccessKind::Heap, true);
    EXPECT_DOUBLE_EQ(s.hitRate(AccessKind::Heap), 0.5);
    EXPECT_DOUBLE_EQ(s.hitRate(AccessKind::Stack), 1.0); // no accesses
    EXPECT_DOUBLE_EQ(s.hitRateTotal(), 0.5);
}

TEST(CacheLevelStats, Accumulate)
{
    CacheLevelStats a, b;
    a.record(AccessKind::Code, true);
    b.record(AccessKind::Code, true);
    b.record(AccessKind::Heap, false);
    a += b;
    EXPECT_EQ(a.totalAccesses(), 3u);
    EXPECT_EQ(a.totalMisses(), 2u);
}

TEST(CacheLevelStats, Reset)
{
    CacheLevelStats s;
    s.record(AccessKind::Heap, true);
    s.prefetchIssued = 5;
    s.reset();
    EXPECT_EQ(s.totalAccesses(), 0u);
    EXPECT_EQ(s.prefetchIssued, 0u);
}

TEST(RunningStat, Moments)
{
    RunningStat r;
    for (double x : {1.0, 2.0, 3.0, 4.0, 5.0})
        r.add(x);
    EXPECT_EQ(r.count(), 5u);
    EXPECT_DOUBLE_EQ(r.mean(), 3.0);
    EXPECT_DOUBLE_EQ(r.min(), 1.0);
    EXPECT_DOUBLE_EQ(r.max(), 5.0);
    EXPECT_DOUBLE_EQ(r.variance(), 2.5);
}

TEST(AccessKindNames, AllNamed)
{
    EXPECT_STREQ(accessKindName(AccessKind::Code), "code");
    EXPECT_STREQ(accessKindName(AccessKind::Heap), "heap");
    EXPECT_STREQ(accessKindName(AccessKind::Shard), "shard");
    EXPECT_STREQ(accessKindName(AccessKind::Stack), "stack");
}

} // namespace
} // namespace wsearch
