#include <gtest/gtest.h>

#include "stats/reuse.hh"
#include "util/zipf.hh"

namespace wsearch {
namespace {

TEST(ReuseHistogram, FirstTouchIsCold)
{
    ReuseTimeHistogram h;
    h.touch(0x1000);
    h.touch(0x2000);
    EXPECT_EQ(h.coldTouches(), 2u);
    EXPECT_EQ(h.reuses(), 0u);
}

TEST(ReuseHistogram, ImmediateReuseInLowBucket)
{
    ReuseTimeHistogram h;
    h.touch(0x1000);
    h.touch(0x1000);
    EXPECT_EQ(h.reuses(), 1u);
    EXPECT_EQ(h.bucket(0), 1u); // gap of 1
}

TEST(ReuseHistogram, GapBucketing)
{
    ReuseTimeHistogram h;
    h.touch(0x1000);
    for (int i = 0; i < 7; ++i)
        h.touch(0x2000 + i * 64); // 7 intervening refs
    h.touch(0x1000); // gap of 8 -> bucket 3
    EXPECT_EQ(h.bucket(3), 1u);
}

TEST(ReuseHistogram, CumulativeMonotone)
{
    ReuseTimeHistogram h;
    Rng rng(1);
    ZipfSampler z(1024, 0.9);
    for (int i = 0; i < 100000; ++i)
        h.touch(z.sample(rng) * 64);
    double prev = 0;
    for (uint32_t b = 0; b < ReuseTimeHistogram::kBuckets; ++b) {
        const double c = h.cumulativeAt(b);
        EXPECT_GE(c, prev);
        prev = c;
    }
    EXPECT_NEAR(prev, 1.0, 1e-12);
}

TEST(ReuseHistogram, HotVsColdSegmentsDiffer)
{
    // A hot small working set has much shorter reuse gaps than a
    // streaming one -- the heap/shard contrast of paper §III-B.
    ReuseTimeHistogram hot, streaming;
    Rng rng(2);
    ZipfSampler z(256, 1.0);
    for (int i = 0; i < 200000; ++i) {
        hot.touch(z.sample(rng) * 64);
        streaming.touch(static_cast<uint64_t>(i) * 64);
    }
    EXPECT_GT(hot.reuses(), 100000u);
    EXPECT_EQ(streaming.reuses(), 0u);
    EXPECT_LT(hot.medianGap(), 4096u);
}

TEST(ReuseHistogram, SamplingStillSeesReuse)
{
    ReuseTimeHistogram sampled(4); // ~1/16 of blocks tracked
    Rng rng(3);
    ZipfSampler z(4096, 0.9);
    for (int i = 0; i < 400000; ++i)
        sampled.touch(z.sample(rng) * 64);
    EXPECT_GT(sampled.reuses(), 1000u);
    EXPECT_EQ(sampled.references(), 400000u);
}

} // namespace
} // namespace wsearch
