#include <gtest/gtest.h>

#include "stats/working_set.hh"
#include "util/units.hh"

namespace wsearch {
namespace {

TEST(WorkingSet, CountsDistinctBlocks)
{
    WorkingSetTracker ws(0x1000, 1 * MiB, 64);
    ws.touch(0x1000);
    ws.touch(0x1001); // same block
    ws.touch(0x1040); // next block
    EXPECT_EQ(ws.distinctBlocks(), 2u);
    EXPECT_EQ(ws.workingSetBytes(), 128u);
}

TEST(WorkingSet, IgnoresOutOfRegion)
{
    WorkingSetTracker ws(0x100000, 4 * KiB, 64);
    ws.touch(0x0);
    ws.touch(0x100000 + 4 * KiB); // one past the end
    ws.touch(0xFFFFFFFFFFFF);
    EXPECT_EQ(ws.distinctBlocks(), 0u);
}

TEST(WorkingSet, LastBlockInRegion)
{
    WorkingSetTracker ws(0, 4 * KiB, 64);
    ws.touch(4 * KiB - 1);
    EXPECT_EQ(ws.distinctBlocks(), 1u);
}

TEST(WorkingSet, FullCoverage)
{
    WorkingSetTracker ws(0, 64 * KiB, 64);
    for (uint64_t a = 0; a < 64 * KiB; a += 64)
        ws.touch(a);
    EXPECT_EQ(ws.distinctBlocks(), 1024u);
    EXPECT_EQ(ws.workingSetBytes(), 64 * KiB);
}

TEST(WorkingSet, RepeatedTouchesIdempotent)
{
    WorkingSetTracker ws(0, 1 * MiB, 64);
    for (int i = 0; i < 1000; ++i)
        ws.touch(128);
    EXPECT_EQ(ws.distinctBlocks(), 1u);
}

TEST(WorkingSet, Reset)
{
    WorkingSetTracker ws(0, 1 * MiB, 64);
    ws.touch(0);
    ws.touch(64);
    ws.reset();
    EXPECT_EQ(ws.distinctBlocks(), 0u);
    ws.touch(0);
    EXPECT_EQ(ws.distinctBlocks(), 1u);
}

TEST(WorkingSet, LargeBlockGranularity)
{
    WorkingSetTracker ws(0, 1 * MiB, 4096);
    ws.touch(0);
    ws.touch(4095);
    ws.touch(4096);
    EXPECT_EQ(ws.distinctBlocks(), 2u);
    EXPECT_EQ(ws.workingSetBytes(), 8192u);
}

} // namespace
} // namespace wsearch
