#include <gtest/gtest.h>

#include "cpu/system.hh"
#include "trace/synthetic.hh"

namespace wsearch {
namespace {

WorkloadProfile
tinyProfile()
{
    WorkloadProfile p = WorkloadProfile::s1Leaf();
    p.code.footprintBytes = 128 * KiB;
    p.heapWorkingSetBytes = 4 * MiB;
    p.shardSpanBytes = 256 * MiB;
    return p;
}

SystemConfig
smallSystem(uint32_t cores = 1)
{
    SystemConfig s;
    s.hierarchy.numCores = cores;
    s.hierarchy.l1i = cache_gen_l1(8 * KiB, 64, 4);
    s.hierarchy.l1d = cache_gen_l1(8 * KiB, 64, 4);
    s.hierarchy.l2 = cache_gen_l2(64 * KiB, 64, 8);
    s.hierarchy.llc = cache_gen_llc(1 * MiB, 64, 8);
    return s;
}

TEST(System, ProducesSaneMetrics)
{
    SyntheticSearchTrace trace(tinyProfile(), 1);
    SystemSimulator sim(smallSystem());
    const SystemResult r = sim.run(trace, 100000, 400000);
    EXPECT_EQ(r.instructions, 400000u);
    EXPECT_GT(r.ipcPerThread, 0.1);
    EXPECT_LT(r.ipcPerThread, 4.0);
    EXPECT_GT(r.branches, 0u);
    EXPECT_GT(r.mispredicts, 0u);
    EXPECT_LE(r.mispredicts, r.branches);
    EXPECT_GT(r.l2InstrMpki(), 0.0);
    EXPECT_GT(r.amatL3Ns, 0.0);
}

TEST(System, TopDownFractionsSumToOne)
{
    SyntheticSearchTrace trace(tinyProfile(), 1);
    SystemSimulator sim(smallSystem());
    const SystemResult r = sim.run(trace, 50000, 200000);
    const TopDown &td = r.topdown;
    EXPECT_NEAR(td.retiringFrac() + td.badSpecFrac() + td.feLatFrac() +
                    td.feBwFrac() + td.beMemFrac() + td.beCoreFrac(),
                1.0, 1e-9);
    // The tiny test hierarchy thrashes badly, so retiring is low, but
    // it must stay a visible share of the slot budget.
    EXPECT_GT(td.retiringFrac(), 0.01);
    EXPECT_LT(td.retiringFrac(), 0.95);
}

TEST(System, BiggerL3ImprovesIpc)
{
    auto ipc_with_l3 = [](uint64_t l3) {
        SyntheticSearchTrace trace(tinyProfile(), 1);
        SystemConfig cfg = smallSystem();
        cfg.hierarchy.llc = cache_gen_llc(l3, 64, 8);
        SystemSimulator sim(cfg);
        return sim.run(trace, 200000, 600000).ipcPerThread;
    };
    EXPECT_GT(ipc_with_l3(8 * MiB), ipc_with_l3(256 * KiB));
}

TEST(System, L4ReducesAmat)
{
    auto amat_with = [](bool l4) {
        WorkloadProfile p = tinyProfile();
        p.heapHotFrac = 0.4;
        p.heapWarmFrac = 0.1; // plenty of shared-heap reuse beyond L3
        p.heapWorkingSetBytes = 2 * MiB;
        SyntheticSearchTrace trace(p, 1);
        SystemConfig cfg = smallSystem();
        if (l4)
            cfg.hierarchy.l4 = cache_gen_victim(8 * MiB, 64);
        SystemSimulator sim(cfg);
        return sim.run(trace, 400000, 800000).amatL3Ns;
    };
    EXPECT_LT(amat_with(true), amat_with(false));
}

TEST(System, TlbWalksCountedWhenModeled)
{
    SyntheticSearchTrace trace(tinyProfile(), 1);
    SystemConfig cfg = smallSystem();
    cfg.modelTlb = true;
    SystemSimulator sim(cfg);
    const SystemResult r = sim.run(trace, 50000, 200000);
    EXPECT_GT(r.dtlbAccesses, 0u);
    EXPECT_GT(r.dtlbWalks, 0u);
}

TEST(System, HugePagesImprovePerf)
{
    auto ipc_with = [](const TlbConfig &tlb) {
        WorkloadProfile p = tinyProfile();
        p.heapWorkingSetBytes = 64 * MiB; // TLB-hostile at 4 KiB pages
        SyntheticSearchTrace trace(p, 1);
        SystemConfig cfg = smallSystem();
        cfg.modelTlb = true;
        cfg.dtlb = tlb;
        SystemSimulator sim(cfg);
        return sim.run(trace, 200000, 600000).ipcPerThread;
    };
    EXPECT_GT(ipc_with(TlbConfig::huge2M()), ipc_with(TlbConfig{}));
}

TEST(System, MultiCoreSplitsThreads)
{
    SyntheticSearchTrace trace(tinyProfile(), 4);
    SystemConfig cfg = smallSystem(4);
    SystemSimulator sim(cfg);
    const SystemResult r = sim.run(trace, 100000, 400000);
    EXPECT_EQ(r.instructions, 400000u);
    EXPECT_GT(r.ipcPerThread, 0.1);
}

TEST(System, SmtContentionRaisesMissRates)
{
    // Two threads sharing one core's L1/L2 must miss more (per
    // instruction) than two threads on two cores.
    auto l2_mpki = [](uint32_t cores, uint32_t smt) {
        SyntheticSearchTrace trace(tinyProfile(), 2);
        SystemConfig cfg = smallSystem(cores);
        cfg.hierarchy.smtWays = smt;
        SystemSimulator sim(cfg);
        const SystemResult r = sim.run(trace, 200000, 600000);
        return r.l2.mpkiTotal(r.instructions);
    };
    EXPECT_GT(l2_mpki(1, 2), l2_mpki(2, 1));
}

TEST(System, DeterministicAcrossRuns)
{
    auto run_once = []() {
        SyntheticSearchTrace trace(tinyProfile(), 2);
        SystemSimulator sim(smallSystem(2));
        return sim.run(trace, 50000, 200000);
    };
    const SystemResult a = run_once();
    const SystemResult b = run_once();
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.l3.totalMisses(), b.l3.totalMisses());
    EXPECT_DOUBLE_EQ(a.ipcPerThread, b.ipcPerThread);
}

} // namespace
} // namespace wsearch
