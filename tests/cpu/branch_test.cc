#include <gtest/gtest.h>

#include "cpu/branch.hh"
#include "util/rng.hh"

namespace wsearch {
namespace {

TEST(Bimodal, LearnsAlwaysTaken)
{
    BimodalPredictor p;
    const uint64_t pc = 0x400100;
    for (int i = 0; i < 10; ++i)
        p.update(pc, true);
    EXPECT_TRUE(p.predict(pc));
}

TEST(Bimodal, LearnsStrongBias)
{
    BimodalPredictor p;
    Rng rng(1);
    const uint64_t pc = 0x400200;
    int correct = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        const bool taken = rng.nextBool(0.9);
        if (p.predictAndUpdate(pc, taken))
            ++correct;
    }
    EXPECT_GT(static_cast<double>(correct) / n, 0.85);
}

TEST(Bimodal, CannotLearnAlternating)
{
    BimodalPredictor p;
    const uint64_t pc = 0x400300;
    int correct = 0;
    for (int i = 0; i < 1000; ++i)
        if (p.predictAndUpdate(pc, i % 2 == 0))
            ++correct;
    EXPECT_LT(correct, 600);
}

TEST(GShare, LearnsAlternatingViaHistory)
{
    GSharePredictor p;
    const uint64_t pc = 0x400400;
    int correct = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i)
        if (p.predictAndUpdate(pc, i % 2 == 0))
            ++correct;
    // After warmup the pattern is fully predictable from history.
    EXPECT_GT(static_cast<double>(correct) / n, 0.9);
}

TEST(GShare, LearnsPeriodicPattern)
{
    GSharePredictor p;
    const uint64_t pc = 0x400500;
    int correct = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i)
        if (p.predictAndUpdate(pc, i % 4 != 3))
            ++correct;
    EXPECT_GT(static_cast<double>(correct) / n, 0.85);
}

TEST(Tournament, AtLeastAsGoodAsComponentsOnMix)
{
    // Mixed workload: some biased branches (bimodal-friendly), some
    // pattern branches (gshare-friendly).
    auto run = [](BranchPredictor &p) {
        Rng rng(5);
        int correct = 0;
        const int n = 40000;
        for (int i = 0; i < n; ++i) {
            const uint64_t pc = 0x400000 + (i % 16) * 64;
            bool taken;
            if (i % 16 < 8)
                taken = rng.nextBool(0.95); // biased
            else
                taken = (i / 16) % 2 == 0; // alternating per branch
            if (p.predictAndUpdate(pc, taken))
                ++correct;
        }
        return static_cast<double>(correct) / n;
    };
    BimodalPredictor bi;
    GSharePredictor gs;
    TournamentPredictor tour;
    const double a_bi = run(bi);
    const double a_tour = run(tour);
    EXPECT_GE(a_tour, a_bi - 0.02);
    EXPECT_GT(a_tour, 0.85);
}

TEST(AllPredictors, RandomBranchesNearCoinFlip)
{
    // Data-dependent branches (the paper's misprediction source) are
    // irreducible: every predictor lands near 50%.
    auto run = [](BranchPredictor &p, uint64_t seed) {
        Rng rng(seed);
        int correct = 0;
        const int n = 50000;
        for (int i = 0; i < n; ++i) {
            const uint64_t pc = 0x400000 + (i % 64) * 16;
            if (p.predictAndUpdate(pc, rng.nextBool(0.5)))
                ++correct;
        }
        return static_cast<double>(correct) / n;
    };
    BimodalPredictor bi;
    GSharePredictor gs;
    TournamentPredictor tour;
    EXPECT_NEAR(run(bi, 1), 0.5, 0.05);
    EXPECT_NEAR(run(gs, 2), 0.5, 0.05);
    EXPECT_NEAR(run(tour, 3), 0.5, 0.05);
}

TEST(Predictors, Names)
{
    EXPECT_EQ(BimodalPredictor().name(), "bimodal");
    EXPECT_EQ(GSharePredictor().name(), "gshare");
    EXPECT_EQ(TournamentPredictor().name(), "tournament");
}

} // namespace
} // namespace wsearch
