#include <gtest/gtest.h>

#include "cpu/tlb.hh"
#include "util/rng.hh"
#include "util/zipf.hh"

namespace wsearch {
namespace {

TEST(Tlb, FirstAccessWalks)
{
    Tlb t(TlbConfig{});
    EXPECT_EQ(t.access(0x100000), TlbLevel::Walk);
    EXPECT_EQ(t.walks(), 1u);
}

TEST(Tlb, SecondAccessHitsL1)
{
    Tlb t(TlbConfig{});
    t.access(0x100000);
    EXPECT_EQ(t.access(0x100000), TlbLevel::L1);
    EXPECT_EQ(t.access(0x100FFF), TlbLevel::L1); // same 4 KiB page
    EXPECT_EQ(t.walks(), 1u);
}

TEST(Tlb, DifferentPagesWalkSeparately)
{
    Tlb t(TlbConfig{});
    t.access(0x100000);
    EXPECT_EQ(t.access(0x101000), TlbLevel::Walk); // next page
    EXPECT_EQ(t.walks(), 2u);
}

TEST(Tlb, L2CatchesL1Evictions)
{
    TlbConfig cfg;
    cfg.l1Entries = 8;
    cfg.l1Ways = 8; // fully associative L1 TLB of 8 entries
    cfg.l2Entries = 512;
    Tlb t(cfg);
    // Touch 9 pages; the first one falls to L2 but not to a walk.
    for (uint64_t p = 0; p <= 8; ++p)
        t.access(p * 4096);
    EXPECT_EQ(t.access(0), TlbLevel::L2);
}

TEST(Tlb, HugePagesCutWalksOnLargeFootprint)
{
    // The paper's Figure 2c mechanism: a GiB-scale footprint has 256K
    // 4 KiB pages (TLB-hostile) but only 512 x 2 MiB pages.
    auto walks = [](const TlbConfig &cfg) {
        Tlb t(cfg);
        ZipfSampler z(1 << 18, 0.8); // 256K distinct 4 KiB pages
        Rng rng(3);
        for (int i = 0; i < 300000; ++i)
            t.access(z.sample(rng) * 4096);
        return t.walks();
    };
    const uint64_t small_pages = walks(TlbConfig{});
    const uint64_t huge_pages = walks(TlbConfig::huge2M());
    EXPECT_LT(huge_pages, small_pages / 20);
}

TEST(Tlb, Power8PageSizes)
{
    const TlbConfig base = TlbConfig::base64K();
    const TlbConfig huge = TlbConfig::huge16M();
    EXPECT_EQ(base.pageBytes, 64 * KiB);
    EXPECT_EQ(huge.pageBytes, 16 * MiB);
}

TEST(Tlb, ResetStats)
{
    Tlb t(TlbConfig{});
    t.access(0);
    t.resetStats();
    EXPECT_EQ(t.walks(), 0u);
    EXPECT_EQ(t.accesses(), 0u);
    // Translation is still cached.
    EXPECT_EQ(t.access(0), TlbLevel::L1);
}

} // namespace
} // namespace wsearch
