#include <gtest/gtest.h>

#include "cpu/smt.hh"

namespace wsearch {
namespace {

TEST(Smt, SingleThreadIsIdentity)
{
    EXPECT_DOUBLE_EQ(smtCoreIpc(1.3, 4, 1), 1.3);
}

TEST(Smt, ThroughputIncreasesWithThreads)
{
    const double i1 = smtCoreIpc(1.3, 4, 1);
    const double i2 = smtCoreIpc(1.3, 4, 2);
    EXPECT_GT(i2, i1);
}

TEST(Smt, DiminishingReturns)
{
    SmtParams p;
    const double i1 = smtCoreIpc(0.6, 8, 1, p);
    const double i2 = smtCoreIpc(0.6, 8, 2, p);
    const double i4 = smtCoreIpc(0.6, 8, 4, p);
    const double i8 = smtCoreIpc(0.6, 8, 8, p);
    const double g2 = i2 / i1;
    const double g4 = i4 / i2;
    const double g8 = i8 / i4;
    EXPECT_GT(g2, g4);
    EXPECT_GT(g4, g8);
}

TEST(Smt, NeverExceedsWidth)
{
    for (uint32_t t : {1u, 2u, 4u, 8u})
        EXPECT_LE(smtCoreIpc(3.9, 4, t), 4.0);
}

TEST(Smt, EtaScalesResult)
{
    SmtParams strict;
    strict.eta2 = 0.5;
    SmtParams loose;
    loose.eta2 = 1.0;
    EXPECT_LT(smtCoreIpc(1.0, 4, 2, strict),
              smtCoreIpc(1.0, 4, 2, loose));
    EXPECT_DOUBLE_EQ(smtCoreIpc(1.0, 4, 2, strict) * 2,
                     smtCoreIpc(1.0, 4, 2, loose));
}

TEST(Smt, EtaSelection)
{
    SmtParams p;
    p.eta2 = 0.9;
    p.eta4 = 0.8;
    p.eta8 = 0.7;
    EXPECT_DOUBLE_EQ(p.eta(1), 1.0);
    EXPECT_DOUBLE_EQ(p.eta(2), 0.9);
    EXPECT_DOUBLE_EQ(p.eta(3), 0.8);
    EXPECT_DOUBLE_EQ(p.eta(4), 0.8);
    EXPECT_DOUBLE_EQ(p.eta(8), 0.7);
}

TEST(Smt, Plt1CalibrationLandsNearPaper)
{
    // Paper Figure 2b: SMT-2 gives ~37% on PLT1 (Haswell).
    // Single-thread utilization ~0.32 of a 4-wide core.
    const double solo = smtCoreIpc(1.28, 4, 1);
    const double smt2 = smtCoreIpc(1.22, 4, 2); // slight contention hit
    const double boost = smt2 / solo - 1.0;
    EXPECT_GT(boost, 0.25);
    EXPECT_LT(boost, 0.55);
}

} // namespace
} // namespace wsearch
