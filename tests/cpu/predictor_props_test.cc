/**
 * Property tests of the branch-prediction pipeline: the code model's
 * knobs must translate into the expected misprediction behaviour,
 * which is what the Table I branch-MPKI calibration rests on.
 */
#include <gtest/gtest.h>

#include "cpu/branch.hh"
#include "trace/code_model.hh"
#include "util/units.hh"

namespace wsearch {
namespace {

double
mispredictRate(const CodeModelConfig &cfg, int n = 1'500'000)
{
    CodeModel m(cfg, 0x400000, 99, 7);
    TournamentPredictor p(1 << 17);
    uint64_t br = 0, mis = 0;
    for (int i = 0; i < n; ++i) {
        const FetchedInstr f = m.next();
        if (f.isBranch) {
            ++br;
            if (!p.predictAndUpdate(f.pc, f.taken))
                ++mis;
        }
    }
    return static_cast<double>(mis) / static_cast<double>(br);
}

CodeModelConfig
baseConfig()
{
    CodeModelConfig c;
    c.footprintBytes = 256 * KiB;
    c.functionBytes = 1024;
    c.functionTheta = 1.1;
    c.dataDepBranchFrac = 0.0;
    c.branchNoise = 0.0;
    c.loopTripNoise = 0.02;
    return c;
}

class DataDepSweep : public ::testing::TestWithParam<double>
{
};

// Data-dependent branches are coin flips: each unit of dataDep
// fraction adds ~0.5 units of misprediction.
TEST_P(DataDepSweep, MispredictTracksDataDepFraction)
{
    const double frac = GetParam();
    CodeModelConfig cfg = baseConfig();
    const double floor_rate = mispredictRate(cfg);
    cfg.dataDepBranchFrac = frac;
    const double rate = mispredictRate(cfg);
    const double added = rate - floor_rate;
    // Conditional branches are a subset of all branches, so the
    // contribution is somewhat below frac/2.
    EXPECT_GT(added, 0.12 * frac);
    EXPECT_LT(added, 0.65 * frac);
}

INSTANTIATE_TEST_SUITE_P(Fracs, DataDepSweep,
                         ::testing::Values(0.05, 0.10, 0.20, 0.40));

class NoiseSweep : public ::testing::TestWithParam<double>
{
};

// Per-visit flip noise on regular branches adds roughly its own
// magnitude of mispredictions.
TEST_P(NoiseSweep, MispredictTracksNoise)
{
    const double noise = GetParam();
    CodeModelConfig cfg = baseConfig();
    const double floor_rate = mispredictRate(cfg);
    cfg.branchNoise = noise;
    const double rate = mispredictRate(cfg);
    EXPECT_GT(rate, floor_rate);
    EXPECT_LT(rate - floor_rate, 1.3 * noise);
}

INSTANTIATE_TEST_SUITE_P(Noises, NoiseSweep,
                         ::testing::Values(0.01, 0.03, 0.06));

TEST(PredictorFloor, DeterministicBranchesArePredictable)
{
    // With no data-dependence and no noise, the warmed predictor
    // should be well under 10% mispredicts despite loops and calls.
    EXPECT_LT(mispredictRate(baseConfig(), 3'000'000), 0.10);
}

TEST(PredictorFloor, MoreEntriesNeverMuchWorse)
{
    CodeModelConfig cfg = baseConfig();
    cfg.dataDepBranchFrac = 0.08;
    CodeModel m1(cfg, 0x400000, 99, 7), m2(cfg, 0x400000, 99, 7);
    TournamentPredictor small(1 << 12), big(1 << 18);
    uint64_t mis_small = 0, mis_big = 0, br = 0;
    for (int i = 0; i < 1'500'000; ++i) {
        const FetchedInstr a = m1.next();
        const FetchedInstr b = m2.next();
        if (a.isBranch) {
            ++br;
            if (!small.predictAndUpdate(a.pc, a.taken))
                ++mis_small;
            if (!big.predictAndUpdate(b.pc, b.taken))
                ++mis_big;
        }
    }
    EXPECT_LT(static_cast<double>(mis_big),
              static_cast<double>(mis_small) * 1.1);
}

} // namespace
} // namespace wsearch
