#include <gtest/gtest.h>

#include "cpu/btb.hh"
#include "util/rng.hh"

namespace wsearch {
namespace {

TEST(Btb, MissThenHit)
{
    Btb btb(256, 4);
    uint64_t target = 0;
    EXPECT_FALSE(btb.predict(0x400100, &target));
    btb.update(0x400100, 0x400200);
    EXPECT_TRUE(btb.predict(0x400100, &target));
    EXPECT_EQ(target, 0x400200u);
}

TEST(Btb, TargetUpdates)
{
    Btb btb(256, 4);
    btb.update(0x400100, 0x400200);
    btb.update(0x400100, 0x400300);
    uint64_t target = 0;
    ASSERT_TRUE(btb.predict(0x400100, &target));
    EXPECT_EQ(target, 0x400300u);
}

TEST(Btb, LruEvictionWithinSet)
{
    Btb btb(8, 2); // 4 sets of 2
    // Three branches in the same set (stride = 4 sets * 4 bytes).
    const uint64_t a = 0x1000, b = a + 16, c = a + 32;
    btb.update(a, 1);
    btb.update(b, 2);
    uint64_t t = 0;
    btb.predict(a, &t); // does not refresh (read-only)
    btb.update(c, 3);   // evicts LRU = a
    EXPECT_FALSE(btb.predict(a, &t));
    EXPECT_TRUE(btb.predict(b, &t));
    EXPECT_TRUE(btb.predict(c, &t));
}

TEST(Btb, NotTakenNeverMisses)
{
    Btb btb(256, 4);
    EXPECT_TRUE(btb.lookupAndUpdate(0x400100, false, 0));
}

TEST(Btb, TakenBranchTrainsThroughHelper)
{
    Btb btb(256, 4);
    EXPECT_FALSE(btb.lookupAndUpdate(0x400100, true, 0x500000));
    EXPECT_TRUE(btb.lookupAndUpdate(0x400100, true, 0x500000));
    // Target change is a miss again.
    EXPECT_FALSE(btb.lookupAndUpdate(0x400100, true, 0x600000));
}

TEST(Btb, StableLoopBranchesAllHitSteadyState)
{
    Btb btb(4096, 4);
    Rng rng(1);
    std::vector<std::pair<uint64_t, uint64_t>> branches;
    for (int i = 0; i < 64; ++i)
        branches.push_back({0x400000 + i * 24, 0x400000 + i * 24 + 96});
    uint64_t miss = 0, total = 0;
    for (int round = 0; round < 200; ++round) {
        for (const auto &[pc, target] : branches) {
            if (!btb.lookupAndUpdate(pc, true, target))
                ++miss;
            ++total;
        }
    }
    // Only the 64 cold misses.
    EXPECT_EQ(miss, 64u);
}

} // namespace
} // namespace wsearch
