#include <gtest/gtest.h>

#include "cpu/core_model.hh"

namespace wsearch {
namespace {

CoreModelParams
defaultParams()
{
    CoreModelParams p;
    return p;
}

TEST(CoreModel, PerfectStreamHitsWidthCeiling)
{
    CoreModelParams p = defaultParams();
    p.tweaks.feBwSlotsPerInstr = 0.0;
    p.tweaks.beCoreSlotsPerInstr = 0.0;
    CoreModel m(p);
    for (int i = 0; i < 1000; ++i)
        m.onInstruction();
    EXPECT_DOUBLE_EQ(m.ipc(), 4.0);
    EXPECT_DOUBLE_EQ(m.topDown().retiringFrac(), 1.0);
}

TEST(CoreModel, FixedOverheadsLowerIpc)
{
    CoreModelParams p = defaultParams();
    p.tweaks.feBwSlotsPerInstr = 1.0;
    p.tweaks.beCoreSlotsPerInstr = 1.0;
    CoreModel m(p);
    for (int i = 0; i < 1000; ++i)
        m.onInstruction();
    // 3 slots per instruction -> IPC = width / 3.
    EXPECT_NEAR(m.ipc(), 4.0 / 3.0, 1e-9);
}

TEST(CoreModel, MispredictChargesBadSpeculation)
{
    CoreModelParams p = defaultParams();
    CoreModel m(p);
    m.onInstruction();
    m.onBranchMispredict();
    EXPECT_DOUBLE_EQ(m.topDown().badSpeculation,
                     p.width * p.bpPenaltyCycles);
    EXPECT_EQ(m.mispredicts(), 1u);
}

TEST(CoreModel, MemoryLatencyChargesBackend)
{
    CoreModelParams p = defaultParams();
    CoreModel m(p);
    m.onInstruction();
    m.onDataAccess(HitLevel::Memory);
    const double expected =
        p.width * p.memNs * p.freqGhz * p.tweaks.postL2Exposure;
    EXPECT_DOUBLE_EQ(m.topDown().backendMemory, expected);
}

TEST(CoreModel, L1HitsAreFree)
{
    CoreModel m(defaultParams());
    m.onInstruction();
    m.onDataAccess(HitLevel::L1);
    m.onInstrFetch(HitLevel::L1);
    EXPECT_DOUBLE_EQ(m.topDown().backendMemory, 0.0);
    EXPECT_DOUBLE_EQ(m.topDown().frontendLatency, 0.0);
}

TEST(CoreModel, DeeperMissesCostMore)
{
    auto cost = [](HitLevel level) {
        CoreModel m(defaultParams());
        m.onInstruction();
        m.onDataAccess(level);
        return m.topDown().backendMemory;
    };
    EXPECT_LT(cost(HitLevel::L2), cost(HitLevel::L3));
    EXPECT_LT(cost(HitLevel::L3), cost(HitLevel::L4));
    EXPECT_LT(cost(HitLevel::L4), cost(HitLevel::Memory));
}

TEST(CoreModel, L4MissExtraPenaltyApplies)
{
    CoreModelParams base = defaultParams();
    CoreModelParams pess = base;
    pess.l4MissExtraNs = 5.0;
    CoreModel a(base), b(pess);
    a.onInstruction();
    b.onInstruction();
    a.onDataAccess(HitLevel::Memory);
    b.onDataAccess(HitLevel::Memory);
    EXPECT_GT(b.topDown().backendMemory, a.topDown().backendMemory);
}

TEST(CoreModel, IfetchMissChargesFrontend)
{
    CoreModel m(defaultParams());
    m.onInstruction();
    m.onInstrFetch(HitLevel::L2);
    EXPECT_GT(m.topDown().frontendLatency, 0.0);
    EXPECT_DOUBLE_EQ(m.topDown().backendMemory, 0.0);
}

TEST(CoreModel, TlbWalkCharges)
{
    CoreModel m(defaultParams());
    m.onInstruction();
    m.onTlbWalk();
    EXPECT_GT(m.topDown().backendMemory, 0.0);
    m.onItlbWalk();
    EXPECT_GT(m.topDown().frontendLatency, 0.0);
}

TEST(CoreModel, FractionsSumToOne)
{
    CoreModel m(defaultParams());
    for (int i = 0; i < 100; ++i) {
        m.onInstruction();
        if (i % 7 == 0)
            m.onBranchMispredict();
        if (i % 3 == 0)
            m.onDataAccess(HitLevel::L3);
        if (i % 11 == 0)
            m.onInstrFetch(HitLevel::L2);
    }
    const TopDown &td = m.topDown();
    const double sum = td.retiringFrac() + td.badSpecFrac() +
        td.feLatFrac() + td.feBwFrac() + td.beMemFrac() +
        td.beCoreFrac();
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(CoreModel, Reset)
{
    CoreModel m(defaultParams());
    m.onInstruction();
    m.onBranchMispredict();
    m.reset();
    EXPECT_EQ(m.instructions(), 0u);
    EXPECT_EQ(m.mispredicts(), 0u);
    EXPECT_DOUBLE_EQ(m.topDown().total(), 0.0);
}

TEST(CoreModel, IpcLinearInMemoryLatency)
{
    // The paper's Eq. 1 regime: with a fixed miss profile, 1/IPC is
    // linear in the post-L2 latency, so IPC over a narrow latency
    // window is nearly linear.
    auto ipc_at = [](double mem_ns) {
        CoreModelParams p;
        p.memNs = mem_ns;
        CoreModel m(p);
        for (int i = 0; i < 10000; ++i) {
            m.onInstruction();
            if (i % 100 == 0)
                m.onDataAccess(HitLevel::Memory);
        }
        return m.ipc();
    };
    const double i50 = ipc_at(50), i60 = ipc_at(60), i70 = ipc_at(70);
    EXPECT_GT(i50, i60);
    EXPECT_GT(i60, i70);
    // Near-linearity: midpoint close to the average of the endpoints.
    EXPECT_NEAR(i60, (i50 + i70) / 2, 0.01);
}

} // namespace
} // namespace wsearch
