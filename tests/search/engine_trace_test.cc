#include <gtest/gtest.h>

#include <set>

#include "search/engine_trace.hh"
#include "stats/working_set.hh"

namespace wsearch {
namespace {

ProceduralIndex::Config
smallShard()
{
    ProceduralIndex::Config c;
    c.numDocs = 200000;
    c.numTerms = 20000;
    c.maxDocFreq = 2000;
    c.minDocFreq = 8;
    c.payloadBytes = 8;
    return c;
}

EngineTraceConfig
smallTraceConfig(uint32_t threads = 2)
{
    EngineTraceConfig c;
    c.numThreads = threads;
    c.queries.vocabSize = 20000;
    c.queries.distinctQueries = 1 << 14;
    c.queryCacheEntries = 1 << 10;
    c.code.footprintBytes = 256 * KiB;
    return c;
}

std::vector<TraceRecord>
collect(TraceSource &src, size_t n)
{
    std::vector<TraceRecord> out(n);
    size_t got = 0;
    while (got < n)
        got += src.fill(out.data() + got, n - got);
    return out;
}

TEST(EngineTrace, ProducesValidRecords)
{
    ProceduralIndex shard(smallShard());
    EngineTraceSource src(shard, smallTraceConfig());
    const auto recs = collect(src, 200000);
    uint64_t data = 0;
    for (const auto &r : recs) {
        ASSERT_GE(r.pc, vaddr::kCodeBase);
        ASSERT_LT(r.pc, vaddr::kHeapBase);
        if (!r.hasData())
            continue;
        ++data;
        switch (r.kind) {
          case AccessKind::Shard:
            ASSERT_GE(r.addr, vaddr::kShardBase);
            ASSERT_LT(r.addr,
                      vaddr::kShardBase + shard.shardBytes() + 64);
            break;
          case AccessKind::Heap:
            ASSERT_GE(r.addr, vaddr::kHeapBase);
            ASSERT_LT(r.addr, vaddr::kShardBase);
            break;
          case AccessKind::Stack:
            ASSERT_GE(r.addr, vaddr::kStackBase);
            break;
          default:
            FAIL();
        }
    }
    // A substantial share of records must carry data accesses.
    EXPECT_GT(data, recs.size() / 10);
    EXPECT_GT(src.queriesExecuted(), 0u);
}

TEST(EngineTrace, Deterministic)
{
    ProceduralIndex shard(smallShard());
    EngineTraceSource a(shard, smallTraceConfig());
    EngineTraceSource b(shard, smallTraceConfig());
    const auto ra = collect(a, 50000);
    const auto rb = collect(b, 50000);
    for (size_t i = 0; i < ra.size(); ++i) {
        ASSERT_EQ(ra[i].pc, rb[i].pc);
        ASSERT_EQ(ra[i].addr, rb[i].addr);
    }
}

TEST(EngineTrace, ResetRestarts)
{
    ProceduralIndex shard(smallShard());
    EngineTraceSource src(shard, smallTraceConfig());
    const auto first = collect(src, 20000);
    src.reset();
    const auto again = collect(src, 20000);
    for (size_t i = 0; i < first.size(); ++i)
        ASSERT_EQ(first[i].addr, again[i].addr);
}

TEST(EngineTrace, CacheTierAbsorbsPopularQueries)
{
    ProceduralIndex shard(smallShard());
    EngineTraceConfig cfg = smallTraceConfig();
    cfg.queries.distinctQueries = 256; // highly repetitive traffic
    cfg.queries.popularityTheta = 1.1;
    cfg.queryCacheEntries = 512;
    EngineTraceSource src(shard, cfg);
    collect(src, 400000);
    EXPECT_GT(src.cacheAbsorbed(), src.queriesExecuted());
}

TEST(EngineTrace, RoundRobinThreadIds)
{
    ProceduralIndex shard(smallShard());
    EngineTraceSource src(shard, smallTraceConfig(3));
    const auto recs = collect(src, 99);
    for (size_t i = 0; i < recs.size(); ++i)
        ASSERT_EQ(recs[i].tid, i % 3);
}

TEST(EngineTrace, ShardRunsAreMostlySequential)
{
    // Posting decode produces sequential shard access runs -- the
    // spatial-locality structure the paper attributes to the shard.
    ProceduralIndex shard(smallShard());
    EngineTraceSource src(shard, smallTraceConfig(1));
    const auto recs = collect(src, 300000);
    uint64_t prev = 0;
    uint64_t seq = 0, total = 0;
    for (const auto &r : recs) {
        if (!r.hasData() || r.kind != AccessKind::Shard)
            continue;
        if (prev && r.addr >= prev && r.addr <= prev + 64)
            ++seq;
        ++total;
        prev = r.addr;
    }
    ASSERT_GT(total, 1000u);
    EXPECT_GT(static_cast<double>(seq) / total, 0.8);
}

TEST(EngineTrace, HeapWorkingSetSharedAcrossThreads)
{
    // Doc-metadata touches overlap between threads (shared heap
    // structures, Figure 5), shard touches do not.
    ProceduralIndex shard(smallShard());
    EngineTraceSource src(shard, smallTraceConfig(2));
    std::set<uint64_t> meta0, meta1;
    const auto recs = collect(src, 1500000);
    for (const auto &r : recs) {
        if (!r.hasData() || r.kind != AccessKind::Heap)
            continue;
        if (r.addr >= engine_vaddr::kLexiconBase)
            continue; // lexicon/scratch
        (r.tid == 0 ? meta0 : meta1).insert(r.addr / 64);
    }
    ASSERT_GT(meta0.size(), 100u);
    uint64_t inter = 0;
    for (const auto b : meta0)
        if (meta1.count(b))
            ++inter;
    EXPECT_GT(static_cast<double>(inter) /
                  static_cast<double>(std::min(meta0.size(),
                                               meta1.size())),
              0.1);
}

} // namespace
} // namespace wsearch
