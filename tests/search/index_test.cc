#include <gtest/gtest.h>

#include <map>

#include "search/index.hh"

namespace wsearch {
namespace {

CorpusConfig
tinyCorpus()
{
    CorpusConfig c;
    c.numDocs = 500;
    c.vocabSize = 800;
    c.avgDocLen = 40;
    return c;
}

TEST(Corpus, Deterministic)
{
    CorpusGenerator g(tinyCorpus());
    const Document a = g.document(42);
    const Document b = g.document(42);
    EXPECT_EQ(a.terms, b.terms);
    EXPECT_NE(g.document(43).terms, a.terms);
}

TEST(Corpus, LengthsInRange)
{
    CorpusGenerator g(tinyCorpus());
    for (DocId d = 0; d < 100; ++d) {
        const Document doc = g.document(d);
        EXPECT_GE(doc.terms.size(), 20u);
        EXPECT_LT(doc.terms.size(), 60u);
        for (const TermId t : doc.terms)
            EXPECT_LT(t, 800u);
    }
}

TEST(MaterializedIndex, MatchesCorpusExactly)
{
    CorpusGenerator g(tinyCorpus());
    MaterializedIndex idx(g);
    // Recount term frequencies independently.
    std::map<TermId, std::map<DocId, uint32_t>> ref;
    for (DocId d = 0; d < 500; ++d)
        for (const TermId t : g.document(d).terms)
            ++ref[t][d];
    for (const auto &[term, docs] : ref) {
        const TermInfo info = idx.termInfo(term);
        ASSERT_EQ(info.docFreq, docs.size()) << "term " << term;
        std::vector<uint8_t> bytes;
        idx.postingBytes(term, bytes);
        PostingCursor c(bytes.data(), bytes.data() + bytes.size(),
                        info.docFreq);
        for (const auto &[doc, tf] : docs) {
            ASSERT_TRUE(c.valid());
            ASSERT_EQ(c.doc(), doc);
            ASSERT_EQ(c.tf(), tf);
            c.next();
        }
        ASSERT_FALSE(c.valid());
    }
}

TEST(MaterializedIndex, OffsetsAreContiguous)
{
    CorpusGenerator g(tinyCorpus());
    MaterializedIndex idx(g);
    uint64_t expected = 0;
    for (TermId t = 0; t < idx.numTerms(); ++t) {
        const TermInfo info = idx.termInfo(t);
        EXPECT_EQ(info.shardOffset, expected);
        expected += info.byteLength;
    }
    EXPECT_EQ(idx.shardBytes(), expected);
}

TEST(MaterializedIndex, DocLenMatchesCorpus)
{
    CorpusGenerator g(tinyCorpus());
    MaterializedIndex idx(g);
    for (DocId d = 0; d < 100; ++d)
        EXPECT_EQ(idx.docLen(d), g.document(d).terms.size());
    EXPECT_GT(idx.avgDocLen(), 20.0);
    EXPECT_LT(idx.avgDocLen(), 60.0);
}

ProceduralIndex::Config
smallProc()
{
    ProceduralIndex::Config c;
    c.numDocs = 100000;
    c.numTerms = 2000;
    c.maxDocFreq = 5000;
    c.minDocFreq = 4;
    c.payloadBytes = 0;
    return c;
}

TEST(ProceduralIndex, ByteLengthMatchesGeneratedBytes)
{
    ProceduralIndex idx(smallProc());
    std::vector<uint8_t> bytes;
    for (TermId t = 0; t < 2000; t += 97) {
        const TermInfo info = idx.termInfo(t);
        idx.postingBytes(t, bytes);
        ASSERT_EQ(bytes.size(), info.byteLength) << "term " << t;
    }
}

TEST(ProceduralIndex, OffsetsAreContiguous)
{
    ProceduralIndex idx(smallProc());
    uint64_t expected = 0;
    for (TermId t = 0; t < idx.numTerms(); ++t) {
        const TermInfo info = idx.termInfo(t);
        ASSERT_EQ(info.shardOffset, expected);
        expected += info.byteLength;
    }
    EXPECT_EQ(idx.shardBytes(), expected);
}

TEST(ProceduralIndex, PostingsAscendAndDecode)
{
    ProceduralIndex idx(smallProc());
    std::vector<uint8_t> bytes;
    for (TermId t : {0u, 1u, 50u, 1999u}) {
        const TermInfo info = idx.termInfo(t);
        idx.postingBytes(t, bytes);
        PostingCursor c(bytes.data(), bytes.data() + bytes.size(),
                        info.docFreq);
        DocId prev = 0;
        uint32_t count = 0;
        bool first = true;
        while (c.valid()) {
            if (!first) {
                ASSERT_GT(c.doc(), prev);
            }
            ASSERT_GE(c.tf(), 1u);
            prev = c.doc();
            first = false;
            ++count;
            c.next();
        }
        ASSERT_EQ(count, info.docFreq);
    }
}

TEST(ProceduralIndex, Deterministic)
{
    ProceduralIndex a(smallProc()), b(smallProc());
    std::vector<uint8_t> ba, bb;
    a.postingBytes(123, ba);
    b.postingBytes(123, bb);
    EXPECT_EQ(ba, bb);
}

TEST(ProceduralIndex, DocFreqDecreasesWithRank)
{
    ProceduralIndex idx(smallProc());
    EXPECT_GE(idx.termInfo(0).docFreq, idx.termInfo(10).docFreq);
    EXPECT_GE(idx.termInfo(10).docFreq, idx.termInfo(100).docFreq);
    EXPECT_GE(idx.termInfo(1999).docFreq, 4u); // never below the floor
    EXPECT_EQ(idx.termInfo(0).docFreq, 5000u); // cap
}

TEST(ProceduralIndex, PayloadBytesAreSkippedByCursor)
{
    ProceduralIndex::Config c = smallProc();
    c.payloadBytes = 8;
    ProceduralIndex idx(c);
    std::vector<uint8_t> bytes;
    const TermInfo info = idx.termInfo(7);
    idx.postingBytes(7, bytes);
    ASSERT_EQ(bytes.size(), info.byteLength);
    PostingCursor cur(bytes.data(), bytes.data() + bytes.size(),
                      info.docFreq, 8);
    DocId prev = 0;
    uint32_t count = 0;
    while (cur.valid()) {
        if (count) {
            ASSERT_GT(cur.doc(), prev);
        }
        prev = cur.doc();
        ++count;
        cur.next();
    }
    ASSERT_EQ(count, info.docFreq);
}

TEST(ProceduralIndex, DefaultShardIsProductionScale)
{
    // The default configuration must give a GiB-scale nominal shard
    // (the paper's leaves hold 100s of GiB; we need at least enough
    // to dwarf any cache under study).
    ProceduralIndex idx(ProceduralIndex::Config{});
    EXPECT_GT(idx.shardBytes(), 1ull << 30);
}

} // namespace
} // namespace wsearch
