#include <gtest/gtest.h>

#include <map>
#include <set>

#include "search/executor.hh"

namespace wsearch {
namespace {

/** Sink recording every touch for inspection. */
class RecordingSink : public TouchSink
{
  public:
    struct T
    {
        uint64_t addr;
        uint32_t bytes;
        AccessKind kind;
        bool write;
    };
    std::vector<T> touches;

    void
    touch(uint64_t addr, uint32_t bytes, AccessKind kind,
          bool is_write) override
    {
        touches.push_back({addr, bytes, kind, is_write});
    }
};

/** Run @p q through the SearchRequest API, returning just the docs. */
std::vector<ScoredDoc>
run(QueryExecutor &ex, const Query &q)
{
    SearchRequest req;
    req.query = q;
    return ex.execute(req).docs;
}

struct Fixture
{
    Fixture()
        : corpus(makeConfig()), index(corpus)
    {
    }

    static CorpusConfig
    makeConfig()
    {
        CorpusConfig c;
        c.numDocs = 400;
        c.vocabSize = 300;
        c.avgDocLen = 60;
        return c;
    }

    /** Naive reference evaluation. */
    std::vector<ScoredDoc>
    naive(const Query &q) const
    {
        Bm25Scorer scorer(index.numDocs(), index.avgDocLen());
        TopK topk(q.topK);
        for (DocId d = 0; d < index.numDocs(); ++d) {
            const Document doc = corpus.document(d);
            std::map<TermId, uint32_t> tf;
            for (const TermId t : doc.terms)
                ++tf[t];
            double score = 0;
            bool all = true;
            bool any = false;
            for (const TermId t : q.terms) {
                auto it = tf.find(t);
                if (it == tf.end()) {
                    all = false;
                    continue;
                }
                any = true;
                score += scorer.score(it->second,
                                      index.docLen(d),
                                      index.termInfo(t).docFreq);
            }
            const bool match =
                q.conjunctive && q.terms.size() > 1 ? all : any;
            if (match)
                topk.offer({d, static_cast<float>(score)});
        }
        return topk.results();
    }

    CorpusGenerator corpus;
    MaterializedIndex index;
    NullTouchSink nullSink;
};

TEST(Executor, ConjunctiveMatchesNaive)
{
    Fixture f;
    QueryExecutor ex(f.index, 0, &f.nullSink);
    for (TermId a = 0; a < 12; ++a) {
        for (TermId b = a + 1; b < 12; b += 3) {
            Query q;
            q.terms = {a, b};
            q.conjunctive = true;
            q.topK = 10;
            const auto got = run(ex, q);
            const auto want = f.naive(q);
            ASSERT_EQ(got.size(), want.size())
                << "terms " << a << "," << b;
            for (size_t i = 0; i < got.size(); ++i) {
                ASSERT_EQ(got[i].doc, want[i].doc);
                ASSERT_NEAR(got[i].score, want[i].score, 1e-4);
            }
        }
    }
}

TEST(Executor, DisjunctiveMatchesNaive)
{
    Fixture f;
    QueryExecutor ex(f.index, 0, &f.nullSink);
    for (TermId a = 0; a < 10; a += 2) {
        Query q;
        q.terms = {a, a + 1, a + 5};
        q.conjunctive = false;
        q.topK = 8;
        const auto got = run(ex, q);
        const auto want = f.naive(q);
        ASSERT_EQ(got.size(), want.size()) << "term " << a;
        for (size_t i = 0; i < got.size(); ++i) {
            ASSERT_EQ(got[i].doc, want[i].doc) << i;
            ASSERT_NEAR(got[i].score, want[i].score, 1e-4);
        }
    }
}

TEST(Executor, SingleTermQuery)
{
    Fixture f;
    QueryExecutor ex(f.index, 0, &f.nullSink);
    Query q;
    q.terms = {2};
    q.conjunctive = true; // single term falls back to disjunctive
    q.topK = 5;
    const auto got = run(ex, q);
    const auto want = f.naive(q);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i].doc, want[i].doc);
}

TEST(Executor, EmptyQueryReturnsNothing)
{
    Fixture f;
    QueryExecutor ex(f.index, 0, &f.nullSink);
    Query q;
    EXPECT_TRUE(run(ex, q).empty());
}

TEST(Executor, ResultsSortedBestFirst)
{
    Fixture f;
    QueryExecutor ex(f.index, 0, &f.nullSink);
    Query q;
    q.terms = {0, 1};
    q.conjunctive = false;
    q.topK = 20;
    const auto got = run(ex, q);
    for (size_t i = 1; i < got.size(); ++i)
        EXPECT_FALSE(got[i - 1] < got[i]);
}

TEST(Executor, TouchesCoverAllSegments)
{
    Fixture f;
    RecordingSink sink;
    QueryExecutor ex(f.index, 3, &sink);
    Query q;
    q.terms = {0, 1};
    q.conjunctive = false;
    q.topK = 10;
    run(ex, q);
    std::set<AccessKind> kinds;
    for (const auto &t : sink.touches)
        kinds.insert(t.kind);
    EXPECT_TRUE(kinds.count(AccessKind::Shard));
    EXPECT_TRUE(kinds.count(AccessKind::Heap));
    EXPECT_TRUE(kinds.count(AccessKind::Stack));
}

TEST(Executor, ShardTouchesWithinTermExtent)
{
    Fixture f;
    RecordingSink sink;
    QueryExecutor ex(f.index, 0, &sink);
    Query q;
    q.terms = {4};
    q.conjunctive = false;
    run(ex, q);
    const TermInfo info = f.index.termInfo(4);
    const uint64_t lo = engine_vaddr::shardAddr(info.shardOffset);
    const uint64_t hi = lo + info.byteLength;
    for (const auto &t : sink.touches) {
        if (t.kind != AccessKind::Shard)
            continue;
        EXPECT_GE(t.addr, lo);
        EXPECT_LE(t.addr + t.bytes, hi);
    }
}

TEST(Executor, ScratchTouchesArePerThread)
{
    Fixture f;
    RecordingSink s0, s5;
    QueryExecutor e0(f.index, 0, &s0), e5(f.index, 5, &s5);
    Query q;
    q.terms = {0};
    q.conjunctive = false;
    run(e0, q);
    run(e5, q);
    auto scratch_addrs = [](const RecordingSink &s) {
        std::set<uint64_t> out;
        for (const auto &t : s.touches)
            if (t.kind == AccessKind::Heap &&
                t.addr >= engine_vaddr::kScratchBase)
                out.insert(t.addr);
        return out;
    };
    const auto a0 = scratch_addrs(s0);
    const auto a5 = scratch_addrs(s5);
    ASSERT_FALSE(a0.empty());
    for (const auto a : a0)
        EXPECT_EQ(a5.count(a), 0u);
}

TEST(Executor, StatsPopulated)
{
    Fixture f;
    QueryExecutor ex(f.index, 0, &f.nullSink);
    Query q;
    q.terms = {0, 1};
    q.conjunctive = false;
    run(ex, q);
    EXPECT_GT(ex.lastStats().postingsDecoded, 0u);
    EXPECT_GT(ex.lastStats().candidatesScored, 0u);
    EXPECT_GT(ex.lastStats().shardBytesRead, 0u);
    EXPECT_GT(ex.scratchHighWater(), 0u);
}

TEST(Executor, WorksOnProceduralIndex)
{
    ProceduralIndex::Config c;
    c.numDocs = 50000;
    c.numTerms = 1000;
    c.maxDocFreq = 2000;
    c.minDocFreq = 8;
    c.payloadBytes = 8;
    ProceduralIndex idx(c);
    NullTouchSink sink;
    QueryExecutor ex(idx, 0, &sink);
    Query q;
    q.terms = {1, 7};
    q.conjunctive = false;
    q.topK = 10;
    const auto r = run(ex, q);
    EXPECT_FALSE(r.empty());
    for (size_t i = 1; i < r.size(); ++i)
        EXPECT_FALSE(r[i - 1] < r[i]);
}

} // namespace
} // namespace wsearch
